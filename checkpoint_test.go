package colsort

// Tests of the durable-job path: WithCheckpoint's persisted run manifest,
// Engine.Resume after a mid-merge and mid-formation crash, the deadline
// option, and the manifest replay's crash-tolerance. The "crash" is a
// context cancellation fired from a progress callback — the same abrupt
// teardown a SIGKILL inflicts on the checkpoint state, since the WAL is
// fsync'd at every durability point and never repaired on the way down
// (scripts/crash_resume_e2e.sh kills a real process for the end-to-end
// version of the same contract).

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"colsort/internal/record"
	"colsort/internal/testutil"
)

// ckptConfig builds a file-backed engine small enough that n records force a
// deep hierarchical sort, with scratch under dir/scratch.
func ckptConfig(t *testing.T, dir string) *Sorter {
	t.Helper()
	s, err := New(Config{Procs: 4, MemPerProc: 256, RecordSize: 32,
		Dir: filepath.Join(dir, "scratch"), Async: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCheckpointResumeMidMerge crashes a checkpointed sort during the merge
// phase and resumes it: the output must be byte-identical to the
// uninterrupted sort and ZERO batches re-sorted — every run is adopted from
// the manifest (ResumedRuns == the full live set, BatchRedos == 0).
func TestCheckpointResumeMidMerge(t *testing.T) {
	for _, form := range []RunFormation{FixedBatch, ReplacementSelect} {
		form := form
		t.Run(form.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := ckptConfig(t, dir)
			bound := s.MaxRecords(Threaded)
			n := int(6 * bound)
			raw := genRaw(n, 32, record.Uniform{Seed: 31})
			want := refSortBytes(t, raw, 32, KeySpec{})
			ckptDir := filepath.Join(dir, "ckpt")

			// Crash once the merge is demonstrably running: fan-in 2 over ≥6
			// runs guarantees intermediate merge levels, so the manifest holds
			// a mix of formation runs and merged outputs at the crash.
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var once sync.Once
			res, err := s.Sort(ctx, FromBytes(raw), Discard(),
				WithRunFormation(form), WithMergeFanIn(2), WithCheckpoint(ckptDir),
				WithProgress(func(ev Progress) {
					if ev.Pass == 0 && ev.MergedRecords > 0 {
						once.Do(cancel)
					}
				}))
			if err == nil {
				res.Close()
				t.Fatal("cancelled checkpointed sort returned no error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if _, err := os.Stat(filepath.Join(ckptDir, "manifest.wal")); err != nil {
				t.Fatalf("crashed job left no manifest: %v", err)
			}

			var out bytes.Buffer
			rres, err := s.Resume(context.Background(), ckptDir, FromBytes(raw), ToWriter(&out))
			if err != nil {
				t.Fatalf("Resume: %v", err)
			}
			defer rres.Close()
			if !bytes.Equal(out.Bytes(), want) {
				t.Error("resumed output is not byte-identical to the uninterrupted sort")
			}
			if rres.Merge == nil {
				t.Fatal("resumed sort reports no merge stats")
			}
			if rres.Merge.ResumedRuns == 0 || rres.Merge.ResumedRuns != rres.Merge.Runs {
				t.Errorf("ResumedRuns = %d, want the full live set (%d): a merge-phase resume re-sorts nothing",
					rres.Merge.ResumedRuns, rres.Merge.Runs)
			}
			if rres.Faults.BatchRedos != 0 {
				t.Errorf("BatchRedos = %d after a merge-phase resume, want 0", rres.Faults.BatchRedos)
			}
			// Success retires the checkpoint: manifest and run files are gone.
			if _, err := os.Stat(filepath.Join(ckptDir, "manifest.wal")); !os.IsNotExist(err) {
				t.Errorf("manifest survived a completed job (stat err %v)", err)
			}
			st := s.Engine().Stats()
			if st.JobsResumed != 1 || st.RunsResumed != int64(rres.Merge.ResumedRuns) {
				t.Errorf("engine stats JobsResumed=%d RunsResumed=%d, want 1/%d",
					st.JobsResumed, st.RunsResumed, rres.Merge.ResumedRuns)
			}
		})
	}
}

// TestCheckpointResumeMidMergeNilSource is the merge-phase resume with no
// Source at all: once the manifest records ingest_done, the input is never
// read again.
func TestCheckpointResumeMidMergeNilSource(t *testing.T) {
	dir := t.TempDir()
	s := ckptConfig(t, dir)
	bound := s.MaxRecords(Threaded)
	n := int(4 * bound)
	raw := genRaw(n, 32, record.Uniform{Seed: 33})
	ckptDir := filepath.Join(dir, "ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err := s.Sort(ctx, FromBytes(raw), Discard(),
		WithRunFormation(FixedBatch), WithMergeFanIn(2), WithCheckpoint(ckptDir),
		WithProgress(func(ev Progress) {
			if ev.Pass == 0 && ev.MergedRecords > 0 {
				once.Do(cancel)
			}
		}))
	if err == nil {
		res.Close()
		t.Fatal("cancelled checkpointed sort returned no error")
	}

	var out bytes.Buffer
	rres, err := s.Resume(context.Background(), ckptDir, nil, ToWriter(&out))
	if err != nil {
		t.Fatalf("Resume with nil Source: %v", err)
	}
	defer rres.Close()
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, 32, KeySpec{})) {
		t.Error("nil-source resumed output differs from the reference")
	}
}

// TestCheckpointResumeMidFormation crashes a fixed-batch job between
// formation batches: Resume must skip (and checksum-verify) the source
// prefix the durable runs cover, re-sort only the interrupted tail, and
// still produce byte-identical output.
func TestCheckpointResumeMidFormation(t *testing.T) {
	dir := t.TempDir()
	s := ckptConfig(t, dir)
	bound := s.MaxRecords(Threaded)
	n := int(6 * bound)
	raw := genRaw(n, 32, record.Uniform{Seed: 35})
	ckptDir := filepath.Join(dir, "ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err := s.Sort(ctx, FromBytes(raw), Discard(),
		WithRunFormation(FixedBatch), WithCheckpoint(ckptDir),
		WithProgress(func(ev Progress) {
			if ev.Batch >= 3 { // at least two whole batches are durable
				once.Do(cancel)
			}
		}))
	if err == nil {
		res.Close()
		t.Fatal("cancelled checkpointed sort returned no error")
	}

	var out bytes.Buffer
	rres, err := s.Resume(context.Background(), ckptDir, FromBytes(raw), ToWriter(&out))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer rres.Close()
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, 32, KeySpec{})) {
		t.Error("formation-resumed output is not byte-identical to the reference")
	}
	if rres.Merge.ResumedRuns == 0 || rres.Merge.ResumedRuns >= rres.Merge.Runs {
		t.Errorf("ResumedRuns = %d of %d runs; a formation-phase resume adopts some and forms the rest",
			rres.Merge.ResumedRuns, rres.Merge.Runs)
	}

	// A changed source is refused, not silently merged against stale runs.
	// (Resume after success already retired this manifest, so crash again.)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var once2 sync.Once
	res, err = s.Sort(ctx2, FromBytes(raw), Discard(),
		WithRunFormation(FixedBatch), WithCheckpoint(ckptDir),
		WithProgress(func(ev Progress) {
			if ev.Batch >= 3 {
				once2.Do(cancel2)
			}
		}))
	if err == nil {
		res.Close()
		t.Fatal("second cancelled sort returned no error")
	}
	altered := append([]byte(nil), raw...)
	altered[0] ^= 0xff
	if _, err := s.Resume(context.Background(), ckptDir, FromBytes(altered), Discard()); err == nil {
		t.Error("Resume accepted a source whose consumed prefix no longer matches the manifest")
	}
}

// TestCheckpointRSFormationRestart crashes replacement-selection formation:
// the heap's contents died with the process, so Resume restarts formation
// from scratch — and the restarted job still ends byte-identical.
func TestCheckpointRSFormationRestart(t *testing.T) {
	dir := t.TempDir()
	s := ckptConfig(t, dir)
	bound := s.MaxRecords(Threaded)
	n := int(6 * bound)
	raw := genRaw(n, 32, record.Uniform{Seed: 37})
	ckptDir := filepath.Join(dir, "ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err := s.Sort(ctx, FromBytes(raw), Discard(),
		WithRunFormation(ReplacementSelect), WithCheckpoint(ckptDir),
		WithProgress(func(ev Progress) {
			if ev.Pass == 0 && ev.FormedRecords > 0 && ev.MergedRecords == 0 {
				once.Do(cancel)
			}
		}))
	if err == nil {
		res.Close()
		t.Skip("sort completed before formation could be interrupted")
	}

	var out bytes.Buffer
	rres, err := s.Resume(context.Background(), ckptDir, FromBytes(raw), ToWriter(&out))
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	defer rres.Close()
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, 32, KeySpec{})) {
		t.Error("restarted replacement-selection output differs from the reference")
	}
	if rres.Merge.ResumedRuns != 0 {
		t.Errorf("ResumedRuns = %d after an RS formation restart, want 0 (formation redone)", rres.Merge.ResumedRuns)
	}
}

// TestResumeValidation covers the refusals: no manifest, a completed job,
// and a mismatched source size.
func TestResumeValidation(t *testing.T) {
	dir := t.TempDir()
	s := ckptConfig(t, dir)

	if _, err := s.Resume(context.Background(), filepath.Join(dir, "nope"), nil, Discard()); err == nil {
		t.Error("Resume on a nonexistent manifest dir succeeded")
	}

	// A completed checkpointed job retires its state; resuming it must fail.
	bound := s.MaxRecords(Threaded)
	n := int(3 * bound)
	raw := genRaw(n, 32, record.Uniform{Seed: 39})
	ckptDir := filepath.Join(dir, "ckpt")
	res, err := s.Sort(context.Background(), FromBytes(raw), Discard(), WithCheckpoint(ckptDir))
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	if _, err := s.Resume(context.Background(), ckptDir, FromBytes(raw), Discard()); err == nil {
		t.Error("Resume after successful completion succeeded")
	}

	// Crash one, then offer a source of the wrong size.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err = s.Sort(ctx, FromBytes(raw), Discard(),
		WithRunFormation(FixedBatch), WithCheckpoint(ckptDir),
		WithProgress(func(ev Progress) {
			if ev.Pass == 0 && ev.MergedRecords > 0 {
				once.Do(cancel)
			}
		}))
	if err == nil {
		res.Close()
		t.Fatal("cancelled checkpointed sort returned no error")
	}
	short := raw[:len(raw)-32]
	if _, err := s.Resume(context.Background(), ckptDir, FromBytes(short), Discard()); err == nil {
		t.Error("Resume accepted a source with the wrong record count")
	}
	if _, err := s.Resume(context.Background(), ckptDir, FromBytes(raw), nil); !errors.Is(err, ErrSinkRequired) {
		t.Errorf("Resume with nil Sink: err = %v, want ErrSinkRequired", err)
	}
}

// TestManifestTornTail appends garbage (a torn final line) to a crashed
// job's manifest: replay must ignore the tear and the resume still succeed.
func TestManifestTornTail(t *testing.T) {
	dir := t.TempDir()
	s := ckptConfig(t, dir)
	bound := s.MaxRecords(Threaded)
	n := int(4 * bound)
	raw := genRaw(n, 32, record.Uniform{Seed: 41})
	ckptDir := filepath.Join(dir, "ckpt")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	res, err := s.Sort(ctx, FromBytes(raw), Discard(),
		WithRunFormation(FixedBatch), WithMergeFanIn(2), WithCheckpoint(ckptDir),
		WithProgress(func(ev Progress) {
			if ev.Pass == 0 && ev.MergedRecords > 0 {
				once.Do(cancel)
			}
		}))
	if err == nil {
		res.Close()
		t.Fatal("cancelled checkpointed sort returned no error")
	}

	f, err := os.OpenFile(filepath.Join(ckptDir, "manifest.wal"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"merged","run":{"id":99`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	rres, err := s.Resume(context.Background(), ckptDir, FromBytes(raw), ToWriter(&out))
	if err != nil {
		t.Fatalf("Resume over a torn manifest tail: %v", err)
	}
	defer rres.Close()
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, 32, KeySpec{})) {
		t.Error("resumed output differs from the reference after a torn tail")
	}
}

// TestWithDeadlineExceeded checks the per-job deadline end to end: the sort
// fails with a wrapped context.DeadlineExceeded and unwinds leak-free — no
// goroutines, no scratch files.
func TestWithDeadlineExceeded(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, filepath.Join(dir, "scratch"))
	s := ckptConfig(t, dir)
	bound := s.MaxRecords(Threaded)
	n := 4 * bound

	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 43}, n), Discard(),
		WithDeadline(time.Nanosecond))
	if err == nil {
		res.Close()
		t.Fatal("sort with a 1ns deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, context.DeadlineExceeded)", err)
	}

	// The engine stays serviceable after the deadline blew.
	res, err = s.Sort(context.Background(), Generate(record.Uniform{Seed: 44}, bound/2), Discard(),
		WithDeadline(time.Minute))
	if err != nil {
		t.Fatalf("sort with a generous deadline: %v", err)
	}
	res.Close()
}

// TestCheckpointSingleRunIgnored pins that WithCheckpoint on a below-bound
// sort (no hierarchical path) is accepted and harmless.
func TestCheckpointSingleRunIgnored(t *testing.T) {
	dir := t.TempDir()
	s := ckptConfig(t, dir)
	bound := s.MaxRecords(Threaded)
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 45}, bound/2), Discard(),
		WithCheckpoint(filepath.Join(dir, "ckpt")))
	if err != nil {
		t.Fatalf("single-run sort with WithCheckpoint: %v", err)
	}
	res.Close()
	if _, err := os.Stat(filepath.Join(dir, "ckpt", "manifest.wal")); !os.IsNotExist(err) {
		t.Errorf("single-run sort wrote a manifest (stat err %v)", err)
	}
}
