package colsort

// The engine: sort-as-a-service. An Engine is the long-lived object that
// owns the simulated machine — the pdm backends, the per-processor
// record.Pool arenas, the spill-disk scratch directory — and hands out
// per-job leases so N concurrent Engine.Sort calls share warm buffers
// instead of each fragmenting its own. Admission is controlled by memory
// budget: each job asks for the bytes its run plan needs (or its
// WithMaxMemory cap, when given), the asks are debited against
// EngineConfig.TotalMemory, and jobs that do not fit queue FIFO with
// ctx-aware waiting (or fail fast under WithNoWait). Fault counters,
// progress callbacks and cancellation stay job-scoped; the engine
// accumulates per-job results into an engine-wide Stats snapshot. See
// DESIGN.md §10 for the lifecycle and attribution contracts.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// ErrBusy is returned by Engine.Sort under WithNoWait when the job cannot
// be admitted immediately — the engine's memory budget is exhausted or
// earlier jobs are already queued. Detect with errors.Is; the job was not
// started and may simply be retried later.
var ErrBusy = errors.New("colsort: engine at capacity")

// ErrEngineClosed is returned by Engine.Sort on a closed engine, and
// delivered to any job still queued when Close is called.
var ErrEngineClosed = errors.New("colsort: engine closed")

// EngineConfig configures an Engine: the simulated cluster (Config, the
// same construction-time description a Sorter takes) plus the engine-wide
// admission budget.
type EngineConfig struct {
	Config
	// TotalMemory is the engine-wide memory budget, in bytes, that
	// concurrent jobs' asks are debited against. A job's ask is its
	// WithMaxMemory cap when given, otherwise the record bytes of its run
	// plan (N·RecordSize of the single run it executes — the dominant
	// term of a job's footprint; stores, pools and merge chunks are all
	// sized from it). 0 disables admission control: every job is admitted
	// immediately.
	TotalMemory int64
}

// Engine is a long-lived sorting service: one simulated machine (backends,
// buffer-pool arena, scratch directory) serving any number of concurrent
// Sort jobs under admission control. Create one with NewEngine, share it
// freely — all methods are safe for concurrent use — and Close it when
// done serving.
//
// Each Sort call becomes a job: it leases its memory ask from the engine,
// runs on a value-copy of the machine that shares the engine's pools and
// backend but carries the job's own retry policy, fault counters and
// scratch namespace (pdm.JobScratchPrefix), and releases the lease when it
// returns. Jobs never share mutable state beyond the concurrency-safe
// pools, so their results are byte-identical to solo runs.
type Engine struct {
	cfg   Config
	total int64
	m     pdm.Machine

	// jobSeq numbers jobs for scratch namespacing and Result.JobID.
	jobSeq atomic.Int64

	mu      sync.Mutex
	drained *sync.Cond // signaled when active returns to 0 (Close waits on it)
	closed  bool
	leased  int64 // bytes currently leased to admitted jobs
	peak    int64 // high-water mark of leased
	active  int
	queue   []*waiter

	completed int64
	failed    int64
	cum       sim.Counters // engine passes of completed jobs
	cumFaults FaultStats   // fault-tolerance activity of all jobs, failed included

	// Hierarchical run-formation accounting of completed jobs (see the
	// matching EngineStats fields).
	runsFormed       int64
	downRunsFormed   int64
	runRecordsFormed int64
	mergeLevelsRun   int64

	// Durable-job accounting: jobs that resumed from a manifest, and the
	// verified runs they adopted without re-sorting.
	jobsResumed int64
	runsResumed int64
}

// waiter is one queued admission request. granted and err are written
// under Engine.mu strictly before ready is closed, so the admitted job
// (or the canceller racing it) reads them consistently.
type waiter struct {
	ready   chan struct{}
	ask     int64
	granted bool
	err     error
}

// lease is one admitted job's hold on the engine's memory budget.
type lease struct {
	e   *Engine
	ask int64
}

// NewEngine validates the configuration, builds the shared machine
// (probing a disk-array construction to surface configuration errors
// eagerly) and returns an Engine ready to serve jobs.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.TotalMemory < 0 {
		return nil, fmt.Errorf("colsort: negative TotalMemory %d", cfg.TotalMemory)
	}
	c := cfg.Config
	if c.Disks == 0 {
		c.Disks = c.Procs
	}
	if err := record.CheckSize(c.RecordSize); err != nil {
		return nil, err
	}
	m := pdm.Machine{P: c.Procs, D: c.Disks, StripeBytes: c.StripeBytes,
		Pools: record.NewPools(c.Procs)}
	if c.Dir != "" {
		m.Backend = pdm.FileBackend{Dir: c.Dir}
	}
	if c.Async {
		m.Async = &pdm.AsyncConfig{ReadAhead: c.ReadAhead, WriteBehind: c.WriteBehind}
	}
	if c.DiskSeekMicros > 0 || c.DiskMBps > 0 {
		m.Delay = &pdm.DelayConfig{
			Seek:        time.Duration(c.DiskSeekMicros) * time.Microsecond,
			BytesPerSec: int64(c.DiskMBps) << 20,
		}
	}
	m.Chaos = chaosToPDM(c.Chaos)
	probe, err := m.NewArrays()
	if err != nil {
		return nil, err
	}
	for _, a := range probe { // validation only: release files and workers
		a.Close()
	}
	e := &Engine{cfg: c, total: cfg.TotalMemory, m: m}
	e.drained = sync.NewCond(&e.mu)
	return e, nil
}

// chaosToPDM converts the public chaos configuration to the pdm layer's;
// nil stays nil (chaos disabled).
func chaosToPDM(c *ChaosConfig) *pdm.ChaosConfig {
	if c == nil {
		return nil
	}
	return &pdm.ChaosConfig{
		Seed:           c.Seed,
		PTransient:     c.PTransient,
		PBitFlip:       c.PBitFlip,
		PTorn:          c.PTorn,
		TornSpillWrite: c.TornSpillWrite,
		FlipSpillRead:  c.FlipSpillRead,
		DeadSpillDisk:  c.DeadSpillDisk,
		DeadSpillAfter: c.DeadSpillAfter,
	}
}

// Close marks the engine closed, fails every queued job with
// ErrEngineClosed, and blocks until the active jobs drain. Idempotent;
// always returns nil (the jobs own their errors).
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		for e.active > 0 {
			e.drained.Wait()
		}
		return nil
	}
	e.closed = true
	for _, w := range e.queue {
		w.err = ErrEngineClosed
		close(w.ready)
	}
	e.queue = nil
	for e.active > 0 {
		e.drained.Wait()
	}
	return nil
}

// admit leases ask bytes from the engine's budget, queueing FIFO behind
// earlier waiters when the budget (or the queue's head-of-line position)
// does not admit the job immediately. Queueing is strict FIFO — only the
// head of the queue is ever granted — so a large ask cannot be starved by
// a stream of small ones. Cancelling ctx while queued returns promptly
// with ctx.Err().
func (e *Engine) admit(ctx context.Context, ask int64, noWait bool) (*lease, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	if e.total > 0 && ask > e.total {
		e.mu.Unlock()
		return nil, fmt.Errorf("colsort: job asks %d bytes but the engine's TotalMemory is %d: the ask can never be admitted (raise TotalMemory or lower the job's WithMaxMemory)", ask, e.total)
	}
	if len(e.queue) == 0 && e.fits(ask) {
		e.grant(ask)
		e.mu.Unlock()
		return &lease{e: e, ask: ask}, nil
	}
	if noWait {
		leased, queued := e.leased, len(e.queue)
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %d bytes asked, %d of %d leased, %d jobs queued", ErrBusy, ask, leased, e.total, queued)
	}
	w := &waiter{ready: make(chan struct{}), ask: ask}
	e.queue = append(e.queue, w)
	e.mu.Unlock()
	select {
	case <-w.ready:
		if w.err != nil {
			return nil, w.err
		}
		return &lease{e: e, ask: ask}, nil
	case <-ctx.Done():
		e.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the lease exists, so give
			// it back (waking whoever is next) before reporting the cancel.
			e.mu.Unlock()
			(&lease{e: e, ask: ask}).release()
			return nil, ctx.Err()
		}
		for i, q := range e.queue {
			if q == w {
				e.queue = append(e.queue[:i], e.queue[i+1:]...)
				break
			}
		}
		e.mu.Unlock()
		return nil, ctx.Err()
	}
}

// fits reports whether ask bytes fit the remaining budget. Caller holds mu.
func (e *Engine) fits(ask int64) bool {
	return e.total <= 0 || e.leased+ask <= e.total
}

// grant debits ask from the budget and counts the job active. Caller
// holds mu.
func (e *Engine) grant(ask int64) {
	e.leased += ask
	if e.leased > e.peak {
		e.peak = e.leased
	}
	e.active++
}

// wake admits queued jobs head-first while they fit. Caller holds mu.
func (e *Engine) wake() {
	for len(e.queue) > 0 && e.fits(e.queue[0].ask) {
		w := e.queue[0]
		e.queue = e.queue[1:]
		w.granted = true
		e.grant(w.ask)
		close(w.ready)
	}
}

// release returns the lease to the budget, wakes admissible waiters, and
// signals Close when the engine has drained.
func (l *lease) release() {
	e := l.e
	e.mu.Lock()
	e.leased -= l.ask
	e.active--
	e.wake()
	if e.active == 0 {
		e.drained.Broadcast()
	}
	e.mu.Unlock()
}

// job is one admitted Sort: the engine pointer, the job's id (which names
// its scratch namespace), the per-job machine view, and the job's own
// fault counters — isolation that keeps Result.Faults attributable under
// concurrency, where a shared counter's delta would interleave jobs.
type job struct {
	e      *Engine
	id     int64
	m      pdm.Machine
	faults pdm.FaultStats

	// ckpt is the job's manifest WAL when the job runs under
	// WithCheckpoint; nil otherwise. All manifestLog methods are
	// nil-receiver-safe, so call sites never guard on it for logging —
	// only for the extra fsync work that has no point without a WAL.
	ckpt *manifestLog
}

// newJob builds the per-job machine: a value copy of the engine's machine
// — sharing the concurrency-safe buffer pools and the backend — with the
// job's fabric choice, any per-job Config overrides (WithAsync,
// WithDiskModel, WithChaos), a retry layer wired to the job's context and
// fault counters, and scratch namespaced by the job id so concurrent jobs
// can never collide in a shared scratch directory.
func (e *Engine) newJob(ctx context.Context, o sortOptions) *job {
	j := &job{e: e, id: e.jobSeq.Add(1)}
	m := e.m
	m.CopyFabric = o.fabric == FabricCopying
	if o.asyncSet {
		if o.async {
			if m.Async == nil {
				m.Async = &pdm.AsyncConfig{ReadAhead: e.cfg.ReadAhead, WriteBehind: e.cfg.WriteBehind}
			}
		} else {
			m.Async = nil
		}
	}
	if o.delaySet {
		if o.delaySeek > 0 || o.delayMBps > 0 {
			m.Delay = &pdm.DelayConfig{Seek: o.delaySeek, BytesPerSec: int64(o.delayMBps) << 20}
		} else {
			m.Delay = nil
		}
	}
	if o.chaosSet {
		m.Chaos = chaosToPDM(o.chaos)
	}
	rc := pdm.RetryConfig{Cancel: ctx.Done(), Stats: &j.faults}
	if p := o.retry; p != nil {
		rc.MaxAttempts = p.MaxAttempts
		rc.BaseDelay = p.BaseDelay
		rc.MaxDelay = p.MaxDelay
	}
	m.Retry = &rc
	j.m = m.Namespaced(pdm.JobScratchPrefix(j.id))
	if o.checkpoint != "" {
		// Checkpointed jobs spill their hierarchical runs into the manifest
		// directory as keep-on-close files — the durable state Resume
		// reopens. Array disks (ingest stores, pipeline scratch) stay on the
		// ordinary scratch backend: they are recomputed, never resumed.
		j.m.SpillBackend = pdm.FileBackend{Dir: o.checkpoint, Prefix: ckptRunPrefix, Keep: true}
	}
	return j
}

// faultStats reads the job's fault counters into the public report.
func (j *job) faultStats() FaultStats {
	d := j.faults.Snapshot()
	return FaultStats{
		DiskRetries:   d.Retries,
		DiskGiveUps:   d.GaveUps,
		CorruptChunks: d.CorruptChunks,
		ChunkRereads:  d.Rereads,
		BatchRedos:    d.BatchRedos,
	}
}

// finishJob folds one finished job into the engine's cumulative stats.
func (e *Engine) finishJob(res *Result, faults FaultStats, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err != nil {
		e.failed++
	} else {
		e.completed++
	}
	if res != nil && res.Result != nil {
		e.cum.Add(res.Result.TotalCounters())
	}
	if res != nil && res.Merge != nil {
		e.runsFormed += int64(res.Merge.Runs)
		e.downRunsFormed += int64(res.Merge.DownRuns)
		e.runRecordsFormed += res.RealRecords()
		e.mergeLevelsRun += int64(res.Merge.Levels)
		if res.Merge.ResumedRuns > 0 {
			e.jobsResumed++
			e.runsResumed += int64(res.Merge.ResumedRuns)
		}
	}
	e.cumFaults.accumulate(faults)
}

// accumulate adds d's fields into f.
func (f *FaultStats) accumulate(d FaultStats) {
	f.DiskRetries += d.DiskRetries
	f.DiskGiveUps += d.DiskGiveUps
	f.CorruptChunks += d.CorruptChunks
	f.ChunkRereads += d.ChunkRereads
	f.BatchRedos += d.BatchRedos
}

// EngineStats is a point-in-time snapshot of an Engine; see Engine.Stats.
// The JSON tags are the wire representation the colsort-server exposes
// (and the source of its /metrics gauges); TestWireEncodingGolden pins
// them.
type EngineStats struct {
	// ActiveJobs and QueuedJobs count the jobs currently running and
	// currently waiting for admission.
	ActiveJobs int `json:"active_jobs"`
	QueuedJobs int `json:"queued_jobs"`
	// CompletedJobs and FailedJobs count the jobs that have finished over
	// the engine's lifetime (a cancelled job counts as failed).
	CompletedJobs int64 `json:"completed_jobs"`
	FailedJobs    int64 `json:"failed_jobs"`
	// LeasedBytes is the sum of the active jobs' asks; PeakLeasedBytes its
	// lifetime high-water mark — always ≤ TotalMemory when a budget is set,
	// which is the admission-control invariant tests pin.
	LeasedBytes     int64 `json:"leased_bytes"`
	PeakLeasedBytes int64 `json:"peak_leased_bytes"`
	TotalMemory     int64 `json:"total_memory"`
	// PoolFreeBuffers / PoolFreeBytes report the warm buffer arena: idle
	// buffers (and their total capacity) currently held by the engine's
	// per-processor pools, ready for the next job.
	PoolFreeBuffers int   `json:"pool_free_buffers"`
	PoolFreeBytes   int64 `json:"pool_free_bytes"`
	// Counters is the cumulative engine-pass accounting of every completed
	// job (the sum of their Result.TotalCounters without fault fields);
	// Faults the cumulative fault-tolerance activity of every job, failed
	// jobs included.
	Counters sim.Counters `json:"counters"`
	Faults   FaultStats   `json:"faults"`
	// Hierarchical run-formation accounting of every completed job that
	// took the runs-plus-merge path: runs spilled (descending runs
	// separately), records they held, and merge levels executed. The
	// run/record split exposes the average run length — the number that
	// shows replacement selection earning its ~2× over fixed batches.
	RunsFormed       int64 `json:"runs_formed,omitempty"`
	DownRunsFormed   int64 `json:"down_runs_formed,omitempty"`
	RunRecordsFormed int64 `json:"run_records_formed,omitempty"`
	MergeLevelsRun   int64 `json:"merge_levels_run,omitempty"`
	// JobsResumed counts jobs that completed via Engine.Resume from a
	// persisted manifest; RunsResumed the verified runs those jobs adopted
	// without re-sorting a single batch.
	JobsResumed int64 `json:"jobs_resumed,omitempty"`
	RunsResumed int64 `json:"runs_resumed,omitempty"`
}

// Config returns the engine's construction-time configuration (with the
// defaults New/NewEngine resolved — Disks filled in when it was 0). It is
// a copy: mutating it cannot affect the engine. Front ends use it to learn
// the record size and machine shape they serve without carrying a second
// copy of the Config.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a consistent snapshot of the engine's admission state and
// cumulative accounting, plus the current buffer-pool occupancy.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	st := EngineStats{
		ActiveJobs:       e.active,
		QueuedJobs:       len(e.queue),
		CompletedJobs:    e.completed,
		FailedJobs:       e.failed,
		LeasedBytes:      e.leased,
		PeakLeasedBytes:  e.peak,
		TotalMemory:      e.total,
		Counters:         e.cum,
		Faults:           e.cumFaults,
		RunsFormed:       e.runsFormed,
		DownRunsFormed:   e.downRunsFormed,
		RunRecordsFormed: e.runRecordsFormed,
		MergeLevelsRun:   e.mergeLevelsRun,
		JobsResumed:      e.jobsResumed,
		RunsResumed:      e.runsResumed,
	}
	e.mu.Unlock()
	for _, p := range e.m.Pools {
		st.PoolFreeBuffers += p.FreeBuffers()
		st.PoolFreeBytes += p.FreeBytes()
	}
	return st
}
