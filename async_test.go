package colsort

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"colsort/internal/record"
	"colsort/internal/testutil"
)

// TestAsyncMatchesSync is the acceptance check of the async layer: a
// file-backed async run must produce byte-identical output AND identical
// exact operation counts to the synchronous path — the wrapper moves
// completion off the issuing goroutine, never the logical access pattern.
func TestAsyncMatchesSync(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, p, mem, z = 1 << 14, 4, 1 << 10, 32
	for _, alg := range []Algorithm{Threaded, Subblock, MColumn} {
		t.Run(alg.String(), func(t *testing.T) {
			run := func(async bool) ([]byte, interface{}) {
				s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z,
					Dir: t.TempDir(), Async: async})
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 42}, n), nil,
					WithAlgorithm(alg), WithPadding(PadNever))
				if err != nil {
					t.Fatal(err)
				}
				defer res.Close()
				if err := res.Verify(); err != nil {
					t.Fatal(err)
				}
				snap, err := res.Output.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				return append([]byte(nil), snap.Data...), res.TotalCounters()
			}
			syncOut, syncCnt := run(false)
			asyncOut, asyncCnt := run(true)
			if !bytes.Equal(syncOut, asyncOut) {
				t.Fatal("async output differs from sync output")
			}
			if syncCnt != asyncCnt {
				t.Fatalf("operation counts differ:\n sync  %+v\n async %+v", syncCnt, asyncCnt)
			}
		})
	}
}

// TestSortFile round-trips a real on-disk file (a non-power-of-two record
// count, so the padding path is exercised) through the async file-backed
// sorter and checks the output file is a sorted permutation of the input.
func TestSortFile(t *testing.T) {
	const n, z = 1000, 16
	dir := t.TempDir()
	testutil.CheckLeaks(t, filepath.Join(dir, "scratch"))
	in := filepath.Join(dir, "input.dat")
	out := filepath.Join(dir, "sorted.dat")

	src := record.Make(n, z)
	record.Fill(src, record.Uniform{Seed: 9}, 0)
	if err := os.WriteFile(in, src.Data, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: z,
		Dir: filepath.Join(dir, "scratch"), Async: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sort(context.Background(), FromFile(in), ToFile(out), WithAlgorithm(Threaded))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.RealRecords() != n {
		t.Fatalf("RealRecords = %d, want %d", res.RealRecords(), n)
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != n*z {
		t.Fatalf("output file holds %d bytes, want %d", len(data), n*z)
	}
	got := record.NewSlice(data, z)
	if !got.IsSorted() {
		t.Fatal("output file not sorted")
	}
	var want, have record.Checksum
	want.AddSlice(src)
	have.AddSlice(got)
	if !have.Equal(want) {
		t.Fatal("output file is not a permutation of the input")
	}
}

// TestSortFileRejectsRaggedInput covers the input-validation path.
func TestSortFileRejectsRaggedInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "ragged.dat")
	if err := os.WriteFile(in, make([]byte, 100), 0o644); err != nil { // 100 % 16 != 0
		t.Fatal(err)
	}
	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sort(context.Background(), FromFile(in), ToFile(filepath.Join(dir, "out.dat"))); err == nil {
		t.Fatal("ragged input accepted")
	}
	if _, err := s.Sort(context.Background(), FromFile(filepath.Join(dir, "missing.dat")), ToFile(filepath.Join(dir, "out.dat"))); err == nil {
		t.Fatal("missing input accepted")
	}
}
