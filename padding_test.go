package colsort

import (
	"context"
	"testing"
	"testing/quick"

	"colsort/internal/record"
)

// sortAny sorts n generated records under PadAuto — the padding path the
// removed SortGeneratedAny wrapper used to expose.
func sortAny(s *Sorter, alg Algorithm, n int64, g record.Generator) (*Result, error) {
	return s.Sort(context.Background(), Generate(g, n), nil, WithAlgorithm(alg))
}

// TestSortAnyArbitrarySizes removes the power-of-two requirement: arbitrary
// record counts must sort via padding (Section-6 future-work item).
func TestSortAnyArbitrarySizes(t *testing.T) {
	s := newTestSorter(t, 4, 512)
	for _, n := range []int64{1, 2, 3, 100, 511, 513, 1000, 1025, 3000, 4095} {
		res, err := sortAny(s, Threaded, n, record.Uniform{Seed: uint64(n)})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.RealRecords() != n {
			t.Fatalf("n=%d: RealRecords = %d", n, res.RealRecords())
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		res.Close()
	}
}

func TestSortAnyExactPowerOfTwo(t *testing.T) {
	// A power-of-two n must behave like the plain path (no pads).
	s := newTestSorter(t, 4, 512)
	res, err := sortAny(s, Threaded, 2048, record.Uniform{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Plan.N != 2048 {
		t.Fatalf("padded to %d, expected exact fit", res.Plan.N)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSortAnyWithMaxKeyRecords(t *testing.T) {
	// Real records whose bytes equal the pad pattern must not break the
	// prefix check (they are byte-identical to pads, so interchangeable).
	s := newTestSorter(t, 2, 512)
	g := allOnes{}
	res, err := sortAny(s, Threaded, 700, g)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// allOnes generates records that look exactly like pads.
type allOnes struct{}

func (allOnes) Name() string { return "all-ones" }
func (allOnes) Gen(rec []byte, idx int64) {
	for i := range rec {
		rec[i] = 0xff
	}
}

func TestSortAnyAllAlgorithms(t *testing.T) {
	cases := []struct {
		alg Algorithm
		p   int
		mem int
		n   int64
	}{
		{Subblock, 4, 256, 3000},
		{MColumn, 4, 64, 700},
		{Combined, 4, 64, 3333},
	}
	for _, c := range cases {
		s, err := New(Config{Procs: c.p, MemPerProc: c.mem, RecordSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sortAny(s, c.alg, c.n, record.Dup{Seed: 3, K: 5})
		if err != nil {
			t.Fatalf("%v n=%d: %v", c.alg, c.n, err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("%v n=%d: %v", c.alg, c.n, err)
		}
		res.Close()
	}
}

func TestSortAnyRejectsNonPositive(t *testing.T) {
	s := newTestSorter(t, 2, 512)
	if _, err := sortAny(s, Threaded, 0, record.Uniform{Seed: 1}); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestSortAnyQuick(t *testing.T) {
	s := newTestSorter(t, 2, 512)
	f := func(nRaw uint16, seed uint64) bool {
		n := int64(nRaw%2000) + 1
		res, err := sortAny(s, Threaded, n, record.Uniform{Seed: seed})
		if err != nil {
			return false
		}
		defer res.Close()
		return res.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridThroughFacade(t *testing.T) {
	s, err := New(Config{Procs: 8, MemPerProc: 256, RecordSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PlanHybrid(1, 1024); err == nil {
		t.Fatal("g=1 accepted")
	}
	res, err := s.Sort(context.Background(), Generate(record.Zipf{Seed: 8}, 512*4), nil,
		WithHybridGroup(2))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Plan.Group != 2 || res.Plan.R != 512 {
		t.Fatalf("plan %+v", res.Plan)
	}
}
