module colsort

go 1.24
