module colsort

go 1.23
