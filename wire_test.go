package colsort

// TestWireEncodingGolden pins the JSON wire representation of the types
// the colsort-server exposes: Progress (the SSE push payload), MergeStats,
// FaultStats, EngineStats (the /metrics gauge source) and ResultSummary
// (the job API's result digest). The encodings are deliberate — snake_case
// tags, omitempty only where absence is meaningful — rather than Go's
// default-cased field names, and any drift is a wire-protocol change that
// must be made consciously (update the golden AND DESIGN.md §11).

import (
	"encoding/json"
	"testing"

	"colsort/internal/sim"
)

func TestWireEncodingGolden(t *testing.T) {
	fullCounters := sim.Counters{
		DiskReadBytes: 1, DiskWriteBytes: 2, DiskReadOps: 3, DiskWriteOps: 4,
		NetBytes: 5, NetMsgs: 6, LocalBytes: 7, LocalMsgs: 8,
		CompareUnits: 9, MovedBytes: 10, Rounds: 11,
		DiskRetries: 12, DiskGiveUps: 13, CorruptChunks: 14, ChunkRereads: 15, BatchRedos: 16,
	}
	const countersJSON = `{"disk_read_bytes":1,"disk_write_bytes":2,"disk_read_ops":3,"disk_write_ops":4,` +
		`"net_bytes":5,"net_msgs":6,"local_bytes":7,"local_msgs":8,"compare_units":9,"moved_bytes":10,` +
		`"rounds":11,"disk_retries":12,"disk_give_ups":13,"corrupt_chunks":14,"chunk_rereads":15,"batch_redos":16}`

	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			name: "progress pass event",
			v:    Progress{Pass: 2, Passes: 3, Round: 1, Rounds: 4},
			want: `{"pass":2,"passes":3,"round":1,"rounds":4}`,
		},
		{
			name: "progress batch event",
			v:    Progress{Pass: 1, Passes: 3, Round: 4, Rounds: 4, Batch: 2, Batches: 5},
			want: `{"pass":1,"passes":3,"round":4,"rounds":4,"batch":2,"batches":5}`,
		},
		{
			name: "progress merge event",
			v:    Progress{MergedRecords: 512, TotalRecords: 2048},
			want: `{"pass":0,"passes":0,"round":0,"rounds":0,"merged_records":512,"total_records":2048}`,
		},
		{
			name: "progress formation event",
			v:    Progress{Batch: 3, Batches: 5, FormedRecords: 700, TotalRecords: 2048},
			want: `{"pass":0,"passes":0,"round":0,"rounds":0,"batch":3,"batches":5,"formed_records":700,"total_records":2048}`,
		},
		{
			name: "merge stats",
			v:    MergeStats{Runs: 8, Levels: 2, FanIn: 4, RunRecords: 4096, BytesRead: 100, BytesWritten: 200},
			want: `{"runs":8,"levels":2,"fan_in":4,"run_records":4096,"bytes_read":100,"bytes_written":200}`,
		},
		{
			name: "merge stats replacement selection",
			v: MergeStats{
				Runs: 5, Levels: 1, FanIn: 16, RunRecords: 4096, BytesRead: 100, BytesWritten: 200,
				Formation: "replacement-select", DownRuns: 2, MinRunRecords: 512, MaxRunRecords: 9000,
			},
			want: `{"runs":5,"levels":1,"fan_in":16,"run_records":4096,"bytes_read":100,"bytes_written":200,` +
				`"formation":"replacement-select","down_runs":2,"min_run_records":512,"max_run_records":9000}`,
		},
		{
			name: "fault stats",
			v:    FaultStats{DiskRetries: 1, DiskGiveUps: 2, CorruptChunks: 3, ChunkRereads: 4, BatchRedos: 5},
			want: `{"disk_retries":1,"disk_give_ups":2,"corrupt_chunks":3,"chunk_rereads":4,"batch_redos":5}`,
		},
		{
			name: "sim counters",
			v:    fullCounters,
			want: countersJSON,
		},
		{
			name: "engine stats",
			v: EngineStats{
				ActiveJobs: 1, QueuedJobs: 2, CompletedJobs: 3, FailedJobs: 4,
				LeasedBytes: 5, PeakLeasedBytes: 6, TotalMemory: 7,
				PoolFreeBuffers: 8, PoolFreeBytes: 9,
				Counters: fullCounters,
				Faults:   FaultStats{DiskRetries: 17},
			},
			want: `{"active_jobs":1,"queued_jobs":2,"completed_jobs":3,"failed_jobs":4,` +
				`"leased_bytes":5,"peak_leased_bytes":6,"total_memory":7,"pool_free_buffers":8,"pool_free_bytes":9,` +
				`"counters":` + countersJSON + `,` +
				`"faults":{"disk_retries":17,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0}}`,
		},
		{
			name: "engine stats with run formation",
			v: EngineStats{
				CompletedJobs: 1,
				RunsFormed:    6, DownRunsFormed: 2, RunRecordsFormed: 40000, MergeLevelsRun: 1,
			},
			want: `{"active_jobs":0,"queued_jobs":0,"completed_jobs":1,"failed_jobs":0,` +
				`"leased_bytes":0,"peak_leased_bytes":0,"total_memory":0,"pool_free_buffers":0,"pool_free_bytes":0,` +
				`"counters":{"disk_read_bytes":0,"disk_write_bytes":0,"disk_read_ops":0,"disk_write_ops":0,` +
				`"net_bytes":0,"net_msgs":0,"local_bytes":0,"local_msgs":0,"compare_units":0,"moved_bytes":0,` +
				`"rounds":0,"disk_retries":0,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0},` +
				`"faults":{"disk_retries":0,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0},` +
				`"runs_formed":6,"down_runs_formed":2,"run_records_formed":40000,"merge_levels_run":1}`,
		},
		{
			name: "result summary single run",
			v: ResultSummary{
				JobID: 7, Records: 1000, Plan: "threaded r=256 s=4",
				Counters: sim.Counters{DiskReadBytes: 1},
			},
			want: `{"job_id":7,"records":1000,"plan":"threaded r=256 s=4",` +
				`"faults":{"disk_retries":0,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0},` +
				`"counters":{"disk_read_bytes":1,"disk_write_bytes":0,"disk_read_ops":0,"disk_write_ops":0,` +
				`"net_bytes":0,"net_msgs":0,"local_bytes":0,"local_msgs":0,"compare_units":0,"moved_bytes":0,` +
				`"rounds":0,"disk_retries":0,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0}}`,
		},
		{
			name: "result summary hierarchical",
			v: ResultSummary{
				JobID: 8, Records: 3000, Plan: "threaded r=256 s=4",
				Merge: &MergeStats{Runs: 3, Levels: 1, FanIn: 16, RunRecords: 1024},
			},
			want: `{"job_id":8,"records":3000,"plan":"threaded r=256 s=4",` +
				`"merge":{"runs":3,"levels":1,"fan_in":16,"run_records":1024,"bytes_read":0,"bytes_written":0},` +
				`"faults":{"disk_retries":0,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0},` +
				`"counters":{"disk_read_bytes":0,"disk_write_bytes":0,"disk_read_ops":0,"disk_write_ops":0,` +
				`"net_bytes":0,"net_msgs":0,"local_bytes":0,"local_msgs":0,"compare_units":0,"moved_bytes":0,` +
				`"rounds":0,"disk_retries":0,"disk_give_ups":0,"corrupt_chunks":0,"chunk_rereads":0,"batch_redos":0}}`,
		},
	}
	for _, tc := range cases {
		got, err := json.Marshal(tc.v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s: wire encoding drifted\n got: %s\nwant: %s", tc.name, got, tc.want)
		}
	}

	// Round trip: the server decodes job options and clients decode
	// summaries; the tagged names must parse back into the same values.
	var rt ResultSummary
	orig := ResultSummary{JobID: 9, Records: 42, Plan: "p", Faults: FaultStats{BatchRedos: 2}}
	b, _ := json.Marshal(orig)
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatal(err)
	}
	if rt != orig {
		t.Errorf("ResultSummary round trip: got %+v want %+v", rt, orig)
	}
}
