package colsort

// TestAPISurfaceGolden pins the package's exported API surface to a golden
// file. The v1 surface is FINAL: any removal or signature change fails this
// test (and the scripts/apidiff.sh CI gate, which compares the golden
// across commits against the api/removed.txt allowlist).
//
// After an intentional API change, regenerate with
//
//	COLSORT_UPDATE_API=1 go test -run TestAPISurfaceGolden .
//
// and, for removals, add the removed symbols to api/removed.txt.

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

const apiGoldenPath = "api/colsort_api.txt"

func TestAPISurfaceGolden(t *testing.T) {
	got := dumpAPISurface(t)
	if os.Getenv("COLSORT_UPDATE_API") != "" {
		if err := os.MkdirAll("api", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(apiGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", apiGoldenPath)
		return
	}
	wantBytes, err := os.ReadFile(apiGoldenPath)
	if err != nil {
		t.Fatalf("missing API golden (regenerate with COLSORT_UPDATE_API=1 go test -run TestAPISurfaceGolden .): %v", err)
	}
	want := string(wantBytes)
	if got == want {
		return
	}
	gotSet := toSet(got)
	wantSet := toSet(want)
	for line := range wantSet {
		if !gotSet[line] {
			t.Errorf("removed from the exported API:\n  %s", line)
		}
	}
	for line := range gotSet {
		if !wantSet[line] {
			t.Errorf("added to the exported API (regenerate the golden):\n  %s", line)
		}
	}
	t.Fatalf("exported API surface drifted from %s; if intentional, regenerate with COLSORT_UPDATE_API=1 and record removals in api/removed.txt", apiGoldenPath)
}

func toSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if line != "" {
			set[line] = true
		}
	}
	return set
}

// dumpAPISurface renders one sorted line per exported symbol of the root
// package: funcs and methods with full signatures, types with their
// exported fields and interface methods, consts and vars.
func dumpAPISurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["colsort"]
	if !ok {
		t.Fatalf("package colsort not found in .")
	}
	render := func(expr ast.Expr) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, expr); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	var lines []string
	add := func(format string, args ...interface{}) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				sig := renderFuncType(render, d.Type)
				if d.Recv == nil {
					add("func %s%s", d.Name.Name, sig)
					continue
				}
				recv := render(d.Recv.List[0].Type)
				if !ast.IsExported(strings.TrimLeft(recv, "*")) {
					continue
				}
				add("method (%s) %s%s", recv, d.Name.Name, sig)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, name := range s.Names {
							if name.IsExported() {
								add("%s %s", kind, name.Name)
							}
						}
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						switch tt := s.Type.(type) {
						case *ast.StructType:
							add("type %s struct", s.Name.Name)
							for _, f := range tt.Fields.List {
								ft := render(f.Type)
								if len(f.Names) == 0 { // embedded
									add("field %s.%s (embedded)", s.Name.Name, ft)
									continue
								}
								for _, fn := range f.Names {
									if fn.IsExported() {
										add("field %s.%s %s", s.Name.Name, fn.Name, ft)
									}
								}
							}
						case *ast.InterfaceType:
							add("type %s interface", s.Name.Name)
							for _, m := range tt.Methods.List {
								for _, mn := range m.Names {
									if mn.IsExported() {
										ft, ok := m.Type.(*ast.FuncType)
										if !ok {
											continue
										}
										add("ifacemethod %s.%s%s", s.Name.Name, mn.Name, renderFuncType(render, ft))
									}
								}
							}
						default:
							eq := ""
							if s.Assign.IsValid() {
								eq = " = " + render(s.Type)
							}
							add("type %s%s", s.Name.Name, eq)
						}
					}
				}
			}
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// renderFuncType renders "(params) results" for a func type.
func renderFuncType(render func(ast.Expr) string, ft *ast.FuncType) string {
	field := func(f *ast.Field) string {
		typ := render(f.Type)
		if n := len(f.Names); n > 1 {
			// "a, b int" contributes the type once per name.
			parts := make([]string, n)
			for i := range parts {
				parts[i] = typ
			}
			return strings.Join(parts, ", ")
		}
		return typ
	}
	var params []string
	for _, f := range ft.Params.List {
		params = append(params, field(f))
	}
	sig := "(" + strings.Join(params, ", ") + ")"
	if ft.Results == nil {
		return sig
	}
	var results []string
	for _, f := range ft.Results.List {
		results = append(results, field(f))
	}
	if len(results) == 1 {
		return sig + " " + results[0]
	}
	return sig + " (" + strings.Join(results, ", ") + ")"
}
