package colsort

import (
	"context"
	"fmt"
	"os"

	"colsort/internal/core"
)

// PlanFile reports the plan SortFile (or Sort with FromFile) would execute
// for the file at inPath: its record count padded to the first sortable
// power of two. It lets callers (and `colsort -in ... -plan`) price a file
// sort without running it.
func (s *Sorter) PlanFile(alg Algorithm, inPath string) (core.Plan, error) {
	info, err := os.Stat(inPath)
	if err != nil {
		return core.Plan{}, fmt.Errorf("colsort: %w", err)
	}
	z := s.cfg.RecordSize
	if info.Size() == 0 || info.Size()%int64(z) != 0 {
		return core.Plan{}, fmt.Errorf("colsort: input %s is %d bytes, not a positive multiple of the record size %d",
			inPath, info.Size(), z)
	}
	return s.planPadded(alg, info.Size()/int64(z))
}

// SortFile sorts the RecordSize-byte records of the file at inPath into a
// newly created file at outPath — the end-to-end "sort a file" path. Any
// record count ≥ 1 is accepted (the run is padded to the next sortable
// power of two) and the output is verified before outPath is written, so a
// failed sort never leaves a plausible output file behind.
//
// Deprecated: use Sort with FromFile and ToFile, which additionally takes
// a context and the full option set (key schema, progress, padding
// policy).
func (s *Sorter) SortFile(alg Algorithm, inPath, outPath string) (*Result, error) {
	return s.Sort(context.Background(), FromFile(inPath), ToFile(outPath), WithAlgorithm(alg))
}

// WriteFile streams the sorted records (excluding any power-of-two padding,
// and decoded back to the caller's key layout) into a newly created file at
// path, in the global column-major sorted order. Each owned row segment is
// prefetched one step ahead of the file writes, so an async-backed store
// overlaps the output scan with its disk service time.
func (r *Result) WriteFile(path string) error {
	return r.drainTo(context.Background(), ToFile(path))
}
