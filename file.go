package colsort

import (
	"context"
	"fmt"
	"os"

	"colsort/internal/core"
)

// PlanFile reports the plan Sort with FromFile would execute for the file
// at inPath: its record count padded to the first sortable power of two.
// It lets callers (and `colsort -in ... -plan`) price a file sort without
// running it.
func (e *Engine) PlanFile(alg Algorithm, inPath string) (core.Plan, error) {
	info, err := os.Stat(inPath)
	if err != nil {
		return core.Plan{}, fmt.Errorf("colsort: %w", err)
	}
	z := e.cfg.RecordSize
	if info.Size() == 0 || info.Size()%int64(z) != 0 {
		return core.Plan{}, fmt.Errorf("colsort: input %s is %d bytes, not a positive multiple of the record size %d",
			inPath, info.Size(), z)
	}
	return e.planPadded(alg, info.Size()/int64(z))
}

// PlanFile delegates to Engine.PlanFile.
func (s *Sorter) PlanFile(alg Algorithm, inPath string) (core.Plan, error) {
	return s.e.PlanFile(alg, inPath)
}

// WriteFile streams the sorted records (excluding any power-of-two padding,
// and decoded back to the caller's key layout) into a newly created file at
// path, in the global column-major sorted order. Each owned row segment is
// prefetched one step ahead of the file writes, so an async-backed store
// overlaps the output scan with its disk service time.
func (r *Result) WriteFile(path string) error {
	return r.drainTo(context.Background(), ToFile(path))
}
