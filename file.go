package colsort

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"colsort/internal/core"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// fileGen generates records by reading them back from a real input file, so
// the generator-driven input path (Store.Fill, input checksum) works off
// on-disk data. Both consumers scan indices in ascending order, so reads
// go through a chunked buffer — one pread per fileGenBufSize instead of
// one per record. Gen cannot return an error, so read failures are latched
// and checked after the scans.
type fileGen struct {
	f    *os.File
	z    int
	err  error
	buf  []byte
	base int64 // file offset of buf[0]
}

// fileGenBufSize is the read-chunk size of the input scans.
const fileGenBufSize = 1 << 20

func (g *fileGen) Name() string { return "file" }

func (g *fileGen) Gen(rec []byte, idx int64) {
	off := idx * int64(g.z)
	end := off + int64(g.z)
	if off < g.base || end > g.base+int64(len(g.buf)) {
		g.refill(off)
	}
	if k := off - g.base; end <= g.base+int64(len(g.buf)) {
		copy(rec, g.buf[k:k+int64(g.z)])
		return
	}
	if g.err == nil {
		g.err = fmt.Errorf("colsort: short read of input record %d", idx)
	}
	for i := range rec {
		rec[i] = 0
	}
}

func (g *fileGen) refill(off int64) {
	if cap(g.buf) == 0 {
		g.buf = make([]byte, fileGenBufSize)
	}
	b := g.buf[:cap(g.buf)]
	n, err := g.f.ReadAt(b, off)
	if err != nil && err != io.EOF && g.err == nil {
		g.err = fmt.Errorf("colsort: read input at offset %d: %w", off, err)
	}
	g.buf = b[:n]
	g.base = off
}

// PlanFile reports the plan SortFile would execute for the file at inPath:
// its record count padded to the first sortable power of two. It lets
// callers (and `colsort -in ... -plan`) price a file sort without running
// it.
func (s *Sorter) PlanFile(alg Algorithm, inPath string) (core.Plan, error) {
	info, err := os.Stat(inPath)
	if err != nil {
		return core.Plan{}, fmt.Errorf("colsort: %w", err)
	}
	z := s.cfg.RecordSize
	if info.Size() == 0 || info.Size()%int64(z) != 0 {
		return core.Plan{}, fmt.Errorf("colsort: input %s is %d bytes, not a positive multiple of the record size %d",
			inPath, info.Size(), z)
	}
	return s.planPadded(alg, info.Size()/int64(z))
}

// SortFile sorts the RecordSize-byte records of the file at inPath into a
// newly created file at outPath — the end-to-end "sort a file" path. The
// run uses the configured simulated cluster (file-back its disks via
// Config.Dir to keep the scratch space genuinely out-of-core, and enable
// Config.Async to overlap the scans with disk service time). Any record
// count ≥ 1 is accepted: the sort is padded to the next sortable power of
// two and only the real records are written out. The output is verified
// (sortedness + multiset) before outPath is written, so a failed sort
// never leaves a plausible output file behind.
//
// The returned Result carries the operation counts and estimates; the
// caller owns Close.
func (s *Sorter) SortFile(alg Algorithm, inPath, outPath string) (*Result, error) {
	z := s.cfg.RecordSize
	f, err := os.Open(inPath)
	if err != nil {
		return nil, fmt.Errorf("colsort: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("colsort: %w", err)
	}
	if info.Size() == 0 || info.Size()%int64(z) != 0 {
		return nil, fmt.Errorf("colsort: input %s is %d bytes, not a positive multiple of the record size %d",
			inPath, info.Size(), z)
	}
	n := info.Size() / int64(z)
	g := &fileGen{f: f, z: z}
	res, err := s.SortGeneratedAny(alg, n, g)
	if err != nil {
		return nil, err
	}
	if g.err != nil {
		res.Close()
		return nil, g.err
	}
	// Verify BEFORE writing the output file: a failed sort must not leave
	// a plausible-looking sorted.dat behind for a caller to consume.
	if err := res.Verify(); err != nil {
		res.Close()
		return nil, fmt.Errorf("colsort: refusing to write %s: %w", outPath, err)
	}
	if err := res.WriteFile(outPath); err != nil {
		res.Close()
		return nil, err
	}
	return res, nil
}

// WriteFile streams the sorted records (excluding any power-of-two padding)
// into a newly created file at path, in the global column-major sorted
// order. Each owned row segment is prefetched one step ahead of the file
// writes, so an async-backed store overlaps the output scan with its disk
// service time.
func (r *Result) WriteFile(path string) error {
	st := r.Output
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("colsort: %w", err)
	}
	w := bufio.NewWriterSize(out, 1<<20)

	var cnt sim.Counters
	buf := record.Make(st.R, st.RecSize)
	remaining := r.RealRecords()
	err = st.ScanSegments(func(p, j, lo, hi int) error {
		if remaining <= 0 {
			return pdm.ErrStopScan // pad tail: neither read nor prefetched
		}
		chunk := buf.Sub(0, hi-lo)
		if err := st.ReadRows(&cnt, p, j, lo, chunk); err != nil {
			return err
		}
		recs := int64(chunk.Len())
		if recs > remaining {
			recs = remaining
		}
		if _, err := w.Write(chunk.Data[:int(recs)*st.RecSize]); err != nil {
			return fmt.Errorf("colsort: write %s: %w", path, err)
		}
		remaining -= recs
		return nil
	})
	if err != nil {
		out.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		out.Close()
		return fmt.Errorf("colsort: write %s: %w", path, err)
	}
	if err := out.Close(); err != nil {
		return fmt.Errorf("colsort: close %s: %w", path, err)
	}
	return nil
}
