package colsort

// FuzzSourceIngest fuzzes the byte-level ingest adapters: FromBytes and
// FromReader must deliver exactly the same record stream for the same
// bytes, whatever chunk boundaries the underlying io.Reader imposes — the
// chunked reader's io.ReadFull handling of short and straddling reads is
// precisely where a stream source can silently corrupt records.

import (
	"bytes"
	"io"
	"testing"
)

// stutterReader returns at most max bytes per Read call, exercising record
// reads that straddle arbitrary chunk boundaries.
type stutterReader struct {
	data []byte
	max  int
}

func (r *stutterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := r.max
	if n > len(p) {
		n = len(p)
	}
	if n > len(r.data) {
		n = len(r.data)
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func FuzzSourceIngest(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef0123456789abcdef"), 5)
	f.Add([]byte("exactly sixteen!"), 1)
	f.Add([]byte(""), 3)
	f.Add([]byte("shorty"), 64)
	f.Fuzz(func(t *testing.T, data []byte, maxChunk int) {
		const z = 16
		maxChunk = maxChunk%(3*z) + 1
		if maxChunk < 1 {
			maxChunk += 3 * z
		}
		n := len(data) / z

		readAll := func(src Source, wantRecs int64) ([]byte, error) {
			got, rd, err := src.Open(z)
			if err != nil {
				return nil, err
			}
			defer rd.Close()
			if got != wantRecs {
				t.Fatalf("Open reported %d records, want %d", got, wantRecs)
			}
			out := make([]byte, 0, wantRecs*z)
			rec := make([]byte, z)
			for i := int64(0); i < wantRecs; i++ {
				if err := rd.ReadRecord(rec); err != nil {
					t.Fatalf("record %d of %d: %v", i, wantRecs, err)
				}
				out = append(out, rec...)
			}
			return out, nil
		}

		if n == 0 || len(data)%z != 0 {
			// Ragged byte inputs must be rejected at Open, never truncated.
			if _, _, err := FromBytes(data).Open(z); err == nil {
				t.Fatalf("FromBytes accepted %d bytes (not a positive multiple of %d)", len(data), z)
			}
			if n == 0 {
				return
			}
			data = data[:n*z] // FromReader takes a count: test the whole records
		}

		a, err := readAll(FromBytes(data[:n*z]), int64(n))
		if err != nil {
			t.Fatal(err)
		}
		b, err := readAll(FromReader(&stutterReader{data: data, max: maxChunk}, int64(n)), int64(n))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, data[:n*z]) {
			t.Fatal("FromBytes delivered different bytes than the input")
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("FromReader (chunk ≤ %d) delivered a different stream than FromBytes", maxChunk)
		}

		// A stream that ends early must fail cleanly, not fabricate records.
		short := FromReader(&stutterReader{data: data[:n*z-1], max: maxChunk}, int64(n))
		_, rd, err := short.Open(z)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		rec := make([]byte, z)
		var readErr error
		for i := 0; i < n; i++ {
			if readErr = rd.ReadRecord(rec); readErr != nil {
				break
			}
		}
		if readErr == nil {
			t.Fatal("short stream delivered all records without error")
		}
	})
}
