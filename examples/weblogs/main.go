// Weblogs: the web-search-engine scenario from the paper's introduction.
//
// A search engine accumulates query-log records whose keys are heavily
// skewed (a few hot queries dominate — Zipf-like). The logs exceed main
// memory and must be sorted on disk before index building. This example
// sorts the same skewed data set with each algorithm the configuration
// admits, shows that skew does not affect the oblivious algorithms'
// behaviour (identical operation counts as uniform data), and lets the
// problem-size planner pick the algorithm when the log outgrows the
// threaded bound.
package main

import (
	"fmt"
	"log"

	"colsort"
	"colsort/internal/record"
)

func main() {
	sorter, err := colsort.New(colsort.Config{
		Procs:      8,
		Disks:      8,
		MemPerProc: 1 << 14, // deliberately small memory: 1 MiB columns
		RecordSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Today's log: 2^19 records (32 MiB).
	const today = 1 << 19
	zipf := record.Zipf{Seed: 2003}

	fmt.Println("== sorting today's query log (32 MiB, Zipf-distributed keys) ==")
	for _, alg := range []colsort.Algorithm{colsort.Threaded, colsort.MColumn} {
		if _, err := sorter.Plan(alg, today); err != nil {
			fmt.Printf("%-14v skipped: %v\n", alg, err)
			continue
		}
		res, err := sorter.SortGenerated(alg, today, zipf)
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		skew := res.TotalCounters()

		// Obliviousness check (Section 2: "our algorithm's I/O and
		// communication patterns are oblivious to the keys"): the same
		// sort on uniform data must produce identical traffic.
		uni, err := sorter.SortGenerated(alg, today, record.Uniform{Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		flat := uni.TotalCounters()
		same := skew.NetBytes == flat.NetBytes && skew.NetMsgs == flat.NetMsgs &&
			skew.DiskReadBytes == flat.DiskReadBytes
		fmt.Printf("%-14v verified; est %.1fs on 2003 hardware; pattern oblivious to skew: %v\n",
			alg, res.EstimateBeowulf().Total, same)
		res.Close()
		uni.Close()
	}

	// The quarterly archive outgrows the threaded bound; the planner says
	// why, and which relaxation still fits.
	fmt.Println("\n== planning the quarterly archive ==")
	for _, n := range []int64{1 << 20, 1 << 22, 1 << 24} {
		fmt.Printf("archive of %d MiB:\n", n*64>>20)
		for _, alg := range []colsort.Algorithm{colsort.Threaded, colsort.Subblock, colsort.MColumn} {
			if _, err := sorter.Plan(alg, n); err != nil {
				fmt.Printf("  %-14v NO  (%v)\n", alg, err)
			} else {
				fmt.Printf("  %-14v OK\n", alg)
			}
		}
	}
	fmt.Println("\nThis is the paper's point: subblock columnsort and M-columnsort relax")
	fmt.Println("the problem-size bound so the same small-memory cluster keeps sorting.")
}
