// Weblogs: the web-search-engine scenario from the paper's introduction.
//
// A search engine accumulates query-log records whose keys are heavily
// skewed (a few hot queries dominate — Zipf-like). The logs exceed main
// memory and must be sorted on disk before index building. This example
// shows the v1 API on that workload:
//
//  1. Real record schema: each 64-byte log entry carries its query hash at
//     offset 0 and its TIMESTAMP at offset 16. A KeySpec sorts the log by
//     the timestamp field — no reformatting of the records — and the
//     sorted stream comes back through a Sink in the original layout.
//  2. Obliviousness: the same sort on Zipf-skewed and uniform keys must
//     produce identical operation counts (Section 2).
//  3. Planning: when the archive outgrows the threaded bound, the planner
//     says why, and which relaxation still fits.
package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"colsort"
	"colsort/internal/record"
)

// A log entry is 64 bytes: query hash, client id, timestamp, payload.
const (
	recSize    = 64
	tsOffset   = 16 // the timestamp field the log must be ordered by
	logRecords = 1 << 17
)

// makeLog builds today's query log: Zipf-skewed query hashes, timestamps
// in scrambled arrival order (log shards land out of order).
func makeLog() []byte {
	b := make([]byte, logRecords*recSize)
	for i := 0; i < logRecords; i++ {
		rec := b[i*recSize:]
		h := record.Hash64(uint64(i) ^ 0x5eed)
		binary.BigEndian.PutUint64(rec[0:], ^(h % (1 << 20)))        // skewed query hash
		binary.BigEndian.PutUint64(rec[8:], h>>32)                   // client id
		binary.BigEndian.PutUint64(rec[tsOffset:], record.Hash64(h)) // timestamp, scrambled
	}
	return b
}

func main() {
	sorter, err := colsort.New(colsort.Config{
		Procs:      8,
		Disks:      8,
		MemPerProc: 1 << 14, // deliberately small memory: 1 MiB columns
		RecordSize: recSize,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fmt.Println("== sorting today's query log by its timestamp field (KeySpec) ==")
	raw := makeLog()
	var sorted bytes.Buffer
	res, err := sorter.Sort(ctx, colsort.FromBytes(raw), colsort.ToWriter(&sorted),
		colsort.WithAlgorithm(colsort.Threaded),
		colsort.WithKeySpec(colsort.KeySpec{Offset: tsOffset, Width: 8}))
	if err != nil {
		log.Fatal(err)
	}
	res.Close()
	out := sorted.Bytes()
	if len(out) != len(raw) {
		log.Fatalf("sink got %d bytes, want %d", len(out), len(raw))
	}
	var prev uint64
	for i := 0; i < logRecords; i++ {
		ts := binary.BigEndian.Uint64(out[i*recSize+tsOffset:])
		if ts < prev {
			log.Fatalf("record %d out of timestamp order", i)
		}
		prev = ts
	}
	fmt.Printf("%d log entries ordered by the timestamp at byte %d; layout untouched\n",
		logRecords, tsOffset)

	// Today's log for the oblivious check: 2^19 records (32 MiB).
	const today = 1 << 19
	zipf := record.Zipf{Seed: 2003}

	fmt.Println("\n== obliviousness: skewed vs uniform keys, identical traffic ==")
	for _, alg := range []colsort.Algorithm{colsort.Threaded, colsort.MColumn} {
		if _, err := sorter.Plan(alg, today); err != nil {
			fmt.Printf("%-14v skipped: %v\n", alg, err)
			continue
		}
		res, err := sorter.Sort(ctx, colsort.Generate(zipf, today), nil,
			colsort.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			log.Fatalf("%v: %v", alg, err)
		}
		skew := res.TotalCounters()

		// Obliviousness check (Section 2: "our algorithm's I/O and
		// communication patterns are oblivious to the keys"): the same
		// sort on uniform data must produce identical traffic.
		uni, err := sorter.Sort(ctx, colsort.Generate(record.Uniform{Seed: 7}, today), nil,
			colsort.WithAlgorithm(alg))
		if err != nil {
			log.Fatal(err)
		}
		flat := uni.TotalCounters()
		same := skew.NetBytes == flat.NetBytes && skew.NetMsgs == flat.NetMsgs &&
			skew.DiskReadBytes == flat.DiskReadBytes
		fmt.Printf("%-14v verified; est %.1fs on 2003 hardware; pattern oblivious to skew: %v\n",
			alg, res.EstimateBeowulf().Total, same)
		res.Close()
		uni.Close()
	}

	// The quarterly archive outgrows the threaded bound; the planner says
	// why, and which relaxation still fits.
	fmt.Println("\n== planning the quarterly archive ==")
	for _, n := range []int64{1 << 20, 1 << 22, 1 << 24} {
		fmt.Printf("archive of %d MiB:\n", n*recSize>>20)
		for _, alg := range []colsort.Algorithm{colsort.Threaded, colsort.Subblock, colsort.MColumn} {
			if _, err := sorter.Plan(alg, n); err != nil {
				fmt.Printf("  %-14v NO  (%v)\n", alg, err)
			} else {
				fmt.Printf("  %-14v OK\n", alg)
			}
		}
	}
	fmt.Println("\nThis is the paper's point: subblock columnsort and M-columnsort relax")
	fmt.Println("the problem-size bound so the same small-memory cluster keeps sorting.")
}
