// Terabyte: reproduces the scalability argument of Sections 1 and 4.
//
// On a cluster of 16 processors with 2^19 records of memory each,
// M-columnsort's bound N ≤ M^{3/2}/√2 admits one terabyte of 64-byte
// records — where threaded columnsort stops at 16 GiB. This example plans
// the terabyte run, demonstrates the superlinear scaling of the bound with
// cluster size, executes a faithfully-shaped scaled-down run, and projects
// the terabyte sort onto the paper's testbed with the calibrated cost
// model.
package main

import (
	"context"
	"fmt"
	"log"

	"colsort"
	"colsort/internal/bounds"
	"colsort/internal/record"
)

func main() {
	fmt.Println("== the paper's terabyte configuration ==")
	const paperP, paperMem = 16, 1 << 19
	paper, err := colsort.New(colsort.Config{
		Procs: paperP, MemPerProc: paperMem, RecordSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	maxN := paper.MaxRecords(colsort.MColumn)
	fmt.Printf("largest plannable M-columnsort problem: %d records = %s\n",
		maxN, bounds.HumanBytes(float64(maxN)*64))
	if pl, err := paper.Plan(colsort.MColumn, maxN); err == nil {
		fmt.Println("plan:", pl)
	}
	thMax := paper.MaxRecords(colsort.Threaded)
	fmt.Printf("threaded columnsort on the same machine tops out at %s\n",
		bounds.HumanBytes(float64(thMax)*64))

	fmt.Println("\n== superlinear scaling with cluster size (fixed M/P) ==")
	fmt.Printf("%6s %20s %20s\n", "P", "threaded max", "m-columnsort max")
	for p := int64(4); p <= 64; p *= 2 {
		m := int64(paperMem) * p
		fmt.Printf("%6d %20s %20s\n", p,
			bounds.HumanBytes(bounds.MaxN(bounds.Threaded, m, p)*64),
			bounds.HumanBytes(bounds.MaxN(bounds.MColumnsort, m, p)*64))
	}
	fmt.Println("doubling the cluster multiplies M-columnsort's bound by 2^1.5 ≈ 2.83;")
	fmt.Println("restrictions (1) and (2) do not move at all.")

	fmt.Println("\n== scaled-down execution (same algorithm, same pass structure) ==")
	small, err := colsort.New(colsort.Config{
		Procs: 8, MemPerProc: 1 << 11, RecordSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = (8 << 11) * 8 // r = 2^14, s = 8: 8 MiB of data
	res, err := small.Sort(context.Background(),
		colsort.Generate(record.NearlySorted{Seed: 3, Window: 4096}, n), nil,
		colsort.WithAlgorithm(colsort.MColumn))
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d MiB with M-columnsort on 8 processors\n", int64(n)*64>>20)
	fmt.Printf("estimated on 2003 hardware: %.1fs\n", res.EstimateBeowulf().Total)

	fmt.Println("\nHad the cluster had the disk space, Section 5 notes, M-columnsort")
	fmt.Println("\"could have run on up to one terabyte total on 16 processors with")
	fmt.Println("2^25-byte buffers and 64-byte records\" — exactly the bound above.")

	fmt.Println("\n== beyond the bound: hierarchical runs + k-way merge ==")
	// The bounds above are per RUN. Sorter.Sort is unbounded: an input
	// larger than any single run is split into bounded runs (each a full
	// columnsort on one persistent fabric) and streamed through a
	// loser-tree merge into the Sink — here 4.3× the threaded bound of a
	// deliberately tiny machine, verified in-stream.
	tiny, err := colsort.New(colsort.Config{Procs: 4, MemPerProc: 1 << 10, RecordSize: 64})
	if err != nil {
		log.Fatal(err)
	}
	bound := tiny.MaxRecords(colsort.Threaded)
	over := 4*bound + 321 // any count: no power-of-two requirement either
	hier, err := tiny.Sort(context.Background(),
		colsort.Generate(record.Zipf{Seed: 12}, over), colsort.Discard(),
		colsort.WithAlgorithm(colsort.Threaded))
	if err != nil {
		log.Fatal(err)
	}
	defer hier.Close()
	m := hier.Merge
	fmt.Printf("threaded bound on this machine: %d records (%s)\n",
		bound, bounds.HumanBytes(float64(bound)*64))
	fmt.Printf("sorted %d records = %.2f× the bound, as %d runs of ≤%d records\n",
		over, float64(over)/float64(bound), m.Runs, m.RunRecords)
	fmt.Printf("merged in %d level(s) at fan-in %d; %s of run reads, %s of spill+sink writes\n",
		m.Levels, m.FanIn, bounds.HumanBytes(float64(m.BytesRead)), bounds.HumanBytes(float64(m.BytesWritten)))
	fmt.Println("every run verified before merging; merge order and multiset checked in-stream")
}
