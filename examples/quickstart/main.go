// Quickstart: sort a million 64-byte records out-of-core on a simulated
// 4-processor cluster with 3-pass threaded columnsort, verify the output,
// and print what it would cost on the paper's Beowulf testbed — all through
// the v1 API: one context-aware Sort call from a Source to a Sink.
package main

import (
	"context"
	"fmt"
	"log"

	"colsort"
	"colsort/internal/record"
)

func main() {
	// A 4-processor, 8-disk cluster whose processors can hold 2^16
	// records (4 MiB) of column buffer each.
	sorter, err := colsort.New(colsort.Config{
		Procs:      4,
		Disks:      8,
		MemPerProc: 1 << 16,
		RecordSize: 64,
	})
	if err != nil {
		log.Fatal(err)
	}

	const n = 1 << 20 // one million records = 64 MiB

	// Ask the planner what it will do before doing it.
	plan, err := sorter.Plan(colsort.Threaded, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", plan)

	// Generate, sort, verify: one call. A progress callback watches the
	// passes go by; swap the Generate source for FromFile (and the nil
	// sink for ToFile) to sort real data.
	res, err := sorter.Sort(context.Background(),
		colsort.Generate(record.Uniform{Seed: 42}, n), nil,
		colsort.WithAlgorithm(colsort.Threaded),
		colsort.WithProgress(func(ev colsort.Progress) {
			if ev.Round == ev.Rounds {
				fmt.Printf("  pass %d/%d done\n", ev.Pass, ev.Passes)
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: one million records sorted in PDM order")

	// Exact operation counts from the run, priced on 2003 hardware.
	tot := res.TotalCounters()
	fmt.Printf("I/O: %d MiB read + %d MiB written across 3 passes\n",
		tot.DiskReadBytes>>20, tot.DiskWriteBytes>>20)
	fmt.Printf("network: %d MiB in %d messages\n", tot.NetBytes>>20, tot.NetMsgs)
	fmt.Printf("estimated time on the paper's Beowulf cluster: %.1fs\n",
		res.EstimateBeowulf().Total)

	// How much more could this configuration sort?
	for _, alg := range []colsort.Algorithm{colsort.Threaded, colsort.Subblock, colsort.MColumn} {
		fmt.Printf("max sortable with %-12v %6d MiB\n", alg, sorter.MaxRecords(alg)*64>>20)
	}
}
