// PDM subroutine: footnote 6 of the paper notes that producing output in
// the Parallel Disk Model's striped ordering lets the sort serve as a
// subroutine of other PDM algorithms, because "any consecutive set of
// records is balanced across processors and disks as evenly as possible."
//
// This example sorts a data set and then runs a downstream out-of-core
// consumer directly on the sorted store — a merge-style range scan that
// answers key-range queries by binary-searching column boundaries and
// streaming only the columns that intersect the range, touching a balanced
// subset of disks.
package main

import (
	"context"
	"fmt"
	"log"

	"colsort"
	"colsort/internal/record"
	"colsort/internal/sim"
)

func main() {
	sorter, err := colsort.New(colsort.Config{
		Procs:      4,
		Disks:      8,
		MemPerProc: 1 << 13,
		RecordSize: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	const n = (1 << 13) * 32 // 32 columns

	res, err := sorter.Sort(context.Background(),
		colsort.Generate(record.Uniform{Seed: 6}, n), nil,
		colsort.WithAlgorithm(colsort.Threaded))
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	st := res.Output
	fmt.Printf("sorted %d records into %d columns striped over %d disks\n", n, st.S, 8)

	// Downstream PDM consumer: count records with keys in [lo, hi) by
	// scanning only the columns whose key range intersects — each column
	// read is one balanced striped access on one processor's disks.
	lo, hi := uint64(1)<<62, uint64(3)<<62 // middle half of the key space
	var cnt sim.Counters
	var matched int64
	colsScanned := 0
	buf := record.Make(st.R, st.RecSize)
	for j := 0; j < st.S; j++ {
		p := st.Owner(0, j)
		if err := st.ReadColumn(&cnt, p, j, buf); err != nil {
			log.Fatal(err)
		}
		first, last := buf.Key(0), buf.Key(buf.Len()-1)
		if last < lo || first >= hi {
			continue // column entirely outside the range
		}
		colsScanned++
		for i := 0; i < buf.Len(); i++ {
			if k := buf.Key(i); k >= lo && k < hi {
				matched++
			}
		}
	}
	fmt.Printf("range query [2^62, 3·2^62): %d of %d records (%.1f%%), scanning %d of %d columns\n",
		matched, int64(n), 100*float64(matched)/float64(n), colsScanned, st.S)
	fmt.Printf("consumer I/O: %d MiB read in %d striped accesses — balanced, as footnote 6 promises\n",
		cnt.DiskReadBytes>>20, cnt.DiskReadOps)
	if got := float64(matched) / float64(n); got < 0.45 || got > 0.55 {
		log.Fatalf("uniform keys should put ~50%% in the middle half, got %.1f%%", 100*got)
	}
}
