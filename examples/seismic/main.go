// Seismic: the seismic-modeling scenario from the paper's introduction.
//
// Seismic surveys produce wide records (here 128 bytes: a bell-shaped
// amplitude key plus trace metadata) that must be sorted by amplitude for
// migration processing. The survey is too large for memory, so this example
// runs genuinely out-of-core: the simulated disks are backed by real files,
// and the sort is subblock columnsort — the right choice when memory per
// processor is the binding constraint and an extra pass of I/O is
// acceptable.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"colsort"
	"colsort/internal/record"
)

func main() {
	dir, err := os.MkdirTemp("", "colsort-seismic-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sorter, err := colsort.New(colsort.Config{
		Procs:      4,
		Disks:      8,
		MemPerProc: 1 << 12, // 4096 records = 512 KiB columns
		RecordSize: 128,
		Dir:        dir, // file-backed: the data really lives on disk
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2^16 columns... choose N = r·s with s = 16 (power of 4, required by
	// subblock columnsort): 64 Ki records = 8 MiB of survey data.
	const n = (1 << 12) * 16

	plan, err := sorter.Plan(colsort.Subblock, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", plan)

	res, err := sorter.SortGenerated(colsort.Subblock, n, record.Gaussian{Seed: 1959})
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: survey sorted by amplitude, out-of-core, file-backed")

	// Show that bytes really hit the filesystem.
	var files int
	var bytes int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files++
			bytes += info.Size()
		}
		return nil
	})
	fmt.Printf("backing store: %d disk files, %d MiB live on disk\n", files, bytes>>20)

	tot := res.TotalCounters()
	fmt.Printf("4 passes moved %d MiB through the disks; subblock pass sent %d messages\n",
		(tot.DiskReadBytes+tot.DiskWriteBytes)>>20, tot.NetMsgs+tot.LocalMsgs)
	fmt.Printf("estimated on the paper's testbed: %.1fs\n", res.EstimateBeowulf().Total)
}
