// Seismic: the seismic-modeling scenario from the paper's introduction.
//
// Seismic surveys produce wide records (here 128 bytes: trace metadata plus
// a bell-shaped amplitude field at byte 24) that must be ranked by
// amplitude for migration processing — strongest reflections first. The
// survey is too large for memory, so this example runs genuinely
// out-of-core: the simulated disks are backed by real files, the sort is
// subblock columnsort — the right choice when memory per processor is the
// binding constraint and an extra pass of I/O is acceptable — and a KeySpec
// sorts DESCENDING on the embedded amplitude field without touching the
// trace layout.
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"colsort"
	"colsort/internal/record"
)

const (
	traceSize = 128
	ampOffset = 24 // the amplitude field migration ranks by
)

// survey generates trace records: ids and metadata up front, the Gaussian
// amplitude at ampOffset.
type survey struct{ inner record.Generator }

func (s survey) Name() string { return "survey" }

func (s survey) Gen(rec []byte, idx int64) {
	s.inner.Gen(rec, idx) // bell-shaped value lands at offset 0...
	amp := binary.BigEndian.Uint64(rec[:8])
	binary.BigEndian.PutUint64(rec[:8], uint64(idx)) // ...trace id takes its place
	binary.BigEndian.PutUint64(rec[ampOffset:], amp) // ...and the amplitude its field
}

func main() {
	dir, err := os.MkdirTemp("", "colsort-seismic-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sorter, err := colsort.New(colsort.Config{
		Procs:      4,
		Disks:      8,
		MemPerProc: 1 << 12, // 4096 records = 512 KiB columns
		RecordSize: traceSize,
		Dir:        dir, // file-backed: the data really lives on disk
	})
	if err != nil {
		log.Fatal(err)
	}

	// Choose N = r·s with s = 16 (power of 4, required by subblock
	// columnsort): 64 Ki records = 8 MiB of survey data.
	const n = (1 << 12) * 16

	plan, err := sorter.Plan(colsort.Subblock, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", plan)

	res, err := sorter.Sort(context.Background(),
		colsort.Generate(survey{record.Gaussian{Seed: 1959}}, n),
		colsort.ToFile(filepath.Join(dir, "ranked.dat")),
		colsort.WithAlgorithm(colsort.Subblock),
		colsort.WithKeySpec(colsort.KeySpec{Offset: ampOffset, Width: 8, Order: colsort.Descending}))
	if err != nil {
		log.Fatal(err)
	}
	defer res.Close()
	fmt.Println("verified: survey ranked strongest-amplitude-first, out-of-core, file-backed")

	// Spot-check the emitted ranking.
	ranked, err := os.ReadFile(filepath.Join(dir, "ranked.dat"))
	if err != nil {
		log.Fatal(err)
	}
	prev := ^uint64(0)
	for i := 0; i < n; i++ {
		amp := binary.BigEndian.Uint64(ranked[i*traceSize+ampOffset:])
		if amp > prev {
			log.Fatalf("trace %d out of descending amplitude order", i)
		}
		prev = amp
	}
	fmt.Printf("output file: %d traces, amplitudes nonincreasing from %d\n",
		n, binary.BigEndian.Uint64(ranked[ampOffset:]))

	// Show that bytes really hit the filesystem.
	var files int
	var bytes int64
	filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			files++
			bytes += info.Size()
		}
		return nil
	})
	fmt.Printf("backing store: %d disk files, %d MiB live on disk\n", files, bytes>>20)

	tot := res.TotalCounters()
	fmt.Printf("4 passes moved %d MiB through the disks; subblock pass sent %d messages\n",
		(tot.DiskReadBytes+tot.DiskWriteBytes)>>20, tot.NetMsgs+tot.LocalMsgs)
	fmt.Printf("estimated on the paper's testbed: %.1fs\n", res.EstimateBeowulf().Total)
}
