package colsort

// WithFabric at the v1 surface: the copying (MPI-fidelity) interconnect
// must be observationally identical to the default zero-copy one — same
// output bytes, same counters — on both the single-run and the
// hierarchical (runs + merge) paths.

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"colsort/internal/record"
	"colsort/internal/sim"
)

func TestWithFabricEquivalentOutput(t *testing.T) {
	const n, p, mem, z = 1 << 13, 4, 1 << 9, 32
	outputs := make([][]byte, 2)
	counters := make([]sim.Counters, 2)
	for i, fabric := range []Fabric{FabricZeroCopy, FabricCopying} {
		s := newSorter(t, p, mem, z)
		var buf bytes.Buffer
		res, err := s.Sort(context.Background(),
			Generate(record.Uniform{Seed: 99}, n), ToWriter(&buf),
			WithAlgorithm(Threaded), WithFabric(fabric))
		if err != nil {
			t.Fatalf("fabric %d: %v", fabric, err)
		}
		outputs[i] = append([]byte(nil), buf.Bytes()...)
		counters[i] = res.TotalCounters()
		res.Close()
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatal("copying fabric output differs from zero-copy")
	}
	if counters[0] != counters[1] {
		t.Fatalf("counters differ:\nzero-copy: %+v\ncopying:   %+v", counters[0], counters[1])
	}
}

func TestWithFabricHierarchical(t *testing.T) {
	const p, mem, z = 2, 1 << 9, 32
	probe := newSorter(t, p, mem, z)
	n := 2 * probe.MaxRecords(Threaded)
	dir := t.TempDir()
	paths := make([]string, 2)
	for i, fabric := range []Fabric{FabricZeroCopy, FabricCopying} {
		s := newSorter(t, p, mem, z)
		out := filepath.Join(dir, fabricFileName(i))
		res, err := s.Sort(context.Background(),
			Generate(record.Uniform{Seed: 5}, n), ToFile(out),
			WithAlgorithm(Threaded), WithFabric(fabric))
		if err != nil {
			t.Fatalf("fabric %d: %v", fabric, err)
		}
		if res.Merge == nil {
			t.Fatal("input did not take the hierarchical path")
		}
		res.Close()
		paths[i] = out
	}
	a, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(paths[1])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("hierarchical copying fabric output differs from zero-copy")
	}
}

func fabricFileName(i int) string {
	if i == 0 {
		return "zerocopy.dat"
	}
	return "copying.dat"
}
