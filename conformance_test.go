package colsort

// Property-based randomized conformance suite: for pseudo-random draws of
// record count (below the single-run bound, exactly at it, and 2–5× above
// it), record size, key spec and algorithm, the output of Sorter.Sort must
// be BYTE-IDENTICAL to a reference sort.Slice of the same input — both
// in-memory and file-backed. The reference order is bytes.Compare over
// codec-normalized records (refSortBytes), which is exactly the engine's
// documented total order, so any divergence in any layer (ingest, padding,
// engine, runs, merge, decode, egress) fails the comparison.
//
// The draws are deterministic per test run (seeded PCG) so failures
// reproduce; set COLSORT_CONFORMANCE_SEED to re-roll or pin a seed.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"os"
	"strconv"
	"testing"

	"colsort/internal/record"
	"colsort/internal/testutil"
)

// conformanceCase is one drawn configuration.
type conformanceCase struct {
	alg    Algorithm
	z      int
	ks     KeySpec
	n      int64
	regime string // "below" | "at" | "above"
	file   bool   // file-backed scratch disks
	form   RunFormation
	gen    record.Generator
}

func drawCase(rng *rand.Rand, s *Sorter, alg Algorithm, z int) conformanceCase {
	c := conformanceCase{alg: alg, z: z}
	bound := s.MaxRecords(alg)
	switch rng.IntN(3) {
	case 0:
		c.regime = "below"
		c.n = 1 + rng.Int64N(bound-1) // strictly below: n == bound is the "at" regime
	case 1:
		c.regime = "at"
		c.n = bound
	default:
		c.regime = "above"
		// 2–5× the bound, with a random non-power-of-two tail.
		c.n = bound*(2+rng.Int64N(4)) + rng.Int64N(bound)
	}
	// A random valid key field: any offset, width 1..16, either order.
	w := 1 + rng.IntN(16)
	if w > z {
		w = z
	}
	c.ks = KeySpec{Offset: rng.IntN(z - w + 1), Width: w}
	if rng.IntN(2) == 1 {
		c.ks.Order = Descending
	}
	c.file = rng.IntN(4) == 0 // file-backed is slower: sample it
	// Both run-formation modes must produce byte-identical output, so the
	// draw alternates them (the mode only matters in the "above" regime,
	// where runs actually form).
	if rng.IntN(2) == 1 {
		c.form = FixedBatch
	}
	gens := []record.Generator{
		record.Uniform{Seed: rng.Uint64()},
		record.Dup{Seed: rng.Uint64()},
		record.Dup{Seed: rng.Uint64(), K: 2}, // heavy duplication: long tied runs
		record.NearlySorted{Seed: rng.Uint64(), Window: 64},
		record.NearlyReverse{Seed: rng.Uint64(), Window: 64},
		record.Disordered{Seed: rng.Uint64(), K: 32},
		record.Reverse{Seed: rng.Uint64()},
	}
	c.gen = gens[rng.IntN(len(gens))]
	return c
}

func TestSortConformance(t *testing.T) {
	testutil.CheckGoroutines(t)
	seed := uint64(0xC01A0_4)
	if env := os.Getenv("COLSORT_CONFORMANCE_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("COLSORT_CONFORMANCE_SEED=%q: %v", env, err)
		}
		seed = v
	}
	rng := rand.New(rand.NewPCG(seed, 1))
	t.Logf("conformance seed %#x", seed)

	// Small cluster + buffer so the single-run bound is a few thousand
	// records and "5× above" stays test-sized.
	const p, mem = 4, 256
	algs := []Algorithm{Threaded, Threaded4, Subblock, MColumn}
	cases := 0
	sawAbove := false
	for i := 0; i < 20; i++ {
		alg := algs[rng.IntN(len(algs))]
		z := []int{16, 32, 64}[rng.IntN(3)]
		probe, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
		if err != nil {
			t.Fatal(err)
		}
		c := drawCase(rng, probe, alg, z)
		if c.regime == "above" {
			sawAbove = true
		}
		name := fmt.Sprintf("%02d-%v-z%d-%s-%v-%v", i, c.alg, c.z, c.regime, c.ks.Order, c.form)
		if c.file {
			name += "-file"
		}
		cases++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{Procs: p, MemPerProc: mem, RecordSize: c.z}
			if c.file {
				cfg.Dir = t.TempDir()
				cfg.Async = true
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			raw := genRaw(int(c.n), c.z, c.gen)
			var out bytes.Buffer
			res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
				WithAlgorithm(c.alg), WithKeySpec(c.ks), WithRunFormation(c.form))
			if err != nil {
				t.Fatalf("%+v: %v", c, err)
			}
			defer res.Close()
			if res.RealRecords() != c.n {
				t.Errorf("RealRecords = %d, want %d", res.RealRecords(), c.n)
			}
			if c.regime == "above" && res.Merge == nil {
				t.Errorf("above-bound case did not take the hierarchical path")
			}
			want := refSortBytes(t, raw, c.z, c.ks)
			if !bytes.Equal(out.Bytes(), want) {
				t.Errorf("output of %+v is not byte-identical to the reference sort", c)
			}
		})
	}
	if cases == 0 || !sawAbove {
		t.Fatalf("degenerate draw: %d cases, above-bound drawn: %v (re-roll the seed)", cases, sawAbove)
	}
}
