package record

import (
	"encoding/binary"
	"math"
)

// Generator deterministically fills record payloads for a workload. All
// generators are seeded and reproducible; the same (seed, index) pair always
// yields the same record, which lets distributed producers generate disjoint
// index ranges independently and lets verification re-derive checksums.
type Generator interface {
	// Gen fills rec (one record) for global record index idx.
	Gen(rec []byte, idx int64)
	// Name identifies the distribution in reports.
	Name() string
}

// rng is SplitMix64: a tiny, high-quality, stateless-per-call PRNG. Keyed by
// (seed, index) it gives independent streams without shared state, which is
// exactly what concurrent record generation needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hash64 exposes the mixer for payload hashing and checksums.
func Hash64(x uint64) uint64 { return splitmix64(x) }

func fillPayload(rec []byte, h uint64) {
	for off := KeyBytes; off < len(rec); off += 8 {
		h = splitmix64(h)
		binary.LittleEndian.PutUint64(rec[off:], h)
	}
}

// Uniform generates uniformly random 64-bit keys.
type Uniform struct{ Seed uint64 }

func (g Uniform) Name() string { return "uniform" }

func (g Uniform) Gen(rec []byte, idx int64) {
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	PutKey(rec, h)
	fillPayload(rec, h^0xabcdef)
}

// Dup generates keys drawn from only K distinct values, stressing
// duplicate-heavy inputs (the algorithms are oblivious, so behaviour must
// be identical; correctness of tie handling is what this exercises).
type Dup struct {
	Seed uint64
	K    uint64 // number of distinct keys; 0 means 16
}

func (g Dup) Name() string { return "duplicates" }

func (g Dup) Gen(rec []byte, idx int64) {
	k := g.K
	if k == 0 {
		k = 16
	}
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	PutKey(rec, h%k)
	fillPayload(rec, h^0x1234)
}

// Sorted generates keys already in nondecreasing order — best case for the
// run-aware merge stages.
type Sorted struct{ Seed uint64 }

func (g Sorted) Name() string { return "sorted" }

func (g Sorted) Gen(rec []byte, idx int64) {
	PutKey(rec, uint64(idx))
	fillPayload(rec, splitmix64(g.Seed^uint64(idx)))
}

// Reverse generates keys in strictly decreasing order — the classic
// adversarial case for run detection.
type Reverse struct{ Seed uint64 }

func (g Reverse) Name() string { return "reverse" }

func (g Reverse) Gen(rec []byte, idx int64) {
	PutKey(rec, math.MaxUint64-uint64(idx))
	fillPayload(rec, splitmix64(g.Seed^uint64(idx)))
}

// NearlySorted generates keys equal to the index plus a bounded random
// displacement, modelling timestamped log data that is almost in order.
type NearlySorted struct {
	Seed   uint64
	Window uint64 // max displacement; 0 means 1024
}

func (g NearlySorted) Name() string { return "nearly-sorted" }

func (g NearlySorted) Gen(rec []byte, idx int64) {
	w := g.Window
	if w == 0 {
		w = 1024
	}
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	k := uint64(idx)*w + h%w
	PutKey(rec, k)
	fillPayload(rec, h)
}

// NearlyReverse is the descending mirror of NearlySorted: keys decrease
// with the index up to a bounded random displacement, modelling a log
// re-sorted into the opposite order. Replacement selection should absorb
// it into very few descending runs.
type NearlyReverse struct {
	Seed   uint64
	Window uint64 // max displacement; 0 means 1024
}

func (g NearlyReverse) Name() string { return "nearly-reverse" }

func (g NearlyReverse) Gen(rec []byte, idx int64) {
	w := g.Window
	if w == 0 {
		w = 1024
	}
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	k := math.MaxUint64 - uint64(idx)*w - h%w
	PutKey(rec, k)
	fillPayload(rec, h)
}

// Disordered generates a sorted sequence where each record's key is
// displaced by at most K positions (keys overlap across neighbours, unlike
// NearlySorted's disjoint windows), so genuine local inversions occur but
// no record is globally far from home — the k-disordered model of "Run
// Generation Revisited".
type Disordered struct {
	Seed uint64
	K    uint64 // max displacement in positions; 0 means 64
}

func (g Disordered) Name() string { return "k-disordered" }

func (g Disordered) Gen(rec []byte, idx int64) {
	k := g.K
	if k == 0 {
		k = 64
	}
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	PutKey(rec, uint64(idx)+h%(2*k+1))
	fillPayload(rec, h)
}

// Gaussian approximates a clustered key distribution (sum of uniforms),
// modelling seismic-amplitude-like data where keys bunch around a mean.
type Gaussian struct{ Seed uint64 }

func (g Gaussian) Name() string { return "gaussian" }

func (g Gaussian) Gen(rec []byte, idx int64) {
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	// Irwin–Hall with 4 terms: sum of four 62-bit uniforms ~ bell-shaped.
	var sum uint64
	x := h
	for i := 0; i < 4; i++ {
		x = splitmix64(x)
		sum += x >> 2
	}
	PutKey(rec, sum)
	fillPayload(rec, h^0x5eed)
}

// Zipf generates a heavily skewed distribution where low key values are
// disproportionately frequent, modelling web-search query logs.
type Zipf struct{ Seed uint64 }

func (g Zipf) Name() string { return "zipf" }

func (g Zipf) Gen(rec []byte, idx int64) {
	h := splitmix64(g.Seed ^ uint64(idx)*0x9e3779b97f4a7c15)
	// Approximate Zipf by taking 2^64 / (1+u mod 2^20): rank-inverse weights.
	u := h%(1<<20) + 1
	PutKey(rec, math.MaxUint64/u)
	fillPayload(rec, h^0x21f)
}

// Fill populates records [lo, hi) of s using g, where the record at
// position i of s has global index base+i.
func Fill(s Slice, g Generator, base int64) {
	n := s.Len()
	for i := 0; i < n; i++ {
		g.Gen(s.Record(i), base+int64(i))
	}
}

// ByName returns a generator by its report name, used by the CLIs.
func ByName(name string, seed uint64) (Generator, bool) {
	switch name {
	case "uniform":
		return Uniform{Seed: seed}, true
	case "duplicates", "dup":
		return Dup{Seed: seed}, true
	case "sorted":
		return Sorted{Seed: seed}, true
	case "reverse":
		return Reverse{Seed: seed}, true
	case "nearly-sorted", "nearly":
		return NearlySorted{Seed: seed}, true
	case "nearly-reverse":
		return NearlyReverse{Seed: seed}, true
	case "k-disordered", "disordered":
		return Disordered{Seed: seed}, true
	case "gaussian":
		return Gaussian{Seed: seed}, true
	case "zipf":
		return Zipf{Seed: seed}, true
	}
	return nil, false
}

// Names lists all generator names accepted by ByName.
func Names() []string {
	return []string{"uniform", "duplicates", "sorted", "reverse", "nearly-sorted", "nearly-reverse", "k-disordered", "gaussian", "zipf"}
}
