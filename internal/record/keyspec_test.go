package record

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func randRecords(t *testing.T, rng *rand.Rand, n, size int) Slice {
	t.Helper()
	s := Make(n, size)
	rng.Read(s.Data)
	return s
}

// fieldLess orders two raw records by the spec'd field bytes
// (lexicographic big-endian), honoring Order — the reference semantics a
// compiled codec must realize through the engine's native comparison.
func fieldLess(spec KeySpec, a, b []byte) (less, eq bool) {
	w := spec.Width
	if w == 0 {
		w = KeyBytes
	}
	fa := a[spec.Offset : spec.Offset+w]
	fb := b[spec.Offset : spec.Offset+w]
	switch c := bytes.Compare(fa, fb); {
	case c == 0:
		return false, true
	case spec.Order == Descending:
		return c > 0, false
	default:
		return c < 0, false
	}
}

func TestKeyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, size := range []int{8, 16, 64, 128} {
		for _, spec := range []KeySpec{
			{},
			{Offset: 0, Width: 4},
			{Offset: 4, Width: 4},
			{Offset: 8, Width: 8},
			{Offset: 3, Width: 2},
			{Offset: 0, Width: 16},
			{Offset: 5, Width: 11},
			{Offset: size - 8, Width: 8},
			{Offset: 2, Width: 6, Order: Descending},
			{Offset: 8, Width: 8, Order: Descending},
			{Order: Descending},
		} {
			if spec.Offset+max(spec.Width, 1) > size {
				continue
			}
			t.Run(fmt.Sprintf("z%d_%v", size, spec), func(t *testing.T) {
				c, err := spec.Compile(size)
				if err != nil {
					t.Fatal(err)
				}
				s := randRecords(t, rng, 37, size)
				orig := append([]byte(nil), s.Data...)
				c.Encode(s)
				if spec.Offset == 0 && spec.Order == Ascending && !bytes.Equal(orig, s.Data) {
					t.Fatal("identity codec modified records")
				}
				c.Decode(s)
				if !bytes.Equal(orig, s.Data) {
					t.Fatal("Decode(Encode(x)) != x")
				}
			})
		}
	}
}

func TestKeyCodecOrderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, spec := range []KeySpec{
		{Offset: 16, Width: 8},
		{Offset: 16, Width: 8, Order: Descending},
		{Offset: 7, Width: 3},
		{Offset: 1, Width: 1, Order: Descending}, // heavy ties
		{Offset: 40, Width: 24},
		{Offset: 0, Width: 2},
	} {
		t.Run(spec.String(), func(t *testing.T) {
			const size, n = 64, 200
			c, err := spec.Compile(size)
			if err != nil {
				t.Fatal(err)
			}
			s := randRecords(t, rng, n, size)
			// Force ties: duplicate some field values.
			for i := 0; i < n; i += 5 {
				copy(s.Record(i)[spec.Offset:spec.Offset+spec.Width],
					s.Record(0)[spec.Offset:spec.Offset+spec.Width])
			}
			orig := append([]byte(nil), s.Data...)

			// Sort normalized records with the engine's native comparison.
			c.Encode(s)
			sort.Sort(engineOrder{s})
			c.Decode(s)

			// The result must be nondecreasing in the spec'd field order.
			for i := 1; i < n; i++ {
				if less, _ := fieldLess(spec, s.Record(i), s.Record(i-1)); less {
					t.Fatalf("record %d out of field order", i)
				}
			}
			// And a permutation of the input (multiset preserved).
			var a, b Checksum
			a.AddSlice(Slice{Data: orig, Size: size})
			b.AddSlice(s)
			if !a.Equal(b) {
				t.Fatal("sort through codec lost records")
			}
		})
	}
}

// engineOrder sorts a Slice exactly as the engine does: Less (8-byte
// big-endian key at offset 0, payload tie-break).
type engineOrder struct{ Slice }

func (e engineOrder) Less(i, j int) bool { return e.Slice.Less(i, j) }

func TestKeyCodecPadIsMaximal(t *testing.T) {
	// Padded sorts append all-0xFF records in NORMALIZED space; they must
	// compare ≥ every normalized real record under the engine order, for
	// any spec — that is what makes prefix trimming exact.
	rng := rand.New(rand.NewSource(3))
	for _, spec := range []KeySpec{{Offset: 16, Width: 4}, {Offset: 3, Width: 9, Order: Descending}} {
		c, err := spec.Compile(32)
		if err != nil {
			t.Fatal(err)
		}
		s := randRecords(t, rng, 65, 32)
		c.Encode(s)
		pad := Make(1, 32)
		for i := range pad.Data {
			pad.Data[i] = 0xff
		}
		for i := 0; i < s.Len(); i++ {
			if Compare(pad, 0, s, i) < 0 {
				t.Fatalf("%v: pad sorts before a normalized record", spec)
			}
		}
	}
}

func TestKeySpecCompileErrors(t *testing.T) {
	cases := []struct {
		spec KeySpec
		size int
	}{
		{KeySpec{Offset: -1}, 64},
		{KeySpec{Offset: 60, Width: 8}, 64},
		{KeySpec{Offset: 64}, 64},
		{KeySpec{Width: -2}, 64},
		{KeySpec{Order: Order(7)}, 64},
		{KeySpec{}, 12}, // bad record size
	}
	for _, tc := range cases {
		if _, err := tc.spec.Compile(tc.size); err == nil {
			t.Errorf("Compile(%v, %d) accepted", tc.spec, tc.size)
		}
	}
}

func TestKeyCodecAllocs(t *testing.T) {
	c, err := KeySpec{Offset: 16, Width: 8, Order: Descending}.Compile(64)
	if err != nil {
		t.Fatal(err)
	}
	s := Make(128, 64)
	if n := testing.AllocsPerRun(50, func() {
		c.Encode(s)
		c.Decode(s)
	}); n != 0 {
		t.Fatalf("Encode+Decode allocated %.1f times per run", n)
	}
}
