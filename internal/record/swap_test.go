package record

import (
	"bytes"
	"testing"
)

// Wide-record swaps (> 512 bytes, past the stack-buffer fast path) must go
// through the pooled scratch without corruption or steady-state allocation.

func fillPattern(rec []byte, seed byte) {
	for i := range rec {
		rec[i] = seed + byte(i)
	}
}

func TestSwapWidePatternPreserved(t *testing.T) {
	const z = 1024 // > the 512-byte stack buffer
	s := Make(3, z)
	fillPattern(s.Record(0), 1)
	fillPattern(s.Record(1), 2)
	fillPattern(s.Record(2), 3)
	want0 := append([]byte(nil), s.Record(0)...)
	want2 := append([]byte(nil), s.Record(2)...)

	s.Swap(0, 2)
	if !bytes.Equal(s.Record(0), want2) || !bytes.Equal(s.Record(2), want0) {
		t.Fatal("wide swap corrupted records")
	}
	s.Swap(1, 1) // self-swap must be a no-op
	fill1 := s.Record(1)
	for i := range fill1 {
		if fill1[i] != 2+byte(i) {
			t.Fatal("self-swap corrupted record 1")
		}
	}
}

func TestSwapWideAllocs(t *testing.T) {
	const z = 4096
	s := Make(2, z)
	fillPattern(s.Record(0), 9)
	fillPattern(s.Record(1), 17)
	s.Swap(0, 1) // warm the pooled scratch
	allocs := testing.AllocsPerRun(10, func() {
		s.Swap(0, 1)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per wide swap, want 0", allocs)
	}
}

func TestSwapNarrowAllocs(t *testing.T) {
	s := Make(2, 512) // exactly at the stack-buffer boundary
	allocs := testing.AllocsPerRun(10, func() {
		s.Swap(0, 1)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per 512-byte swap, want 0", allocs)
	}
}

func TestCopyEdgeCases(t *testing.T) {
	src := Make(4, 16)
	Fill(src, Uniform{Seed: 1}, 0)

	// Equal sizes: all records copied.
	dst := Make(4, 16)
	if n := dst.Copy(src); n != 4 {
		t.Fatalf("Copy equal: %d records, want 4", n)
	}
	if !bytes.Equal(dst.Data, src.Data) {
		t.Fatal("Copy equal: contents differ")
	}

	// Shorter destination: truncates to destination length.
	short := Make(2, 16)
	if n := short.Copy(src); n != 2 {
		t.Fatalf("Copy into shorter: %d records, want 2", n)
	}
	if !bytes.Equal(short.Data, src.Data[:2*16]) {
		t.Fatal("Copy into shorter: wrong prefix")
	}

	// Longer destination: copies only the source records.
	long := Make(6, 16)
	if n := long.Copy(src); n != 4 {
		t.Fatalf("Copy into longer: %d records, want 4", n)
	}

	// Empty source and destination are no-ops.
	if n := dst.Copy(Slice{Size: 16}); n != 0 {
		t.Fatalf("Copy from empty: %d records, want 0", n)
	}
	if n := (Slice{Size: 16}).Copy(src); n != 0 {
		t.Fatalf("Copy into empty: %d records, want 0", n)
	}

	// CopyRecord between different positions, aliasing-free.
	a := Make(2, 16)
	Fill(a, Uniform{Seed: 2}, 0)
	b := Make(2, 16)
	b.CopyRecord(1, a, 0)
	if !bytes.Equal(b.Record(1), a.Record(0)) {
		t.Fatal("CopyRecord copied wrong bytes")
	}
}
