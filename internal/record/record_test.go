package record

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestCheckSize(t *testing.T) {
	valid := []int{8, 16, 24, 32, 64, 128, 256}
	for _, s := range valid {
		if err := CheckSize(s); err != nil {
			t.Errorf("CheckSize(%d) = %v, want nil", s, err)
		}
	}
	invalid := []int{0, 1, 4, 7, 9, 12, 20, -8}
	for _, s := range invalid {
		if err := CheckSize(s); err == nil {
			t.Errorf("CheckSize(%d) = nil, want error", s)
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	rec := make([]byte, 16)
	keys := []uint64{0, 1, 42, 1 << 63, ^uint64(0), 0xdeadbeefcafebabe}
	for _, k := range keys {
		PutKey(rec, k)
		if got := Key(rec); got != k {
			t.Errorf("Key(PutKey(%x)) = %x", k, got)
		}
	}
}

func TestKeyByteOrderIsBigEndian(t *testing.T) {
	// Big-endian keys mean bytewise comparison agrees with numeric
	// comparison, which the radix sort relies on.
	a := make([]byte, 8)
	b := make([]byte, 8)
	PutKey(a, 0x0100000000000000)
	PutKey(b, 0x00ffffffffffffff)
	if bytes.Compare(a, b) <= 0 {
		t.Fatalf("big-endian ordering violated: % x vs % x", a, b)
	}
}

func TestNewSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSlice with ragged buffer did not panic")
		}
	}()
	NewSlice(make([]byte, 17), 16)
}

func TestSliceBasics(t *testing.T) {
	s := Make(4, 16)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for i := 0; i < 4; i++ {
		s.SetKey(i, uint64(10-i))
	}
	if s.IsSorted() {
		t.Fatal("descending slice reported sorted")
	}
	s.Swap(0, 3)
	s.Swap(1, 2)
	if !s.IsSorted() {
		t.Fatalf("ascending slice not sorted: keys %v", s.Keys())
	}
	sub := s.Sub(1, 3)
	if sub.Len() != 2 || sub.Key(0) != 8 || sub.Key(1) != 9 {
		t.Fatalf("Sub wrong: keys %v", sub.Keys())
	}
}

func TestSwapWideRecords(t *testing.T) {
	// Exercise the heap-allocated fallback path for records wider than the
	// stack buffer.
	s := Make(2, 1024)
	for i := range s.Record(0) {
		s.Record(0)[i] = 1
	}
	for i := range s.Record(1) {
		s.Record(1)[i] = 2
	}
	s.Swap(0, 1)
	if s.Record(0)[100] != 2 || s.Record(1)[100] != 1 {
		t.Fatal("wide swap did not exchange payloads")
	}
	s.Swap(0, 0) // no-op must not corrupt
	if s.Record(0)[100] != 2 {
		t.Fatal("self-swap corrupted record")
	}
}

func TestLessTieBreaksOnPayload(t *testing.T) {
	s := Make(2, 16)
	s.SetKey(0, 7)
	s.SetKey(1, 7)
	s.Record(0)[15] = 1
	s.Record(1)[15] = 2
	if !s.Less(0, 1) || s.Less(1, 0) {
		t.Fatal("payload tie-break wrong")
	}
	if Compare(s, 0, s, 1) != -1 || Compare(s, 1, s, 0) != 1 || Compare(s, 0, s, 0) != 0 {
		t.Fatal("Compare tie-break wrong")
	}
}

func TestCopyRecord(t *testing.T) {
	a := Make(2, 16)
	b := Make(2, 16)
	a.SetKey(0, 11)
	a.SetKey(1, 22)
	b.CopyRecord(1, a, 0)
	if b.Key(1) != 11 {
		t.Fatalf("CopyRecord: got key %d, want 11", b.Key(1))
	}
}

func TestFillKey(t *testing.T) {
	s := Make(3, 32)
	s.FillKey(MaxKey)
	for i := 0; i < 3; i++ {
		if s.Key(i) != MaxKey {
			t.Fatalf("record %d key = %x", i, s.Key(i))
		}
		for j := KeyBytes; j < 32; j++ {
			if s.Record(i)[j] != 0 {
				t.Fatalf("record %d payload byte %d nonzero", i, j)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, name := range Names() {
		g, ok := ByName(name, 42)
		if !ok {
			t.Fatalf("ByName(%q) failed", name)
		}
		a := make([]byte, 64)
		b := make([]byte, 64)
		for idx := int64(0); idx < 100; idx += 17 {
			g.Gen(a, idx)
			g.Gen(b, idx)
			if !bytes.Equal(a, b) {
				t.Fatalf("%s: Gen not deterministic at idx %d", name, idx)
			}
		}
	}
}

func TestGeneratorsSeedSensitive(t *testing.T) {
	// Different seeds must give different streams (except Sorted/Reverse
	// keys, whose keys are index-determined; their payloads still differ).
	for _, name := range Names() {
		g1, _ := ByName(name, 1)
		g2, _ := ByName(name, 2)
		a := make([]byte, 64)
		b := make([]byte, 64)
		same := 0
		for idx := int64(0); idx < 64; idx++ {
			g1.Gen(a, idx)
			g2.Gen(b, idx)
			if bytes.Equal(a, b) {
				same++
			}
		}
		if same == 64 {
			t.Errorf("%s: seeds 1 and 2 produce identical streams", name)
		}
	}
}

func TestSortedAndReverseShape(t *testing.T) {
	s := Make(128, 16)
	Fill(s, Sorted{Seed: 9}, 0)
	if !s.IsSorted() {
		t.Fatal("Sorted generator output not sorted")
	}
	Fill(s, Reverse{Seed: 9}, 0)
	for i := 1; i < s.Len(); i++ {
		if s.Key(i) >= s.Key(i-1) {
			t.Fatal("Reverse generator output not strictly decreasing")
		}
	}
}

func TestNearlySortedWindow(t *testing.T) {
	s := Make(4096, 16)
	Fill(s, NearlySorted{Seed: 5, Window: 64}, 0)
	// Key at index i is in [64i, 64i+64); so displacement after sorting is
	// bounded: key order can differ from index order by at most 1 position
	// groupings. Just check monotone up to the window.
	for i := 2; i < s.Len(); i++ {
		if s.Key(i)+64 < s.Key(i-2) {
			t.Fatalf("nearly-sorted keys drifted more than window at %d", i)
		}
	}
}

func TestDupDistinctCount(t *testing.T) {
	s := Make(10000, 16)
	Fill(s, Dup{Seed: 3, K: 7}, 0)
	seen := map[uint64]bool{}
	for i := 0; i < s.Len(); i++ {
		seen[s.Key(i)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Dup K=7 produced %d distinct keys", len(seen))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, ok := ByName("nope", 1); ok {
		t.Fatal("ByName accepted unknown generator")
	}
}

func TestChecksumOrderIndependence(t *testing.T) {
	s := Make(256, 32)
	Fill(s, Uniform{Seed: 77}, 0)
	var fwd, rev Checksum
	for i := 0; i < s.Len(); i++ {
		fwd.Add(s.Record(i))
	}
	for i := s.Len() - 1; i >= 0; i-- {
		rev.Add(s.Record(i))
	}
	if !fwd.Equal(rev) {
		t.Fatal("checksum depends on order")
	}
}

func TestChecksumDetectsMutation(t *testing.T) {
	s := Make(64, 32)
	Fill(s, Uniform{Seed: 1}, 0)
	var a Checksum
	a.AddSlice(s)
	s.Record(10)[20] ^= 1
	var b Checksum
	b.AddSlice(s)
	if a.Equal(b) {
		t.Fatal("checksum missed a single-bit mutation")
	}
}

func TestChecksumDetectsDuplication(t *testing.T) {
	// Replacing a record with a copy of another (preserving count) must be
	// detected; a pure xor fingerprint would be fooled by pair swaps.
	s := Make(64, 16)
	Fill(s, Uniform{Seed: 2}, 0)
	var a Checksum
	a.AddSlice(s)
	s.CopyRecord(1, s, 0) // now record 0 appears twice
	var b Checksum
	b.AddSlice(s)
	if a.Equal(b) {
		t.Fatal("checksum missed duplicated record")
	}
	if a.Count != b.Count {
		t.Fatal("counts should match in this scenario")
	}
}

func TestChecksumMergeMatchesWhole(t *testing.T) {
	s := Make(100, 16)
	Fill(s, Uniform{Seed: 5}, 0)
	var whole Checksum
	whole.AddSlice(s)
	var left, right Checksum
	left.AddSlice(s.Sub(0, 37))
	right.AddSlice(s.Sub(37, 100))
	left.Merge(right)
	if !left.Equal(whole) {
		t.Fatal("merged partial checksums != whole checksum")
	}
}

func TestOfGeneratedMatchesFill(t *testing.T) {
	g := Uniform{Seed: 123}
	s := Make(500, 64)
	Fill(s, g, 0)
	var direct Checksum
	direct.AddSlice(s)
	if got := OfGenerated(g, 500, 64); !got.Equal(direct) {
		t.Fatal("OfGenerated disagrees with Fill+AddSlice")
	}
}

func TestChecksumQuick(t *testing.T) {
	// Property: permuting a slice never changes its checksum.
	f := func(keys []uint64) bool {
		if len(keys) == 0 {
			return true
		}
		s := Make(len(keys), 16)
		for i, k := range keys {
			s.SetKey(i, k)
		}
		var a Checksum
		a.AddSlice(s)
		// Rotate by 1 and reverse: two permutations.
		s2 := Make(len(keys), 16)
		for i := range keys {
			s2.CopyRecord(i, s, (i+1)%len(keys))
		}
		var b Checksum
		b.AddSlice(s2)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHash64Mixes(t *testing.T) {
	// Sanity: nearby inputs map to far-apart outputs.
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collision on adjacent inputs")
	}
}
