package record

// Checksum is an order-independent fingerprint of a multiset of records.
// Two record collections have equal Checksums (with overwhelming
// probability) iff they contain the same records with the same
// multiplicities, regardless of order. Sorting algorithms must preserve it
// exactly; the verify package compares input and output checksums.
//
// The construction hashes each record to a 64-bit value and combines with
// both a sum and a xor-of-rotations, plus a count; collisions require
// simultaneous collisions in independent mixes.
type Checksum struct {
	Count int64
	Sum   uint64
	Mix   uint64
}

// Add folds one record into the checksum.
func (c *Checksum) Add(rec []byte) {
	h := hashRecord(rec)
	c.Count++
	c.Sum += h
	// Rotate by a data-dependent amount before xoring so that identical
	// records still contribute identically but the combination is not a
	// plain xor (which would cancel pairs).
	r := h & 63
	c.Mix += (h << r) | (h >> (64 - r))
}

// AddSlice folds every record of s into the checksum.
func (c *Checksum) AddSlice(s Slice) {
	n := s.Len()
	for i := 0; i < n; i++ {
		c.Add(s.Record(i))
	}
}

// Merge combines another checksum into c (disjoint-union of multisets).
func (c *Checksum) Merge(o Checksum) {
	c.Count += o.Count
	c.Sum += o.Sum
	c.Mix += o.Mix
}

// Equal reports whether two checksums match.
func (c Checksum) Equal(o Checksum) bool {
	return c.Count == o.Count && c.Sum == o.Sum && c.Mix == o.Mix
}

func hashRecord(rec []byte) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	i := 0
	for ; i+8 <= len(rec); i += 8 {
		w := uint64(rec[i]) | uint64(rec[i+1])<<8 | uint64(rec[i+2])<<16 | uint64(rec[i+3])<<24 |
			uint64(rec[i+4])<<32 | uint64(rec[i+5])<<40 | uint64(rec[i+6])<<48 | uint64(rec[i+7])<<56
		h = splitmix64(h ^ w)
	}
	for ; i < len(rec); i++ {
		h = splitmix64(h ^ uint64(rec[i]))
	}
	return h
}

// OfGenerated computes the checksum that Fill(s, g, 0) over n records of the
// given size would produce, without materializing them all at once. Used to
// verify out-of-core outputs against the logical input.
func OfGenerated(g Generator, n int64, size int) Checksum {
	var c Checksum
	rec := make([]byte, size)
	for i := int64(0); i < n; i++ {
		g.Gen(rec, i)
		c.Add(rec)
	}
	return c
}
