package record

import (
	"bytes"
	"testing"
)

// FuzzKeySpecRoundTrip fuzzes the KeySpec → KeyCodec compiler and the
// encode/decode byte permutation: for ANY spec and record bytes, Compile
// must either reject the spec with an error (never panic) or produce a
// codec whose Decode exactly inverts Encode — and whose normalized byte
// order realizes the spec's field order, the property the whole pluggable
// key schema rests on.
func FuzzKeySpecRoundTrip(f *testing.F) {
	f.Add([]byte("0123456789abcdef0123456789abcdef"), 4, 8, false)
	f.Add([]byte("una columna bien ordenada por ti"), 0, 0, true)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
		0, 0, 0, 0, 0, 0, 0, 0}, 7, 9, true)
	f.Fuzz(func(t *testing.T, data []byte, off, width int, desc bool) {
		size := (len(data) / 2 / 8) * 8 // two records of a legal size
		if size < MinSize {
			return
		}
		if size > 512 {
			size = 512
		}
		ks := KeySpec{Offset: off, Width: width}
		if desc {
			ks.Order = Descending
		}
		codec, err := ks.Compile(size)
		if err != nil {
			return // invalid specs must error — not panicking IS the test
		}
		w := width
		if w == 0 {
			w = KeyBytes
		}

		a := append([]byte(nil), data[:size]...)
		b := append([]byte(nil), data[size:2*size]...)
		origA := append([]byte(nil), a...)
		origB := append([]byte(nil), b...)

		codec.EncodeRecord(a)
		codec.EncodeRecord(b)

		// Normalized order realizes the field order: when the fields
		// differ, bytes.Compare over normalized records must agree with the
		// (direction-adjusted) comparison of the raw field bytes.
		fieldCmp := bytes.Compare(origA[off:off+w], origB[off:off+w])
		if desc {
			fieldCmp = -fieldCmp
		}
		if fieldCmp != 0 {
			if got := bytes.Compare(a, b); got != fieldCmp {
				t.Fatalf("spec %v: normalized order %d, field order %d", ks, got, fieldCmp)
			}
		}

		codec.DecodeRecord(a)
		codec.DecodeRecord(b)
		if !bytes.Equal(a, origA) || !bytes.Equal(b, origB) {
			t.Fatalf("spec %v on %d-byte records: decode(encode(x)) != x", ks, size)
		}

		// The slice forms must match the record forms.
		s := Make(2, size)
		copy(s.Record(0), origA)
		copy(s.Record(1), origB)
		codec.Encode(s)
		codec.Decode(s)
		if !bytes.Equal(s.Record(0), origA) || !bytes.Equal(s.Record(1), origB) {
			t.Fatalf("spec %v: slice Encode/Decode round trip failed", ks)
		}
	})
}
