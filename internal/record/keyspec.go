// Key schema support: the engine sorts by the first 8 bytes of each record
// (big-endian, ascending, payload tie-break — see record.go). Real workloads
// carry their key elsewhere in the record (a timestamp in a log entry, an
// amplitude in a seismic trace). A KeySpec names that field, and compiles to
// a KeyCodec: a reversible in-place byte permutation that moves the field to
// the front of the record (complemented for descending order), so that the
// engine's hardwired comparison realizes the requested field order with NO
// change to — and no per-comparison cost in — any sorting kernel. The
// permutation is undone on egress, so callers never see normalized bytes.

package record

import "fmt"

// Order is the direction of a key field's sort.
type Order int

const (
	// Ascending sorts smallest key field first (the default).
	Ascending Order = iota
	// Descending sorts largest key field first.
	Descending
)

func (o Order) String() string {
	if o == Descending {
		return "descending"
	}
	return "ascending"
}

// KeySpec describes where the sort key lives inside a record and in which
// direction to sort it. The zero value is the engine's native key: 8 bytes
// at offset 0, ascending.
//
// The field is compared as a big-endian unsigned integer when Width ≤ 8 and
// lexicographically by bytes for any width — the two coincide for fields
// whose byte order is big-endian, which is also the library's own key
// convention. Records tied on the field are ordered by their remaining bytes
// so that every sort is a deterministic total order.
type KeySpec struct {
	// Offset is the byte offset of the key field within the record.
	Offset int
	// Width is the field width in bytes; 0 means 8.
	Width int
	// Order is Ascending (default) or Descending.
	Order Order
}

func (ks KeySpec) String() string {
	w := ks.Width
	if w == 0 {
		w = KeyBytes
	}
	return fmt.Sprintf("key[%d:%d] %v", ks.Offset, ks.Offset+w, ks.Order)
}

// Compile validates the spec against a record size and returns the codec
// realizing it. The zero KeySpec compiles to the identity codec.
func (ks KeySpec) Compile(recSize int) (KeyCodec, error) {
	w := ks.Width
	if w == 0 {
		w = KeyBytes
	}
	if err := CheckSize(recSize); err != nil {
		return KeyCodec{}, err
	}
	if ks.Order != Ascending && ks.Order != Descending {
		return KeyCodec{}, fmt.Errorf("record: unknown key order %d", int(ks.Order))
	}
	if w < 1 {
		return KeyCodec{}, fmt.Errorf("record: key width %d must be ≥ 1", w)
	}
	if ks.Offset < 0 || ks.Offset+w > recSize {
		return KeyCodec{}, fmt.Errorf("record: key field [%d:%d) outside %d-byte record",
			ks.Offset, ks.Offset+w, recSize)
	}
	return KeyCodec{off: ks.Offset, width: w, desc: ks.Order == Descending, size: recSize}, nil
}

// KeyCodec is a compiled KeySpec: an in-place, allocation-free, reversible
// transform between caller records and the engine's normalized form.
//
// Encode left-rotates the prefix rec[0 : Offset+Width] by Offset bytes,
// which lands the field bytes at the front of the record and the displaced
// prefix immediately after them; descending fields are additionally
// bit-complemented. Under the engine's comparison (first 8 bytes big-endian,
// ties by remaining bytes) normalized records therefore order exactly by
// (field, deterministic tie-break): for Width < 8 the bytes after the field
// only ever break field ties, and for Width > 8 the field's tail is the
// leading tie-break. Decode inverts the permutation exactly.
type KeyCodec struct {
	off   int
	width int
	desc  bool
	size  int
}

// Identity reports whether the codec is a no-op (native key layout).
func (c KeyCodec) Identity() bool { return c.off == 0 && !c.desc }

// RecSize returns the record size the codec was compiled for (0 for the
// zero codec, which is identity at any size).
func (c KeyCodec) RecSize() int { return c.size }

// EncodeRecord normalizes one record in place.
func (c KeyCodec) EncodeRecord(rec []byte) {
	if c.off > 0 {
		rotateLeft(rec[:c.off+c.width], c.off)
	}
	if c.desc {
		complement(rec[:c.width])
	}
}

// DecodeRecord restores one record's caller byte layout in place.
func (c KeyCodec) DecodeRecord(rec []byte) {
	if c.desc {
		complement(rec[:c.width])
	}
	if c.off > 0 {
		rotateLeft(rec[:c.off+c.width], c.width)
	}
}

// Encode normalizes every record of s in place.
func (c KeyCodec) Encode(s Slice) {
	if c.Identity() {
		return
	}
	n := s.Len()
	for i := 0; i < n; i++ {
		c.EncodeRecord(s.Record(i))
	}
}

// Decode restores every record of s in place.
func (c KeyCodec) Decode(s Slice) {
	if c.Identity() {
		return
	}
	n := s.Len()
	for i := 0; i < n; i++ {
		c.DecodeRecord(s.Record(i))
	}
}

// rotateLeft rotates b left by k bytes via triple reversal (in place, no
// allocation). Callers guarantee 0 < k < len(b).
func rotateLeft(b []byte, k int) {
	reverse(b[:k])
	reverse(b[k:])
	reverse(b)
}

func reverse(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

func complement(b []byte) {
	for i := range b {
		b[i] = ^b[i]
	}
}
