package record

import "testing"

func TestPoolRoundTrip(t *testing.T) {
	p := NewPool()
	s := p.Get(100, 16)
	if s.Len() != 100 || s.Size != 16 {
		t.Fatalf("Get(100, 16) = %d×%dB", s.Len(), s.Size)
	}
	data := &s.Data[0]
	p.Put(s)
	if got := p.FreeBuffers(); got != 1 {
		t.Fatalf("FreeBuffers = %d after one Put, want 1", got)
	}
	// The same backing buffer must come back for a same-class request
	// (100×16 = 1600 B and 256×8 = 2048 B both class 2048), even at a
	// different length and record size.
	s2 := p.Get(256, 8)
	if &s2.Data[0] != data {
		t.Error("same-class Get did not reuse the pooled buffer")
	}
	if s2.Len() != 256 || s2.Size != 8 {
		t.Fatalf("Get(256, 8) = %d×%dB", s2.Len(), s2.Size)
	}
}

func TestPoolZeroLength(t *testing.T) {
	p := NewPool()
	s := p.Get(0, 16)
	if s.Data == nil {
		t.Fatal("Get(0, ...) must return non-nil Data (empty message, not absent message)")
	}
	if s.Len() != 0 {
		t.Fatalf("Get(0, ...) has %d records", s.Len())
	}
	p.Put(s) // must be a no-op, not a corruption of the free lists
	if got := p.FreeBuffers(); got != 0 {
		t.Fatalf("FreeBuffers = %d after Put of empty, want 0", got)
	}
}

func TestNilPoolFallsBack(t *testing.T) {
	var p *Pool
	s := p.Get(10, 16)
	if s.Len() != 10 {
		t.Fatalf("nil pool Get: %d records", s.Len())
	}
	p.Put(s) // must not panic
}

func TestPoolForeignBuffer(t *testing.T) {
	// Buffers that were never Get from a pool (plain Make, received
	// messages) must be accepted by Put and reusable.
	p := NewPool()
	p.Put(Make(100, 16)) // cap 1600: class floor 1024
	s := p.Get(64, 16)   // need 1024 → class 1024: the foreign buffer fits
	if s.Len() != 64 {
		t.Fatalf("Get after foreign Put: %d records", s.Len())
	}
}

func TestPoolAllocsSteadyState(t *testing.T) {
	p := NewPool()
	p.Put(p.Get(1024, 64)) // warm the class
	allocs := testing.AllocsPerRun(10, func() {
		s := p.Get(1024, 64)
		p.Put(s)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per warm Get/Put cycle, want 0", allocs)
	}
}

func TestHeadersRoundTrip(t *testing.T) {
	h := GetHeaders(8)
	if len(h) != 8 {
		t.Fatalf("GetHeaders(8) has length %d", len(h))
	}
	h[3] = Make(4, 16)
	PutHeaders(h)
	h2 := GetHeaders(4)
	for i, s := range h2 {
		if s.Data != nil {
			t.Fatalf("recycled header %d not zeroed", i)
		}
	}
	PutHeaders(h2)
	allocs := testing.AllocsPerRun(10, func() {
		hh := GetHeaders(8)
		PutHeaders(hh)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per warm GetHeaders/PutHeaders, want 0", allocs)
	}
}
