package record

import (
	"math/bits"
	"sync"
)

// Pool is a size-classed free list of record buffers, the fixed buffer pool
// of the paper's threaded implementation: every pipeline stage Gets its
// column, message, and write buffers from the pool and Puts them back when
// the records have moved on, so the steady state of a pass performs no
// allocator work at all. Buffers are classed by power-of-two byte capacity;
// a Get that misses its class allocates a buffer whose capacity is the full
// class size, so the buffer is reusable for any request of the class.
//
// A Pool is safe for concurrent use; the out-of-core passes share one pool
// per processor across all pipeline-stage goroutines. Buffers may migrate
// between processors (a message buffer is Get from the sender's pool and
// Put into the receiver's): a Pool places no provenance requirement on the
// buffers it is handed.
//
// Ownership discipline: Put only a Slice you own outright — the value
// returned by Get (or Make, or received from a message), never a Sub view
// whose parent is still live, and never a buffer another goroutine can
// still reach. A nil *Pool is valid and degenerates to plain allocation:
// Get falls back to Make and Put drops the buffer, so pooling can be
// threaded through code paths optionally.
type Pool struct {
	mu      sync.Mutex
	classes [poolClasses][][]byte
}

// poolClasses bounds the largest class at 2^47 bytes, far beyond any
// simulated column buffer.
const poolClasses = 48

// maxPerClass bounds the free buffers retained per size class. The pipeline
// depth bounds how many buffers of a class are ever simultaneously live, so
// a small multiple of it suffices; anything beyond is released to the GC.
const maxPerClass = 32

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// empty is the zero-length backing of Get(0, size), non-nil so that callers
// distinguishing "no message" (nil Data) from "empty message" keep working.
var empty = make([]byte, 0)

// Get returns a Slice of n records of the given size, reusing a pooled
// buffer when one is available. The contents are NOT zeroed: callers must
// fully overwrite the records they read.
func (p *Pool) Get(n, size int) Slice {
	if p == nil {
		return Make(n, size)
	}
	if err := CheckSize(size); err != nil {
		panic(err)
	}
	return Slice{Data: p.GetBytes(n * size), Size: size}
}

// Put returns a buffer to the pool. The buffer's full capacity is recycled:
// a later Get may return it at any length up to that capacity. Putting an
// empty or over-large buffer is a no-op, so Put(s) is always safe on a
// Slice obtained from Get.
func (p *Pool) Put(s Slice) {
	if p == nil {
		return
	}
	c := cap(s.Data)
	if c < MinSize {
		return
	}
	k := bits.Len(uint(c)) - 1 // floor(log2(cap)): cap ∈ [2^k, 2^(k+1))
	if k >= poolClasses {
		return
	}
	buf := s.Data[:c]
	p.mu.Lock()
	if len(p.classes[k]) < maxPerClass {
		p.classes[k] = append(p.classes[k], buf)
	}
	p.mu.Unlock()
}

// GetBytes returns a raw byte buffer of length n from the size-classed
// free lists — the allocation primitive Get wraps with a record shape,
// also used directly by clients (the async disk layer's prefetch staging
// and write-behind snapshots, pooled MemDisk backings) whose extents are
// byte- not record-shaped. The contents are NOT zeroed. A nil pool falls
// back to plain allocation.
func (p *Pool) GetBytes(n int) []byte {
	if n <= 0 {
		return empty
	}
	if p == nil {
		return make([]byte, n)
	}
	k := bits.Len(uint(n - 1)) // ceil(log2(n))
	if k >= poolClasses {
		return make([]byte, n)
	}
	p.mu.Lock()
	free := p.classes[k]
	if ln := len(free); ln > 0 {
		buf := free[ln-1]
		free[ln-1] = nil
		p.classes[k] = free[:ln-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]byte, n, 1<<k)
}

// PutBytes recycles a buffer obtained from GetBytes (or any whole buffer
// the caller owns outright) into the byte pool. Like Put, the buffer's full
// capacity is recycled and empty or over-large buffers are dropped.
func (p *Pool) PutBytes(b []byte) {
	if p == nil {
		return
	}
	p.Put(Slice{Data: b, Size: MinSize})
}

// FreeBuffers reports the number of idle buffers currently held, for tests
// and introspection.
func (p *Pool) FreeBuffers() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, c := range p.classes {
		total += len(c)
	}
	return total
}

// FreeBytes reports the total capacity, in bytes, of the idle buffers
// currently held — the pool-occupancy figure an engine's stats snapshot
// reports as warm reusable memory.
func (p *Pool) FreeBytes() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, c := range p.classes {
		for _, b := range c {
			total += int64(cap(b))
		}
	}
	return total
}

// headerFree recycles the small []Slice scratch arrays (per-destination
// message vectors, per-column write vectors) that travel between pipeline
// stages alongside pooled record buffers. A plain free list rather than a
// sync.Pool: the arrays are tiny but requested on every pipeline round, and
// sync.Pool's per-GC clearing would turn each collection into a fresh burst
// of allocations.
var (
	headerMu   sync.Mutex
	headerFree [][]Slice
)

const maxFreeHeaders = 256

// GetHeaders returns a []Slice of length n with all elements zeroed.
func GetHeaders(n int) []Slice {
	headerMu.Lock()
	for ln := len(headerFree); ln > 0; ln = len(headerFree) {
		h := headerFree[ln-1]
		headerFree[ln-1] = nil
		headerFree = headerFree[:ln-1]
		if cap(h) < n {
			continue // too small: drop and keep popping
		}
		headerMu.Unlock()
		h = h[:n]
		for i := range h {
			h[i] = Slice{}
		}
		return h
	}
	headerMu.Unlock()
	return make([]Slice, n)
}

// PutHeaders recycles a []Slice obtained from GetHeaders. The caller must
// not retain the slice (or any alias of it) afterwards.
func PutHeaders(h []Slice) {
	if cap(h) == 0 {
		return
	}
	headerMu.Lock()
	if len(headerFree) < maxFreeHeaders {
		headerFree = append(headerFree, h[:0])
	}
	headerMu.Unlock()
}

// NewPools builds one pool per processor of a simulated machine.
func NewPools(p int) []*Pool {
	pools := make([]*Pool, p)
	for i := range pools {
		pools[i] = NewPool()
	}
	return pools
}
