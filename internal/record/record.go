// Package record defines the fixed-size record substrate used throughout the
// out-of-core columnsort implementation.
//
// A record is a fixed-size sequence of bytes whose first 8 bytes hold the
// sort key as a big-endian uint64, so that lexicographic byte order of the
// key field equals numeric key order. The remainder of the record is opaque
// payload. The paper's experiments use 64- and 128-byte records; any size
// that is a multiple of 8 and at least 8 is supported here.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// KeyBytes is the size of the key prefix of every record.
const KeyBytes = 8

// MinSize is the smallest legal record size (a bare key).
const MinSize = KeyBytes

// Common record sizes, matching the paper's experimental range.
const (
	Size16  = 16
	Size32  = 32
	Size64  = 64
	Size128 = 128
)

// ErrBadSize reports an unusable record size.
var ErrBadSize = errors.New("record: size must be a multiple of 8 and >= 8")

// CheckSize validates a record size.
func CheckSize(size int) error {
	if size < MinSize || size%8 != 0 {
		return fmt.Errorf("%w (got %d)", ErrBadSize, size)
	}
	return nil
}

// Key extracts the sort key of the record starting at rec[0].
// rec must be at least KeyBytes long.
func Key(rec []byte) uint64 {
	return binary.BigEndian.Uint64(rec[:KeyBytes])
}

// PutKey stores key into the key field of the record starting at rec[0].
func PutKey(rec []byte, key uint64) {
	binary.BigEndian.PutUint64(rec[:KeyBytes], key)
}

// Slice is a view over a byte buffer holding n = len(Data)/Size contiguous
// fixed-size records. It is the unit of in-memory work: columns are read from
// disk into a Slice, sorted, permuted, and written back.
type Slice struct {
	Data []byte
	Size int // record size in bytes
}

// NewSlice wraps data as a record slice. It panics if data is not a whole
// number of records; construction errors here always indicate programmer
// error, never bad input data.
func NewSlice(data []byte, size int) Slice {
	if err := CheckSize(size); err != nil {
		panic(err)
	}
	if len(data)%size != 0 {
		panic(fmt.Sprintf("record: buffer of %d bytes is not a whole number of %d-byte records", len(data), size))
	}
	return Slice{Data: data, Size: size}
}

// Make allocates a Slice holding n records of the given size.
func Make(n, size int) Slice {
	if err := CheckSize(size); err != nil {
		panic(err)
	}
	return Slice{Data: make([]byte, n*size), Size: size}
}

// Len returns the number of records in the slice.
func (s Slice) Len() int { return len(s.Data) / s.Size }

// Bytes returns the raw backing bytes.
func (s Slice) Bytes() []byte { return s.Data }

// Record returns the i-th record's bytes (aliasing the backing buffer).
func (s Slice) Record(i int) []byte {
	return s.Data[i*s.Size : (i+1)*s.Size]
}

// Key returns the key of the i-th record.
func (s Slice) Key(i int) uint64 {
	return binary.BigEndian.Uint64(s.Data[i*s.Size:])
}

// SetKey stores key into the i-th record.
func (s Slice) SetKey(i int, key uint64) {
	binary.BigEndian.PutUint64(s.Data[i*s.Size:], key)
}

// Sub returns the sub-slice of records [lo, hi).
func (s Slice) Sub(lo, hi int) Slice {
	return Slice{Data: s.Data[lo*s.Size : hi*s.Size], Size: s.Size}
}

// Copy copies records from src into s, returning the number of records
// copied (min of the two lengths).
func (s Slice) Copy(src Slice) int {
	n := copy(s.Data, src.Data)
	return n / s.Size
}

// CopyRecord copies record j of src over record i of s.
func (s Slice) CopyRecord(i int, src Slice, j int) {
	copy(s.Data[i*s.Size:(i+1)*s.Size], src.Data[j*src.Size:(j+1)*src.Size])
}

// swapScratch recycles the temporary buffer of wide-record swaps so that
// Swap never allocates in steady state, whatever the record size. (The
// sorting package avoids whole-record swaps for wide records anyway — it
// sorts (key, index) pairs and gathers — but Swap is needed by small
// helpers and by sort.Interface adapters, which must not pay an allocation
// per call.)
var swapScratch = sync.Pool{New: func() any { return new([]byte) }}

// Swap exchanges records i and j in place. Records up to 512 bytes swap
// through a stack buffer; wider records borrow a pooled scratch buffer.
func (s Slice) Swap(i, j int) {
	if i == j {
		return
	}
	var tmp [512]byte
	a := s.Data[i*s.Size : (i+1)*s.Size]
	b := s.Data[j*s.Size : (j+1)*s.Size]
	if s.Size <= len(tmp) {
		copy(tmp[:s.Size], a)
		copy(a, b)
		copy(b, tmp[:s.Size])
		return
	}
	tp := swapScratch.Get().(*[]byte)
	t := *tp
	if cap(t) < s.Size {
		t = make([]byte, s.Size)
	}
	t = t[:s.Size]
	copy(t, a)
	copy(a, b)
	copy(b, t)
	*tp = t
	swapScratch.Put(tp)
}

// Less reports whether record i's key is strictly smaller than record j's.
// Ties on the key compare the remaining payload bytes so that sorting is a
// total order and stability questions cannot produce distinct valid outputs
// across algorithm variants under test.
func (s Slice) Less(i, j int) bool {
	ki, kj := s.Key(i), s.Key(j)
	if ki != kj {
		return ki < kj
	}
	a := s.Data[i*s.Size+KeyBytes : (i+1)*s.Size]
	b := s.Data[j*s.Size+KeyBytes : (j+1)*s.Size]
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// Compare returns -1, 0, or +1 ordering records i of s and j of t.
func Compare(s Slice, i int, t Slice, j int) int {
	ki, kj := s.Key(i), t.Key(j)
	switch {
	case ki < kj:
		return -1
	case ki > kj:
		return 1
	}
	a := s.Data[i*s.Size+KeyBytes : (i+1)*s.Size]
	b := t.Data[j*t.Size+KeyBytes : (j+1)*t.Size]
	for k := range a {
		if k >= len(b) {
			return 1
		}
		if a[k] != b[k] {
			if a[k] < b[k] {
				return -1
			}
			return 1
		}
	}
	if len(b) > len(a) {
		return -1
	}
	return 0
}

// IsSorted reports whether the slice is in nondecreasing key order.
func (s Slice) IsSorted() bool {
	n := s.Len()
	for i := 1; i < n; i++ {
		if s.Less(i, i-1) {
			return false
		}
	}
	return true
}

// Keys extracts all keys into a fresh []uint64, mostly for tests.
func (s Slice) Keys() []uint64 {
	n := s.Len()
	out := make([]uint64, n)
	for i := range out {
		out[i] = s.Key(i)
	}
	return out
}

// MinKey and MaxKey are the extreme key values, used by the ±∞ boundary
// columns of columnsort steps 6 and 8.
const (
	MinKey uint64 = 0
	MaxKey uint64 = ^uint64(0)
)

// FillKey sets every record in s to the given key with zero payload,
// used to materialize the ±∞ half-columns.
func (s Slice) FillKey(key uint64) {
	n := s.Len()
	for i := 0; i < n; i++ {
		rec := s.Record(i)
		for j := range rec {
			rec[j] = 0
		}
		PutKey(rec, key)
	}
}
