// Package pipeline provides the asynchronous staged pipeline that structures
// every out-of-core columnsort pass.
//
// The paper's threaded implementation [CC02] gives each processor a small
// set of threads (read/write I/O, sort, communicate, permute) connected into
// a pipeline so that at any moment each stage can be working on a different
// round. The Go port runs each stage as a goroutine connected to its
// neighbours by bounded channels; bounded capacity is what bounds the number
// of in-flight rounds and therefore the memory in use, exactly as the
// paper's fixed buffer pools do.
package pipeline

import (
	"fmt"
	"sync"
)

// Stage transforms one in-flight item (a pipeline round). Stages run
// concurrently with each other; a given stage sees items in source order.
type Stage[T any] func(item T) (T, error)

// Run drives items from source through the stages into sink.
//
// source calls emit once per item and returns; each stage runs in its own
// goroutine; sink consumes items in order. chanCap bounds the items queued
// between adjacent stages (the paper's buffer-pool depth); the total number
// of in-flight rounds is at most (stages+1)·(chanCap+1).
//
// The first error from any stage, the source, or the sink cancels the whole
// pipeline and is returned.
func Run[T any](chanCap int, source func(emit func(T) error) error, sink func(T) error, stages ...Stage[T]) error {
	return RunDrain(chanCap, source, sink, nil, stages...)
}

// RunDrain is Run with an I/O-completion hook: after the sink has consumed
// every item of an otherwise error-free run, drain is invoked inside the
// pipeline scope, so its error — typically a write-behind Flush surfacing a
// deferred disk failure — is reported as the pipeline's error. A nil drain
// degenerates to Run.
func RunDrain[T any](chanCap int, source func(emit func(T) error) error, sink func(T) error, drain func() error, stages ...Stage[T]) error {
	if chanCap < 0 {
		return fmt.Errorf("pipeline: negative channel capacity %d", chanCap)
	}
	done := make(chan struct{})
	var once sync.Once
	var firstErr error
	fail := func(err error) {
		once.Do(func() {
			firstErr = err
			close(done)
		})
	}

	chans := make([]chan T, len(stages)+1)
	for i := range chans {
		chans[i] = make(chan T, chanCap)
	}

	var wg sync.WaitGroup

	// Source.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(chans[0])
		emit := func(item T) error {
			select {
			case chans[0] <- item:
				return nil
			case <-done:
				return firstErrLocked(&once, &firstErr)
			}
		}
		if err := source(emit); err != nil {
			fail(err)
		}
	}()

	// Stages.
	for i, st := range stages {
		wg.Add(1)
		go func(i int, st Stage[T]) {
			defer wg.Done()
			defer close(chans[i+1])
			for item := range chans[i] {
				out, err := st(item)
				if err != nil {
					fail(err)
					return
				}
				select {
				case chans[i+1] <- out:
				case <-done:
					return
				}
			}
		}(i, st)
	}

	// Sink.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for item := range chans[len(stages)] {
			if err := sink(item); err != nil {
				fail(err)
				return
			}
			select {
			case <-done:
				return
			default:
			}
		}
		if drain != nil {
			select {
			case <-done: // a failure upstream: nothing left to complete
			default:
				if err := drain(); err != nil {
					fail(err)
				}
			}
		}
	}()

	wg.Wait()
	return firstErr
}

// firstErrLocked returns the recorded first error, ensuring a canceled
// emit reports the root cause rather than a generic message.
func firstErrLocked(once *sync.Once, firstErr *error) error {
	// By the time done is closed, firstErr has been written under once.
	if *firstErr != nil {
		return *firstErr
	}
	return fmt.Errorf("pipeline: canceled")
}

// Rounds is a convenience source emitting the integers [0, n).
func Rounds(n int) func(emit func(int) error) error {
	return func(emit func(int) error) error {
		for t := 0; t < n; t++ {
			if err := emit(t); err != nil {
				return err
			}
		}
		return nil
	}
}
