package pipeline

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOrderPreserved(t *testing.T) {
	var got []int
	double := func(x int) (int, error) { return x * 2, nil }
	inc := func(x int) (int, error) { return x + 1, nil }
	err := Run(1, Rounds(100),
		func(x int) error { got = append(got, x); return nil },
		double, inc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("sink saw %d items", len(got))
	}
	for i, x := range got {
		if x != i*2+1 {
			t.Fatalf("item %d = %d, want %d", i, x, i*2+1)
		}
	}
}

func TestNoStages(t *testing.T) {
	sum := 0
	err := Run(0, Rounds(10), func(x int) error { sum += x; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if sum != 45 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestStagesOverlap(t *testing.T) {
	// Two stages that sleep must overlap: total wall time for n items
	// through 2 stages of d delay each must be well under serial 2·n·d.
	const n, d = 8, 10 * time.Millisecond
	slow := func(x int) (int, error) { time.Sleep(d); return x, nil }
	start := time.Now()
	err := Run(1, Rounds(n), func(int) error { return nil }, slow, slow)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	serial := 2 * n * d
	if elapsed > serial*3/4 {
		t.Fatalf("no overlap: %v vs serial %v", elapsed, serial)
	}
}

func TestStageErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	err := Run(1, Rounds(1000),
		func(int) error { return nil },
		func(x int) (int, error) {
			if x == 5 {
				return 0, boom
			}
			return x, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestSourceErrorPropagates(t *testing.T) {
	boom := errors.New("src")
	err := Run(1, func(emit func(int) error) error { return boom },
		func(int) error { return nil },
		func(x int) (int, error) { return x, nil })
	if !errors.Is(err, boom) {
		t.Fatalf("want src error, got %v", err)
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	boom := errors.New("sink")
	err := Run(2, Rounds(1000),
		func(x int) error {
			if x == 3 {
				return boom
			}
			return nil
		},
		func(x int) (int, error) { return x, nil })
	if !errors.Is(err, boom) {
		t.Fatalf("want sink error, got %v", err)
	}
}

func TestErrorUnblocksFastSource(t *testing.T) {
	// The source emits many items into a tiny channel; an early sink error
	// must unblock the source promptly rather than deadlock.
	boom := errors.New("early")
	done := make(chan error, 1)
	go func() {
		done <- Run(0, Rounds(1_000_000),
			func(x int) error { return boom },
			func(x int) (int, error) { return x, nil })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("want early error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline deadlocked on error")
	}
}

func TestNegativeCapacity(t *testing.T) {
	if err := Run(-1, Rounds(1), func(int) error { return nil }); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestBoundedInFlight(t *testing.T) {
	// With capacity 1 and three stages, the number of rounds past the
	// source but not yet through the sink must stay bounded.
	var inFlight, maxInFlight int64
	enter := func(x int) (int, error) {
		v := atomic.AddInt64(&inFlight, 1)
		for {
			m := atomic.LoadInt64(&maxInFlight)
			if v <= m || atomic.CompareAndSwapInt64(&maxInFlight, m, v) {
				break
			}
		}
		return x, nil
	}
	leave := func(x int) error {
		atomic.AddInt64(&inFlight, -1)
		return nil
	}
	err := Run(1, Rounds(200), leave, enter,
		func(x int) (int, error) { time.Sleep(time.Microsecond); return x, nil },
		func(x int) (int, error) { return x, nil })
	if err != nil {
		t.Fatal(err)
	}
	// 3 stages + sink with cap 1 between: at most ~8 in flight.
	if m := atomic.LoadInt64(&maxInFlight); m > 10 {
		t.Fatalf("in-flight rounds not bounded: %d", m)
	}
}

func TestConcurrentPipelines(t *testing.T) {
	// Many pipelines in parallel (as P processors each run one) must not
	// interfere.
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sum := 0
			errs[k] = Run(1, Rounds(50),
				func(x int) error { sum += x; return nil },
				func(x int) (int, error) { return x + k, nil })
			if errs[k] == nil && sum != 50*49/2+50*k {
				errs[k] = errors.New("bad sum")
			}
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("pipeline %d: %v", k, err)
		}
	}
}

func TestRunDrainCalledAfterSink(t *testing.T) {
	var mu sync.Mutex
	var consumed int
	drained := false
	err := RunDrain(1, Rounds(5),
		func(int) error {
			mu.Lock()
			defer mu.Unlock()
			if drained {
				t.Error("drain ran before the sink finished")
			}
			consumed++
			return nil
		},
		func() error {
			mu.Lock()
			defer mu.Unlock()
			if consumed != 5 {
				t.Errorf("drain ran after %d of 5 items", consumed)
			}
			drained = true
			return nil
		},
		func(x int) (int, error) { return x, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !drained {
		t.Fatal("drain never ran")
	}
}

func TestRunDrainErrorPropagates(t *testing.T) {
	want := errors.New("deferred write failure")
	err := RunDrain(1, Rounds(3),
		func(int) error { return nil },
		func() error { return want })
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want drain error", err)
	}
}

func TestRunDrainSkippedOnFailure(t *testing.T) {
	boom := errors.New("stage failure")
	var drainRan atomic.Bool
	err := RunDrain(1, Rounds(10),
		func(int) error { return nil },
		func() error { drainRan.Store(true); return nil },
		func(x int) (int, error) {
			if x == 2 {
				return 0, boom
			}
			return x, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want stage error", err)
	}
	if drainRan.Load() {
		t.Fatal("drain ran on a failed pipeline")
	}
}
