package merge

import (
	"bytes"
	"context"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// buildDescRun spills recs in DESCENDING order and marks the run as such.
func buildDescRun(t *testing.T, m pdm.Machine, recs record.Slice, chunkRecs int) *Run {
	t.Helper()
	sortSlice(recs)
	n := recs.Len()
	rev := record.Make(n, recs.Size)
	for i := 0; i < n; i++ {
		rev.CopyRecord(i, recs, n-1-i)
	}
	d, err := m.NewSpillDisk(1)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(d, rev.Size, chunkRecs)
	if err := w.Append(rev); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	run.Descending = true
	return run
}

// TestReverseReaderRoundTrip pins the backwards chunk-grid arithmetic for
// run sizes that do not divide the chunk: a descending spill must read back
// exactly ascending.
func TestReverseReaderRoundTrip(t *testing.T) {
	const z = 24
	for _, n := range []int{1, 31, 32, 33, 100} {
		m := pdm.Machine{P: 1, D: 1}
		recs := record.Make(n, z)
		record.Fill(recs, record.Uniform{Seed: uint64(n)}, 0)
		run := buildDescRun(t, m, recs, 32)
		sortSlice(recs) // ascending reference
		rd := NewReverseReader(run, 32)
		if err := rd.Prime(); err != nil {
			t.Fatal(err)
		}
		got := record.Make(n, z)
		for i := 0; i < n; i++ {
			rec := rd.Cur()
			if rec == nil {
				t.Fatalf("n=%d: reader exhausted at record %d", n, i)
			}
			if rd.Key() != record.Key(rec) {
				t.Fatalf("n=%d: cached key %x != record key %x", n, rd.Key(), record.Key(rec))
			}
			copy(got.Record(i), rec)
			if err := rd.Advance(); err != nil {
				t.Fatal(err)
			}
		}
		if rd.Cur() != nil {
			t.Fatalf("n=%d: reader has records beyond the run", n)
		}
		if !bytes.Equal(got.Data, recs.Data) {
			t.Fatalf("n=%d: reverse round trip is not the ascending order", n)
		}
		if rd.BytesRead() != run.Bytes() {
			t.Fatalf("n=%d: BytesRead = %d, want %d", n, rd.BytesRead(), run.Bytes())
		}
		run.Close()
	}
}

// TestMergeMixedDirections merges ascending and descending runs together:
// the loser tree must see only ascending streams and the output must match
// the reference sort byte for byte.
func TestMergeMixedDirections(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z = 6000, 16
	m := pdm.Machine{P: 1, D: 1}
	all := record.Make(n, z)
	record.Fill(all, record.Uniform{Seed: 11}, 0)
	var runs []*Run
	at := 0
	for i := 0; i < 4; i++ {
		end := at + n/4
		if i == 3 {
			end = n
		}
		part := record.Make(end-at, z)
		part.Copy(all.Sub(at, end))
		if i%2 == 1 {
			runs = append(runs, buildDescRun(t, m, part, 64))
		} else {
			runs = append(runs, buildRun(t, m, part, 64))
		}
		at = end
	}
	ref := record.Make(n, z)
	ref.Copy(all)
	sortSlice(ref)
	got, _, _, err := collect(t, context.Background(), runs, z, Options{ChunkRecs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, ref.Data) {
		t.Fatal("mixed-direction merge differs from reference")
	}
	for _, r := range runs {
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReverseReaderAsyncPrefetch runs the reversed reader over an async
// file-backed disk: the backwards prefetch hints must not change a byte.
func TestReverseReaderAsyncPrefetch(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, dir)
	const n, z = 4096, 32
	m := pdm.Machine{P: 1, D: 1, Backend: pdm.FileBackend{Dir: dir}, Async: &pdm.AsyncConfig{}}
	recs := record.Make(n, z)
	record.Fill(recs, record.Uniform{Seed: 5}, 0)
	run := buildDescRun(t, m, recs, 128)
	ref := record.Make(n, z)
	ref.Copy(recs)
	sortSlice(ref)
	got, _, _, err := collect(t, context.Background(), []*Run{run}, z, Options{ChunkRecs: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, ref.Data) {
		t.Fatal("async reversed read differs from reference")
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzReverseReader throws arbitrary record bytes and chunk geometries at
// the reversed reader: whatever Writer spilled, ReverseReader must yield
// exactly the spill order reversed, account every byte, and never read
// off the frame grid (readFrameVerified rejects unaligned framed reads).
func FuzzReverseReader(f *testing.F) {
	f.Add(uint8(0), uint8(3), []byte("0123456789abcdef0123456789abcdef"))
	f.Add(uint8(1), uint8(1), []byte("hello world, this is a run payload!!"))
	f.Add(uint8(2), uint8(7), make([]byte, 200))
	f.Fuzz(func(t *testing.T, zSel, chunkSel uint8, data []byte) {
		z := 8 * (1 + int(zSel)%4) // 8, 16, 24, 32
		writeChunk := 1 + int(chunkSel)%7
		readChunk := 1 + int(chunkSel/8)%5
		n := len(data) / z
		if n == 0 {
			return
		}
		recs := record.NewSlice(data[:n*z], z)
		m := pdm.Machine{P: 1, D: 1}
		d, err := m.NewSpillDisk(0)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(d, z, writeChunk)
		if err := w.Append(recs); err != nil {
			t.Fatal(err)
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		defer run.Close()
		run.Descending = true

		rd := NewReverseReader(run, readChunk)
		if err := rd.Prime(); err != nil {
			t.Fatal(err)
		}
		for i := n - 1; i >= 0; i-- {
			rec := rd.Cur()
			if rec == nil {
				t.Fatalf("exhausted with %d records left", i+1)
			}
			if !bytes.Equal(rec, recs.Record(i)) {
				t.Fatalf("record %d (reverse position) differs from the spill", i)
			}
			if rd.Key() != record.Key(rec) {
				t.Fatalf("cached key %x != record key %x", rd.Key(), record.Key(rec))
			}
			if err := rd.Advance(); err != nil {
				t.Fatal(err)
			}
		}
		if rd.Cur() != nil {
			t.Fatal("reader yields records beyond the run")
		}
		if rd.BytesRead() != run.Bytes() {
			t.Fatalf("BytesRead = %d, want %d", rd.BytesRead(), run.Bytes())
		}
	})
}
