package merge

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"colsort/internal/pdm"
	"colsort/internal/record"
)

// ErrOrder reports a merge input that was not actually sorted — streaming
// verification caught a record smaller than its predecessor in the output.
var ErrOrder = errors.New("merge: output order violated (corrupt run)")

// ErrCorrupt reports a CRC-framed run chunk whose bytes no longer match the
// checksum recorded when the run was written — and still don't after one
// direct reread. The wrapping error carries the frame index and run offset.
var ErrCorrupt = errors.New("merge: run chunk failed CRC verification")

// Options tunes one merge.
type Options struct {
	// ChunkRecs is the records per emitted chunk and per run-read chunk
	// (< 1 selects DefaultChunkRecs). Peak merge memory is roughly
	// (k + emitDepth + 1) · ChunkRecs · recSize bytes for k runs.
	ChunkRecs int
	// Progress, when non-nil, receives the cumulative emitted record count
	// after each chunk. Called from the merge goroutine, sequentially.
	Progress func(merged int64)
	// Faults, when non-nil, counts CRC corruption detections and
	// reread heals observed while loading the input runs.
	Faults *pdm.FaultStats
}

// DefaultChunkRecs is the chunk size used when Options does not set one.
const DefaultChunkRecs = 1 << 12

// emitDepth is the write-behind depth of the emit stage: chunks in flight
// between the merge loop and the consumer.
const emitDepth = 3

// Stats reports what one merge moved.
type Stats struct {
	Records      int64 // records emitted
	BytesRead    int64 // bytes loaded from the input runs
	BytesWritten int64 // bytes handed to emit
}

// Merge combines the sorted runs into one sorted stream, calling emit with
// successive chunks of records in total order. The records flow straight
// from the run disks to emit — nothing is materialized — and emit runs on a
// background goroutine (write-behind on the merged output), overlapping the
// sink's own I/O with the merge's compare/copy work and the runs' prefetch.
//
// The stream is verified as it flows: every emitted record is checked
// against its predecessor (ErrOrder on violation — a corrupt run can never
// produce a silently unsorted output) and the returned Checksum fingerprints
// the emitted multiset for the caller to compare against its ingest
// checksum. Ties between runs break by run index, so a merge is
// deterministic for any input.
//
// Cancelling ctx aborts between chunks; the emit goroutine is always joined
// before Merge returns, whatever the outcome, so no goroutine outlives the
// call. Chunk buffers are recycled internally; emit must not retain its
// argument past return.
func Merge(ctx context.Context, runs []*Run, emit func(record.Slice) error, opt Options) (record.Checksum, Stats, error) {
	var cs record.Checksum
	var st Stats
	if len(runs) == 0 {
		return cs, st, nil
	}
	z := runs[0].RecSize
	for i, r := range runs {
		if r.RecSize != z {
			return cs, st, fmt.Errorf("merge: run %d has %d-byte records, run 0 has %d", i, r.RecSize, z)
		}
	}
	chunkRecs := opt.ChunkRecs
	if chunkRecs < 1 {
		chunkRecs = DefaultChunkRecs
	}

	readers := make([]runReader, len(runs))
	for i, r := range runs {
		readers[i] = newRunReader(r, chunkRecs, opt.Faults)
	}
	for _, rd := range readers {
		if err := rd.Prime(); err != nil {
			return cs, st, err
		}
	}
	var t tree
	t.init(readers)

	// Emit write-behind: the worker drains full chunks and recycles the
	// buffers; after its first error it stops calling emit but keeps
	// recycling, so the merge loop can never deadlock on a dead sink.
	full := make(chan record.Slice, emitDepth)
	free := make(chan record.Slice, emitDepth)
	for i := 0; i < emitDepth; i++ {
		free <- record.Make(chunkRecs, z)
	}
	var emitMu sync.Mutex
	var emitErr error
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		for c := range full {
			emitMu.Lock()
			failed := emitErr != nil
			emitMu.Unlock()
			if !failed {
				if err := emit(c); err != nil {
					emitMu.Lock()
					emitErr = err
					emitMu.Unlock()
				}
			}
			free <- c.Sub(0, chunkRecs)
		}
	}()
	finish := func(err error) (record.Checksum, Stats, error) {
		close(full)
		done.Wait()
		for _, rd := range readers {
			st.BytesRead += rd.BytesRead()
		}
		if err == nil {
			emitMu.Lock()
			err = emitErr
			emitMu.Unlock()
		}
		return cs, st, err
	}

	prev := make([]byte, z) // last emitted record, for the order check
	havePrev := false
	var total int64
	for _, r := range runs {
		total += r.Records
	}
	for st.Records < total {
		if err := ctx.Err(); err != nil {
			return finish(err)
		}
		emitMu.Lock()
		failed := emitErr != nil
		emitMu.Unlock()
		if failed {
			return finish(nil) // finish surfaces emitErr
		}
		buf := <-free
		want := chunkRecs
		if left := total - st.Records; left < int64(want) {
			want = int(left)
		}
		out := buf.Sub(0, want)
		for i := 0; i < want; i++ {
			rec := t.winner()
			if rec == nil {
				return finish(fmt.Errorf("merge: runs exhausted after %d of %d records (inconsistent run lengths)", st.Records+int64(i), total))
			}
			if havePrev && bytes.Compare(rec, prev) < 0 {
				return finish(fmt.Errorf("%w at record %d", ErrOrder, st.Records+int64(i)))
			}
			copy(prev, rec)
			havePrev = true
			cs.Add(rec)
			copy(out.Record(i), rec)
			if err := t.pop(); err != nil {
				return finish(err)
			}
		}
		st.Records += int64(want)
		st.BytesWritten += int64(want * z)
		full <- out
		if opt.Progress != nil {
			opt.Progress(st.Records)
		}
	}
	return finish(nil)
}

// MergeToRun merges runs into a new run on disk d — one node of a
// multi-level merge tree. On success the returned Run owns d; on error the
// caller still owns d.
func MergeToRun(ctx context.Context, runs []*Run, d pdm.Disk, opt Options) (*Run, Stats, error) {
	if len(runs) == 0 {
		return nil, Stats{}, fmt.Errorf("merge: no runs to merge")
	}
	chunkRecs := opt.ChunkRecs
	if chunkRecs < 1 {
		chunkRecs = DefaultChunkRecs
	}
	w := NewWriter(d, runs[0].RecSize, chunkRecs)
	_, st, err := Merge(ctx, runs, w.Append, opt)
	if err != nil {
		return nil, st, err
	}
	out, err := w.Finish()
	return out, st, err
}

// tree is a tournament (loser) tree over the runs' readers: node[0] holds
// the current overall winner and every internal node the loser of its
// match, so replacing the winner costs ⌈log₂ k⌉ comparisons — the same
// structure sortalg uses in-memory, re-derived here over streaming readers.
// The leaf count is padded to a power of two with permanently exhausted
// dummies. Ties break on run index for determinism.
type tree struct {
	readers []runReader
	node    []int
	k       int
}

func (t *tree) init(readers []runReader) {
	t.readers = readers
	t.k = 1
	for t.k < len(readers) {
		t.k *= 2
	}
	t.node = make([]int, t.k)
	t.node[0] = t.play(1)
}

func (t *tree) play(i int) int {
	if i >= t.k {
		r := i - t.k
		if r >= len(t.readers) {
			return -1
		}
		return r
	}
	wl, wr := t.play(2*i), t.play(2*i+1)
	if t.beats(wl, wr) {
		t.node[i] = wr
		return wl
	}
	t.node[i] = wl
	return wr
}

func (t *tree) cur(r int) []byte {
	if r < 0 {
		return nil
	}
	return t.readers[r].Cur()
}

func (t *tree) beats(a, b int) bool {
	if a < 0 || t.readers[a].done() {
		return false
	}
	if b < 0 || t.readers[b].done() {
		return true
	}
	// Record order is plain lexicographic byte order: the engine's key is
	// the first 8 bytes big-endian with payload tie-break, which coincides
	// with bytes.Compare over the whole record. The readers cache that
	// 8-byte prefix at each advance, so the common case is one uint64
	// compare without touching the chunk bytes; ties fall back to the full
	// record.
	ra, rb := t.readers[a], t.readers[b]
	if ra.Key() != rb.Key() {
		return ra.Key() < rb.Key()
	}
	c := bytes.Compare(ra.Cur(), rb.Cur())
	if c != 0 {
		return c < 0
	}
	return a < b
}

// winner returns the current smallest record, or nil when all runs are
// exhausted.
func (t *tree) winner() []byte { return t.cur(t.node[0]) }

// pop advances the winning run and replays its path to the root.
func (t *tree) pop() error {
	w := t.node[0]
	if err := t.readers[w].Advance(); err != nil {
		return fmt.Errorf("merge: run %d: %w", w, err)
	}
	winner := w
	for i := (w + t.k) / 2; i > 0; i /= 2 {
		if t.beats(t.node[i], winner) {
			t.node[i], winner = winner, t.node[i]
		}
	}
	t.node[0] = winner
	return nil
}
