// Package merge implements the hierarchical execution layer that lifts the
// library past any single columnsort run's problem-size bound: bounded
// sorted RUNS (each produced by one engine execution) spilled onto simulated
// disks, then combined by a loser-tree k-way streaming merge with overlapped
// I/O — the classic external-sort structure (run formation + multiway merge)
// engineered on top of the paper's algorithms.
//
// A Run lives on ONE pdm.Disk as a flat sequence of fixed-size records in
// sorted order. Writers buffer records into large sequential WriteAt calls
// (which an AsyncDisk retires in the background — write-behind); Readers
// stream chunks back, hinting each next chunk to the disk's Prefetcher one
// step ahead of consumption, so the merge's compare/copy work overlaps every
// run's disk service time — the multi-run prefetch schedule is simply
// one-ahead per run, k-wide.
package merge

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"colsort/internal/pdm"
	"colsort/internal/record"
)

// castagnoli is the CRC32C polynomial table framing every spilled run
// chunk — the same integrity check production storage formats use, with
// hardware support on every platform the sort runs on.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Run is a finished sorted run: Records records of RecSize bytes, stored
// contiguously from offset 0 of Disk. The Run owns the disk; Close releases
// it (removing a file-backed spill).
//
// Runs written by Writer are CRC-framed: every FrameBytes-aligned chunk
// (the last one shorter) has its CRC32C recorded in a sidecar index that
// lives with the Run, computed from the writer's buffer BEFORE the bytes
// enter the write path. Readers verify each chunk as it is loaded, so bit
// rot, torn writes and in-flight corruption on the spill path are detected
// (ErrCorrupt) instead of flowing silently into "verified" output.
type Run struct {
	Disk    pdm.Disk
	RecSize int
	Records int64

	// Descending marks a run spilled in descending order (replacement
	// selection's "down" runs). Such runs are consumed through a
	// ReverseReader so every merge input is ascending; the on-disk layout
	// and CRC framing are identical to an ascending run's.
	Descending bool

	// FrameBytes is the CRC frame length (0: unframed legacy run); crcs[i]
	// is the CRC32C of bytes [i·FrameBytes, min((i+1)·FrameBytes, Bytes())).
	FrameBytes int
	crcs       []uint32
}

// framed reports whether the run carries a CRC sidecar index.
func (r *Run) framed() bool { return r.FrameBytes > 0 && r.crcs != nil }

// CRCs returns the run's CRC32C sidecar index (nil for an unframed run).
// The caller must not mutate it; it is exposed so a durability layer can
// persist the sidecar alongside the run and hand it back to Reopen.
func (r *Run) CRCs() []uint32 { return r.crcs }

// Reopen reconstructs a Run around an already-written disk from persisted
// metadata — the resume path's counterpart to Writer.Finish. The crcs slice
// is the sidecar a manifest recorded when the run was spilled; the reopened
// run verifies every frame against it on read, so a run damaged between the
// crash and the resume is detected exactly like in-flight corruption.
func Reopen(d pdm.Disk, recSize int, records int64, descending bool, frameBytes int, crcs []uint32) *Run {
	return &Run{
		Disk:       d,
		RecSize:    recSize,
		Records:    records,
		Descending: descending,
		FrameBytes: frameBytes,
		crcs:       crcs,
	}
}

// readFrameVerified reads the frame-aligned extent [off, off+len(buf)) and
// verifies its CRC32C. On mismatch the read is re-issued once directly —
// the corrupt bytes may have come from a damaged prefetch staging or a
// transient in-flight corruption, and any staged extent at this offset was
// consumed (invalidated) by the first read — before the chunk is declared
// lost with ErrCorrupt. faults, when non-nil, counts detections and heals.
func (r *Run) readFrameVerified(buf []byte, off int64, faults *pdm.FaultStats) error {
	if err := r.Disk.ReadAt(buf, off); err != nil {
		return fmt.Errorf("merge: read run: %w", err)
	}
	if !r.framed() {
		return nil
	}
	idx := int(off / int64(r.FrameBytes))
	if idx >= len(r.crcs) || off%int64(r.FrameBytes) != 0 {
		return fmt.Errorf("merge: unaligned framed read at offset %d (frame %d bytes, %d frames)", off, r.FrameBytes, len(r.crcs))
	}
	if crc32.Checksum(buf, castagnoli) == r.crcs[idx] {
		return nil
	}
	if faults != nil {
		faults.CorruptChunks.Add(1)
	}
	if err := r.Disk.ReadAt(buf, off); err != nil {
		return fmt.Errorf("merge: reread of corrupt run chunk: %w", err)
	}
	if crc32.Checksum(buf, castagnoli) == r.crcs[idx] {
		if faults != nil {
			faults.Rereads.Add(1)
		}
		return nil
	}
	return fmt.Errorf("%w: frame %d at run offset %d (+%d bytes)", ErrCorrupt, idx, off, len(buf))
}

// Scrub re-reads the whole run sequentially, verifying every CRC frame
// (with the same one-reread fallback the merge readers use, so only
// PERSISTENT corruption — a torn write, on-disk bit rot — fails it). It is
// the post-spill readback that catches silent write-path corruption while
// the batch that produced the run can still be redone.
func (r *Run) Scrub(ctx context.Context, faults *pdm.FaultStats) error {
	if !r.framed() {
		return nil
	}
	buf := make([]byte, r.FrameBytes)
	left := r.Bytes()
	var off int64
	for left > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := int64(len(buf))
		if n > left {
			n = left
		}
		if err := r.readFrameVerified(buf[:n], off, faults); err != nil {
			return fmt.Errorf("scrub: %w", err)
		}
		off += n
		left -= n
	}
	return nil
}

// Bytes returns the run's payload size.
func (r *Run) Bytes() int64 { return r.Records * int64(r.RecSize) }

// Close releases the backing disk.
func (r *Run) Close() error {
	if r.Disk == nil {
		return nil
	}
	err := r.Disk.Close()
	r.Disk = nil
	return err
}

// Writer appends records sequentially onto a disk, coalescing them into
// chunkRecs-record WriteAt calls so the disk sees large sequential writes
// (and an async disk overlaps them with the producer). The caller owns the
// disk until Finish succeeds, after which the returned Run does.
type Writer struct {
	d       pdm.Disk
	recSize int
	buf     []byte
	used    int
	off     int64
	records int64
	crcs    []uint32
}

// NewWriter starts a run of recSize-byte records on d, buffering chunkRecs
// records per write.
func NewWriter(d pdm.Disk, recSize, chunkRecs int) *Writer {
	if chunkRecs < 1 {
		chunkRecs = 1
	}
	return &Writer{d: d, recSize: recSize, buf: make([]byte, chunkRecs*recSize)}
}

// Append adds the records of recs to the run.
func (w *Writer) Append(recs record.Slice) error {
	if recs.Size != w.recSize {
		return fmt.Errorf("merge: appending %d-byte records to a %d-byte run", recs.Size, w.recSize)
	}
	data := recs.Data
	for len(data) > 0 {
		n := copy(w.buf[w.used:], data)
		w.used += n
		data = data[n:]
		if w.used == len(w.buf) {
			if err := w.flush(); err != nil {
				return err
			}
		}
	}
	w.records += int64(recs.Len())
	return nil
}

func (w *Writer) flush() error {
	if w.used == 0 {
		return nil
	}
	// Frame the chunk BEFORE it enters the write path: the CRC fingerprints
	// what the merge handed us, so anything the storage stack loses or
	// mangles afterwards — a torn write-behind, bit rot on the spill disk,
	// corruption on the later read — fails verification.
	w.crcs = append(w.crcs, crc32.Checksum(w.buf[:w.used], castagnoli))
	if err := w.d.WriteAt(w.buf[:w.used], w.off); err != nil {
		return fmt.Errorf("merge: write run: %w", err)
	}
	w.off += int64(w.used)
	w.used = 0
	return nil
}

// Finish flushes the tail, drains any write-behind queue, and returns the
// completed Run (which now owns the disk). On error the caller still owns
// the disk and must close it.
func (w *Writer) Finish() (*Run, error) {
	if err := w.flush(); err != nil {
		return nil, err
	}
	if fl, ok := w.d.(pdm.Flusher); ok {
		if err := fl.Flush(); err != nil {
			return nil, fmt.Errorf("merge: flush run: %w", err)
		}
	}
	return &Run{Disk: w.d, RecSize: w.recSize, Records: w.records,
		FrameBytes: len(w.buf), crcs: w.crcs}, nil
}

// Reader streams a run's records in order. Each chunk load hints the NEXT
// chunk (exact offset and length) to the disk's Prefetcher, so on
// async-backed disks the blocking ReadAt of chunk i executes while chunk
// i+1 is being staged — and across the k readers of a merge, k fetches are
// in flight at once.
type Reader struct {
	run       *Run
	chunk     []byte
	cur       []byte // current chunk's live bytes
	pos       int    // byte position of the current record within cur
	key       uint64 // 8-byte key prefix of the current record
	off       int64  // disk offset of the next chunk to load
	bytesLeft int64  // unread bytes beyond cur
	bytesRead int64  // total bytes loaded (stats)
	primed    bool

	faults *pdm.FaultStats // CRC detection/heal counters; may be nil
}

// NewReader opens a sequential reader over run, loading chunkRecs records
// per disk read. A CRC-framed run overrides the chunk size with its frame
// length, so every load is exactly one verifiable frame.
func NewReader(run *Run, chunkRecs int) *Reader {
	if chunkRecs < 1 {
		chunkRecs = 1
	}
	chunkBytes := chunkRecs * run.RecSize
	if run.framed() {
		chunkBytes = run.FrameBytes
	}
	return &Reader{
		run:       run,
		chunk:     make([]byte, chunkBytes),
		bytesLeft: run.Bytes(),
	}
}

// nextExtent returns the offset and length of the next chunk to load.
func (r *Reader) nextExtent() (int64, int) {
	n := int64(len(r.chunk))
	if n > r.bytesLeft {
		n = r.bytesLeft
	}
	return r.off, int(n)
}

// load reads the next chunk and hints the one after it.
func (r *Reader) load() error {
	off, n := r.nextExtent()
	if n == 0 {
		r.cur = nil
		return nil
	}
	buf := r.chunk[:n]
	if err := r.run.readFrameVerified(buf, off, r.faults); err != nil {
		return err
	}
	r.off = off + int64(n)
	r.bytesLeft -= int64(n)
	r.bytesRead += int64(n)
	r.cur, r.pos = buf, 0
	r.key = binary.BigEndian.Uint64(buf)
	if p, ok := r.run.Disk.(pdm.Prefetcher); ok {
		if noff, nn := r.nextExtent(); nn > 0 {
			p.Prefetch(noff, nn)
		}
	}
	return nil
}

// Cur returns the current record's bytes, or nil when the run is exhausted.
// The first call loads (and starts prefetching) the run.
func (r *Reader) Cur() []byte {
	if r.pos >= len(r.cur) {
		return nil
	}
	return r.cur[r.pos : r.pos+r.run.RecSize]
}

// done reports run exhaustion without materializing the record slice.
func (r *Reader) done() bool { return r.pos >= len(r.cur) }

// Key returns the current record's 8-byte big-endian key prefix, cached at
// each advance so merge comparisons need not touch the chunk bytes. Valid
// only while done() is false.
func (r *Reader) Key() uint64 { return r.key }

// Prime loads the first chunk and hints the second; it must be called once
// before Cur/Advance.
func (r *Reader) Prime() error {
	if r.primed {
		return nil
	}
	r.primed = true
	if p, ok := r.run.Disk.(pdm.Prefetcher); ok {
		if off, n := r.nextExtent(); n > 0 {
			p.Prefetch(off, n)
		}
	}
	return r.load()
}

// Advance moves past the current record, loading the next chunk when the
// current one is consumed and refreshing the cached key prefix.
func (r *Reader) Advance() error {
	r.pos += r.run.RecSize
	if r.pos >= len(r.cur) {
		if r.bytesLeft > 0 {
			return r.load()
		}
		return nil
	}
	r.key = binary.BigEndian.Uint64(r.cur[r.pos:])
	return nil
}

// BytesRead returns the bytes loaded so far (stats).
func (r *Reader) BytesRead() int64 { return r.bytesRead }

// runReader is the stream contract the loser tree merges over: Reader for
// ascending runs, ReverseReader for descending ones. Both present records
// in ASCENDING order with a cached 8-byte key prefix.
type runReader interface {
	Prime() error
	Cur() []byte
	Key() uint64
	done() bool
	Advance() error
	BytesRead() int64
}

// newRunReader opens the appropriate reader for the run's spill
// orientation, wiring the fault counters through.
func newRunReader(run *Run, chunkRecs int, faults *pdm.FaultStats) runReader {
	if run.Descending {
		rr := NewReverseReader(run, chunkRecs)
		rr.faults = faults
		return rr
	}
	r := NewReader(run, chunkRecs)
	r.faults = faults
	return r
}

// ReverseReader streams a DESCENDING run's records in ASCENDING order by
// walking the run backwards: chunks are loaded last to first and records
// consumed back to front within each chunk. Loads stay on the same
// frame-aligned grid a forward Reader uses (anchored at offset 0), so CRC
// verification — including the alignment invariant of readFrameVerified
// and its one-reread healing — applies unchanged; only the visit order
// flips. Each load hints the PREVIOUS extent to the disk's Prefetcher, the
// mirror image of the forward reader's one-ahead schedule.
type ReverseReader struct {
	run        *Run
	chunk      []byte
	cur        []byte // current chunk's live bytes
	pos        int    // byte position of the current record within cur (walks down)
	key        uint64 // 8-byte key prefix of the current record
	frame      int64  // index of the next chunk to load, counting down; -1 when none left
	chunkBytes int64
	bytesRead  int64
	primed     bool

	faults *pdm.FaultStats // CRC detection/heal counters; may be nil
}

// NewReverseReader opens a backwards reader over run, loading chunkRecs
// records per disk read. A CRC-framed run overrides the chunk size with its
// frame length, so every load is exactly one verifiable frame.
func NewReverseReader(run *Run, chunkRecs int) *ReverseReader {
	if chunkRecs < 1 {
		chunkRecs = 1
	}
	chunkBytes := int64(chunkRecs * run.RecSize)
	if run.framed() {
		chunkBytes = int64(run.FrameBytes)
	}
	frames := (run.Bytes() + chunkBytes - 1) / chunkBytes
	return &ReverseReader{
		run:        run,
		chunk:      make([]byte, chunkBytes),
		chunkBytes: chunkBytes,
		frame:      frames - 1,
		pos:        -1,
	}
}

// extentOf returns the offset and length of grid chunk i (only the last
// chunk of the run may be short).
func (r *ReverseReader) extentOf(i int64) (int64, int) {
	off := i * r.chunkBytes
	n := r.run.Bytes() - off
	if n > r.chunkBytes {
		n = r.chunkBytes
	}
	return off, int(n)
}

// load reads the next chunk (one lower on the grid) and hints the one
// before it, positioning on the chunk's LAST record.
func (r *ReverseReader) load() error {
	if r.frame < 0 {
		r.cur, r.pos = nil, -1
		return nil
	}
	off, n := r.extentOf(r.frame)
	buf := r.chunk[:n]
	if err := r.run.readFrameVerified(buf, off, r.faults); err != nil {
		return err
	}
	r.frame--
	r.bytesRead += int64(n)
	r.cur = buf
	r.pos = n - r.run.RecSize
	r.key = binary.BigEndian.Uint64(buf[r.pos:])
	if p, ok := r.run.Disk.(pdm.Prefetcher); ok && r.frame >= 0 {
		poff, pn := r.extentOf(r.frame)
		p.Prefetch(poff, pn)
	}
	return nil
}

// Prime loads the last chunk (the smallest records) and hints the one
// before it; it must be called once before Cur/Advance.
func (r *ReverseReader) Prime() error {
	if r.primed {
		return nil
	}
	r.primed = true
	if p, ok := r.run.Disk.(pdm.Prefetcher); ok && r.frame >= 0 {
		off, n := r.extentOf(r.frame)
		p.Prefetch(off, n)
	}
	return r.load()
}

// Cur returns the current record's bytes, or nil when the run is exhausted.
func (r *ReverseReader) Cur() []byte {
	if r.pos < 0 {
		return nil
	}
	return r.cur[r.pos : r.pos+r.run.RecSize]
}

// done reports run exhaustion without materializing the record slice.
func (r *ReverseReader) done() bool { return r.pos < 0 }

// Key returns the current record's cached 8-byte big-endian key prefix.
// Valid only while done() is false.
func (r *ReverseReader) Key() uint64 { return r.key }

// Advance moves to the previous on-disk record (the next in ascending
// order), loading the preceding chunk when the current one is consumed.
func (r *ReverseReader) Advance() error {
	r.pos -= r.run.RecSize
	if r.pos < 0 {
		return r.load()
	}
	r.key = binary.BigEndian.Uint64(r.cur[r.pos:])
	return nil
}

// BytesRead returns the bytes loaded so far (stats).
func (r *ReverseReader) BytesRead() int64 { return r.bytesRead }
