package merge

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// corruptReadDisk flips one bit of the first read that passes through it,
// then behaves cleanly — transient read-path corruption (a damaged staging
// buffer), which the CRC layer must detect and heal with a reread.
type corruptReadDisk struct {
	pdm.Disk
	done bool
}

func (d *corruptReadDisk) ReadAt(p []byte, off int64) error {
	if err := d.Disk.ReadAt(p, off); err != nil {
		return err
	}
	if !d.done && len(p) > 0 {
		d.done = true
		p[len(p)/2] ^= 0x04
	}
	return nil
}

// TestCRCDetectsPersistentCorruption: corrupting a spilled run's bytes on
// disk must fail the merge with ErrCorrupt — never flow silently into a
// "verified" output — even though the corruption would still produce a
// well-ordered stream.
func TestCRCDetectsPersistentCorruption(t *testing.T) {
	testutil.CheckLeaks(t, "")
	m := pdm.Machine{P: 1, D: 1}
	const n, z, chunk = 512, 16, 64
	recs := record.Make(n, z)
	record.Fill(recs, record.Uniform{Seed: 3}, 0)
	run := buildRun(t, m, recs, chunk)
	defer run.Close()

	// Flip one bit in the middle of the second chunk, directly on disk.
	off := int64(chunk*z) + 40
	b := make([]byte, 1)
	if err := run.Disk.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if err := run.Disk.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}

	var faults pdm.FaultStats
	_, _, _, err := collect(t, context.Background(), []*Run{run}, z,
		Options{ChunkRecs: chunk, Faults: &faults})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if faults.CorruptChunks.Load() == 0 {
		t.Error("corruption not counted")
	}
	if faults.Rereads.Load() != 0 {
		t.Error("persistent corruption cannot heal by reread")
	}
}

// TestCRCRereadHealsTransientCorruption: corruption injected on the read
// path (not on disk) is detected by the frame CRC and healed by one direct
// reread; the merge completes with the correct output.
func TestCRCRereadHealsTransientCorruption(t *testing.T) {
	testutil.CheckLeaks(t, "")
	m := pdm.Machine{P: 1, D: 1}
	const n, z, chunk = 512, 16, 64
	all := record.Make(n, z)
	record.Fill(all, record.Uniform{Seed: 5}, 0)
	ref := record.Make(n, z)
	ref.Copy(all)
	sortSlice(ref)
	run := buildRun(t, m, all, chunk)
	defer run.Close()
	run.Disk = &corruptReadDisk{Disk: run.Disk}

	var faults pdm.FaultStats
	out, _, _, err := collect(t, context.Background(), []*Run{run}, z,
		Options{ChunkRecs: chunk, Faults: &faults})
	if err != nil {
		t.Fatalf("merge under transient read corruption: %v", err)
	}
	if !bytes.Equal(out.Data, ref.Data) {
		t.Fatal("healed merge produced wrong bytes")
	}
	if faults.CorruptChunks.Load() != 1 || faults.Rereads.Load() != 1 {
		t.Errorf("faults = %d detected, %d healed; want 1, 1",
			faults.CorruptChunks.Load(), faults.Rereads.Load())
	}
}

// TestScrubCatchesTornWrite: a torn spill write (only a prefix persisted,
// no error reported) passes Finish but must fail the post-spill scrub.
func TestScrubCatchesTornWrite(t *testing.T) {
	m := pdm.Machine{P: 1, D: 1}
	const n, z, chunk = 512, 16, 64
	recs := record.Make(n, z)
	record.Fill(recs, record.Uniform{Seed: 7}, 0)
	run := buildRun(t, m, recs, chunk)
	defer run.Close()

	var faults pdm.FaultStats
	if err := run.Scrub(context.Background(), &faults); err != nil {
		t.Fatalf("scrub of an intact run: %v", err)
	}

	// Tear the last chunk: zero its persisted tail, as if the write died
	// halfway and the sparse file read back zeros.
	tear := make([]byte, chunk*z/2)
	if err := run.Disk.WriteAt(tear, run.Bytes()-int64(len(tear))); err != nil {
		t.Fatal(err)
	}
	err := run.Scrub(context.Background(), &faults)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub of a torn run: %v, want ErrCorrupt", err)
	}
	if faults.CorruptChunks.Load() == 0 {
		t.Error("scrub did not count the corrupt chunk")
	}
}

// TestUnframedRunCompatibility: a Run constructed without a CRC sidecar
// (the legacy on-disk shape) still merges — verification simply does not
// engage.
func TestUnframedRunCompatibility(t *testing.T) {
	testutil.CheckLeaks(t, "")
	const n, z, chunk = 256, 16, 32
	recs := record.Make(n, z)
	record.Fill(recs, record.Uniform{Seed: 11}, 0)
	sortSlice(recs)
	d := pdm.NewMemDisk()
	if err := d.WriteAt(recs.Data, 0); err != nil {
		t.Fatal(err)
	}
	run := &Run{Disk: d, RecSize: z, Records: int64(n)}
	defer run.Close()
	if run.framed() {
		t.Fatal("hand-built run reports framed")
	}
	out, _, _, err := collect(t, context.Background(), []*Run{run}, z, Options{ChunkRecs: chunk})
	if err != nil {
		t.Fatalf("unframed merge: %v", err)
	}
	if !bytes.Equal(out.Data, recs.Data) {
		t.Fatal("unframed merge produced wrong bytes")
	}
}
