package merge

import (
	"bytes"
	"context"
	"errors"
	"sort"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// buildRun spills the records of recs (sorted here for convenience) onto a
// fresh disk of the given machine and returns the run.
func buildRun(t *testing.T, m pdm.Machine, recs record.Slice, chunkRecs int) *Run {
	t.Helper()
	sortSlice(recs)
	d, err := m.NewSpillDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(d, recs.Size, chunkRecs)
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func sortSlice(s record.Slice) {
	n := s.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(s.Record(idx[a]), s.Record(idx[b])) < 0
	})
	out := record.Make(n, s.Size)
	for i, j := range idx {
		out.CopyRecord(i, s, j)
	}
	copy(s.Data, out.Data)
}

// genRuns cuts n generated records into k runs of uneven sizes.
func genRuns(t *testing.T, m pdm.Machine, n, k, z, chunkRecs int, seed uint64) ([]*Run, record.Slice) {
	t.Helper()
	all := record.Make(n, z)
	record.Fill(all, record.Uniform{Seed: seed}, 0)
	runs := make([]*Run, 0, k)
	at := 0
	for i := 0; i < k; i++ {
		end := at + n/k
		if i%2 == 1 { // uneven: stress run bookkeeping
			end += n / (4 * k)
		}
		if i == k-1 || end > n {
			end = n
		}
		part := record.Make(end-at, z)
		part.Copy(all.Sub(at, end))
		runs = append(runs, buildRun(t, m, part, chunkRecs))
		at = end
	}
	ref := record.Make(n, z)
	ref.Copy(all)
	sortSlice(ref)
	return runs, ref
}

func collect(t *testing.T, ctx context.Context, runs []*Run, z int, opt Options) (record.Slice, record.Checksum, Stats, error) {
	t.Helper()
	var out bytes.Buffer
	cs, st, err := Merge(ctx, runs, func(c record.Slice) error {
		out.Write(c.Data)
		return nil
	}, opt)
	return record.NewSlice(out.Bytes(), z), cs, st, err
}

func TestMergeMatchesReference(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z = 5000, 16
	for _, k := range []int{1, 2, 3, 7, 16} {
		m := pdm.Machine{P: 1, D: 1}
		runs, ref := genRuns(t, m, n, k, z, 64, uint64(k))
		got, cs, st, err := collect(t, context.Background(), runs, z, Options{ChunkRecs: 64})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !bytes.Equal(got.Data, ref.Data) {
			t.Fatalf("k=%d: merged output differs from reference sort", k)
		}
		var want record.Checksum
		want.AddSlice(ref)
		if !cs.Equal(want) {
			t.Fatalf("k=%d: merge checksum does not match the emitted multiset", k)
		}
		if st.Records != n || st.BytesWritten != int64(n*z) {
			t.Fatalf("k=%d: stats %+v, want %d records", k, st, n)
		}
		for _, r := range runs {
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestMergeAsyncFileBacked runs the same merge on async file-backed spill
// disks: prefetch + write-behind must not change a single byte.
func TestMergeAsyncFileBacked(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, dir)
	const n, z, k = 4096, 32, 5
	m := pdm.Machine{P: 1, D: 1, Backend: pdm.FileBackend{Dir: dir}, Async: &pdm.AsyncConfig{}}
	runs, ref := genRuns(t, m, n, k, z, 128, 9)
	got, _, _, err := collect(t, context.Background(), runs, z, Options{ChunkRecs: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, ref.Data) {
		t.Fatal("async file-backed merge differs from reference")
	}
	for _, r := range runs {
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeToRunLevels chains MergeToRun into a two-level tree and checks
// the final output survives intact.
func TestMergeToRunLevels(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z = 6000, 16
	m := pdm.Machine{P: 1, D: 1}
	runs, ref := genRuns(t, m, n, 6, z, 64, 3)
	var mid []*Run
	for i := 0; i < len(runs); i += 2 {
		d, err := m.NewSpillDisk(100 + i)
		if err != nil {
			t.Fatal(err)
		}
		out, _, err := MergeToRun(context.Background(), runs[i:i+2], d, Options{ChunkRecs: 64})
		if err != nil {
			t.Fatal(err)
		}
		runs[i].Close()
		runs[i+1].Close()
		mid = append(mid, out)
	}
	got, _, _, err := collect(t, context.Background(), mid, z, Options{ChunkRecs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, ref.Data) {
		t.Fatal("two-level merge differs from reference")
	}
	for _, r := range mid {
		r.Close()
	}
}

// TestMergeInjectedFault wires a FaultDisk under one run: the injected read
// error must abort the merge, surface via errors.Is(err, pdm.ErrInjected),
// and leave no goroutines behind (the emit worker is joined).
func TestMergeInjectedFault(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z, k = 4096, 16, 4
	m := pdm.Machine{P: 1, D: 1}
	runs, _ := genRuns(t, m, n, k, z, 64, 5)
	// Budget passes the first chunk of run 1 and fails afterwards.
	runs[1].Disk = &pdm.FaultDisk{Inner: runs[1].Disk, Budget: 64 * z}
	_, _, _, err := collect(t, context.Background(), runs, z, Options{ChunkRecs: 64})
	if err == nil {
		t.Fatal("merge over a faulting run reported success")
	}
	if !errors.Is(err, pdm.ErrInjected) {
		t.Fatalf("err = %v, want errors.Is(err, pdm.ErrInjected)", err)
	}
	for _, r := range runs {
		r.Close()
	}
}

// TestMergeInjectedFaultAsync repeats the injection below an AsyncDisk: the
// failure of a background prefetch must still surface on the consuming read.
func TestMergeInjectedFaultAsync(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z, k = 4096, 16, 3
	m := pdm.Machine{P: 1, D: 1}
	runs, _ := genRuns(t, m, n, k, z, 64, 6)
	runs[0].Disk = pdm.NewAsyncDisk(&pdm.FaultDisk{Inner: runs[0].Disk, Budget: 64 * z}, pdm.AsyncConfig{})
	_, _, _, err := collect(t, context.Background(), runs, z, Options{ChunkRecs: 64})
	if !errors.Is(err, pdm.ErrInjected) {
		t.Fatalf("err = %v, want errors.Is(err, pdm.ErrInjected)", err)
	}
	for _, r := range runs {
		r.Close()
	}
}

// TestMergeCancel cancels mid-merge via the progress hook; the merge must
// stop with the context's error and join its emit worker.
func TestMergeCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z = 8192, 16
	m := pdm.Machine{P: 1, D: 1}
	runs, _ := genRuns(t, m, n, 4, z, 64, 7)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := Options{ChunkRecs: 64, Progress: func(merged int64) {
		if merged >= n/4 {
			cancel()
		}
	}}
	_, _, _, err := collect(t, ctx, runs, z, opt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, r := range runs {
		r.Close()
	}
}

// TestMergeDetectsUnsortedRun pins the streaming order verification: a run
// that lies about being sorted must fail with ErrOrder, not emit garbage
// silently.
func TestMergeDetectsUnsortedRun(t *testing.T) {
	testutil.CheckGoroutines(t)
	const z = 16
	m := pdm.Machine{P: 1, D: 1}
	d, err := m.NewSpillDisk(0)
	if err != nil {
		t.Fatal(err)
	}
	recs := record.Make(128, z)
	record.Fill(recs, record.Reverse{Seed: 1}, 0) // descending: NOT sorted
	w := NewWriter(d, z, 32)
	if err := w.Append(recs); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer run.Close()
	_, _, _, err = collect(t, context.Background(), []*Run{run}, z, Options{ChunkRecs: 32})
	if !errors.Is(err, ErrOrder) {
		t.Fatalf("err = %v, want ErrOrder", err)
	}
}

// TestMergeEmitError propagates a failing sink and joins the worker.
func TestMergeEmitError(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n, z = 4096, 16
	m := pdm.Machine{P: 1, D: 1}
	runs, _ := genRuns(t, m, n, 3, z, 64, 8)
	boom := errors.New("sink exploded")
	emitted := 0
	_, _, err := Merge(context.Background(), runs, func(c record.Slice) error {
		emitted += c.Len()
		if emitted > n/2 {
			return boom
		}
		return nil
	}, Options{ChunkRecs: 64})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the sink's error", err)
	}
	for _, r := range runs {
		r.Close()
	}
}

// TestWriterReaderRoundTrip pins the chunk-boundary arithmetic of the spill
// layer for sizes that do not divide the chunk.
func TestWriterReaderRoundTrip(t *testing.T) {
	const z = 24
	for _, n := range []int{1, 31, 32, 33, 100} {
		m := pdm.Machine{P: 1, D: 1}
		recs := record.Make(n, z)
		record.Fill(recs, record.Uniform{Seed: uint64(n)}, 0)
		run := buildRun(t, m, recs, 32)
		rd := NewReader(run, 32)
		if err := rd.Prime(); err != nil {
			t.Fatal(err)
		}
		got := record.Make(n, z)
		for i := 0; i < n; i++ {
			rec := rd.Cur()
			if rec == nil {
				t.Fatalf("n=%d: reader exhausted at record %d", n, i)
			}
			copy(got.Record(i), rec)
			if err := rd.Advance(); err != nil {
				t.Fatal(err)
			}
		}
		if rd.Cur() != nil {
			t.Fatalf("n=%d: reader has records beyond the run", n)
		}
		if !bytes.Equal(got.Data, recs.Data) {
			t.Fatalf("n=%d: round trip corrupted records", n)
		}
		run.Close()
	}
}
