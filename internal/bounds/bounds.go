// Package bounds implements the problem-size restrictions the paper studies
// (equations (1), (2), (3) and the future-work combination), the crossover
// analysis of Section 5, and the headline numeric claims of Sections 1–2.
//
// Quantities are in RECORDS throughout: M is the total cluster memory in
// records, M/P the per-processor memory in records, N the number of records
// sorted. Conversions to bytes (for "one terabyte"-style statements) take a
// record size.
package bounds

import (
	"fmt"
	"math"
)

// Algorithm names the columnsort variant whose bound is being computed.
type Algorithm int

const (
	// Threaded is 3-pass threaded columnsort [CC02]: r = M/P, r ≥ 2s².
	Threaded Algorithm = iota
	// Subblock is subblock columnsort: r = M/P, r ≥ 4·s^{3/2}.
	Subblock
	// MColumnsort reinterprets the height as r = M: r ≥ 2s².
	MColumnsort
	// Combined is the future-work algorithm of Section 6: r = M with the
	// subblock relaxation, r ≥ 4·s^{3/2}.
	Combined
)

func (a Algorithm) String() string {
	switch a {
	case Threaded:
		return "threaded"
	case Subblock:
		return "subblock"
	case MColumnsort:
		return "m-columnsort"
	case Combined:
		return "combined"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// MaxN returns the real-valued problem-size bound, in records, for the
// given algorithm on a machine with total memory m records and p
// processors:
//
//	Threaded:    N ≤ (M/P)^{3/2} / √2         (restriction 1)
//	Subblock:    N ≤ (M/P)^{5/3} / 4^{2/3}     (restriction 2)
//	MColumnsort: N ≤ M^{3/2} / √2              (restriction 3)
//	Combined:    N ≤ M^{5/3} / 4^{2/3}         (Section 6)
func MaxN(a Algorithm, m, p int64) float64 {
	mp := float64(m) / float64(p)
	switch a {
	case Threaded:
		return math.Pow(mp, 1.5) / math.Sqrt2
	case Subblock:
		return math.Pow(mp, 5.0/3.0) / math.Pow(4, 2.0/3.0)
	case MColumnsort:
		return math.Pow(float64(m), 1.5) / math.Sqrt2
	case Combined:
		return math.Pow(float64(m), 5.0/3.0) / math.Pow(4, 2.0/3.0)
	}
	panic(fmt.Sprintf("bounds: unknown algorithm %d", int(a)))
}

// MaxBytes converts MaxN to bytes for a given record size.
func MaxBytes(a Algorithm, m, p int64, recSize int) float64 {
	return MaxN(a, m, p) * float64(recSize)
}

// HeightOK reports whether an r×s matrix satisfies the algorithm's height
// restriction (the exact integer check the planners use).
func HeightOK(a Algorithm, r, s int64) bool {
	switch a {
	case Threaded, MColumnsort:
		return r >= 2*s*s
	case Subblock, Combined:
		// r ≥ 4·s^{3/2}: with s a power of 4, s^{3/2} = s·√s is exact.
		q := int64(math.Round(math.Sqrt(float64(s))))
		if q*q != s {
			return false
		}
		return r >= 4*s*q
	}
	panic(fmt.Sprintf("bounds: unknown algorithm %d", int(a)))
}

// SubblockGain is the problem-size ratio bound(2)/bound(1) =
// (M/P)^{1/6} · 2^{-5/6}. Section 1 claims this exceeds 2 — "more than
// double the largest problem size" — for M/P ≥ 2¹² records.
func SubblockGain(mOverP int64) float64 {
	return math.Pow(float64(mOverP), 1.0/6.0) * math.Pow(2, -5.0/6.0)
}

// CrossoverFormula is Section 5's closed form: M-columnsort handles more
// records than subblock columnsort iff M < 32·P¹⁰ (equivalently
// M^{3/2}/√2 > (M/P)^{5/3}/4^{2/3}).
func CrossoverFormula(m, p int64) bool {
	// Compare in logarithms to survive P¹⁰ for large P.
	return math.Log2(float64(m)) < 5+10*math.Log2(float64(p))
}

// CrossoverDirect compares the two bounds numerically (log-domain), as a
// cross-check of CrossoverFormula.
func CrossoverDirect(m, p int64) bool {
	lm := math.Log2(float64(m))
	lp := math.Log2(float64(p))
	lhs := 1.5*lm - 0.5              // log2(M^{3/2}/√2)
	rhs := 5.0/3.0*(lm-lp) - 4.0/3.0 // log2((M/P)^{5/3}/4^{2/3})
	return lhs > rhs
}

// InCoreOK reports whether M-columnsort's distributed in-core sort stage is
// itself a valid columnsort: the (M/P)×P in-core matrix needs M/P ≥ 2P².
func InCoreOK(mOverP, p int64) bool {
	return mOverP >= 2*p*p
}

// Row is one line of the bounds table printed by cmd/bounds.
type Row struct {
	MOverP   int64
	P        int64
	Bound1   float64 // threaded, records
	Bound2   float64 // subblock, records
	Bound3   float64 // m-columnsort, records
	Combined float64
}

// Table computes bound rows for each (M/P, P) combination.
func Table(mOverPs, ps []int64) []Row {
	var rows []Row
	for _, mp := range mOverPs {
		for _, p := range ps {
			m := mp * p
			rows = append(rows, Row{
				MOverP:   mp,
				P:        p,
				Bound1:   MaxN(Threaded, m, p),
				Bound2:   MaxN(Subblock, m, p),
				Bound3:   MaxN(MColumnsort, m, p),
				Combined: MaxN(Combined, m, p),
			})
		}
	}
	return rows
}

// HumanBytes renders a byte count with binary units.
func HumanBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.2f %s", b, units[i])
}
