package bounds

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxNFormulas(t *testing.T) {
	// M/P = 2^20, P = 16 ⇒ M = 2^24.
	var mp, p int64 = 1 << 20, 16
	m := mp * p
	if got, want := MaxN(Threaded, m, p), math.Pow(float64(mp), 1.5)/math.Sqrt2; math.Abs(got/want-1) > 1e-12 {
		t.Fatalf("threaded bound %g, want %g", got, want)
	}
	if got, want := MaxN(Subblock, m, p), math.Pow(float64(mp), 5.0/3)/math.Pow(4, 2.0/3); math.Abs(got/want-1) > 1e-12 {
		t.Fatalf("subblock bound %g, want %g", got, want)
	}
	if got, want := MaxN(MColumnsort, m, p), math.Pow(float64(m), 1.5)/math.Sqrt2; math.Abs(got/want-1) > 1e-12 {
		t.Fatalf("m-columnsort bound %g, want %g", got, want)
	}
	if MaxN(Combined, m, p) <= MaxN(MColumnsort, m, p) {
		t.Fatal("combined bound should exceed m-columnsort for this config")
	}
}

// TestTerabyteClaim is experiment E4: "On a cluster with 16 processors,
// with M/P = 2^19 records, this change will allow us to sort up to one
// terabyte of data, assuming a record size of 64 bytes."
func TestTerabyteClaim(t *testing.T) {
	var p int64 = 16
	var mp int64 = 1 << 19
	m := mp * p // 2^23 records
	bytes := MaxBytes(MColumnsort, m, p, 64)
	// M^{3/2}/√2 = 2^{34.5}/2^{0.5} = 2^34 records; ×64 B = 2^40 B = 1 TiB.
	want := math.Pow(2, 40)
	if math.Abs(bytes/want-1) > 1e-9 {
		t.Fatalf("terabyte claim: got %s, want exactly 1 TiB", HumanBytes(bytes))
	}
	// And the in-core side condition holds: M/P = 2^19 ≥ 2·16² = 2^9.
	if !InCoreOK(mp, p) {
		t.Fatal("in-core condition should hold for the paper's config")
	}
}

// TestSubblockDoublesProblemSize is experiment E3: "For most current
// systems (M/P ≥ 2^12 records), this change will enable us to more than
// double the largest problem size."
func TestSubblockDoublesProblemSize(t *testing.T) {
	if g := SubblockGain(1 << 12); g <= 2 {
		t.Fatalf("gain at M/P=2^12 is %.3f, want > 2", g)
	}
	// The gain is monotone in M/P, so it stays above 2 beyond 2^12.
	if g12, g20 := SubblockGain(1<<12), SubblockGain(1<<20); g20 <= g12 {
		t.Fatal("gain should grow with M/P")
	}
	// And the gain must equal the ratio of the two bounds.
	var mp, p int64 = 1 << 16, 8
	m := mp * p
	ratio := MaxN(Subblock, m, p) / MaxN(Threaded, m, p)
	if math.Abs(ratio/SubblockGain(mp)-1) > 1e-12 {
		t.Fatalf("gain %g != bound ratio %g", SubblockGain(mp), ratio)
	}
}

// TestCrossoverFormula is experiment E9: M-columnsort sorts more records
// than subblock iff M < 32·P^10; e.g. for P = 8, iff M < 2^35.
func TestCrossoverFormula(t *testing.T) {
	// The paper's example: P = 8 ⇒ threshold M = 32·8^10 = 2^35 records.
	var p int64 = 8
	if !CrossoverFormula(1<<35-1, p) {
		t.Fatal("M = 2^35−1, P=8: m-columnsort should win")
	}
	if CrossoverFormula(1<<35, p) {
		t.Fatal("M = 2^35, P=8: subblock should win (boundary)")
	}
	if CrossoverFormula(1<<36, p) {
		t.Fatal("M = 2^36, P=8: subblock should win")
	}
}

func TestCrossoverFormulaMatchesDirect(t *testing.T) {
	f := func(lgM, lgP uint8) bool {
		m := int64(1) << (10 + lgM%40) // 2^10..2^49
		p := int64(1) << (lgP % 7)     // 1..64
		return CrossoverFormula(m, p) == CrossoverDirect(m, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHeightOK(t *testing.T) {
	if !HeightOK(Threaded, 32, 4) || HeightOK(Threaded, 31, 4) {
		t.Fatal("threaded height check wrong")
	}
	if !HeightOK(Subblock, 32, 4) || HeightOK(Subblock, 31, 4) {
		t.Fatal("subblock height check wrong (s=4 needs r ≥ 32)")
	}
	if HeightOK(Subblock, 1<<20, 8) {
		t.Fatal("subblock must reject non-square s")
	}
	if !HeightOK(MColumnsort, 2048, 32) || HeightOK(MColumnsort, 2047, 32) {
		t.Fatal("m-columnsort height check wrong")
	}
	if !HeightOK(Combined, 4096, 16) { // 4·16·4 = 256 ≤ 4096
		t.Fatal("combined height check wrong")
	}
}

// TestBoundsConsistentWithHeight cross-checks formulas against the integer
// height checks: an r×s shape just inside the bound passes, just outside
// fails, and N = r·s at the critical s matches MaxN within rounding.
func TestBoundsConsistentWithHeight(t *testing.T) {
	var r int64 = 1 << 18
	// Threaded: max s with 2s² ≤ r is s = 2^8.5 → 2^8 for powers of two;
	// real-valued bound N = r·sqrt(r/2).
	sMax := int64(math.Sqrt(float64(r) / 2))
	if !HeightOK(Threaded, r, sMax) {
		t.Fatal("sMax should satisfy height restriction")
	}
	nReal := MaxN(Threaded, r, 1) // m = r when p = 1
	if got := float64(r) * float64(sMax); got > nReal*1.0000001 {
		t.Fatalf("integer max N %g exceeds real bound %g", got, nReal)
	}
}

func TestInCoreOK(t *testing.T) {
	if !InCoreOK(512, 16) || InCoreOK(511, 16) {
		t.Fatal("InCoreOK boundary wrong (needs M/P ≥ 2P² = 512)")
	}
}

func TestTable(t *testing.T) {
	rows := Table([]int64{1 << 16, 1 << 20}, []int64{4, 16})
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if row.Bound2 <= row.Bound1 {
			t.Fatalf("M/P=%d: subblock bound should exceed threaded", row.MOverP)
		}
		if row.Bound3 <= row.Bound1 {
			t.Fatal("m-columnsort bound should exceed threaded")
		}
		if row.Combined <= row.Bound3 || row.Combined <= row.Bound2 {
			t.Fatal("combined bound should dominate both relaxations")
		}
	}
}

// TestScalability captures the scalability argument of Section 1: doubling
// P (with fixed M/P) leaves restrictions (1) and (2) unchanged but raises
// restriction (3) superlinearly.
func TestScalability(t *testing.T) {
	var mp int64 = 1 << 20
	n1 := MaxN(Threaded, mp*8, 8)
	n2 := MaxN(Threaded, mp*16, 16)
	if n1 != n2 {
		t.Fatal("threaded bound should not scale with P at fixed M/P")
	}
	s1 := MaxN(Subblock, mp*8, 8)
	s2 := MaxN(Subblock, mp*16, 16)
	if s1 != s2 {
		t.Fatal("subblock bound should not scale with P at fixed M/P")
	}
	m1 := MaxN(MColumnsort, mp*8, 8)
	m2 := MaxN(MColumnsort, mp*16, 16)
	if m2 <= 2*m1 {
		t.Fatalf("m-columnsort should scale superlinearly: %g vs %g", m1, m2)
	}
	if math.Abs(m2/m1-math.Pow(2, 1.5)) > 1e-9 {
		t.Fatalf("doubling M should give 2^1.5 ratio, got %g", m2/m1)
	}
}

func TestHumanBytes(t *testing.T) {
	if HumanBytes(1024) != "1.00 KiB" {
		t.Fatalf("got %q", HumanBytes(1024))
	}
	if HumanBytes(math.Pow(2, 40)) != "1.00 TiB" {
		t.Fatalf("got %q", HumanBytes(math.Pow(2, 40)))
	}
	if HumanBytes(512) != "512.00 B" {
		t.Fatalf("got %q", HumanBytes(512))
	}
}

func TestAlgorithmString(t *testing.T) {
	for a, want := range map[Algorithm]string{
		Threaded: "threaded", Subblock: "subblock",
		MColumnsort: "m-columnsort", Combined: "combined",
	} {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", int(a), a.String())
		}
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Fatal("unknown algorithm string")
	}
}
