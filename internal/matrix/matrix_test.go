package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colsort/internal/record"
)

func fillUniform(m Matrix, seed uint64) {
	record.Fill(m.Recs, record.Uniform{Seed: seed}, 0)
}

func checksum(m Matrix) record.Checksum {
	var c record.Checksum
	c.AddSlice(m.Recs)
	return c
}

func TestCheckShape(t *testing.T) {
	good := [][2]int{{8, 2}, {32, 4}, {2, 1}, {128, 8}, {18, 3}}
	for _, g := range good {
		if err := CheckShape(g[0], g[1]); err != nil {
			t.Errorf("CheckShape(%d, %d) = %v", g[0], g[1], err)
		}
	}
	bad := [][2]int{{4, 2}, {7, 2}, {8, 3}, {0, 1}, {8, 0}, {31, 4}}
	for _, b := range bad {
		if err := CheckShape(b[0], b[1]); err == nil {
			t.Errorf("CheckShape(%d, %d) accepted", b[0], b[1])
		}
	}
}

func TestCheckSubblockShape(t *testing.T) {
	good := [][2]int{{32, 4}, {64, 4}, {256, 16}, {4096, 64}}
	for _, g := range good {
		if err := CheckSubblockShape(g[0], g[1]); err != nil {
			t.Errorf("CheckSubblockShape(%d, %d) = %v", g[0], g[1], err)
		}
	}
	bad := [][2]int{
		{16, 4},   // r < 4·s^{3/2} = 32
		{128, 16}, // r < 4·16·4 = 256
		{64, 8},   // s not a power of 4
		{48, 4},   // r not a power of 2
		{0, 4},
	}
	for _, b := range bad {
		if err := CheckSubblockShape(b[0], b[1]); err == nil {
			t.Errorf("CheckSubblockShape(%d, %d) accepted", b[0], b[1])
		}
	}
}

func TestStep2Step4Inverse(t *testing.T) {
	for _, shape := range [][2]int{{8, 2}, {32, 4}, {18, 3}, {128, 8}} {
		r, s := shape[0], shape[1]
		for j := 0; j < s; j++ {
			for i := 0; i < r; i++ {
				ti, tj := Step2Map(r, s, i, j)
				if ti < 0 || ti >= r || tj < 0 || tj >= s {
					t.Fatalf("step2(%d,%d) out of range", i, j)
				}
				bi, bj := Step4Map(r, s, ti, tj)
				if bi != i || bj != j {
					t.Fatalf("r=%d s=%d: step4(step2(%d,%d)) = (%d,%d)", r, s, i, j, bi, bj)
				}
			}
		}
	}
}

func TestStep2MatchesPaperExample(t *testing.T) {
	// Section 2's example: in a 6×3 matrix the column a b c d e f becomes
	// the 2×3 block [[a b c], [d e f]] at the top of the result.
	r, s := 6, 3
	// Column 0 entries a..f are rows 0..5; after step 2 they should be at
	// (0,0) (0,1) (0,2) (1,0) (1,1) (1,2).
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	for i := 0; i < 6; i++ {
		ti, tj := Step2Map(r, s, i, 0)
		if ti != want[i][0] || tj != want[i][1] {
			t.Fatalf("step2(%d,0) = (%d,%d), want (%d,%d)", i, ti, tj, want[i][0], want[i][1])
		}
	}
}

func TestStep6Step8Inverse(t *testing.T) {
	r := 16
	for j := 0; j < 4; j++ {
		for i := 0; i < r; i++ {
			ti, tj := Step6Map(r, i, j)
			bi, bj := Step8Map(r, ti, tj)
			if bi != i || bj != j {
				t.Fatalf("step8(step6(%d,%d)) = (%d,%d)", i, j, bi, bj)
			}
		}
	}
}

func TestPermutePreservesMultiset(t *testing.T) {
	m := New(32, 4, 16)
	fillUniform(m, 1)
	want := checksum(m)
	p := m.Permute(func(i, j int) (int, int) { return Step2Map(32, 4, i, j) })
	if !checksum(p).Equal(want) {
		t.Fatal("Permute changed the multiset")
	}
}

func TestColumnsortSortsRandom(t *testing.T) {
	shapes := [][2]int{{8, 2}, {32, 4}, {72, 6}, {128, 8}, {2, 1}, {200, 10}}
	gens := []record.Generator{
		record.Uniform{Seed: 1},
		record.Dup{Seed: 2, K: 3},
		record.Reverse{Seed: 3},
		record.Sorted{Seed: 4},
	}
	for _, shape := range shapes {
		for _, g := range gens {
			m := New(shape[0], shape[1], 16)
			record.Fill(m.Recs, g, 0)
			want := checksum(m)
			if err := Columnsort(m); err != nil {
				t.Fatalf("%v: %v", shape, err)
			}
			if !m.IsSorted() {
				t.Fatalf("shape %v gen %s: not sorted", shape, g.Name())
			}
			if !checksum(m).Equal(want) {
				t.Fatalf("shape %v gen %s: multiset changed", shape, g.Name())
			}
		}
	}
}

func TestColumnsortRejectsBadShape(t *testing.T) {
	m := New(4, 2, 16)
	if err := Columnsort(m); err == nil {
		t.Fatal("Columnsort accepted r < 2s²")
	}
}

// TestColumnsortZeroOnePrinciple exhaustively sorts every 0–1 matrix of
// shape 8×2. By the 0–1 principle, columnsort (an oblivious algorithm)
// sorts all inputs iff it sorts all 0–1 inputs; 8×2 is the smallest
// power-of-two shape satisfying r ≥ 2s², and 2^16 inputs are cheap.
func TestColumnsortZeroOnePrinciple(t *testing.T) {
	r, s := 8, 2
	n := r * s
	for bits := 0; bits < 1<<n; bits++ {
		m := New(r, s, 8)
		for p := 0; p < n; p++ {
			m.Recs.SetKey(p, uint64((bits>>p)&1))
		}
		if err := Columnsort(m); err != nil {
			t.Fatal(err)
		}
		if !m.IsSorted() {
			t.Fatalf("0-1 input %016b missorted", bits)
		}
	}
}

// TestHeightRestrictionMatters searches for a 0–1 counterexample at a shape
// violating r ≥ 2s² (8×4). Finding one demonstrates the restriction is not
// an artifact; if this tiny shape happens to sort everything the test
// skips, since the restriction is only sufficient.
func TestHeightRestrictionMatters(t *testing.T) {
	r, s := 8, 4
	n := r * s
	if n > 32 {
		t.Skip("shape too large to enumerate")
	}
	for bits := 0; bits < 1<<n; bits++ {
		m := New(r, s, 8)
		for p := 0; p < n; p++ {
			m.Recs.SetKey(p, uint64((bits>>p)&1))
		}
		columnsortSteps(m) // bypass shape check deliberately
		if !m.IsSorted() {
			return // counterexample found, as expected
		}
	}
	t.Skip("no counterexample at 8×4; restriction is sufficient-only")
}

func TestSubblockColumnsortSortsRandom(t *testing.T) {
	shapes := [][2]int{{32, 4}, {64, 4}, {256, 16}}
	for _, shape := range shapes {
		for seed := uint64(0); seed < 3; seed++ {
			m := New(shape[0], shape[1], 16)
			fillUniform(m, seed)
			want := checksum(m)
			if err := SubblockColumnsort(m); err != nil {
				t.Fatal(err)
			}
			if !m.IsSorted() {
				t.Fatalf("shape %v seed %d: not sorted", shape, seed)
			}
			if !checksum(m).Equal(want) {
				t.Fatalf("shape %v seed %d: multiset changed", shape, seed)
			}
		}
	}
}

// TestSubblockZeroOneStress hammers subblock columnsort with random 0–1
// matrices (the hard case class by the 0–1 principle) at the minimum legal
// shape, where the relaxed height restriction is tight.
func TestSubblockZeroOneStress(t *testing.T) {
	r, s := 32, 4
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		m := New(r, s, 8)
		for p := 0; p < r*s; p++ {
			m.Recs.SetKey(p, uint64(rng.Intn(2)))
		}
		if err := SubblockColumnsort(m); err != nil {
			t.Fatal(err)
		}
		if !m.IsSorted() {
			t.Fatalf("trial %d: 0-1 input missorted", trial)
		}
	}
}

func TestSubblockRejectsBadShape(t *testing.T) {
	m := New(16, 4, 16)
	if err := SubblockColumnsort(m); err == nil {
		t.Fatal("SubblockColumnsort accepted r < 4s^(3/2)")
	}
}

func TestLiteralShiftMatchesFused(t *testing.T) {
	// Run columnsort steps 1–4, then compare the literal (sentinel-based)
	// steps 5–8 against the fused boundary-merge version.
	for seed := uint64(0); seed < 5; seed++ {
		m := New(32, 4, 16)
		fillUniform(m, seed)
		// Keys from Uniform can hit MaxKey only with probability ~2^-64;
		// still, mask the top bit to honor LiteralShiftSteps's contract.
		for i := 0; i < m.N(); i++ {
			m.Recs.SetKey(i, m.Recs.Key(i)>>1|1)
		}
		m.SortColumns()
		m2 := m.Permute(func(i, j int) (int, int) { return Step2Map(m.R, m.S, i, j) })
		m.Recs.Copy(m2.Recs)
		m.SortColumns()
		m4 := m.Permute(func(i, j int) (int, int) { return Step4Map(m.R, m.S, i, j) })
		m.Recs.Copy(m4.Recs)

		lit := m.Clone()
		fused := m.Clone()
		lit.LiteralShiftSteps()
		fused.shiftSortShift()
		for i := range lit.Recs.Data {
			if lit.Recs.Data[i] != fused.Recs.Data[i] {
				t.Fatalf("seed %d: literal and fused steps 5–8 disagree at byte %d", seed, i)
			}
		}
		if !lit.IsSorted() {
			t.Fatalf("seed %d: literal result unsorted", seed)
		}
	}
}

func TestColumnsortQuick(t *testing.T) {
	f := func(seed uint64, wide bool) bool {
		size := 16
		if wide {
			size = 64
		}
		m := New(32, 4, size)
		fillUniform(m, seed)
		want := checksum(m)
		if err := Columnsort(m); err != nil {
			return false
		}
		return m.IsSorted() && checksum(m).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWrapPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap accepted wrong length")
		}
	}()
	Wrap(4, 4, record.Make(15, 16))
}

func TestCloneIsDeep(t *testing.T) {
	m := New(8, 2, 16)
	fillUniform(m, 3)
	c := m.Clone()
	m.SetKey(0, 0, 12345)
	if c.Key(0, 0) == 12345 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestColumnAccessors(t *testing.T) {
	m := New(4, 2, 16)
	m.SetKey(2, 1, 99)
	if m.Key(2, 1) != 99 {
		t.Fatal("Key/SetKey roundtrip failed")
	}
	col := m.Column(1)
	if col.Key(2) != 99 {
		t.Fatal("Column view wrong")
	}
	if m.N() != 8 {
		t.Fatal("N wrong")
	}
}
