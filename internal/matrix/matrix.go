// Package matrix implements Leighton's columnsort and the paper's subblock
// columnsort as pure in-memory reference algorithms on an r×s record matrix.
//
// These references serve three roles:
//
//  1. They are the correctness oracle for the out-of-core implementations in
//     internal/core: every out-of-core pass permutation is tested against the
//     step maps here, and whole-algorithm outputs are compared.
//  2. They define the step permutations (steps 2, 4, 6, 8 and the subblock
//     step 3.1) as pure (i, j) → (i', j') functions reused by the
//     out-of-core communicate/permute stages.
//  3. The in-core columnsort reference is the basis of the distributed
//     in-core sort that M-columnsort uses for its sort stage (Section 4).
//
// A Matrix stores N = r·s records column-major: column j occupies records
// [j·r, (j+1)·r) of the backing slice, matching both the paper's layout and
// the on-disk layout of the out-of-core implementation.
package matrix

import (
	"fmt"

	"colsort/internal/bitperm"
	"colsort/internal/record"
	"colsort/internal/sortalg"
)

// Matrix is an r×s record matrix stored column-major.
type Matrix struct {
	R, S int
	Recs record.Slice
}

// New allocates an r×s matrix of records of the given byte size.
func New(r, s, recSize int) Matrix {
	return Matrix{R: r, S: s, Recs: record.Make(r*s, recSize)}
}

// Wrap views an existing record slice of length r·s as an r×s matrix.
func Wrap(r, s int, recs record.Slice) Matrix {
	if recs.Len() != r*s {
		panic(fmt.Sprintf("matrix: %d records cannot form %d×%d", recs.Len(), r, s))
	}
	return Matrix{R: r, S: s, Recs: recs}
}

// Column returns column j as a record slice view.
func (m Matrix) Column(j int) record.Slice {
	return m.Recs.Sub(j*m.R, (j+1)*m.R)
}

// Key returns the key of the record at row i, column j.
func (m Matrix) Key(i, j int) uint64 { return m.Recs.Key(j*m.R + i) }

// SetKey sets the key of the record at row i, column j.
func (m Matrix) SetKey(i, j int, k uint64) { m.Recs.SetKey(j*m.R+i, k) }

// N returns the total number of records.
func (m Matrix) N() int { return m.R * m.S }

// Clone returns a deep copy of the matrix.
func (m Matrix) Clone() Matrix {
	c := New(m.R, m.S, m.Recs.Size)
	c.Recs.Copy(m.Recs)
	return c
}

// IsSorted reports whether the matrix is sorted in column-major order
// (the postcondition of columnsort).
func (m Matrix) IsSorted() bool { return m.Recs.IsSorted() }

// CheckShape validates the classic columnsort requirements: s ≥ 1, s | r,
// r even, and the height restriction r ≥ 2s². (Following the paper we use
// the simpler, more stringent r ≥ 2s² rather than Leighton's 2(s−1)².)
func CheckShape(r, s int) error {
	if s < 1 || r < 1 {
		return fmt.Errorf("matrix: nonpositive shape %d×%d", r, s)
	}
	if r%s != 0 {
		return fmt.Errorf("matrix: s=%d must divide r=%d", s, r)
	}
	if r%2 != 0 && s > 1 {
		return fmt.Errorf("matrix: r=%d must be even for the shift steps", r)
	}
	if r < 2*s*s {
		return fmt.Errorf("matrix: height restriction violated: r=%d < 2s²=%d", r, 2*s*s)
	}
	return nil
}

// CheckSubblockShape validates subblock columnsort's requirements: r a power
// of 2, s a power of 4, s | r, √s ≤ r, and the relaxed height restriction
// r ≥ 4·s^{3/2}.
func CheckSubblockShape(r, s int) error {
	if s < 1 || r < 1 {
		return fmt.Errorf("matrix: nonpositive shape %d×%d", r, s)
	}
	if !bitperm.IsPow2(r) {
		return fmt.Errorf("matrix: r=%d must be a power of 2", r)
	}
	if !bitperm.IsPow4(s) {
		return fmt.Errorf("matrix: s=%d must be a power of 4", s)
	}
	if r%s != 0 {
		return fmt.Errorf("matrix: s=%d must divide r=%d", s, r)
	}
	q := bitperm.Sqrt(s)
	// r ≥ 4·s^{3/2} = 4·s·√s, all integers under the power-of-2 regime.
	if r < 4*s*q {
		return fmt.Errorf("matrix: relaxed height restriction violated: r=%d < 4s^(3/2)=%d", r, 4*s*q)
	}
	return nil
}

// Step2Map is the "transpose and reshape" permutation of columnsort step 2:
// (i, j) → (j·(r/s) + ⌊i/s⌋, i mod s).
func Step2Map(r, s, i, j int) (ti, tj int) {
	return j*(r/s) + i/s, i % s
}

// Step4Map is the "reshape and transpose" permutation of step 4, the exact
// inverse of Step2Map: (i, j) → ((i mod (r/s))·s + j, ⌊i/(r/s)⌋).
func Step4Map(r, s, i, j int) (ti, tj int) {
	return (i%(r/s))*s + j, i / (r / s)
}

// Step6Map is the "shift down by r/2" permutation into the r×(s+1) shifted
// matrix: (i, j) → (i + r/2, j) for i < r/2, else (i − r/2, j+1).
func Step6Map(r, i, j int) (ti, tj int) {
	if i < r/2 {
		return i + r/2, j
	}
	return i - r/2, j + 1
}

// Step8Map is the "shift up by r/2" permutation back from the shifted
// matrix, the inverse of Step6Map.
func Step8Map(r, i, j int) (ti, tj int) {
	if i >= r/2 {
		return i - r/2, j
	}
	return i + r/2, j - 1
}

// Step2ColOf is the target-column projection of Step2Map; the out-of-core
// communicate stages route records by destination column alone.
func Step2ColOf(r, s, i int) int { return i % s }

// Step4ColOf is the target-column projection of Step4Map.
func Step4ColOf(r, s, i int) int { return i / (r / s) }

// MapFunc is a step permutation on (row, column) positions.
type MapFunc func(i, j int) (ti, tj int)

// Permute applies f out-of-place: the record at (i, j) of m moves to
// f(i, j) of the result.
func (m Matrix) Permute(f MapFunc) Matrix {
	dst := New(m.R, m.S, m.Recs.Size)
	for j := 0; j < m.S; j++ {
		for i := 0; i < m.R; i++ {
			ti, tj := f(i, j)
			dst.Recs.CopyRecord(tj*m.R+ti, m.Recs, j*m.R+i)
		}
	}
	return dst
}

// SortColumns sorts every column of m in place (steps 1, 3, 5 and 7).
func (m Matrix) SortColumns() {
	scratch := record.Make(m.R, m.Recs.Size)
	for j := 0; j < m.S; j++ {
		col := m.Column(j)
		sortalg.SortInto(scratch, col)
		col.Copy(scratch)
	}
}

// Columnsort runs Leighton's 8-step columnsort on m in place. It returns an
// error if the shape violates the height restriction; on a valid shape the
// matrix ends sorted in column-major order.
//
// Steps 5–8 are realized as the equivalent fused boundary merges (see
// shiftSortShift): sort columns, then for every adjacent column pair replace
// (bottom of j, top of j+1) by the (low, high) halves of their merge. This
// avoids materializing ±∞ sentinel records, which matters because real data
// may contain the maximum key value.
func Columnsort(m Matrix) error {
	if err := CheckShape(m.R, m.S); err != nil {
		return err
	}
	columnsortSteps(m)
	return nil
}

func columnsortSteps(m Matrix) {
	if m.S == 1 {
		m.SortColumns()
		return
	}
	m.SortColumns()                                                                // step 1
	m2 := m.Permute(func(i, j int) (int, int) { return Step2Map(m.R, m.S, i, j) }) // step 2
	m.Recs.Copy(m2.Recs)
	m.SortColumns()                                                                // step 3
	m4 := m.Permute(func(i, j int) (int, int) { return Step4Map(m.R, m.S, i, j) }) // step 4
	m.Recs.Copy(m4.Recs)
	m.shiftSortShift() // steps 5–8
}

// shiftSortShift performs steps 5–8: sort each column, then merge adjacent
// half-columns across each column boundary. Writing [L; H] for the sorted
// merge of (bottom of column j−1, top of column j), step 8 deposits L as the
// final bottom of column j−1 and H as the final top of column j.
func (m Matrix) shiftSortShift() {
	m.SortColumns() // step 5 (and step 7's sortedness precondition)
	r, h := m.R, m.R/2
	merged := record.Make(r, m.Recs.Size)
	prevBottom := record.Make(h, m.Recs.Size)
	for j := 1; j < m.S; j++ {
		left := m.Column(j - 1)
		right := m.Column(j)
		prevBottom.Copy(left.Sub(h, r))
		sortalg.MergeInto(merged, prevBottom, right.Sub(0, h))
		left.Sub(h, r).Copy(merged.Sub(0, h))
		right.Sub(0, h).Copy(merged.Sub(h, r))
	}
}

// SubblockColumnsort runs the paper's 10-step subblock columnsort on m in
// place: steps 1–3 of columnsort, the subblock permutation (step 3.1), a
// column sort (step 3.2), then steps 4–8.
func SubblockColumnsort(m Matrix) error {
	if err := CheckSubblockShape(m.R, m.S); err != nil {
		return err
	}
	sb := bitperm.MustSubblock(m.R, m.S)
	m.SortColumns()                                                                // step 1
	m2 := m.Permute(func(i, j int) (int, int) { return Step2Map(m.R, m.S, i, j) }) // step 2
	m.Recs.Copy(m2.Recs)
	m.SortColumns()          // step 3
	m31 := m.Permute(sb.Map) // step 3.1: the subblock permutation
	m.Recs.Copy(m31.Recs)
	m.SortColumns()                                                                // step 3.2
	m4 := m.Permute(func(i, j int) (int, int) { return Step4Map(m.R, m.S, i, j) }) // step 4
	m.Recs.Copy(m4.Recs)
	m.shiftSortShift() // steps 5–8
	return nil
}

// LiteralShiftSteps runs steps 5–8 literally: build the r×(s+1) shifted
// matrix with −∞/+∞ sentinel half-columns, sort its columns, and shift back.
// It exists to validate the fused shiftSortShift against Leighton's
// description; callers must guarantee no record uses the extreme key values.
func (m Matrix) LiteralShiftSteps() {
	m.SortColumns() // step 5
	r, s, h := m.R, m.S, m.R/2
	wide := New(r, s+1, m.Recs.Size)
	wide.Column(0).Sub(0, h).FillKey(record.MinKey)
	wide.Column(s).Sub(h, r).FillKey(record.MaxKey)
	for j := 0; j < s; j++ { // step 6
		for i := 0; i < r; i++ {
			ti, tj := Step6Map(r, i, j)
			wide.Recs.CopyRecord(tj*r+ti, m.Recs, j*r+i)
		}
	}
	wide.SortColumns()        // step 7
	for j := 0; j <= s; j++ { // step 8
		for i := 0; i < r; i++ {
			ti, tj := Step8Map(r, i, j)
			if tj < 0 || tj >= s {
				continue // sentinel positions drop out
			}
			m.Recs.CopyRecord(tj*r+ti, wide.Recs, j*r+i)
		}
	}
}
