// Scratch state for the sort stages: every pass calls SortInto /
// MergeRunsInto once per pipeline round, and without reuse each call
// allocates a fresh (key, index) array (plus a radix ping-pong buffer and
// loser-tree state). A Scratch owns those buffers and grows them on demand,
// so the steady state of a pipeline performs no allocation in its sort
// stage at all.

package sortalg

import "colsort/internal/record"

// Scratch holds the reusable working memory of one sorting client. It is
// NOT safe for concurrent use: give each pipeline-stage goroutine its own
// Scratch (they are cheap — buffers grow lazily to the working-set size and
// are then reused for the life of the stage).
//
// The zero value is ready to use.
type Scratch struct {
	kvs   []kv        // (key, index) pairs of the buffer being sorted
	tmp   []kv        // radix ping-pong buffer
	count []int       // radix digit histogram (radixBuckets wide)
	node  []treeNode  // loser tree: internal nodes (key + run id)
	cur   []runCursor // loser tree: per-run cursors
}

func (sc *Scratch) kvBuf(n int) []kv {
	if cap(sc.kvs) < n {
		sc.kvs = make([]kv, n)
	}
	return sc.kvs[:n]
}

func (sc *Scratch) tmpBuf(n int) []kv {
	if cap(sc.tmp) < n {
		sc.tmp = make([]kv, n)
	}
	return sc.tmp[:n]
}

// treeBufs lends the loser tree its two k-wide state arrays.
func (sc *Scratch) treeBufs(k int) (node []treeNode, cur []runCursor) {
	if cap(sc.node) < k {
		sc.node = make([]treeNode, k)
		sc.cur = make([]runCursor, k)
	}
	return sc.node[:k], sc.cur[:k]
}

// SortInto sorts the records of src into dst using introsort, reusing the
// scratch buffers. dst and src must have the same record size and length
// and must not alias.
func (sc *Scratch) SortInto(dst, src record.Slice) {
	sc.SortIntoAlg(dst, src, Intro)
}

// SortIntoAlg sorts src into dst with an explicit algorithm choice, reusing
// the scratch buffers.
func (sc *Scratch) SortIntoAlg(dst, src record.Slice, alg Algorithm) {
	n := src.Len()
	checkInto(dst, src)
	kvs := sc.kvBuf(n)
	for i := 0; i < n; i++ {
		kvs[i] = kv{key: src.Key(i), idx: int32(i)}
	}
	switch alg {
	case Intro:
		introsort(kvs, src, maxDepth(n))
	case Radix:
		if sc.count == nil {
			sc.count = make([]int, radixBuckets)
		}
		radixKV(kvs, src, sc.tmpBuf(n), sc.count)
	case Heap:
		heapsortKV(kvs, src)
	case Insertion:
		insertionKV(kvs, src, 0, n)
	default:
		panic(badAlg(alg))
	}
	gather(dst, src, kvs)
}

// MergeRunsInto merges the sorted runs of src into dst in total order,
// reusing the scratch's loser-tree state. Semantics match the package-level
// MergeRunsInto.
func (sc *Scratch) MergeRunsInto(dst, src record.Slice, runs []Run) {
	checkInto(dst, src)
	total := 0
	for _, r := range runs {
		r.validate(src.Len())
		total += r.Count
	}
	if total != src.Len() {
		panic(mergeCoverage(total, src.Len()))
	}
	switch len(runs) {
	case 0:
		return
	case 1:
		r := runs[0]
		for i := 0; i < r.Count; i++ {
			dst.CopyRecord(i, src, r.Start+i*r.Stride)
		}
		return
	case 2:
		merge2(dst, src, runs[0], runs[1])
		return
	}
	k := 1
	for k < len(runs) {
		k *= 2
	}
	node, cur := sc.treeBufs(k)
	var t loserTree
	t.init(src, runs, node, cur, k)
	for i := 0; i < total; i++ {
		dst.CopyRecord(i, src, t.pop())
	}
}
