// Package sortalg provides the local (single-processor, in-memory) sorting
// machinery used by the sort stages of every out-of-core columnsort pass.
//
// Records can be wide (64–128 bytes in the paper), so comparison sorts here
// never swap whole records: they sort compact (key, index) pairs and then
// gather records into a destination buffer in one linear pass. The pipeline
// wants a fresh output buffer anyway, so the gather is free.
//
// All sorts order records by the total order of record.Slice.Less: by key,
// then by payload bytes. Using a total order makes outputs of different
// algorithms byte-identical on identical multisets, which the cross-checking
// tests in internal/core rely on.
package sortalg

import (
	"fmt"

	"colsort/internal/record"
)

// kv is the compact sort element: the record's key plus its index in the
// source buffer. 32-bit indices bound single-buffer sorts to 2^31 records
// (far above any per-processor buffer in this system; New panics otherwise).
type kv struct {
	key uint64
	idx int32
}

// Algorithm selects the comparison/distribution sort used for a sort stage.
type Algorithm int

const (
	// Intro is pattern-defeating introsort: quicksort with median-of-three
	// pivots, insertion sort on small partitions, and heapsort when the
	// recursion depth degenerates. The default.
	Intro Algorithm = iota
	// Radix is LSD radix sort on the 64-bit key (four 16-bit digit passes),
	// with comparison refinement of equal-key runs so the result respects
	// the full total order.
	Radix
	// Heap is heapsort, used standalone mostly for testing and as the
	// introsort fallback.
	Heap
	// Insertion is plain binary insertion sort; only sensible for tiny
	// inputs and as the introsort base case.
	Insertion
)

func (a Algorithm) String() string {
	switch a {
	case Intro:
		return "intro"
	case Radix:
		return "radix"
	case Heap:
		return "heap"
	case Insertion:
		return "insertion"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// SortInto sorts the records of src into dst using introsort.
// dst and src must have the same record size and length and must not alias.
// It allocates per call; pipeline code should prefer Scratch.SortInto.
func SortInto(dst, src record.Slice) {
	SortIntoAlg(dst, src, Intro)
}

// SortIntoAlg sorts src into dst with an explicit algorithm choice. It
// allocates per call; pipeline code should prefer Scratch.SortIntoAlg.
func SortIntoAlg(dst, src record.Slice, alg Algorithm) {
	var sc Scratch
	sc.SortIntoAlg(dst, src, alg)
}

func badAlg(alg Algorithm) string {
	return fmt.Sprintf("sortalg: unknown algorithm %d", int(alg))
}

// Sort sorts s in place, allocating a scratch buffer. Prefer SortInto in
// pipeline code where buffers are pooled.
func Sort(s record.Slice) {
	tmp := record.Make(s.Len(), s.Size)
	SortInto(tmp, s)
	s.Copy(tmp)
}

// IsSortedTotal reports whether s is sorted under the full total order
// (key, then payload). record.Slice.IsSorted already checks this; the alias
// keeps call sites readable.
func IsSortedTotal(s record.Slice) bool { return s.IsSorted() }

func checkInto(dst, src record.Slice) {
	if dst.Size != src.Size || dst.Len() != src.Len() {
		panic(fmt.Sprintf("sortalg: dst %d×%dB and src %d×%dB mismatch",
			dst.Len(), dst.Size, src.Len(), src.Size))
	}
	if src.Len() > 1<<31-1 {
		panic("sortalg: buffer exceeds 2^31 records")
	}
}

func gather(dst, src record.Slice, kvs []kv) {
	for i, e := range kvs {
		dst.CopyRecord(i, src, int(e.idx))
	}
}

// less orders kv pairs by key then by the underlying record payload.
func less(a, b kv, src record.Slice) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	if a.idx == b.idx {
		return false
	}
	return src.Less(int(a.idx), int(b.idx))
}

func maxDepth(n int) int {
	d := 0
	for n > 0 {
		d++
		n >>= 1
	}
	return d * 2
}

// introsort sorts kvs[lo:hi] — here always the whole slice — degrading to
// heapsort at depth 0 to defeat quicksort-killer inputs.
func introsort(kvs []kv, src record.Slice, depth int) {
	for len(kvs) > 24 {
		if depth == 0 {
			heapsortKV(kvs, src)
			return
		}
		depth--
		p := partition(kvs, src)
		// Recurse on the smaller side, loop on the larger: O(log n) stack.
		if p < len(kvs)-p-1 {
			introsort(kvs[:p], src, depth)
			kvs = kvs[p+1:]
		} else {
			introsort(kvs[p+1:], src, depth)
			kvs = kvs[:p]
		}
	}
	insertionKV(kvs, src, 0, len(kvs))
}

// partition performs a Hoare-style partition with a median-of-three pivot,
// returning the pivot's final index.
func partition(kvs []kv, src record.Slice) int {
	n := len(kvs)
	mid := n / 2
	// Order kvs[0], kvs[mid], kvs[n-1]; use kvs[mid] as pivot.
	if less(kvs[mid], kvs[0], src) {
		kvs[mid], kvs[0] = kvs[0], kvs[mid]
	}
	if less(kvs[n-1], kvs[0], src) {
		kvs[n-1], kvs[0] = kvs[0], kvs[n-1]
	}
	if less(kvs[n-1], kvs[mid], src) {
		kvs[n-1], kvs[mid] = kvs[mid], kvs[n-1]
	}
	// Move pivot to n-2 and partition kvs[1:n-1].
	kvs[mid], kvs[n-2] = kvs[n-2], kvs[mid]
	pivot := kvs[n-2]
	i, j := 0, n-2
	for {
		for i++; less(kvs[i], pivot, src); i++ {
		}
		for j--; less(pivot, kvs[j], src); j-- {
		}
		if i >= j {
			break
		}
		kvs[i], kvs[j] = kvs[j], kvs[i]
	}
	kvs[i], kvs[n-2] = kvs[n-2], kvs[i]
	return i
}

func insertionKV(kvs []kv, src record.Slice, lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		e := kvs[i]
		j := i - 1
		for j >= lo && less(e, kvs[j], src) {
			kvs[j+1] = kvs[j]
			j--
		}
		kvs[j+1] = e
	}
}

func heapsortKV(kvs []kv, src record.Slice) {
	n := len(kvs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(kvs, i, n, src)
	}
	for end := n - 1; end > 0; end-- {
		kvs[0], kvs[end] = kvs[end], kvs[0]
		siftDown(kvs, 0, end, src)
	}
}

func siftDown(kvs []kv, root, end int, src record.Slice) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(kvs[child], kvs[child+1], src) {
			child++
		}
		if !less(kvs[root], kvs[child], src) {
			return
		}
		kvs[root], kvs[child] = kvs[child], kvs[root]
		root = child
	}
}

// radixBuckets is the histogram width of the 16-bit-digit radix passes.
const radixBuckets = 1 << 16

// radixKV sorts kvs by key with 4 LSD passes of 16-bit digits, then refines
// equal-key runs with introsort so payload ties respect the total order.
// tmp is the caller-supplied ping-pong buffer, len(tmp) ≥ len(kvs), and
// count the caller-supplied histogram (the array is 512 KiB — far past the
// stack limit — so a per-call local would charge the allocator every sort).
func radixKV(kvs []kv, src record.Slice, tmp []kv, count []int) {
	n := len(kvs)
	if n < 2 {
		return
	}
	const bits = 16
	const buckets = radixBuckets
	count = count[:buckets]
	a, b := kvs, tmp[:n]
	for shift := uint(0); shift < 64; shift += bits {
		for i := range count {
			count[i] = 0
		}
		for _, e := range a {
			count[(e.key>>shift)&(buckets-1)]++
		}
		// Skip passes where all keys share the digit.
		if count[(a[0].key>>shift)&(buckets-1)] == n {
			continue
		}
		sum := 0
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, e := range a {
			d := (e.key >> shift) & (buckets - 1)
			b[count[d]] = e
			count[d]++
		}
		a, b = b, a
	}
	if &a[0] != &kvs[0] {
		copy(kvs, a)
	}
	// Refine runs of equal keys by payload.
	i := 0
	for i < n {
		j := i + 1
		for j < n && kvs[j].key == kvs[i].key {
			j++
		}
		if j-i > 1 {
			introsort(kvs[i:j], src, maxDepth(j-i))
		}
		i = j
	}
}
