package sortalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"colsort/internal/record"
)

func fillRandom(s record.Slice, seed uint64) {
	record.Fill(s, record.Uniform{Seed: seed}, 0)
}

func checksum(s record.Slice) record.Checksum {
	var c record.Checksum
	c.AddSlice(s)
	return c
}

func TestSortIntoAllAlgorithms(t *testing.T) {
	algs := []Algorithm{Intro, Radix, Heap, Insertion}
	sizes := []int{0, 1, 2, 3, 15, 64, 257, 1000}
	gens := []record.Generator{
		record.Uniform{Seed: 1},
		record.Dup{Seed: 2, K: 3},
		record.Sorted{Seed: 3},
		record.Reverse{Seed: 4},
		record.NearlySorted{Seed: 5, Window: 16},
	}
	for _, alg := range algs {
		for _, n := range sizes {
			for _, g := range gens {
				src := record.Make(n, 16)
				record.Fill(src, g, 0)
				want := checksum(src)
				dst := record.Make(n, 16)
				SortIntoAlg(dst, src, alg)
				if !dst.IsSorted() {
					t.Fatalf("%v n=%d gen=%s: not sorted", alg, n, g.Name())
				}
				if !checksum(dst).Equal(want) {
					t.Fatalf("%v n=%d gen=%s: multiset changed", alg, n, g.Name())
				}
			}
		}
	}
}

func TestAlgorithmsAgreeExactly(t *testing.T) {
	// With the payload tie-break total order, all algorithms must produce
	// byte-identical outputs, even with heavy duplication.
	src := record.Make(512, 32)
	record.Fill(src, record.Dup{Seed: 7, K: 5}, 0)
	ref := record.Make(512, 32)
	SortIntoAlg(ref, src, Intro)
	for _, alg := range []Algorithm{Radix, Heap, Insertion} {
		dst := record.Make(512, 32)
		SortIntoAlg(dst, src, alg)
		for i := 0; i < 512*32; i++ {
			if dst.Data[i] != ref.Data[i] {
				t.Fatalf("%v output differs from intro at byte %d", alg, i)
			}
		}
	}
}

func TestSortInPlace(t *testing.T) {
	s := record.Make(100, 16)
	fillRandom(s, 9)
	want := checksum(s)
	Sort(s)
	if !s.IsSorted() || !checksum(s).Equal(want) {
		t.Fatal("in-place Sort failed")
	}
}

func TestSortWideRecords(t *testing.T) {
	src := record.Make(300, 128)
	fillRandom(src, 11)
	dst := record.Make(300, 128)
	SortInto(dst, src)
	if !dst.IsSorted() {
		t.Fatal("wide-record sort not sorted")
	}
	if !checksum(dst).Equal(checksum(src)) {
		t.Fatal("wide-record sort changed multiset")
	}
}

func TestIntroQuicksortKiller(t *testing.T) {
	// Organ-pipe / many-equal patterns that degrade naive quicksort.
	n := 4096
	src := record.Make(n, 16)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			src.SetKey(i, uint64(i))
		} else {
			src.SetKey(i, uint64(n-i))
		}
	}
	dst := record.Make(n, 16)
	SortIntoAlg(dst, src, Intro)
	if !dst.IsSorted() {
		t.Fatal("introsort failed on organ-pipe input")
	}
	// All-equal keys.
	src.FillKey(42)
	SortIntoAlg(dst, src, Intro)
	if !dst.IsSorted() {
		t.Fatal("introsort failed on constant input")
	}
}

func TestRadixSkipsUniformDigits(t *testing.T) {
	// Keys differing only in the low 16 bits exercise the digit-skip path.
	n := 1000
	src := record.Make(n, 16)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		src.SetKey(i, uint64(rng.Intn(65536)))
	}
	dst := record.Make(n, 16)
	SortIntoAlg(dst, src, Radix)
	if !dst.IsSorted() {
		t.Fatal("radix failed with identical high digits")
	}
}

func TestSortQuick(t *testing.T) {
	f := func(keys []uint64, algPick uint8) bool {
		alg := []Algorithm{Intro, Radix, Heap}[int(algPick)%3]
		src := record.Make(len(keys), 16)
		for i, k := range keys {
			src.SetKey(i, k)
		}
		want := checksum(src)
		dst := record.Make(len(keys), 16)
		SortIntoAlg(dst, src, alg)
		return dst.IsSorted() && checksum(dst).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched buffers")
		}
	}()
	SortInto(record.Make(3, 16), record.Make(4, 16))
}

func TestMergeInto(t *testing.T) {
	a := record.Make(10, 16)
	b := record.Make(15, 16)
	fillRandom(a, 1)
	fillRandom(b, 2)
	Sort(a)
	Sort(b)
	dst := record.Make(25, 16)
	MergeInto(dst, a, b)
	if !dst.IsSorted() {
		t.Fatal("MergeInto not sorted")
	}
	want := checksum(a)
	want.Merge(checksum(b))
	if !checksum(dst).Equal(want) {
		t.Fatal("MergeInto changed multiset")
	}
}

func TestMergeIntoEmptyHalves(t *testing.T) {
	a := record.Make(0, 16)
	b := record.Make(5, 16)
	fillRandom(b, 3)
	Sort(b)
	dst := record.Make(5, 16)
	MergeInto(dst, a, b)
	if !dst.IsSorted() {
		t.Fatal("MergeInto with empty a failed")
	}
	MergeInto(dst, b, a)
	if !dst.IsSorted() {
		t.Fatal("MergeInto with empty b failed")
	}
}

func TestMergeRunsContiguous(t *testing.T) {
	// Build a buffer of k sorted contiguous runs and merge.
	for _, k := range []int{1, 2, 3, 8, 16} {
		n := k * 32
		src := record.Make(n, 16)
		fillRandom(src, uint64(k))
		for i := 0; i < k; i++ {
			Sort(src.Sub(i*32, (i+1)*32))
		}
		want := checksum(src)
		dst := record.Make(n, 16)
		MergeRunsInto(dst, src, ContiguousRuns(n, k))
		if !dst.IsSorted() {
			t.Fatalf("k=%d: merge of contiguous runs not sorted", k)
		}
		if !checksum(dst).Equal(want) {
			t.Fatalf("k=%d: merge changed multiset", k)
		}
	}
}

func TestMergeRunsStrided(t *testing.T) {
	// Strided runs: sort positions i, i+k, ... for each i, then merge.
	k, per := 8, 64
	n := k * per
	src := record.Make(n, 16)
	fillRandom(src, 5)
	// Sort each strided run by extracting, sorting, writing back.
	for i := 0; i < k; i++ {
		tmp := record.Make(per, 16)
		for j := 0; j < per; j++ {
			tmp.CopyRecord(j, src, i+j*k)
		}
		Sort(tmp)
		for j := 0; j < per; j++ {
			src.CopyRecord(i+j*k, tmp, j)
		}
	}
	want := checksum(src)
	dst := record.Make(n, 16)
	MergeRunsInto(dst, src, StridedRuns(n, k))
	if !dst.IsSorted() {
		t.Fatal("strided merge not sorted")
	}
	if !checksum(dst).Equal(want) {
		t.Fatal("strided merge changed multiset")
	}
}

func TestLoserTreeMatchesHeapMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		k := 3 + rng.Intn(14)
		per := 1 + rng.Intn(40)
		n := k * per
		src := record.Make(n, 16)
		fillRandom(src, uint64(trial))
		runs := ContiguousRuns(n, k)
		for i := 0; i < k; i++ {
			Sort(src.Sub(i*per, (i+1)*per))
		}
		a := record.Make(n, 16)
		b := record.Make(n, 16)
		MergeRunsInto(a, src, runs)
		heapMergeRunsInto(b, src, runs)
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("trial %d: loser tree and heap merge disagree at byte %d", trial, i)
			}
		}
	}
}

func TestMergeRunsWithEmptyRuns(t *testing.T) {
	src := record.Make(10, 16)
	fillRandom(src, 8)
	Sort(src)
	runs := []Run{Contiguous(0, 4), {Start: 4, Stride: 1, Count: 0}, Contiguous(4, 6), {Start: 0, Stride: 1, Count: 0}}
	dst := record.Make(10, 16)
	MergeRunsInto(dst, src, runs)
	if !dst.IsSorted() {
		t.Fatal("merge with empty runs failed")
	}
}

func TestMergeRunsCoverageMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad run coverage")
		}
	}()
	src := record.Make(10, 16)
	dst := record.Make(10, 16)
	MergeRunsInto(dst, src, []Run{Contiguous(0, 4)})
}

func TestRunValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range run")
		}
	}()
	src := record.Make(4, 16)
	dst := record.Make(4, 16)
	MergeRunsInto(dst, src, []Run{{Start: 0, Stride: 2, Count: 4}})
}

func TestDetectRuns(t *testing.T) {
	s := record.Make(9, 16)
	keys := []uint64{1, 3, 5, 2, 4, 0, 9, 9, 9}
	for i, k := range keys {
		s.SetKey(i, k)
	}
	runs := DetectRuns(s)
	want := []Run{Contiguous(0, 3), Contiguous(3, 2), Contiguous(5, 4)}
	if len(runs) != len(want) {
		t.Fatalf("got %d runs %v, want %v", len(runs), runs, want)
	}
	for i := range runs {
		if runs[i] != want[i] {
			t.Fatalf("run %d = %+v, want %+v", i, runs[i], want[i])
		}
	}
	if got := DetectRuns(record.Make(0, 16)); got != nil {
		t.Fatal("DetectRuns on empty should be nil")
	}
}

func TestDetectRunsThenMergeEqualsSort(t *testing.T) {
	f := func(keys []uint64) bool {
		src := record.Make(len(keys), 16)
		for i, k := range keys {
			src.SetKey(i, k)
		}
		dst := record.Make(len(keys), 16)
		if len(keys) == 0 {
			return true
		}
		MergeRunsInto(dst, src, DetectRuns(src))
		return dst.IsSorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmString(t *testing.T) {
	if Intro.String() != "intro" || Radix.String() != "radix" ||
		Heap.String() != "heap" || Insertion.String() != "insertion" {
		t.Fatal("Algorithm.String wrong")
	}
	if Algorithm(99).String() != "Algorithm(99)" {
		t.Fatal("unknown Algorithm.String wrong")
	}
}
