package sortalg

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"

	"colsort/internal/record"
)

// referenceSort sorts via the standard library on extracted (key, payload)
// copies — the independent oracle for the hand-written sorts.
func referenceSort(src record.Slice) record.Slice {
	n := src.Len()
	recs := make([][]byte, n)
	for i := 0; i < n; i++ {
		recs[i] = append([]byte(nil), src.Record(i)...)
	}
	sort.Slice(recs, func(a, b int) bool { return bytes.Compare(recs[a], recs[b]) < 0 })
	out := record.Make(n, src.Size)
	for i, r := range recs {
		copy(out.Record(i), r)
	}
	return out
}

// TestAgainstStdlibReference cross-checks every algorithm against
// sort.Slice on randomized inputs. Byte order equals the total order here
// because keys are big-endian prefixes.
func TestAgainstStdlibReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(600)
		z := []int{16, 24, 64}[rng.Intn(3)]
		src := record.Make(n, z)
		for i := 0; i < n; i++ {
			// Mix tiny key ranges (many ties) with full-range keys.
			var k uint64
			if rng.Intn(2) == 0 {
				k = uint64(rng.Intn(4))
			} else {
				k = rng.Uint64()
			}
			src.SetKey(i, k)
			for off := record.KeyBytes; off+8 <= z; off += 8 {
				binary.BigEndian.PutUint64(src.Record(i)[off:], uint64(rng.Int63n(3)))
			}
		}
		want := referenceSort(src)
		for _, alg := range []Algorithm{Intro, Radix, Heap} {
			dst := record.Make(n, z)
			SortIntoAlg(dst, src, alg)
			if !bytes.Equal(dst.Data, want.Data) {
				t.Fatalf("trial %d n=%d z=%d %v: differs from stdlib reference", trial, n, z, alg)
			}
		}
		// Merging detected runs must also match.
		if n > 0 {
			dst := record.Make(n, z)
			MergeRunsInto(dst, src, DetectRuns(src))
			if !bytes.Equal(dst.Data, want.Data) {
				t.Fatalf("trial %d: run-merge differs from stdlib reference", trial)
			}
		}
	}
}

// FuzzSortInto lets `go test -fuzz` explore raw key streams; under plain
// `go test` only the seed corpus runs.
func FuzzSortInto(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 8, 7, 6, 5, 4, 3, 2, 1})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		n := len(raw) / 16
		if n == 0 {
			return
		}
		src := record.NewSlice(append([]byte(nil), raw[:n*16]...), 16)
		want := referenceSort(src)
		for _, alg := range []Algorithm{Intro, Radix, Heap} {
			dst := record.Make(n, 16)
			SortIntoAlg(dst, src, alg)
			if !bytes.Equal(dst.Data, want.Data) {
				t.Fatalf("%v differs from reference on %d records", alg, n)
			}
		}
	})
}
