package sortalg

import (
	"testing"

	"colsort/internal/record"
)

// The sort stages run once per pipeline round; with a Scratch they must not
// touch the allocator in steady state. These tests pin that property so
// pooling cannot silently regress.

func TestScratchSortIntoAllocs(t *testing.T) {
	const n, z = 1 << 12, 64
	src := record.Make(n, z)
	dst := record.Make(n, z)
	record.Fill(src, record.Uniform{Seed: 7}, 0)
	for _, alg := range []Algorithm{Intro, Radix, Heap} {
		var sc Scratch
		sc.SortIntoAlg(dst, src, alg) // warm the scratch
		allocs := testing.AllocsPerRun(5, func() {
			sc.SortIntoAlg(dst, src, alg)
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs per warm SortIntoAlg, want 0", alg, allocs)
		}
		if !dst.IsSorted() {
			t.Fatalf("%v: output not sorted", alg)
		}
	}
}

func TestScratchMergeRunsIntoAllocs(t *testing.T) {
	const n, k, z = 1 << 12, 16, 16
	src := record.Make(n, z)
	record.Fill(src, record.Uniform{Seed: 3}, 0)
	for i := 0; i < k; i++ {
		Sort(src.Sub(i*n/k, (i+1)*n/k))
	}
	dst := record.Make(n, z)
	runs := ContiguousRuns(n, k)
	var sc Scratch
	sc.MergeRunsInto(dst, src, runs) // warm
	allocs := testing.AllocsPerRun(5, func() {
		sc.MergeRunsInto(dst, src, runs)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per warm MergeRunsInto, want 0", allocs)
	}
	if !dst.IsSorted() {
		t.Fatal("merge output not sorted")
	}
}

// TestScratchMatchesPackageLevel pins that the scratch-based paths produce
// byte-identical output to the allocating package-level entry points.
func TestScratchMatchesPackageLevel(t *testing.T) {
	const n, z = 1 << 10, 32
	src := record.Make(n, z)
	record.Fill(src, record.Uniform{Seed: 11}, 0)
	want := record.Make(n, z)
	got := record.Make(n, z)
	var sc Scratch
	for _, alg := range []Algorithm{Intro, Radix, Heap, Insertion} {
		SortIntoAlg(want, src, alg)
		sc.SortIntoAlg(got, src, alg)
		if string(got.Data) != string(want.Data) {
			t.Errorf("%v: scratch output differs from package-level output", alg)
		}
	}
}
