package sortalg

import (
	"fmt"

	"colsort/internal/record"
)

// Run describes a sorted subsequence of a record buffer: records at
// positions Start, Start+Stride, ..., Start+(Count-1)*Stride. The write
// patterns of columnsort passes leave each column as a set of such runs
// (contiguous runs after pass 1, stride-s interleaved runs after pass 2),
// and the next pass's sort stage exploits them by merging instead of
// sorting from scratch — the optimization footnote 5 of the paper describes.
type Run struct {
	Start, Stride, Count int
}

// validate panics on malformed run descriptors; these are always produced
// by pass planners, so errors are programmer bugs.
func (r Run) validate(n int) {
	if r.Count < 0 || r.Stride < 1 || r.Start < 0 {
		panic(fmt.Sprintf("sortalg: bad run %+v", r))
	}
	if r.Count > 0 && r.Start+(r.Count-1)*r.Stride >= n {
		panic(fmt.Sprintf("sortalg: run %+v exceeds buffer of %d records", r, n))
	}
}

// Contiguous returns the run descriptor for a plain sorted block [start,
// start+count).
func Contiguous(start, count int) Run { return Run{Start: start, Stride: 1, Count: count} }

// ContiguousRuns cuts n records into k equal contiguous runs.
func ContiguousRuns(n, k int) []Run {
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("sortalg: cannot cut %d records into %d equal runs", n, k))
	}
	runs := make([]Run, k)
	for i := range runs {
		runs[i] = Contiguous(i*(n/k), n/k)
	}
	return runs
}

// StridedRuns describes n records as k interleaved runs of stride k:
// run i is positions i, i+k, i+2k, .... This is the run structure left in
// each column by the reshape-transpose write of columnsort step 4.
func StridedRuns(n, k int) []Run {
	if k <= 0 || n%k != 0 {
		panic(fmt.Sprintf("sortalg: cannot view %d records as %d strided runs", n, k))
	}
	runs := make([]Run, k)
	for i := range runs {
		runs[i] = Run{Start: i, Stride: k, Count: n / k}
	}
	return runs
}

// DetectRuns scans s and returns its maximal ascending contiguous runs.
// Used when the run structure is not known statically.
func DetectRuns(s record.Slice) []Run {
	n := s.Len()
	if n == 0 {
		return nil
	}
	var runs []Run
	start := 0
	for i := 1; i < n; i++ {
		if s.Less(i, i-1) {
			runs = append(runs, Contiguous(start, i-start))
			start = i
		}
	}
	return append(runs, Contiguous(start, n-start))
}

// MergeRunsInto merges the sorted runs of src into dst in total order.
// The runs must cover src exactly (the merge checks total count only, since
// overlapping-run bugs surface immediately in sortedness tests). For k ≤ 2
// it uses direct merges; otherwise a loser tree. It allocates tree state
// per call; pipeline code should prefer Scratch.MergeRunsInto.
func MergeRunsInto(dst, src record.Slice, runs []Run) {
	var sc Scratch
	sc.MergeRunsInto(dst, src, runs)
}

func mergeCoverage(total, n int) string {
	return fmt.Sprintf("sortalg: runs cover %d of %d records", total, n)
}

// MergeInto merges two independently stored sorted slices a and b into dst.
// Used by the fused steps 5–8 boundary merges, where the two halves come
// from different columns (and often different processors).
func MergeInto(dst, a, b record.Slice) {
	if dst.Len() != a.Len()+b.Len() || dst.Size != a.Size || a.Size != b.Size {
		panic("sortalg: MergeInto size mismatch")
	}
	i, j, k := 0, 0, 0
	for i < a.Len() && j < b.Len() {
		if record.Compare(b, j, a, i) < 0 {
			dst.CopyRecord(k, b, j)
			j++
		} else {
			dst.CopyRecord(k, a, i)
			i++
		}
		k++
	}
	for ; i < a.Len(); i++ {
		dst.CopyRecord(k, a, i)
		k++
	}
	for ; j < b.Len(); j++ {
		dst.CopyRecord(k, b, j)
		k++
	}
}

func merge2(dst, src record.Slice, ra, rb Run) {
	ai, bi := 0, 0
	k := 0
	for ai < ra.Count && bi < rb.Count {
		pa := ra.Start + ai*ra.Stride
		pb := rb.Start + bi*rb.Stride
		if src.Less(pb, pa) {
			dst.CopyRecord(k, src, pb)
			bi++
		} else {
			dst.CopyRecord(k, src, pa)
			ai++
		}
		k++
	}
	for ; ai < ra.Count; ai++ {
		dst.CopyRecord(k, src, ra.Start+ai*ra.Stride)
		k++
	}
	for ; bi < rb.Count; bi++ {
		dst.CopyRecord(k, src, rb.Start+bi*rb.Stride)
		k++
	}
}

// loserTree is a tournament tree for k-way merging: internal nodes hold the
// loser of each match and node[0] holds the overall winner, giving
// ⌈log₂ k⌉ comparisons per extracted record — the standard structure for
// external-memory merge stages. The run count is padded to a power of two
// with permanently exhausted dummy runs so the tree is perfect and the
// leaf-to-parent arithmetic stays trivial. All arrays are caller-supplied
// (a Scratch lends its reusable buffers) so that a merge stage allocates
// nothing in steady state.
//
// Each node carries the loser's current 8-byte key prefix INLINE next to
// its run id, loaded once each time a run's front advances, and exhausted
// runs carry the maximal key. The common-case match is then one 16-byte
// node load and one uint64 compare — no pointer-chased record loads from a
// buffer arbitrarily larger than cache, no per-run indirection. Only key
// ties (including the genuine-maximal-key vs exhausted ambiguity) fall
// back to the rem/pos arrays and the record bytes. This is what keeps wide
// merges (k = 64) near the throughput of narrow ones.
type loserTree struct {
	src  record.Slice
	node []treeNode  // node[i≥1] = loser at internal node i; node[0] = winner
	cur  []runCursor // per-run cursor (position, remaining, stride)
	k    int         // padded (power-of-two) leaf count
}

// treeNode is one tournament entry: a run id and its current key prefix
// (record.MaxKey once the run is exhausted).
type treeNode struct {
	key uint64
	id  int32
}

// runCursor is one run's live state, packed into 16 bytes so a pop touches
// a single cache line of cursor state.
type runCursor struct {
	pos    int32 // current source position (records)
	rem    int32 // records remaining; 0 = exhausted (padding runs stay 0)
	stride int32 // cursor advance per pop
}

// init wires the tree onto the given state: node and cur must have length k
// (the power of two ≥ len(runs)).
func (t *loserTree) init(src record.Slice, runs []Run, node []treeNode, cur []runCursor, k int) {
	t.src, t.node, t.cur, t.k = src, node, cur, k
	for r := 0; r < k; r++ {
		t.cur[r] = runCursor{}
	}
	for r := range runs {
		if runs[r].Count == 0 {
			continue
		}
		t.cur[r] = runCursor{
			pos:    int32(runs[r].Start),
			rem:    int32(runs[r].Count),
			stride: int32(runs[r].Stride),
		}
	}
	// Full tournament initialization: internal node i has children 2i and
	// 2i+1; leaves are node indices k..2k-1 standing for runs 0..k-1
	// (padding leaves are permanently exhausted runs).
	t.node[0] = t.play(1)
}

// play recursively resolves the initial tournament below internal node i,
// storing losers and returning the winning entry.
func (t *loserTree) play(i int) treeNode {
	if i >= t.k {
		r := int32(i - t.k)
		if t.cur[r].rem == 0 {
			return treeNode{key: record.MaxKey, id: r}
		}
		return treeNode{key: t.src.Key(int(t.cur[r].pos)), id: r}
	}
	wl, wr := t.play(2*i), t.play(2*i+1)
	if t.beats(wl, wr) {
		t.node[i] = wr
		return wl
	}
	t.node[i] = wl
	return wr
}

// beats reports whether entry a's current record should be emitted before
// entry b's: by cached key prefix, with ties resolved by tieBeats.
func (t *loserTree) beats(a, b treeNode) bool {
	if a.key != b.key {
		return a.key < b.key
	}
	return t.tieBeats(a.id, b.id)
}

// tieBeats resolves a key-prefix tie between runs o and w: exhausted runs
// lose to everything (an exhausted run's sentinel key can tie a live
// maximal record, so liveness is re-checked here), live ties compare the
// full records, and exact duplicates break on run id for determinism.
func (t *loserTree) tieBeats(o, w int32) bool {
	co, cw := t.cur[o], t.cur[w]
	if co.rem == 0 {
		return false
	}
	if cw.rem == 0 {
		return true
	}
	c := record.Compare(t.src, int(co.pos), t.src, int(cw.pos))
	if c != 0 {
		return c < 0
	}
	return o < w
}

// replay pushes run w up from its leaf after its front record changed to
// wKey, swapping with stored losers that now beat it, and records the new
// winner. Each match is one node load and one uint64 compare; the swap is
// written branchlessly (the loser is stored unconditionally, the winner
// selected by conditional moves) because match outcomes on random data are
// inherently unpredictable and a mispredicted swap branch would dominate
// the compare itself.
func (t *loserTree) replay(w int32, wKey uint64) {
	node := t.node
	wk, wid := wKey, w
	for i := (int(w) + t.k) >> 1; i > 0; i >>= 1 {
		o := node[i]
		oBeats := o.key < wk
		if o.key == wk { // rare: prefix tie (or both exhausted)
			oBeats = t.tieBeats(o.id, wid)
		}
		lk, lid := o.key, o.id
		if oBeats {
			lk, lid = wk, wid
			wk, wid = o.key, o.id
		}
		node[i] = treeNode{key: lk, id: lid}
	}
	node[0] = treeNode{key: wk, id: wid}
}

// pop returns the source position of the next record in merge order and
// advances its run (reloading its cached key). Calling pop more times than
// there are records panics.
func (t *loserTree) pop() int {
	w := t.node[0].id
	c := &t.cur[w]
	if c.rem == 0 {
		panic("sortalg: loser tree exhausted")
	}
	p := int(c.pos)
	c.rem--
	key := record.MaxKey
	if c.rem > 0 {
		np := p + int(c.stride)
		c.pos = int32(np)
		key = t.src.Key(np)
	}
	t.replay(w, key)
	return p
}

// heapMergeRunsInto is a simple binary-heap k-way merge used as a reference
// implementation to cross-check the loser tree in tests.
func heapMergeRunsInto(dst, src record.Slice, runs []Run) {
	checkInto(dst, src)
	type cur struct{ run, next int }
	h := make([]cur, 0, len(runs))
	pos := func(c cur) int { return runs[c.run].Start + c.next*runs[c.run].Stride }
	lessCur := func(a, b cur) bool {
		c := record.Compare(src, pos(a), src, pos(b))
		if c != 0 {
			return c < 0
		}
		return a.run < b.run
	}
	var down func(i int)
	down = func(i int) {
		for {
			c := 2*i + 1
			if c >= len(h) {
				return
			}
			if c+1 < len(h) && lessCur(h[c+1], h[c]) {
				c++
			}
			if !lessCur(h[c], h[i]) {
				return
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	for r := range runs {
		if runs[r].Count > 0 {
			h = append(h, cur{run: r})
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		down(i)
	}
	k := 0
	for len(h) > 0 {
		top := h[0]
		dst.CopyRecord(k, src, pos(top))
		k++
		top.next++
		if top.next < runs[top.run].Count {
			h[0] = top
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		down(0)
	}
}
