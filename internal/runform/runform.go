// Package runform forms sorted runs from a record stream by heap-based
// replacement selection (Knuth TAOCP vol. 3 §5.4.1; Bender, McCauley,
// McGregor, Singh, Vu — "Run Generation Revisited").
//
// A Former holds a working set of `capacity` normalized records. It
// repeatedly emits the record that extends the current run, refills the
// freed slot from the input, and defers records that would break the run
// to the next one. On random input this yields runs of expected length
// ~2×capacity (vs exactly capacity for fixed batches); on already-sorted
// input it yields a single run.
//
// Runs may be ascending or descending: before each run starts, the
// key-step tally of the arrivals observed since the previous run began
// picks the direction, and descending needs a decisive supermajority of
// downward steps — so monotonically decreasing inputs (the mirror of the
// nearly-sorted production case) collapse to one run, while random input
// always forms ascending runs. The supermajority matters: on random input
// the direction signal is a coin flip, and alternating run directions cuts
// the expected run length from 2×capacity to 1.5×capacity (Knuth §5.4.1).
// Descending runs are spilled as written and consumed through a reversed
// run reader downstream; the Former itself only guarantees each run is
// monotone in its declared direction.
//
// All comparisons happen in normalized key space: records are memcmp-
// ordered after KeySpec encoding, and the cached 8-byte big-endian key
// prefix resolves almost every heap comparison without touching the
// record bytes (the same prefix discipline as the merge loser tree).
package runform

import (
	"bytes"
	"encoding/binary"

	"colsort/internal/record"
)

// Former produces maximal sorted runs from a record stream via replacement
// selection. It is single-goroutine; the caller drives it with NextRun /
// Fill and must Close it to return the pooled arena.
type Former struct {
	z        int
	capacity int
	pool     *record.Pool
	read     func(rec []byte) (bool, error)

	arena record.Slice // the capacity resident records, indexed by slot
	keys  []uint64     // cached 8-byte big-endian prefix per slot

	heap    []int32 // slots of the current run, ordered by (prefix, full bytes)
	pending []int32 // arrivals deferred to the next run (they would break this one)

	desc     bool   // current run emits in descending order
	last     []byte // copy of the record most recently emitted into the current run
	haveLast bool

	// Direction heuristic state: up/down key steps between consecutive
	// arrivals since the previous run started (the initial fill, for run 1).
	// The next run goes descending only on a decisive supermajority of
	// downward steps; anything noisier defaults to ascending.
	ups, downs int64
	prevKey    uint64
	haveSeen   bool

	eof      bool
	started  bool
	consumed int64
}

// New builds a Former over a record stream. capacity is the number of
// resident records (the replacement-selection heap size), z the record size
// in bytes. read fills rec with the next input record, returning false at
// end of stream; records must already be in normalized (memcmp-ordered) key
// space. The arena is taken from pool (which may be nil).
func New(capacity, z int, pool *record.Pool, read func(rec []byte) (bool, error)) *Former {
	if capacity < 1 {
		capacity = 1
	}
	f := &Former{
		z:        z,
		capacity: capacity,
		pool:     pool,
		read:     read,
		keys:     make([]uint64, capacity),
		heap:     make([]int32, 0, capacity),
		pending:  make([]int32, 0, capacity),
		last:     make([]byte, z),
	}
	f.arena = pool.Get(capacity, z)
	return f
}

// Close returns the arena to the pool. The Former must not be used after.
func (f *Former) Close() {
	if f.arena.Data != nil {
		f.pool.Put(f.arena)
		f.arena = record.Slice{}
	}
}

// Consumed reports how many records have been read from the input so far.
func (f *Former) Consumed() int64 { return f.consumed }

// readInto refills slot from the input, caching its key prefix and feeding
// the direction heuristic. Returns false (and latches eof) at end of stream.
func (f *Former) readInto(slot int32) (bool, error) {
	rec := f.arena.Record(int(slot))
	ok, err := f.read(rec)
	if err != nil {
		return false, err
	}
	if !ok {
		f.eof = true
		return false, nil
	}
	k := binary.BigEndian.Uint64(rec)
	f.keys[slot] = k
	if f.haveSeen {
		if k > f.prevKey {
			f.ups++
		} else if k < f.prevKey {
			f.downs++
		}
	}
	f.prevKey = k
	f.haveSeen = true
	f.consumed++
	return true, nil
}

// NextRun starts the next run, choosing its direction from the arrival
// drift, and returns that direction. ok is false when the input is
// exhausted and every resident record has been emitted.
func (f *Former) NextRun() (desc, ok bool, err error) {
	if !f.started {
		f.started = true
		for i := 0; i < f.capacity && !f.eof; i++ {
			ok, err := f.readInto(int32(i))
			if err != nil {
				return false, false, err
			}
			if !ok {
				break
			}
			f.pending = append(f.pending, int32(i))
		}
	}
	if len(f.pending) == 0 {
		return false, false, nil
	}
	f.desc = f.downs > 4*f.ups
	f.ups, f.downs, f.haveSeen = 0, 0, false
	f.heap, f.pending = f.pending, f.heap[:0]
	f.heapify()
	f.haveLast = false
	return f.desc, true, nil
}

// Fill emits up to out.Len() records of the current run, in the run's
// direction, replacing each emitted record from the input. It returns 0
// when the run is complete (call NextRun for the next one).
func (f *Former) Fill(out record.Slice) (int, error) {
	n := 0
	for n < out.Len() && len(f.heap) > 0 {
		slot := f.heap[0]
		rec := f.arena.Record(int(slot))
		copy(out.Record(n), rec)
		copy(f.last, rec)
		f.haveLast = true
		n++
		if !f.eof {
			ok, err := f.readInto(slot)
			if err != nil {
				return n, err
			}
			if ok {
				if f.extends(f.arena.Record(int(slot))) {
					// The arrival replaces the emitted root in place.
					f.siftDown(0)
					continue
				}
				f.pending = append(f.pending, slot)
			}
		}
		// Pop the root: the slot now belongs to pending (or is dead at EOF).
		top := len(f.heap) - 1
		f.heap[0] = f.heap[top]
		f.heap = f.heap[:top]
		if len(f.heap) > 1 {
			f.siftDown(0)
		}
	}
	return n, nil
}

// BreakRun force-ends the current run: every resident record is deferred
// to the next run, so the next Fill returns 0. Callers use it to bound run
// length when each spilled run must also be retained in memory for redo.
func (f *Former) BreakRun() {
	f.pending = append(f.pending, f.heap...)
	f.heap = f.heap[:0]
}

// extends reports whether rec can join the current run after the last
// emitted record without violating the run's direction.
func (f *Former) extends(rec []byte) bool {
	if !f.haveLast {
		return true
	}
	k := binary.BigEndian.Uint64(rec)
	lk := binary.BigEndian.Uint64(f.last)
	if k != lk {
		if f.desc {
			return k < lk
		}
		return k > lk
	}
	c := bytes.Compare(rec, f.last)
	if f.desc {
		return c <= 0
	}
	return c >= 0
}

// less orders two slots by the current run's direction: cached prefixes
// first, full normalized bytes only on prefix ties.
func (f *Former) less(a, b int32) bool {
	ka, kb := f.keys[a], f.keys[b]
	if ka != kb {
		if f.desc {
			return ka > kb
		}
		return ka < kb
	}
	c := bytes.Compare(f.arena.Record(int(a)), f.arena.Record(int(b)))
	if f.desc {
		return c > 0
	}
	return c < 0
}

func (f *Former) heapify() {
	for i := len(f.heap)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
}

func (f *Former) siftDown(i int) {
	h := f.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && f.less(h[r], h[l]) {
			m = r
		}
		if !f.less(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
