package runform

import (
	"bytes"
	"errors"
	"sort"
	"testing"

	"colsort/internal/record"
)

// sliceReader feeds the records of s to a Former one at a time.
func sliceReader(s record.Slice) func(rec []byte) (bool, error) {
	i := 0
	return func(rec []byte) (bool, error) {
		if i >= s.Len() {
			return false, nil
		}
		copy(rec, s.Record(i))
		i++
		return true, nil
	}
}

type formedRun struct {
	desc bool
	recs record.Slice
}

// formAll drives a Former to exhaustion and returns every run it emits.
func formAll(t *testing.T, capacity int, in record.Slice) []formedRun {
	t.Helper()
	f := New(capacity, in.Size, nil, sliceReader(in))
	defer f.Close()
	buf := record.Make(64, in.Size)
	var runs []formedRun
	for {
		desc, ok, err := f.NextRun()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		var out bytes.Buffer
		for {
			n, err := f.Fill(buf)
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				break
			}
			out.Write(buf.Sub(0, n).Data)
		}
		runs = append(runs, formedRun{desc: desc, recs: record.NewSlice(out.Bytes(), in.Size)})
	}
	if got := f.Consumed(); got != int64(in.Len()) {
		t.Fatalf("Consumed() = %d, want %d", got, in.Len())
	}
	return runs
}

// checkRuns verifies every run is monotone in its declared direction and
// that the emitted multiset is exactly the input.
func checkRuns(t *testing.T, in record.Slice, runs []formedRun) {
	t.Helper()
	total := 0
	var all bytes.Buffer
	for i, r := range runs {
		if r.recs.Len() == 0 {
			t.Fatalf("run %d is empty", i)
		}
		for j := 1; j < r.recs.Len(); j++ {
			c := bytes.Compare(r.recs.Record(j-1), r.recs.Record(j))
			if r.desc && c < 0 {
				t.Fatalf("run %d (descending) ascends at record %d", i, j)
			}
			if !r.desc && c > 0 {
				t.Fatalf("run %d (ascending) descends at record %d", i, j)
			}
		}
		total += r.recs.Len()
		all.Write(r.recs.Data)
	}
	if total != in.Len() {
		t.Fatalf("runs hold %d records, input had %d", total, in.Len())
	}
	got := record.NewSlice(all.Bytes(), in.Size)
	ref := record.Make(in.Len(), in.Size)
	ref.Copy(in)
	sortSlice(got)
	sortSlice(ref)
	if !bytes.Equal(got.Data, ref.Data) {
		t.Fatal("emitted records are not a permutation of the input")
	}
}

func sortSlice(s record.Slice) {
	n := s.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(s.Record(idx[a]), s.Record(idx[b])) < 0
	})
	out := record.Make(n, s.Size)
	for i, j := range idx {
		out.CopyRecord(i, s, j)
	}
	copy(s.Data, out.Data)
}

// TestRandomRunsNearTwiceCapacity pins the headline property: on random
// input, replacement selection forms runs averaging ~2× the heap capacity,
// so clearly fewer runs than the n/capacity fixed batches.
func TestRandomRunsNearTwiceCapacity(t *testing.T) {
	const n, capacity, z = 10000, 500, 16
	in := record.Make(n, z)
	record.Fill(in, record.Uniform{Seed: 42}, 0)
	runs := formAll(t, capacity, in)
	checkRuns(t, in, runs)
	fixed := n / capacity // 20
	if len(runs) > fixed*65/100 {
		t.Fatalf("random input formed %d runs; want ≤ 0.65× the %d fixed batches", len(runs), fixed)
	}
}

// TestSortedInputSingleAscendingRun: already-sorted input must collapse to
// one ascending run regardless of capacity.
func TestSortedInputSingleAscendingRun(t *testing.T) {
	const n, z = 5000, 16
	in := record.Make(n, z)
	record.Fill(in, record.Sorted{}, 0)
	runs := formAll(t, 64, in)
	checkRuns(t, in, runs)
	if len(runs) != 1 || runs[0].desc {
		t.Fatalf("sorted input formed %d runs (desc=%v), want 1 ascending", len(runs), runs[0].desc)
	}
}

// TestReverseInputSingleDescendingRun: strictly descending input must be
// detected by the direction heuristic and collapse to one descending run.
func TestReverseInputSingleDescendingRun(t *testing.T) {
	const n, z = 5000, 16
	in := record.Make(n, z)
	for i := 0; i < n; i++ {
		in.SetKey(i, uint64(n-i))
	}
	runs := formAll(t, 64, in)
	checkRuns(t, in, runs)
	if len(runs) != 1 || !runs[0].desc {
		t.Fatalf("descending input formed %d runs, want 1 descending", len(runs))
	}
}

// TestNearlySortedStaysFewRuns: bounded-displacement disorder smaller than
// the heap is absorbed entirely (the emitted frontier trails the arrival
// frontier by ~capacity positions).
func TestNearlySortedStaysFewRuns(t *testing.T) {
	const n, z = 8000, 16
	in := record.Make(n, z)
	record.Fill(in, record.Disordered{Seed: 7, K: 32}, 0)
	runs := formAll(t, 256, in)
	checkRuns(t, in, runs)
	if len(runs) > 2 {
		t.Fatalf("k-disordered input (k≪capacity) formed %d runs, want ≤ 2", len(runs))
	}
}

// TestHeavyDuplicates: a tiny key universe must not break runs — equal
// records always extend (ties are ≥ / ≤, not strict).
func TestHeavyDuplicates(t *testing.T) {
	const n, z = 4000, 16
	in := record.Make(n, z)
	record.Fill(in, record.Dup{Seed: 3, K: 2}, 0)
	runs := formAll(t, 128, in)
	checkRuns(t, in, runs)
	if len(runs) > n/128 {
		t.Fatalf("duplicate-heavy input formed %d runs, want fewer than the %d fixed batches", len(runs), n/128)
	}
}

// TestEdgeSizes covers capacity ≥ n (one run), capacity 1 (degenerate),
// and an empty input (no runs).
func TestEdgeSizes(t *testing.T) {
	const z = 16
	in := record.Make(100, z)
	record.Fill(in, record.Uniform{Seed: 9}, 0)

	runs := formAll(t, 1000, in)
	checkRuns(t, in, runs)
	if len(runs) != 1 {
		t.Fatalf("capacity ≥ n formed %d runs, want 1", len(runs))
	}

	runs = formAll(t, 1, in)
	checkRuns(t, in, runs)

	empty := record.Make(0, z)
	f := New(8, z, nil, sliceReader(empty))
	defer f.Close()
	if _, ok, err := f.NextRun(); err != nil || ok {
		t.Fatalf("empty input: NextRun = (ok=%v, err=%v), want no run", ok, err)
	}
}

// TestReadErrorPropagates: input failures surface from NextRun (initial
// fill) and Fill (steady state) without corrupting internal state.
func TestReadErrorPropagates(t *testing.T) {
	boom := errors.New("input exploded")
	const z = 16
	fail := func(rec []byte) (bool, error) { return false, boom }
	f := New(8, z, nil, fail)
	defer f.Close()
	if _, _, err := f.NextRun(); !errors.Is(err, boom) {
		t.Fatalf("NextRun err = %v, want the input's error", err)
	}

	in := record.Make(50, z)
	record.Fill(in, record.Uniform{Seed: 1}, 0)
	next := sliceReader(in)
	n := 0
	flaky := func(rec []byte) (bool, error) {
		if n == 20 {
			return false, boom
		}
		n++
		return next(rec)
	}
	f2 := New(8, z, nil, flaky)
	defer f2.Close()
	if _, ok, err := f2.NextRun(); err != nil || !ok {
		t.Fatalf("NextRun = (ok=%v, err=%v), want a run", ok, err)
	}
	buf := record.Make(64, z)
	for {
		m, err := f2.Fill(buf)
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("Fill err = %v, want the input's error", err)
			}
			return
		}
		if m == 0 { // run boundary before the error point: start the next run
			if _, ok, err := f2.NextRun(); err != nil || !ok {
				t.Fatalf("NextRun = (ok=%v, err=%v) before the input's error surfaced", ok, err)
			}
		}
	}
}
