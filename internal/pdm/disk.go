// Package pdm implements the Parallel Disk Model substrate: D simulated
// disks attached to P processors, per-processor striped disk arrays, and the
// on-disk r×s record matrix layouts used by out-of-core columnsort.
//
// The paper's cluster has D ≥ P disks, each attached to one node; processor
// j owns the D/P disks it accesses, and each column is stored contiguously
// on the disks owned by a single processor (Section 2). Disks here are
// either memory-backed (fast, for tests and benchmarks) or file-backed
// (genuinely out-of-core); both are instrumented so that every transferred
// byte and every discontiguous access is counted into sim.Counters.
package pdm

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"

	"colsort/internal/record"
)

// ErrNoSpace reports a write that failed because the filesystem is out of
// space (ENOSPC) or over quota (EDQUOT). It is classified permanent at the
// source: retrying a full disk burns the whole backoff budget to arrive at
// the same failure, and a batch redo re-spills into the same full
// filesystem. Jobs should fail fast with this sentinel instead.
var ErrNoSpace = errors.New("pdm: no space left on device")

// isNoSpace matches the out-of-space errno family through any wrapping.
func isNoSpace(err error) bool {
	return errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT)
}

// Disk is one simulated disk: a flat byte address space with sparse
// semantics (reads beyond the written extent return zeros, as with POSIX
// sparse files).
type Disk interface {
	ReadAt(p []byte, off int64) error
	WriteAt(p []byte, off int64) error
	Size() int64
	Close() error
}

// MemDisk is a growable in-memory disk. When pool is set, the backing
// array is drawn from (and on Close returned to) that pool, so the
// create-per-pass store lifecycle recycles disk backings instead of
// allocating — and zeroing — tens of megabytes per pass.
type MemDisk struct {
	data []byte
	pool *record.Pool
}

// NewMemDisk returns an empty memory-backed disk.
func NewMemDisk() *MemDisk { return &MemDisk{} }

// NewPooledMemDisk returns an empty memory disk whose backing cycles
// through pool.
func NewPooledMemDisk(pool *record.Pool) *MemDisk { return &MemDisk{pool: pool} }

// ReadAt copies from the disk into p, zero-filling beyond the extent.
func (d *MemDisk) ReadAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("pdm: negative offset %d", off)
	}
	n := 0
	if off < int64(len(d.data)) {
		n = copy(p, d.data[off:])
	}
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	return nil
}

// WriteAt copies p onto the disk, growing it as needed. Growth doubles the
// backing capacity so a sequence of extending writes (the append-heavy
// arrival-order write pattern of every pass) costs amortized O(1) copies
// per byte instead of re-copying the whole extent each time. An extending
// write zeroes only the gap between the old extent and off — the extension
// p covers is about to be overwritten, and zeroing it first would charge
// every appended byte a second memory pass.
func (d *MemDisk) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("pdm: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(d.data)) {
		old := int64(len(d.data))
		if end <= int64(cap(d.data)) {
			d.data = d.data[:end]
		} else {
			newCap := 2 * int64(cap(d.data))
			if newCap < end {
				newCap = end
			}
			var grown []byte
			if d.pool != nil {
				grown = d.pool.GetBytes(int(newCap))[:end]
			} else {
				grown = make([]byte, end, newCap)
			}
			copy(grown, d.data)
			if d.pool != nil {
				d.pool.PutBytes(d.data[:cap(d.data)])
			}
			d.data = grown
		}
		// Zero only the gap between the old extent and off: the extension
		// p covers is overwritten below, and pooled (or in-cap) memory may
		// be dirty. Reads beyond the extent zero-fill in ReadAt.
		if off > old {
			gap := d.data[old:off]
			for i := range gap {
				gap[i] = 0
			}
		}
	}
	copy(d.data[off:end], p)
	return nil
}

// Size returns the written extent in bytes.
func (d *MemDisk) Size() int64 { return int64(len(d.data)) }

// Close releases the backing storage, recycling it into the pool when the
// disk is pool-backed.
func (d *MemDisk) Close() error {
	if d.pool != nil && d.data != nil {
		d.pool.PutBytes(d.data)
	}
	d.data = nil
	return nil
}

// FileDisk is a disk backed by one file, for genuinely out-of-core runs.
type FileDisk struct {
	f    *os.File
	keep bool // Close leaves the file on disk (checkpointed spill runs)
}

// NewFileDisk creates (or truncates) the file at path.
func NewFileDisk(path string) (*FileDisk, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("pdm: %w", err)
	}
	return &FileDisk{f: f}, nil
}

// NewKeepFileDisk creates (or truncates) the file at path, like NewFileDisk,
// but Close leaves the file behind: the durability unit of a checkpointed
// sort, whose spilled runs must survive the process so a resume can reopen
// them.
func NewKeepFileDisk(path string) (*FileDisk, error) {
	d, err := NewFileDisk(path)
	if err != nil {
		return nil, err
	}
	d.keep = true
	return d, nil
}

// OpenFileDisk opens an EXISTING file at path read-write without
// truncating, keep-on-close — the resume path's reopen of a spilled run
// that a previous process wrote and fsync'd.
func OpenFileDisk(path string) (*FileDisk, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pdm: %w", err)
	}
	return &FileDisk{f: f, keep: true}, nil
}

// ReadAt reads from the file, zero-filling beyond EOF.
func (d *FileDisk) ReadAt(p []byte, off int64) error {
	n, err := d.f.ReadAt(p, off)
	if err != nil {
		if !errors.Is(err, os.ErrClosed) && n < len(p) && isEOF(err) {
			for i := n; i < len(p); i++ {
				p[i] = 0
			}
			return nil
		}
		return fmt.Errorf("pdm: read %s: %w", d.f.Name(), err)
	}
	return nil
}

// isEOF matches io.EOF through any wrapping (a string comparison would
// misclassify wrapped EOFs, turning a benign short read into a hard error).
func isEOF(err error) bool { return errors.Is(err, io.EOF) }

// WriteAt writes to the file at the given offset (sparse growth). An
// out-of-space failure is classified permanent and carries ErrNoSpace, so
// the retry layer fails fast instead of backing off against a full disk.
func (d *FileDisk) WriteAt(p []byte, off int64) error {
	if _, err := d.f.WriteAt(p, off); err != nil {
		if isNoSpace(err) {
			return MarkPermanent(fmt.Errorf("pdm: write %s: %w (%v)", d.f.Name(), ErrNoSpace, err))
		}
		return fmt.Errorf("pdm: write %s: %w", d.f.Name(), err)
	}
	return nil
}

// Size returns the current file size.
func (d *FileDisk) Size() int64 {
	info, err := d.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

// Path returns the backing file's path.
func (d *FileDisk) Path() string { return d.f.Name() }

// Sync flushes the file's dirty pages to stable storage — the fsync point
// a manifest entry depends on before it may claim the run durable.
func (d *FileDisk) Sync() error {
	if err := d.f.Sync(); err != nil {
		return fmt.Errorf("pdm: sync %s: %w", d.f.Name(), err)
	}
	return nil
}

// Close closes and removes the backing file; simulated disks own scratch
// space, so nothing should outlive the run. Keep-on-close disks (see
// NewKeepFileDisk) only close: their files are checkpoint state that a
// resume must find.
func (d *FileDisk) Close() error {
	name := d.f.Name()
	if err := d.f.Close(); err != nil {
		return err
	}
	if d.keep {
		return nil
	}
	return os.Remove(name)
}

// FaultDisk wraps a Disk and fails every operation after a byte budget is
// exhausted, for failure-injection tests.
type FaultDisk struct {
	Inner  Disk
	Budget int64 // bytes of traffic allowed before failures begin
	used   int64
}

// ErrInjected is the failure returned by an exhausted FaultDisk.
var ErrInjected = errors.New("pdm: injected disk fault")

func (d *FaultDisk) ReadAt(p []byte, off int64) error {
	if d.used += int64(len(p)); d.used > d.Budget {
		return ErrInjected
	}
	return d.Inner.ReadAt(p, off)
}

func (d *FaultDisk) WriteAt(p []byte, off int64) error {
	if d.used += int64(len(p)); d.used > d.Budget {
		return ErrInjected
	}
	return d.Inner.WriteAt(p, off)
}

func (d *FaultDisk) Size() int64  { return d.Inner.Size() }
func (d *FaultDisk) Close() error { return d.Inner.Close() }

// Backend constructs the disks of one machine.
type Backend interface {
	// NewDisk creates disk number idx (0 ≤ idx < D).
	NewDisk(idx int) (Disk, error)
	// Name identifies the backend in reports.
	Name() string
}

// MemBackend builds memory disks. When Pools is set (Machine wires its
// per-processor pools in), each disk's backing array cycles through the
// pool of the processor owning it.
type MemBackend struct {
	Pools []*record.Pool
}

func (b MemBackend) NewDisk(idx int) (Disk, error) {
	if len(b.Pools) > 0 {
		return NewPooledMemDisk(b.Pools[idx%len(b.Pools)]), nil
	}
	return NewMemDisk(), nil
}
func (MemBackend) Name() string { return "mem" }

// FileBackend builds file disks under Dir. Several stores (input, the
// intermediate file of each pass, output) coexist on the same simulated
// hardware, so each created disk gets a unique generation suffix — without
// it a new store would truncate a live one's backing files. Prefix, when
// non-empty, leads every created file's name: an engine serving concurrent
// jobs from one scratch directory namespaces each job's scratch with it, so
// the jobs can never collide and any leftover file names its job.
type FileBackend struct {
	Dir    string
	Prefix string
	// Keep makes every created disk keep-on-close (see NewKeepFileDisk):
	// the backend of a checkpointed job, whose spilled runs are durable
	// state rather than scratch.
	Keep bool
}

var fileDiskSeq atomic.Int64

func (b FileBackend) NewDisk(idx int) (Disk, error) {
	if err := os.MkdirAll(b.Dir, 0o755); err != nil {
		return nil, err
	}
	for {
		gen := fileDiskSeq.Add(1)
		path := filepath.Join(b.Dir, fmt.Sprintf("%sdisk%03d-g%05d.dat", b.Prefix, idx, gen))
		if b.Keep {
			// A keep backend's directory outlives the process: a resumed job
			// forms new runs beside runs a DEAD process left, and the fresh
			// generation counter must not truncate one of those survivors.
			if _, err := os.Lstat(path); err == nil {
				continue
			}
			return NewKeepFileDisk(path)
		}
		return NewFileDisk(path)
	}
}
func (b FileBackend) Name() string { return "file" }

// Namespaced returns a copy of the backend whose disks carry the given
// scratch-file name prefix (see FileBackend.Prefix).
func (b FileBackend) Namespaced(prefix string) Backend {
	b.Prefix = prefix
	return b
}

// Namespacer is implemented by backends whose scratch lives in a shared
// location and can be namespaced per client. Backends without shareable
// scratch (MemBackend) simply don't implement it.
type Namespacer interface {
	// Namespaced returns a backend equivalent to the receiver whose
	// created disks are identifiable by (and cannot collide outside of)
	// the given namespace prefix.
	Namespaced(prefix string) Backend
}

// DiskFile walks a wrapped disk stack — async, retry, chaos, delay and
// fault layers in any order — down to its backing *FileDisk. It returns nil
// when the stack bottoms out on anything else (a MemDisk): the caller's
// durability machinery has nothing to persist there.
func DiskFile(d Disk) *FileDisk {
	for d != nil {
		switch v := d.(type) {
		case *FileDisk:
			return v
		case *AsyncDisk:
			d = v.inner
		case *RetryDisk:
			d = v.inner
		case *ChaosDisk:
			d = v.inner
		case *DelayDisk:
			d = v.Inner
		case *FaultDisk:
			d = v.Inner
		default:
			return nil
		}
	}
	return nil
}

// DiskPath returns the backing file path of a (possibly wrapped) file
// disk, or "" when the disk is not file-backed.
func DiskPath(d Disk) string {
	if fd := DiskFile(d); fd != nil {
		return fd.Path()
	}
	return ""
}

// SyncDisk makes everything written to d durable: any write-behind layer is
// flushed first (draining deferred writes and surfacing their first error),
// then the backing file is fsync'd. Memory-backed stacks flush but skip the
// fsync — there is no stable storage to reach. This is the fsync point a
// run manifest entry depends on: only after SyncDisk returns may an entry
// claim the run's bytes durable.
func SyncDisk(d Disk) error {
	if f, ok := d.(Flusher); ok {
		if err := f.Flush(); err != nil {
			return err
		}
	}
	if fd := DiskFile(d); fd != nil {
		return fd.Sync()
	}
	return nil
}

// JobScratchPrefix is the canonical scratch-file namespace of engine job
// id — the contract between the engine (which namespaces each job's
// machine with it) and the leak checkers (which assert a finished job left
// nothing carrying it behind).
func JobScratchPrefix(id int64) string { return fmt.Sprintf("job%05d-", id) }
