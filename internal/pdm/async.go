package pdm

import (
	"fmt"
	"sync"
	"time"

	"colsort/internal/record"
)

// This file is the asynchronous I/O layer of the PDM substrate: AsyncDisk
// overlaps a disk's service time with the computation of the pass that
// drives it, the way the paper's threaded implementation dedicates I/O
// threads per disk. Reads are overlapped by PREFETCH: the passes know their
// exact future access sequence (the round → column maps compiled in
// internal/core's pattern plans), hint it ahead, and a background worker
// stages the extents so the blocking ReadAt becomes a copy. Writes are
// overlapped by WRITE-BEHIND: WriteAt snapshots the caller's buffer into a
// bounded queue and returns, and the worker retires the queue in issue
// order; callers observe deferred write errors on every later operation, on
// Flush, and on Close.
//
// I/O accounting is unaffected by the layer on purpose: DiskArray charges
// sim.Counters when an operation is ISSUED (bytes and contiguity of the
// logical access pattern), while AsyncDisk only moves the COMPLETION of the
// physical transfer off the issuing goroutine. A sync and an async run of
// the same pass therefore report identical operation counts.

// Prefetcher is implemented by disks that accept read-ahead hints. Hints
// are advisory: a disk may drop them (bounded buffering), and correctness
// never depends on a hint being served.
type Prefetcher interface {
	Prefetch(off int64, n int)
}

// Flusher is implemented by disks whose writes may complete asynchronously.
// Flush blocks until every write issued so far has reached the underlying
// disk and returns the first deferred write error, if any.
type Flusher interface {
	Flush() error
}

// AsyncConfig sizes the per-disk queues of the asynchronous I/O layer.
type AsyncConfig struct {
	// ReadAhead is the maximum number of prefetched extents staged per
	// disk; further hints are dropped. ≤0 selects DefaultReadAhead.
	ReadAhead int
	// WriteBehind is the maximum number of buffered write operations per
	// disk; a full queue applies back-pressure to WriteAt. ≤0 selects
	// DefaultWriteBehind.
	WriteBehind int
	// Pool, when non-nil, supplies the prefetch staging and write-behind
	// snapshot buffers. Machine wires each disk to its owning processor's
	// record pool, so the buffers survive the per-pass store lifecycle
	// (stores — and their AsyncDisks — are created and closed once per
	// pass, and a per-disk free list would be cold every time). A nil Pool
	// falls back to a disk-local free list.
	Pool *record.Pool
}

// Default queue depths: enough to keep one column extent in flight per
// direction ahead of the pipeline (a column is split into a handful of
// stripe-sized chunks) without growing memory beyond a few stripes.
const (
	DefaultReadAhead   = 8
	DefaultWriteBehind = 16
)

func (c AsyncConfig) withDefaults() AsyncConfig {
	if c.ReadAhead <= 0 {
		c.ReadAhead = DefaultReadAhead
	}
	if c.WriteBehind <= 0 {
		c.WriteBehind = DefaultWriteBehind
	}
	return c
}

const (
	fetchQueued = iota
	fetchInFlight
	fetchDone
)

// fetch is one staged read-ahead extent, keyed by offset. doomed marks an
// entry invalidated (by an overlapping write, or claimed by a direct read)
// whose buffer the worker must discard rather than publish.
type fetch struct {
	off    int64
	data   []byte
	state  int
	doomed bool
}

type writeOp struct {
	off  int64
	data []byte
}

// AsyncDisk wraps a Disk with a single background worker providing
// prefetched reads and write-behind. It preserves the Disk contract:
//
//   - Writes complete in issue order, so later reads and Size observe a
//     prefix of the issued writes plus anything already flushed.
//   - ReadAt is coherent with pending writes: a read overlapping a queued
//     write waits for that write to retire first.
//   - The first deferred write error is latched and returned by every
//     subsequent WriteAt/ReadAt, by Flush, and by Close, so a failure can
//     not be silently dropped between pipeline rounds.
//
// An AsyncDisk is safe for concurrent use even when the wrapped disk is not
// (all inner access is serialized), which is what lets it wrap MemDisk and
// FaultDisk in tests as well as FileDisk in real runs.
type AsyncDisk struct {
	inner Disk
	cfg   AsyncConfig

	// ioMu serializes access to inner between the worker and direct reads,
	// modeling the single head of one disk.
	ioMu sync.Mutex

	mu      sync.Mutex
	cond    *sync.Cond
	writes  []writeOp // issue-order queue; writes[0] may be in flight
	werr    error     // first deferred write error, latched
	maxEnd  int64     // end of the furthest write ever queued
	fetches map[int64]*fetch
	fetchq  []*fetch // FIFO of queued fetches
	free    [][]byte // recycled staging buffers
	closing bool
	done    chan struct{}
}

// maxFreeAsyncBufs bounds the staging buffers an idle AsyncDisk retains.
const maxFreeAsyncBufs = 32

// NewAsyncDisk wraps inner and starts its worker. The caller must Close the
// AsyncDisk (which drains pending writes and closes inner).
func NewAsyncDisk(inner Disk, cfg AsyncConfig) *AsyncDisk {
	d := &AsyncDisk{
		inner:   inner,
		cfg:     cfg.withDefaults(),
		fetches: make(map[int64]*fetch),
		done:    make(chan struct{}),
	}
	d.cond = sync.NewCond(&d.mu)
	go d.worker()
	return d
}

// worker retires queued writes (in issue order, with priority) and serves
// queued prefetches. It exits only after Close is requested AND the write
// queue has drained, so Close never loses buffered data.
func (d *AsyncDisk) worker() {
	defer close(d.done)
	d.mu.Lock()
	for {
		if len(d.writes) > 0 {
			op := d.writes[0]
			d.mu.Unlock()
			d.ioMu.Lock()
			err := d.inner.WriteAt(op.data, op.off)
			d.ioMu.Unlock()
			d.mu.Lock()
			if err != nil && d.werr == nil {
				d.werr = err
			}
			copy(d.writes, d.writes[1:])
			d.writes[len(d.writes)-1] = writeOp{}
			d.writes = d.writes[:len(d.writes)-1]
			d.putBuf(op.data)
			d.cond.Broadcast()
			continue
		}
		if f := d.popFetch(); f != nil {
			f.state = fetchInFlight
			d.mu.Unlock()
			d.ioMu.Lock()
			err := d.inner.ReadAt(f.data, f.off)
			d.ioMu.Unlock()
			d.mu.Lock()
			if err != nil || f.doomed {
				d.discardFetch(f)
			} else {
				f.state = fetchDone
			}
			d.cond.Broadcast()
			continue
		}
		if d.closing {
			break
		}
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// popFetch returns the next live queued fetch, discarding doomed ones.
// Caller holds mu.
func (d *AsyncDisk) popFetch() *fetch {
	for len(d.fetchq) > 0 {
		f := d.fetchq[0]
		copy(d.fetchq, d.fetchq[1:])
		d.fetchq[len(d.fetchq)-1] = nil
		d.fetchq = d.fetchq[:len(d.fetchq)-1]
		if f.doomed {
			d.discardFetch(f)
			d.cond.Broadcast()
			continue
		}
		return f
	}
	return nil
}

// discardFetch releases a fetch entry's buffer and unmaps it — but only if
// the map still points at THIS entry: the offset may have been re-hinted
// after a direct read claimed and unmapped the old one. Caller holds mu.
func (d *AsyncDisk) discardFetch(f *fetch) {
	if cur, ok := d.fetches[f.off]; ok && cur == f {
		delete(d.fetches, f.off)
	}
	f.doomed = true
	if f.data != nil {
		d.putBuf(f.data)
		f.data = nil
	}
}

// overlapsPendingWrite reports whether [off, off+n) intersects any queued
// (or in-flight) write. Caller holds mu.
func (d *AsyncDisk) overlapsPendingWrite(off int64, n int) bool {
	end := off + int64(n)
	for _, op := range d.writes {
		if off < op.off+int64(len(op.data)) && op.off < end {
			return true
		}
	}
	return false
}

// Prefetch stages a background read of [off, off+n). Hints beyond the
// ReadAhead budget, duplicates, and hints shadowed by pending writes are
// dropped: correctness never depends on a hint.
func (d *AsyncDisk) Prefetch(off int64, n int) {
	if off < 0 || n <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closing || d.werr != nil {
		return
	}
	if _, ok := d.fetches[off]; ok {
		return
	}
	if len(d.fetches) >= d.cfg.ReadAhead {
		return
	}
	if d.overlapsPendingWrite(off, n) {
		return
	}
	f := &fetch{off: off, data: d.getBuf(n)}
	d.fetches[off] = f
	d.fetchq = append(d.fetchq, f)
	d.cond.Broadcast()
}

// ReadAt serves the read from a completed prefetch when one covers the
// range, waiting out any overlapping pending write first; otherwise it
// reads through. A consumed prefetch entry is released. Reads are
// guaranteed to observe every write issued before the read began: any wait
// (for a pending write or an in-flight fetch) loops back to the coherence
// check before a read-through, since new writes may have queued meanwhile.
func (d *AsyncDisk) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	for {
		for d.werr == nil && d.overlapsPendingWrite(off, len(p)) {
			d.cond.Wait()
		}
		if d.werr != nil {
			err := d.werr
			d.mu.Unlock()
			return err
		}
		f, ok := d.fetches[off]
		if !ok || f.doomed || len(f.data) < len(p) {
			break // no usable staged extent: read through
		}
		if f.state == fetchQueued {
			// Claim it: a direct read now beats waiting behind the worker's
			// queue. Unmap so the offset can be hinted again; the queue
			// entry is discarded (and its buffer recycled) when popped.
			f.doomed = true
			delete(d.fetches, off)
			break
		}
		if f.state == fetchDone {
			// A write overlapping this extent would have doomed it, so a
			// live done entry is coherent with the queue.
			copy(p, f.data[:len(p)])
			delete(d.fetches, f.off)
			d.putBuf(f.data)
			d.mu.Unlock()
			return nil
		}
		// In flight: wait for completion, then re-establish coherence —
		// a write may have arrived (and doomed the fetch) while we waited.
		for f.state == fetchInFlight && !f.doomed {
			d.cond.Wait()
		}
		if f.state == fetchDone && !f.doomed {
			copy(p, f.data[:len(p)])
			delete(d.fetches, f.off)
			d.putBuf(f.data)
			d.mu.Unlock()
			return nil
		}
	}
	d.mu.Unlock()
	d.ioMu.Lock()
	err := d.inner.ReadAt(p, off)
	d.ioMu.Unlock()
	return err
}

// WriteAt snapshots p into the write-behind queue and returns once queued.
// A full queue blocks (back-pressure bounds memory); a latched write error
// fails fast. Staged prefetches overlapping the range are invalidated.
func (d *AsyncDisk) WriteAt(p []byte, off int64) error {
	if off < 0 {
		return fmt.Errorf("pdm: negative offset %d", off)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	end := off + int64(len(p))
	for {
		if d.werr != nil {
			return d.werr
		}
		if d.closing {
			// Close may have raced a back-pressured writer: refuse rather
			// than enqueue data no worker will ever retire.
			return fmt.Errorf("pdm: write on closing async disk")
		}
		// Invalidate staged prefetches overlapping the range — re-run after
		// every wait, since a hint may be staged while we were blocked and
		// would otherwise serve pre-write data to a later read.
		for _, f := range d.fetches {
			if f.doomed {
				continue
			}
			if off < f.off+int64(len(f.data)) && f.off < end {
				if f.state == fetchInFlight {
					// The worker is filling the buffer: only mark it; the
					// completion path discards it.
					f.doomed = true
					delete(d.fetches, f.off)
				} else {
					d.discardFetch(f)
				}
			}
		}
		if len(d.writes) < d.cfg.WriteBehind {
			break
		}
		d.cond.Wait()
	}
	buf := d.getBuf(len(p))
	copy(buf, p)
	d.writes = append(d.writes, writeOp{off: off, data: buf})
	if end > d.maxEnd {
		d.maxEnd = end
	}
	d.cond.Broadcast()
	return nil
}

// Flush blocks until the write queue has drained and returns the first
// deferred write error.
func (d *AsyncDisk) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(d.writes) > 0 && d.werr == nil {
		d.cond.Wait()
	}
	return d.werr
}

// Size reflects both flushed and still-queued writes.
func (d *AsyncDisk) Size() int64 {
	d.mu.Lock()
	queued := d.maxEnd
	d.mu.Unlock()
	d.ioMu.Lock()
	flushed := d.inner.Size()
	d.ioMu.Unlock()
	if queued > flushed {
		return queued
	}
	return flushed
}

// Close drains pending writes, stops the worker, closes the wrapped disk,
// and surfaces any deferred write error — the last chance for a
// write-behind failure to be observed.
func (d *AsyncDisk) Close() error {
	d.mu.Lock()
	if d.closing {
		werr := d.werr
		d.mu.Unlock()
		<-d.done
		if werr != nil {
			return werr
		}
		return fmt.Errorf("pdm: async disk closed twice")
	}
	d.closing = true
	d.cond.Broadcast()
	d.mu.Unlock()
	<-d.done
	err := d.inner.Close()
	d.mu.Lock()
	werr := d.werr
	d.mu.Unlock()
	if werr != nil {
		return werr
	}
	return err
}

// getBuf returns a staging buffer of length n, preferring the shared
// record pool (warm across the per-pass disk lifecycle) over the
// disk-local free list. Caller holds mu; the pool's lock is a leaf.
func (d *AsyncDisk) getBuf(n int) []byte {
	if d.cfg.Pool != nil {
		return d.cfg.Pool.GetBytes(n)
	}
	for i := len(d.free) - 1; i >= 0; i-- {
		if cap(d.free[i]) >= n {
			buf := d.free[i][:n]
			d.free[i] = d.free[len(d.free)-1]
			d.free[len(d.free)-1] = nil
			d.free = d.free[:len(d.free)-1]
			return buf
		}
	}
	return make([]byte, n)
}

// putBuf recycles a staging buffer. Caller holds mu.
func (d *AsyncDisk) putBuf(b []byte) {
	if d.cfg.Pool != nil {
		d.cfg.Pool.PutBytes(b)
		return
	}
	if cap(b) == 0 || len(d.free) >= maxFreeAsyncBufs {
		return
	}
	d.free = append(d.free, b[:0])
}

// DelayConfig is the service-time model of one physical disk, used to make
// I/O cost visible on hardware whose page cache would otherwise hide it.
type DelayConfig struct {
	// Seek is charged on every discontiguous access (same rule as the
	// DiskReadOps/DiskWriteOps counters).
	Seek time.Duration
	// BytesPerSec is the sustained transfer rate; ≤0 disables the
	// transfer-time charge.
	BytesPerSec int64
}

// DelayDisk imposes DelayConfig's service time on every operation of the
// wrapped disk. Wrapped under an AsyncDisk it turns the overlap won by
// prefetch and write-behind into measurable wall-clock time — the
// laptop-scale stand-in for the reference machine's 40 MB/s SCSI disks —
// while the sync path pays the same charges inline. A DelayDisk must be
// driven by one goroutine at a time (DiskArray's single-owner rule, or
// AsyncDisk's serialization).
type DelayDisk struct {
	Inner Disk
	Cfg   DelayConfig

	lastRead  int64
	lastWrite int64
}

// NewDelayDisk wraps inner with the service-time model.
func NewDelayDisk(inner Disk, cfg DelayConfig) *DelayDisk {
	return &DelayDisk{Inner: inner, Cfg: cfg, lastRead: -1, lastWrite: -1}
}

func (d *DelayDisk) charge(n int, off int64, last *int64) {
	var t time.Duration
	if *last != off {
		t += d.Cfg.Seek
	}
	if d.Cfg.BytesPerSec > 0 {
		t += time.Duration(float64(n) / float64(d.Cfg.BytesPerSec) * float64(time.Second))
	}
	*last = off + int64(n)
	if t > 0 {
		time.Sleep(t)
	}
}

func (d *DelayDisk) ReadAt(p []byte, off int64) error {
	d.charge(len(p), off, &d.lastRead)
	return d.Inner.ReadAt(p, off)
}

func (d *DelayDisk) WriteAt(p []byte, off int64) error {
	d.charge(len(p), off, &d.lastWrite)
	return d.Inner.WriteAt(p, off)
}

func (d *DelayDisk) Size() int64  { return d.Inner.Size() }
func (d *DelayDisk) Close() error { return d.Inner.Close() }
