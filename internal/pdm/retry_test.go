package pdm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// flakyDisk fails its first failN operations (reads and writes combined)
// with err, then behaves like the inner MemDisk.
type flakyDisk struct {
	inner Disk
	err   error
	failN int
	ops   int
}

func (d *flakyDisk) step() error {
	d.ops++
	if d.ops <= d.failN {
		return d.err
	}
	return nil
}

func (d *flakyDisk) ReadAt(p []byte, off int64) error {
	if err := d.step(); err != nil {
		return err
	}
	return d.inner.ReadAt(p, off)
}

func (d *flakyDisk) WriteAt(p []byte, off int64) error {
	if err := d.step(); err != nil {
		return err
	}
	return d.inner.WriteAt(p, off)
}

func (d *flakyDisk) Size() int64  { return d.inner.Size() }
func (d *flakyDisk) Close() error { return d.inner.Close() }

func TestErrorClassification(t *testing.T) {
	base := errors.New("boom")
	if Transient(nil) || Permanent(nil) {
		t.Error("nil must be neither transient nor permanent")
	}
	if !Transient(MarkTransient(base)) {
		t.Error("MarkTransient not recognized")
	}
	if Transient(MarkPermanent(base)) || !Permanent(MarkPermanent(base)) {
		t.Error("MarkPermanent misclassified")
	}
	// Unclassified errors fail fast: retrying an unknown cause only masks it.
	if Transient(base) || !Permanent(base) {
		t.Error("unclassified error must be permanent")
	}
	// Classification wraps: sentinel matching keeps working through it and
	// through OpError.
	wrapped := &OpError{Op: "read", Disk: 3, Off: 64, Len: 8,
		Err: MarkTransient(fmt.Errorf("chaos: %w", ErrInjected))}
	if !errors.Is(wrapped, ErrInjected) {
		t.Error("errors.Is(ErrInjected) lost through OpError + classification")
	}
	if !Transient(wrapped) {
		t.Error("transient classification lost through OpError")
	}
}

func TestRetryDiskHealsTransient(t *testing.T) {
	var stats FaultStats
	fd := &flakyDisk{inner: NewMemDisk(), err: MarkTransient(ErrInjected), failN: 2}
	d := NewRetryDisk(fd, RetryConfig{MaxAttempts: 4, BaseDelay: -1, Stats: &stats}, 0, false)
	if err := d.WriteAt([]byte{1, 2, 3, 4}, 0); err != nil {
		t.Fatalf("WriteAt after 2 transient faults: %v", err)
	}
	got := make([]byte, 4)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if got[0] != 1 || got[3] != 4 {
		t.Fatalf("read back %v", got)
	}
	if n := stats.Retries.Load(); n != 2 {
		t.Errorf("Retries = %d, want 2", n)
	}
	if n := stats.GaveUps.Load(); n != 0 {
		t.Errorf("GaveUps = %d, want 0", n)
	}
}

func TestRetryDiskGivesUpWithContext(t *testing.T) {
	var stats FaultStats
	fd := &flakyDisk{inner: NewMemDisk(), err: MarkTransient(ErrInjected), failN: 99}
	d := NewRetryDisk(fd, RetryConfig{MaxAttempts: 3, BaseDelay: -1, Stats: &stats}, 5, true)
	err := d.ReadAt(make([]byte, 16), 128)
	if err == nil {
		t.Fatal("want failure after exhausting attempts")
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("errors.Is(ErrInjected) = false: %v", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) {
		t.Fatalf("error lacks OpError context: %v", err)
	}
	if oe.Op != "read" || oe.Disk != 5 || !oe.Spill || oe.Off != 128 || oe.Len != 16 {
		t.Errorf("OpError = %+v", oe)
	}
	if fd.ops != 3 {
		t.Errorf("inner ops = %d, want exactly MaxAttempts", fd.ops)
	}
	if stats.Retries.Load() != 2 || stats.GaveUps.Load() != 1 {
		t.Errorf("stats = %d retries, %d gave-ups; want 2, 1",
			stats.Retries.Load(), stats.GaveUps.Load())
	}
}

func TestRetryDiskFailsFastOnPermanent(t *testing.T) {
	var stats FaultStats
	fd := &flakyDisk{inner: NewMemDisk(), err: MarkPermanent(ErrDiskDead), failN: 99}
	d := NewRetryDisk(fd, RetryConfig{MaxAttempts: 4, BaseDelay: -1, Stats: &stats}, 1, false)
	err := d.WriteAt(make([]byte, 8), 0)
	if !errors.Is(err, ErrDiskDead) {
		t.Fatalf("err = %v, want ErrDiskDead", err)
	}
	if fd.ops != 1 {
		t.Errorf("permanent fault retried: %d inner ops", fd.ops)
	}
	if stats.Retries.Load() != 0 {
		t.Errorf("Retries = %d on a permanent fault", stats.Retries.Load())
	}
	// Unclassified errors are equally final.
	fd2 := &flakyDisk{inner: NewMemDisk(), err: ErrInjected, failN: 99}
	d2 := NewRetryDisk(fd2, RetryConfig{MaxAttempts: 4, BaseDelay: -1}, 0, false)
	if err := d2.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if fd2.ops != 1 {
		t.Errorf("unclassified fault retried: %d inner ops", fd2.ops)
	}
}

func TestRetryDiskCancelAbortsBackoff(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	fd := &flakyDisk{inner: NewMemDisk(), err: MarkTransient(ErrInjected), failN: 99}
	// An hour-scale backoff: only the fired Cancel channel lets this finish.
	d := NewRetryDisk(fd, RetryConfig{
		MaxAttempts: 4, BaseDelay: time.Hour, MaxDelay: time.Hour, Cancel: cancel,
	}, 0, false)
	start := time.Now()
	err := d.ReadAt(make([]byte, 1), 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancelled backoff still slept %v", elapsed)
	}
	if fd.ops != 1 {
		t.Errorf("inner ops = %d after cancelled backoff, want 1", fd.ops)
	}
}

// TestRetryBelowAsyncHealsBeforeLatch is the layering contract: a transient
// fault on a deferred write-behind operation retries inside the async
// worker's inner call and never latches the AsyncDisk.
func TestRetryBelowAsyncHealsBeforeLatch(t *testing.T) {
	var stats FaultStats
	fd := &flakyDisk{inner: NewMemDisk(), err: MarkTransient(ErrInjected), failN: 1}
	r := NewRetryDisk(fd, RetryConfig{MaxAttempts: 4, BaseDelay: -1, Stats: &stats}, 0, false)
	a := NewAsyncDisk(r, AsyncConfig{})
	if err := a.WriteAt([]byte{9, 9}, 0); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("Flush latched despite retry below: %v", err)
	}
	got := make([]byte, 2)
	if err := a.ReadAt(got, 0); err != nil || got[0] != 9 {
		t.Fatalf("ReadAt: %v %v", got, err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if stats.Retries.Load() == 0 {
		t.Error("no retry recorded; the fault cannot have been healed below the latch")
	}
}
