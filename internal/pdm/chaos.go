package pdm

import (
	"errors"
	"fmt"
	"sync"
)

// ChaosDisk is the seeded fault-injection harness the fault-tolerance
// layers are tested against — FaultDisk's byte-budget trip wire grown into
// a storage-failure model:
//
//   - probabilistic TRANSIENT faults on reads and writes (classified
//     MarkTransient, so RetryDisk above heals them);
//   - silent BIT-FLIP corruption of read data (bit rot / in-flight
//     corruption: no error is reported — only the CRC frames of the merge
//     layer can catch it);
//   - silent TORN writes (a crash mid-write: only a prefix persists, no
//     error — caught by the spill scrub's CRC readback);
//   - scripted PERMANENT death of a chosen spill disk after a byte budget
//     (classified MarkPermanent: retrying must not help, batch-level
//     recovery must).
//
// All probabilistic draws come from one SplitMix64 stream seeded from
// (Seed, disk identity), so a fault pattern is reproducible for a given
// seed and per-disk operation sequence; tests and the nightly soak print
// the seed on failure for replay (COLSORT_CHAOS_SEED).
type ChaosDisk struct {
	inner Disk
	cfg   ChaosConfig
	disk  int
	spill bool

	mu     sync.Mutex
	rng    uint64
	wrote  int64 // write traffic seen, for the scripted spill death
	writes int64 // write ops seen, for the scripted torn write
	reads  int64 // read ops seen, for the scripted read bit flip
	dead   bool
}

// ChaosConfig configures one machine's fault injection. The zero value
// injects nothing.
type ChaosConfig struct {
	// Seed drives every probabilistic draw; the same seed over the same
	// per-disk operation sequence reproduces the same fault pattern.
	Seed uint64

	// PTransient is the per-operation probability of a transient injected
	// fault on reads and writes (healed by RetryDisk's policy).
	PTransient float64
	// PBitFlip is the per-read probability of silently flipping one bit of
	// the returned data (the read succeeds; only integrity checks notice).
	PBitFlip float64
	// PTorn is the per-write probability of a silent torn write: only a
	// prefix of the buffer reaches the disk and no error is reported.
	PTorn float64

	// Scripted faults, keyed by 1-based spill-disk ordinal (0 disables) —
	// deterministic triggers for the recovery paths that probabilities
	// alone cannot target precisely.
	//
	// TornSpillWrite tears the first write of that spill disk.
	TornSpillWrite int
	// FlipSpillRead silently flips one bit of the first read of that spill
	// disk — the deterministic trigger for a CRC detection healed by an
	// invalidate-and-reread (the flip is transient: the disk's bytes are
	// intact, so the reread returns clean data).
	FlipSpillRead int
	// DeadSpillDisk permanently fails that spill disk once its write
	// traffic reaches DeadSpillAfter bytes.
	DeadSpillDisk  int
	DeadSpillAfter int64
}

// enabled reports whether the configuration can inject anything.
func (c ChaosConfig) enabled() bool {
	return c.PTransient > 0 || c.PBitFlip > 0 || c.PTorn > 0 ||
		c.TornSpillWrite > 0 || c.FlipSpillRead > 0 || c.DeadSpillDisk > 0
}

// ErrDiskDead is the permanent failure of a chaos-killed disk.
var ErrDiskDead = errors.New("pdm: disk failed permanently")

// NewChaosDisk wraps inner with the fault model for disk index idx (spill
// ordinal when spill).
func NewChaosDisk(inner Disk, cfg ChaosConfig, idx int, spill bool) *ChaosDisk {
	seed := cfg.Seed ^ (uint64(idx+1) << 1)
	if spill {
		seed ^= 0xdead << 40
	}
	// One warm-up step decorrelates nearby disk indices.
	return &ChaosDisk{inner: inner, cfg: cfg, disk: idx, spill: spill, rng: splitmix64(&seed)}
}

// draw returns a uniform float64 in [0, 1).
func (d *ChaosDisk) draw() float64 {
	return float64(splitmix64(&d.rng)>>11) / float64(1<<53)
}

func (d *ChaosDisk) ReadAt(p []byte, off int64) error {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return MarkPermanent(ErrDiskDead)
	}
	if d.cfg.PTransient > 0 && d.draw() < d.cfg.PTransient {
		d.mu.Unlock()
		return MarkTransient(fmt.Errorf("chaos: transient read fault: %w", ErrInjected))
	}
	d.reads++
	flip := int64(-1)
	if len(p) > 0 {
		if d.spill && d.cfg.FlipSpillRead == d.disk+1 && d.reads == 1 {
			flip = int64(splitmix64(&d.rng) % uint64(len(p)*8))
		} else if d.cfg.PBitFlip > 0 && d.draw() < d.cfg.PBitFlip {
			flip = int64(splitmix64(&d.rng) % uint64(len(p)*8))
		}
	}
	d.mu.Unlock()
	if err := d.inner.ReadAt(p, off); err != nil {
		return err
	}
	if flip >= 0 {
		p[flip/8] ^= 1 << (flip % 8)
	}
	return nil
}

func (d *ChaosDisk) WriteAt(p []byte, off int64) error {
	d.mu.Lock()
	if d.dead {
		d.mu.Unlock()
		return MarkPermanent(ErrDiskDead)
	}
	d.writes++
	d.wrote += int64(len(p))
	if d.spill && d.cfg.DeadSpillDisk == d.disk+1 && d.wrote >= d.cfg.DeadSpillAfter {
		d.dead = true
		d.mu.Unlock()
		return MarkPermanent(fmt.Errorf("chaos: spill disk %d: %w", d.disk, ErrDiskDead))
	}
	torn := d.spill && d.cfg.TornSpillWrite == d.disk+1 && d.writes == 1
	if !torn && d.cfg.PTorn > 0 && d.draw() < d.cfg.PTorn {
		torn = true
	}
	if !torn && d.cfg.PTransient > 0 && d.draw() < d.cfg.PTransient {
		d.mu.Unlock()
		return MarkTransient(fmt.Errorf("chaos: transient write fault: %w", ErrInjected))
	}
	d.mu.Unlock()
	if torn && len(p) > 1 {
		// A torn write persists only a prefix and reports success — the
		// crash-consistency failure CRC framing exists to catch.
		return d.inner.WriteAt(p[:len(p)/2], off)
	}
	return d.inner.WriteAt(p, off)
}

func (d *ChaosDisk) Size() int64 {
	d.mu.Lock()
	dead := d.dead
	d.mu.Unlock()
	if dead {
		return 0
	}
	return d.inner.Size()
}

// Close always releases the wrapped disk, even after permanent death —
// scratch space must not leak because its disk "failed".
func (d *ChaosDisk) Close() error { return d.inner.Close() }
