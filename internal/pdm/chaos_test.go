package pdm

import (
	"bytes"
	"errors"
	"testing"
)

// chaosFaultPattern records which of n sequential reads fail or corrupt
// under the given config and seed.
func chaosFaultPattern(cfg ChaosConfig, n int) []bool {
	inner := NewMemDisk()
	clean := make([]byte, 64)
	_ = inner.WriteAt(clean, 0)
	d := NewChaosDisk(inner, cfg, 0, false)
	pattern := make([]bool, n)
	buf := make([]byte, 64)
	for i := range pattern {
		err := d.ReadAt(buf, 0)
		pattern[i] = err != nil || !bytes.Equal(buf, clean)
	}
	return pattern
}

func TestChaosSeededReproducibility(t *testing.T) {
	cfg := ChaosConfig{Seed: 42, PTransient: 0.2, PBitFlip: 0.2}
	a := chaosFaultPattern(cfg, 200)
	b := chaosFaultPattern(cfg, 200)
	faults := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern diverged at op %d under one seed", i)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no faults injected at p=0.2 over 200 ops")
	}
	cfg.Seed = 43
	c := chaosFaultPattern(cfg, 200)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault patterns")
	}
}

func TestChaosTransientClassification(t *testing.T) {
	d := NewChaosDisk(NewMemDisk(), ChaosConfig{Seed: 1, PTransient: 1}, 0, false)
	err := d.ReadAt(make([]byte, 8), 0)
	if err == nil {
		t.Fatal("p=1 transient injected nothing")
	}
	if !Transient(err) {
		t.Errorf("chaos transient fault not classified transient: %v", err)
	}
	if !errors.Is(err, ErrInjected) {
		t.Errorf("chaos fault lost the ErrInjected sentinel: %v", err)
	}
}

func TestChaosScriptedTornSpillWrite(t *testing.T) {
	inner := NewMemDisk()
	// Spill ordinal 3 (1-based): disks 0-based index 2.
	d := NewChaosDisk(inner, ChaosConfig{Seed: 1, TornSpillWrite: 3}, 2, true)
	payload := bytes.Repeat([]byte{0xAB}, 64)
	if err := d.WriteAt(payload, 0); err != nil {
		t.Fatalf("torn write must report success: %v", err)
	}
	got := make([]byte, 64)
	if err := inner.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:32], payload[:32]) {
		t.Error("torn write lost its persisted prefix")
	}
	if bytes.Equal(got[32:], payload[32:]) {
		t.Error("scripted torn write persisted the whole buffer")
	}
	// Only the FIRST write tears.
	if err := d.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := inner.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("second write was torn too")
	}
	// A different spill ordinal is untouched.
	other := NewMemDisk()
	d2 := NewChaosDisk(other, ChaosConfig{Seed: 1, TornSpillWrite: 3}, 0, true)
	if err := d2.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := other.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("torn write hit the wrong spill ordinal")
	}
}

func TestChaosScriptedFlipSpillRead(t *testing.T) {
	inner := NewMemDisk()
	clean := bytes.Repeat([]byte{0x55}, 64)
	_ = inner.WriteAt(clean, 0)
	d := NewChaosDisk(inner, ChaosConfig{Seed: 9, FlipSpillRead: 1}, 0, true)
	got := make([]byte, 64)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("flip read must report success: %v", err)
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^clean[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("first read flipped %d bits, want exactly 1", diff)
	}
	// The flip is transient: the reread returns clean bytes.
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, clean) {
		t.Error("second read still corrupt; the disk's bytes should be intact")
	}
}

func TestChaosScriptedDeadSpillDisk(t *testing.T) {
	inner := NewMemDisk()
	d := NewChaosDisk(inner, ChaosConfig{Seed: 1, DeadSpillDisk: 1, DeadSpillAfter: 100}, 0, true)
	if err := d.WriteAt(make([]byte, 64), 0); err != nil {
		t.Fatalf("write under budget: %v", err)
	}
	err := d.WriteAt(make([]byte, 64), 64)
	if !errors.Is(err, ErrDiskDead) {
		t.Fatalf("err = %v, want ErrDiskDead once traffic exceeds the budget", err)
	}
	if !Permanent(err) || Transient(err) {
		t.Error("disk death must classify permanent")
	}
	if err := d.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrDiskDead) {
		t.Errorf("read from dead disk: %v", err)
	}
	if d.Size() != 0 {
		t.Errorf("dead disk Size = %d", d.Size())
	}
	// Close still releases the backing: scratch must not leak because its
	// disk "failed".
	if err := d.Close(); err != nil {
		t.Errorf("Close after death: %v", err)
	}
}

func TestChaosZeroConfigInjectsNothing(t *testing.T) {
	if (ChaosConfig{}).enabled() {
		t.Fatal("zero ChaosConfig reports enabled")
	}
	var m Machine
	m.P, m.D = 1, 1
	m.Chaos = &ChaosConfig{}
	d := m.wrapFaultLayers(NewMemDisk(), 0, false)
	if _, ok := d.(*ChaosDisk); ok {
		t.Error("disabled chaos config still wrapped the disk")
	}
}
