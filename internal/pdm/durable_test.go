package pdm

// Tests of the durability primitives the checkpoint/resume layer builds on:
// keep-on-close file disks, the wrapper-stack walkers, and the ENOSPC
// classification that keeps a full disk from burning retry budget.

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestKeepFileDiskSurvivesClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.dat")
	d, err := NewKeepFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Path() != path {
		t.Errorf("Path() = %q, want %q", d.Path(), path)
	}
	payload := []byte("durable bytes")
	if err := d.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("keep-on-close disk removed its file: %v", err)
	}
	if string(got) != string(payload) {
		t.Errorf("file holds %q, want %q", got, payload)
	}

	// Reopen and read back — the resume path's move.
	rd, err := OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if err := rd.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(payload) {
		t.Errorf("reopened disk read %q, want %q", buf, payload)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("reopened disk removed the file on Close: %v", err)
	}

	// An ordinary (scratch) FileDisk still removes its file.
	scratch := filepath.Join(t.TempDir(), "scratch.dat")
	sd, err := NewFileDisk(scratch)
	if err != nil {
		t.Fatal(err)
	}
	sd.Close()
	if _, err := os.Stat(scratch); !os.IsNotExist(err) {
		t.Errorf("scratch FileDisk kept its file (stat err %v)", err)
	}
}

func TestKeepFileBackend(t *testing.T) {
	dir := t.TempDir()
	b := FileBackend{Dir: dir, Prefix: "ckpt-", Keep: true}
	d, err := b.NewDisk(3)
	if err != nil {
		t.Fatal(err)
	}
	fd := DiskFile(d)
	if fd == nil {
		t.Fatal("DiskFile found no FileDisk under a FileBackend disk")
	}
	path := fd.Path()
	if filepath.Dir(path) != dir {
		t.Errorf("spill landed at %q, want inside %q", path, dir)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("Keep backend's disk removed its file: %v", err)
	}
}

func TestDiskWalkersThroughWrappers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wrapped.dat")
	fd, err := NewKeepFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	m := Machine{P: 1, D: 1, Async: &AsyncConfig{ReadAhead: 1, WriteBehind: 1}, Retry: &RetryConfig{}}
	d := m.WrapSpillDisk(fd, 0)
	if got := DiskFile(d); got != fd {
		t.Errorf("DiskFile through the wrapper stack = %v, want the base FileDisk", got)
	}
	if got := DiskPath(d); got != path {
		t.Errorf("DiskPath = %q, want %q", got, path)
	}
	if err := d.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := SyncDisk(d); err != nil { // flushes write-behind, then fsyncs
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || len(got) != 1 {
		t.Fatalf("after SyncDisk: read %q, err %v", got, err)
	}
	d.Close()

	// A memory disk has no file underneath: the walkers report that, they
	// don't invent one.
	md := NewMemDisk()
	if DiskFile(md) != nil || DiskPath(md) != "" {
		t.Error("walkers found a file under a MemDisk")
	}
	if err := SyncDisk(md); err != nil {
		t.Errorf("SyncDisk on a MemDisk: %v", err)
	}
}

func TestNoSpaceClassifiedPermanent(t *testing.T) {
	wrapped := &os.PathError{Op: "write", Path: "x", Err: syscall.ENOSPC}
	if !isNoSpace(wrapped) {
		t.Error("ENOSPC not recognized")
	}
	if !isNoSpace(&os.PathError{Op: "write", Path: "x", Err: syscall.EDQUOT}) {
		t.Error("EDQUOT not recognized")
	}
	if isNoSpace(errors.New("disk on fire")) {
		t.Error("arbitrary error misclassified as no-space")
	}

	// The classified error is permanent (fails fast, never retried) and
	// matches ErrNoSpace via errors.Is.
	err := MarkPermanent(ErrNoSpace)
	if !Permanent(err) || Transient(err) {
		t.Error("no-space error is not classified permanent")
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Error("classified error does not match ErrNoSpace")
	}
}
