package pdm

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"colsort/internal/record"
	"colsort/internal/sim"
)

func TestMemDiskSparse(t *testing.T) {
	d := NewMemDisk()
	if err := d.WriteAt([]byte{1, 2, 3}, 100); err != nil {
		t.Fatal(err)
	}
	if d.Size() != 103 {
		t.Fatalf("Size = %d, want 103", d.Size())
	}
	buf := make([]byte, 5)
	if err := d.ReadAt(buf, 99); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 1, 2, 3, 0}) {
		t.Fatalf("sparse read wrong: %v", buf)
	}
	// Read entirely beyond extent: zeros.
	if err := d.ReadAt(buf, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 5)) {
		t.Fatal("beyond-extent read not zero")
	}
	if err := d.ReadAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := d.WriteAt(buf, -1); err == nil {
		t.Fatal("negative write offset accepted")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(filepath.Join(dir, "d0.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("hello"), 64); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := d.ReadAt(buf, 64); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("got %q", buf)
	}
	// Sparse read past EOF should zero-fill.
	big := make([]byte, 16)
	if err := d.ReadAt(big, 60); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(big[4:9], []byte("hello")) {
		t.Fatalf("offset read wrong: %q", big)
	}
	path := filepath.Join(dir, "d0.dat")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Close did not remove backing file")
	}
}

func TestFaultDisk(t *testing.T) {
	d := &FaultDisk{Inner: NewMemDisk(), Budget: 10}
	if err := d.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(make([]byte, 8), 8); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault, got %v", err)
	}
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("reads should fail after budget exhaustion")
	}
}

func TestDiskArrayStripingRoundTrip(t *testing.T) {
	// Write a pattern through the striped array and read it back with
	// various offsets and lengths crossing stripe and disk boundaries.
	disks := []Disk{NewMemDisk(), NewMemDisk(), NewMemDisk()}
	a := NewDiskArray(disks, 16)
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	var cnt sim.Counters
	if err := a.WriteAt(&cnt, data, 13); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1000)
	if err := a.ReadAt(&cnt, got, 13); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped round trip corrupted data")
	}
	// Partial re-read in the middle.
	mid := make([]byte, 100)
	if err := a.ReadAt(&cnt, mid, 13+500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mid, data[500:600]) {
		t.Fatal("partial striped read wrong")
	}
}

func TestDiskArrayDistributesAcrossDisks(t *testing.T) {
	d0, d1 := NewMemDisk(), NewMemDisk()
	a := NewDiskArray([]Disk{d0, d1}, 8)
	var cnt sim.Counters
	if err := a.WriteAt(&cnt, make([]byte, 64), 0); err != nil {
		t.Fatal(err)
	}
	if d0.Size() != 32 || d1.Size() != 32 {
		t.Fatalf("stripe imbalance: %d vs %d", d0.Size(), d1.Size())
	}
}

func TestDiskArraySeekAccounting(t *testing.T) {
	a := NewDiskArray([]Disk{NewMemDisk()}, 1024)
	var cnt sim.Counters
	// Sequential writes: 1 seek, then continuation.
	buf := make([]byte, 512)
	if err := a.WriteAt(&cnt, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteAt(&cnt, buf, 512); err != nil {
		t.Fatal(err)
	}
	if cnt.DiskWriteOps != 1 {
		t.Fatalf("sequential writes counted %d ops, want 1", cnt.DiskWriteOps)
	}
	// A jump costs one more.
	if err := a.WriteAt(&cnt, buf, 8192); err != nil {
		t.Fatal(err)
	}
	if cnt.DiskWriteOps != 2 {
		t.Fatalf("jump write counted %d ops, want 2", cnt.DiskWriteOps)
	}
	if cnt.DiskWriteBytes != 512*3 {
		t.Fatalf("write bytes %d, want %d", cnt.DiskWriteBytes, 512*3)
	}
	// Reads tracked independently.
	if err := a.ReadAt(&cnt, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.ReadAt(&cnt, buf, 512); err != nil {
		t.Fatal(err)
	}
	if cnt.DiskReadOps != 1 {
		t.Fatalf("sequential reads counted %d ops, want 1", cnt.DiskReadOps)
	}
}

func TestDiskArrayNilCounters(t *testing.T) {
	a := NewDiskArray([]Disk{NewMemDisk()}, 64)
	if err := a.WriteAt(nil, []byte{1}, 0); err != nil {
		t.Fatal("nil counters should be allowed")
	}
}

func TestDiskArrayQuick(t *testing.T) {
	f := func(off uint16, data []byte, stripePow uint8) bool {
		if len(data) == 0 {
			return true
		}
		stripe := 1 << (3 + stripePow%8) // 8..1024
		a := NewDiskArray([]Disk{NewMemDisk(), NewMemDisk(), NewMemDisk(), NewMemDisk()}, stripe)
		var cnt sim.Counters
		if err := a.WriteAt(&cnt, data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := a.ReadAt(&cnt, got, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func newTestStore(t *testing.T, r, s, recSize, p int, layout Layout) *Store {
	t.Helper()
	m := Machine{P: p, D: 2 * p, StripeBytes: 256}
	st, err := m.NewStore(r, s, recSize, layout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStoreColumnOwnedRoundTrip(t *testing.T) {
	st := newTestStore(t, 64, 8, 16, 4, ColumnOwned)
	var cnt sim.Counters
	for j := 0; j < 8; j++ {
		p := st.Owner(0, j)
		if p != j%4 {
			t.Fatalf("owner of column %d = %d", j, p)
		}
		col := record.Make(64, 16)
		record.Fill(col, record.Uniform{Seed: uint64(j)}, 0)
		if err := st.WriteColumn(&cnt, p, j, col); err != nil {
			t.Fatal(err)
		}
		back := record.Make(64, 16)
		if err := st.ReadColumn(&cnt, p, j, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Data, col.Data) {
			t.Fatalf("column %d corrupted", j)
		}
	}
}

func TestStoreColumnOwnedRejectsForeignAccess(t *testing.T) {
	st := newTestStore(t, 64, 8, 16, 4, ColumnOwned)
	var cnt sim.Counters
	col := record.Make(64, 16)
	if err := st.WriteColumn(&cnt, 1, 0, col); err == nil {
		t.Fatal("processor 1 wrote processor 0's column")
	}
	if err := st.ReadColumn(&cnt, 0, 99, col); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := st.ReadRows(&cnt, 9, 0, 0, col); err == nil {
		t.Fatal("out-of-range processor accepted")
	}
}

func TestStoreRowBlocked(t *testing.T) {
	st := newTestStore(t, 64, 4, 16, 4, RowBlocked)
	var cnt sim.Counters
	// Each proc owns 16 rows of every column.
	for p := 0; p < 4; p++ {
		lo, hi := st.OwnedRows(p, 2)
		if lo != p*16 || hi != (p+1)*16 {
			t.Fatalf("proc %d owns [%d,%d)", p, lo, hi)
		}
		if st.Owner(p*16+3, 2) != p {
			t.Fatal("Owner inconsistent with OwnedRows")
		}
	}
	// Write each proc's portion, read back a sub-range.
	for p := 0; p < 4; p++ {
		part := record.Make(16, 16)
		record.Fill(part, record.Uniform{Seed: uint64(p)}, 0)
		if err := st.WriteRows(&cnt, p, 2, p*16, part); err != nil {
			t.Fatal(err)
		}
		back := record.Make(4, 16)
		if err := st.ReadRows(&cnt, p, 2, p*16+8, back); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back.Data, part.Sub(8, 12).Data) {
			t.Fatalf("proc %d sub-range read wrong", p)
		}
	}
	// Foreign row range rejected.
	if err := st.WriteRows(&cnt, 0, 2, 20, record.Make(4, 16)); err == nil {
		t.Fatal("proc 0 wrote proc 1's rows")
	}
}

func TestNewStoreValidation(t *testing.T) {
	m := Machine{P: 4, D: 4}
	if _, err := m.NewStore(64, 6, 16, ColumnOwned); err == nil {
		t.Fatal("s not divisible by P accepted for column-owned")
	}
	if _, err := m.NewStore(66, 4, 16, RowBlocked); err == nil {
		t.Fatal("r not divisible by P accepted for row-blocked")
	}
	if _, err := m.NewStore(64, 4, 7, ColumnOwned); err == nil {
		t.Fatal("bad record size accepted")
	}
	bad := Machine{P: 4, D: 6}
	if _, err := bad.NewArrays(); err == nil {
		t.Fatal("P∤D accepted")
	}
	if _, err := (Machine{P: 0, D: 0}).NewArrays(); err == nil {
		t.Fatal("P=0 accepted")
	}
}

func TestMachineDiskOwnership(t *testing.T) {
	m := Machine{P: 4, D: 8}
	arrays, err := m.NewArrays()
	if err != nil {
		t.Fatal(err)
	}
	for p, a := range arrays {
		if len(a.Disks) != 2 {
			t.Fatalf("proc %d owns %d disks, want D/P=2", p, len(a.Disks))
		}
	}
}

func TestStoreFillSnapshotChecksum(t *testing.T) {
	for _, layout := range []Layout{ColumnOwned, RowBlocked} {
		st := newTestStore(t, 32, 4, 16, 4, layout)
		g := record.Uniform{Seed: 11}
		if err := st.Fill(g); err != nil {
			t.Fatal(err)
		}
		snap, err := st.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		// Snapshot must equal direct generation in column-major order.
		want := record.Make(32*4, 16)
		record.Fill(want, g, 0)
		if !bytes.Equal(snap.Data, want.Data) {
			t.Fatalf("%v: snapshot differs from generated data", layout)
		}
		cs, err := st.Checksum()
		if err != nil {
			t.Fatal(err)
		}
		if !cs.Equal(record.OfGenerated(g, 32*4, 16)) {
			t.Fatalf("%v: checksum mismatch", layout)
		}
	}
}

func TestStoreFileBackend(t *testing.T) {
	m := Machine{P: 2, D: 2, Backend: FileBackend{Dir: t.TempDir()}}
	st, err := m.NewStore(16, 2, 16, ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Fill(record.Uniform{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := record.Make(32, 16)
	record.Fill(want, record.Uniform{Seed: 3}, 0)
	if !bytes.Equal(snap.Data, want.Data) {
		t.Fatal("file-backed store corrupted data")
	}
}

func TestLayoutString(t *testing.T) {
	if ColumnOwned.String() != "column-owned" || RowBlocked.String() != "row-blocked" {
		t.Fatal("Layout.String wrong")
	}
	if Layout(9).String() == "" {
		t.Fatal("unknown layout String empty")
	}
}

func TestStoreBufferSizeMismatch(t *testing.T) {
	st := newTestStore(t, 16, 2, 16, 2, ColumnOwned)
	var cnt sim.Counters
	wrongSize := record.Make(16, 32)
	if err := st.WriteRows(&cnt, 0, 0, 0, wrongSize); err == nil {
		t.Fatal("record size mismatch accepted")
	}
	short := record.Make(8, 16)
	if err := st.WriteColumn(&cnt, 0, 0, short); err == nil {
		t.Fatal("short column buffer accepted")
	}
	if err := st.ReadColumn(&cnt, 0, 0, short); err == nil {
		t.Fatal("short read buffer accepted")
	}
}

func TestFileDiskErrorPaths(t *testing.T) {
	dir := t.TempDir()
	d, err := NewFileDisk(filepath.Join(dir, "err.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	// Short read straddling EOF zero-fills; a read entirely beyond EOF is
	// all zeros.
	buf := make([]byte, 8)
	if err := d.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{'6', '7', '8', '9', 0, 0, 0, 0}) {
		t.Fatalf("short read wrong: %q", buf)
	}
	if err := d.ReadAt(buf, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatal("beyond-EOF read not zero")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Operations on a closed disk fail loudly rather than zero-filling.
	if err := d.ReadAt(buf, 0); err == nil {
		t.Fatal("read after Close accepted")
	}
	if err := d.WriteAt(buf, 0); err == nil {
		t.Fatal("write after Close accepted")
	}
	if err := d.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
	// A fresh disk at the same path starts empty (reopen-after-close is a
	// new generation, never a resurrection of removed state).
	d2, err := NewFileDisk(filepath.Join(dir, "err.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != 0 {
		t.Fatalf("reopened disk has size %d, want 0", d2.Size())
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultDiskPassthrough(t *testing.T) {
	inner := NewMemDisk()
	d := &FaultDisk{Inner: inner, Budget: 100}
	if err := d.WriteAt([]byte("xyz"), 5); err != nil {
		t.Fatal(err)
	}
	if d.Size() != inner.Size() || d.Size() != 8 {
		t.Fatalf("Size = %d, want 8", d.Size())
	}
	// Exactly exhausting the budget still succeeds; the next byte fails.
	if err := d.WriteAt(make([]byte, 97), 8); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatal("budget boundary not enforced")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
