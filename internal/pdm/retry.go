package pdm

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the transient-fault healing layer of the PDM substrate. Real
// multi-hour sorts over many disks see transient read/write errors that a
// bounded retry absorbs and permanent failures that must surface fast; the
// distinction is an explicit error taxonomy (MarkTransient / MarkPermanent,
// queried by Transient / Permanent) rather than a guess, because the disks
// here are simulated and every fault has a known producer (ChaosDisk, the
// OS, a test). RetryDisk applies the policy — bounded exponential backoff
// with jitter, cancellable between attempts — and wraps every escaping
// error with the exact operation, disk and byte extent, so a failed 64 MiB
// sort names the extent instead of returning a bare "injected disk fault".
//
// RetryDisk sits BELOW AsyncDisk in the machine's wrapper stack: a deferred
// write-behind operation is retried by the async worker's inner call before
// the first failure can latch, so a transient hiccup never poisons the
// disk for the rest of the pass.

// classifiedError marks an error as transient (worth retrying) or permanent
// (fail fast). It wraps rather than replaces, so sentinel matching with
// errors.Is keeps working through the classification.
type classifiedError struct {
	err       error
	transient bool
}

func (e *classifiedError) Error() string {
	if e.transient {
		return "transient: " + e.err.Error()
	}
	return "permanent: " + e.err.Error()
}

func (e *classifiedError) Unwrap() error { return e.err }

// MarkTransient classifies err as a transient fault: retrying the same
// operation may succeed. A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, transient: true}
}

// MarkPermanent classifies err as a permanent fault: retrying cannot help
// and the failure should surface immediately. A nil err stays nil.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{err: err, transient: false}
}

// Transient reports whether err carries a transient classification.
// Unclassified errors are NOT transient: retrying an error of unknown cause
// (a logic error, a closed file) would only mask it.
func Transient(err error) bool {
	var ce *classifiedError
	return errors.As(err, &ce) && ce.transient
}

// Permanent reports whether err is a disk fault that retrying cannot heal —
// any non-nil error that is not classified transient.
func Permanent(err error) bool { return err != nil && !Transient(err) }

// OpError attributes a disk failure to the exact operation that suffered
// it: the op kind, the disk (global index for array disks, spill ordinal
// for hierarchical-merge spills), and the byte extent.
type OpError struct {
	Op    string // "read" or "write"
	Disk  int    // global disk index, or spill ordinal when Spill
	Spill bool   // the disk backs a hierarchical-merge spill run
	Off   int64  // byte offset of the failed operation
	Len   int    // length of the failed operation
	Err   error  // the underlying failure, classification intact
}

func (e *OpError) Error() string {
	kind := "disk"
	if e.Spill {
		kind = "spill disk"
	}
	return fmt.Sprintf("pdm: %s %s %d extent [%d,+%d): %v", e.Op, kind, e.Disk, e.Off, e.Len, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// FaultStats counts what the fault-tolerance layers absorbed or detected.
// One instance is shared (atomically) by every wrapped disk of a machine
// and by the merge readers, then folded into sim.Counters for reporting.
type FaultStats struct {
	Retries       atomic.Int64 // transient disk ops re-issued by RetryDisk
	GaveUps       atomic.Int64 // transient ops that exhausted the retry budget
	CorruptChunks atomic.Int64 // run chunks whose CRC32C frame failed verification
	Rereads       atomic.Int64 // corrupt chunks healed by an invalidate-and-reread
	BatchRedos    atomic.Int64 // hierarchical batches re-sorted/re-spilled
}

// FaultCounts is a plain snapshot of FaultStats.
type FaultCounts struct {
	Retries       int64
	GaveUps       int64
	CorruptChunks int64
	Rereads       int64
	BatchRedos    int64
}

// Snapshot reads the counters atomically (each counter individually; the
// set is not a consistent cut, which reporting does not need).
func (s *FaultStats) Snapshot() FaultCounts {
	return FaultCounts{
		Retries:       s.Retries.Load(),
		GaveUps:       s.GaveUps.Load(),
		CorruptChunks: s.CorruptChunks.Load(),
		Rereads:       s.Rereads.Load(),
		BatchRedos:    s.BatchRedos.Load(),
	}
}

// Sub returns c - o field by field (the delta attributable to one sort on
// a shared machine).
func (c FaultCounts) Sub(o FaultCounts) FaultCounts {
	return FaultCounts{
		Retries:       c.Retries - o.Retries,
		GaveUps:       c.GaveUps - o.GaveUps,
		CorruptChunks: c.CorruptChunks - o.CorruptChunks,
		Rereads:       c.Rereads - o.Rereads,
		BatchRedos:    c.BatchRedos - o.BatchRedos,
	}
}

// Any reports whether any fault activity was recorded.
func (c FaultCounts) Any() bool {
	return c.Retries != 0 || c.GaveUps != 0 || c.CorruptChunks != 0 || c.Rereads != 0 || c.BatchRedos != 0
}

// RetryConfig is the transient-fault retry policy of one machine's disks.
type RetryConfig struct {
	// MaxAttempts is the total attempts per operation, including the
	// first; ≤ 1 disables retrying (errors still gain OpError context).
	// 0 selects DefaultRetryAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// attempt up to MaxDelay, with ±50% jitter. 0 selects
	// DefaultRetryBaseDelay; negative disables sleeping.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 selects DefaultRetryMaxDelay.
	MaxDelay time.Duration
	// Cancel, when non-nil, aborts backoff sleeps (typically the sort
	// context's Done channel): a cancelled sort must not sit out a
	// multi-millisecond backoff per in-flight operation.
	Cancel <-chan struct{}
	// Stats, when non-nil, receives retry/give-up counts.
	Stats *FaultStats
}

// Default retry policy: a handful of attempts spaced microseconds to
// milliseconds apart — enough to ride out scheduler-scale hiccups without
// stalling a pass behind a genuinely dead disk.
const (
	DefaultRetryAttempts  = 4
	DefaultRetryBaseDelay = 200 * time.Microsecond
	DefaultRetryMaxDelay  = 10 * time.Millisecond
)

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = DefaultRetryAttempts
	}
	if c.BaseDelay == 0 {
		c.BaseDelay = DefaultRetryBaseDelay
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = DefaultRetryMaxDelay
	}
	return c
}

// RetryDisk wraps a Disk with the transient-fault retry policy and with
// OpError context on every escaping failure. Classification drives it:
// transient errors are re-issued up to the attempt budget with exponential
// backoff and jitter, permanent (and unclassified) errors fail fast.
type RetryDisk struct {
	inner Disk
	cfg   RetryConfig
	disk  int
	spill bool

	mu  sync.Mutex
	rng uint64 // jitter state; deterministic per disk identity
}

// NewRetryDisk wraps inner for disk index idx (spill marks hierarchical
// spill disks, whose idx is the spill ordinal).
func NewRetryDisk(inner Disk, cfg RetryConfig, idx int, spill bool) *RetryDisk {
	seed := uint64(idx)*2 + 1
	if spill {
		seed += 1 << 32
	}
	return &RetryDisk{inner: inner, cfg: cfg.withDefaults(), disk: idx, spill: spill, rng: splitmix64(&seed)}
}

func (d *RetryDisk) ReadAt(p []byte, off int64) error {
	return d.do("read", len(p), off, func() error { return d.inner.ReadAt(p, off) })
}

func (d *RetryDisk) WriteAt(p []byte, off int64) error {
	return d.do("write", len(p), off, func() error { return d.inner.WriteAt(p, off) })
}

func (d *RetryDisk) Size() int64 { return d.inner.Size() }

// Close passes through: close failures are terminal by nature and the
// wrapped disks already name themselves in their close errors.
func (d *RetryDisk) Close() error { return d.inner.Close() }

// do runs one operation under the retry policy.
func (d *RetryDisk) do(op string, n int, off int64, fn func() error) error {
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil {
			return nil
		}
		if !Transient(err) {
			break // permanent or unclassified: fail fast, with context
		}
		if attempt >= d.cfg.MaxAttempts {
			if d.cfg.Stats != nil {
				d.cfg.Stats.GaveUps.Add(1)
			}
			break
		}
		if d.cfg.Stats != nil {
			d.cfg.Stats.Retries.Add(1)
		}
		if !d.backoff(attempt) {
			break // cancelled mid-backoff: surface the transient error
		}
	}
	return &OpError{Op: op, Disk: d.disk, Spill: d.spill, Off: off, Len: n, Err: err}
}

// backoff sleeps the jittered exponential delay for the given attempt
// number, returning false if the Cancel channel fired first.
func (d *RetryDisk) backoff(attempt int) bool {
	if d.cfg.BaseDelay < 0 {
		return true
	}
	delay := d.cfg.BaseDelay << (attempt - 1)
	if delay > d.cfg.MaxDelay || delay <= 0 {
		delay = d.cfg.MaxDelay
	}
	// ±50% decorrelating jitter: concurrent retries against one contended
	// resource should not re-collide in lockstep.
	d.mu.Lock()
	r := splitmix64(&d.rng)
	d.mu.Unlock()
	delay = delay/2 + time.Duration(r%uint64(delay/2+1))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-d.cfg.Cancel: // nil channel: never fires
		return false
	}
}

// splitmix64 advances the state and returns the next value of the SplitMix64
// generator — the same cheap seeded PRNG the chaos layer uses.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
