package pdm

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"colsort/internal/record"
	"colsort/internal/sim"
)

// countingDisk counts the operations reaching the wrapped disk, so tests
// can tell a prefetch-served read from a read-through.
type countingDisk struct {
	Disk
	reads, writes atomic.Int64
}

func (d *countingDisk) ReadAt(p []byte, off int64) error {
	d.reads.Add(1)
	return d.Disk.ReadAt(p, off)
}

func (d *countingDisk) WriteAt(p []byte, off int64) error {
	d.writes.Add(1)
	return d.Disk.WriteAt(p, off)
}

func TestAsyncDiskRoundTrip(t *testing.T) {
	d := NewAsyncDisk(NewMemDisk(), AsyncConfig{})
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 3)
	}
	for off := 0; off < len(data); off += 256 {
		if err := d.WriteAt(data[off:off+256], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	// Reads must observe queued (possibly unflushed) writes.
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read not coherent with write-behind queue")
	}
	if d.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", d.Size(), len(data))
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncDiskPrefetchServesRead(t *testing.T) {
	inner := &countingDisk{Disk: NewMemDisk()}
	want := make([]byte, 512)
	for i := range want {
		want[i] = byte(i)
	}
	if err := inner.Disk.WriteAt(want, 128); err != nil {
		t.Fatal(err)
	}
	d := NewAsyncDisk(inner, AsyncConfig{})
	defer d.Close()

	d.Prefetch(128, 512)
	// Wait for the background fetch so the later ReadAt must be a cache hit.
	deadline := time.Now().Add(5 * time.Second)
	for inner.reads.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("prefetch never reached the inner disk")
		}
		time.Sleep(time.Millisecond)
	}
	got := make([]byte, 512)
	if err := d.ReadAt(got, 128); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("prefetched read returned wrong data")
	}
	if n := inner.reads.Load(); n != 1 {
		t.Fatalf("read went to the inner disk %d times, want 1 (prefetch hit)", n)
	}
	// A second read of the range is a plain read-through (entry consumed).
	if err := d.ReadAt(got, 128); err != nil {
		t.Fatal(err)
	}
	if n := inner.reads.Load(); n != 2 {
		t.Fatalf("consumed prefetch entry served twice (%d inner reads)", n)
	}
}

func TestAsyncDiskWriteInvalidatesPrefetch(t *testing.T) {
	d := NewAsyncDisk(NewMemDisk(), AsyncConfig{})
	defer d.Close()
	old := bytes.Repeat([]byte{1}, 256)
	if err := d.WriteAt(old, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	d.Prefetch(0, 256)
	time.Sleep(5 * time.Millisecond) // let the fetch (likely) complete
	fresh := bytes.Repeat([]byte{2}, 256)
	if err := d.WriteAt(fresh, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 256)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fresh) {
		t.Fatal("read served a prefetch staged before an overlapping write")
	}
}

func TestAsyncDiskDropsExcessHints(t *testing.T) {
	d := NewAsyncDisk(NewMemDisk(), AsyncConfig{ReadAhead: 2})
	defer d.Close()
	for i := 0; i < 10; i++ {
		d.Prefetch(int64(i)*64, 64) // must not block or grow unboundedly
	}
	got := make([]byte, 64)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncDiskWriteErrorPropagation(t *testing.T) {
	// The fault budget admits the first write only; the second fails in the
	// background and must surface on the next operation, on Flush, and on
	// Close.
	d := NewAsyncDisk(&FaultDisk{Inner: NewMemDisk(), Budget: 8}, AsyncConfig{})
	if err := d.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(make([]byte, 8), 8); err != nil && !errors.Is(err, ErrInjected) {
		t.Fatalf("queued write failed with unexpected error %v", err)
	}
	if err := d.Flush(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Flush = %v, want injected fault", err)
	}
	if err := d.WriteAt(make([]byte, 8), 16); !errors.Is(err, ErrInjected) {
		t.Fatalf("WriteAt after fault = %v, want latched error", err)
	}
	if err := d.ReadAt(make([]byte, 8), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("ReadAt after fault = %v, want latched error", err)
	}
	if err := d.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Close = %v, want injected fault", err)
	}
}

func TestAsyncDiskCloseDrainsWrites(t *testing.T) {
	inner := &countingDisk{Disk: NewMemDisk()}
	d := NewAsyncDisk(inner, AsyncConfig{WriteBehind: 8})
	for i := 0; i < 6; i++ {
		if err := d.WriteAt(make([]byte, 64), int64(i)*64); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if n := inner.writes.Load(); n != 6 {
		t.Fatalf("Close retired %d of 6 queued writes", n)
	}
	if err := d.Close(); err == nil {
		t.Fatal("double Close accepted")
	}
}

func TestAsyncDiskBackpressure(t *testing.T) {
	// A slow inner disk with a tiny queue: WriteAt must block rather than
	// grow the queue, and every byte must still arrive in order.
	slow := NewDelayDisk(NewMemDisk(), DelayConfig{Seek: 0, BytesPerSec: 4 << 20})
	d := NewAsyncDisk(slow, AsyncConfig{WriteBehind: 1})
	data := make([]byte, 16<<10)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for off := 0; off < len(data); off += 1024 {
		if err := d.WriteAt(data[off:off+1024], int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("back-pressured writes corrupted data")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDelayDiskRoundTrip(t *testing.T) {
	d := NewDelayDisk(NewMemDisk(), DelayConfig{Seek: time.Microsecond, BytesPerSec: 1 << 30})
	if err := d.WriteAt([]byte("abc"), 10); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := d.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if d.Size() != 13 {
		t.Fatalf("Size = %d", d.Size())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMachineAsyncStoreRoundTrip(t *testing.T) {
	m := Machine{P: 2, D: 4, StripeBytes: 256,
		Async: &AsyncConfig{ReadAhead: 4, WriteBehind: 4}}
	st, err := m.NewStore(32, 4, 16, ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := record.Uniform{Seed: 7}
	if err := st.Fill(g); err != nil {
		t.Fatal(err)
	}
	// Prefetch hints ahead of the snapshot reads must not perturb contents.
	for j := 0; j < 4; j++ {
		st.PrefetchColumn(j%2, j)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := record.Make(32*4, 16)
	record.Fill(want, g, 0)
	if !bytes.Equal(snap.Data, want.Data) {
		t.Fatal("async-backed store corrupted data")
	}
	for p := 0; p < 2; p++ {
		if err := st.Flush(p); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStorePrefetchRejectsForeign(t *testing.T) {
	st := newTestStore(t, 64, 8, 16, 4, ColumnOwned)
	// None of these may panic or touch foreign state: advisory no-ops.
	st.PrefetchColumn(1, 0)  // column 0 belongs to processor 0
	st.PrefetchColumn(0, 99) // out of range
	st.PrefetchRows(0, 0, 60, 10)
	st.PrefetchRows(9, 0, 0, 1)
	var cnt sim.Counters
	buf := record.Make(64, 16)
	if err := st.ReadColumn(&cnt, 0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(9); err == nil {
		t.Fatal("Flush accepted an out-of-range processor")
	}
}
