package pdm

import (
	"bytes"
	"testing"

	"colsort/internal/record"
	"colsort/internal/sim"
)

func TestGroupBlockedLayout(t *testing.T) {
	m := Machine{P: 8, D: 8, StripeBytes: 256}
	// 2 groups of 4: columns alternate between groups; members hold r/4 rows.
	st, err := m.NewGroupStore(64, 6, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Layout != GroupBlocked || st.G != 4 {
		t.Fatalf("layout %v G=%d", st.Layout, st.G)
	}
	// Column 3 belongs to group 1 (procs 4..7); member 2 (proc 6) holds
	// rows [32, 48).
	if lo, hi := st.OwnedRows(6, 3); lo != 32 || hi != 48 {
		t.Fatalf("proc 6 owns [%d,%d) of column 3", lo, hi)
	}
	if lo, hi := st.OwnedRows(1, 3); lo != 0 || hi != 0 {
		t.Fatal("group 0 should own nothing of column 3")
	}
	if st.Owner(33, 3) != 6 {
		t.Fatalf("Owner(33,3) = %d", st.Owner(33, 3))
	}
	// Round-trip a member block.
	var cnt sim.Counters
	part := record.Make(16, 16)
	record.Fill(part, record.Uniform{Seed: 9}, 0)
	if err := st.WriteRows(&cnt, 6, 3, 32, part); err != nil {
		t.Fatal(err)
	}
	back := record.Make(16, 16)
	if err := st.ReadRows(&cnt, 6, 3, 32, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Data, part.Data) {
		t.Fatal("group-blocked round trip corrupted data")
	}
	// Foreign access rejected.
	if err := st.WriteRows(&cnt, 5, 3, 32, part); err == nil {
		t.Fatal("member 1 wrote member 2 rows")
	}
}

func TestGroupBlockedDegenerateEquivalence(t *testing.T) {
	// G = 1 must agree with ColumnOwned ownership; G = P with RowBlocked.
	m := Machine{P: 4, D: 4}
	co, err := m.NewStore(32, 8, 16, ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer co.Close()
	g1, err := m.NewGroupStore(32, 8, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer g1.Close()
	rb, err := m.NewStore(32, 8, 16, RowBlocked)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Close()
	gp, err := m.NewGroupStore(32, 8, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer gp.Close()
	for j := 0; j < 8; j++ {
		for i := 0; i < 32; i++ {
			if co.Owner(i, j) != g1.Owner(i, j) {
				t.Fatalf("G=1 owner mismatch at (%d,%d)", i, j)
			}
			if rb.Owner(i, j) != gp.Owner(i, j) {
				t.Fatalf("G=P owner mismatch at (%d,%d)", i, j)
			}
		}
		for p := 0; p < 4; p++ {
			al, ah := co.OwnedRows(p, j)
			bl, bh := g1.OwnedRows(p, j)
			if al != bl || ah != bh {
				t.Fatalf("G=1 rows mismatch p=%d j=%d", p, j)
			}
		}
	}
}

func TestGroupBlockedFillSnapshot(t *testing.T) {
	m := Machine{P: 4, D: 4}
	st, err := m.NewGroupStore(32, 4, 16, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	g := record.Uniform{Seed: 13}
	if err := st.Fill(g); err != nil {
		t.Fatal(err)
	}
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := record.Make(32*4, 16)
	record.Fill(want, g, 0)
	if !bytes.Equal(snap.Data, want.Data) {
		t.Fatal("group-blocked snapshot differs from generated data")
	}
}

func TestNewGroupStoreValidation(t *testing.T) {
	m := Machine{P: 4, D: 4}
	if _, err := m.NewGroupStore(32, 4, 16, 3); err == nil {
		t.Fatal("G not dividing P accepted")
	}
	if _, err := m.NewGroupStore(33, 4, 16, 2); err == nil {
		t.Fatal("G not dividing r accepted")
	}
	if _, err := m.NewGroupStore(32, 3, 16, 2); err == nil {
		t.Fatal("groups not sharing s evenly accepted")
	}
	if _, err := m.NewStore(32, 4, 16, GroupBlocked); err == nil {
		t.Fatal("NewStore accepted GroupBlocked")
	}
}
