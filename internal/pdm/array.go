package pdm

import (
	"fmt"

	"colsort/internal/sim"
)

// DiskArray is the set of D/P disks one processor owns, presented as a
// single logical byte address space striped round-robin in StripeBytes
// blocks. Sequential logical access becomes sequential access on every
// member disk (one seek each); discontiguous access costs a seek per disk
// per jump. Each array is used only by its owning processor's pipeline
// stages, so no locking is needed; accounting goes into the caller's
// sim.Counters.
type DiskArray struct {
	Disks       []Disk
	StripeBytes int64

	lastRead  []int64 // next expected sequential read offset per disk
	lastWrite []int64 // next expected sequential write offset per disk
}

// NewDiskArray stripes the given disks at stripeBytes granularity.
func NewDiskArray(disks []Disk, stripeBytes int) *DiskArray {
	if len(disks) == 0 {
		panic("pdm: empty disk array")
	}
	if stripeBytes <= 0 {
		panic(fmt.Sprintf("pdm: stripe bytes %d must be positive", stripeBytes))
	}
	n := len(disks)
	a := &DiskArray{Disks: disks, StripeBytes: int64(stripeBytes)}
	a.lastRead = make([]int64, n)
	a.lastWrite = make([]int64, n)
	for i := range a.lastRead {
		a.lastRead[i] = -1
		a.lastWrite[i] = -1
	}
	return a
}

// locate maps a logical offset to (disk index, physical offset).
func (a *DiskArray) locate(off int64) (int, int64) {
	n := int64(len(a.Disks))
	block := off / a.StripeBytes
	in := off % a.StripeBytes
	return int(block % n), (block/n)*a.StripeBytes + in
}

// ReadAt reads len(p) bytes starting at logical offset off, charging bytes
// and discontiguous segments to cnt.
func (a *DiskArray) ReadAt(cnt *sim.Counters, p []byte, off int64) error {
	return a.transfer(cnt, p, off, true)
}

// WriteAt writes len(p) bytes starting at logical offset off.
func (a *DiskArray) WriteAt(cnt *sim.Counters, p []byte, off int64) error {
	return a.transfer(cnt, p, off, false)
}

func (a *DiskArray) transfer(cnt *sim.Counters, p []byte, off int64, read bool) error {
	if off < 0 {
		return fmt.Errorf("pdm: negative logical offset %d", off)
	}
	last := a.lastWrite
	if read {
		last = a.lastRead
	}
	for len(p) > 0 {
		d, phys := a.locate(off)
		chunk := int(a.StripeBytes - off%a.StripeBytes)
		if chunk > len(p) {
			chunk = len(p)
		}
		var err error
		if read {
			err = a.Disks[d].ReadAt(p[:chunk], phys)
		} else {
			err = a.Disks[d].WriteAt(p[:chunk], phys)
		}
		if err != nil {
			return err
		}
		if cnt != nil {
			if read {
				cnt.DiskReadBytes += int64(chunk)
				if last[d] != phys {
					cnt.DiskReadOps++
				}
			} else {
				cnt.DiskWriteBytes += int64(chunk)
				if last[d] != phys {
					cnt.DiskWriteOps++
				}
			}
		}
		last[d] = phys + int64(chunk)
		p = p[chunk:]
		off += int64(chunk)
	}
	return nil
}

// Prefetch hints the member disks to stage [off, off+n) of the logical
// address space, walking the same stripe decomposition as a later ReadAt of
// the range so each per-disk extent matches the read that will consume it.
// No accounting happens here: the read is charged when it is issued.
func (a *DiskArray) Prefetch(off int64, n int) {
	if off < 0 || n <= 0 {
		return
	}
	for n > 0 {
		d, phys := a.locate(off)
		chunk := int(a.StripeBytes - off%a.StripeBytes)
		if chunk > n {
			chunk = n
		}
		if pf, ok := a.Disks[d].(Prefetcher); ok {
			pf.Prefetch(phys, chunk)
		}
		n -= chunk
		off += int64(chunk)
	}
}

// Flush drains the write-behind queues of any asynchronous member disks,
// returning the first deferred write error. A no-op on synchronous disks.
func (a *DiskArray) Flush() error {
	var first error
	for _, d := range a.Disks {
		if f, ok := d.(Flusher); ok {
			if err := f.Flush(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Close closes all member disks, returning the first error.
func (a *DiskArray) Close() error {
	var first error
	for _, d := range a.Disks {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
