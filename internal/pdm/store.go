package pdm

import (
	"errors"
	"fmt"
	"sync"

	"colsort/internal/record"
	"colsort/internal/sim"
)

// Layout selects how the rows of each column of an r×s matrix are assigned
// to processors.
type Layout int

const (
	// ColumnOwned is the paper's layout for threaded and subblock
	// columnsort: processor j mod P owns all of column j, stored
	// contiguously (striped across its own disks). With columns assigned
	// round-robin this is also the PDM striped ordering at column
	// granularity, so the final output satisfies footnote 6.
	ColumnOwned Layout = iota
	// RowBlocked is M-columnsort's layout: every processor owns an equal
	// contiguous block of rows of every column (processor p holds rows
	// [p·r/P, (p+1)·r/P)), since a column of r = M records is shared by
	// the whole cluster.
	RowBlocked
	// GroupBlocked generalizes both for hybrid group columnsort: the P
	// processors form P/G groups of G; column j is owned by group
	// j mod (P/G), whose member m holds rows [m·r/G, (m+1)·r/G).
	// G = 1 coincides with ColumnOwned and G = P with RowBlocked.
	GroupBlocked
)

func (l Layout) String() string {
	switch l {
	case ColumnOwned:
		return "column-owned"
	case RowBlocked:
		return "row-blocked"
	case GroupBlocked:
		return "group-blocked"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// Store is an r×s record matrix resident on the cluster's disks.
type Store struct {
	R, S    int
	RecSize int
	P       int
	Layout  Layout
	G       int          // group size; meaningful for GroupBlocked only
	Arrays  []*DiskArray // one per processor

	closeOnce sync.Once
	closeErr  error
}

// NewStore validates the shape against the layout and wraps the arrays.
func NewStore(r, s, recSize, p int, layout Layout, arrays []*DiskArray) (*Store, error) {
	if err := record.CheckSize(recSize); err != nil {
		return nil, err
	}
	if len(arrays) != p {
		return nil, fmt.Errorf("pdm: %d arrays for %d processors", len(arrays), p)
	}
	switch layout {
	case ColumnOwned:
		if s%p != 0 {
			return nil, fmt.Errorf("pdm: P=%d must divide s=%d for column-owned layout", p, s)
		}
	case RowBlocked:
		if r%p != 0 {
			return nil, fmt.Errorf("pdm: P=%d must divide r=%d for row-blocked layout", p, r)
		}
	case GroupBlocked:
		return nil, fmt.Errorf("pdm: group-blocked stores need NewGroupStore")
	default:
		return nil, fmt.Errorf("pdm: unknown layout %v", layout)
	}
	return &Store{R: r, S: s, RecSize: recSize, P: p, Layout: layout, Arrays: arrays}, nil
}

// NewGroupStore builds a GroupBlocked store for group size g.
func NewGroupStore(r, s, recSize, p, g int, arrays []*DiskArray) (*Store, error) {
	if err := record.CheckSize(recSize); err != nil {
		return nil, err
	}
	if len(arrays) != p {
		return nil, fmt.Errorf("pdm: %d arrays for %d processors", len(arrays), p)
	}
	if g < 1 || p%g != 0 {
		return nil, fmt.Errorf("pdm: group size %d must divide P=%d", g, p)
	}
	if r%g != 0 {
		return nil, fmt.Errorf("pdm: G=%d must divide r=%d", g, r)
	}
	if s%(p/g) != 0 {
		return nil, fmt.Errorf("pdm: the %d groups must evenly share s=%d columns", p/g, s)
	}
	return &Store{R: r, S: s, RecSize: recSize, P: p, Layout: GroupBlocked, G: g, Arrays: arrays}, nil
}

// Owner returns the processor owning row i of column j.
func (st *Store) Owner(i, j int) int {
	switch st.Layout {
	case ColumnOwned:
		return j % st.P
	case GroupBlocked:
		ng := st.P / st.G
		return (j%ng)*st.G + i/(st.R/st.G)
	}
	return i / (st.R / st.P)
}

// OwnedRows returns the half-open row range of column j stored on
// processor p; empty when p owns none of the column.
func (st *Store) OwnedRows(p, j int) (lo, hi int) {
	switch st.Layout {
	case ColumnOwned:
		if j%st.P != p {
			return 0, 0
		}
		return 0, st.R
	case GroupBlocked:
		ng := st.P / st.G
		if j%ng != p/st.G {
			return 0, 0
		}
		m := p % st.G
		rb := st.R / st.G
		return m * rb, (m + 1) * rb
	}
	rb := st.R / st.P
	return p * rb, (p + 1) * rb
}

// offset computes the logical byte offset, within processor p's array, of
// (row, col) — which must be owned by p (checked by callers via OwnedRows).
func (st *Store) offset(p, row, col int) int64 {
	z := int64(st.RecSize)
	switch st.Layout {
	case ColumnOwned:
		slot := int64(col / st.P)
		return (slot*int64(st.R) + int64(row)) * z
	case GroupBlocked:
		ng := st.P / st.G
		slot := int64(col / ng)
		rb := int64(st.R / st.G)
		m := int64(p % st.G)
		return (slot*rb + int64(row) - m*rb) * z
	}
	rb := int64(st.R / st.P)
	return (int64(col)*rb + int64(row) - int64(p)*rb) * z
}

// ReadRows reads rows [rowLo, rowLo+dst.Len()) of column j from processor
// p's disks into dst. The range must lie within p's owned rows.
func (st *Store) ReadRows(cnt *sim.Counters, p, j, rowLo int, dst record.Slice) error {
	if err := st.checkRange(p, j, rowLo, dst.Len()); err != nil {
		return err
	}
	if dst.Size != st.RecSize {
		return fmt.Errorf("pdm: buffer record size %d != store %d", dst.Size, st.RecSize)
	}
	return st.Arrays[p].ReadAt(cnt, dst.Data, st.offset(p, rowLo, j))
}

// WriteRows writes src into rows [rowLo, rowLo+src.Len()) of column j on
// processor p's disks.
func (st *Store) WriteRows(cnt *sim.Counters, p, j, rowLo int, src record.Slice) error {
	if err := st.checkRange(p, j, rowLo, src.Len()); err != nil {
		return err
	}
	if src.Size != st.RecSize {
		return fmt.Errorf("pdm: buffer record size %d != store %d", src.Size, st.RecSize)
	}
	return st.Arrays[p].WriteAt(cnt, src.Data, st.offset(p, rowLo, j))
}

// PrefetchRows hints processor p's disks to stage rows [rowLo, rowLo+n) of
// column j ahead of the ReadRows that will consume them. Advisory: rows not
// owned by p, or disks without an async layer, make it a no-op.
func (st *Store) PrefetchRows(p, j, rowLo, n int) {
	if n <= 0 || st.checkRange(p, j, rowLo, n) != nil {
		return
	}
	st.Arrays[p].Prefetch(st.offset(p, rowLo, j), n*st.RecSize)
}

// PrefetchColumn hints the whole of column j (ColumnOwned only).
func (st *Store) PrefetchColumn(p, j int) {
	if st.Layout != ColumnOwned || j < 0 || j >= st.S || p != j%st.P {
		return
	}
	st.PrefetchRows(p, j, 0, st.R)
}

// Flush drains processor p's write-behind queues, surfacing any deferred
// write error. Passes call it when their write stage completes so a
// background failure is attributed to the pass that issued the writes.
func (st *Store) Flush(p int) error {
	if p < 0 || p >= st.P {
		return fmt.Errorf("pdm: processor %d out of range", p)
	}
	return st.Arrays[p].Flush()
}

func (st *Store) checkRange(p, j, rowLo, n int) error {
	if p < 0 || p >= st.P {
		return fmt.Errorf("pdm: processor %d out of range", p)
	}
	if j < 0 || j >= st.S {
		return fmt.Errorf("pdm: column %d out of range (s=%d)", j, st.S)
	}
	lo, hi := st.OwnedRows(p, j)
	if rowLo < lo || rowLo+n > hi {
		return fmt.Errorf("pdm: rows [%d,%d) of column %d not owned by processor %d (owns [%d,%d), layout %v)",
			rowLo, rowLo+n, j, p, lo, hi, st.Layout)
	}
	return nil
}

// ReadColumn reads the whole of column j (ColumnOwned only) into dst.
func (st *Store) ReadColumn(cnt *sim.Counters, p, j int, dst record.Slice) error {
	if st.Layout != ColumnOwned {
		return fmt.Errorf("pdm: ReadColumn requires column-owned layout")
	}
	if dst.Len() != st.R {
		return fmt.Errorf("pdm: column buffer holds %d records, want r=%d", dst.Len(), st.R)
	}
	return st.ReadRows(cnt, p, j, 0, dst)
}

// WriteColumn writes the whole of column j (ColumnOwned only) from src.
func (st *Store) WriteColumn(cnt *sim.Counters, p, j int, src record.Slice) error {
	if st.Layout != ColumnOwned {
		return fmt.Errorf("pdm: WriteColumn requires column-owned layout")
	}
	if src.Len() != st.R {
		return fmt.Errorf("pdm: column buffer holds %d records, want r=%d", src.Len(), st.R)
	}
	return st.WriteRows(cnt, p, j, 0, src)
}

// Machine describes the simulated cluster hardware: P processors, D disks
// (P | D), a striping unit, and the disk backend.
type Machine struct {
	P           int
	D           int
	StripeBytes int
	Backend     Backend

	// SpillBackend, when non-nil, builds the standalone spill disks of
	// hierarchical runs instead of Backend. A checkpointed job points it at
	// a keep-on-close FileBackend in its manifest directory, so spilled
	// runs become durable state a resume can reopen while the array disks
	// (input stores, pipeline scratch) stay ordinary scratch.
	SpillBackend Backend

	// Pools, when non-nil, holds one buffer pool per processor — the
	// machine's node-local memory. Runs sharing a Machine then also share
	// warm buffer pools, so repeated sorts on one Sorter allocate only on
	// their first pass. Nil machines get per-run pools.
	Pools []*record.Pool

	// Async, when non-nil, wraps every disk in an AsyncDisk: reads follow
	// the passes' prefetch hints and writes retire in the background (see
	// async.go). Operation accounting is unchanged by the wrapper.
	Async *AsyncConfig

	// Delay, when non-nil, imposes a per-operation service time on every
	// disk (below the async layer, so write-behind and prefetch genuinely
	// hide it), modeling physical disks on page-cached hardware.
	Delay *DelayConfig

	// Retry, when non-nil, wraps every disk in a RetryDisk: transient
	// faults are re-issued under the bounded backoff policy and every
	// escaping error carries op/disk/offset context. The wrapper sits
	// BELOW the async layer, so a deferred write-behind operation retries
	// before its failure can latch the AsyncDisk.
	Retry *RetryConfig

	// Chaos, when non-nil and enabled, wraps every disk in a seeded
	// ChaosDisk fault injector (below the retry layer, standing in for the
	// failing hardware). Production configurations leave it nil.
	Chaos *ChaosConfig

	// CopyFabric selects the MPI-fidelity copying interconnect: message
	// payloads are deep-copied through a fabric pool at send time instead
	// of transferring buffer ownership. Outputs and operation counts are
	// identical to the default zero-copy fabric; only wall-clock cost
	// differs.
	CopyFabric bool
}

// DefaultStripeBytes is the striping unit used when none is specified.
const DefaultStripeBytes = 64 << 10

// Namespaced returns a copy of the machine whose backend prefixes every
// scratch resource it creates with ns (when the backend supports
// namespacing — see Namespacer). An engine running concurrent jobs gives
// each job's machine copy its own namespace so the jobs' scratch files
// can never collide in a shared directory and leftovers are attributable.
func (m Machine) Namespaced(ns string) Machine {
	if b, ok := m.Backend.(Namespacer); ok {
		m.Backend = b.Namespaced(ns)
	}
	return m
}

// NewArrays builds the per-processor disk arrays: processor p owns disks
// {p, p+P, p+2P, ...}, matching the paper's disk-ownership rule.
func (m Machine) NewArrays() ([]*DiskArray, error) {
	if m.P < 1 || m.D < m.P || m.D%m.P != 0 {
		return nil, fmt.Errorf("pdm: need P ≥ 1 and P | D, got P=%d D=%d", m.P, m.D)
	}
	stripe := m.StripeBytes
	if stripe == 0 {
		stripe = DefaultStripeBytes
	}
	backend := m.Backend
	if backend == nil {
		backend = MemBackend{Pools: m.Pools}
	}
	arrays := make([]*DiskArray, m.P)
	for p := 0; p < m.P; p++ {
		disks := make([]Disk, m.D/m.P)
		for k := range disks {
			d, err := backend.NewDisk(p + k*m.P)
			if err != nil {
				return nil, err
			}
			d = m.wrapFaultLayers(d, p+k*m.P, false)
			if m.Async != nil {
				cfg := *m.Async
				if cfg.Pool == nil && m.Pools != nil {
					cfg.Pool = m.Pools[p] // owning processor's pool
				}
				d = NewAsyncDisk(d, cfg)
			}
			disks[k] = d
		}
		arrays[p] = NewDiskArray(disks, stripe)
	}
	return arrays, nil
}

// NewSpillDisk builds one standalone disk on the machine's backend — the
// backing of a hierarchical-merge run — wrapped with the machine's delay and
// async layers exactly as the array disks are, so run reads follow prefetch
// hints and run writes retire in the background whenever the machine's
// stores do. idx only names the backing file; the backend's generation
// suffix keeps concurrent spills distinct. The caller owns Close (which
// removes a file-backed spill).
func (m Machine) NewSpillDisk(idx int) (Disk, error) {
	backend := m.SpillBackend
	if backend == nil {
		backend = m.Backend
	}
	if backend == nil {
		backend = MemBackend{Pools: m.Pools}
	}
	d, err := backend.NewDisk(idx)
	if err != nil {
		return nil, err
	}
	return m.WrapSpillDisk(d, idx), nil
}

// WrapSpillDisk stacks the machine's fault and async layers over an
// already-open disk exactly as NewSpillDisk wraps a fresh one — the resume
// path's way to give a reopened checkpoint run the same retry policy,
// prefetch and write-behind a freshly spilled run gets.
func (m Machine) WrapSpillDisk(d Disk, idx int) Disk {
	d = m.wrapFaultLayers(d, idx, true)
	if m.Async != nil {
		cfg := *m.Async
		if cfg.Pool == nil && m.Pools != nil {
			cfg.Pool = m.Pools[idx%m.P]
		}
		d = NewAsyncDisk(d, cfg)
	}
	return d
}

// wrapFaultLayers stacks the service-time model, the chaos injector, and
// the retry policy under one disk, in that order: delay models the physical
// disk (so a retried attempt pays service time again), chaos stands in for
// its failures, and retry heals the transient ones before the async layer
// above can latch them.
func (m Machine) wrapFaultLayers(d Disk, idx int, spill bool) Disk {
	if m.Delay != nil {
		d = NewDelayDisk(d, *m.Delay)
	}
	if m.Chaos != nil && m.Chaos.enabled() {
		d = NewChaosDisk(d, *m.Chaos, idx, spill)
	}
	if m.Retry != nil {
		d = NewRetryDisk(d, *m.Retry, idx, spill)
	}
	return d
}

// NewStore allocates a fresh store for an r×s matrix on new arrays.
func (m Machine) NewStore(r, s, recSize int, layout Layout) (*Store, error) {
	arrays, err := m.NewArrays()
	if err != nil {
		return nil, err
	}
	return NewStore(r, s, recSize, m.P, layout, arrays)
}

// NewGroupStore allocates a fresh GroupBlocked store on new arrays.
func (m Machine) NewGroupStore(r, s, recSize, g int) (*Store, error) {
	arrays, err := m.NewArrays()
	if err != nil {
		return nil, err
	}
	return NewGroupStore(r, s, recSize, m.P, g, arrays)
}

// Close closes every array of the store. It is idempotent: the run loop
// releases consumed intermediate stores as soon as their pass completes,
// and error paths may close the same store again.
func (st *Store) Close() error {
	st.closeOnce.Do(func() {
		for _, a := range st.Arrays {
			if err := a.Close(); err != nil && st.closeErr == nil {
				st.closeErr = err
			}
		}
	})
	return st.closeErr
}

// Fill populates the store from a generator, assigning global index
// j·r + i to the record at (row i, column j) — i.e. generator order is
// column-major, matching the input convention of the sorters.
func (st *Store) Fill(g record.Generator) error {
	var cnt sim.Counters
	buf := record.Make(1, st.RecSize)
	for j := 0; j < st.S; j++ {
		for p := 0; p < st.P; p++ {
			lo, hi := st.OwnedRows(p, j)
			if lo == hi {
				continue
			}
			chunk := record.Make(hi-lo, st.RecSize)
			for i := lo; i < hi; i++ {
				g.Gen(buf.Record(0), int64(j)*int64(st.R)+int64(i))
				chunk.CopyRecord(i-lo, buf, 0)
			}
			if err := st.WriteRows(&cnt, p, j, lo, chunk); err != nil {
				return err
			}
		}
	}
	for p := 0; p < st.P; p++ {
		if err := st.Flush(p); err != nil {
			return err
		}
	}
	return nil
}

// ErrStopScan, returned by a ScanSegments visitor, ends the scan early and
// successfully — before the remaining segments are visited or prefetched.
var ErrStopScan = errors.New("pdm: stop scan")

// ScanSegments visits every owned (processor, column, row-range) segment of
// the store in global column-major order — the order in which the sorted
// records appear — prefetching each segment one step ahead of the visit, so
// on async-backed disks the caller's per-segment processing overlaps the
// next segment's read. All the store's serial scans (Snapshot, Checksum,
// verification, output streaming) are built on it. A visitor returning
// ErrStopScan ends the scan without error and without staging further
// prefetches (the stopping visit's one-ahead hint has already been issued;
// at most that one staged extent goes unconsumed until Close).
func (st *Store) ScanSegments(visit func(p, j, lo, hi int) error) error {
	type seg struct{ p, j, lo, hi int }
	segs := make([]seg, 0, st.S*st.P)
	for j := 0; j < st.S; j++ {
		for p := 0; p < st.P; p++ {
			if lo, hi := st.OwnedRows(p, j); lo < hi {
				segs = append(segs, seg{p, j, lo, hi})
			}
		}
	}
	for i, sg := range segs {
		if i+1 < len(segs) {
			nx := segs[i+1]
			st.PrefetchRows(nx.p, nx.j, nx.lo, nx.hi-nx.lo)
		}
		if err := visit(sg.p, sg.j, sg.lo, sg.hi); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
	}
	return nil
}

// Snapshot reads the whole matrix into memory (tests and verification).
func (st *Store) Snapshot() (record.Slice, error) {
	var cnt sim.Counters
	out := record.Make(st.R*st.S, st.RecSize)
	buf := record.Make(st.R, st.RecSize)
	err := st.ScanSegments(func(p, j, lo, hi int) error {
		chunk := buf.Sub(0, hi-lo)
		if err := st.ReadRows(&cnt, p, j, lo, chunk); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			out.CopyRecord(j*st.R+i, chunk, i-lo)
		}
		return nil
	})
	if err != nil {
		return record.Slice{}, err
	}
	return out, nil
}

// Checksum computes the order-independent multiset checksum of the store's
// contents without holding more than one column in memory.
func (st *Store) Checksum() (record.Checksum, error) {
	var cnt sim.Counters
	var c record.Checksum
	buf := record.Make(st.R, st.RecSize)
	err := st.ScanSegments(func(p, j, lo, hi int) error {
		chunk := buf.Sub(0, hi-lo)
		if err := st.ReadRows(&cnt, p, j, lo, chunk); err != nil {
			return err
		}
		c.AddSlice(chunk)
		return nil
	})
	return c, err
}
