// Package bitperm implements the subblock permutation of Chaudhry, Hamon &
// Cormen (Figure 1 of the paper) both as the arithmetic map
//
//	i' = ⌊j/√s⌋·(r/√s) + ⌊i/√s⌋
//	j' = (j mod √s) + (i mod √s)·√s
//
// and as a permutation of the bits of the (row, column) address, together
// with the analytic communication predictions of Section 3 (properties 1–3):
// each processor sends ⌈P/√s⌉ messages per round, and none of them cross the
// network when √s ≥ P.
//
// The package also provides the small power-of-two arithmetic helpers that
// the rest of the system shares, since the paper assumes all configuration
// parameters are powers of 2 (and s a power of 4 for subblock columnsort).
package bitperm

import "fmt"

// IsPow2 reports whether x is a positive power of two.
func IsPow2(x int) bool { return x > 0 && x&(x-1) == 0 }

// IsPow4 reports whether x is a positive power of four.
func IsPow4(x int) bool { return IsPow2(x) && Log2(x)%2 == 0 }

// Log2 returns log₂(x) for a positive power of two, panicking otherwise;
// callers validate configuration before arithmetic, so a violation here is
// a programmer error.
func Log2(x int) int {
	if !IsPow2(x) {
		panic(fmt.Sprintf("bitperm: %d is not a positive power of two", x))
	}
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// Sqrt returns √x for x a power of four.
func Sqrt(x int) int {
	if !IsPow4(x) {
		panic(fmt.Sprintf("bitperm: %d is not a power of four", x))
	}
	return 1 << (Log2(x) / 2)
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int { return (a + b - 1) / b }

// Subblock is the subblock permutation for a fixed r×s matrix shape.
type Subblock struct {
	R, S int
	q    int // √s
}

// NewSubblock validates the shape (r, s powers of two; s a power of four;
// √s ≤ r so row subblock indexing is meaningful) and returns the permutation.
func NewSubblock(r, s int) (Subblock, error) {
	if !IsPow2(r) {
		return Subblock{}, fmt.Errorf("bitperm: r=%d must be a power of 2", r)
	}
	if !IsPow4(s) {
		return Subblock{}, fmt.Errorf("bitperm: s=%d must be a power of 4", s)
	}
	q := Sqrt(s)
	if q > r {
		return Subblock{}, fmt.Errorf("bitperm: √s=%d exceeds r=%d", q, r)
	}
	return Subblock{R: r, S: s, q: q}, nil
}

// MustSubblock is NewSubblock for statically known-good shapes.
func MustSubblock(r, s int) Subblock {
	sb, err := NewSubblock(r, s)
	if err != nil {
		panic(err)
	}
	return sb
}

// SqrtS returns √s.
func (sb Subblock) SqrtS() int { return sb.q }

// Map applies the permutation to matrix position (row i, column j).
func (sb Subblock) Map(i, j int) (ti, tj int) {
	q := sb.q
	ti = (j/q)*(sb.R/q) + i/q
	tj = (j % q) + (i%q)*q
	return ti, tj
}

// Inverse applies the inverse permutation: given a target position, return
// the source position that maps there.
func (sb Subblock) Inverse(ti, tj int) (i, j int) {
	q := sb.q
	// From Map: ti = (j/q)·(R/q) + i/q and tj = (j mod q) + (i mod q)·q.
	// R/q > ... recover the quotients and remainders.
	jq := ti / (sb.R / q) // j/q
	iq := ti % (sb.R / q) // i/q
	jr := tj % q          // j mod q
	ir := tj / q          // i mod q
	return iq*q + ir, jq*q + jr
}

// TargetColumn returns only the destination column of (i, j); the
// communicate stage routes records by destination column ownership.
func (sb Subblock) TargetColumn(i, j int) int {
	return (j % sb.q) + (i%sb.q)*sb.q
}

// TargetColumns returns the set (as a sorted slice) of destination columns
// that records of source column j reach: exactly √s of them.
func (sb Subblock) TargetColumns(j int) []int {
	q := sb.q
	cols := make([]int, q)
	for im := 0; im < q; im++ {
		cols[im] = (j % q) + im*q
	}
	return cols
}

// TargetProcs returns the set of processors (owners of destination columns,
// owner = column mod P) that source column j sends to, for P a power of two.
func (sb Subblock) TargetProcs(j, p int) map[int]bool {
	procs := make(map[int]bool)
	for _, c := range sb.TargetColumns(j) {
		procs[c%p] = true
	}
	return procs
}

// MessagesPerRound is property 1 of Section 3: in the communicate stage of
// each subblock-pass round, each processor sends ⌈P/√s⌉ messages.
func MessagesPerRound(p, s int) int {
	if !IsPow2(p) || !IsPow4(s) {
		panic(fmt.Sprintf("bitperm: MessagesPerRound(%d, %d) needs power-of-2 P, power-of-4 s", p, s))
	}
	return CeilDiv(p, Sqrt(s))
}

// NoNetworkComm is property 2: when √s ≥ P the single message per round is
// always destined for the sending processor, so nothing crosses the network.
func NoNetworkComm(p, s int) bool { return Sqrt(s) >= p }

// BitPerm is a permutation of the bits of a combined column-major address
// a = j·r + i (low lg r bits hold the row, high lg s bits the column).
// to[t] gives the source bit position feeding target bit t.
type BitPerm struct {
	to []int
}

// Apply permutes the bits of a.
func (bp BitPerm) Apply(a int) int {
	out := 0
	for t, srcBit := range bp.to {
		out |= ((a >> srcBit) & 1) << t
	}
	return out
}

// Bits returns the width of the permutation.
func (bp BitPerm) Bits() int { return len(bp.to) }

// IsBijection verifies that the bit-position assignment is a permutation.
func (bp BitPerm) IsBijection() bool {
	seen := make([]bool, len(bp.to))
	for _, s := range bp.to {
		if s < 0 || s >= len(bp.to) || seen[s] {
			return false
		}
		seen[s] = true
	}
	return true
}

// BitForm expresses the subblock permutation as a BitPerm over the combined
// address, exactly following Figure 1 of the paper:
//
//	source row bits:  x = i[0 .. lg√s−1],  w = i[lg√s .. lg r−1]
//	source col bits:  z = j[0 .. lg√s−1],  y = j[lg√s .. lg s−1]
//	target row bits:  i' = [ w at 0..lg(r/√s)−1 | y at lg(r/√s)..lg r−1 ]
//	target col bits:  j' = [ z at 0..lg√s−1     | x at lg√s..lg s−1     ]
func (sb Subblock) BitForm() BitPerm {
	lgR, lgS := Log2(sb.R), Log2(sb.S)
	lgQ := lgS / 2
	to := make([]int, lgR+lgS)
	// Target row bits occupy combined positions 0..lgR−1.
	for b := 0; b < lgR-lgQ; b++ { // w: source row bits lgQ..lgR−1
		to[b] = lgQ + b
	}
	for b := 0; b < lgQ; b++ { // y: source col bits lgQ..lgS−1 (combined lgR+lgQ+b)
		to[lgR-lgQ+b] = lgR + lgQ + b
	}
	// Target column bits occupy combined positions lgR..lgR+lgS−1.
	for b := 0; b < lgQ; b++ { // z: source col bits 0..lgQ−1 (combined lgR+b)
		to[lgR+b] = lgR + b
	}
	for b := 0; b < lgQ; b++ { // x: source row bits 0..lgQ−1
		to[lgR+lgQ+b] = b
	}
	return BitPerm{to: to}
}
