package bitperm

import (
	"testing"
	"testing/quick"
)

func TestPowHelpers(t *testing.T) {
	for _, x := range []int{1, 2, 4, 1024, 1 << 30} {
		if !IsPow2(x) {
			t.Errorf("IsPow2(%d) = false", x)
		}
	}
	for _, x := range []int{0, -1, 3, 6, 12, 1<<30 + 1} {
		if IsPow2(x) {
			t.Errorf("IsPow2(%d) = true", x)
		}
	}
	for _, x := range []int{1, 4, 16, 64, 256} {
		if !IsPow4(x) {
			t.Errorf("IsPow4(%d) = false", x)
		}
	}
	for _, x := range []int{2, 8, 32, 0, 3} {
		if IsPow4(x) {
			t.Errorf("IsPow4(%d) = true", x)
		}
	}
	if Log2(1) != 0 || Log2(2) != 1 || Log2(1024) != 10 {
		t.Error("Log2 wrong")
	}
	if Sqrt(4) != 2 || Sqrt(256) != 16 {
		t.Error("Sqrt wrong")
	}
	if CeilDiv(7, 2) != 4 || CeilDiv(8, 2) != 4 || CeilDiv(1, 16) != 1 {
		t.Error("CeilDiv wrong")
	}
}

func TestLog2PanicsOnNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log2(3) did not panic")
		}
	}()
	Log2(3)
}

func TestNewSubblockValidation(t *testing.T) {
	cases := []struct {
		r, s int
		ok   bool
	}{
		{64, 16, true},
		{32, 4, true},
		{1024, 256, true},
		{63, 16, false}, // r not power of 2
		{64, 8, false},  // s not power of 4
		{64, 32, false}, // s not power of 4
		{2, 16, false},  // √s > r
		{4, 16, true},   // √s == r... √16=4 ≤ r=4
		{16, 256, true}, // √s == r
		{8, 256, false}, // √s=16 > r=8
	}
	for _, c := range cases {
		_, err := NewSubblock(c.r, c.s)
		if (err == nil) != c.ok {
			t.Errorf("NewSubblock(%d, %d): err=%v, want ok=%v", c.r, c.s, err, c.ok)
		}
	}
}

func TestSubblockIsBijection(t *testing.T) {
	for _, shape := range [][2]int{{32, 4}, {64, 16}, {128, 16}, {256, 64}} {
		sb := MustSubblock(shape[0], shape[1])
		seen := make(map[[2]int]bool)
		for j := 0; j < sb.S; j++ {
			for i := 0; i < sb.R; i++ {
				ti, tj := sb.Map(i, j)
				if ti < 0 || ti >= sb.R || tj < 0 || tj >= sb.S {
					t.Fatalf("(%d,%d) r=%d s=%d: out of range target (%d,%d)", i, j, sb.R, sb.S, ti, tj)
				}
				k := [2]int{ti, tj}
				if seen[k] {
					t.Fatalf("r=%d s=%d: target (%d,%d) hit twice", sb.R, sb.S, ti, tj)
				}
				seen[k] = true
			}
		}
	}
}

func TestSubblockInverse(t *testing.T) {
	sb := MustSubblock(64, 16)
	for j := 0; j < sb.S; j++ {
		for i := 0; i < sb.R; i++ {
			ti, tj := sb.Map(i, j)
			bi, bj := sb.Inverse(ti, tj)
			if bi != i || bj != j {
				t.Fatalf("Inverse(Map(%d,%d)) = (%d,%d)", i, j, bi, bj)
			}
		}
	}
}

// TestSubblockProperty verifies the defining property (Section 3 / [CC03]):
// the s entries of every aligned √s×√s subblock map to all s distinct
// columns.
func TestSubblockProperty(t *testing.T) {
	for _, shape := range [][2]int{{32, 4}, {64, 16}, {256, 16}, {256, 64}} {
		sb := MustSubblock(shape[0], shape[1])
		q := sb.SqrtS()
		for bi := 0; bi < sb.R/q; bi++ {
			for bj := 0; bj < sb.S/q; bj++ {
				cols := make(map[int]bool)
				for di := 0; di < q; di++ {
					for dj := 0; dj < q; dj++ {
						_, tj := sb.Map(bi*q+di, bj*q+dj)
						cols[tj] = true
					}
				}
				if len(cols) != sb.S {
					t.Fatalf("r=%d s=%d subblock (%d,%d): %d distinct target columns, want %d",
						sb.R, sb.S, bi, bj, len(cols), sb.S)
				}
			}
		}
	}
}

// TestBitFormMatchesArithmetic is experiment E2: the Figure-1 bit
// permutation and the arithmetic formula are the same map.
func TestBitFormMatchesArithmetic(t *testing.T) {
	for _, shape := range [][2]int{{32, 4}, {64, 16}, {128, 16}, {64, 64}} {
		sb := MustSubblock(shape[0], shape[1])
		bp := sb.BitForm()
		if !bp.IsBijection() {
			t.Fatalf("r=%d s=%d: bit form is not a bijection", sb.R, sb.S)
		}
		if bp.Bits() != Log2(sb.R)+Log2(sb.S) {
			t.Fatalf("bit width %d, want %d", bp.Bits(), Log2(sb.R)+Log2(sb.S))
		}
		for j := 0; j < sb.S; j++ {
			for i := 0; i < sb.R; i++ {
				ti, tj := sb.Map(i, j)
				a := j*sb.R + i
				ta := bp.Apply(a)
				if ta != tj*sb.R+ti {
					t.Fatalf("r=%d s=%d (%d,%d): bit form gives %d, arithmetic gives %d",
						sb.R, sb.S, i, j, ta, tj*sb.R+ti)
				}
			}
		}
	}
}

// TestSortedRuns verifies the run-structure claim of Section 3: elements of
// one source column landing in the same target column form, in target-row
// order, a sequence of source rows that ascend by √s — i.e. a sorted run of
// length r/√s when the source column is sorted.
func TestSortedRuns(t *testing.T) {
	sb := MustSubblock(128, 16)
	q := sb.SqrtS()
	for j := 0; j < sb.S; j++ {
		// Group source rows by target column.
		byCol := make(map[int][][2]int) // target col -> list of (target row, source row)
		for i := 0; i < sb.R; i++ {
			ti, tj := sb.Map(i, j)
			byCol[tj] = append(byCol[tj], [2]int{ti, i})
		}
		if len(byCol) != q {
			t.Fatalf("column %d reaches %d target columns, want √s=%d", j, len(byCol), q)
		}
		for tj, pairs := range byCol {
			if len(pairs) != sb.R/q {
				t.Fatalf("col %d→%d: run length %d, want r/√s=%d", j, tj, len(pairs), sb.R/q)
			}
			// Sort by target row (pairs arrive in source-row order; the
			// permutation maps consecutive +√s source rows to consecutive
			// target rows, so check contiguity and ascent directly).
			for a := 0; a < len(pairs); a++ {
				for b := a + 1; b < len(pairs); b++ {
					if pairs[a][0] > pairs[b][0] {
						pairs[a], pairs[b] = pairs[b], pairs[a]
					}
				}
			}
			for k := 1; k < len(pairs); k++ {
				if pairs[k][0] != pairs[k-1][0]+1 {
					t.Fatalf("col %d→%d: target rows not contiguous", j, tj)
				}
				if pairs[k][1] != pairs[k-1][1]+q {
					t.Fatalf("col %d→%d: source rows not ascending by √s", j, tj)
				}
			}
		}
	}
}

// TestMessagesPerRound is experiment E5's analytic side: enumerate target
// processors per source column and compare with ⌈P/√s⌉.
func TestMessagesPerRound(t *testing.T) {
	for _, s := range []int{4, 16, 64, 256} {
		r := 4 * s * s // any tall-enough power of 2
		sb := MustSubblock(r, s)
		for p := 1; p <= 32; p *= 2 {
			if p > s {
				continue // more procs than columns is not a legal config
			}
			want := MessagesPerRound(p, s)
			for j := 0; j < s; j++ {
				got := len(sb.TargetProcs(j, p))
				if got != want {
					t.Fatalf("s=%d P=%d col %d: %d target procs, want ⌈P/√s⌉=%d", s, p, j, got, want)
				}
			}
			if NoNetworkComm(p, s) != (want == 1) {
				t.Fatalf("s=%d P=%d: NoNetworkComm inconsistent with message count", s, p)
			}
			if NoNetworkComm(p, s) {
				// Property 2: the single destination is the sender itself.
				for j := 0; j < s; j++ {
					procs := sb.TargetProcs(j, p)
					if !procs[j%p] {
						t.Fatalf("s=%d P=%d col %d: single message not self-destined", s, p, j)
					}
				}
			}
		}
	}
}

// TestSubblockOptimality is property 3: no permutation with the subblock
// property can send fewer than ⌈P/√s⌉ messages. We verify the counting
// argument's premise on our permutation: every source column maps to
// exactly √s target columns (can't be fewer).
func TestSubblockOptimality(t *testing.T) {
	sb := MustSubblock(256, 64)
	for j := 0; j < sb.S; j++ {
		if got := len(sb.TargetColumns(j)); got != sb.SqrtS() {
			t.Fatalf("col %d maps to %d target columns, want √s", j, got)
		}
	}
}

func TestSubblockQuick(t *testing.T) {
	sb := MustSubblock(1024, 256)
	f := func(iu, ju uint16) bool {
		i := int(iu) % sb.R
		j := int(ju) % sb.S
		ti, tj := sb.Map(i, j)
		bi, bj := sb.Inverse(ti, tj)
		return bi == i && bj == j && tj == sb.TargetColumn(i, j)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMessagesPerRoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MessagesPerRound(3, 16) did not panic")
		}
	}()
	MessagesPerRound(3, 16)
}
