// Package sim provides the operation accounting and the calibrated cost
// model that stand in for the paper's Beowulf testbed.
//
// The out-of-core algorithms in internal/core run for real (they genuinely
// move every record through simulated disks and a message-passing cluster),
// and while doing so they count operations: bytes and contiguous segments
// per disk, bytes and messages over the network, comparison work and record
// movement in the CPU stages, and pipeline rounds. Those counts are exact
// and machine-independent.
//
// A CostModel maps counts to estimated seconds on a reference machine. The
// default model is calibrated to the paper's testbed (Section 5): dual
// 1.5 GHz P4 Xeon nodes, one Ultra-160 10k RPM SCSI disk per node, Myrinet
// at 250 MB/s peak. Absolute seconds are approximate by construction; the
// quantities the reproduction relies on — which algorithm wins, pass-count
// ratios, buffer-size effects — are ratios of counted work and are
// insensitive to the constants.
package sim

import (
	"fmt"
	"math"
)

// Counters accumulates the operations one processor performs during one
// pass. Each processor owns its Counters value (no sharing, no atomics);
// aggregation happens after the run. The JSON tags are the wire
// representation of the colsort-server's job summaries and metrics;
// TestWireEncodingGolden (root package) pins them.
type Counters struct {
	// Disk traffic on the disks this processor owns.
	DiskReadBytes  int64 `json:"disk_read_bytes"`
	DiskWriteBytes int64 `json:"disk_write_bytes"`
	DiskReadOps    int64 `json:"disk_read_ops"`  // contiguous segments read (≈ seeks)
	DiskWriteOps   int64 `json:"disk_write_ops"` // contiguous segments written (≈ seeks)

	// Network traffic sent by this processor. Self-destined messages are
	// counted separately: they cost a memory copy but no wire time.
	NetBytes   int64 `json:"net_bytes"`
	NetMsgs    int64 `json:"net_msgs"`
	LocalBytes int64 `json:"local_bytes"`
	LocalMsgs  int64 `json:"local_msgs"`

	// CPU work. CompareUnits approximates comparison work (n·⌈lg n⌉ for a
	// sort of n, n·⌈lg k⌉ for a k-way merge); MovedBytes counts record
	// bytes copied by sort gathers, permute stages and message packing.
	CompareUnits int64 `json:"compare_units"`
	MovedBytes   int64 `json:"moved_bytes"`

	// Rounds counts pipeline rounds this processor participated in.
	Rounds int64 `json:"rounds"`

	// Fault tolerance: what the storage fault layers absorbed or detected.
	// Zero on a healthy run; none of these feed the cost model (a retry's
	// cost is its re-issued disk traffic, charged above).
	DiskRetries   int64 `json:"disk_retries"`   // transient disk faults healed by retry
	DiskGiveUps   int64 `json:"disk_give_ups"`  // transient faults that exhausted the retry budget
	CorruptChunks int64 `json:"corrupt_chunks"` // spill-run chunks failing CRC32C verification
	ChunkRereads  int64 `json:"chunk_rereads"`  // corrupt chunks healed by an invalidate-and-reread
	BatchRedos    int64 `json:"batch_redos"`    // hierarchical batches re-sorted/re-spilled
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.DiskReadBytes += o.DiskReadBytes
	c.DiskWriteBytes += o.DiskWriteBytes
	c.DiskReadOps += o.DiskReadOps
	c.DiskWriteOps += o.DiskWriteOps
	c.NetBytes += o.NetBytes
	c.NetMsgs += o.NetMsgs
	c.LocalBytes += o.LocalBytes
	c.LocalMsgs += o.LocalMsgs
	c.CompareUnits += o.CompareUnits
	c.MovedBytes += o.MovedBytes
	c.Rounds += o.Rounds
	c.DiskRetries += o.DiskRetries
	c.DiskGiveUps += o.DiskGiveUps
	c.CorruptChunks += o.CorruptChunks
	c.ChunkRereads += o.ChunkRereads
	c.BatchRedos += o.BatchRedos
}

// SortWork returns the CompareUnits charge for a comparison sort of n
// records: n·⌈lg n⌉.
func SortWork(n int) int64 {
	if n <= 1 {
		return int64(n)
	}
	return int64(n) * int64(ceilLog2(n))
}

// MergeWork returns the CompareUnits charge for a k-way merge of n total
// records: n·⌈lg k⌉ (a loser tree does one comparison per level).
func MergeWork(n, k int) int64 {
	if k <= 1 {
		return 0
	}
	return int64(n) * int64(ceilLog2(k))
}

func ceilLog2(x int) int {
	n := 0
	for (1 << n) < x {
		n++
	}
	return n
}

// CostModel holds the calibrated constants of the reference machine.
type CostModel struct {
	DiskBandwidth float64 // bytes/sec sustained per disk
	SeekTime      float64 // seconds per discontiguous disk access
	NetBandwidth  float64 // bytes/sec effective per processor link
	MsgLatency    float64 // seconds per message
	CompareRate   float64 // CompareUnits/sec
	MemBandwidth  float64 // bytes/sec for in-memory record movement
	RoundOverhead float64 // seconds of pipeline stage-switch cost per round

	// OverlapLoss is the fraction of non-dominant resource time that is NOT
	// hidden behind the dominant resource. A perfectly pipelined pass has
	// loss 0 (total = max of the per-resource times); 1 means fully serial.
	OverlapLoss float64
}

// Beowulf2003 returns the cost model calibrated to the paper's cluster.
//
// Calibration anchors (Section 5, Figure 2): a 3-pass baseline I/O run
// costs ≈150 s per GB/processor (⇒ ~40 MB/s effective disk rate); the
// 4-pass baseline is 4/3 of that; halving the buffer from 2²⁵ to 2²⁴ bytes
// adds ≈10 % through extra pipeline switching; M-columnsort sits well above
// the 3-pass baseline but below subblock columnsort.
func Beowulf2003() CostModel {
	return CostModel{
		DiskBandwidth: 40 << 20,  // 40 MiB/s sustained SCSI
		SeekTime:      2e-3,      // effective: write-behind coalesces most of the 8 ms raw seek
		NetBandwidth:  125 << 20, // half of Myrinet peak per direction
		MsgLatency:    60e-6,     // MPI-era point-to-point latency
		CompareRate:   30e6,      // 1.5 GHz P4, ~50 cycles/compare-move
		MemBandwidth:  1 << 30,   // PC800-era copy bandwidth
		RoundOverhead: 0.05,      // thread/stage switching per pipeline round
		OverlapLoss:   0.10,      // pipelines hide most non-dominant work
	}
}

// PassEstimate is the estimated wall time of one pass, broken down by
// resource. Total = max(resources) + OverlapLoss·(sum − max) + Overhead.
type PassEstimate struct {
	Disk, Net, CPU float64 // per-resource busy time (max over processors)
	Overhead       float64
	Total          float64
}

// EstimatePass estimates the wall time of a pass from per-processor
// counters. disksPerProc is D/P: a processor's reads and writes stripe
// across its disks in parallel.
func (cm CostModel) EstimatePass(perProc []Counters, disksPerProc int) PassEstimate {
	if disksPerProc < 1 {
		disksPerProc = 1
	}
	var est PassEstimate
	var rounds int64
	for _, c := range perProc {
		disk := (float64(c.DiskReadBytes)+float64(c.DiskWriteBytes))/(cm.DiskBandwidth*float64(disksPerProc)) +
			float64(c.DiskReadOps+c.DiskWriteOps)/float64(disksPerProc)*cm.SeekTime
		net := float64(c.NetBytes)/cm.NetBandwidth + float64(c.NetMsgs)*cm.MsgLatency
		cpu := float64(c.CompareUnits)/cm.CompareRate + float64(c.MovedBytes)/cm.MemBandwidth
		est.Disk = math.Max(est.Disk, disk)
		est.Net = math.Max(est.Net, net)
		est.CPU = math.Max(est.CPU, cpu)
		if c.Rounds > rounds {
			rounds = c.Rounds
		}
	}
	est.Overhead = float64(rounds) * cm.RoundOverhead
	sum := est.Disk + est.Net + est.CPU
	dominant := math.Max(est.Disk, math.Max(est.Net, est.CPU))
	est.Total = dominant + cm.OverlapLoss*(sum-dominant) + est.Overhead
	return est
}

// RunEstimate sums pass estimates into a whole-run estimate.
type RunEstimate struct {
	Passes []PassEstimate
	Total  float64
}

// EstimateRun estimates a multi-pass run: passes do not overlap each other
// (each pass must finish writing before the next can read).
func (cm CostModel) EstimateRun(passes [][]Counters, disksPerProc int) RunEstimate {
	var run RunEstimate
	for _, pc := range passes {
		e := cm.EstimatePass(pc, disksPerProc)
		run.Passes = append(run.Passes, e)
		run.Total += e.Total
	}
	return run
}

func (e PassEstimate) String() string {
	return fmt.Sprintf("disk %.2fs net %.2fs cpu %.2fs ovh %.2fs → %.2fs",
		e.Disk, e.Net, e.CPU, e.Overhead, e.Total)
}
