package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCountersAdd(t *testing.T) {
	a := Counters{DiskReadBytes: 1, DiskWriteBytes: 2, DiskReadOps: 3, DiskWriteOps: 4,
		NetBytes: 5, NetMsgs: 6, LocalBytes: 7, LocalMsgs: 8,
		CompareUnits: 9, MovedBytes: 10, Rounds: 11}
	b := a
	a.Add(b)
	if a.DiskReadBytes != 2 || a.Rounds != 22 || a.CompareUnits != 18 || a.LocalMsgs != 16 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestSortWork(t *testing.T) {
	if SortWork(0) != 0 || SortWork(1) != 1 {
		t.Fatal("SortWork base cases wrong")
	}
	if SortWork(1024) != 1024*10 {
		t.Fatalf("SortWork(1024) = %d", SortWork(1024))
	}
	if SortWork(1025) != 1025*11 {
		t.Fatalf("SortWork(1025) = %d", SortWork(1025))
	}
}

func TestMergeWork(t *testing.T) {
	if MergeWork(100, 1) != 0 {
		t.Fatal("1-way merge should be free")
	}
	if MergeWork(100, 2) != 100 {
		t.Fatal("2-way merge = n")
	}
	if MergeWork(100, 8) != 300 {
		t.Fatal("8-way merge = 3n")
	}
	if MergeWork(100, 5) != 300 {
		t.Fatal("5-way merge = n·⌈lg 5⌉ = 3n")
	}
}

func TestEstimatePassDiskBound(t *testing.T) {
	cm := Beowulf2003()
	// One processor reading+writing 1 GiB with no other work: time should
	// be ≈ 2 GiB / 40 MiB/s ≈ 51.2 s.
	c := Counters{DiskReadBytes: 1 << 30, DiskWriteBytes: 1 << 30}
	e := cm.EstimatePass([]Counters{c}, 1)
	if math.Abs(e.Disk-51.2) > 0.1 {
		t.Fatalf("disk time %.2f, want ≈51.2", e.Disk)
	}
	if e.Total < e.Disk {
		t.Fatal("total below dominant resource")
	}
}

func TestEstimatePassMultiDiskScaling(t *testing.T) {
	cm := Beowulf2003()
	c := Counters{DiskReadBytes: 1 << 30, DiskReadOps: 100}
	one := cm.EstimatePass([]Counters{c}, 1)
	four := cm.EstimatePass([]Counters{c}, 4)
	if math.Abs(one.Disk/four.Disk-4) > 0.01 {
		t.Fatalf("4 disks should be 4× faster: %.2f vs %.2f", one.Disk, four.Disk)
	}
}

func TestEstimatePassMaxOverProcs(t *testing.T) {
	cm := Beowulf2003()
	light := Counters{DiskReadBytes: 1 << 20}
	heavy := Counters{DiskReadBytes: 1 << 30}
	e := cm.EstimatePass([]Counters{light, heavy, light}, 1)
	solo := cm.EstimatePass([]Counters{heavy}, 1)
	if e.Disk != solo.Disk {
		t.Fatal("pass time should be the max over processors")
	}
}

func TestEstimatePassOverlap(t *testing.T) {
	cm := Beowulf2003()
	cm.OverlapLoss = 0
	c := Counters{DiskReadBytes: 1 << 30, NetBytes: 1 << 30, CompareUnits: 1 << 30}
	e := cm.EstimatePass([]Counters{c}, 1)
	want := math.Max(e.Disk, math.Max(e.Net, e.CPU))
	if math.Abs(e.Total-want) > 1e-9 {
		t.Fatalf("with zero loss total %.3f should equal dominant %.3f", e.Total, want)
	}
	cm.OverlapLoss = 1
	e = cm.EstimatePass([]Counters{c}, 1)
	if math.Abs(e.Total-(e.Disk+e.Net+e.CPU)) > 1e-9 {
		t.Fatal("with full loss total should be the sum")
	}
}

func TestEstimateRunSumsPasses(t *testing.T) {
	cm := Beowulf2003()
	c := Counters{DiskReadBytes: 1 << 28}
	run := cm.EstimateRun([][]Counters{{c}, {c}, {c}}, 1)
	if len(run.Passes) != 3 {
		t.Fatal("pass count wrong")
	}
	if math.Abs(run.Total-3*run.Passes[0].Total) > 1e-9 {
		t.Fatal("run total should be the sum of pass totals")
	}
}

func TestRoundOverheadCharged(t *testing.T) {
	cm := Beowulf2003()
	a := cm.EstimatePass([]Counters{{Rounds: 10}}, 1)
	b := cm.EstimatePass([]Counters{{Rounds: 20}}, 1)
	if b.Overhead <= a.Overhead {
		t.Fatal("more rounds must cost more overhead")
	}
}

// TestBaselineRatioFourThirds anchors experiment E10: with pure I/O
// counters, a 4-pass run costs exactly 4/3 of a 3-pass run.
func TestBaselineRatioFourThirds(t *testing.T) {
	cm := Beowulf2003()
	pass := []Counters{{DiskReadBytes: 1 << 30, DiskWriteBytes: 1 << 30}}
	three := cm.EstimateRun([][]Counters{pass, pass, pass}, 1)
	four := cm.EstimateRun([][]Counters{pass, pass, pass, pass}, 1)
	if math.Abs(four.Total/three.Total-4.0/3.0) > 1e-9 {
		t.Fatalf("4-pass/3-pass = %.4f, want 4/3", four.Total/three.Total)
	}
}

func TestEstimateMonotoneQuick(t *testing.T) {
	cm := Beowulf2003()
	f := func(rb, wb uint32, ops uint16) bool {
		base := Counters{DiskReadBytes: int64(rb), DiskWriteBytes: int64(wb), DiskReadOps: int64(ops)}
		more := base
		more.DiskReadBytes += 1 << 20
		a := cm.EstimatePass([]Counters{base}, 2)
		b := cm.EstimatePass([]Counters{more}, 2)
		return b.Total >= a.Total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimatePassZeroDisks(t *testing.T) {
	cm := Beowulf2003()
	// disksPerProc below 1 must clamp, not divide by zero.
	e := cm.EstimatePass([]Counters{{DiskReadBytes: 1 << 20}}, 0)
	if e.Disk <= 0 || math.IsInf(e.Disk, 0) || math.IsNaN(e.Disk) {
		t.Fatalf("bad disk estimate %v", e.Disk)
	}
}

func TestPassEstimateString(t *testing.T) {
	e := PassEstimate{Disk: 1, Net: 2, CPU: 3, Overhead: 4, Total: 10}
	if e.String() == "" {
		t.Fatal("empty String()")
	}
}
