package incore

import (
	"bytes"
	"fmt"
	"testing"

	"colsort/internal/cluster"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/verify"
)

// runSort executes one distributed sort on p processors with n local
// records each, filled from gen at disjoint global offsets, and returns
// the concatenated global result plus per-processor counters.
func runSort(t *testing.T, s Sorter, p, n, z int, gen record.Generator) (record.Slice, []sim.Counters) {
	t.Helper()
	results := make([]record.Slice, p)
	cnts := make([]sim.Counters, p)
	err := cluster.Run(p, func(pr *cluster.Proc) error {
		local := record.Make(n, z)
		record.Fill(local, gen, int64(pr.Rank())*int64(n))
		out, err := s.Sort(pr, &cnts[pr.Rank()], 0, local)
		if err != nil {
			return err
		}
		if out.Len() != n {
			return fmt.Errorf("rank %d: got %d records, want %d", pr.Rank(), out.Len(), n)
		}
		results[pr.Rank()] = out
		return nil
	})
	if err != nil {
		t.Fatalf("%s P=%d n=%d: %v", s.Name(), p, n, err)
	}
	global := record.Make(p*n, z)
	for q := 0; q < p; q++ {
		copy(global.Data[q*n*z:(q+1)*n*z], results[q].Data)
	}
	return global, cnts
}

func wantChecksum(gen record.Generator, total, z int) record.Checksum {
	return record.OfGenerated(gen, int64(total), z)
}

func TestSortersSortGlobally(t *testing.T) {
	sorters := []Sorter{Columnsort{}, Bitonic{}, Radix{}}
	configs := []struct{ p, n int }{
		{1, 64}, {2, 64}, {4, 64}, {4, 256}, {8, 128}, {16, 512},
	}
	gens := []record.Generator{
		record.Uniform{Seed: 1},
		record.Dup{Seed: 2, K: 5},
		record.Reverse{Seed: 3},
		record.Sorted{Seed: 4},
	}
	for _, s := range sorters {
		for _, cfg := range configs {
			if _, ok := s.(Columnsort); ok && cfg.p > 1 && cfg.n < 2*cfg.p*cfg.p {
				continue // height restriction
			}
			for _, g := range gens {
				global, _ := runSort(t, s, cfg.p, cfg.n, 16, g)
				if err := verify.SliceSorted(global); err != nil {
					// Radix sorts by key only; equal keys may order
					// payloads arbitrarily, so check keys for it.
					if _, isRadix := s.(Radix); isRadix && keysSorted(global) {
						goto multiset
					}
					t.Fatalf("%s P=%d n=%d gen=%s: %v", s.Name(), cfg.p, cfg.n, g.Name(), err)
				}
			multiset:
				var got record.Checksum
				got.AddSlice(global)
				if !got.Equal(wantChecksum(g, cfg.p*cfg.n, 16)) {
					t.Fatalf("%s P=%d n=%d gen=%s: multiset changed", s.Name(), cfg.p, cfg.n, g.Name())
				}
			}
		}
	}
}

func keysSorted(s record.Slice) bool {
	for i := 1; i < s.Len(); i++ {
		if s.Key(i) < s.Key(i-1) {
			return false
		}
	}
	return true
}

func TestColumnsortBitonicAgreeExactly(t *testing.T) {
	// Both use the payload total order, so outputs must be byte-identical
	// even with heavy key duplication.
	g := record.Dup{Seed: 9, K: 3}
	a, _ := runSort(t, Columnsort{}, 4, 256, 32, g)
	b, _ := runSort(t, Bitonic{}, 4, 256, 32, g)
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("columnsort and bitonic outputs differ")
	}
}

func TestColumnsortShapeCheck(t *testing.T) {
	if err := (Columnsort{}).CheckShape(31, 4); err == nil {
		t.Fatal("n < 2P² accepted")
	}
	if err := (Columnsort{}).CheckShape(34, 4); err == nil {
		t.Fatal("P ∤ n accepted")
	}
	if err := (Columnsort{}).CheckShape(32, 4); err != nil {
		t.Fatalf("legal shape rejected: %v", err)
	}
	// The error must surface from Sort on a bad shape.
	err := cluster.Run(4, func(pr *cluster.Proc) error {
		var cnt sim.Counters
		local := record.Make(16, 16) // 16 < 2·16
		_, err := (Columnsort{}).Sort(pr, &cnt, 0, local)
		return err
	})
	if err == nil {
		t.Fatal("Sort accepted bad shape")
	}
}

func TestBitonicRejectsNonPow2(t *testing.T) {
	err := cluster.Run(3, func(pr *cluster.Proc) error {
		var cnt sim.Counters
		_, err := (Bitonic{}).Sort(pr, &cnt, 0, record.Make(8, 16))
		return err
	})
	if err == nil {
		t.Fatal("bitonic accepted P=3")
	}
}

func TestBitonicExchangeCount(t *testing.T) {
	b := Bitonic{}
	for p, want := range map[int]int{1: 0, 2: 1, 4: 3, 8: 6, 16: 10, 32: 15} {
		if got := b.ExchangeCount(p); got != want {
			t.Fatalf("ExchangeCount(%d) = %d, want %d", p, got, want)
		}
	}
}

// TestCommunicationOrdering is the analytic half of experiment E6: per
// processor, in-core columnsort must move the fewest bytes over the
// network, radix somewhat more (envelope overhead and histograms), and
// bitonic by far the most at P = 16. The block length must be
// sort-stage-representative: radix's histogram exchange is a fixed cost
// that only amortizes at realistic sizes, exactly as in the paper.
func TestCommunicationOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const p, n, z = 16, 65536, 64
	g := record.Uniform{Seed: 5}
	_, csCnt := runSort(t, Columnsort{}, p, n, z, g)
	_, btCnt := runSort(t, Bitonic{}, p, n, z, g)
	_, rxCnt := runSort(t, Radix{}, p, n, z, g)
	maxNet := func(cnts []sim.Counters) int64 {
		var m int64
		for _, c := range cnts {
			if c.NetBytes > m {
				m = c.NetBytes
			}
		}
		return m
	}
	cs, bt, rx := maxNet(csCnt), maxNet(btCnt), maxNet(rxCnt)
	if !(cs < rx && rx < bt) {
		t.Fatalf("net bytes ordering wrong: columnsort %d, radix %d, bitonic %d", cs, rx, bt)
	}
}

func TestBoundaryMergeStandalone(t *testing.T) {
	// Each processor holds a sorted block; after BoundaryMerge, adjacent
	// blocks must interleave correctly for inputs where block q's range
	// overlaps q+1's (the half-column shift case columnsort produces).
	const p, n, z = 4, 32, 16
	results := make([]record.Slice, p)
	err := cluster.Run(p, func(pr *cluster.Proc) error {
		var cnt sim.Counters
		local := record.Make(n, z)
		// Keys overlap between neighbours: block q covers
		// [100q, 100q+150), sorted.
		for i := 0; i < n; i++ {
			local.SetKey(i, uint64(100*pr.Rank()+i*150/n))
		}
		if err := BoundaryMerge(pr, &cnt, 0, local); err != nil {
			return err
		}
		results[pr.Rank()] = local
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each block must still be sorted, and boundaries must satisfy the
	// half-merge postcondition: max(top q) ≤ min(bottom q) is not
	// guaranteed in general, but every block must remain sorted and the
	// multiset preserved.
	var got record.Checksum
	for q := 0; q < p; q++ {
		if err := verify.SliceSorted(results[q]); err != nil {
			t.Fatalf("block %d unsorted after boundary merge: %v", q, err)
		}
		got.AddSlice(results[q])
	}
	var want record.Checksum
	for q := 0; q < p; q++ {
		local := record.Make(n, z)
		for i := 0; i < n; i++ {
			local.SetKey(i, uint64(100*q+i*150/n))
		}
		want.AddSlice(local)
	}
	if !got.Equal(want) {
		t.Fatal("boundary merge changed multiset")
	}
}

func TestBoundaryMergeOddLength(t *testing.T) {
	err := cluster.Run(2, func(pr *cluster.Proc) error {
		var cnt sim.Counters
		return BoundaryMerge(pr, &cnt, 0, record.Make(3, 16))
	})
	if err == nil {
		t.Fatal("odd block length accepted")
	}
}

func TestSortersSingleProc(t *testing.T) {
	for _, s := range []Sorter{Columnsort{}, Bitonic{}, Radix{}} {
		global, _ := runSort(t, s, 1, 100, 16, record.Uniform{Seed: 8})
		if !keysSorted(global) {
			t.Fatalf("%s failed on P=1", s.Name())
		}
	}
}

func TestSorterNames(t *testing.T) {
	if (Columnsort{}).Name() != "incore-columnsort" ||
		(Bitonic{}).Name() != "bitonic" || (Radix{}).Name() != "radix" {
		t.Fatal("sorter names wrong")
	}
}

func TestWideRecords(t *testing.T) {
	for _, s := range []Sorter{Columnsort{}, Bitonic{}, Radix{}} {
		global, _ := runSort(t, s, 4, 128, 128, record.Uniform{Seed: 10})
		if !keysSorted(global) {
			t.Fatalf("%s failed with 128-byte records", s.Name())
		}
	}
}

func TestConcurrentSortsDistinctTags(t *testing.T) {
	// Two overlapping sorts per processor pair must not cross-talk when
	// given disjoint tag windows — the situation inside the M-columnsort
	// pipeline where consecutive rounds overlap.
	const p, n, z = 4, 64, 16
	err := cluster.Run(p, func(pr *cluster.Proc) error {
		var cnt sim.Counters
		a := record.Make(n, z)
		b := record.Make(n, z)
		record.Fill(a, record.Uniform{Seed: 1}, int64(pr.Rank())*n)
		record.Fill(b, record.Uniform{Seed: 2}, int64(pr.Rank())*n)
		type res struct {
			out record.Slice
			err error
		}
		ch := make(chan res, 2)
		go func() {
			out, err := (Columnsort{}).Sort(pr, &cnt, 0, a)
			ch <- res{out, err}
		}()
		outB, errB := Columnsort{}.Sort(pr, &sim.Counters{}, TagSpan, b)
		ra := <-ch
		if ra.err != nil {
			return ra.err
		}
		if errB != nil {
			return errB
		}
		if !ra.out.IsSorted() || !outB.IsSorted() {
			return fmt.Errorf("rank %d: concurrent sorts produced unsorted blocks", pr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
