package incore

import (
	"fmt"

	"colsort/internal/bitperm"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// Bitonic is block bitonic sort: Batcher's bitonic sorting network on P
// elements with each compare-exchange replaced by a merge-split of two
// locally sorted blocks (the low processor keeps the n smallest of the 2n
// merged records). Substituting merge-split into any sorting network sorts
// block-distributed data, so correctness follows from the network's.
//
// It performs lg P·(lg P+1)/2 full-block exchanges, which is why the paper
// found it consistently slower than in-core columnsort (experiment E6).
type Bitonic struct {
	Pool    *record.Pool     // optional buffer pool (nil: allocate per call)
	Scratch *sortalg.Scratch // optional sort scratch; NOT concurrency-safe
}

func (Bitonic) Name() string { return "bitonic" }

func (bs Bitonic) Sort(pr Comm, cnt *sim.Counters, tagBase int, local record.Slice) (record.Slice, error) {
	p, rank := pr.NProcs(), pr.Rank()
	n := local.Len()
	z := local.Size
	pool, sc := bs.Pool, scratchOf(bs.Scratch)
	cur := pool.Get(n, z)
	sc.SortInto(cur, local)
	pool.Put(local)
	cnt.CompareUnits += sim.SortWork(n)
	cnt.MovedBytes += int64(len(cur.Data))
	if p == 1 {
		return cur, nil
	}
	if !bitperm.IsPow2(p) {
		return record.Slice{}, fmt.Errorf("incore: bitonic needs a power-of-two processor count, got %d", p)
	}

	merged := pool.Get(2*n, z)
	tag := tagBase
	for k := 2; k <= p; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := rank ^ j
			ascending := rank&k == 0
			keepLow := (rank < partner) == ascending

			// Exchange whole blocks with the partner.
			outBuf := pool.Get(n, z)
			outBuf.Copy(cur)
			cnt.MovedBytes += int64(len(outBuf.Data))
			if err := pr.Send(cnt, partner, tag, outBuf); err != nil {
				return record.Slice{}, err
			}
			theirs, err := pr.Recv(partner, tag)
			if err != nil {
				return record.Slice{}, err
			}
			tag++

			sortalg.MergeInto(merged, cur, theirs)
			pool.Put(theirs)
			cnt.CompareUnits += sim.MergeWork(2*n, 2)
			cnt.MovedBytes += int64(len(merged.Data))
			if keepLow {
				cur.Copy(merged.Sub(0, n))
			} else {
				cur.Copy(merged.Sub(n, 2*n))
			}
		}
	}
	pool.Put(merged)
	return cur, nil
}

// ExchangeCount returns the number of full-block merge-split exchanges
// block bitonic performs on p processors: lg p·(lg p+1)/2. Used by the E6
// analysis to predict the communication-volume ordering of the three
// in-core sorts.
func (Bitonic) ExchangeCount(p int) int {
	if p <= 1 {
		return 0
	}
	lg := bitperm.Log2(p)
	return lg * (lg + 1) / 2
}
