package incore

import (
	"fmt"

	"colsort/internal/record"
	"colsort/internal/sim"
)

// Radix is distributed LSD radix sort on the 64-bit key: four passes of
// 16-bit digits. Each pass histograms the digit locally, computes every
// record's exact global destination rank (stable within a digit value) via
// a balanced reduce-scatter of the histograms, and routes records with a
// personalized all-to-all. Records travel wrapped with their destination
// rank so receivers can scatter without knowing the senders' histograms —
// the 8-byte-per-record envelope overhead is charged as communication.
//
// The paper found radix competitive with in-core columnsort but rejected it
// for its dependence on the key format (it sorts by the 64-bit key only:
// ties keep their prior relative order rather than the payload total order)
// and because columnsort's communication is oblivious to key values
// (experiment E6).
type Radix struct {
	Pool *record.Pool // optional buffer pool (nil: allocate per call)
}

func (Radix) Name() string { return "radix" }

const (
	radixBits    = 16
	radixBuckets = 1 << radixBits
	radixPasses  = 64 / radixBits
)

func (rs Radix) Sort(pr Comm, cnt *sim.Counters, tagBase int, local record.Slice) (record.Slice, error) {
	p, rank := pr.NProcs(), pr.Rank()
	n := local.Len()
	z := local.Size
	pool := rs.Pool
	cur := pool.Get(n, z)
	cur.Copy(local)
	pool.Put(local)
	cnt.MovedBytes += int64(len(cur.Data))
	if n == 0 || p > radixBuckets {
		if p > radixBuckets {
			return record.Slice{}, fmt.Errorf("incore: radix supports at most %d processors", radixBuckets)
		}
		return cur, nil
	}

	hist := make([]int64, radixBuckets)
	counts := make([]int, p)
	fill := make([]int, p)
	dests := make([]int64, n)
	for pass := 0; pass < radixPasses; pass++ {
		shift := uint(pass * radixBits)
		tag := tagBase + pass*8

		// Local histogram of this digit.
		for i := range hist {
			hist[i] = 0
		}
		for i := 0; i < n; i++ {
			hist[(cur.Key(i)>>shift)&(radixBuckets-1)]++
		}

		starts, err := globalStarts(pr, cnt, tag, hist, pool)
		if err != nil {
			return record.Slice{}, err
		}

		// Compute each record's destination rank (stable: local order
		// preserved within a bucket) and pack (rank, record) envelopes
		// per destination processor.
		for q := 0; q < p; q++ {
			counts[q], fill[q] = 0, 0
		}
		for i := 0; i < n; i++ {
			b := (cur.Key(i) >> shift) & (radixBuckets - 1)
			dests[i] = starts[b]
			starts[b]++
			counts[dests[i]/int64(n)]++
		}
		out := record.GetHeaders(p)
		for q := 0; q < p; q++ {
			out[q] = pool.Get(counts[q], z+8)
		}
		for i := 0; i < n; i++ {
			q := int(dests[i] / int64(n))
			env := out[q].Record(fill[q])
			record.PutKey(env, uint64(dests[i]))
			copy(env[8:], cur.Record(i))
			fill[q]++
		}
		cnt.MovedBytes += int64(n * (z + 8))

		in, err := pr.AllToAll(cnt, tag+4, out)
		record.PutHeaders(out)
		if err != nil {
			return record.Slice{}, err
		}
		base := int64(rank) * int64(n)
		got := 0
		for q := 0; q < p; q++ {
			batch := in[q]
			for k := 0; k < batch.Len(); k++ {
				env := batch.Record(k)
				pos := int64(record.Key(env)) - base
				if pos < 0 || pos >= int64(n) {
					return record.Slice{}, fmt.Errorf("incore: radix routed rank %d to processor %d", record.Key(env), rank)
				}
				copy(cur.Record(int(pos)), env[8:])
				got++
			}
			pool.Put(batch)
		}
		record.PutHeaders(in)
		if got != n {
			return record.Slice{}, fmt.Errorf("incore: radix pass %d delivered %d of %d records", pass, got, n)
		}
		cnt.MovedBytes += int64(n * z)
	}
	return cur, nil
}

// globalStarts turns per-processor local histograms into, for the calling
// processor q, the array start[b] = (global exclusive prefix of bucket b)
// + (bucket-b records on processors before q) — the first destination rank
// of q's first record in bucket b.
//
// The combine is balanced rather than root-centric: a reduce-scatter
// (bucket ranges scattered over processors), a tiny allgather of the P
// range totals for the cross-range prefix, and a personalized scatter of
// the start offsets back to their owners. Each processor moves O(B) bytes
// regardless of P. Tags used: tag..tag+3. Message buffers cycle through
// pool (nil: allocate per call).
func globalStarts(pr Comm, cnt *sim.Counters, tag int, hist []int64, pool *record.Pool) ([]int64, error) {
	p, rank := pr.NProcs(), pr.Rank()
	b := len(hist)
	if p == 1 {
		starts := make([]int64, b)
		var run int64
		for i := 0; i < b; i++ {
			starts[i] = run
			run += hist[i]
		}
		return starts, nil
	}
	if b%p != 0 {
		return nil, fmt.Errorf("incore: %d buckets not divisible by %d processors", b, p)
	}
	chunk := b / p

	// Reduce-scatter: processor d collects everyone's counts for its
	// bucket range [d·chunk, (d+1)·chunk).
	out := record.GetHeaders(p)
	for d := 0; d < p; d++ {
		buf := pool.Get(chunk, record.MinSize)
		for k := 0; k < chunk; k++ {
			buf.SetKey(k, uint64(hist[d*chunk+k]))
		}
		out[d] = buf
	}
	in, err := pr.AllToAll(cnt, tag, out)
	record.PutHeaders(out)
	if err != nil {
		return nil, err
	}

	// My range's per-(bucket, source) counts and range total.
	var rangeTotal int64
	for q := 0; q < p; q++ {
		for k := 0; k < chunk; k++ {
			rangeTotal += int64(in[q].Key(k))
		}
	}

	// Allgather range totals (P scalars) for the cross-range base.
	mine := pool.Get(1, record.MinSize)
	mine.SetKey(0, uint64(rangeTotal))
	totals, err := pr.Gather(cnt, 0, tag+1, mine)
	if err != nil {
		return nil, err
	}
	var allTotals record.Slice
	if rank == 0 {
		flat := pool.Get(p, record.MinSize)
		for q := 0; q < p; q++ {
			flat.SetKey(q, totals[q].Key(0))
			pool.Put(totals[q])
		}
		record.PutHeaders(totals)
		allTotals, err = pr.Broadcast(cnt, 0, tag+2, flat)
	} else {
		allTotals, err = pr.Broadcast(cnt, 0, tag+2, record.Slice{})
	}
	if err != nil {
		return nil, err
	}
	var base int64
	for d := 0; d < rank; d++ {
		base += int64(allTotals.Key(d))
	}
	pool.Put(allTotals)

	// Within my range, scan (bucket-major, then source processor) and
	// produce each source's start offsets; scatter them back.
	back := record.GetHeaders(p)
	for q := 0; q < p; q++ {
		back[q] = pool.Get(chunk, record.MinSize)
	}
	run := base
	for k := 0; k < chunk; k++ {
		for q := 0; q < p; q++ {
			back[q].SetKey(k, uint64(run))
			run += int64(in[q].Key(k))
		}
	}
	for q := 0; q < p; q++ {
		pool.Put(in[q])
	}
	record.PutHeaders(in)
	got, err := pr.AllToAll(cnt, tag+3, back)
	record.PutHeaders(back)
	if err != nil {
		return nil, err
	}
	starts := make([]int64, b)
	for d := 0; d < p; d++ {
		for k := 0; k < chunk; k++ {
			starts[d*chunk+k] = int64(got[d].Key(k))
		}
		pool.Put(got[d])
	}
	record.PutHeaders(got)
	return starts, nil
}
