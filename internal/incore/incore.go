// Package incore implements the distributed-memory in-core sorts of
// Section 4 of the paper. M-columnsort's sort stage must sort one
// out-of-core column of r = M records held collectively by all P
// processors (M/P records each); the paper implemented three candidates —
// in-core columnsort, bitonic sort, and radix sort — and chose in-core
// columnsort on an (M/P)×P matrix.
//
// All three sorters share the same contract: every processor enters with n
// local records (the same n everywhere) and leaves with the n records of
// global rank [q·n, (q+1)·n) in sorted order, i.e. the distributed array is
// sorted with a block distribution. All communication is tagged within a
// caller-supplied tag window so that concurrent pipeline rounds never
// collide.
//
// Each sorter optionally carries a buffer Pool and a sort Scratch; when
// set, the sorter consumes its input buffer into the pool, draws every
// working and message buffer from it, and recycles received messages, so
// repeated sorts (one per pipeline round) allocate nothing in steady
// state. The zero value of each sorter allocates per call, preserving the
// old behaviour.
package incore

import (
	"fmt"

	"colsort/internal/cluster"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// TagSpan is the width of the tag window a single Sort invocation may use.
// Callers hand successive invocations tag bases at least TagSpan apart.
const TagSpan = 256

// Comm is the communicator surface the distributed in-core sorts need.
// *cluster.Proc satisfies it directly; *cluster.Group satisfies it for a
// subset of processors, which is how hybrid group columnsort runs an
// in-core sort inside each group.
type Comm interface {
	Rank() int
	NProcs() int
	Send(cnt *sim.Counters, dst, tag int, recs record.Slice) error
	Recv(src, tag int) (record.Slice, error)
	AllToAll(cnt *sim.Counters, tag int, out []record.Slice) ([]record.Slice, error)
	Gather(cnt *sim.Counters, root, tag int, recs record.Slice) ([]record.Slice, error)
	Broadcast(cnt *sim.Counters, root, tag int, recs record.Slice) (record.Slice, error)
}

var _ Comm = (*cluster.Proc)(nil)

// Sorter is a distributed in-core sort.
type Sorter interface {
	// Name identifies the algorithm in reports and benchmarks.
	Name() string
	// Sort sorts the distributed array. It consumes local (ownership may
	// move into messages or, for pooled sorters, back into the pool) and
	// returns the processor's sorted block, which the caller owns.
	Sort(pr Comm, cnt *sim.Counters, tagBase int, local record.Slice) (record.Slice, error)
}

// scratchOf returns sc, or a transient scratch when the sorter was built
// without one.
func scratchOf(sc *sortalg.Scratch) *sortalg.Scratch {
	if sc == nil {
		return new(sortalg.Scratch)
	}
	return sc
}

// Columnsort is the paper's choice: in-core columnsort on an (M/P)×P
// matrix, where in-core column q is processor q's local block. It requires
// P | n and the height restriction n ≥ 2P² (checked at run time), and
// sends ~2.5 column volumes over the network per sort — the least of the
// three algorithms.
type Columnsort struct {
	Pool    *record.Pool     // optional buffer pool (nil: allocate per call)
	Scratch *sortalg.Scratch // optional sort scratch; NOT concurrency-safe
}

func (Columnsort) Name() string { return "incore-columnsort" }

// CheckShape reports whether n local records on p processors satisfy
// in-core columnsort's requirements.
func (Columnsort) CheckShape(n, p int) error {
	if p > 1 && n < 2*p*p {
		return fmt.Errorf("incore: height restriction n=%d < 2P²=%d", n, 2*p*p)
	}
	if p > 0 && n%p != 0 {
		return fmt.Errorf("incore: P=%d must divide local length n=%d", p, n)
	}
	return nil
}

func (cs Columnsort) Sort(pr Comm, cnt *sim.Counters, tagBase int, local record.Slice) (record.Slice, error) {
	p := pr.NProcs()
	n := local.Len()
	pool, sc := cs.Pool, scratchOf(cs.Scratch)
	if p == 1 {
		out := pool.Get(n, local.Size)
		sc.SortInto(out, local)
		pool.Put(local)
		cnt.CompareUnits += sim.SortWork(n)
		cnt.MovedBytes += int64(len(out.Data))
		return out, nil
	}
	if err := cs.CheckShape(n, p); err != nil {
		return record.Slice{}, err
	}
	z := local.Size
	chunk := n / p

	// Step 1: local sort.
	cur := pool.Get(n, z)
	sc.SortInto(cur, local)
	pool.Put(local)
	cnt.CompareUnits += sim.SortWork(n)
	cnt.MovedBytes += int64(len(cur.Data))

	// Step 2: transpose & reshape. Local position i of in-core column q
	// goes to column (i mod P) at local position q·(n/P) + ⌊i/P⌋. Send the
	// records with i ≡ d (mod P) to processor d, in increasing i order;
	// the batch from source q lands contiguously at [q·n/P, (q+1)·n/P).
	out := record.GetHeaders(p)
	for d := 0; d < p; d++ {
		buf := pool.Get(chunk, z)
		for k := 0; k < chunk; k++ {
			buf.CopyRecord(k, cur, k*p+d)
		}
		cnt.MovedBytes += int64(len(buf.Data))
		out[d] = buf
	}
	in, err := pr.AllToAll(cnt, tagBase+0, out)
	if err != nil {
		record.PutHeaders(out)
		return record.Slice{}, err
	}
	for q := 0; q < p; q++ {
		copy(cur.Data[q*chunk*z:(q+1)*chunk*z], in[q].Data)
		pool.Put(in[q])
	}
	record.PutHeaders(in)
	cnt.MovedBytes += int64(len(cur.Data))

	// Step 3: local sort.
	tmp := pool.Get(n, z)
	sc.SortInto(tmp, cur)
	cur, tmp = tmp, cur
	cnt.CompareUnits += sim.SortWork(n)
	cnt.MovedBytes += int64(len(cur.Data))

	// Step 4: reshape & transpose. Chunk d (positions [d·n/P, (d+1)·n/P))
	// of column q goes to column d, landing at local positions ≡ q (mod P)
	// in chunk order.
	for d := 0; d < p; d++ {
		buf := pool.Get(chunk, z)
		copy(buf.Data, cur.Data[d*chunk*z:(d+1)*chunk*z])
		cnt.MovedBytes += int64(len(buf.Data))
		out[d] = buf
	}
	in, err = pr.AllToAll(cnt, tagBase+1, out)
	record.PutHeaders(out)
	if err != nil {
		return record.Slice{}, err
	}
	for q := 0; q < p; q++ {
		for k := 0; k < chunk; k++ {
			cur.CopyRecord(k*p+q, in[q], k)
		}
		pool.Put(in[q])
	}
	record.PutHeaders(in)
	cnt.MovedBytes += int64(len(cur.Data))

	// Steps 5–8: local sort, then fused boundary merges with neighbours.
	sc.SortInto(tmp, cur)
	cur, tmp = tmp, cur
	pool.Put(tmp)
	cnt.CompareUnits += sim.SortWork(n)
	cnt.MovedBytes += int64(len(cur.Data))
	if err := boundaryMerge(pr, cnt, tagBase+2, cur, pool); err != nil {
		return record.Slice{}, err
	}
	return cur, nil
}

// BoundaryMerge performs the fused steps 5–8 of columnsort across a row of
// processors, in place on each processor's locally sorted block: the final
// top half of block q is the high half of merge(bottom(q−1), top(q)), and
// the final bottom half is the low half of merge(bottom(q), top(q+1)).
// It uses two tags: tagBase (bottom halves moving right) and tagBase+1
// (final bottoms moving left).
func BoundaryMerge(pr Comm, cnt *sim.Counters, tagBase int, local record.Slice) error {
	return boundaryMerge(pr, cnt, tagBase, local, nil)
}

// boundaryMerge is BoundaryMerge drawing its half-column and merge buffers
// from pool (nil: allocate per call).
func boundaryMerge(pr Comm, cnt *sim.Counters, tagBase int, local record.Slice, pool *record.Pool) error {
	p, q := pr.NProcs(), pr.Rank()
	n := local.Len()
	if p == 1 || n == 0 {
		return nil
	}
	if n%2 != 0 {
		return fmt.Errorf("incore: boundary merge needs even block length, got %d", n)
	}
	h := n / 2
	z := local.Size

	// Ship my bottom half right.
	if q < p-1 {
		bot := pool.Get(h, z)
		bot.Copy(local.Sub(h, n))
		cnt.MovedBytes += int64(len(bot.Data))
		if err := pr.Send(cnt, q+1, tagBase, bot); err != nil {
			return err
		}
	}
	// Merge my top half with the left neighbour's bottom half.
	if q > 0 {
		prevBot, err := pr.Recv(q-1, tagBase)
		if err != nil {
			return err
		}
		merged := pool.Get(n, z)
		sortalg.MergeInto(merged, prevBot, local.Sub(0, h))
		pool.Put(prevBot)
		cnt.CompareUnits += sim.MergeWork(n, 2)
		cnt.MovedBytes += int64(len(merged.Data))
		// High half becomes my final top; low half is the left
		// neighbour's final bottom.
		local.Sub(0, h).Copy(merged.Sub(h, n))
		back := pool.Get(h, z)
		back.Copy(merged.Sub(0, h))
		pool.Put(merged)
		if err := pr.Send(cnt, q-1, tagBase+1, back); err != nil {
			return err
		}
	}
	// Collect my final bottom from the right neighbour (the last block's
	// bottom faces +∞ and is already final).
	if q < p-1 {
		fin, err := pr.Recv(q+1, tagBase+1)
		if err != nil {
			return err
		}
		local.Sub(h, n).Copy(fin)
		pool.Put(fin)
		cnt.MovedBytes += int64(h * z)
	}
	return nil
}
