package hybrid

import (
	"math"
	"testing"

	"colsort/internal/bounds"
)

func cfg() Config { return Config{P: 16, Mem: 1 << 19, Z: 64} }

func TestValidate(t *testing.T) {
	bad := []Config{
		{P: 3, Mem: 1 << 10, Z: 64},
		{P: 4, Mem: 1000, Z: 64},
		{P: 4, Mem: 1 << 10, Z: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRejectsBadGroup(t *testing.T) {
	for _, g := range []int{0, 3, 32, -1} {
		if _, err := cfg().Analyze(g); err == nil {
			t.Errorf("group size %d accepted", g)
		}
	}
}

func TestEndpointsMatchPaperAlgorithms(t *testing.T) {
	c := cfg()
	// g = 1 reproduces restriction (1); g = P reproduces restriction (3).
	p1, err := c.Analyze(1)
	if err != nil {
		t.Fatal(err)
	}
	pP, err := c.Analyze(c.P)
	if err != nil {
		t.Fatal(err)
	}
	m := int64(c.P) * int64(c.Mem)
	if want := bounds.MaxN(bounds.Threaded, m, int64(c.P)); math.Abs(p1.MaxN/want-1) > 1e-12 {
		t.Fatalf("g=1 bound %g, want restriction (1) %g", p1.MaxN, want)
	}
	if want := bounds.MaxN(bounds.MColumnsort, m, int64(c.P)); math.Abs(pP.MaxN/want-1) > 1e-12 {
		t.Fatalf("g=P bound %g, want restriction (3) %g", pP.MaxN, want)
	}
	// g = 1 has no sort-stage communication (local sort).
	if p1.SortNetBytesPerPass != 0 {
		t.Fatal("g=1 should have a purely local sort stage")
	}
	// g = P has no scatter-stage communication (M-columnsort eliminates
	// the communicate stage).
	if pP.ScatterNetBytesPerPass != 0 {
		t.Fatal("g=P should have no separate communicate stage")
	}
}

func TestTradeOffMonotone(t *testing.T) {
	pts, err := cfg().Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 { // g ∈ {1, 2, 4, 8, 16}
		t.Fatalf("sweep returned %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].MaxN <= pts[i-1].MaxN {
			t.Fatalf("bound not increasing: g=%d %g vs g=%d %g",
				pts[i-1].G, pts[i-1].MaxN, pts[i].G, pts[i].MaxN)
		}
		if pts[i].SortNetBytesPerPass < pts[i-1].SortNetBytesPerPass {
			t.Fatalf("sort traffic not nondecreasing at g=%d", pts[i].G)
		}
		if pts[i].ScatterNetBytesPerPass > pts[i-1].ScatterNetBytesPerPass {
			t.Fatalf("scatter traffic not nonincreasing at g=%d", pts[i].G)
		}
	}
	// The paper's claim: total sort-stage overhead grows toward g = P.
	if pts[len(pts)-1].TotalNetBytesPerPass <= pts[0].TotalNetBytesPerPass {
		t.Fatal("total traffic at g=P should exceed g=1")
	}
}

func TestBoundScalesAs32PowerOfG(t *testing.T) {
	c := cfg()
	p1, _ := c.Analyze(1)
	p4, _ := c.Analyze(4)
	if ratio := p4.MaxN / p1.MaxN; math.Abs(ratio-8) > 1e-9 { // 4^{3/2} = 8
		t.Fatalf("bound ratio g=4/g=1 = %g, want 8", ratio)
	}
}

func TestChooseGroup(t *testing.T) {
	c := cfg()
	// Small problems take g = 1; each 4^{3/2} step forces the next g.
	p1, _ := c.Analyze(1)
	g, err := c.ChooseGroup(int64(p1.MaxN) - 1)
	if err != nil || g != 1 {
		t.Fatalf("ChooseGroup(small) = %d, %v", g, err)
	}
	g, err = c.ChooseGroup(int64(p1.MaxN) * 2)
	if err != nil || g != 2 {
		t.Fatalf("ChooseGroup(2×bound1) = %d, %v; want 2", g, err)
	}
	pP, _ := c.Analyze(c.P)
	g, err = c.ChooseGroup(int64(pP.MaxN))
	if err != nil || g != c.P {
		t.Fatalf("ChooseGroup(max) = %d, %v; want P", g, err)
	}
	if _, err := c.ChooseGroup(int64(pP.MaxN) * 2); err == nil {
		t.Fatal("ChooseGroup accepted N beyond the g=P bound")
	}
}

func TestChooseGroupPrefersSmallestEligible(t *testing.T) {
	// The policy is the paper's heuristic: the smallest eligible g, which
	// by sort-traffic monotonicity minimizes sort-stage communication.
	// (Interestingly, the TOTAL traffic is not monotone: at g = P the
	// eliminated communicate stage can undercut intermediate g — the kind
	// of effect the paper's future-work implementation would measure.)
	c := Config{P: 8, Mem: 1 << 12, Z: 64}
	pts, _ := c.Sweep()
	for _, pt := range pts {
		n := int64(pt.MaxN * 0.9)
		g, err := c.ChooseGroup(n)
		if err != nil {
			t.Fatal(err)
		}
		chosen, _ := c.Analyze(g)
		for _, other := range pts {
			if float64(n) <= other.MaxN {
				if other.G < g {
					t.Fatalf("N=%d: chose g=%d but smaller g=%d is eligible", n, g, other.G)
				}
				if other.SortNetBytesPerPass < chosen.SortNetBytesPerPass {
					t.Fatalf("N=%d: g=%d has more sort traffic than eligible g=%d", n, g, other.G)
				}
			}
		}
	}
}
