// Package hybrid analyzes the group-columnsort family the paper sketches as
// future work (Section 6): "an implementation that allows for values of r
// between M/P and M, depending on the problem size N for a given run."
//
// Group columnsort with group size g (a power of two dividing P) partitions
// the P processors into P/g groups of g; each out-of-core column holds
// r = g·(M/P) records owned collectively by one group and is sorted by a
// distributed in-core sort within the group. The endpoints recover the
// paper's implemented algorithms:
//
//	g = 1:  threaded columnsort  (r = M/P, local sort stage)
//	g = P:  M-columnsort         (r = M, cluster-wide sort stage)
//
// The paper's observation is a bound/communication trade-off: the bound
// N ≤ (g·M/P)^{3/2}/√2 grows with g, while the sort-stage communication
// shrinks as g shrinks ("the closer the height interpretation is to
// r = M/P, the less communication overhead is incurred during the sort
// stages"). This package quantifies both sides and picks the cheapest g
// whose bound admits a given N. The endpoint volumes are pinned to the
// validated counter predictions of internal/figure2 by tests.
package hybrid

import (
	"fmt"
	"math"

	"colsort/internal/bitperm"
	"colsort/internal/sim"
)

// Config fixes the machine for the analysis.
type Config struct {
	P   int // processors, power of two
	Mem int // M/P, records of column memory per processor
	Z   int // record size in bytes
}

// Point is the analysis of one group size.
type Point struct {
	G int   // group size
	R int64 // column height r = G·Mem

	// MaxN is the real-valued problem-size bound N ≤ r^{3/2}/√2·(s-side
	// power-of-two effects ignored, as in the paper's bounds).
	MaxN float64

	// SortNetBytesPerPass is the network traffic, in bytes per processor
	// per pass, attributable to the sort stage (the distributed in-core
	// columnsort within each group): two all-to-alls plus the boundary
	// exchange, all confined to the group.
	SortNetBytesPerPass int64

	// ScatterNetBytesPerPass is the communicate/redistribution traffic per
	// processor per pass for the worst distribution pass (all-to-all over
	// the whole cluster less the self share).
	ScatterNetBytesPerPass int64

	// TotalNetBytesPerPass = sort + scatter.
	TotalNetBytesPerPass int64
}

// Validate checks the machine parameters.
func (c Config) Validate() error {
	if !bitperm.IsPow2(c.P) || c.P < 1 {
		return fmt.Errorf("hybrid: P=%d must be a positive power of 2", c.P)
	}
	if !bitperm.IsPow2(c.Mem) {
		return fmt.Errorf("hybrid: M/P=%d must be a power of 2", c.Mem)
	}
	if c.Z < 8 {
		return fmt.Errorf("hybrid: record size %d too small", c.Z)
	}
	return nil
}

// Analyze computes the trade-off point for one group size. Traffic is
// normalized per processor per pass, for a pass that processes the whole
// data set once (the paper's unit of comparison); it scales linearly in
// the data per processor, so the shape is independent of N.
func (c Config) Analyze(g int) (Point, error) {
	if err := c.Validate(); err != nil {
		return Point{}, err
	}
	if !bitperm.IsPow2(g) || g < 1 || g > c.P || c.P%g != 0 {
		return Point{}, fmt.Errorf("hybrid: group size %d must be a power of 2 dividing P=%d", g, c.P)
	}
	r := int64(g) * int64(c.Mem)
	pt := Point{G: g, R: r, MaxN: math.Pow(float64(r), 1.5) / math.Sqrt2}

	// Per processor, one pass touches Mem records per round-equivalent;
	// normalize to exactly dataPerProc = Mem·Z bytes of payload handled
	// per pass per processor (one column's worth per group round).
	blockBytes := int64(c.Mem) * int64(c.Z)

	// Sort stage (within the group of g): in-core columnsort does two
	// all-to-alls of the local block (off-group-self fraction (g−1)/g
	// each) plus the boundary half-exchange (≈ one block among interior
	// members): ≈ (2·(g−1)/g + (g−1)/g)·blockBytes — zero when g = 1
	// (local sort only).
	if g > 1 {
		pt.SortNetBytesPerPass = 3 * blockBytes * int64(g-1) / int64(g)
	}

	// Scatter stage: records leave for target columns owned by any of the
	// P/g groups; a 1/(P/g) share stays within the group, and of the
	// in-group share only 1/g stays on-processor. Net fraction leaving
	// the processor is (1 − 1/P) for g = 1 and, in the aggregate
	// arrival-share model, 1 − g/P·(1/g) = 1 − 1/P generally; however the
	// group-internal share rides the sort stage's final exchange for
	// g = P (M-columnsort eliminates the communicate stage), so the
	// scatter charge is the across-group fraction only: 1 − g/P.
	pt.ScatterNetBytesPerPass = blockBytes * int64(c.P-g) / int64(c.P)
	if g == 1 {
		// Threaded columnsort's all-to-all: everything except the
		// self-message crosses the network.
		pt.ScatterNetBytesPerPass = blockBytes * int64(c.P-1) / int64(c.P)
	}

	pt.TotalNetBytesPerPass = pt.SortNetBytesPerPass + pt.ScatterNetBytesPerPass
	return pt, nil
}

// Sweep analyzes every legal group size.
func (c Config) Sweep() ([]Point, error) {
	var pts []Point
	for g := 1; g <= c.P; g *= 2 {
		pt, err := c.Analyze(g)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// ChooseGroup returns the smallest group size whose bound admits n records
// — the paper's intended policy: use the least communication that still
// fits the problem. It returns an error if even g = P cannot sort n.
func (c Config) ChooseGroup(n int64) (int, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	for g := 1; g <= c.P; g *= 2 {
		pt, err := c.Analyze(g)
		if err != nil {
			return 0, err
		}
		if float64(n) <= pt.MaxN {
			return g, nil
		}
	}
	return 0, fmt.Errorf("hybrid: N=%d exceeds even M-columnsort's bound %.3g on this machine", n,
		math.Pow(float64(int64(c.P)*int64(c.Mem)), 1.5)/math.Sqrt2)
}

// EstimateSortSeconds prices the per-pass network traffic of a point under
// a cost model, for reporting.
func (pt Point) EstimateSortSeconds(cm sim.CostModel) float64 {
	return float64(pt.TotalNetBytesPerPass) / cm.NetBandwidth
}
