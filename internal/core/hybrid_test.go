package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/verify"
)

// runHybrid plans and runs hybrid group columnsort end to end.
func runHybrid(t *testing.T, n int64, p, d, mem, z, g int, gen record.Generator) *Result {
	t.Helper()
	pl, err := NewHybridPlan(n, p, d, mem, z, g)
	if err != nil {
		t.Fatalf("hybrid N=%d P=%d mem=%d g=%d: %v", n, p, mem, g, err)
	}
	m := pdm.Machine{P: p, D: d}
	input, err := pl.NewInput(m, gen)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := Run(context.Background(), pl, m, input, Hooks{})
	if err != nil {
		t.Fatalf("hybrid %s: %v", pl, err)
	}
	t.Cleanup(func() { res.Output.Close() })
	if err := verify.Output(res.Output, record.OfGenerated(gen, n, z)); err != nil {
		t.Fatalf("hybrid %s gen=%s: %v", pl, gen.Name(), err)
	}
	return res
}

func TestHybridGrid(t *testing.T) {
	cases := []struct {
		p, g, mem, s int
	}{
		{4, 2, 64, 2},
		{4, 2, 64, 4},
		{8, 2, 64, 4},
		{8, 4, 64, 4},
		{8, 2, 128, 8},
		{16, 4, 64, 4},
		{8, 4, 256, 16},
	}
	for _, c := range cases {
		r := int64(c.g) * int64(c.mem)
		n := r * int64(c.s)
		runHybrid(t, n, c.p, c.p, c.mem, 16, c.g, record.Uniform{Seed: uint64(c.p*100 + c.g)})
	}
}

func TestHybridGenerators(t *testing.T) {
	for _, gen := range []record.Generator{
		record.Dup{Seed: 2, K: 3},
		record.Reverse{Seed: 3},
		record.Zipf{Seed: 4},
	} {
		runHybrid(t, 128*4, 8, 8, 64, 16, 2, gen)
	}
}

func TestHybridMatchesThreadedByteForByte(t *testing.T) {
	gen := record.Dup{Seed: 21, K: 5}
	const n, z = 512 * 4, 16
	hy := runHybrid(t, n, 8, 8, 256, z, 2, gen) // r = 512, s = 4
	th := runAlg(t, Threaded, n, 4, 4, 512, z, gen)
	a, err := hy.Output.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := th.Output.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Data, b.Data) {
		t.Fatal("hybrid and threaded outputs differ")
	}
}

func TestHybridIOVolume(t *testing.T) {
	res := runHybrid(t, 128*4, 8, 8, 64, 16, 2, record.Uniform{Seed: 6})
	if len(res.PassCounters) != 3 {
		t.Fatalf("hybrid ran %d passes, want 3", len(res.PassCounters))
	}
	want := res.Plan.N * int64(res.Plan.Z)
	for k := range res.PassCounters {
		tot := countersOf(res, k)
		if tot.DiskReadBytes != want || tot.DiskWriteBytes != want {
			t.Fatalf("pass %d: read %d write %d, want %d each", k+1, tot.DiskReadBytes, tot.DiskWriteBytes, want)
		}
	}
}

// TestHybridCommBetweenEndpoints checks the Section-6 trade-off on real
// runs: for the same N, per-processor sort+scatter network traffic grows
// with g from the threaded end toward the M-columnsort end.
func TestHybridCommBetweenEndpoints(t *testing.T) {
	const z = 16
	// Same N = 4096 on P = 8 throughout: threaded (r=512, s=8),
	// hybrid g=2 (r=1024, s=4), hybrid g=4 (r=2048, s=2).
	th := runAlg(t, Threaded, 4096, 8, 8, 512, z, record.Uniform{Seed: 7})
	h2 := runHybrid(t, 4096, 8, 8, 512, z, 2, record.Uniform{Seed: 7})
	h4 := runHybrid(t, 4096, 8, 8, 512, z, 4, record.Uniform{Seed: 7})
	thNet := th.TotalCounters().NetBytes
	h2Net := h2.TotalCounters().NetBytes
	h4Net := h4.TotalCounters().NetBytes
	if !(thNet < h2Net) {
		t.Fatalf("hybrid g=2 net bytes %d should exceed threaded %d", h2Net, thNet)
	}
	if !(h2Net < h4Net) {
		t.Fatalf("hybrid g=4 net bytes %d should exceed g=2 %d", h4Net, h2Net)
	}
}

func TestHybridPlanValidation(t *testing.T) {
	cases := []struct {
		name            string
		n               int64
		p, d, mem, z, g int
		wantErr         string
	}{
		{"g too small", 512, 8, 8, 64, 16, 1, "group size"},
		{"g too big", 512, 8, 8, 64, 16, 8, "group size"},
		{"g not pow2", 512, 8, 8, 64, 16, 3, "group size"},
		{"groups share s", 128 * 2, 8, 8, 64, 16, 2, "evenly share"},
		{"height", 128 * 32, 8, 8, 64, 16, 2, "height restriction"},
		{"incore", 256, 16, 16, 16, 16, 8, "in-core height"},
		{"bad z", 512, 8, 8, 64, 12, 2, "record"},
	}
	for _, c := range cases {
		_, err := NewHybridPlan(c.n, c.p, c.d, c.mem, c.z, c.g)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
	if _, err := NewPlan(Hybrid, 512, 8, 8, 64, 16); err == nil {
		t.Error("NewPlan should reject Hybrid (needs NewHybridPlan)")
	}
}

func TestHybridString(t *testing.T) {
	if Hybrid.String() != "hybrid" {
		t.Fatal("Hybrid.String wrong")
	}
	if Hybrid.Passes() != 3 {
		t.Fatal("hybrid should make 3 passes")
	}
}
