package core

import (
	"context"
	"fmt"
	"sync"

	"colsort/internal/cluster"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// BatchRunner executes the same plan repeatedly on ONE persistent cluster
// fabric: the P processor goroutines are spawned once and park at a barrier
// between batches, and the per-processor buffer pools (and, through them,
// every pass's pipeline scratch) stay warm across batches. It is the
// run-formation engine of the hierarchical sort — B batches of one maximal
// plan each — where per-batch fabric setup/teardown and cold pools would
// otherwise be paid B times.
//
// Consecutive batches alternate between two disjoint tag-window banks
// (parity), so a message of batch b can never be mistaken for one of batch
// b+1 even in the presence of latent sends — the same defense the passes of
// a single run use against each other.
//
// Run calls must not overlap (the fabric executes one batch at a time), and
// the first failed batch poisons the runner: the fabric unwinds exactly as
// core.Run's would, and every later Run returns the fabric's error. Close
// shuts the fabric down and waits for every goroutine to exit; it is safe
// after failure and after context cancellation.
type BatchRunner struct {
	pl     Plan
	m      pdm.Machine
	passes []passFunc
	pools  []*record.Pool
	window int

	jobs       chan *batchJob
	cur        *batchJob // in-flight job; rank 0 writes, owner reads post-fabric
	parity     int
	closeMu    sync.Mutex
	closed     bool
	fabricDone chan struct{}
	fabricErr  error
}

type batchJob struct {
	job *passJob
	res chan batchResult // buffered(1): publishing never blocks the fabric
}

type batchResult struct {
	out  *pdm.Store
	cnts [][]sim.Counters
	err  error
}

// NewBatchRunner validates the plan against the machine, builds the pass
// sequence once, and starts the persistent fabric under ctx. Cancelling ctx
// aborts the in-flight batch (if any) and shuts the fabric down, with the
// same no-leak guarantees as core.Run.
func NewBatchRunner(ctx context.Context, pl Plan, m pdm.Machine) (*BatchRunner, error) {
	if m.P != pl.P || m.D != pl.D {
		return nil, fmt.Errorf("core: machine P=%d D=%d does not match plan P=%d D=%d", m.P, m.D, pl.P, pl.D)
	}
	passes, err := passList(pl)
	if err != nil {
		return nil, err
	}
	pools := m.Pools
	if pools == nil {
		pools = record.NewPools(pl.P)
	}
	br := &BatchRunner{
		pl: pl, m: m, passes: passes, pools: pools, window: passTagWindow(pl),
		jobs:       make(chan *batchJob),
		fabricDone: make(chan struct{}),
	}
	go br.fabric(ctx)
	return br, nil
}

// fabric hosts the persistent cluster: rank 0 pulls the next job and
// publishes it through the pre-batch barrier; a nil job (closed queue or
// dead context) dissolves the fabric.
func (br *BatchRunner) fabric(ctx context.Context) {
	defer close(br.fabricDone)
	err := cluster.RunCtxFabric(ctx, br.pl.P, fabricOf(br.m), func(pr *cluster.Proc) error {
		for {
			if pr.Rank() == 0 {
				br.cur = nil
				select {
				case j, ok := <-br.jobs:
					if ok {
						br.cur = j
					}
				case <-ctx.Done():
				}
			}
			if err := pr.Barrier(); err != nil { // publishes br.cur
				return err
			}
			j := br.cur
			if j == nil {
				return ctx.Err() // nil on a clean Close
			}
			if err := runPasses(ctx, pr, br.pl, br.m, br.passes, br.pools, br.window, j.job); err != nil {
				return err
			}
			// runPasses ends with a global barrier, so when rank 0 gets
			// here the batch is complete on every rank.
			if pr.Rank() == 0 {
				j.res <- batchResult{out: j.job.stores[len(br.passes)], cnts: j.job.cnts}
				br.cur = nil
			}
		}
	})
	br.fabricErr = err
	// A batch was in flight when the fabric died: release its stores and
	// hand the attributed error to the waiting Run call.
	if j := br.cur; j != nil {
		if err == nil {
			err = cluster.ErrAborted
		}
		j.res <- batchResult{err: j.job.fail(br.pl, err)}
		br.cur = nil
	}
}

// Run executes one batch: input must match the runner's plan exactly (the
// last, partial batch of a hierarchical sort is padded by the caller to the
// same shape). The semantics — store lifecycle, counters, hooks, error
// attribution — are identical to core.Run on a fresh fabric.
func (br *BatchRunner) Run(input *pdm.Store, hooks Hooks) (*Result, error) {
	if err := checkRunInput(br.pl, br.m, input); err != nil {
		return nil, err
	}
	br.closeMu.Lock()
	closed := br.closed
	br.closeMu.Unlock()
	if closed {
		// The jobs channel is closed: sending would panic, and the select
		// below could pick either ready case. Report the shutdown instead.
		<-br.fabricDone
		return nil, br.deadErr()
	}
	j := &batchJob{
		job: newPassJob(br.pl, input, hooks, len(br.passes), br.parity*len(br.passes)*br.window),
		res: make(chan batchResult, 1),
	}
	br.parity ^= 1
	select {
	case br.jobs <- j:
	case <-br.fabricDone:
		return nil, br.deadErr()
	}
	var r batchResult
	select {
	case r = <-j.res:
	case <-br.fabricDone:
		// The fabric died while we waited; its cleanup path may still have
		// published an attributed result for this job.
		select {
		case r = <-j.res:
		default:
			return nil, br.deadErr()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return &Result{Plan: br.pl, PassCounters: r.cnts, Output: r.out}, nil
}

func (br *BatchRunner) deadErr() error {
	if br.fabricErr != nil {
		return fmt.Errorf("core: batch fabric: %w", br.fabricErr)
	}
	return fmt.Errorf("core: batch runner is closed")
}

// Close dissolves the fabric and waits for every processor goroutine to
// exit. It is idempotent and safe after a failed batch; the returned error
// is the fabric's terminal error, nil after a clean shutdown.
func (br *BatchRunner) Close() error {
	br.closeMu.Lock()
	if !br.closed {
		br.closed = true
		close(br.jobs)
	}
	br.closeMu.Unlock()
	<-br.fabricDone
	return br.fabricErr
}
