package core

import (
	"bytes"
	"context"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// runOnFabric executes one planned algorithm on a fresh machine with the
// given interconnect and returns the output bytes plus the per-pass counter
// totals. The generator seed fixes the input, so two runs differing only in
// fabric must agree on everything observable.
func runOnFabric(t *testing.T, pl Plan, copying bool, g record.Generator) ([]byte, []sim.Counters) {
	t.Helper()
	m := pdm.Machine{P: pl.P, D: pl.D, CopyFabric: copying}
	input, err := pl.NewInput(m, g)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := Run(context.Background(), pl, m, input, Hooks{})
	if err != nil {
		t.Fatalf("%v on %s fabric: %v", pl.Alg, fabricName(copying), err)
	}
	defer res.Output.Close()
	snap, err := res.Output.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	totals := make([]sim.Counters, len(res.PassCounters))
	for k := range res.PassCounters {
		for _, c := range res.PassCounters[k] {
			totals[k].Add(c)
		}
	}
	return append([]byte(nil), snap.Data...), totals
}

func fabricName(copying bool) string {
	if copying {
		return "copying"
	}
	return "zero-copy"
}

// TestFabricEquivalence is the ownership-transfer contract's acceptance
// test: for every algorithm, the zero-copy and the copying fabric must
// produce BYTE-IDENTICAL output and IDENTICAL sim counters per pass —
// network bytes, message counts, local bytes, comparison work, disk
// traffic, everything. The fabrics may differ only in wall-clock cost.
func TestFabricEquivalence(t *testing.T) {
	plans := []struct {
		name string
		plan func(t *testing.T) Plan
	}{
		{"threaded", planOf(Threaded, 512*8, 4, 4, 512, 16)},
		{"threaded-4pass", planOf(Threaded4, 512*8, 4, 4, 512, 16)},
		{"subblock", planOf(Subblock, 256*16, 4, 4, 256, 16)},
		{"m-columnsort", planOf(MColumn, 256*8, 4, 4, 64, 16)},
		{"combined", planOf(Combined, 256*16, 4, 4, 64, 16)},
		{"hybrid", func(t *testing.T) Plan {
			pl, err := NewHybridPlan(4096, 8, 8, 512, 16, 2)
			if err != nil {
				t.Fatal(err)
			}
			return pl
		}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			pl := tc.plan(t)
			gen := record.Uniform{Seed: 42}
			outZC, cntZC := runOnFabric(t, pl, false, gen)
			outCP, cntCP := runOnFabric(t, pl, true, gen)
			if !bytes.Equal(outZC, outCP) {
				t.Fatalf("%s: output bytes differ between fabrics", tc.name)
			}
			if len(cntZC) != len(cntCP) {
				t.Fatalf("%s: pass counts differ: %d vs %d", tc.name, len(cntZC), len(cntCP))
			}
			for k := range cntZC {
				if cntZC[k] != cntCP[k] {
					t.Fatalf("%s pass %d: counters differ between fabrics:\nzero-copy: %+v\ncopying:   %+v",
						tc.name, k+1, cntZC[k], cntCP[k])
				}
			}
		})
	}
}

func planOf(alg Algorithm, n int64, p, d, mem, z int) func(t *testing.T) Plan {
	return func(t *testing.T) Plan {
		pl, err := NewPlan(alg, n, p, d, mem, z)
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
}
