package core

import (
	"context"
	"strings"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/verify"
)

// runAlg plans and runs one algorithm end to end on a memory machine,
// verifying sortedness and multiset preservation.
func runAlg(t *testing.T, alg Algorithm, n int64, p, d, mem, z int, g record.Generator) *Result {
	t.Helper()
	pl, err := NewPlan(alg, n, p, d, mem, z)
	if err != nil {
		t.Fatalf("%v N=%d P=%d mem=%d: plan: %v", alg, n, p, mem, err)
	}
	m := pdm.Machine{P: p, D: d}
	input, err := pl.NewInput(m, g)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := Run(context.Background(), pl, m, input, Hooks{})
	if err != nil {
		t.Fatalf("%v %s: %v", alg, pl, err)
	}
	t.Cleanup(func() { res.Output.Close() })
	want := record.OfGenerated(g, n, z)
	if err := verify.Output(res.Output, want); err != nil {
		t.Fatalf("%v %s gen=%s: %v", alg, pl, g.Name(), err)
	}
	return res
}

func TestThreadedColumnsortGrid(t *testing.T) {
	// r=512, s up to 16 obeys r ≥ 2s²; sweep processors and record sizes.
	for _, p := range []int{1, 2, 4} {
		for _, z := range []int{16, 64} {
			for _, n := range []int64{512 * 4, 512 * 8, 512 * 16} {
				runAlg(t, Threaded, n, p, 2*p, 512, z, record.Uniform{Seed: uint64(n) + uint64(p)})
			}
		}
	}
}

func TestThreaded4PassGrid(t *testing.T) {
	for _, p := range []int{1, 2, 4} {
		runAlg(t, Threaded4, 512*8, p, p, 512, 16, record.Uniform{Seed: 7})
	}
}

func TestSubblockColumnsortGrid(t *testing.T) {
	// Subblock needs s a power of 4 and r ≥ 4·s^{3/2}: r=256, s=16 is the
	// boundary (4·16·4 = 256).
	for _, p := range []int{1, 2, 4, 8, 16} {
		runAlg(t, Subblock, 256*16, p, p, 256, 16, record.Uniform{Seed: uint64(p)})
	}
	// s = 4 with minimum legal r = 32.
	runAlg(t, Subblock, 32*4, 2, 2, 32, 16, record.Uniform{Seed: 3})
	// Wide records.
	runAlg(t, Subblock, 256*16, 4, 8, 256, 128, record.Uniform{Seed: 5})
}

func TestMColumnsortGrid(t *testing.T) {
	// M-columnsort: r = mem·P; in-core needs mem ≥ 2P².
	for _, cfg := range []struct{ p, mem, s int }{
		{2, 32, 4},
		{4, 64, 8},
		{4, 64, 16}, // r=256, s=16: r ≥ 2s² boundary (512)... s=16 needs r≥512
	} {
		r := cfg.p * cfg.mem
		if r < 2*cfg.s*cfg.s {
			continue
		}
		n := int64(r) * int64(cfg.s)
		runAlg(t, MColumn, n, cfg.p, cfg.p, cfg.mem, 16, record.Uniform{Seed: uint64(cfg.s)})
	}
}

func TestMColumnsortFewerColumnsThanProcs(t *testing.T) {
	// Regression: when s < P a processor's rank block straddles target
	// column chunks in the step-4 redistribution; the occurrence index
	// must be computed from the global rank, not a sender-local counter.
	for _, cfg := range []struct{ p, mem, s int }{
		{8, 128, 4}, // r=1024, s=4 < P=8
		{8, 2048, 2},
		{4, 64, 2},
		{16, 512, 4},
	} {
		r := cfg.p * cfg.mem
		n := int64(r) * int64(cfg.s)
		runAlg(t, MColumn, n, cfg.p, cfg.p, cfg.mem, 16, record.Uniform{Seed: uint64(cfg.p + cfg.s)})
	}
}

func TestMColumnsortLarger(t *testing.T) {
	// 8 processors, mem=128 ⇒ r=1024, s=16: exercises multi-round
	// pipelining of the distributed sort.
	runAlg(t, MColumn, 1024*16, 8, 16, 128, 16, record.Uniform{Seed: 11})
}

func TestCombinedGrid(t *testing.T) {
	// Combined: r = mem·P with subblock restrictions: s power of 4,
	// r ≥ 4·s^{3/2}, s | r/P.
	// P=4, mem=64 ⇒ r=256, s=16: 4·16·4=256 ✓; r/P=64, s|64 ✓.
	runAlg(t, Combined, 256*16, 4, 4, 64, 16, record.Uniform{Seed: 2})
	// P=2, mem=32 ⇒ r=64, s=4.
	runAlg(t, Combined, 64*4, 2, 4, 32, 16, record.Uniform{Seed: 4})
}

func TestAllAlgorithmsAllGenerators(t *testing.T) {
	gens := []record.Generator{
		record.Uniform{Seed: 1},
		record.Dup{Seed: 2, K: 3},
		record.Sorted{Seed: 3},
		record.Reverse{Seed: 4},
		record.NearlySorted{Seed: 5, Window: 64},
		record.Zipf{Seed: 6},
		record.Gaussian{Seed: 7},
	}
	for _, g := range gens {
		runAlg(t, Threaded, 512*8, 4, 4, 512, 16, g)
		runAlg(t, Subblock, 256*16, 4, 4, 256, 16, g)
		runAlg(t, MColumn, 256*8, 4, 4, 64, 16, g)
		runAlg(t, Combined, 256*16, 4, 4, 64, 16, g)
	}
}

func TestOutputsAgreeAcrossAlgorithms(t *testing.T) {
	// The same input must produce byte-identical sorted output from every
	// algorithm (the payload tie-break makes the sorted order total).
	g := record.Dup{Seed: 13, K: 7}
	const n, z = 256 * 16, 16
	snapshots := make(map[string][]byte)
	for _, tc := range []struct {
		alg       Algorithm
		p, d, mem int
	}{
		{Threaded, 4, 4, 1024}, // r=1024, s=4... n/r=4 ✓
		{Threaded4, 4, 4, 1024},
		{Subblock, 4, 4, 256}, // r=256, s=16
		{MColumn, 4, 4, 256},  // r=1024, s=4
		{Combined, 4, 4, 64},  // r=256, s=16
	} {
		res := runAlg(t, tc.alg, n, tc.p, tc.d, tc.mem, z, g)
		snap, err := res.Output.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		snapshots[tc.alg.String()] = snap.Data
	}
	ref := snapshots["threaded"]
	for name, data := range snapshots {
		if len(data) != len(ref) {
			t.Fatalf("%s output length differs", name)
		}
		for i := range data {
			if data[i] != ref[i] {
				t.Fatalf("%s output differs from threaded at byte %d", name, i)
			}
		}
	}
}

func TestFileBackend(t *testing.T) {
	// A genuinely out-of-core run: file-backed disks.
	pl, err := NewPlan(Threaded, 512*8, 2, 4, 512, 64)
	if err != nil {
		t.Fatal(err)
	}
	m := pdm.Machine{P: 2, D: 4, Backend: pdm.FileBackend{Dir: t.TempDir()}}
	g := record.Uniform{Seed: 21}
	input, err := pl.NewInput(m, g)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := Run(context.Background(), pl, m, input, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Output.Close()
	if err := verify.Output(res.Output, record.OfGenerated(g, pl.N, pl.Z)); err != nil {
		t.Fatal(err)
	}
}

func TestBaselinePreservesData(t *testing.T) {
	for _, alg := range []Algorithm{BaselineIO3, BaselineIO4} {
		pl, err := NewPlan(alg, 512*8, 4, 4, 512, 16)
		if err != nil {
			t.Fatal(err)
		}
		m := pdm.Machine{P: 4, D: 4}
		g := record.Uniform{Seed: 30}
		input, err := pl.NewInput(m, g)
		if err != nil {
			t.Fatal(err)
		}
		defer input.Close()
		res, err := Run(context.Background(), pl, m, input, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Output.Close()
		// Baselines copy, not sort.
		if err := verify.Multiset(res.Output, record.OfGenerated(g, pl.N, pl.Z)); err != nil {
			t.Fatal(err)
		}
		if len(res.PassCounters) != alg.Passes() {
			t.Fatalf("%v ran %d passes", alg, len(res.PassCounters))
		}
	}
}

func TestSingleColumnDegenerate(t *testing.T) {
	// N == r: one column; every pass is read-sort-write.
	res := runAlg(t, Threaded, 512, 1, 1, 512, 16, record.Uniform{Seed: 40})
	if len(res.PassCounters) != 3 {
		t.Fatalf("expected 3 passes, got %d", len(res.PassCounters))
	}
}

func TestPlanValidation(t *testing.T) {
	cases := []struct {
		name         string
		alg          Algorithm
		n            int64
		p, d, mem, z int
		wantErr      string
	}{
		{"bad record size", Threaded, 1 << 12, 2, 2, 512, 12, "record"},
		{"P not pow2", Threaded, 1 << 12, 3, 3, 512, 16, "power of 2"},
		{"D not multiple", Threaded, 1 << 12, 2, 3, 512, 16, "P | D"},
		{"N not pow2", Threaded, 1000, 2, 2, 512, 16, "power of 2"},
		{"height violated", Threaded, 512 * 64, 2, 2, 512, 16, "height restriction"},
		{"subblock s pow4", Subblock, 256 * 8, 2, 2, 256, 16, "power of 4"},
		{"subblock height", Subblock, 128 * 16, 2, 2, 128, 16, "relaxed height"},
		{"mcol needs P>=2", MColumn, 1 << 12, 1, 1, 4096, 16, "P ≥ 2"},
		{"mcol in-core", MColumn, 256, 4, 4, 16, 16, "in-core height"},
		{"s not div P", Threaded, 512 * 2, 4, 4, 512, 16, "divide s"},
		{"N below r", Threaded, 256, 1, 1, 512, 16, "smaller than one column"},
		{"mem not pow2", Threaded, 1 << 12, 2, 2, 500, 16, "power of 2"},
	}
	for _, c := range cases {
		_, err := NewPlan(c.alg, c.n, c.p, c.d, c.mem, c.z)
		if err == nil {
			t.Errorf("%s: plan accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestPlanFields(t *testing.T) {
	pl, err := NewPlan(MColumn, 256*8, 4, 8, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if pl.R != 256 || pl.S != 8 || pl.Layout != pdm.RowBlocked {
		t.Fatalf("plan wrong: %+v", pl)
	}
	if pl.Rounds() != 8 {
		t.Fatalf("rounds = %d", pl.Rounds())
	}
	if pl.String() == "" {
		t.Fatal("empty plan string")
	}
	pl2, err := NewPlan(Threaded, 512*8, 4, 8, 512, 32)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Rounds() != 2 || pl2.Layout != pdm.ColumnOwned {
		t.Fatalf("threaded plan wrong: %+v", pl2)
	}
}

func TestRunRejectsMismatchedInput(t *testing.T) {
	pl, _ := NewPlan(Threaded, 512*8, 2, 2, 512, 16)
	m := pdm.Machine{P: 2, D: 2}
	wrong, err := m.NewStore(256, 16, 16, pdm.ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	if _, err := Run(context.Background(), pl, m, wrong, Hooks{}); err == nil {
		t.Fatal("mismatched input store accepted")
	}
	badMachine := pdm.Machine{P: 4, D: 4}
	good, err := (pdm.Machine{P: 2, D: 2}).NewStore(512, 8, 16, pdm.ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer good.Close()
	if _, err := Run(context.Background(), pl, badMachine, good, Hooks{}); err == nil {
		t.Fatal("mismatched machine accepted")
	}
}

func TestDiskFaultPropagates(t *testing.T) {
	pl, err := NewPlan(Threaded, 512*8, 2, 2, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := pdm.Machine{P: 2, D: 2}
	input, err := pl.NewInput(m, record.Uniform{Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	// Wrap processor 1's disk so it fails partway through pass 1 reads.
	inner := input.Arrays[1].Disks[0]
	input.Arrays[1].Disks[0] = &pdm.FaultDisk{Inner: inner, Budget: 3 * 512 * 16 / 2}
	_, err = Run(context.Background(), pl, m, input, Hooks{})
	if err == nil {
		t.Fatal("injected disk fault did not surface")
	}
	if !strings.Contains(err.Error(), "injected disk fault") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestAlgorithmMeta(t *testing.T) {
	if Threaded.Passes() != 3 || Subblock.Passes() != 4 || MColumn.Passes() != 3 ||
		Combined.Passes() != 4 || Threaded4.Passes() != 4 ||
		BaselineIO3.Passes() != 3 || BaselineIO4.Passes() != 4 {
		t.Fatal("pass counts wrong")
	}
	for _, a := range []Algorithm{Threaded4, Threaded, Subblock, MColumn, Combined, BaselineIO3, BaselineIO4} {
		if a.String() == "" || strings.HasPrefix(a.String(), "Algorithm(") {
			t.Fatalf("missing name for %d", int(a))
		}
	}
}
