package core

import (
	"fmt"

	"colsort/internal/cluster"
	"colsort/internal/incore"
	"colsort/internal/pdm"
	"colsort/internal/pipeline"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// M-columnsort (Section 4) reinterprets the column height as r = M: every
// out-of-core column is held collectively by all P processors (row-blocked
// layout, M/P records each) and sorted by the distributed in-core columnsort
// of internal/incore. One round processes one column.
//
// The communicate stage of the out-of-core pipeline is eliminated: the
// paper designs the in-core sort so each processor finishes holding exactly
// the records it will write into its own portions of the target columns.
// Here that "designed final distribution" is realized as follows. After the
// in-core sort, processor q holds global ranks [q·(r/P), (q+1)·(r/P)).
//   - For the step-2 permutation (target column = rank mod s) and for the
//     subblock permutation, a contiguous rank block already contains an
//     exactly equal share of every target column's records, so each
//     processor writes straight into its own blocks: genuinely no
//     communication outside the in-core sort.
//   - For the step-4 permutation (target column = rank ÷ (r/s)) the shares
//     are unequal, so a final redistribution exchange routes each record to
//     the processor owning its destination block — the volume the paper
//     folds into the in-core sort's last step.
//
// mcolSpec captures one such pass.
type mcolSpec struct {
	name string
	// destCol maps a global sorted rank within source column j to its
	// target column.
	destCol func(rank int64, j int) int
	// colInvariant marks destCol as independent of j, letting the
	// distribution tables be computed once per pass.
	colInvariant bool
	// redistribute is true for passes whose rank blocks do not evenly
	// cover the target columns (step 4).
	redistribute bool
	// chunk is the number of records each target column receives per round
	// (r/s for steps 2 and 4, r/√s for the subblock permutation).
	chunk int
}

// mcolTagStride separates the tag windows of consecutive rounds: each round
// may run two full in-core sorts plus swaps and redistribution.
const mcolTagStride = 4 * incore.TagSpan

// runMColScatterPass executes one M-columnsort distribution pass.
func runMColScatterPass(pr *cluster.Proc, pl Plan, spec mcolSpec, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	q := pr.Rank()
	P := pl.P
	r, s, z := pl.R, pl.S, pl.Z
	rb := r / P
	lo := q * rb

	if spec.chunk%P != 0 {
		return fmt.Errorf("core: %s: per-round chunk %d not divisible by P=%d", spec.name, spec.chunk, P)
	}
	share := spec.chunk / P // records per (target column, processor, round)

	var cRead, cSort, cComm, cWrite sim.Counters
	written := make([]int, s) // block-local next free row per target column

	type round struct {
		j   int // column index == round index
		buf record.Slice
		// perCol[tj] holds this processor's arrival chunk for column tj.
		perCol []record.Slice
	}

	read := func(rd round) (round, error) {
		if rd.j+1 < s {
			in.PrefetchRows(q, rd.j+1, lo, rb) // stage the next round's block
		}
		rd.buf = pool.Get(rb, z)
		if err := in.ReadRows(&cRead, q, rd.j, lo, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	var sortSc sortalg.Scratch
	sorter := incore.Columnsort{Pool: pool, Scratch: &sortSc}
	sortStage := func(rd round) (round, error) {
		sorted, err := sorter.Sort(pr, &cSort, tagBase+rd.j*mcolTagStride, rd.buf)
		if err != nil {
			return rd, err
		}
		rd.buf = sorted
		return rd, nil
	}

	// Route each record to the processor owning its destination block:
	// rank gi belongs to target column tj with occurrence index
	// k = gi mod chunk — its position within tj's records this round, which
	// are exactly the contiguous ranks [tj·chunk, (tj+1)·chunk).
	// Owner = k ÷ share. Both sides compute k from the rank itself so the
	// pattern agrees even when a processor's rank block straddles column
	// chunks (s < P).
	destOf := func(gi int64) int {
		return int((gi % int64(spec.chunk)) / int64(share))
	}

	// Distribution tables. The redistribution routing pattern depends only
	// on ranks, so its send plan and per-source keep patterns are always
	// once-per-pass; the target-column map shares that luxury only when it
	// is column-invariant.
	var packPlan sendPlan
	var keepPlans []colPlan // per source processor, ranks this processor keeps
	if spec.redistribute {
		buildSendPlan(&packPlan, func(i, _ int) int { return destOf(int64(lo) + int64(i)) }, 0, rb, P)
		if spec.colInvariant {
			keepPlans = make([]colPlan, P)
			for src := 0; src < P; src++ {
				kp := &keepPlans[src]
				kp.reset(s)
				srcLo := int64(src) * int64(rb)
				for i := 0; i < rb; i++ {
					if gi := srcLo + int64(i); destOf(gi) == q {
						kp.add(spec.destCol(gi, 0))
					}
				}
			}
		}
	}
	var directPlan colPlan
	if !spec.redistribute && spec.colInvariant {
		directPlan.reset(s)
		for i := 0; i < rb; i++ {
			directPlan.add(spec.destCol(int64(lo)+int64(i), 0))
		}
	}

	fillCol := make([]int32, s)
	colCounts := make([]int32, s)
	// Stage scratch for column-dependent maps, rebuilt per round.
	var roundPlans []colPlan
	var directScratch colPlan
	distribute := func(rd round) (round, error) {
		local := rd.buf
		if spec.redistribute {
			// Planned collective: pack per destination straight from the
			// sorted rank block and exchange with one synchronization.
			inMsgs, err := pr.AllToAllPlan(&cComm, tagBase+rd.j*mcolTagStride+3*incore.TagSpan, local, &packPlan, pool)
			pool.Put(local)
			rd.buf = record.Slice{}
			if err != nil {
				return rd, err
			}
			// Reassemble: scan every source's rank range in order, keeping
			// the records whose destination is this processor — the keep
			// plans replay that scan as batched copies.
			plans := keepPlans
			if plans == nil {
				if roundPlans == nil {
					roundPlans = make([]colPlan, P)
				}
				plans = roundPlans
				for src := 0; src < P; src++ {
					kp := &plans[src]
					kp.reset(s)
					srcLo := int64(src) * int64(rb)
					for i := 0; i < rb; i++ {
						if gi := srcLo + int64(i); destOf(gi) == q {
							kp.add(spec.destCol(gi, rd.j))
						}
					}
				}
			}
			total := 0
			for tj := range colCounts {
				colCounts[tj] = 0
			}
			for src := 0; src < P; src++ {
				if inMsgs[src].Len() != plans[src].total {
					return rd, fmt.Errorf("core: %s: redistribution message from %d has %d records, pattern wants %d",
						spec.name, src, inMsgs[src].Len(), plans[src].total)
				}
				total += plans[src].total
				for tj, c := range plans[src].counts {
					colCounts[tj] += c
				}
			}
			if total != rb {
				return rd, fmt.Errorf("core: %s: redistribution delivered %d of %d records", spec.name, total, rb)
			}
			rd.perCol = record.GetHeaders(s)
			for tj := 0; tj < s; tj++ {
				if colCounts[tj] > 0 {
					rd.perCol[tj] = pool.Get(int(colCounts[tj]), z)
				}
				fillCol[tj] = 0
			}
			for src := 0; src < P; src++ {
				msg := inMsgs[src]
				replayExtents(rd.perCol, fillCol, msg, plans[src].exts, z)
				pool.Put(msg)
			}
			record.PutHeaders(inMsgs)
			cComm.MovedBytes += int64(rb * z)
			return rd, nil
		}
		// No redistribution: this processor's rank block contains exactly
		// `share` records per target column per round; group them.
		plan := &directPlan
		if !spec.colInvariant {
			plan = &directScratch
			plan.reset(s)
			for i := 0; i < rb; i++ {
				plan.add(spec.destCol(int64(lo)+int64(i), rd.j))
			}
		}
		for tj, c := range plan.counts {
			if int(c) > share {
				return rd, fmt.Errorf("core: %s: processor %d holds more than its share of column %d", spec.name, q, tj)
			}
		}
		rd.perCol = record.GetHeaders(s)
		for tj := 0; tj < s; tj++ {
			if plan.counts[tj] > 0 {
				rd.perCol[tj] = pool.Get(int(plan.counts[tj]), z)
			}
			fillCol[tj] = 0
		}
		replayExtents(rd.perCol, fillCol, local, plan.exts, z)
		cComm.MovedBytes += int64(rb * z)
		pool.Put(local)
		rd.buf = record.Slice{}
		return rd, nil
	}

	write := func(rd round) error {
		for tj := 0; tj < s; tj++ {
			chunk := rd.perCol[tj]
			if chunk.Data == nil || chunk.Len() == 0 {
				continue
			}
			if err := out.WriteRows(&cWrite, q, tj, lo+written[tj], chunk); err != nil {
				return err
			}
			written[tj] += chunk.Len()
			pool.Put(chunk)
		}
		record.PutHeaders(rd.perCol)
		rd.perCol = nil
		if onRound != nil {
			onRound()
		}
		return nil
	}

	src := func(emit func(round) error) error {
		for j := 0; j < s; j++ {
			if err := emit(round{j: j}); err != nil {
				return err
			}
		}
		return nil
	}

	err := pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(q) },
		read, sortStage, distribute)
	for _, c := range []sim.Counters{cRead, cSort, cComm, cWrite} {
		cnt.Add(c)
	}
	if err != nil {
		return fmt.Errorf("core: %s pass: %w", spec.name, err)
	}
	for tj := 0; tj < s; tj++ {
		if written[tj] != rb {
			return fmt.Errorf("core: %s pass: block of column %d received %d of %d records", spec.name, tj, written[tj], rb)
		}
	}
	return nil
}

// runMColMergePass executes M-columnsort's final pass (fused steps 5–8):
// per round, a distributed in-core sort of column j (step 5), a half-swap
// exchange assembling the overlap array [bottom(j−1); top(j)], a second
// distributed in-core sort of the overlap (step 7 — the paper's "each of
// the two sort stages turns into eight in-core sort stages"), and a
// half-rotation that lands every final half-column on the processors owning
// its rows, which are then written in TRUE row order.
func runMColMergePass(pr *cluster.Proc, pl Plan, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	q := pr.Rank()
	P := pl.P
	r, s, z := pl.R, pl.S, pl.Z
	rb := r / P
	lo := q * rb
	half := P / 2

	var cRead, cSort, cBound, cWrite sim.Counters

	type round struct {
		j      int
		buf    record.Slice
		writes []struct {
			col, row int
			recs     record.Slice
		}
	}

	read := func(rd round) (round, error) {
		if rd.j+1 < s {
			in.PrefetchRows(q, rd.j+1, lo, rb)
		}
		rd.buf = pool.Get(rb, z)
		if err := in.ReadRows(&cRead, q, rd.j, lo, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	var sortSc sortalg.Scratch
	sorter := incore.Columnsort{Pool: pool, Scratch: &sortSc}
	sortStage := func(rd round) (round, error) { // step 5
		sorted, err := sorter.Sort(pr, &cSort, tagBase+rd.j*mcolTagStride, rd.buf)
		if err != nil {
			return rd, err
		}
		rd.buf = sorted
		return rd, nil
	}

	// boundary carries cross-round state: this processor's piece of the
	// previous column's bottom half (only processors q ≥ P/2 hold one).
	var prevBottom record.Slice
	var boundSc sortalg.Scratch
	boundSorter := incore.Columnsort{Pool: pool, Scratch: &boundSc}

	boundary := func(rd round) (round, error) {
		j := rd.j
		win := tagBase + j*mcolTagStride
		swapTag := win + incore.TagSpan
		sortWin := win + 2*incore.TagSpan
		rotTag := win + 3*incore.TagSpan
		addWrite := func(col, row int, recs record.Slice) {
			rd.writes = append(rd.writes, struct {
				col, row int
				recs     record.Slice
			}{col, row, recs})
		}

		if j == 0 {
			// No left boundary: the top half of column 0 is final.
			if q < half {
				addWrite(0, lo, rd.buf)
			} else {
				prevBottom = rd.buf
			}
			if s == 1 && q >= half {
				addWrite(0, lo, rd.buf)
				prevBottom = record.Slice{}
			}
			return rd, nil
		}

		// Assemble the overlap O = [bottom(j−1); top(j)] block-distributed:
		// upper processors ship their saved bottom piece down, lower
		// processors ship their top piece up.
		var send record.Slice
		var dst int
		if q < half {
			send = rd.buf // my piece of top(j): O-ranks r/2 + q·rb
			dst = q + half
		} else {
			send = prevBottom // O-ranks (q−P/2)·rb
			dst = q - half
			prevBottom = rd.buf // my piece of bottom(j) for the next round
		}
		if err := pr.Send(&cBound, dst, swapTag, send); err != nil {
			return rd, err
		}
		oPiece, err := pr.Recv(dst, swapTag)
		if err != nil {
			return rd, err
		}

		// Step 7: sort the overlap.
		sortedO, err := boundSorter.Sort(pr, &cBound, sortWin, oPiece)
		if err != nil {
			return rd, err
		}

		// Step 8: rotate halves so each final half-column lands on the
		// owners of its rows, then write true positions.
		if err := pr.Send(&cBound, (q+half)%P, rotTag, sortedO); err != nil {
			return rd, err
		}
		piece, err := pr.Recv((q+half)%P, rotTag)
		if err != nil {
			return rd, err
		}
		if q >= half {
			// I now hold sorted-O ranks [(q−P/2)·rb, ...) ⊂ [0, r/2):
			// the final bottom of column j−1, at rows r/2 + (q−P/2)·rb
			// = q·rb = my own rows.
			addWrite(j-1, lo, piece)
		} else {
			// I hold sorted-O ranks [r/2 + q·rb, ...): the final top of
			// column j at rows q·rb.
			addWrite(j, lo, piece)
		}
		// The last column's bottom faces +∞ and is final as soon as its
		// round's sort completes.
		if j == s-1 && q >= half {
			addWrite(s-1, lo, prevBottom)
			prevBottom = record.Slice{}
		}
		return rd, nil
	}

	write := func(rd round) error {
		for _, w := range rd.writes {
			if err := out.WriteRows(&cWrite, q, w.col, w.row, w.recs); err != nil {
				return err
			}
			pool.Put(w.recs)
		}
		if onRound != nil {
			onRound()
		}
		return nil
	}

	src := func(emit func(round) error) error {
		for j := 0; j < s; j++ {
			if err := emit(round{j: j}); err != nil {
				return err
			}
		}
		return nil
	}

	err := pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(q) },
		read, sortStage, boundary)
	for _, c := range []sim.Counters{cRead, cSort, cBound, cWrite} {
		cnt.Add(c)
	}
	if err != nil {
		return fmt.Errorf("core: m-columnsort merge pass: %w", err)
	}
	return nil
}
