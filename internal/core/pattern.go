package core

import (
	"colsort/internal/cluster"
	"colsort/internal/record"
)

// Precomputed permutation tables for the scatter passes.
//
// The communicate and permute stages of a scatter pass replay the pass's
// oblivious permutation record by record: for every sorted position i of a
// source column they ask destCol(i, j) where a record goes. The answers
// depend only on (r, s, P) and — for steps 2 and 4 — not even on the source
// column j, so the whole question-and-answer session can be computed ONCE
// per pass and compiled into flat tables: per-destination counts, maximal
// contiguous-run extents (consecutive sorted positions with the same
// destination), and receiver-side fill offsets. The per-round work then
// collapses from r (or r·P) closure calls plus per-record CopyRecord loops
// and map lookups into batched copies of runs over dense slices.
//
// The send-side tables use the fabric's own plan type (cluster.SendPlan),
// so the communicate stage hands the whole plan to the planned all-to-all
// collective, which packs per-destination pooled buffers in one pass over
// the sorted column and runs the round through the exchange board.
//
// For passes whose destination map does depend on the source column (the
// subblock permutation, the targeted step-5 pass), the plans are rebuilt
// per round into stage-local scratch, which reuses the same backing arrays
// and therefore still allocates nothing in steady state.

// extent is a maximal run of consecutive sorted positions sharing one
// destination: Dst is a destination processor on the send side and an
// owned-column slot (or target column) on the receive side.
type extent = cluster.Extent

// replayExtents executes a compiled plan: for each extent, one batched copy
// of count records from the running position in src into dst[e.Dst] at that
// buffer's fill offset. fill must be zeroed and len ≥ the largest e.Dst+1;
// it is left holding the per-destination record counts consumed.
func replayExtents(dst []record.Slice, fill []int32, src record.Slice, exts []extent, z int) {
	pos := 0
	for _, e := range exts {
		d, n := int(e.Dst), int(e.Count)
		f := int(fill[d])
		copy(dst[d].Data[f*z:(f+n)*z], src.Data[pos*z:(pos+n)*z])
		fill[d] += int32(n)
		pos += n
	}
}

// sendPlan is the communicate stage's packing pattern for one source
// column: how many records go to each destination processor, and the
// contiguous-run extents of the sorted column in scan order. It IS the
// fabric's plan type, handed to Proc.AllToAllPlan verbatim.
type sendPlan = cluster.SendPlan

// buildSendPlan compiles the plan for source column col, reusing the plan's
// backing arrays.
func buildSendPlan(sp *sendPlan, destCol func(i, j int) int, col, r, P int) {
	if cap(sp.Counts) < P {
		sp.Counts = make([]int32, P)
	}
	sp.Counts = sp.Counts[:P]
	for d := range sp.Counts {
		sp.Counts[d] = 0
	}
	if cap(sp.Exts) == 0 {
		sp.Exts = make([]extent, 0, r) // extents never outnumber positions
	}
	sp.Exts = sp.Exts[:0]
	prev := int32(-1)
	for i := 0; i < r; i++ {
		d := int32(destCol(i, col) % P)
		sp.Counts[d]++
		if d == prev {
			sp.Exts[len(sp.Exts)-1].Count++
		} else {
			sp.Exts = append(sp.Exts, extent{Dst: d, Count: 1})
			prev = d
		}
	}
}

// colPlan is the distribution pattern of one scan of sorted ranks over
// target columns — the rank-keyed counterpart of recvPlan used by the
// m-column and hybrid passes: per-column counts plus extents of consecutive
// scanned positions sharing a column, accumulated via add so callers can
// apply arbitrary keep predicates. Built once per pass for rank-invariant
// destination maps, rebuilt into stage scratch otherwise.
type colPlan struct {
	total  int
	counts []int32 // per target column
	exts   []extent
}

func (cp *colPlan) reset(s int) {
	if cap(cp.counts) < s {
		cp.counts = make([]int32, s)
	}
	cp.counts = cp.counts[:s]
	for i := range cp.counts {
		cp.counts[i] = 0
	}
	cp.exts = cp.exts[:0]
	cp.total = 0
}

// add accumulates the next kept scan position, coalescing same-column runs
// into one extent — the same run-length encoding buildSendPlan and
// recvPlan.build inline in their scan loops.
func (cp *colPlan) add(tj int) {
	cp.counts[tj]++
	cp.total++
	if n := len(cp.exts); n > 0 && cp.exts[n-1].Dst == int32(tj) {
		cp.exts[n-1].Count++
	} else {
		cp.exts = append(cp.exts, extent{Dst: int32(tj), Count: 1})
	}
}

// recvPlan is the permute stage's replay pattern for one (source column,
// receiving processor) pair: of the records of the sorted source column, in
// order, which ones arrive here and into which owned-column slot they fall.
// Slot k is owned column p + k·P. Because a message carries exactly the
// records destined here, in source order, consecutive kept records with the
// same slot form one extent even when skipped records separate them in the
// source column.
type recvPlan struct {
	total  int     // records this processor receives from the column
	counts []int32 // per owned-column slot
	exts   []extent
}

// build compiles the plan for source column srcCol as seen by processor p,
// reusing the plan's backing arrays. nSlots is s/P.
func (rp *recvPlan) build(destCol func(i, j int) int, srcCol, r, nSlots, P, p int) {
	if cap(rp.counts) < nSlots {
		rp.counts = make([]int32, nSlots)
	}
	rp.counts = rp.counts[:nSlots]
	for k := range rp.counts {
		rp.counts[k] = 0
	}
	if cap(rp.exts) == 0 {
		rp.exts = make([]extent, 0, r)
	}
	rp.exts = rp.exts[:0]
	rp.total = 0
	prev := int32(-1)
	for i := 0; i < r; i++ {
		tj := destCol(i, srcCol)
		if tj%P != p {
			continue // skipped records are not in the message: no extent break
		}
		slot := int32(tj / P)
		rp.counts[slot]++
		rp.total++
		if slot == prev {
			rp.exts[len(rp.exts)-1].Count++
		} else {
			rp.exts = append(rp.exts, extent{Dst: slot, Count: 1})
			prev = slot
		}
	}
}
