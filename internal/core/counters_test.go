package core

import (
	"context"
	"testing"

	"colsort/internal/bitperm"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// countersOf sums counters over processors for one pass.
func countersOf(res *Result, pass int) sim.Counters {
	var tot sim.Counters
	for _, c := range res.PassCounters[pass] {
		tot.Add(c)
	}
	return tot
}

// TestPassIOVolume verifies the defining property of a pass: every pass
// reads N·Z bytes and writes N·Z bytes, no more and no less.
func TestPassIOVolume(t *testing.T) {
	cases := []struct {
		alg       Algorithm
		n         int64
		p, d, mem int
	}{
		{Threaded, 512 * 8, 4, 4, 512},
		{Threaded4, 512 * 8, 4, 4, 512},
		{Subblock, 256 * 16, 4, 4, 256},
		{MColumn, 256 * 8, 4, 4, 64},
		{Combined, 256 * 16, 4, 4, 64},
	}
	for _, tc := range cases {
		res := runAlg(t, tc.alg, tc.n, tc.p, tc.d, tc.mem, 16, record.Uniform{Seed: 1})
		if len(res.PassCounters) != tc.alg.Passes() {
			t.Fatalf("%v: %d passes recorded, want %d", tc.alg, len(res.PassCounters), tc.alg.Passes())
		}
		want := tc.n * 16
		for k := range res.PassCounters {
			tot := countersOf(res, k)
			if tot.DiskReadBytes != want || tot.DiskWriteBytes != want {
				t.Fatalf("%v pass %d: read %d write %d bytes, want %d each",
					tc.alg, k+1, tot.DiskReadBytes, tot.DiskWriteBytes, want)
			}
		}
	}
}

// TestSubblockMessageCounts is experiment E5 measured on the real runs:
// in the subblock pass each processor sends exactly ⌈P/√s⌉ messages per
// round, and when √s ≥ P none of them cross the network.
func TestSubblockMessageCounts(t *testing.T) {
	cases := []struct{ p, s, r int }{
		{2, 16, 256},  // √s=4 ≥ P=2: no network traffic
		{4, 16, 256},  // √s=4 ≥ P=4: no network traffic
		{8, 16, 256},  // √s=4 < P: P/√s = 2 messages
		{16, 16, 256}, // P/√s = 4 messages
	}
	for _, tc := range cases {
		n := int64(tc.r) * int64(tc.s)
		res := runAlg(t, Subblock, n, tc.p, tc.p, tc.r, 16, record.Uniform{Seed: 9})
		rounds := int64(tc.s / tc.p)
		wantPerRound := int64(bitperm.MessagesPerRound(tc.p, tc.s))
		sub := countersOf(res, 1) // pass 2 is the subblock pass
		msgs := sub.NetMsgs + sub.LocalMsgs
		wantTotal := wantPerRound * rounds * int64(tc.p)
		if msgs != wantTotal {
			t.Fatalf("P=%d s=%d: subblock pass sent %d messages, want ⌈P/√s⌉·rounds·P = %d",
				tc.p, tc.s, msgs, wantTotal)
		}
		if bitperm.NoNetworkComm(tc.p, tc.s) {
			if sub.NetMsgs != 0 || sub.NetBytes != 0 {
				t.Fatalf("P=%d s=%d: √s ≥ P but %d messages (%d bytes) crossed the network",
					tc.p, tc.s, sub.NetMsgs, sub.NetBytes)
			}
		} else if sub.NetMsgs == 0 {
			t.Fatalf("P=%d s=%d: expected network traffic", tc.p, tc.s)
		}
	}
}

// TestThreadedMessageCounts: passes 1 and 2 of threaded columnsort send
// exactly P messages per processor per round (Section 2), one of which is
// self-destined.
func TestThreadedMessageCounts(t *testing.T) {
	const p, r, s = 4, 512, 8
	res := runAlg(t, Threaded, r*s, p, p, r, 16, record.Uniform{Seed: 3})
	rounds := int64(s / p)
	for pass := 0; pass < 2; pass++ {
		tot := countersOf(res, pass)
		if tot.NetMsgs != rounds*int64(p)*int64(p-1) {
			t.Fatalf("pass %d: %d network messages, want %d", pass+1, tot.NetMsgs, rounds*int64(p)*int64(p-1))
		}
		if tot.LocalMsgs != rounds*int64(p) {
			t.Fatalf("pass %d: %d self messages, want %d", pass+1, tot.LocalMsgs, rounds*int64(p))
		}
		// Message payloads: each message carries r/P records of 16 bytes.
		wantBytes := rounds * int64(p) * int64(p-1) * int64(r/p) * 16
		if tot.NetBytes != wantBytes {
			t.Fatalf("pass %d: %d net bytes, want %d", pass+1, tot.NetBytes, wantBytes)
		}
	}
}

// TestBaselineCountersPureIO: the baseline program must show zero
// communication and zero comparison work.
func TestBaselineCountersPureIO(t *testing.T) {
	pl, err := NewPlan(BaselineIO3, 512*8, 4, 8, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := pdm.Machine{P: 4, D: 8}
	input, err := pl.NewInput(m, record.Uniform{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := Run(context.Background(), pl, m, input, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Output.Close()
	tot := res.TotalCounters()
	if tot.NetMsgs != 0 || tot.NetBytes != 0 || tot.LocalMsgs != 0 || tot.CompareUnits != 0 {
		t.Fatalf("baseline did non-I/O work: %+v", tot)
	}
	if tot.DiskReadBytes != 3*pl.N*int64(pl.Z) {
		t.Fatalf("baseline read %d bytes, want %d", tot.DiskReadBytes, 3*pl.N*int64(pl.Z))
	}
}

// TestMColumnsortCommDominates: M-columnsort must move far more bytes over
// the network than threaded columnsort on the same problem — the paper's
// "substantial amounts of communication" (Section 4).
func TestMColumnsortCommDominates(t *testing.T) {
	const n, p, z = 256 * 8, 4, 16
	th := runAlg(t, Threaded, n, p, p, 512, z, record.Uniform{Seed: 5})
	mc := runAlg(t, MColumn, n, p, p, 64, z, record.Uniform{Seed: 5})
	thNet := th.TotalCounters().NetBytes
	mcNet := mc.TotalCounters().NetBytes
	if mcNet <= thNet {
		t.Fatalf("m-columnsort net bytes %d not above threaded %d", mcNet, thNet)
	}
}

// TestMergePassBoundaryTraffic: the final fused pass exchanges exactly one
// half-column forward and one back per interior boundary.
func TestMergePassBoundaryTraffic(t *testing.T) {
	const p, r, s, z = 4, 512, 8, 16
	res := runAlg(t, Threaded, r*s, p, p, r, z, record.Uniform{Seed: 8})
	last := countersOf(res, 2)
	boundaries := int64(s - 1)
	wantMsgs := 2 * boundaries // bottom forward + final bottom back
	if last.NetMsgs+last.LocalMsgs != wantMsgs {
		t.Fatalf("merge pass sent %d messages, want %d", last.NetMsgs+last.LocalMsgs, wantMsgs)
	}
	wantBytes := 2 * boundaries * int64(r/2) * int64(z)
	if last.NetBytes+last.LocalBytes != wantBytes {
		t.Fatalf("merge pass moved %d message bytes, want %d", last.NetBytes+last.LocalBytes, wantBytes)
	}
}

// TestEstimateShapes: applying the Beowulf cost model to measured counters
// must reproduce the qualitative Figure-2 relationships even at test scale:
// subblock > threaded (one extra pass) and every algorithm ≥ its baseline.
func TestEstimateShapes(t *testing.T) {
	const z = 16
	cm := sim.Beowulf2003()
	th := runAlg(t, Threaded, 512*8, 4, 4, 512, z, record.Uniform{Seed: 2})
	sb := runAlg(t, Subblock, 256*16, 4, 4, 256, z, record.Uniform{Seed: 2})
	thT := th.Estimate(cm).Total
	sbT := sb.Estimate(cm).Total
	if sbT <= thT {
		t.Fatalf("subblock estimate %.3f not above threaded %.3f", sbT, thT)
	}
	// Same data volume ⇒ the 4-pass algorithm moves exactly 4/3 the disk
	// bytes of the 3-pass one. (At paper scale transfer time dominates
	// seeks, so this is also the time ratio of Figure 2's baselines.)
	thB := th.TotalCounters().DiskReadBytes + th.TotalCounters().DiskWriteBytes
	sbB := sb.TotalCounters().DiskReadBytes + sb.TotalCounters().DiskWriteBytes
	if 3*sbB != 4*thB {
		t.Fatalf("disk byte ratio %d/%d, want exactly 4/3", sbB, thB)
	}
}

// TestDeterministicCounters: identical runs must produce identical counter
// totals (the pattern is oblivious; scheduling must not leak into counts).
func TestDeterministicCounters(t *testing.T) {
	a := runAlg(t, Subblock, 256*16, 4, 4, 256, 16, record.Uniform{Seed: 77})
	b := runAlg(t, Subblock, 256*16, 4, 4, 256, 16, record.Uniform{Seed: 77})
	ta, tb := a.TotalCounters(), b.TotalCounters()
	if ta != tb {
		t.Fatalf("counters differ across identical runs:\n%+v\n%+v", ta, tb)
	}
}
