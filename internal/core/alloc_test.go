package core

import (
	"testing"

	"colsort/internal/matrix"
	"colsort/internal/record"
)

// TestPatternPlansMatchNaiveReplay verifies the precomputed tables against
// the definition they compile: scanning the sorted column record by record.
func TestPatternPlansMatchNaiveReplay(t *testing.T) {
	const r, s, P, p = 256, 16, 4, 1
	destCol := func(i, j int) int { return matrix.Step2ColOf(r, s, i) }

	var sp sendPlan
	buildSendPlan(&sp, destCol, 0, r, P)
	counts := make([]int, P)
	pos := 0
	for _, e := range sp.Exts {
		for k := 0; k < int(e.Count); k++ {
			if want := destCol(pos, 0) % P; int(e.Dst) != want {
				t.Fatalf("send extent at position %d routes to %d, want %d", pos, e.Dst, want)
			}
			counts[e.Dst]++
			pos++
		}
	}
	if pos != r {
		t.Fatalf("send extents cover %d of %d positions", pos, r)
	}
	for d := range counts {
		if counts[d] != int(sp.Counts[d]) {
			t.Fatalf("send counts[%d] = %d, extents say %d", d, sp.Counts[d], counts[d])
		}
	}

	var rp recvPlan
	rp.build(destCol, 0, r, s/P, P, p)
	wantTotal := 0
	for i := 0; i < r; i++ {
		if destCol(i, 0)%P == p {
			wantTotal++
		}
	}
	if rp.total != wantTotal {
		t.Fatalf("recv total = %d, want %d", rp.total, wantTotal)
	}
	// Replaying the extents must visit exactly the kept positions' slots,
	// in source order.
	i := 0
	for _, e := range rp.exts {
		for k := 0; k < int(e.Count); k++ {
			for destCol(i, 0)%P != p {
				i++
			}
			if want := destCol(i, 0) / P; int(e.Dst) != want {
				t.Fatalf("recv extent at kept position %d targets slot %d, want %d", i, e.Dst, want)
			}
			i++
		}
	}
}

// TestScatterRoundWarmAllocs pins the steady-state property of the scatter
// hot path: with built plans and a warm pool, one communicate-style pack
// plus one permute-style replay performs no allocator work at all.
func TestScatterRoundWarmAllocs(t *testing.T) {
	const r, s, P, p, z = 512, 16, 4, 1, 64
	destCol := func(i, j int) int { return matrix.Step4ColOf(r, s, i) }
	var sp sendPlan
	var rp recvPlan
	buildSendPlan(&sp, destCol, 0, r, P)
	rp.build(destCol, 0, r, s/P, P, p)

	pool := record.NewPool()
	col := record.Make(r, z)
	record.Fill(col, record.Uniform{Seed: 5}, 0)
	fill := make([]int32, P)
	fills := make([]int32, s/P)

	oneRound := func() {
		// Communicate: pack per destination processor.
		outMsgs := record.GetHeaders(P)
		for d := 0; d < P; d++ {
			outMsgs[d] = pool.Get(int(sp.Counts[d]), z)
			fill[d] = 0
		}
		replayExtents(outMsgs, fill, col, sp.Exts, z)
		// Permute: replay one incoming message into per-column writes.
		msg := outMsgs[p]
		writes := record.GetHeaders(s / P)
		for k := range writes {
			if rp.counts[k] > 0 {
				writes[k] = pool.Get(int(rp.counts[k]), z)
			}
			fills[k] = 0
		}
		replayExtents(writes, fills, msg, rp.exts, z)
		for k := range writes {
			pool.Put(writes[k])
		}
		record.PutHeaders(writes)
		for d := 0; d < P; d++ {
			pool.Put(outMsgs[d])
		}
		record.PutHeaders(outMsgs)
	}

	oneRound() // warm the pool and header free list
	allocs := testing.AllocsPerRun(10, oneRound)
	if allocs != 0 {
		t.Errorf("%v allocs per warm scatter round, want 0", allocs)
	}
}

// TestPlanBuildWarmAllocs pins that rebuilding a plan per round (the
// column-dependent passes) reuses its backing arrays.
func TestPlanBuildWarmAllocs(t *testing.T) {
	const r, s, P, p = 512, 16, 4, 2
	destCol := func(i, j int) int { return (i + j) % s }
	var sp sendPlan
	var rp recvPlan
	buildSendPlan(&sp, destCol, 0, r, P)
	rp.build(destCol, 0, r, s/P, P, p)
	allocs := testing.AllocsPerRun(10, func() {
		buildSendPlan(&sp, destCol, 3, r, P)
		rp.build(destCol, 3, r, s/P, P, p)
	})
	if allocs != 0 {
		t.Errorf("%v allocs per warm plan rebuild, want 0", allocs)
	}
}
