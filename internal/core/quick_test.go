package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"colsort/internal/cluster"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/verify"
)

// TestRandomLegalConfigs draws random machine/problem shapes, keeps the
// ones each algorithm's planner accepts, and verifies the sort end to end.
// This hunts for divisibility and boundary interactions the fixed grids
// miss.
func TestRandomLegalConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(2003))
	algs := []Algorithm{Threaded, Threaded4, Subblock, MColumn, Combined}
	ran := 0
	for trial := 0; trial < 400 && ran < 60; trial++ {
		alg := algs[rng.Intn(len(algs))]
		p := 1 << rng.Intn(4)         // 1..8
		mem := 1 << (5 + rng.Intn(6)) // 32..1024
		sPow := 1 + rng.Intn(5)       // s = 2..32 (columns, pre-check)
		var r int64
		if alg == MColumn || alg == Combined {
			r = int64(mem) * int64(p)
		} else {
			r = int64(mem)
		}
		n := r * int64(1<<sPow)
		pl, err := NewPlan(alg, n, p, p, mem, 16)
		if err != nil {
			continue
		}
		ran++
		m := pdm.Machine{P: p, D: p}
		g := record.Uniform{Seed: uint64(trial)}
		input, err := pl.NewInput(m, g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), pl, m, input, Hooks{})
		input.Close()
		if err != nil {
			t.Fatalf("trial %d %s: %v", trial, pl, err)
		}
		if err := verify.Output(res.Output, record.OfGenerated(g, n, 16)); err != nil {
			t.Fatalf("trial %d %s: %v", trial, pl, err)
		}
		res.Output.Close()
	}
	if ran < 20 {
		t.Fatalf("only %d random configs were legal; widen the generator", ran)
	}
}

// TestSeedsQuick: for one fixed legal shape, every seed must sort.
func TestSeedsQuick(t *testing.T) {
	pl, err := NewPlan(Subblock, 256*16, 4, 4, 256, 16)
	if err != nil {
		t.Fatal(err)
	}
	m := pdm.Machine{P: 4, D: 4}
	f := func(seed uint64) bool {
		g := record.Uniform{Seed: seed}
		input, err := pl.NewInput(m, g)
		if err != nil {
			return false
		}
		defer input.Close()
		res, err := Run(context.Background(), pl, m, input, Hooks{})
		if err != nil {
			return false
		}
		defer res.Output.Close()
		return verify.Output(res.Output, record.OfGenerated(g, pl.N, 16)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarialKeyPatterns exercises key patterns known to break naive
// distribution sorts: all-equal, two-value, alternating extremes, and keys
// equal to the pad pattern.
func TestAdversarialKeyPatterns(t *testing.T) {
	patterns := []record.Generator{
		constGen{0},
		constGen{^uint64(0)}, // every key is MaxKey
		alternating{},
		record.Dup{Seed: 1, K: 2},
	}
	for _, g := range patterns {
		runAlg(t, Threaded, 512*8, 4, 4, 512, 16, g)
		runAlg(t, Subblock, 256*16, 4, 4, 256, 16, g)
		runAlg(t, MColumn, 256*8, 4, 4, 64, 16, g)
	}
}

type constGen struct{ k uint64 }

func (g constGen) Name() string { return "const" }
func (g constGen) Gen(rec []byte, idx int64) {
	record.PutKey(rec, g.k)
	// Distinct payloads keep the total order meaningful.
	for off := record.KeyBytes; off+8 <= len(rec); off += 8 {
		record.PutKey(rec[off:], record.Hash64(uint64(idx)))
	}
}

type alternating struct{}

func (alternating) Name() string { return "alternating" }
func (alternating) Gen(rec []byte, idx int64) {
	if idx%2 == 0 {
		record.PutKey(rec, 0)
	} else {
		record.PutKey(rec, ^uint64(0))
	}
	for off := record.KeyBytes; off+8 <= len(rec); off += 8 {
		record.PutKey(rec[off:], record.Hash64(uint64(idx)*3))
	}
}

// TestIntermediateRunStructure verifies the arrival-order design claim:
// after pass 1, every column of the intermediate store consists of s
// contiguous sorted runs of length r/s.
func TestIntermediateRunStructure(t *testing.T) {
	const p, r, s, z = 2, 512, 8, 16
	pl, err := NewPlan(Threaded, r*s, p, p, r, z)
	if err != nil {
		t.Fatal(err)
	}
	m := pdm.Machine{P: p, D: p}
	input, err := pl.NewInput(m, record.Uniform{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()

	// Run only pass 1 by constructing the pass list by hand: easiest is a
	// full run whose intermediate we cannot see — so instead run the
	// scatter pass directly.
	passes, err := passList(pl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.NewStore(pl.R, pl.S, pl.Z, pl.Layout)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	cnts := make([]sim.Counters, pl.P)
	err = cluster.Run(pl.P, func(pr *cluster.Proc) error {
		return passes[0](pr, input, out, 0, record.NewPool(), &cnts[pr.Rank()], nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < s; j++ {
		col := record.Make(r, z)
		if err := out.ReadRows(nil, out.Owner(0, j), j, 0, col); err != nil {
			t.Fatal(err)
		}
		for run := 0; run < s; run++ {
			sub := col.Sub(run*(r/s), (run+1)*(r/s))
			if !sub.IsSorted() {
				t.Fatalf("column %d run %d not sorted: arrival-order invariant broken", j, run)
			}
		}
	}
}
