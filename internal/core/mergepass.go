package core

import (
	"fmt"

	"colsort/internal/cluster"
	"colsort/internal/pdm"
	"colsort/internal/pipeline"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// runMergePass executes the fused steps 5–8 on the column-owned layout —
// the final pass of the 3-pass threaded program and of subblock columnsort.
//
// Per round, each processor sorts its column (step 5) and then resolves the
// two column boundaries it touches: writing [L; H] for the sorted merge of
// (bottom of column j−1, top of column j), the final top of column j is H
// and the final bottom of column j−1 is L (steps 6–8 compressed into
// adjacent-half merges). Bottom halves travel to the right-hand neighbour;
// final bottoms travel back. This is the paper's 7-stage pipeline: read,
// sort, communicate, sort, communicate, permute, write.
//
// The pass writes TRUE row order — its output is the sorted file.
func runMergePass(pr *cluster.Proc, pl Plan, runLen int, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	p := pr.Rank()
	P := pl.P
	r, s, z := pl.R, pl.S, pl.Z
	h := r / 2
	rounds := pl.Rounds()

	var cRead, cSort, cComm1, cMerge, cComm2, cWrite sim.Counters
	// Tags: boundary b uses tagBase+2b for the bottom half moving right
	// and tagBase+2b+1 for the final bottom moving left. Boundary b sits
	// between columns b and b+1.
	tagB := func(b int) int { return tagBase + 2*b }
	tagF := func(b int) int { return tagBase + 2*b + 1 }

	type round struct {
		t, col   int
		buf      record.Slice // sorted column [top; bottom]
		merged   record.Slice // boundary merge result (aliased by finalTop)
		finalTop record.Slice
		finalBot record.Slice
	}

	read := func(rd round) (round, error) {
		if next := rd.col + P; next < s {
			in.PrefetchColumn(p, next) // stage the next round's column
		}
		rd.buf = pool.Get(r, z)
		if err := in.ReadColumn(&cRead, p, rd.col, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	var sortSc sortalg.Scratch
	sortRuns := sortRunsFor(r, runLen)
	sortStage := func(rd round) (round, error) { // step 5
		sorted := pool.Get(r, z)
		sortColumn(sorted, rd.buf, runLen, sortRuns, &sortSc, &cSort)
		pool.Put(rd.buf)
		rd.buf = sorted
		return rd, nil
	}

	comm1 := func(rd round) (round, error) { // step 6: ship bottoms right
		if rd.col+1 < s {
			bot := pool.Get(h, z)
			bot.Copy(rd.buf.Sub(h, r))
			cComm1.MovedBytes += int64(len(bot.Data))
			if err := pr.Send(&cComm1, (p+1)%P, tagB(rd.col), bot); err != nil {
				return rd, err
			}
		}
		return rd, nil
	}

	mergeStage := func(rd round) (round, error) { // step 7 at boundary col−1|col
		if rd.col == 0 {
			rd.finalTop = rd.buf.Sub(0, h)
			return rd, nil
		}
		prevBot, err := pr.Recv((p+P-1)%P, tagB(rd.col-1))
		if err != nil {
			return rd, err
		}
		merged := pool.Get(r, z)
		sortalg.MergeInto(merged, prevBot, rd.buf.Sub(0, h))
		pool.Put(prevBot)
		cMerge.CompareUnits += sim.MergeWork(r, 2)
		cMerge.MovedBytes += int64(len(merged.Data))
		rd.merged = merged
		rd.finalTop = merged.Sub(h, r)
		// The low half is column col−1's final bottom; send it back.
		back := pool.Get(h, z)
		back.Copy(merged.Sub(0, h))
		if err := pr.Send(&cMerge, (p+P-1)%P, tagF(rd.col-1), back); err != nil {
			return rd, err
		}
		return rd, nil
	}

	comm2 := func(rd round) (round, error) { // step 8: collect final bottom
		if rd.col+1 < s {
			fin, err := pr.Recv((p+1)%P, tagF(rd.col))
			if err != nil {
				return rd, err
			}
			rd.finalBot = fin
		} else {
			rd.finalBot = rd.buf.Sub(h, r) // faces +∞: already final
		}
		return rd, nil
	}

	write := func(rd round) error {
		if err := out.WriteRows(&cWrite, p, rd.col, 0, rd.finalTop); err != nil {
			return err
		}
		if err := out.WriteRows(&cWrite, p, rd.col, h, rd.finalBot); err != nil {
			return err
		}
		// Recycle this round's buffers: finalTop and finalBot are views of
		// buf or merged (or a received buffer, for finalBot off the last
		// column), so only the owning buffers go back.
		if rd.col+1 < s {
			pool.Put(rd.finalBot) // received whole-message buffer
		}
		pool.Put(rd.merged) // zero Slice for column 0: no-op
		pool.Put(rd.buf)
		if onRound != nil {
			onRound()
		}
		return nil
	}

	src := func(emit func(round) error) error {
		for t := 0; t < rounds; t++ {
			if err := emit(round{t: t, col: t*P + p}); err != nil {
				return err
			}
		}
		return nil
	}

	err := pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(p) },
		read, sortStage, comm1, mergeStage, comm2)
	for _, c := range []sim.Counters{cRead, cSort, cComm1, cMerge, cComm2, cWrite} {
		cnt.Add(c)
	}
	if err != nil {
		return fmt.Errorf("core: merge pass: %w", err)
	}
	return nil
}

// runSortPass is the degenerate pass used for single-column problems
// (s = 1): read, sort, write true order.
func runSortPass(pr *cluster.Proc, pl Plan, in, out *pdm.Store, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	p := pr.Rank()
	if pl.S != 1 {
		return fmt.Errorf("core: sort pass requires s=1, got s=%d", pl.S)
	}
	if p != 0 {
		return nil // column 0 belongs to processor 0
	}
	buf := pool.Get(pl.R, pl.Z)
	if err := in.ReadColumn(cnt, 0, 0, buf); err != nil {
		return err
	}
	cnt.Rounds++
	sorted := pool.Get(pl.R, pl.Z)
	var sc sortalg.Scratch
	sc.SortInto(sorted, buf)
	cnt.CompareUnits += sim.SortWork(pl.R)
	cnt.MovedBytes += int64(len(sorted.Data))
	err := out.WriteColumn(cnt, 0, 0, sorted)
	pool.Put(buf)
	pool.Put(sorted)
	if err != nil {
		return err
	}
	if onRound != nil {
		onRound()
	}
	return out.Flush(0)
}
