package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

func batchPlan(t *testing.T) (Plan, pdm.Machine) {
	t.Helper()
	const p, mem, z = 4, 256, 16
	pl, err := NewPlan(Threaded, 1<<11, p, p, mem, z)
	if err != nil {
		t.Fatal(err)
	}
	return pl, pdm.Machine{P: p, D: p, Pools: record.NewPools(p)}
}

// TestBatchRunnerMatchesRun pins that B batches on one persistent fabric
// produce byte-identical outputs and identical counters to B independent
// core.Run calls.
func TestBatchRunnerMatchesRun(t *testing.T) {
	testutil.CheckGoroutines(t)
	pl, m := batchPlan(t)
	br, err := NewBatchRunner(context.Background(), pl, m)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	for b := 0; b < 3; b++ {
		gen := record.Uniform{Seed: uint64(100 + b)}
		in1, err := pl.NewInput(m, gen)
		if err != nil {
			t.Fatal(err)
		}
		in2, err := pl.NewInput(m, gen)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(context.Background(), pl, m, in1, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := br.Run(in2, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		a, _ := want.Output.Snapshot()
		bb, _ := got.Output.Snapshot()
		if !bytes.Equal(a.Data, bb.Data) {
			t.Fatalf("batch %d: BatchRunner output differs from core.Run", b)
		}
		if !reflect.DeepEqual(want.PassCounters, got.PassCounters) {
			t.Fatalf("batch %d: BatchRunner counters differ from core.Run", b)
		}
		want.Output.Close()
		got.Output.Close()
		in1.Close()
		in2.Close()
	}
	if err := br.Close(); err != nil {
		t.Fatal(err)
	}
	// Run after Close must report the shutdown, never panic on the closed
	// jobs channel (run several times: the select race was probabilistic).
	for i := 0; i < 8; i++ {
		in, err := pl.NewInput(m, record.Uniform{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := br.Run(in, Hooks{}); err == nil {
			t.Fatal("Run on a closed BatchRunner returned no error")
		}
		in.Close()
	}
}

// TestBatchRunnerCancel cancels the runner's context mid-stream: the
// in-flight batch fails with the context's error, later batches fail fast,
// and Close leaves no goroutines behind.
func TestBatchRunnerCancel(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, dir)
	pl, m := batchPlan(t)
	m.Backend = pdm.FileBackend{Dir: dir}
	m.Async = &pdm.AsyncConfig{}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	br, err := NewBatchRunner(ctx, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	in, err := pl.NewInput(m, record.Uniform{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	res, err := br.Run(in, Hooks{Progress: func(ev Progress) {
		if ev.Pass == 2 {
			cancel()
		}
	}})
	if err == nil {
		res.Output.Close()
		t.Fatal("cancelled batch returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	in2, err := pl.NewInput(m, record.Uniform{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer in2.Close()
	if _, err := br.Run(in2, Hooks{}); err == nil {
		t.Fatal("Run on a dead fabric returned no error")
	}
	br.Close()
}
