package core

import (
	"fmt"

	"colsort/internal/bitperm"
	"colsort/internal/bounds"
	"colsort/internal/cluster"
	"colsort/internal/incore"
	"colsort/internal/pdm"
	"colsort/internal/pipeline"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// Hybrid group columnsort realizes the paper's second future-work item
// (Section 6): column heights BETWEEN M/P and M. The P processors form
// P/g groups of g; each column holds r = g·(M/P) records owned by one
// group (pdm.GroupBlocked) and is sorted by a distributed in-core
// columnsort WITHIN the group, while the communicate stage scatters records
// across groups. g = 1 degenerates to threaded columnsort and g = P to
// M-columnsort (both served by their dedicated implementations); the
// planner accepts 2 ≤ g ≤ P/2, trading the problem-size bound
// N ≤ (g·M/P)^{3/2}/√2 against sort-stage communication exactly as
// internal/hybrid's analytic model predicts.

// NewHybridPlan validates a hybrid configuration with group size g.
func NewHybridPlan(n int64, p, d, memPerProc, recSize, g int) (Plan, error) {
	pl := Plan{Alg: Hybrid, N: n, P: p, D: d, MemPerProc: memPerProc, Z: recSize, Group: g}
	if err := record.CheckSize(recSize); err != nil {
		return pl, err
	}
	if p < 1 || d < p || d%p != 0 {
		return pl, fmt.Errorf("core: need P ≥ 1 and P | D, got P=%d D=%d", p, d)
	}
	if !bitperm.IsPow2(p) || !bitperm.IsPow2(memPerProc) || memPerProc < 2 {
		return pl, fmt.Errorf("core: P=%d and M/P=%d must be powers of 2 (M/P even)", p, memPerProc)
	}
	if !bitperm.IsPow2(g) || g < 2 || g > p/2 {
		return pl, fmt.Errorf("core: hybrid group size g=%d must be a power of 2 with 2 ≤ g ≤ P/2=%d (use threaded for g=1, m-columnsort for g=P)", g, p/2)
	}
	if n < 1 || n&(n-1) != 0 {
		return pl, fmt.Errorf("core: N=%d must be a positive power of 2", n)
	}
	pl.R = g * memPerProc
	pl.Layout = pdm.GroupBlocked
	if int64(pl.R) > n {
		return pl, fmt.Errorf("core: N=%d smaller than one column r=%d", n, pl.R)
	}
	pl.S = int(n / int64(pl.R))
	ng := p / g
	if pl.S%ng != 0 {
		return pl, fmt.Errorf("core: the %d groups must evenly share s=%d columns", ng, pl.S)
	}
	if pl.R%pl.S != 0 {
		return pl, fmt.Errorf("core: s=%d must divide r=%d", pl.S, pl.R)
	}
	if memPerProc%pl.S != 0 {
		return pl, fmt.Errorf("core: s=%d must divide M/P=%d for balanced group writes", pl.S, memPerProc)
	}
	if !bounds.HeightOK(bounds.Threaded, int64(pl.R), int64(pl.S)) {
		return pl, fmt.Errorf("core: hybrid %w: r=%d < 2s²=%d (%w)",
			ErrHeightRestriction, pl.R, 2*pl.S*pl.S, ErrTooLarge)
	}
	if pl.S > 1 && !bounds.InCoreOK(int64(memPerProc), int64(g)) {
		return pl, fmt.Errorf("core: in-core %w within groups: M/P=%d < 2g²=%d", ErrHeightRestriction, memPerProc, 2*g*g)
	}
	return pl, nil
}

const hybridTagStride = 4 * incore.TagSpan

// hybridSpec is one hybrid distribution pass (steps 1–2 or 3–4). Both maps
// depend only on the sorted rank — never on the source column — so every
// distribution table is computed once per pass.
type hybridSpec struct {
	name    string
	destCol func(rank int64) int   // target column of a sorted rank
	occ     func(rank int64) int64 // rank's index within its column's chunk
}

// runHybridScatterPass: per round, each group reads one of its columns,
// sorts it with the in-group distributed columnsort, and scatters records
// to the blocks of the target columns' owners across all groups.
func runHybridScatterPass(pr *cluster.Proc, pl Plan, spec hybridSpec, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	q := pr.Rank()
	P, g := pl.P, pl.Group
	ng := P / g
	r, s, z := pl.R, pl.S, pl.Z
	rb := r / g
	a, m := q/g, q%g
	lo := m * rb
	c := r / s
	share := c / g
	rounds := s / ng

	grp, err := cluster.ContiguousGroup(pr, a*g, g)
	if err != nil {
		return err
	}

	var cRead, cSort, cComm, cWrite sim.Counters
	written := make([]int, s) // per target column, block-local rows written

	type round struct {
		t, col int
		buf    record.Slice
		// perCol holds, per target column, this round's arrival chunk
		// (ng·share records); nil entries receive nothing.
		perCol []record.Slice
	}

	dest := func(gi int64) (proc int, tj int) {
		tj = spec.destCol(gi)
		k := spec.occ(gi)
		return (tj%ng)*g + int(k/int64(share)), tj
	}

	// Distribution tables, once per pass: the send plan packs my sorted
	// rank block [lo, lo+rb) per destination processor; keepPlans[m']
	// replays source member m's rank range, keeping the records destined
	// here and mapping them to target columns. Sources with the same
	// in-group position share a rank range, hence a plan.
	var sendPl sendPlan
	buildSendPlan(&sendPl, func(i, _ int) int { d, _ := dest(int64(lo) + int64(i)); return d }, 0, rb, P)
	keepPlans := make([]colPlan, g)
	for mm := 0; mm < g; mm++ {
		kp := &keepPlans[mm]
		kp.reset(s)
		srcLo := int64(mm) * int64(rb)
		for i := 0; i < rb; i++ {
			gi := srcLo + int64(i)
			if d, tj := dest(gi); d == q {
				kp.add(tj)
			}
		}
	}
	// Every target column a round touches must receive exactly its
	// ng·share-record chunk; validated once here instead of per round.
	colTotal := make([]int32, s)
	for src := 0; src < P; src++ {
		for tj, c := range keepPlans[src%g].counts {
			colTotal[tj] += c
		}
	}
	for tj, n := range colTotal {
		if n != 0 && int(n) != ng*share {
			return fmt.Errorf("core: %s: column %d would receive %d of %d records per round", spec.name, tj, n, ng*share)
		}
	}

	read := func(rd round) (round, error) {
		if next := rd.col + ng; next < s {
			in.PrefetchRows(q, next, lo, rb) // stage the next round's block
		}
		rd.buf = pool.Get(rb, z)
		if err := in.ReadRows(&cRead, q, rd.col, lo, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	var sortSc sortalg.Scratch
	sorter := incore.Columnsort{Pool: pool, Scratch: &sortSc}
	sortStage := func(rd round) (round, error) {
		sorted, err := sorter.Sort(grp, &cSort, tagBase+rd.t*hybridTagStride, rd.buf)
		if err != nil {
			return rd, err
		}
		rd.buf = sorted
		return rd, nil
	}

	fillCol := make([]int32, s)
	distribute := func(rd round) (round, error) {
		// Planned collective: pack per destination processor in rank order,
		// straight from the sorted block, and exchange with one
		// synchronization.
		tag := tagBase + rd.t*hybridTagStride + incore.TagSpan
		inMsgs, err := pr.AllToAllPlan(&cComm, tag, rd.buf, &sendPl, pool)
		pool.Put(rd.buf)
		rd.buf = record.Slice{}
		if err != nil {
			return rd, err
		}

		// Replay every source's rank range in order; my arrivals for each
		// target column land contiguously in (source group, occurrence)
		// order — one block-local segment per column per round.
		rd.perCol = record.GetHeaders(s)
		for tj := 0; tj < s; tj++ {
			if colTotal[tj] > 0 {
				rd.perCol[tj] = pool.Get(ng*share, z)
			}
			fillCol[tj] = 0
		}
		for src := 0; src < P; src++ {
			msg := inMsgs[src]
			kp := &keepPlans[src%g]
			if msg.Len() != kp.total {
				return rd, fmt.Errorf("core: %s: message from %d has %d records, pattern wants %d",
					spec.name, src, msg.Len(), kp.total)
			}
			replayExtents(rd.perCol, fillCol, msg, kp.exts, z)
			cComm.MovedBytes += int64(msg.Len() * z)
			pool.Put(msg)
		}
		record.PutHeaders(inMsgs)
		return rd, nil
	}

	write := func(rd round) error {
		for tj := 0; tj < s; tj++ {
			chunk := rd.perCol[tj]
			if chunk.Data == nil || chunk.Len() == 0 {
				continue
			}
			if err := out.WriteRows(&cWrite, q, tj, lo+written[tj], chunk); err != nil {
				return err
			}
			written[tj] += chunk.Len()
			pool.Put(chunk)
		}
		record.PutHeaders(rd.perCol)
		rd.perCol = nil
		if onRound != nil {
			onRound()
		}
		return nil
	}

	src := func(emit func(round) error) error {
		for t := 0; t < rounds; t++ {
			if err := emit(round{t: t, col: t*ng + a}); err != nil {
				return err
			}
		}
		return nil
	}

	err = pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(q) },
		read, sortStage, distribute)
	for _, ct := range []sim.Counters{cRead, cSort, cComm, cWrite} {
		cnt.Add(ct)
	}
	if err != nil {
		return fmt.Errorf("core: %s pass: %w", spec.name, err)
	}
	for tj, n := range written {
		if n != 0 && n != rb {
			return fmt.Errorf("core: %s pass: block of column %d received %d of %d records", spec.name, tj, n, rb)
		}
	}
	return nil
}

// runHybridMergePass executes the fused steps 5–8 for the hybrid layout:
// per round each group sorts its column in-core; the overlap
// O = [bottom(j−1); top(j)] is assembled ON column j's group (bottom pieces
// arrive from the left-hand group, top pieces shift within the group), the
// group sorts O, and a rotation returns each final half-column to the
// owners of its rows for true-order writes.
func runHybridMergePass(pr *cluster.Proc, pl Plan, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	q := pr.Rank()
	P, g := pl.P, pl.Group
	ng := P / g
	r, s, z := pl.R, pl.S, pl.Z
	rb := r / g
	a, m := q/g, q%g
	lo := m * rb
	h2 := g / 2
	rounds := s / ng

	grp, err := cluster.ContiguousGroup(pr, a*g, g)
	if err != nil {
		return err
	}

	// Cross-round tags live beyond every round window.
	crossBase := tagBase + (rounds+1)*hybridTagStride
	tagTB := func(j int) int { return crossBase + 4*j }     // bottom pieces → right group
	tagTT := func(j int) int { return crossBase + 4*j + 1 } // top pieces up within the group
	tagTF := func(j int) int { return crossBase + 4*j + 2 } // final bottoms → left group
	tagTG := func(j int) int { return crossBase + 4*j + 3 } // final tops down within the group

	var cRead, cSort, cBound, cWrite sim.Counters

	type round struct {
		t, col int
		buf    record.Slice
		writes []record.Slice
		rows   []int
	}

	read := func(rd round) (round, error) {
		if next := rd.col + ng; next < s {
			in.PrefetchRows(q, next, lo, rb)
		}
		rd.buf = pool.Get(rb, z)
		if err := in.ReadRows(&cRead, q, rd.col, lo, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	var sortSc sortalg.Scratch
	sorter := incore.Columnsort{Pool: pool, Scratch: &sortSc}
	sortStage := func(rd round) (round, error) {
		sorted, err := sorter.Sort(grp, &cSort, tagBase+rd.t*hybridTagStride, rd.buf)
		if err != nil {
			return rd, err
		}
		rd.buf = sorted
		return rd, nil
	}

	var boundSc sortalg.Scratch
	boundSorter := incore.Columnsort{Pool: pool, Scratch: &boundSc}
	boundary := func(rd round) (round, error) {
		j := rd.t*ng + a
		left := (a - 1 + ng) % ng
		right := (a + 1) % ng
		addWrite := func(row int, recs record.Slice) {
			rd.writes = append(rd.writes, recs)
			rd.rows = append(rd.rows, row)
		}

		// Dispatch my sorted piece.
		if m >= h2 { // part of bottom(j)
			if j+1 < s {
				if err := pr.Send(&cBound, right*g+(m-h2), tagTB(j), rd.buf); err != nil {
					return rd, err
				}
			} else {
				addWrite(lo, rd.buf) // last column's bottom is final
			}
		} else { // part of top(j)
			if j == 0 {
				addWrite(lo, rd.buf) // first column's top is final
			} else {
				if err := pr.Send(&cBound, a*g+(m+h2), tagTT(j), rd.buf); err != nil {
					return rd, err
				}
			}
		}
		rd.buf = record.Slice{}

		// Resolve boundary (j−1, j) on this group.
		if j > 0 {
			var oPiece record.Slice
			var err error
			if m < h2 { // low half of O: bottom(j−1) pieces from the left group
				oPiece, err = pr.Recv(left*g+(m+h2), tagTB(j-1))
			} else { // high half of O: top(j) pieces from within the group
				oPiece, err = pr.Recv(a*g+(m-h2), tagTT(j))
			}
			if err != nil {
				return rd, err
			}
			sortedO, err := boundSorter.Sort(grp, &cBound, tagBase+rd.t*hybridTagStride+2*incore.TagSpan, oPiece)
			if err != nil {
				return rd, err
			}
			// Rotation: low half is column j−1's final bottom (owned by
			// the left group's upper members); high half is column j's
			// final top (owned by this group's lower members).
			if m < h2 {
				if err := pr.Send(&cBound, left*g+(m+h2), tagTF(j-1), sortedO); err != nil {
					return rd, err
				}
			} else {
				if err := pr.Send(&cBound, a*g+(m-h2), tagTG(j), sortedO); err != nil {
					return rd, err
				}
			}
			if m < h2 {
				top, err := pr.Recv(a*g+(m+h2), tagTG(j))
				if err != nil {
					return rd, err
				}
				addWrite(lo, top)
			}
		}
		// Collect my column's final bottom from the right group.
		if j+1 < s && m >= h2 {
			fin, err := pr.Recv(right*g+(m-h2), tagTF(j))
			if err != nil {
				return rd, err
			}
			addWrite(lo, fin)
		}
		return rd, nil
	}

	write := func(rd round) error {
		for k, recs := range rd.writes {
			if err := out.WriteRows(&cWrite, q, rd.col, rd.rows[k], recs); err != nil {
				return err
			}
			pool.Put(recs)
		}
		if onRound != nil {
			onRound()
		}
		return nil
	}

	src := func(emit func(round) error) error {
		for t := 0; t < rounds; t++ {
			if err := emit(round{t: t, col: t*ng + a}); err != nil {
				return err
			}
		}
		return nil
	}

	err = pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(q) },
		read, sortStage, boundary)
	for _, ct := range []sim.Counters{cRead, cSort, cBound, cWrite} {
		cnt.Add(ct)
	}
	if err != nil {
		return fmt.Errorf("core: hybrid merge pass: %w", err)
	}
	return nil
}
