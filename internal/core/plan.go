// Package core implements the paper's out-of-core sorting algorithms on the
// simulated cluster: 4-pass columnsort [CCW01], 3-pass threaded columnsort
// [CC02], subblock columnsort (Section 3), M-columnsort (Section 4), the
// 3- and 4-pass baseline I/O programs used in Figure 2, and the Section-6
// future-work combination of subblock and M-columnsort.
//
// # Arrival-order intermediate layout
//
// Every columnsort pass begins by sorting its column, so the order of
// records WITHIN a column of an intermediate store is irrelevant — only the
// set of records per column matters. The permute/write stages exploit this:
// each processor appends the records arriving for an owned column as one
// contiguous chunk per (source column, target column) pair, never issuing
// strided writes. Because records leave the sort stage in sorted order,
// every such chunk is itself a sorted run whose length is known analytically
// (r/s after steps 2 and 4, r/√s after the subblock permutation), and the
// next pass's sort stage merges runs instead of sorting from scratch — the
// optimization footnote 5 of the paper describes. Only the final pass
// writes true row order, which is what makes the output a sorted file.
package core

import (
	"errors"
	"fmt"

	"colsort/internal/bitperm"
	"colsort/internal/bounds"
	"colsort/internal/pdm"
	"colsort/internal/record"
)

// ErrTooLarge marks plan failures where N exceeds the algorithm's
// problem-size restriction — growing N further can never help, unlike
// divisibility failures. Callers detect it with errors.Is.
var ErrTooLarge = errors.New("problem-size restriction exceeded")

// ErrHeightRestriction marks plan failures caused specifically by a
// columnsort height restriction (r ≥ 2s², its relaxed and in-core
// variants) — the geometric condition the source paper relaxes. It rides
// along with ErrTooLarge where growing N cannot help; callers detect it
// with errors.Is.
var ErrHeightRestriction = errors.New("height restriction violated")

// Algorithm selects the out-of-core sorting program.
type Algorithm int

const (
	// Threaded4 is the original 4-pass out-of-core columnsort of [CCW01]:
	// passes [1,2], [3,4], [5,6], [7,8].
	Threaded4 Algorithm = iota
	// Threaded is the 3-pass threaded columnsort of [CC02], the paper's
	// baseline: passes [1,2], [3,4], [5–8].
	Threaded
	// Subblock is subblock columnsort: [1,2], [3,3.1], [3.2,4], [5–8],
	// with the relaxed height restriction r ≥ 4·s^{3/2} (restriction (2)).
	Subblock
	// MColumn is M-columnsort: the 3-pass program with the column height
	// reinterpreted as r = M, each column sorted by a distributed in-core
	// sort (restriction (3)).
	MColumn
	// Combined is the Section-6 future-work algorithm: the subblock pass
	// structure with r = M, giving N ≤ M^{5/3}/4^{2/3}.
	Combined
	// BaselineIO3 and BaselineIO4 only read and write every record the
	// given number of times, measuring the I/O floor of Figure 2.
	BaselineIO3
	BaselineIO4
	// Hybrid is group columnsort (Section-6 future work): column height
	// r = g·(M/P) for a group size 2 ≤ g ≤ P/2, interpolating between
	// threaded columnsort (g = 1) and M-columnsort (g = P). Plans are
	// built with NewHybridPlan.
	Hybrid
)

func (a Algorithm) String() string {
	switch a {
	case Threaded4:
		return "threaded-4pass"
	case Threaded:
		return "threaded"
	case Subblock:
		return "subblock"
	case MColumn:
		return "m-columnsort"
	case Combined:
		return "combined"
	case BaselineIO3:
		return "baseline-io-3pass"
	case BaselineIO4:
		return "baseline-io-4pass"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Passes returns the number of passes over the data the algorithm makes.
func (a Algorithm) Passes() int {
	switch a {
	case Threaded4, Subblock, Combined, BaselineIO4:
		return 4
	default:
		return 3
	}
}

// Plan is a validated configuration for one out-of-core sort.
type Plan struct {
	Alg Algorithm

	// N = R·S records of Z bytes arranged as an R×S matrix.
	N int64
	R int // records per column
	S int // columns
	Z int // record size, bytes

	P int // processors
	D int // disks (P | D)

	// MemPerProc is the per-processor column buffer in records — the
	// paper's "buffer size" knob. Threaded and subblock columnsort use
	// R = MemPerProc; M-columnsort uses R = MemPerProc·P; hybrid group
	// columnsort uses R = MemPerProc·Group.
	MemPerProc int

	// Group is the hybrid group size g (set only for Alg == Hybrid).
	Group int

	// Layout of every store the algorithm touches.
	Layout pdm.Layout
}

// NewPlan validates a configuration, applying each algorithm's height
// restriction and divisibility requirements (Section 2 assumes all
// parameters are powers of 2, and subblock columnsort needs s to be a
// power of 4).
func NewPlan(alg Algorithm, n int64, p, d, memPerProc, recSize int) (Plan, error) {
	pl := Plan{Alg: alg, N: n, P: p, D: d, MemPerProc: memPerProc, Z: recSize}
	if err := record.CheckSize(recSize); err != nil {
		return pl, err
	}
	if p < 1 || d < p || d%p != 0 {
		return pl, fmt.Errorf("core: need P ≥ 1 and P | D, got P=%d D=%d", p, d)
	}
	if !bitperm.IsPow2(p) {
		return pl, fmt.Errorf("core: P=%d must be a power of 2", p)
	}
	if memPerProc < 1 || !bitperm.IsPow2(memPerProc) {
		return pl, fmt.Errorf("core: memory per processor %d must be a positive power of 2", memPerProc)
	}
	if n < 1 || n&(n-1) != 0 {
		return pl, fmt.Errorf("core: N=%d must be a positive power of 2", n)
	}

	switch alg {
	case Threaded4, Threaded, Subblock, BaselineIO3, BaselineIO4:
		pl.R = memPerProc
		pl.Layout = pdm.ColumnOwned
	case MColumn, Combined:
		pl.R = memPerProc * p
		pl.Layout = pdm.RowBlocked
	case Hybrid:
		return pl, fmt.Errorf("core: hybrid plans need NewHybridPlan (a group size is required)")
	default:
		return pl, fmt.Errorf("core: unknown algorithm %v", alg)
	}

	if int64(pl.R) > n {
		// Degenerate single-column problems are legal only if exactly one
		// column results.
		if alg == MColumn || alg == Combined {
			return pl, fmt.Errorf("core: N=%d smaller than one column r=%d", n, pl.R)
		}
		return pl, fmt.Errorf("core: N=%d smaller than one column r=%d; shrink the buffer", n, pl.R)
	}
	s64 := n / int64(pl.R)
	if s64*int64(pl.R) != n || s64 > int64(1)<<30 {
		return pl, fmt.Errorf("core: r=%d must divide N=%d", pl.R, n)
	}
	pl.S = int(s64)

	if pl.R%pl.S != 0 {
		return pl, fmt.Errorf("core: s=%d must divide r=%d", pl.S, pl.R)
	}

	switch alg {
	case Threaded4, Threaded, MColumn:
		if !bounds.HeightOK(bounds.Threaded, int64(pl.R), int64(pl.S)) {
			return pl, fmt.Errorf("core: %v %w: r=%d < 2s²=%d (%w)",
				alg, ErrHeightRestriction, pl.R, 2*pl.S*pl.S, ErrTooLarge)
		}
	case Subblock, Combined:
		if !bitperm.IsPow4(pl.S) {
			return pl, fmt.Errorf("core: subblock columnsort needs s to be a power of 4, got s=%d", pl.S)
		}
		if !bounds.HeightOK(bounds.Subblock, int64(pl.R), int64(pl.S)) {
			q := bitperm.Sqrt(pl.S)
			return pl, fmt.Errorf("core: relaxed %w: r=%d < 4s^(3/2)=%d (%w)",
				ErrHeightRestriction, pl.R, 4*pl.S*q, ErrTooLarge)
		}
	case BaselineIO3, BaselineIO4:
		// No height restriction: baselines just stream the data.
	}

	switch pl.Layout {
	case pdm.ColumnOwned:
		if pl.S%p != 0 {
			return pl, fmt.Errorf("core: P=%d must divide s=%d for the column-owned layout", p, pl.S)
		}
	case pdm.RowBlocked:
		if p < 2 {
			return pl, fmt.Errorf("core: %v needs P ≥ 2 (with P = 1 it degenerates to threaded columnsort)", alg)
		}
		rb := pl.R / p
		if rb%pl.S != 0 {
			return pl, fmt.Errorf("core: s=%d must divide r/P=%d for the row-blocked layout", pl.S, rb)
		}
		if rb%2 != 0 {
			return pl, fmt.Errorf("core: r/P=%d must be even for boundary merges", rb)
		}
		// The distributed in-core sort is itself a columnsort on an
		// (M/P)×P matrix.
		if pl.S > 1 && !bounds.InCoreOK(int64(memPerProc), int64(p)) {
			return pl, fmt.Errorf("core: in-core %w: M/P=%d < 2P²=%d", ErrHeightRestriction, memPerProc, 2*p*p)
		}
	}
	return pl, nil
}

// Rounds returns the number of pipeline rounds per pass: s/P rounds of P
// columns for the column-owned algorithms, s single-column rounds for the
// row-blocked ones, and s/(P/g) group rounds for the hybrid.
func (pl Plan) Rounds() int {
	switch pl.Layout {
	case pdm.ColumnOwned:
		return pl.S / pl.P
	case pdm.GroupBlocked:
		return pl.S / (pl.P / pl.Group)
	}
	return pl.S
}

// NewStore allocates an empty store shaped for the plan.
func (pl Plan) NewStore(m pdm.Machine) (*pdm.Store, error) {
	if pl.Layout == pdm.GroupBlocked {
		return m.NewGroupStore(pl.R, pl.S, pl.Z, pl.Group)
	}
	return m.NewStore(pl.R, pl.S, pl.Z, pl.Layout)
}

// NewInput allocates and fills the input store for the plan on the given
// machine.
func (pl Plan) NewInput(m pdm.Machine, g record.Generator) (*pdm.Store, error) {
	st, err := pl.NewStore(m)
	if err != nil {
		return nil, err
	}
	if err := st.Fill(g); err != nil {
		st.Close()
		return nil, err
	}
	return st, nil
}

func (pl Plan) String() string {
	return fmt.Sprintf("%v: N=%d as %d×%d, Z=%dB, P=%d, D=%d, %v, %d passes × %d rounds",
		pl.Alg, pl.N, pl.R, pl.S, pl.Z, pl.P, pl.D, pl.Layout, pl.Alg.Passes(), pl.Rounds())
}
