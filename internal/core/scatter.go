package core

import (
	"fmt"

	"colsort/internal/cluster"
	"colsort/internal/pdm"
	"colsort/internal/pipeline"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// scatterSpec describes one distribution pass on the column-owned layout:
// sort each column, then permute records to target columns (columnsort
// steps 2, 4, or 3.1).
type scatterSpec struct {
	name string

	// runLen is the length of the sorted runs the input columns consist of
	// (0 means unsorted: sort from scratch). Arrival-order writes make all
	// runs contiguous.
	runLen int

	// destCol maps sorted row i of source column j to its target column.
	destCol func(i, j int) int

	// colInvariant marks destCol as independent of the source column j
	// (true for steps 2 and 4): the permutation tables are then computed
	// once per pass and shared by every round; otherwise they are rebuilt
	// per round into reusable stage scratch.
	colInvariant bool

	// targetProcs returns the processors that source column j sends to,
	// or nil to use a full all-to-all (every processor sends P messages,
	// as in passes 1 and 2 of threaded columnsort). The subblock pass
	// supplies the ⌈P/√s⌉-element target set of Section 3.
	targetProcs func(j int) []int
}

// scatterRound is the unit flowing through a scatter pass's pipeline.
type scatterRound struct {
	t   int // round index
	col int // source column processed by this processor

	buf    record.Slice   // read → sorted column
	inMsgs []record.Slice // per source processor, after communicate

	// writes holds, per owned-column slot (slot k ↔ column p + k·P), the
	// records that arrived this round, in arrival order.
	writes []record.Slice
}

// pipeDepth is the channel capacity between pipeline stages; 2 keeps a few
// rounds in flight (enough to overlap I/O, sort and communication) while
// bounding buffer memory, like the paper's fixed buffer pools.
const pipeDepth = 2

// sortColumn realizes a pass's sort stage: a full sort when the input run
// structure is unknown (runLen ≤ 0), a pure copy when the column is already
// one sorted run (runLen ≥ len), and a k-way merge otherwise, charging the
// appropriate comparison work. runs must be the precomputed descriptors
// matching runLen (sortRunsFor), and sc the calling stage's scratch.
func sortColumn(dst, src record.Slice, runLen int, runs []sortalg.Run, sc *sortalg.Scratch, cnt *sim.Counters) {
	r := src.Len()
	switch {
	case runLen <= 0 || runLen > r:
		sc.SortInto(dst, src)
		cnt.CompareUnits += sim.SortWork(r)
	case runLen == r:
		dst.Copy(src)
	default:
		k := r / runLen
		sc.MergeRunsInto(dst, src, runs)
		cnt.CompareUnits += sim.MergeWork(r, k)
	}
	cnt.MovedBytes += int64(len(dst.Data))
}

// sortRunsFor precomputes the run descriptors sortColumn needs for columns
// of r records made of sorted runs of length runLen (nil when a full sort
// or a pure copy applies), so the merge stage does not rebuild them per
// round.
func sortRunsFor(r, runLen int) []sortalg.Run {
	if runLen <= 0 || runLen >= r {
		return nil
	}
	return sortalg.ContiguousRuns(r, r/runLen)
}

// runScatterPass executes one scatter pass on processor pr, reading columns
// of in and appending arrival-order chunks to out. All column, message and
// write buffers cycle through pool, and the permutation is replayed from
// precomputed tables (see pattern.go). It merges per-stage counters into
// cnt when the pass completes.
func runScatterPass(pr *cluster.Proc, pl Plan, spec scatterSpec, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	p := pr.Rank()
	P := pl.P
	r, s, z := pl.R, pl.S, pl.Z
	rounds := pl.Rounds()
	nSlots := s / P

	var cRead, cSort, cComm, cPerm, cWrite sim.Counters
	nextFree := make([]int, nSlots) // owned-column slot → next arrival row

	// Pattern tables, computed once per pass when destCol ignores the
	// source column; read-only thereafter, so the concurrent stages may
	// share them.
	var sharedSend sendPlan
	var sharedRecv recvPlan
	if spec.colInvariant {
		buildSendPlan(&sharedSend, spec.destCol, 0, r, P)
		sharedRecv.build(spec.destCol, 0, r, nSlots, P, p)
	}

	read := func(rd scatterRound) (scatterRound, error) {
		// The round → column map IS the pass's future access sequence: hint
		// the next round's column so an async disk stages it while this
		// round's read, sort and communication proceed.
		if next := rd.col + P; next < s {
			in.PrefetchColumn(p, next)
		}
		rd.buf = pool.Get(r, z)
		if err := in.ReadColumn(&cRead, p, rd.col, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	var sortSc sortalg.Scratch
	sortRuns := sortRunsFor(r, spec.runLen)
	sortStage := func(rd scatterRound) (scatterRound, error) {
		sorted := pool.Get(r, z)
		sortColumn(sorted, rd.buf, spec.runLen, sortRuns, &sortSc, &cSort)
		pool.Put(rd.buf)
		rd.buf = sorted
		return rd, nil
	}

	var commPlan sendPlan // stage scratch for column-dependent passes
	fill := make([]int32, P)
	communicate := func(rd scatterRound) (scatterRound, error) {
		// Pack one outgoing buffer per destination processor, scanning the
		// sorted column in order so every (source, destination) chunk is a
		// sorted run. The plan turns the scan into one copy per extent.
		sp := &sharedSend
		if !spec.colInvariant {
			buildSendPlan(&commPlan, spec.destCol, rd.col, r, P)
			sp = &commPlan
		}
		tag := tagBase + rd.t
		if spec.targetProcs == nil {
			// Planned collective: the fabric packs per-destination pooled
			// buffers straight from the sorted column (charging the pack)
			// and runs the round through the exchange board with a single
			// synchronization.
			in, err := pr.AllToAllPlan(&cComm, tag, rd.buf, sp, pool)
			pool.Put(rd.buf)
			rd.buf = record.Slice{}
			if err != nil {
				return rd, err
			}
			rd.inMsgs = in
			return rd, nil
		}
		outMsgs := record.GetHeaders(P)
		for d := 0; d < P; d++ {
			outMsgs[d] = pool.Get(int(sp.Counts[d]), z)
			fill[d] = 0
		}
		replayExtents(outMsgs, fill, rd.buf, sp.Exts, z)
		cComm.MovedBytes += int64(r * z)
		pool.Put(rd.buf)
		rd.buf = record.Slice{}

		// Targeted sends: only the computed target set gets a message
		// (property 1 of Section 3); receive from exactly the sources
		// whose target set includes this processor.
		for _, d := range spec.targetProcs(rd.col) {
			if outMsgs[d].Len() == 0 {
				return rd, fmt.Errorf("core: %s: empty message for computed target %d", spec.name, d)
			}
			if err := pr.Send(&cComm, d, tag, outMsgs[d]); err != nil {
				return rd, err
			}
			outMsgs[d] = record.Slice{}
		}
		for d := 0; d < P; d++ {
			pool.Put(outMsgs[d]) // unsent (pattern says empty) buffers recycle
		}
		record.PutHeaders(outMsgs)
		rd.inMsgs = record.GetHeaders(P)
		for q := 0; q < P; q++ {
			srcCol := rd.t*P + q
			for _, d := range spec.targetProcs(srcCol) {
				if d == p {
					msg, err := pr.Recv(q, tag)
					if err != nil {
						return rd, err
					}
					rd.inMsgs[q] = msg
				}
			}
		}
		return rd, nil
	}

	var recvPlans []recvPlan // stage scratch, per source, column-dependent passes
	slotCounts := make([]int32, nSlots)
	fills := make([]int32, nSlots)
	permute := func(rd scatterRound) (scatterRound, error) {
		// Receiver-side replay of the oblivious pattern: scan each source
		// column of this round in sorted order; records destined to one of
		// this processor's columns arrive in exactly that order. The plans
		// reduce the replay to one copy per (source, slot) extent.
		if recvPlans == nil && !spec.colInvariant {
			recvPlans = make([]recvPlan, P)
		}
		for k := range slotCounts {
			slotCounts[k] = 0
		}
		for q := 0; q < P; q++ {
			msg := rd.inMsgs[q]
			if msg.Data == nil {
				continue
			}
			rp := &sharedRecv
			if !spec.colInvariant {
				rp = &recvPlans[q]
				rp.build(spec.destCol, rd.t*P+q, r, nSlots, P, p)
			}
			if msg.Len() != rp.total {
				return rd, fmt.Errorf("core: %s: message from %d has %d records, pattern wants %d",
					spec.name, q, msg.Len(), rp.total)
			}
			for k, c := range rp.counts {
				slotCounts[k] += c
			}
		}
		rd.writes = record.GetHeaders(nSlots)
		for k := range rd.writes {
			if slotCounts[k] > 0 {
				rd.writes[k] = pool.Get(int(slotCounts[k]), z)
			}
			fills[k] = 0
		}
		for q := 0; q < P; q++ {
			msg := rd.inMsgs[q]
			if msg.Data == nil {
				continue
			}
			rp := &sharedRecv
			if !spec.colInvariant {
				rp = &recvPlans[q]
			}
			replayExtents(rd.writes, fills, msg, rp.exts, z)
			cPerm.MovedBytes += int64(msg.Len() * z)
			pool.Put(msg)
		}
		record.PutHeaders(rd.inMsgs)
		rd.inMsgs = nil
		return rd, nil
	}

	write := func(rd scatterRound) error {
		// Deterministic order over owned columns keeps the on-disk arrival
		// order reproducible.
		for k := 0; k < nSlots; k++ {
			chunk := rd.writes[k]
			if chunk.Data == nil || chunk.Len() == 0 {
				continue
			}
			if err := out.WriteRows(&cWrite, p, p+k*P, nextFree[k], chunk); err != nil {
				return err
			}
			nextFree[k] += chunk.Len()
			pool.Put(chunk)
		}
		record.PutHeaders(rd.writes)
		rd.writes = nil
		if onRound != nil {
			onRound()
		}
		return nil
	}

	src := func(emit func(scatterRound) error) error {
		for t := 0; t < rounds; t++ {
			if err := emit(scatterRound{t: t, col: t*P + p}); err != nil {
				return err
			}
		}
		return nil
	}

	err := pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(p) },
		read, sortStage, communicate, permute)
	for _, c := range []sim.Counters{cRead, cSort, cComm, cPerm, cWrite} {
		cnt.Add(c)
	}
	if err != nil {
		return fmt.Errorf("core: %s pass: %w", spec.name, err)
	}
	// Every owned column must have been filled exactly.
	for k := 0; k < nSlots; k++ {
		if nextFree[k] != r {
			return fmt.Errorf("core: %s pass: column %d received %d of %d records", spec.name, p+k*P, nextFree[k], r)
		}
	}
	return nil
}
