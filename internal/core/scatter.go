package core

import (
	"fmt"

	"colsort/internal/cluster"
	"colsort/internal/pdm"
	"colsort/internal/pipeline"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// scatterSpec describes one distribution pass on the column-owned layout:
// sort each column, then permute records to target columns (columnsort
// steps 2, 4, or 3.1).
type scatterSpec struct {
	name string

	// runLen is the length of the sorted runs the input columns consist of
	// (0 means unsorted: sort from scratch). Arrival-order writes make all
	// runs contiguous.
	runLen int

	// destCol maps sorted row i of source column j to its target column.
	destCol func(i, j int) int

	// targetProcs returns the processors that source column j sends to,
	// or nil to use a full all-to-all (every processor sends P messages,
	// as in passes 1 and 2 of threaded columnsort). The subblock pass
	// supplies the ⌈P/√s⌉-element target set of Section 3.
	targetProcs func(j int) []int
}

// scatterRound is the unit flowing through a scatter pass's pipeline.
type scatterRound struct {
	t   int // round index
	col int // source column processed by this processor

	buf    record.Slice   // read → sorted column
	inMsgs []record.Slice // per source processor, after communicate

	// writes holds, per owned target column, the records that arrived
	// this round, in arrival order.
	writes map[int]record.Slice
}

// pipeDepth is the channel capacity between pipeline stages; 2 keeps a few
// rounds in flight (enough to overlap I/O, sort and communication) while
// bounding buffer memory, like the paper's fixed buffer pools.
const pipeDepth = 2

// sortColumn realizes a pass's sort stage: a full sort when the input run
// structure is unknown (runLen ≤ 0), a pure copy when the column is already
// one sorted run (runLen ≥ len), and a k-way merge otherwise, charging the
// appropriate comparison work.
func sortColumn(dst, src record.Slice, runLen int, cnt *sim.Counters) {
	r := src.Len()
	switch {
	case runLen <= 0 || runLen > r:
		sortalg.SortInto(dst, src)
		cnt.CompareUnits += sim.SortWork(r)
	case runLen == r:
		dst.Copy(src)
	default:
		k := r / runLen
		sortalg.MergeRunsInto(dst, src, sortalg.ContiguousRuns(r, k))
		cnt.CompareUnits += sim.MergeWork(r, k)
	}
	cnt.MovedBytes += int64(len(dst.Data))
}

// runScatterPass executes one scatter pass on processor pr, reading columns
// of in and appending arrival-order chunks to out. It merges per-stage
// counters into cnt when the pass completes.
func runScatterPass(pr *cluster.Proc, pl Plan, spec scatterSpec, in, out *pdm.Store, tagBase int, cnt *sim.Counters) error {
	p := pr.Rank()
	P := pl.P
	r, s, z := pl.R, pl.S, pl.Z
	rounds := pl.Rounds()

	var cRead, cSort, cComm, cPerm, cWrite sim.Counters
	nextFree := make(map[int]int) // owned target column → next arrival row

	read := func(rd scatterRound) (scatterRound, error) {
		rd.buf = record.Make(r, z)
		if err := in.ReadColumn(&cRead, p, rd.col, rd.buf); err != nil {
			return rd, err
		}
		cRead.Rounds++
		return rd, nil
	}

	sortStage := func(rd scatterRound) (scatterRound, error) {
		sorted := record.Make(r, z)
		sortColumn(sorted, rd.buf, spec.runLen, &cSort)
		rd.buf = sorted
		return rd, nil
	}

	communicate := func(rd scatterRound) (scatterRound, error) {
		// Pack one outgoing buffer per destination processor, scanning the
		// sorted column in order so every (source, destination) chunk is a
		// sorted run.
		counts := make([]int, P)
		for i := 0; i < r; i++ {
			counts[spec.destCol(i, rd.col)%P]++
		}
		out := make([]record.Slice, P)
		fill := make([]int, P)
		for d := 0; d < P; d++ {
			out[d] = record.Make(counts[d], z)
		}
		for i := 0; i < r; i++ {
			d := spec.destCol(i, rd.col) % P
			out[d].CopyRecord(fill[d], rd.buf, i)
			fill[d]++
		}
		cComm.MovedBytes += int64(r * z)
		rd.buf = record.Slice{}

		tag := tagBase + rd.t
		if spec.targetProcs == nil {
			in, err := pr.AllToAll(&cComm, tag, out)
			if err != nil {
				return rd, err
			}
			rd.inMsgs = in
			return rd, nil
		}
		// Targeted sends: only the computed target set gets a message
		// (property 1 of Section 3); receive from exactly the sources
		// whose target set includes this processor.
		for _, d := range spec.targetProcs(rd.col) {
			if out[d].Len() == 0 {
				return rd, fmt.Errorf("core: %s: empty message for computed target %d", spec.name, d)
			}
			if err := pr.Send(&cComm, d, tag, out[d]); err != nil {
				return rd, err
			}
		}
		rd.inMsgs = make([]record.Slice, P)
		for q := 0; q < P; q++ {
			srcCol := rd.t*P + q
			for _, d := range spec.targetProcs(srcCol) {
				if d == p {
					msg, err := pr.Recv(q, tag)
					if err != nil {
						return rd, err
					}
					rd.inMsgs[q] = msg
				}
			}
		}
		return rd, nil
	}

	permute := func(rd scatterRound) (scatterRound, error) {
		// Receiver-side replay of the oblivious pattern: scan each source
		// column of this round in sorted order; records destined to one of
		// this processor's columns arrive in exactly that order.
		rd.writes = make(map[int]record.Slice)
		counts := make(map[int]int)
		for q := 0; q < P; q++ {
			if rd.inMsgs[q].Data == nil {
				continue
			}
			srcCol := rd.t*P + q
			for i := 0; i < r; i++ {
				tj := spec.destCol(i, srcCol)
				if tj%P == p {
					counts[tj]++
				}
			}
		}
		fills := make(map[int]int)
		for tj, n := range counts {
			rd.writes[tj] = record.Make(n, z)
			fills[tj] = 0
		}
		for q := 0; q < P; q++ {
			msg := rd.inMsgs[q]
			if msg.Data == nil {
				continue
			}
			srcCol := rd.t*P + q
			next := 0
			for i := 0; i < r; i++ {
				tj := spec.destCol(i, srcCol)
				if tj%P != p {
					continue
				}
				if next >= msg.Len() {
					return rd, fmt.Errorf("core: %s: message from %d shorter than pattern", spec.name, q)
				}
				rd.writes[tj].CopyRecord(fills[tj], msg, next)
				fills[tj]++
				next++
			}
			if next != msg.Len() {
				return rd, fmt.Errorf("core: %s: message from %d has %d records, pattern used %d", spec.name, q, msg.Len(), next)
			}
			cPerm.MovedBytes += int64(msg.Len() * z)
		}
		rd.inMsgs = nil
		return rd, nil
	}

	write := func(rd scatterRound) error {
		// Deterministic order over owned columns keeps the on-disk arrival
		// order reproducible.
		for tj := p; tj < s; tj += P {
			chunk, ok := rd.writes[tj]
			if !ok {
				continue
			}
			if err := out.WriteRows(&cWrite, p, tj, nextFree[tj], chunk); err != nil {
				return err
			}
			nextFree[tj] += chunk.Len()
		}
		return nil
	}

	src := func(emit func(scatterRound) error) error {
		for t := 0; t < rounds; t++ {
			if err := emit(scatterRound{t: t, col: t*P + p}); err != nil {
				return err
			}
		}
		return nil
	}

	err := pipeline.Run(pipeDepth, src, write, read, sortStage, communicate, permute)
	for _, c := range []sim.Counters{cRead, cSort, cComm, cPerm, cWrite} {
		cnt.Add(c)
	}
	if err != nil {
		return fmt.Errorf("core: %s pass: %w", spec.name, err)
	}
	// Every owned column must have been filled exactly.
	for tj := p; tj < s; tj += P {
		if nextFree[tj] != r {
			return fmt.Errorf("core: %s pass: column %d received %d of %d records", spec.name, tj, nextFree[tj], r)
		}
	}
	return nil
}
