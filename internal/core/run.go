package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"colsort/internal/bitperm"
	"colsort/internal/cluster"
	"colsort/internal/incore"
	"colsort/internal/matrix"
	"colsort/internal/pdm"
	"colsort/internal/pipeline"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// Result reports a completed out-of-core sort: the output store (owned by
// the caller) and the exact operation counts of every pass.
type Result struct {
	Plan   Plan
	Output *pdm.Store
	// PassCounters[k][p] holds the operations of processor p in pass k.
	PassCounters [][]sim.Counters
}

// Estimate applies a cost model to the measured counters (experiment E1).
func (res *Result) Estimate(cm sim.CostModel) sim.RunEstimate {
	return cm.EstimateRun(res.PassCounters, res.Plan.D/res.Plan.P)
}

// TotalCounters sums all passes and processors.
func (res *Result) TotalCounters() sim.Counters {
	var tot sim.Counters
	for _, pass := range res.PassCounters {
		for _, c := range pass {
			tot.Add(c)
		}
	}
	return tot
}

// Progress reports the advance of a running sort. Pass is 1-based; Round
// counts pipeline rounds completed within the pass, so Round == 0 marks the
// pass starting and Round == Rounds the pass complete. Events are emitted by
// rank 0 only (one processor's view; the passes are bulk-synchronous, so it
// is representative).
//
// Hierarchical (above-bound) sorts add two event families on top: engine
// events carry the run-formation batch they belong to in Batch/Batches
// (both 0 for single-run sorts), and the final k-way merge emits events
// with Pass == 0 whose MergedRecords/TotalRecords report the position of
// the merged output stream.
// The JSON tags are the wire representation of the colsort-server's SSE
// progress push; TestWireEncodingGolden (root package) pins them.
type Progress struct {
	Pass   int `json:"pass"`   // 1-based index of the pass the event belongs to; 0 for merge events
	Passes int `json:"passes"` // total passes of the algorithm
	Round  int `json:"round"`  // rounds completed by rank 0 within this pass
	Rounds int `json:"rounds"` // rounds per processor per pass

	Batch   int `json:"batch,omitempty"`   // 1-based run-formation batch/run (hierarchical sorts only)
	Batches int `json:"batches,omitempty"` // total run-formation batches (hierarchical sorts only)

	// FormedRecords reports replacement-selection run formation: records
	// emitted into spilled runs so far (formation events have Pass == 0 and
	// Batch set to the current run's 1-based index).
	FormedRecords int64 `json:"formed_records,omitempty"`

	MergedRecords int64 `json:"merged_records,omitempty"` // records emitted by the merge so far (merge events)
	TotalRecords  int64 `json:"total_records,omitempty"`  // total records the merge (or formation) will emit
}

// Hooks customizes a run. The zero value disables every hook.
type Hooks struct {
	// Progress, when non-nil, receives pass/round completion events. It is
	// called synchronously from the run's internal goroutines (rank 0's
	// pass loop and its pipeline sink) and must be fast and non-blocking;
	// calls are sequential, never concurrent.
	Progress func(Progress)
}

// passFunc executes one pass on one processor. tagBase is the start of the
// tag window reserved for this pass on the shared cluster fabric; pool is
// the processor's persistent buffer pool, shared by all passes of the run
// so that the steady state of the whole sort recycles rather than
// allocates. onRound, when non-nil, is invoked by the pass's pipeline sink
// after each round's writes are issued (rank 0 only — progress reporting).
type passFunc func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error

// passTagWindow returns the width of the tag space one pass may use, so
// that consecutive passes sharing one cluster fabric can never collide.
// The widest users are the m-column and hybrid passes: (s+2) windows of
// 4·incore.TagSpan plus 8·s cross-round boundary tags; the column-owned
// passes use at most 2s+2 tags.
func passTagWindow(pl Plan) int {
	return (pl.S+3)*4*incore.TagSpan + 8*pl.S + 16
}

// Run executes the planned algorithm on the machine, consuming columns of
// input and returning a Result whose Output store holds the sorted data.
// The input store is left intact (the paper likewise preserves inputs to
// verify outputs); intermediate stores are closed as they are consumed.
//
// Cancelling ctx aborts the shared cluster fabric: every processor blocked
// in communication, a barrier, or a pipeline stage unblocks and unwinds,
// the per-pass stores (with their async disk workers and any backing
// scratch files) are closed and removed, and Run returns an error
// satisfying errors.Is(err, ctx.Err()) once the last goroutine has exited —
// cancellation never leaks goroutines, disk workers or scratch files.
func Run(ctx context.Context, pl Plan, m pdm.Machine, input *pdm.Store, hooks Hooks) (*Result, error) {
	if err := checkRunInput(pl, m, input); err != nil {
		return nil, err
	}
	passes, err := passList(pl)
	if err != nil {
		return nil, err
	}
	// One buffer pool per processor, persisting across passes (and across
	// runs, when the machine carries them): buffers allocated in pass 1
	// serve every later pass's — and every later sort's — pipeline rounds.
	pools := m.Pools
	if pools == nil {
		pools = record.NewPools(pl.P)
	}
	job := newPassJob(pl, input, hooks, len(passes), 0)
	err = cluster.RunCtxFabric(ctx, pl.P, fabricOf(m), func(pr *cluster.Proc) error {
		return runPasses(ctx, pr, pl, m, passes, pools, passTagWindow(pl), job)
	})
	if err != nil {
		return nil, job.fail(pl, err)
	}
	return &Result{Plan: pl, PassCounters: job.cnts, Output: job.stores[len(passes)]}, nil
}

// fabricOf maps the machine's interconnect choice to a cluster fabric.
func fabricOf(m pdm.Machine) cluster.Fabric {
	if m.CopyFabric {
		return cluster.Copying
	}
	return cluster.ZeroCopy
}

// checkRunInput validates the input store and machine against the plan.
func checkRunInput(pl Plan, m pdm.Machine, input *pdm.Store) error {
	if input.R != pl.R || input.S != pl.S || input.RecSize != pl.Z ||
		input.P != pl.P || input.Layout != pl.Layout ||
		(pl.Layout == pdm.GroupBlocked && input.G != pl.Group) {
		return fmt.Errorf("core: input store %d×%d z=%d P=%d %v does not match plan %s",
			input.R, input.S, input.RecSize, input.P, input.Layout, pl)
	}
	if m.P != pl.P || m.D != pl.D {
		return fmt.Errorf("core: machine P=%d D=%d does not match plan P=%d D=%d", m.P, m.D, pl.P, pl.D)
	}
	return nil
}

// passJob is the shared state of ONE engine execution on a cluster fabric:
// the input, the store chain, the per-pass counters and the hooks. Run
// executes a single job on a fresh fabric; a BatchRunner executes a stream
// of jobs on a persistent one (the hierarchical sort's run-formation loop).
type passJob struct {
	input      *pdm.Store
	hooks      Hooks
	tagBase    int // start of this job's tag space on the shared fabric
	stores     []*pdm.Store
	cnts       [][]sim.Counters
	storeErr   error
	failedPass atomic.Int64
}

func newPassJob(pl Plan, input *pdm.Store, hooks Hooks, nPasses, tagBase int) *passJob {
	j := &passJob{input: input, hooks: hooks, tagBase: tagBase}
	j.stores = make([]*pdm.Store, nPasses+1)
	j.stores[0] = input
	j.cnts = make([][]sim.Counters, nPasses)
	for k := range j.cnts {
		j.cnts[k] = make([]sim.Counters, pl.P)
	}
	j.failedPass.Store(-1)
	return j
}

// fail releases the job's stores (idempotently; the input is never touched)
// and attributes the error to the pass that raised it. Call only after every
// fabric goroutine has exited.
func (j *passJob) fail(pl Plan, err error) error {
	for _, st := range j.stores[1:] {
		if st != nil {
			st.Close() // Close is idempotent; nil = pass never reached
		}
	}
	k := j.failedPass.Load()
	if k < 0 {
		k = 0
	}
	return fmt.Errorf("core: pass %d of %v: %w", k+1, pl.Alg, err)
}

// runPasses executes the planned pass sequence for one rank. All passes
// share the ONE cluster fabric the caller runs on (goroutine processors
// live for the whole run, as the paper's MPI processes do), separated by
// barriers and disjoint tag windows. Rank 0 creates each pass's output
// store just before the pass (the pre-pass barrier publishes it) and
// releases each consumed intermediate as soon as the post-pass barrier
// confirms the pass is globally complete, so at most three stores are ever
// open — file-backed machines would otherwise hold every pass's disk files
// at once.
func runPasses(ctx context.Context, pr *cluster.Proc, pl Plan, m pdm.Machine, passes []passFunc, pools []*record.Pool, window int, job *passJob) error {
	rounds := pl.Rounds()
	for k, pass := range passes {
		// A cancellation between passes is caught here even when the
		// pass itself performs no communication (the baselines).
		if err := ctx.Err(); err != nil {
			job.failedPass.CompareAndSwap(-1, int64(k))
			return err
		}
		if pr.Rank() == 0 {
			job.stores[k+1], job.storeErr = pl.NewStore(m)
		}
		if err := pr.Barrier(); err != nil { // publishes stores[k+1]
			return err
		}
		if job.storeErr != nil {
			job.failedPass.CompareAndSwap(-1, int64(k))
			return job.storeErr
		}
		var onRound func()
		if job.hooks.Progress != nil && pr.Rank() == 0 {
			job.hooks.Progress(Progress{Pass: k + 1, Passes: len(passes), Round: 0, Rounds: rounds})
			done := 0
			hooks := job.hooks
			kk := k
			onRound = func() {
				done++
				hooks.Progress(Progress{Pass: kk + 1, Passes: len(passes), Round: done, Rounds: rounds})
			}
		}
		if err := pass(pr, job.stores[k], job.stores[k+1], job.tagBase+k*window, pools[pr.Rank()], &job.cnts[k][pr.Rank()], onRound); err != nil {
			job.failedPass.CompareAndSwap(-1, int64(k))
			return err
		}
		if err := pr.Barrier(); err != nil {
			return err
		}
		if pr.Rank() == 0 && k > 0 {
			job.stores[k].Close() // consumed intermediate; never the input
		}
	}
	return nil
}

// passList builds the pass sequence realizing the planned algorithm.
func passList(pl Plan) ([]passFunc, error) {
	r, s := pl.R, pl.S

	// Degenerate single-column problems: each "pass" reduces to read,
	// sort, write; run the same number of passes so baselines and I/O
	// accounting stay comparable.
	if s == 1 && pl.Layout == pdm.ColumnOwned && pl.Alg != BaselineIO3 && pl.Alg != BaselineIO4 {
		n := pl.Alg.Passes()
		passes := make([]passFunc, n)
		for k := range passes {
			passes[k] = func(pr *cluster.Proc, in, out *pdm.Store, _ int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runSortPass(pr, pl, in, out, pool, cnt, onRound)
			}
		}
		return passes, nil
	}

	step2 := func(i, j int) int { return matrix.Step2ColOf(r, s, i) }
	step4 := func(i, j int) int { return matrix.Step4ColOf(r, s, i) }
	identity := func(i, j int) int { return j }

	scatter := func(spec scatterSpec) passFunc {
		return func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
			return runScatterPass(pr, pl, spec, in, out, tagBase, pool, cnt, onRound)
		}
	}
	merge := func(runLen int) passFunc {
		return func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
			return runMergePass(pr, pl, runLen, in, out, tagBase, pool, cnt, onRound)
		}
	}
	baseline := func(pr *cluster.Proc, in, out *pdm.Store, _ int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
		return runBaselinePass(pr, pl, in, out, pool, cnt, onRound)
	}

	switch pl.Alg {
	case Threaded:
		return []passFunc{
			scatter(scatterSpec{name: "steps 1-2", runLen: 0, destCol: step2, colInvariant: true}),
			scatter(scatterSpec{name: "steps 3-4", runLen: r / s, destCol: step4, colInvariant: true}),
			merge(r / s),
		}, nil

	case Threaded4:
		// Faithful in I/O volume to [CCW01]'s 4 passes; steps regroup as
		// [1,2], [3,4], [5], [6–8] (see DESIGN.md).
		return []passFunc{
			scatter(scatterSpec{name: "steps 1-2", runLen: 0, destCol: step2, colInvariant: true}),
			scatter(scatterSpec{name: "steps 3-4", runLen: r / s, destCol: step4, colInvariant: true}),
			scatter(scatterSpec{name: "step 5", runLen: r / s, destCol: identity,
				targetProcs: func(j int) []int { return []int{j % pl.P} }}),
			merge(r),
		}, nil

	case Subblock:
		sb := bitperm.MustSubblock(r, s)
		q := sb.SqrtS()
		subblockDest := func(i, j int) int { return sb.TargetColumn(i, j) }
		var targets func(j int) []int
		targets = func(j int) []int {
			procs := sb.TargetProcs(j, pl.P)
			list := make([]int, 0, len(procs))
			for d := 0; d < pl.P; d++ {
				if procs[d] {
					list = append(list, d)
				}
			}
			return list
		}
		return []passFunc{
			scatter(scatterSpec{name: "steps 1-2", runLen: 0, destCol: step2, colInvariant: true}),
			scatter(scatterSpec{name: "subblock pass (3, 3.1)", runLen: r / s,
				destCol: subblockDest, targetProcs: targets}),
			scatter(scatterSpec{name: "steps 3.2-4", runLen: r / q, destCol: step4, colInvariant: true}),
			merge(r / s),
		}, nil

	case MColumn:
		mScatter := func(spec mcolSpec) passFunc {
			return func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runMColScatterPass(pr, pl, spec, in, out, tagBase, pool, cnt, onRound)
			}
		}
		return []passFunc{
			mScatter(mcolSpec{name: "m-steps 1-2", chunk: r / s, colInvariant: true,
				destCol: func(rank int64, j int) int { return int(rank % int64(s)) }}),
			mScatter(mcolSpec{name: "m-steps 3-4", chunk: r / s, redistribute: true, colInvariant: true,
				destCol: func(rank int64, j int) int { return int(rank / (int64(r) / int64(s))) }}),
			func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runMColMergePass(pr, pl, in, out, tagBase, pool, cnt, onRound)
			},
		}, nil

	case Combined:
		sb := bitperm.MustSubblock(r, s)
		q := sb.SqrtS()
		mScatter := func(spec mcolSpec) passFunc {
			return func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runMColScatterPass(pr, pl, spec, in, out, tagBase, pool, cnt, onRound)
			}
		}
		return []passFunc{
			mScatter(mcolSpec{name: "c-steps 1-2", chunk: r / s, colInvariant: true,
				destCol: func(rank int64, j int) int { return int(rank % int64(s)) }}),
			mScatter(mcolSpec{name: "c-subblock (3, 3.1)", chunk: r / q,
				destCol: func(rank int64, j int) int {
					return j%q + int(rank%int64(q))*q
				}}),
			mScatter(mcolSpec{name: "c-steps 3.2-4", chunk: r / s, redistribute: true, colInvariant: true,
				destCol: func(rank int64, j int) int { return int(rank / (int64(r) / int64(s))) }}),
			func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runMColMergePass(pr, pl, in, out, tagBase, pool, cnt, onRound)
			},
		}, nil

	case Hybrid:
		c := int64(r / s)
		hScatter := func(spec hybridSpec) passFunc {
			return func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runHybridScatterPass(pr, pl, spec, in, out, tagBase, pool, cnt, onRound)
			}
		}
		return []passFunc{
			hScatter(hybridSpec{name: "h-steps 1-2",
				destCol: func(gi int64) int { return int(gi % int64(s)) },
				occ:     func(gi int64) int64 { return gi / int64(s) }}),
			hScatter(hybridSpec{name: "h-steps 3-4",
				destCol: func(gi int64) int { return int(gi / c) },
				occ:     func(gi int64) int64 { return gi % c }}),
			func(pr *cluster.Proc, in, out *pdm.Store, tagBase int, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
				return runHybridMergePass(pr, pl, in, out, tagBase, pool, cnt, onRound)
			},
		}, nil

	case BaselineIO3:
		return []passFunc{baseline, baseline, baseline}, nil
	case BaselineIO4:
		return []passFunc{baseline, baseline, baseline, baseline}, nil
	}
	return nil, fmt.Errorf("core: unknown algorithm %v", pl.Alg)
}

// runBaselinePass reads every owned column and writes it back out — the
// pure-I/O program whose 3- and 4-pass times form the floor lines of
// Figure 2. It works on both layouts.
func runBaselinePass(pr *cluster.Proc, pl Plan, in, out *pdm.Store, pool *record.Pool, cnt *sim.Counters, onRound func()) error {
	p := pr.Rank()
	var cRead, cWrite sim.Counters

	type round struct {
		col int // column touched this round
		buf record.Slice
		row int
	}

	read := func(rd round) (round, error) {
		next := rd.col + 1
		if pl.Layout == pdm.ColumnOwned {
			next = rd.col + pl.P
		}
		if next < pl.S {
			nlo, nhi := in.OwnedRows(p, next)
			in.PrefetchRows(p, next, nlo, nhi-nlo)
		}
		lo, hi := in.OwnedRows(p, rd.col)
		rd.buf = pool.Get(hi-lo, pl.Z)
		if err := in.ReadRows(&cRead, p, rd.col, lo, rd.buf); err != nil {
			return rd, err
		}
		rd.row = lo
		cRead.Rounds++
		return rd, nil
	}
	write := func(rd round) error {
		if err := out.WriteRows(&cWrite, p, rd.col, rd.row, rd.buf); err != nil {
			return err
		}
		pool.Put(rd.buf)
		if onRound != nil {
			onRound()
		}
		return nil
	}
	src := func(emit func(round) error) error {
		if pl.Layout == pdm.ColumnOwned {
			for t := 0; t < pl.S/pl.P; t++ {
				if err := emit(round{col: t*pl.P + p}); err != nil {
					return err
				}
			}
			return nil
		}
		for j := 0; j < pl.S; j++ {
			if err := emit(round{col: j}); err != nil {
				return err
			}
		}
		return nil
	}

	err := pipeline.RunDrain(pipeDepth, src, write,
		func() error { return out.Flush(p) }, read)
	cnt.Add(cRead)
	cnt.Add(cWrite)
	if err != nil {
		return fmt.Errorf("core: baseline pass: %w", err)
	}
	return nil
}
