// Package testutil holds the shared test harness of the async, cancel and
// merge tests: a goroutine / scratch-file leak checker that replaces the
// ad-hoc copies the integration tests used to carry individually.
package testutil

import (
	"io/fs"
	"path/filepath"
	"runtime"
	"testing"
	"time"
)

// leakGrace is how long a cleanup waits for exiting goroutines to finish
// unwinding before declaring a leak: teardown paths (cluster abort, async
// disk Close) complete their last few goroutine exits just after the API
// call returns.
const leakGrace = 5 * time.Second

// CheckGoroutines snapshots the live goroutine count and registers a
// cleanup that fails the test if, after a grace period, more goroutines
// remain than existed at the call. Register it BEFORE creating the
// resources under test (sorters, async disks, merges).
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		n := runtime.NumGoroutine()
		deadline := time.Now().Add(leakGrace)
		for n > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d live at cleanup, %d at start\n%s", n, before, buf)
		}
	})
}

// CheckScratchDir registers a cleanup that fails the test if any regular
// file remains under dir — every scratch file (FileDisk backings, spilled
// runs) must have been removed by the paths under test.
func CheckScratchDir(t testing.TB, dir string) {
	t.Helper()
	t.Cleanup(func() {
		var stray []string
		_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() {
				stray = append(stray, path)
			}
			return nil
		})
		if len(stray) != 0 {
			t.Errorf("scratch files leaked under %s: %v", dir, stray)
		}
	})
}

// CheckLeaks combines CheckGoroutines and, when dir is non-empty,
// CheckScratchDir. Call it at the top of any test that runs async disks,
// cancellation paths, or merges.
func CheckLeaks(t testing.TB, dir string) {
	t.Helper()
	CheckGoroutines(t)
	if dir != "" {
		CheckScratchDir(t, dir)
	}
}
