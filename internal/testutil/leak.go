// Package testutil holds the shared test harness of the async, cancel and
// merge tests: a goroutine / scratch-file leak checker that replaces the
// ad-hoc copies the integration tests used to carry individually.
package testutil

import (
	"io/fs"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakGrace is how long a cleanup waits for exiting goroutines to finish
// unwinding before declaring a leak: teardown paths (cluster abort, async
// disk Close) complete their last few goroutine exits just after the API
// call returns.
const leakGrace = 5 * time.Second

// CheckGoroutines snapshots the live goroutine count and registers a
// cleanup that fails the test if, after a grace period, more goroutines
// remain than existed at the call. Register it BEFORE creating the
// resources under test (sorters, async disks, merges).
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		n := runtime.NumGoroutine()
		deadline := time.Now().Add(leakGrace)
		for n > before && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Errorf("goroutine leak: %d live at cleanup, %d at start\n%s", n, before, buf)
		}
	})
}

// StrayFiles lists the regular files under dir whose base name starts with
// prefix (an empty prefix matches every file). It is the primitive behind
// both whole-directory and per-job-namespace leak checks.
func StrayFiles(dir, prefix string) []string {
	var stray []string
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && (prefix == "" || strings.HasPrefix(d.Name(), prefix)) {
			stray = append(stray, path)
		}
		return nil
	})
	return stray
}

// CheckScratchDir registers a cleanup that fails the test if any regular
// file remains under dir — every scratch file (FileDisk backings, spilled
// runs) must have been removed by the paths under test.
func CheckScratchDir(t testing.TB, dir string) {
	t.Helper()
	t.Cleanup(func() {
		if stray := StrayFiles(dir, ""); len(stray) != 0 {
			t.Errorf("scratch files leaked under %s: %v", dir, stray)
		}
	})
}

// CheckNoStray fails the test IMMEDIATELY if any scratch file whose name
// carries the given prefix remains under dir. It is the cross-job leak
// check of a concurrent engine: call it the moment one job finishes —
// while other jobs are still running and the directory is anything but
// empty — to assert that the finished job's namespaced scratch
// (pdm.JobScratchPrefix) is gone without waiting for the whole engine to
// drain.
func CheckNoStray(t testing.TB, dir, prefix string) {
	t.Helper()
	if stray := StrayFiles(dir, prefix); len(stray) != 0 {
		t.Errorf("scratch files of namespace %q leaked under %s: %v", prefix, dir, stray)
	}
}

// CheckLeaks combines CheckGoroutines and, when dir is non-empty,
// CheckScratchDir. Call it at the top of any test that runs async disks,
// cancellation paths, or merges.
func CheckLeaks(t testing.TB, dir string) {
	t.Helper()
	CheckGoroutines(t)
	if dir != "" {
		CheckScratchDir(t, dir)
	}
}
