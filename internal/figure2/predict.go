// Package figure2 regenerates the paper's evaluation artifacts: Figure 2
// (execution seconds per GB/processor for every algorithm and buffer size),
// the eligibility matrix of Section 5, the buffer-size sweep, and the
// pass-count ablation.
//
// Strategy: the out-of-core algorithms in internal/core count every
// operation they perform. Those counts are deterministic functions of the
// plan (N, r, s, P, D, Z) because the algorithms are oblivious. This file
// computes the counts in closed form; the package test suite validates the
// closed forms EXACTLY against measured runs at laptop scale (disk bytes,
// message counts, network bytes, comparison work), so evaluating them at
// paper scale and applying the calibrated cost model of internal/sim is
// faithful to what a full-scale run of this code base would do.
package figure2

import (
	"fmt"

	"colsort/internal/bitperm"
	"colsort/internal/core"
	"colsort/internal/sim"
)

// PredictPassCounters returns, for each pass of the plan, the per-processor
// average counters (all processors are statistically identical under the
// oblivious pattern; totals are exact, see the validation tests).
func PredictPassCounters(pl core.Plan) ([][]sim.Counters, error) {
	totals, err := predictTotals(pl)
	if err != nil {
		return nil, err
	}
	out := make([][]sim.Counters, len(totals))
	for k, tot := range totals {
		per := scaleDown(tot, pl.P)
		// Rounds is already per-processor in the totals builder.
		per.Rounds = tot.Rounds
		procs := make([]sim.Counters, pl.P)
		for p := range procs {
			procs[p] = per
		}
		out[k] = procs
	}
	return out, nil
}

func scaleDown(c sim.Counters, p int) sim.Counters {
	d := int64(p)
	return sim.Counters{
		DiskReadBytes:  c.DiskReadBytes / d,
		DiskWriteBytes: c.DiskWriteBytes / d,
		DiskReadOps:    c.DiskReadOps / d,
		DiskWriteOps:   c.DiskWriteOps / d,
		NetBytes:       c.NetBytes / d,
		NetMsgs:        c.NetMsgs / d,
		LocalBytes:     c.LocalBytes / d,
		LocalMsgs:      c.LocalMsgs / d,
		CompareUnits:   c.CompareUnits / d,
		MovedBytes:     c.MovedBytes / d,
	}
}

// predictTotals returns whole-cluster totals per pass, with the Rounds
// field holding per-processor rounds.
func predictTotals(pl core.Plan) ([]sim.Counters, error) {
	switch pl.Alg {
	case core.Threaded:
		return []sim.Counters{
			scatterTotals(pl, sortFull, allToAllComm),
			scatterTotals(pl, mergeRS, allToAllComm),
			mergePassTotals(pl, mergeRS),
		}, nil
	case core.Threaded4:
		return []sim.Counters{
			scatterTotals(pl, sortFull, allToAllComm),
			scatterTotals(pl, mergeRS, allToAllComm),
			scatterTotals(pl, mergeRS, selfComm),
			mergePassTotals(pl, alreadySorted),
		}, nil
	case core.Subblock:
		q := bitperm.Sqrt(pl.S)
		return []sim.Counters{
			scatterTotals(pl, sortFull, allToAllComm),
			scatterTotals(pl, mergeRS, subblockComm),
			scatterTotals(pl, mergeK(pl.R/q), allToAllComm),
			mergePassTotals(pl, mergeRS),
		}, nil
	case core.MColumn:
		return []sim.Counters{
			mcolScatterTotals(pl, false),
			mcolScatterTotals(pl, true),
			mcolMergeTotals(pl),
		}, nil
	case core.Combined:
		return []sim.Counters{
			mcolScatterTotals(pl, false),
			mcolScatterTotals(pl, false), // subblock pass: no redistribution
			mcolScatterTotals(pl, true),
			mcolMergeTotals(pl),
		}, nil
	case core.BaselineIO3, core.BaselineIO4:
		pass := ioOnlyTotals(pl)
		out := make([]sim.Counters, pl.Alg.Passes())
		for k := range out {
			out[k] = pass
		}
		return out, nil
	}
	return nil, fmt.Errorf("figure2: unknown algorithm %v", pl.Alg)
}

// Sort-stage cost kinds for column-owned passes.
type sortKind int

const (
	sortFull sortKind = iota
	mergeRS           // merge s runs of r/s
	alreadySorted
)

func mergeK(runLen int) func(pl core.Plan) int64 {
	return func(pl core.Plan) int64 {
		return int64(pl.S) * sim.MergeWork(pl.R, pl.R/runLen)
	}
}

func sortCost(pl core.Plan, kind interface{}) int64 {
	switch k := kind.(type) {
	case sortKind:
		switch k {
		case sortFull:
			return int64(pl.S) * sim.SortWork(pl.R)
		case mergeRS:
			return int64(pl.S) * sim.MergeWork(pl.R, pl.S)
		case alreadySorted:
			return 0
		}
	case func(pl core.Plan) int64:
		return k(pl)
	}
	panic("figure2: bad sort kind")
}

// Communicate-stage kinds for column-owned scatter passes.
type commKind int

const (
	allToAllComm commKind = iota
	subblockComm
	selfComm
)

func ioOnlyTotals(pl core.Plan) sim.Counters {
	nz := pl.N * int64(pl.Z)
	return sim.Counters{
		DiskReadBytes:  nz,
		DiskWriteBytes: nz,
		DiskReadOps:    int64(pl.D),
		DiskWriteOps:   int64(pl.D),
		Rounds:         int64(pl.Rounds()),
	}
}

// scatterTotals mirrors runScatterPass's charges exactly (see the
// validation tests): per column, the sort gather, the message packing and
// the permute placement each move r·Z bytes.
func scatterTotals(pl core.Plan, kind interface{}, comm commKind) sim.Counters {
	s64 := int64(pl.S)
	rz := int64(pl.R) * int64(pl.Z)
	c := ioOnlyTotals(pl)
	c.DiskWriteOps = int64(pl.S) * int64(pl.S) / int64(pl.P) // chunked column appends
	c.CompareUnits = sortCost(pl, kind)
	c.MovedBytes = 3 * s64 * rz
	switch comm {
	case allToAllComm:
		c.LocalMsgs = s64
		c.LocalBytes = s64 * rz / int64(pl.P)
		c.NetMsgs = s64 * int64(pl.P-1)
		c.NetBytes = s64 * rz * int64(pl.P-1) / int64(pl.P)
	case selfComm:
		c.LocalMsgs = s64
		c.LocalBytes = s64 * rz
	case subblockComm:
		t := int64(bitperm.MessagesPerRound(pl.P, pl.S))
		c.LocalMsgs = s64 // the self-destined message of property 2
		c.LocalBytes = s64 * rz / t
		c.NetMsgs = s64 * (t - 1)
		c.NetBytes = s64 * rz * (t - 1) / t
	}
	return c
}

// mergePassTotals mirrors runMergePass: s−1 interior boundaries each ship
// half a column forward and half back and merge two half-columns.
func mergePassTotals(pl core.Plan, kind interface{}) sim.Counters {
	s64 := int64(pl.S)
	rz := int64(pl.R) * int64(pl.Z)
	c := ioOnlyTotals(pl)
	c.DiskWriteOps = 2 * s64
	c.CompareUnits = sortCost(pl, kind) + (s64-1)*sim.MergeWork(pl.R, 2)
	c.MovedBytes = s64*rz + (s64-1)*rz/2 + (s64-1)*rz
	if pl.P > 1 {
		c.NetMsgs = 2 * (s64 - 1)
		c.NetBytes = (s64 - 1) * rz
	} else {
		c.LocalMsgs = 2 * (s64 - 1)
		c.LocalBytes = (s64 - 1) * rz
	}
	return c
}

// incoreSortTotals mirrors one distributed in-core columnsort of the whole
// cluster on blocks of n records (incore.Columnsort.Sort).
func incoreSortTotals(n, p, z int) sim.Counters {
	var c sim.Counters
	nz := int64(n) * int64(z)
	if p == 1 {
		c.CompareUnits = sim.SortWork(n)
		c.MovedBytes = nz
		return c
	}
	p64 := int64(p)
	c.CompareUnits = 3*p64*sim.SortWork(n) + (p64-1)*sim.MergeWork(n, 2)
	c.MovedBytes = 7*p64*nz + 2*(p64-1)*nz
	// Two all-to-alls (steps 2 and 4) plus the neighbour boundary merges.
	c.LocalMsgs = 2 * p64
	c.LocalBytes = 2 * nz
	c.NetMsgs = 2*p64*(p64-1) + 2*(p64-1)
	c.NetBytes = 2*(p64-1)*nz + (p64-1)*nz
	return c
}

// rangeModCount counts {x ∈ [lo,hi): x mod m ∈ [a,b)} for 0 ≤ a < b ≤ m.
func rangeModCount(lo, hi, m, a, b int64) int64 {
	if hi <= lo {
		return 0
	}
	full := (hi - lo) / m
	count := full * (b - a)
	inWindow := func(x int64) int64 { // |[0,x) ∩ [a,b)| within one cycle
		if x <= a {
			return 0
		}
		if x >= b {
			return b - a
		}
		return x - a
	}
	loM := lo % m
	hiM := loM + (hi-lo)%m
	if hiM <= m {
		count += inWindow(hiM) - inWindow(loM)
	} else {
		count += (inWindow(m) - inWindow(loM)) + inWindow(hiM-m)
	}
	return count
}

// redistributionTraffic computes the exact per-round message matrix of the
// step-4 redistribution: source processor q (holding global ranks
// [q·rb, (q+1)·rb)) sends to destination d the records whose occurrence
// index within their target column's chunk c = r/s lies in d's share.
func redistributionTraffic(pl core.Plan) (netMsgs, netBytes, localMsgs, localBytes int64) {
	p := int64(pl.P)
	r := int64(pl.R)
	rb := r / p
	chunk := r / int64(pl.S)
	share := chunk / p
	// The implementation uses a full AllToAll: P messages per processor
	// per round regardless of emptiness; only the self-destined share
	// (records gi ∈ q's range with (gi mod chunk) ∈ q's share window)
	// stays off the network.
	bytesPerRound := r * int64(pl.Z)
	var selfBytes int64
	for q := int64(0); q < p; q++ {
		selfBytes += rangeModCount(q*rb, (q+1)*rb, chunk, q*share, (q+1)*share) * int64(pl.Z)
	}
	localMsgs = p
	localBytes = selfBytes
	netMsgs = p * (p - 1)
	netBytes = bytesPerRound - selfBytes
	return netMsgs, netBytes, localMsgs, localBytes
}

// mcolScatterTotals mirrors runMColScatterPass: s rounds, each with one
// distributed in-core sort, optional redistribution, grouping, and writes.
func mcolScatterTotals(pl core.Plan, redistribute bool) sim.Counters {
	s64 := int64(pl.S)
	rb := pl.R / pl.P
	rbz := int64(rb) * int64(pl.Z)
	c := ioOnlyTotals(pl)
	c.DiskWriteOps = s64 * s64 // each processor appends to s columns per round
	ic := incoreSortTotals(rb, pl.P, pl.Z)
	addScaled(&c, ic, s64)
	if redistribute {
		nm, nb, lm, lb := redistributionTraffic(pl)
		c.NetMsgs += s64 * nm
		c.NetBytes += s64 * nb
		c.LocalMsgs += s64 * lm
		c.LocalBytes += s64 * lb
		// Pack + reassemble: 2·rb·Z per processor per round.
		c.MovedBytes += s64 * 2 * rbz * int64(pl.P)
	} else {
		// Grouping into per-column chunks: rb·Z per processor per round.
		c.MovedBytes += s64 * rbz * int64(pl.P)
	}
	return c
}

// mcolMergeTotals mirrors runMColMergePass: per round one in-core sort of
// the column; for rounds j ≥ 1 additionally a half-swap, an in-core sort of
// the overlap, and a half-rotation.
func mcolMergeTotals(pl core.Plan) sim.Counters {
	s64 := int64(pl.S)
	rb := pl.R / pl.P
	rbz := int64(rb) * int64(pl.Z)
	c := ioOnlyTotals(pl)
	c.DiskWriteOps = 2 * s64
	ic := incoreSortTotals(rb, pl.P, pl.Z)
	addScaled(&c, ic, s64)   // step-5 sort every round
	addScaled(&c, ic, s64-1) // overlap sort for rounds 1..s−1
	if pl.P > 1 && s64 > 1 {
		// Swap and rotation: every processor sends one rb-record message
		// in each, both always off-processor.
		c.NetMsgs += 2 * (s64 - 1) * int64(pl.P)
		c.NetBytes += 2 * (s64 - 1) * int64(pl.P) * rbz
	}
	return c
}

func addScaled(dst *sim.Counters, src sim.Counters, times int64) {
	dst.NetBytes += src.NetBytes * times
	dst.NetMsgs += src.NetMsgs * times
	dst.LocalBytes += src.LocalBytes * times
	dst.LocalMsgs += src.LocalMsgs * times
	dst.CompareUnits += src.CompareUnits * times
	dst.MovedBytes += src.MovedBytes * times
}
