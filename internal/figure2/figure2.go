package figure2

import (
	"fmt"
	"sort"
	"strings"

	"colsort/internal/core"
	"colsort/internal/sim"
)

// GiB is 2^30 bytes.
const GiB = int64(1) << 30

// Point is one prospective data point of Figure 2.
type Point struct {
	Alg         core.Algorithm
	BufferBytes int   // per-processor column buffer (2^24 or 2^25 in the paper)
	TotalBytes  int64 // total data sorted
	P, D        int
	Z           int // record size

	Eligible bool
	Reason   string // why the point cannot run, when ineligible

	Plan core.Plan
	Est  sim.RunEstimate
	// SecsPerGBProc is the paper's y-axis: seconds per (GiB/processor).
	SecsPerGBProc float64
}

// GBPerProc returns the x-normalization of Figure 2.
func (pt Point) GBPerProc() float64 {
	return float64(pt.TotalBytes) / float64(GiB) / float64(pt.P)
}

// Label names the plotted series this point belongs to.
func (pt Point) Label() string {
	return fmt.Sprintf("%v, buffer=2^%d", pt.Alg, log2i(pt.BufferBytes))
}

func log2i(x int) int {
	n := 0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

// PaperProcs mirrors Section 5's configurations: 1–2 GB per processor with
// 4, 8 or 16 processors depending on total volume.
func PaperProcs(totalBytes int64) int {
	switch {
	case totalBytes <= 4*GiB:
		return 4
	case totalBytes <= 8*GiB:
		return 8
	default:
		return 16
	}
}

// Grid builds the full Figure-2 grid: the three algorithms at buffer sizes
// 2^24 and 2^25 bytes plus the two baselines, across 4–32 GiB of 64-byte
// records. Ineligible points carry the planner's reason, reproducing the
// eligibility pattern of Section 5 (experiment E8): threaded columnsort
// only at 4 GiB, subblock only at power-of-4 column counts, M-columnsort
// everywhere.
func Grid() []Point {
	var pts []Point
	algs := []core.Algorithm{core.Threaded, core.Subblock, core.MColumn,
		core.BaselineIO3, core.BaselineIO4}
	for _, alg := range algs {
		for _, buf := range []int{1 << 24, 1 << 25} {
			if alg == core.BaselineIO3 || alg == core.BaselineIO4 {
				if buf == 1<<24 {
					continue // baselines are plotted once
				}
			}
			for _, gb := range []int64{4, 8, 16, 32} {
				pts = append(pts, MakePoint(alg, buf, gb*GiB, 64))
			}
		}
	}
	return pts
}

// MakePoint plans one configuration, recording eligibility.
func MakePoint(alg core.Algorithm, bufferBytes int, totalBytes int64, z int) Point {
	p := PaperProcs(totalBytes)
	pt := Point{Alg: alg, BufferBytes: bufferBytes, TotalBytes: totalBytes, P: p, D: p, Z: z}
	n := totalBytes / int64(z)
	mem := bufferBytes / z
	pl, err := core.NewPlan(alg, n, p, p, mem, z)
	if err != nil {
		pt.Reason = err.Error()
		return pt
	}
	pt.Eligible = true
	pt.Plan = pl
	return pt
}

// Evaluate fills in the time estimate of an eligible point using the
// validated count predictor and the given cost model.
func Evaluate(pt *Point, cm sim.CostModel) error {
	if !pt.Eligible {
		return fmt.Errorf("figure2: point %s is not eligible: %s", pt.Label(), pt.Reason)
	}
	counters, err := PredictPassCounters(pt.Plan)
	if err != nil {
		return err
	}
	pt.Est = cm.EstimateRun(counters, pt.D/pt.P)
	pt.SecsPerGBProc = pt.Est.Total / pt.GBPerProc()
	return nil
}

// Render formats the grid as the textual analogue of Figure 2: one series
// per (algorithm, buffer), y = secs per (GiB/processor), x = total GiB.
func Render(pts []Point) string {
	bySeries := make(map[string][]Point)
	var labels []string
	for _, pt := range pts {
		if _, ok := bySeries[pt.Label()]; !ok {
			labels = append(labels, pt.Label())
		}
		bySeries[pt.Label()] = append(bySeries[pt.Label()], pt)
	}
	sort.Strings(labels)
	var b strings.Builder
	fmt.Fprintf(&b, "%-38s %s\n", "series", "secs per (GiB/processor) at total GiB")
	fmt.Fprintf(&b, "%-38s %10s %10s %10s %10s\n", "", "4", "8", "16", "32")
	for _, label := range labels {
		fmt.Fprintf(&b, "%-38s", label)
		series := bySeries[label]
		sort.Slice(series, func(i, j int) bool { return series[i].TotalBytes < series[j].TotalBytes })
		for _, pt := range series {
			if pt.Eligible {
				fmt.Fprintf(&b, " %10.1f", pt.SecsPerGBProc)
			} else {
				fmt.Fprintf(&b, " %10s", "—")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
