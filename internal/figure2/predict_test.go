package figure2

import (
	"context"
	"math"
	"testing"

	"colsort/internal/core"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// measure runs the real algorithm and returns per-pass whole-cluster
// totals.
func measure(t *testing.T, pl core.Plan) []sim.Counters {
	t.Helper()
	m := pdm.Machine{P: pl.P, D: pl.D}
	input, err := pl.NewInput(m, record.Uniform{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := core.Run(context.Background(), pl, m, input, core.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Output.Close()
	totals := make([]sim.Counters, len(res.PassCounters))
	for k, pass := range res.PassCounters {
		for _, c := range pass {
			totals[k].Add(c)
		}
	}
	return totals
}

// predictTotalsFor exposes the whole-cluster closed forms (the per-proc
// view divides by P and would lose low-order message counts to rounding).
func predictTotalsFor(t *testing.T, pl core.Plan) []sim.Counters {
	t.Helper()
	totals, err := predictTotals(pl)
	if err != nil {
		t.Fatal(err)
	}
	return totals
}

// validationPlans is the grid of small legal configurations on which the
// closed forms must match measured counters.
func validationPlans(t *testing.T) []core.Plan {
	t.Helper()
	mk := func(alg core.Algorithm, n int64, p, d, mem, z int) core.Plan {
		pl, err := core.NewPlan(alg, n, p, d, mem, z)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		return pl
	}
	return []core.Plan{
		mk(core.Threaded, 512*8, 4, 4, 512, 16),
		mk(core.Threaded, 512*16, 2, 4, 512, 64),
		mk(core.Threaded4, 512*8, 4, 4, 512, 16),
		mk(core.Subblock, 256*16, 4, 4, 256, 16),
		mk(core.Subblock, 256*16, 8, 8, 256, 16), // P > √s: network messages
		mk(core.Subblock, 256*16, 2, 2, 256, 16), // √s ≥ P: no network
		mk(core.MColumn, 256*8, 4, 4, 64, 16),
		mk(core.MColumn, 256*4, 2, 2, 128, 16),
		mk(core.Combined, 256*16, 4, 4, 64, 16),
		mk(core.BaselineIO3, 512*8, 4, 4, 512, 16),
	}
}

// TestPredictorMatchesMeasured pins the closed-form counters to reality:
// disk bytes, message counts and network bytes must match EXACTLY;
// comparison work and memory movement within a small tolerance (they
// differ only in boundary-column terms).
func TestPredictorMatchesMeasured(t *testing.T) {
	for _, pl := range validationPlans(t) {
		got := measure(t, pl)
		want := predictTotalsFor(t, pl)
		if len(got) != len(want) {
			t.Fatalf("%v: %d passes measured, %d predicted", pl.Alg, len(got), len(want))
		}
		for k := range got {
			g, w := got[k], want[k]
			if g.DiskReadBytes != w.DiskReadBytes || g.DiskWriteBytes != w.DiskWriteBytes {
				t.Errorf("%s pass %d: disk bytes measured %d/%d predicted %d/%d",
					pl, k+1, g.DiskReadBytes, g.DiskWriteBytes, w.DiskReadBytes, w.DiskWriteBytes)
			}
			if g.NetMsgs != w.NetMsgs || g.LocalMsgs != w.LocalMsgs {
				t.Errorf("%s pass %d: msgs measured net=%d local=%d predicted net=%d local=%d",
					pl, k+1, g.NetMsgs, g.LocalMsgs, w.NetMsgs, w.LocalMsgs)
			}
			if g.NetBytes != w.NetBytes || g.LocalBytes != w.LocalBytes {
				t.Errorf("%s pass %d: bytes measured net=%d local=%d predicted net=%d local=%d",
					pl, k+1, g.NetBytes, g.LocalBytes, w.NetBytes, w.LocalBytes)
			}
			if !within(g.CompareUnits, w.CompareUnits, 0.05) {
				t.Errorf("%s pass %d: compare units measured %d predicted %d",
					pl, k+1, g.CompareUnits, w.CompareUnits)
			}
			if !within(g.MovedBytes, w.MovedBytes, 0.15) {
				t.Errorf("%s pass %d: moved bytes measured %d predicted %d",
					pl, k+1, g.MovedBytes, w.MovedBytes)
			}
		}
	}
}

func within(a, b int64, tol float64) bool {
	if a == b {
		return true
	}
	fa, fb := float64(a), float64(b)
	return math.Abs(fa-fb) <= tol*math.Max(math.Abs(fa), math.Abs(fb))
}

// TestEligibilityMatrix is experiment E8: the planner reproduces exactly
// which points of Figure 2 each algorithm could run.
func TestEligibilityMatrix(t *testing.T) {
	type key struct {
		alg core.Algorithm
		buf int
		gb  int64
	}
	eligible := make(map[key]bool)
	for _, pt := range Grid() {
		eligible[key{pt.Alg, pt.BufferBytes, pt.TotalBytes / GiB}] = pt.Eligible
	}
	// Threaded columnsort "could not handle more than 4 GB of data"
	// (restriction (1)). At buffer 2^24 (r = 2^18 records of 64 B) the
	// restriction admits exactly the 4 GiB point, as the paper plots. At
	// buffer 2^25 restriction (1) as stated also admits 8 and 16 GiB (the
	// paper nevertheless plotted threaded only at 4 GiB; EXPERIMENTS.md
	// discusses the delta); 32 GiB is excluded under either buffer.
	for _, buf := range []int{1 << 24, 1 << 25} {
		if !eligible[key{core.Threaded, buf, 4}] {
			t.Errorf("threaded should run at 4 GiB with buffer %d", buf)
		}
		if eligible[key{core.Threaded, buf, 32}] {
			t.Errorf("threaded must NOT run at 32 GiB with buffer %d", buf)
		}
	}
	for _, gb := range []int64{8, 16} {
		if eligible[key{core.Threaded, 1 << 24, gb}] {
			t.Errorf("threaded must NOT run at %d GiB with buffer 2^24", gb)
		}
	}
	// Subblock: "the two lines cover disjoint problem sizes... each line
	// covers problem sizes that differ by a factor of 4": buffer 2^25 →
	// {8, 32} GiB; buffer 2^24 → {4, 16} GiB.
	for gb, want := range map[int64]bool{4: false, 8: true, 16: false, 32: true} {
		if eligible[key{core.Subblock, 1 << 25, gb}] != want {
			t.Errorf("subblock buffer 2^25 at %d GiB: eligible=%v, want %v",
				gb, eligible[key{core.Subblock, 1 << 25, gb}], want)
		}
	}
	for gb, want := range map[int64]bool{4: true, 8: false, 16: true, 32: false} {
		if eligible[key{core.Subblock, 1 << 24, gb}] != want {
			t.Errorf("subblock buffer 2^24 at %d GiB: eligible=%v, want %v",
				gb, eligible[key{core.Subblock, 1 << 24, gb}], want)
		}
	}
	// M-columnsort ran at all four problem sizes.
	for _, buf := range []int{1 << 24, 1 << 25} {
		for _, gb := range []int64{4, 8, 16, 32} {
			if !eligible[key{core.MColumn, buf, gb}] {
				t.Errorf("m-columnsort should run at %d GiB with buffer %d", gb, buf)
			}
		}
	}
}

// TestFigure2Shape is experiment E1: evaluating the validated counts at
// paper scale under the Beowulf cost model must reproduce the figure's
// qualitative structure.
func TestFigure2Shape(t *testing.T) {
	cm := sim.Beowulf2003()
	at := func(alg core.Algorithm, buf int, gb int64) Point {
		pt := MakePoint(alg, buf, gb*GiB, 64)
		if !pt.Eligible {
			t.Fatalf("%v buf=%d gb=%d ineligible: %s", alg, buf, gb, pt.Reason)
		}
		if err := Evaluate(&pt, cm); err != nil {
			t.Fatal(err)
		}
		return pt
	}

	base3 := at(core.BaselineIO3, 1<<25, 8)
	base4 := at(core.BaselineIO4, 1<<25, 8)

	// The baselines are pure I/O: 4-pass ≈ 4/3 of 3-pass.
	if r := base4.SecsPerGBProc / base3.SecsPerGBProc; math.Abs(r-4.0/3.0) > 0.03 {
		t.Errorf("baseline ratio %.3f, want ≈4/3", r)
	}

	// Threaded columnsort at 2^25 is "just barely above the baseline
	// 3-pass I/O time" (within ~15%).
	th := at(core.Threaded, 1<<25, 4)
	b3at4 := at(core.BaselineIO3, 1<<25, 4)
	if th.SecsPerGBProc < b3at4.SecsPerGBProc {
		t.Error("threaded below its I/O floor")
	}
	if th.SecsPerGBProc > b3at4.SecsPerGBProc*1.20 {
		t.Errorf("threaded %.1f too far above 3-pass baseline %.1f",
			th.SecsPerGBProc, b3at4.SecsPerGBProc)
	}

	// Subblock at 2^25 is slightly above the 4-pass baseline.
	sb := at(core.Subblock, 1<<25, 8)
	if sb.SecsPerGBProc < base4.SecsPerGBProc {
		t.Error("subblock below its I/O floor")
	}
	if sb.SecsPerGBProc > base4.SecsPerGBProc*1.25 {
		t.Errorf("subblock %.1f too far above 4-pass baseline %.1f",
			sb.SecsPerGBProc, base4.SecsPerGBProc)
	}

	// M-columnsort is well above the 3-pass baseline (not nearly as
	// I/O-bound), yet faster than subblock columnsort in all comparable
	// cases, and slower than threaded.
	for _, gb := range []int64{8, 32} {
		mc := at(core.MColumn, 1<<25, gb)
		sbAt := at(core.Subblock, 1<<25, gb)
		b3 := at(core.BaselineIO3, 1<<25, gb)
		if mc.SecsPerGBProc < b3.SecsPerGBProc*1.10 {
			t.Errorf("%d GiB: m-columnsort %.1f should be well above 3-pass baseline %.1f",
				gb, mc.SecsPerGBProc, b3.SecsPerGBProc)
		}
		if mc.SecsPerGBProc >= sbAt.SecsPerGBProc {
			t.Errorf("%d GiB: m-columnsort %.1f not faster than subblock %.1f",
				gb, mc.SecsPerGBProc, sbAt.SecsPerGBProc)
		}
	}
	mc4 := at(core.MColumn, 1<<25, 4)
	if mc4.SecsPerGBProc <= th.SecsPerGBProc {
		t.Errorf("at 4 GiB m-columnsort %.1f should be slower than threaded %.1f",
			mc4.SecsPerGBProc, th.SecsPerGBProc)
	}

	// Buffer-size effect (experiment E7): the smaller 2^24 buffer is
	// slower for every algorithm.
	for _, alg := range []core.Algorithm{core.MColumn} {
		small := at(alg, 1<<24, 8)
		large := at(alg, 1<<25, 8)
		if small.SecsPerGBProc <= large.SecsPerGBProc {
			t.Errorf("%v: buffer 2^24 (%.1f) not slower than 2^25 (%.1f)",
				alg, small.SecsPerGBProc, large.SecsPerGBProc)
		}
	}

	// Flatness: secs per (GiB/processor) rises only slightly with volume.
	mc8, mc32 := at(core.MColumn, 1<<25, 8), at(core.MColumn, 1<<25, 32)
	if mc32.SecsPerGBProc > mc8.SecsPerGBProc*1.5 {
		t.Errorf("m-columnsort not flat in GiB/processor: %.1f vs %.1f",
			mc8.SecsPerGBProc, mc32.SecsPerGBProc)
	}
}

func TestRenderGrid(t *testing.T) {
	pts := Grid()
	cm := sim.Beowulf2003()
	for i := range pts {
		if pts[i].Eligible {
			if err := Evaluate(&pts[i], cm); err != nil {
				t.Fatal(err)
			}
		}
	}
	out := Render(pts)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
	for _, want := range []string{"m-columnsort", "subblock", "threaded", "baseline"} {
		if !containsStr(out, want) {
			t.Errorf("render missing series %q:\n%s", want, out)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestEvaluateIneligible(t *testing.T) {
	pt := MakePoint(core.Threaded, 1<<25, 32*GiB, 64)
	if pt.Eligible {
		t.Fatal("threaded at 32 GiB should be ineligible")
	}
	if err := Evaluate(&pt, sim.Beowulf2003()); err == nil {
		t.Fatal("Evaluate accepted ineligible point")
	}
}

func TestRangeModCount(t *testing.T) {
	// Brute-force cross-check.
	brute := func(lo, hi, m, a, b int64) int64 {
		var n int64
		for x := lo; x < hi; x++ {
			if r := x % m; r >= a && r < b {
				n++
			}
		}
		return n
	}
	cases := [][5]int64{
		{0, 10, 4, 1, 3}, {5, 29, 8, 0, 8}, {7, 7, 4, 0, 2},
		{3, 100, 7, 2, 5}, {0, 64, 16, 12, 16}, {13, 14, 4, 1, 2},
	}
	for _, c := range cases {
		got := rangeModCount(c[0], c[1], c[2], c[3], c[4])
		want := brute(c[0], c[1], c[2], c[3], c[4])
		if got != want {
			t.Errorf("rangeModCount(%v) = %d, want %d", c, got, want)
		}
	}
}
