// Package verify checks the outputs of the out-of-core sorters: global
// sortedness in column-major (PDM) order and multiset preservation, both
// computed streaming so that verification itself stays out-of-core (never
// more than one column portion in memory).
package verify

import (
	"fmt"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// Error describes a verification failure with enough position information
// to debug a missorted run.
type Error struct {
	Kind   string
	Column int
	Row    int
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("verify: %s at column %d row %d: %s", e.Kind, e.Column, e.Row, e.Detail)
}

// StoreSorted checks that the store's contents are sorted in column-major
// order: within each column and across each column boundary. For the
// ColumnOwned layout this is exactly the PDM striped ordering of footnote 6
// (columns are the stripe blocks, assigned round-robin to disks).
func StoreSorted(st *pdm.Store) error {
	var cnt sim.Counters
	var lastValid bool
	last := record.Make(1, st.RecSize)
	buf := record.Make(st.R, st.RecSize)
	// ScanSegments prefetches one segment ahead, so on async disks the
	// comparisons below overlap the next segment's read.
	return st.ScanSegments(func(p, j, lo, hi int) error {
		chunk := buf.Sub(0, hi-lo)
		if err := st.ReadRows(&cnt, p, j, lo, chunk); err != nil {
			return err
		}
		for i := 0; i < chunk.Len(); i++ {
			if lastValid && record.Compare(chunk, i, last, 0) < 0 {
				return &Error{Kind: "order violation", Column: j, Row: lo + i,
					Detail: fmt.Sprintf("key %x follows %x", chunk.Key(i), last.Key(0))}
			}
			last.CopyRecord(0, chunk, i)
			lastValid = true
		}
		return nil
	})
}

// Multiset checks that the store holds exactly the claimed multiset of
// records.
func Multiset(st *pdm.Store, want record.Checksum) error {
	got, err := st.Checksum()
	if err != nil {
		return err
	}
	if !got.Equal(want) {
		return &Error{Kind: "multiset violation",
			Detail: fmt.Sprintf("checksum (count=%d sum=%x) != expected (count=%d sum=%x)",
				got.Count, got.Sum, want.Count, want.Sum)}
	}
	return nil
}

// Output runs both checks; it is the standard postcondition of every sorter
// test and of the cmd/colsort verify subcommand.
func Output(st *pdm.Store, want record.Checksum) error {
	if err := Multiset(st, want); err != nil {
		return err
	}
	return StoreSorted(st)
}

// OutputPrefix checks a padded sort: the first n records (in column-major
// order) must be sorted and match the claimed multiset, and every record
// after them must be an all-0xFF pad. Pads carry the maximum key and the
// maximum payload, so they sort after (or byte-identically among) all real
// records, making prefix trimming exact. Used by the non-power-of-two
// support in the public API.
func OutputPrefix(st *pdm.Store, n int64, want record.Checksum) error {
	var cnt sim.Counters
	var got record.Checksum
	var lastValid bool
	last := record.Make(1, st.RecSize)
	buf := record.Make(st.R, st.RecSize)
	var seen int64
	err := st.ScanSegments(func(p, j, lo, hi int) error {
		chunk := buf.Sub(0, hi-lo)
		if err := st.ReadRows(&cnt, p, j, lo, chunk); err != nil {
			return err
		}
		for i := 0; i < chunk.Len(); i++ {
			rec := chunk.Record(i)
			if seen < n {
				if lastValid && record.Compare(chunk, i, last, 0) < 0 {
					return &Error{Kind: "order violation", Column: j, Row: lo + i,
						Detail: fmt.Sprintf("key %x follows %x", chunk.Key(i), last.Key(0))}
				}
				last.CopyRecord(0, chunk, i)
				lastValid = true
				got.Add(rec)
			} else {
				for _, b := range rec {
					if b != 0xff {
						return &Error{Kind: "pad violation", Column: j, Row: lo + i,
							Detail: "non-pad record beyond the real prefix"}
					}
				}
			}
			seen++
		}
		return nil
	})
	if err != nil {
		return err
	}
	if !got.Equal(want) {
		return &Error{Kind: "multiset violation",
			Detail: fmt.Sprintf("prefix checksum (count=%d) != expected (count=%d)", got.Count, want.Count)}
	}
	return nil
}

// SliceSorted checks an in-memory snapshot; a convenience for tests.
func SliceSorted(s record.Slice) error {
	n := s.Len()
	for i := 1; i < n; i++ {
		if s.Less(i, i-1) {
			return &Error{Kind: "order violation", Row: i,
				Detail: fmt.Sprintf("key %x follows %x", s.Key(i), s.Key(i-1))}
		}
	}
	return nil
}
