package verify

import (
	"strings"
	"testing"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

func sortedStore(t *testing.T, layout pdm.Layout) *pdm.Store {
	t.Helper()
	m := pdm.Machine{P: 4, D: 4}
	st, err := m.NewStore(32, 4, 16, layout)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	// Sorted{} keys equal the global column-major index, so the store is
	// sorted by construction.
	if err := st.Fill(record.Sorted{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreSortedAccepts(t *testing.T) {
	for _, layout := range []pdm.Layout{pdm.ColumnOwned, pdm.RowBlocked} {
		if err := StoreSorted(sortedStore(t, layout)); err != nil {
			t.Fatalf("%v: %v", layout, err)
		}
	}
}

func TestStoreSortedDetectsIntraColumnViolation(t *testing.T) {
	st := sortedStore(t, pdm.ColumnOwned)
	var cnt sim.Counters
	bad := record.Make(1, 16)
	bad.SetKey(0, 0) // far smaller than its neighbours
	if err := st.WriteRows(&cnt, st.Owner(0, 2), 2, 10, bad); err != nil {
		t.Fatal(err)
	}
	err := StoreSorted(st)
	if err == nil {
		t.Fatal("missorted store accepted")
	}
	ve, ok := err.(*Error)
	if !ok {
		t.Fatalf("want *Error, got %T", err)
	}
	if ve.Column != 2 || ve.Row != 10 {
		t.Fatalf("violation located at column %d row %d, want column 2 row 10", ve.Column, ve.Row)
	}
}

func TestStoreSortedDetectsBoundaryViolation(t *testing.T) {
	st := sortedStore(t, pdm.ColumnOwned)
	var cnt sim.Counters
	// Make the first record of column 1 smaller than the last of column 0.
	bad := record.Make(1, 16)
	bad.SetKey(0, 5)
	if err := st.WriteRows(&cnt, st.Owner(0, 1), 1, 0, bad); err != nil {
		t.Fatal(err)
	}
	err := StoreSorted(st)
	if err == nil {
		t.Fatal("boundary violation accepted")
	}
	if ve := err.(*Error); ve.Column != 1 || ve.Row != 0 {
		t.Fatalf("violation at column %d row %d, want column 1 row 0", ve.Column, ve.Row)
	}
}

func TestMultiset(t *testing.T) {
	st := sortedStore(t, pdm.ColumnOwned)
	want := record.OfGenerated(record.Sorted{Seed: 1}, 32*4, 16)
	if err := Multiset(st, want); err != nil {
		t.Fatal(err)
	}
	var wrong record.Checksum
	if err := Multiset(st, wrong); err == nil {
		t.Fatal("wrong checksum accepted")
	}
}

func TestOutput(t *testing.T) {
	st := sortedStore(t, pdm.RowBlocked)
	want := record.OfGenerated(record.Sorted{Seed: 1}, 32*4, 16)
	if err := Output(st, want); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSorted(t *testing.T) {
	s := record.Make(10, 16)
	record.Fill(s, record.Sorted{Seed: 2}, 0)
	if err := SliceSorted(s); err != nil {
		t.Fatal(err)
	}
	s.SetKey(5, 0)
	err := SliceSorted(s)
	if err == nil {
		t.Fatal("missorted slice accepted")
	}
	if !strings.Contains(err.Error(), "order violation") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestOutputPrefix(t *testing.T) {
	m := pdm.Machine{P: 2, D: 2}
	st, err := m.NewStore(16, 2, 16, pdm.ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// First 20 records sorted real data, last 12 all-0xFF pads.
	const realN = 20
	var want record.Checksum
	var cnt sim.Counters
	buf := record.Make(1, 16)
	for g := 0; g < 32; g++ {
		j, i := g/16, g%16
		rec := buf.Record(0)
		if g < realN {
			for k := range rec {
				rec[k] = 0
			}
			record.PutKey(rec, uint64(g))
			want.Add(rec)
		} else {
			for k := range rec {
				rec[k] = 0xff
			}
		}
		if err := st.WriteRows(&cnt, st.Owner(0, j), j, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := OutputPrefix(st, realN, want); err != nil {
		t.Fatal(err)
	}
	// Full-length prefix behaves like plain sortedness+multiset... the
	// pads beyond realN are themselves sorted, so n=32 needs their
	// checksum too.
	padWant := want
	for k := realN; k < 32; k++ {
		rec := buf.Record(0)
		for i := range rec {
			rec[i] = 0xff
		}
		padWant.Add(rec)
	}
	if err := OutputPrefix(st, 32, padWant); err != nil {
		t.Fatal(err)
	}
	// A corrupted pad must be caught.
	bad := record.Make(1, 16)
	bad.FillKey(record.MaxKey)
	bad.Record(0)[15] = 0xfe
	if err := st.WriteRows(&cnt, st.Owner(0, 1), 1, 15, bad); err != nil {
		t.Fatal(err)
	}
	if err := OutputPrefix(st, realN, want); err == nil {
		t.Fatal("corrupted pad accepted")
	}
	// A missorted prefix must be caught.
	st2, err := m.NewStore(16, 2, 16, pdm.ColumnOwned)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.Fill(record.Reverse{Seed: 1}); err != nil {
		t.Fatal(err)
	}
	var anyWant record.Checksum
	if err := OutputPrefix(st2, 8, anyWant); err == nil {
		t.Fatal("missorted prefix accepted")
	}
}

func TestErrorMessage(t *testing.T) {
	e := &Error{Kind: "k", Column: 3, Row: 4, Detail: "d"}
	msg := e.Error()
	for _, want := range []string{"k", "3", "4", "d"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
