package cluster

import (
	"fmt"

	"colsort/internal/record"
	"colsort/internal/sim"
)

// Group is a sub-communicator: a view of the cluster restricted to an
// explicit member list, with ranks renumbered 0..len(members)−1 in list
// order. It is the MPI communicator-split analogue that hybrid group
// columnsort uses to run a distributed in-core sort within each processor
// group (and across pairs of groups for boundary overlaps).
//
// A Group shares the parent's mailboxes: its traffic must therefore use tag
// windows disjoint from any concurrent communication among the same
// processors, exactly as concurrent pipeline rounds already do.
type Group struct {
	pr      *Proc
	members []int // global ranks, in group-rank order
	myRank  int   // this processor's rank within the group
	contig  bool  // members are [members[0], members[0]+len) in order
}

// NewGroup builds the sub-communicator for the calling processor. members
// lists the global ranks of the group in group-rank order and must contain
// the caller exactly once (and no duplicates).
func NewGroup(pr *Proc, members []int) (*Group, error) {
	g := &Group{pr: pr, members: append([]int(nil), members...), myRank: -1}
	seen := make(map[int]bool, len(members))
	for i, m := range members {
		if m < 0 || m >= pr.NProcs() {
			return nil, fmt.Errorf("cluster: group member %d out of range", m)
		}
		if seen[m] {
			return nil, fmt.Errorf("cluster: duplicate group member %d", m)
		}
		seen[m] = true
		if m == pr.Rank() {
			g.myRank = i
		}
	}
	if g.myRank < 0 {
		return nil, fmt.Errorf("cluster: rank %d is not a member of the group %v", pr.Rank(), members)
	}
	g.contig = true
	for i, m := range g.members {
		if m != g.members[0]+i {
			g.contig = false
			break
		}
	}
	return g, nil
}

// ContiguousGroup is the common case: members are the global ranks
// [base, base+size).
func ContiguousGroup(pr *Proc, base, size int) (*Group, error) {
	members := make([]int, size)
	for i := range members {
		members[i] = base + i
	}
	return NewGroup(pr, members)
}

// Rank returns this processor's rank within the group.
func (g *Group) Rank() int { return g.myRank }

// NProcs returns the group size.
func (g *Group) NProcs() int { return len(g.members) }

// Global translates a group rank to the cluster rank.
func (g *Group) Global(rank int) int { return g.members[rank] }

// Send delivers to group rank dst.
func (g *Group) Send(cnt *sim.Counters, dst, tag int, recs record.Slice) error {
	if dst < 0 || dst >= len(g.members) {
		return fmt.Errorf("cluster: group send to rank %d of %d", dst, len(g.members))
	}
	return g.pr.Send(cnt, g.members[dst], tag, recs)
}

// Recv receives from group rank src.
func (g *Group) Recv(src, tag int) (record.Slice, error) {
	if src < 0 || src >= len(g.members) {
		return record.Slice{}, fmt.Errorf("cluster: group recv from rank %d of %d", src, len(g.members))
	}
	return g.pr.Recv(g.members[src], tag)
}

// AllToAll exchanges within the group only. Contiguous groups (the common
// case: ContiguousGroup) run the round through the exchange board — keyed
// by (tag, member window) so disjoint groups may share a tag — with one
// synchronization per member; arbitrary member lists fall back to tagged
// point-to-point messages. Ownership and counter semantics match
// Proc.AllToAll.
func (g *Group) AllToAll(cnt *sim.Counters, tag int, out []record.Slice) ([]record.Slice, error) {
	if len(out) != len(g.members) {
		return nil, fmt.Errorf("cluster: group all-to-all with %d buffers on %d members", len(out), len(g.members))
	}
	if g.contig {
		c := g.pr.c
		for d := range out {
			chargeMsg(cnt, d == g.myRank, len(out[d].Data))
			out[d] = c.wireCopy(out[d])
		}
		return c.exchangeRound(xkey{tag: tag, base: g.members[0], n: len(g.members)}, g.myRank, out)
	}
	for d := range g.members {
		if err := g.Send(cnt, d, tag, out[d]); err != nil {
			return nil, err
		}
	}
	in := make([]record.Slice, len(g.members))
	for s := range g.members {
		recs, err := g.Recv(s, tag)
		if err != nil {
			return nil, err
		}
		in[s] = recs
	}
	return in, nil
}

// Broadcast sends root's buffer to every group member.
func (g *Group) Broadcast(cnt *sim.Counters, root, tag int, recs record.Slice) (record.Slice, error) {
	if g.myRank == root {
		for d := range g.members {
			if d == root {
				continue
			}
			cp := record.Make(recs.Len(), recs.Size)
			cp.Copy(recs)
			if err := g.Send(cnt, d, tag, cp); err != nil {
				return record.Slice{}, err
			}
		}
		return recs, nil
	}
	return g.Recv(root, tag)
}

// Gather collects every member's buffer at the group root.
func (g *Group) Gather(cnt *sim.Counters, root, tag int, recs record.Slice) ([]record.Slice, error) {
	if err := g.Send(cnt, root, tag, recs); err != nil {
		return nil, err
	}
	if g.myRank != root {
		return nil, nil
	}
	all := make([]record.Slice, len(g.members))
	for s := range g.members {
		r, err := g.Recv(s, tag)
		if err != nil {
			return nil, err
		}
		all[s] = r
	}
	return all, nil
}
