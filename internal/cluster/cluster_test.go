package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"colsort/internal/record"
	"colsort/internal/sim"
)

func TestSendRecvBasic(t *testing.T) {
	err := Run(2, func(pr *Proc) error {
		var cnt sim.Counters
		if pr.Rank() == 0 {
			msg := record.Make(4, 16)
			msg.SetKey(0, 42)
			return pr.Send(&cnt, 1, 7, msg)
		}
		got, err := pr.Recv(0, 7)
		if err != nil {
			return err
		}
		if got.Len() != 4 || got.Key(0) != 42 {
			return fmt.Errorf("bad message: len=%d key=%d", got.Len(), got.Key(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMatching(t *testing.T) {
	// Receive tags in the opposite order from sends: the mailbox must match
	// by tag, not arrival order.
	err := Run(2, func(pr *Proc) error {
		var cnt sim.Counters
		if pr.Rank() == 0 {
			a := record.Make(1, 8)
			a.SetKey(0, 1)
			b := record.Make(1, 8)
			b.SetKey(0, 2)
			if err := pr.Send(&cnt, 1, 100, a); err != nil {
				return err
			}
			return pr.Send(&cnt, 1, 200, b)
		}
		b, err := pr.Recv(0, 200)
		if err != nil {
			return err
		}
		a, err := pr.Recv(0, 100)
		if err != nil {
			return err
		}
		if a.Key(0) != 1 || b.Key(0) != 2 {
			return fmt.Errorf("tag matching delivered wrong payloads: %d %d", a.Key(0), b.Key(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerTag(t *testing.T) {
	const n = 100
	err := Run(2, func(pr *Proc) error {
		var cnt sim.Counters
		if pr.Rank() == 0 {
			for i := 0; i < n; i++ {
				m := record.Make(1, 8)
				m.SetKey(0, uint64(i))
				if err := pr.Send(&cnt, 1, 5, m); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			m, err := pr.Recv(0, 5)
			if err != nil {
				return err
			}
			if m.Key(0) != uint64(i) {
				return fmt.Errorf("out of order: got %d want %d", m.Key(0), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentStagesSameProc(t *testing.T) {
	// Two stage goroutines per processor receive on different tags
	// concurrently — the scenario the tag-matched mailbox exists for.
	err := Run(2, func(pr *Proc) error {
		var cnt sim.Counters
		peer := 1 - pr.Rank()
		var wg sync.WaitGroup
		errs := make([]error, 2)
		for stage := 0; stage < 2; stage++ {
			wg.Add(1)
			go func(stage int) {
				defer wg.Done()
				var scnt sim.Counters
				for i := 0; i < 50; i++ {
					m := record.Make(1, 8)
					m.SetKey(0, uint64(stage*1000+i))
					if err := pr.Send(&scnt, peer, stage, m); err != nil {
						errs[stage] = err
						return
					}
					got, err := pr.Recv(peer, stage)
					if err != nil {
						errs[stage] = err
						return
					}
					if got.Key(0) != uint64(stage*1000+i) {
						errs[stage] = fmt.Errorf("stage %d got %d", stage, got.Key(0))
						return
					}
				}
			}(stage)
		}
		wg.Wait()
		_ = cnt
		return errors.Join(errs...)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNetworkVsLocalAccounting(t *testing.T) {
	cnts := make([]sim.Counters, 2)
	err := Run(2, func(pr *Proc) error {
		cnt := &cnts[pr.Rank()]
		m1 := record.Make(4, 16) // 64 bytes
		if err := pr.Send(cnt, pr.Rank(), 1, m1); err != nil {
			return err
		}
		if _, err := pr.Recv(pr.Rank(), 1); err != nil {
			return err
		}
		m2 := record.Make(2, 16) // 32 bytes
		if err := pr.Send(cnt, 1-pr.Rank(), 2, m2); err != nil {
			return err
		}
		_, err := pr.Recv(1-pr.Rank(), 2)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, c := range cnts {
		if c.LocalBytes != 64 || c.LocalMsgs != 1 {
			t.Errorf("rank %d local: %d bytes %d msgs", rank, c.LocalBytes, c.LocalMsgs)
		}
		if c.NetBytes != 32 || c.NetMsgs != 1 {
			t.Errorf("rank %d net: %d bytes %d msgs", rank, c.NetBytes, c.NetMsgs)
		}
	}
}

func TestBarrier(t *testing.T) {
	const p = 8
	var mu sync.Mutex
	phase := make([]int, p)
	err := Run(p, func(pr *Proc) error {
		for round := 0; round < 5; round++ {
			mu.Lock()
			phase[pr.Rank()] = round
			mu.Unlock()
			if err := pr.Barrier(); err != nil {
				return err
			}
			// After the barrier, no processor may still be in an earlier
			// round.
			mu.Lock()
			for q, ph := range phase {
				if ph < round {
					mu.Unlock()
					return fmt.Errorf("rank %d saw rank %d at phase %d during round %d", pr.Rank(), q, ph, round)
				}
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAll(t *testing.T) {
	const p = 4
	err := Run(p, func(pr *Proc) error {
		var cnt sim.Counters
		out := make([]record.Slice, p)
		for q := 0; q < p; q++ {
			out[q] = record.Make(1, 8)
			out[q].SetKey(0, uint64(pr.Rank()*10+q))
		}
		in, err := pr.AllToAll(&cnt, 3, out)
		if err != nil {
			return err
		}
		for q := 0; q < p; q++ {
			if want := uint64(q*10 + pr.Rank()); in[q].Key(0) != want {
				return fmt.Errorf("rank %d from %d: got %d want %d", pr.Rank(), q, in[q].Key(0), want)
			}
		}
		// One message stays local.
		if cnt.LocalMsgs != 1 || cnt.NetMsgs != p-1 {
			return fmt.Errorf("rank %d: %d local %d net msgs", pr.Rank(), cnt.LocalMsgs, cnt.NetMsgs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllToAllWrongLen(t *testing.T) {
	err := Run(2, func(pr *Proc) error {
		var cnt sim.Counters
		_, err := pr.AllToAll(&cnt, 1, make([]record.Slice, 3))
		if err == nil {
			return errors.New("no error for wrong buffer count")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastGather(t *testing.T) {
	const p = 4
	err := Run(p, func(pr *Proc) error {
		var cnt sim.Counters
		var payload record.Slice
		if pr.Rank() == 2 {
			payload = record.Make(1, 8)
			payload.SetKey(0, 777)
		}
		got, err := pr.Broadcast(&cnt, 2, 9, payload)
		if err != nil {
			return err
		}
		if got.Key(0) != 777 {
			return fmt.Errorf("rank %d broadcast got %d", pr.Rank(), got.Key(0))
		}
		mine := record.Make(1, 8)
		mine.SetKey(0, uint64(pr.Rank()))
		all, err := pr.Gather(&cnt, 0, 11, mine)
		if err != nil {
			return err
		}
		if pr.Rank() == 0 {
			for q := 0; q < p; q++ {
				if all[q].Key(0) != uint64(q) {
					return fmt.Errorf("gather slot %d = %d", q, all[q].Key(0))
				}
			}
		} else if all != nil {
			return errors.New("non-root got gather result")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllReduce(t *testing.T) {
	const p = 8
	err := Run(p, func(pr *Proc) error {
		var cnt sim.Counters
		sum, err := pr.AllReduceUint64(&cnt, 50, uint64(pr.Rank()+1), func(a, b uint64) uint64 { return a + b })
		if err != nil {
			return err
		}
		if sum != p*(p+1)/2 {
			return fmt.Errorf("rank %d: sum %d", pr.Rank(), sum)
		}
		max, err := pr.AllReduceUint64(&cnt, 60, uint64(pr.Rank()), func(a, b uint64) uint64 {
			if a > b {
				return a
			}
			return b
		})
		if err != nil {
			return err
		}
		if max != p-1 {
			return fmt.Errorf("rank %d: max %d", pr.Rank(), max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestErrorAbortsPeers(t *testing.T) {
	boom := errors.New("boom")
	err := Run(3, func(pr *Proc) error {
		if pr.Rank() == 1 {
			return boom
		}
		// These would block forever without abort propagation.
		_, err := pr.Recv(1, 99)
		return err
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestPanicBecomesError(t *testing.T) {
	err := Run(2, func(pr *Proc) error {
		if pr.Rank() == 0 {
			panic("deliberate")
		}
		return pr.Barrier()
	})
	if err == nil || !contains(err.Error(), "panicked") {
		t.Fatalf("want panic error, got %v", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAbortUnblocksBarrier(t *testing.T) {
	boom := errors.New("boom")
	err := Run(4, func(pr *Proc) error {
		if pr.Rank() == 3 {
			return boom
		}
		return pr.Barrier()
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestSendRecvRangeChecks(t *testing.T) {
	err := Run(1, func(pr *Proc) error {
		var cnt sim.Counters
		if err := pr.Send(&cnt, 5, 0, record.Slice{}); err == nil {
			return errors.New("send to rank 5 of 1 accepted")
		}
		if _, err := pr.Recv(-1, 0); err == nil {
			return errors.New("recv from rank -1 accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleProcCollectives(t *testing.T) {
	err := Run(1, func(pr *Proc) error {
		var cnt sim.Counters
		m := record.Make(1, 8)
		m.SetKey(0, 5)
		in, err := pr.AllToAll(&cnt, 0, []record.Slice{m})
		if err != nil || in[0].Key(0) != 5 {
			return fmt.Errorf("self all-to-all: %v", err)
		}
		if err := pr.Barrier(); err != nil {
			return err
		}
		v, err := pr.AllReduceUint64(&cnt, 2, 9, func(a, b uint64) uint64 { return a + b })
		if err != nil || v != 9 {
			return fmt.Errorf("self allreduce: %v %d", err, v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunManyProcs(t *testing.T) {
	// A ring pass with 32 processors: each sends its rank around the ring
	// P times; the value arriving back must be its own rank.
	const p = 32
	err := Run(p, func(pr *Proc) error {
		var cnt sim.Counters
		val := uint64(pr.Rank())
		for hop := 0; hop < p; hop++ {
			m := record.Make(1, 8)
			m.SetKey(0, val)
			if err := pr.Send(&cnt, (pr.Rank()+1)%p, hop, m); err != nil {
				return err
			}
			got, err := pr.Recv((pr.Rank()+p-1)%p, hop)
			if err != nil {
				return err
			}
			val = got.Key(0)
		}
		if val != uint64(pr.Rank()) {
			return fmt.Errorf("ring returned %d to rank %d", val, pr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
