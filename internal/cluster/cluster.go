// Package cluster simulates the distributed-memory message-passing cluster
// the paper runs on: P processors executing the same program (SPMD, as with
// MPI), exchanging record buffers through tagged point-to-point messages and
// a few collectives.
//
// Each processor is a goroutine; within a processor, the pipeline stages of
// the out-of-core algorithms are further goroutines that may communicate
// concurrently, so receives are matched MPI-style by (source, tag) rather
// than by arrival order. Tags therefore encode (pass, stage, round), which
// both demultiplexes concurrent streams and asserts the obliviousness of
// the communication pattern: a tag mismatch means the pattern diverged from
// the plan and is reported as corruption rather than mis-delivered.
//
// # Ownership-transfer fabric
//
// Because every "processor" lives in one address space, a message need not
// copy its payload: Send RELINQUISHES the sender's buffer and the receiver
// adopts the very same bytes (recycling them into its own pool when the
// records have moved on). That zero-copy discipline is the default fabric.
// The Copying fabric deep-copies every payload through a fabric-owned pool
// at send time — the memcpy an MPI transport would perform — for
// MPI-fidelity simulations; the caller-visible contract is identical in
// both modes (the sender must not touch a buffer after sending it), and so
// is every sim.Counters charge, so the two fabrics are byte- and
// counter-equivalent and differ only in wall-clock cost. See DESIGN.md §8.
//
// All traffic is counted into caller-supplied sim.Counters: messages between
// distinct processors charge network bytes, self-destined messages charge
// only local bytes (the paper's communicate stage likewise excludes the
// message a processor sends itself from network traffic).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"colsort/internal/record"
	"colsort/internal/sim"
)

// ErrAborted is returned by communication operations after the cluster has
// been shut down by another processor's failure.
var ErrAborted = errors.New("cluster: aborted by peer failure")

// Fabric selects how message payloads cross the simulated wire.
type Fabric int

const (
	// ZeroCopy transfers buffer ownership: the receiver adopts the
	// sender's buffer. The default.
	ZeroCopy Fabric = iota
	// Copying deep-copies every payload through a fabric-owned pool at
	// send time, as an MPI transport would; the sender's buffer is
	// recycled into that pool. Counters and outputs are identical to
	// ZeroCopy.
	Copying
)

func (f Fabric) String() string {
	switch f {
	case ZeroCopy:
		return "zero-copy"
	case Copying:
		return "copying"
	}
	return fmt.Sprintf("Fabric(%d)", int(f))
}

// maxFreeQueues bounds the drained tag-queue slices a mailbox retains for
// reuse; the pipeline depth bounds how many tags are ever live at once.
const maxFreeQueues = 8

// mailbox queues messages from one source processor to one destination,
// matched by tag. A condition variable rather than a channel because
// receivers select by tag, not by arrival order. The pending map is
// created on first use: a cluster has P² mailboxes and sparse patterns
// (bitonic exchanges, targeted subblock sends) leave many untouched.
// Drained tag queues are recycled onto freeq instead of reallocating a
// fresh []record.Slice per tag per round.
type mailbox struct {
	mu      sync.Mutex
	cond    sync.Cond
	pending map[int][]record.Slice // tag → FIFO queue
	freeq   [][]record.Slice       // drained queues, ready for reuse
	closed  bool
}

func (mb *mailbox) put(tag int, recs record.Slice) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrAborted
	}
	if mb.pending == nil {
		mb.pending = make(map[int][]record.Slice)
	}
	q, ok := mb.pending[tag]
	if !ok {
		if ln := len(mb.freeq); ln > 0 {
			q = mb.freeq[ln-1]
			mb.freeq[ln-1] = nil
			mb.freeq = mb.freeq[:ln-1]
		}
	}
	mb.pending[tag] = append(q, recs)
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) get(tag int) (record.Slice, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if q := mb.pending[tag]; len(q) > 0 {
			recs := q[0]
			// Shift-pop keeps the queue anchored at its base so the
			// drained slice retains its full capacity for reuse.
			copy(q, q[1:])
			q[len(q)-1] = record.Slice{}
			q = q[:len(q)-1]
			if len(q) == 0 {
				delete(mb.pending, tag)
				if len(mb.freeq) < maxFreeQueues {
					mb.freeq = append(mb.freeq, q)
				}
			} else {
				mb.pending[tag] = q
			}
			return recs, nil
		}
		if mb.closed {
			return record.Slice{}, ErrAborted
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// xkey identifies one in-flight all-to-all round on the exchange board:
// the collective's tag plus the participant window [base, base+n) — group
// collectives with disjoint windows may share a tag without colliding.
type xkey struct{ tag, base, n int }

// exchange is one all-to-all round in flight: an n×n matrix of deposit
// slots (slots[dst·n+src]). Every participant deposits its n outgoing
// buffers under ONE lock acquisition, waits once for the round to fill,
// and takes its row — a single synchronization per round instead of the
// 2n tag-matched mailbox wakeups of the point-to-point formulation.
type exchange struct {
	slots     []record.Slice
	deposited int
	taken     int
}

// maxFreeExchanges bounds the retired exchange boards kept for reuse.
const maxFreeExchanges = 8

// Cluster is the shared communication fabric of P processors.
type Cluster struct {
	p      int
	fabric Fabric
	boxes  []mailbox // P² mailboxes, box(dst, src) = boxes[dst·P+src]

	// wirePool recycles the payload copies of the Copying fabric.
	wirePool *record.Pool

	// Exchange board for the all-to-all collectives.
	xmu      sync.Mutex
	xcv      *sync.Cond
	xchgs    map[xkey]*exchange
	xfree    []*exchange
	xaborted bool

	barrierMu  sync.Mutex
	barrierCnt int
	barrierGen int
	barrierCv  *sync.Cond

	abortOnce  sync.Once
	aborted    bool
	abortCause error // first cause passed to abort; read after Run's wait
}

// New builds a zero-copy cluster fabric for p processors. The whole fabric
// is a handful of allocations — a run constructs one per sort, so setup
// must not scale with P² allocator calls.
func New(p int) *Cluster { return NewFabric(p, ZeroCopy) }

// NewFabric builds a cluster fabric with an explicit payload-transfer mode.
func NewFabric(p int, fabric Fabric) *Cluster {
	if p < 1 {
		panic(fmt.Sprintf("cluster: need at least one processor, got %d", p))
	}
	c := &Cluster{p: p, fabric: fabric, boxes: make([]mailbox, p*p)}
	for i := range c.boxes {
		mb := &c.boxes[i]
		mb.cond.L = &mb.mu
	}
	c.barrierCv = sync.NewCond(&c.barrierMu)
	c.xcv = sync.NewCond(&c.xmu)
	c.xchgs = make(map[xkey]*exchange)
	if fabric == Copying {
		c.wirePool = record.NewPool()
	}
	return c
}

// box returns the mailbox holding messages from src destined to dst.
func (c *Cluster) box(dst, src int) *mailbox { return &c.boxes[dst*c.p+src] }

// P returns the number of processors.
func (c *Cluster) P() int { return c.p }

// Fabric returns the payload-transfer mode.
func (c *Cluster) Fabric() Fabric { return c.fabric }

// wireCopy realizes the Copying fabric's transport memcpy: the payload is
// duplicated through the fabric pool and the sender's buffer recycled into
// it (the sender relinquished the buffer either way). A no-op on the
// zero-copy fabric and for nil payloads.
func (c *Cluster) wireCopy(recs record.Slice) record.Slice {
	if c.fabric != Copying || recs.Data == nil {
		return recs
	}
	cp := c.wirePool.Get(recs.Len(), recs.Size)
	cp.Copy(recs)
	c.wirePool.Put(recs)
	return cp
}

// abort shuts down all mailboxes, releases barrier waiters and unblocks the
// exchange board, so that every blocked processor unblocks with ErrAborted.
// The first cause is retained so Run can report the root of an externally
// triggered abort (context cancellation) rather than the generic ErrAborted.
func (c *Cluster) abort(cause error) {
	c.abortOnce.Do(func() {
		c.barrierMu.Lock()
		c.aborted = true
		c.abortCause = cause
		c.barrierCv.Broadcast()
		c.barrierMu.Unlock()
		for i := range c.boxes {
			c.boxes[i].close()
		}
		c.xmu.Lock()
		c.xaborted = true
		c.xcv.Broadcast()
		c.xmu.Unlock()
	})
}

// exchangeRound deposits out (n buffers, one per participant index) into
// the board round identified by key on behalf of participant me, waits for
// the round to fill, and returns the n buffers destined to me in a header
// array from the shared free list. Ownership semantics match Send/Recv.
func (c *Cluster) exchangeRound(key xkey, me int, out []record.Slice) ([]record.Slice, error) {
	n := key.n
	c.xmu.Lock()
	if c.xaborted {
		c.xmu.Unlock()
		return nil, ErrAborted
	}
	e := c.xchgs[key]
	if e == nil {
		if ln := len(c.xfree); ln > 0 && cap(c.xfree[ln-1].slots) >= n*n {
			e = c.xfree[ln-1]
			c.xfree[ln-1] = nil
			c.xfree = c.xfree[:ln-1]
			e.slots = e.slots[:n*n]
		} else {
			e = &exchange{slots: make([]record.Slice, n*n)}
		}
		c.xchgs[key] = e
	}
	for d := 0; d < n; d++ {
		e.slots[d*n+me] = out[d]
	}
	e.deposited++
	if e.deposited == n {
		c.xcv.Broadcast()
	}
	for e.deposited < n && !c.xaborted {
		c.xcv.Wait()
	}
	if c.xaborted {
		c.xmu.Unlock()
		return nil, ErrAborted
	}
	in := record.GetHeaders(n)
	row := e.slots[me*n : (me+1)*n]
	for q := 0; q < n; q++ {
		in[q] = row[q]
		row[q] = record.Slice{}
	}
	e.taken++
	if e.taken == n {
		delete(c.xchgs, key)
		e.deposited, e.taken = 0, 0
		if len(c.xfree) < maxFreeExchanges {
			c.xfree = append(c.xfree, e)
		}
	}
	c.xmu.Unlock()
	return in, nil
}

// Proc is one processor's handle onto the cluster.
type Proc struct {
	rank     int
	c        *Cluster
	packOffs []int32 // planned all-to-all packing scratch
}

// Rank returns this processor's id in [0, P).
func (pr *Proc) Rank() int { return pr.rank }

// NProcs returns the cluster size P.
func (pr *Proc) NProcs() int { return pr.c.p }

// chargeMsg counts one message from the calling processor: network traffic
// unless self is true, which costs only a local handoff. Identical in both
// fabric modes.
func chargeMsg(cnt *sim.Counters, self bool, bytes int) {
	if cnt == nil {
		return
	}
	if self {
		cnt.LocalBytes += int64(bytes)
		cnt.LocalMsgs++
	} else {
		cnt.NetBytes += int64(bytes)
		cnt.NetMsgs++
	}
}

// Send delivers recs to processor dst under the given tag. The sender
// RELINQUISHES the buffer: on the zero-copy fabric the receiver adopts it
// outright, on the copying fabric the payload crosses as a copy and the
// original recycles into the fabric pool — either way the sender must not
// touch recs afterwards. Network traffic is charged to cnt unless dst is
// the sender itself, which costs only a local handoff.
func (pr *Proc) Send(cnt *sim.Counters, dst, tag int, recs record.Slice) error {
	if dst < 0 || dst >= pr.c.p {
		return fmt.Errorf("cluster: send to rank %d of %d", dst, pr.c.p)
	}
	chargeMsg(cnt, dst == pr.rank, len(recs.Data))
	return pr.c.box(dst, pr.rank).put(tag, pr.c.wireCopy(recs))
}

// Recv blocks until a message from src with the given tag arrives and
// returns its buffer, which the receiver now owns (it may recycle it into
// any pool once the records have moved on). Messages from one source under
// one tag arrive in send order.
func (pr *Proc) Recv(src, tag int) (record.Slice, error) {
	if src < 0 || src >= pr.c.p {
		return record.Slice{}, fmt.Errorf("cluster: recv from rank %d of %d", src, pr.c.p)
	}
	return pr.c.box(pr.rank, src).get(tag)
}

// Barrier blocks until all P processors have entered it. The out-of-core
// algorithms use it only between passes, never inside the pipelines.
func (pr *Proc) Barrier() error {
	c := pr.c
	c.barrierMu.Lock()
	defer c.barrierMu.Unlock()
	if c.aborted {
		return ErrAborted
	}
	gen := c.barrierGen
	c.barrierCnt++
	if c.barrierCnt == c.p {
		c.barrierCnt = 0
		c.barrierGen++
		c.barrierCv.Broadcast()
		return nil
	}
	for c.barrierGen == gen && !c.aborted {
		c.barrierCv.Wait()
	}
	if c.aborted {
		return ErrAborted
	}
	return nil
}

// AllToAll performs the personalized all-to-all exchange at the heart of
// the communicate stages: out[q] is sent to processor q, and the returned
// slice holds in[q] received from every q (including this processor's own
// contribution, which never touches the network). All processors must call
// it with the same tag. The round goes through the exchange board — one
// synchronization per processor per round — and ownership semantics match
// Send/Recv. The returned header array comes from the shared header free
// list; callers done with it may record.PutHeaders it.
func (pr *Proc) AllToAll(cnt *sim.Counters, tag int, out []record.Slice) ([]record.Slice, error) {
	if len(out) != pr.c.p {
		return nil, fmt.Errorf("cluster: all-to-all with %d buffers on %d processors", len(out), pr.c.p)
	}
	for d := range out {
		chargeMsg(cnt, d == pr.rank, len(out[d].Data))
		out[d] = pr.c.wireCopy(out[d])
	}
	return pr.c.exchangeRound(xkey{tag: tag, base: 0, n: pr.c.p}, pr.rank, out)
}

// Extent is a maximal run of consecutive records (in some scan order)
// sharing one destination index.
type Extent struct {
	Dst   int32
	Count int32
}

// SendPlan is a compiled partition of one source buffer across the
// destinations of a collective: per-destination record counts plus the
// run-length-encoded destination sequence in scan order. The pass planners
// in internal/core compile their oblivious permutations into SendPlans once
// (or once per round) and replay them every round.
type SendPlan struct {
	Counts []int32
	Exts   []Extent
}

// AllToAllPlan is the planned all-to-all collective: it partitions src
// directly into one pooled buffer per destination in a single pass over
// the data (no intermediate per-message slices), charges the packing copy
// and the per-destination messages to cnt, and runs the round through the
// exchange board. src is still owned by the caller when it returns; the
// received buffers are owned by the caller as with AllToAll.
func (pr *Proc) AllToAllPlan(cnt *sim.Counters, tag int, src record.Slice, plan *SendPlan, pool *record.Pool) ([]record.Slice, error) {
	p := pr.c.p
	if len(plan.Counts) != p {
		return nil, fmt.Errorf("cluster: planned all-to-all with %d destinations on %d processors", len(plan.Counts), p)
	}
	out := record.GetHeaders(p)
	pr.packInto(out, src, plan, pool)
	if cnt != nil {
		cnt.MovedBytes += int64(len(src.Data))
	}
	in, err := pr.AllToAll(cnt, tag, out)
	record.PutHeaders(out)
	return in, err
}

// packInto partitions src across out according to plan, drawing each
// destination buffer from pool: one batched copy per extent. The fill
// offsets live in per-Proc scratch so a steady-state round allocates
// nothing.
func (pr *Proc) packInto(out []record.Slice, src record.Slice, plan *SendPlan, pool *record.Pool) {
	z := src.Size
	if cap(pr.packOffs) < len(out) {
		pr.packOffs = make([]int32, len(out))
	}
	offs := pr.packOffs[:len(out)]
	for d := range out {
		out[d] = pool.Get(int(plan.Counts[d]), z)
		offs[d] = 0
	}
	pos := 0
	for _, e := range plan.Exts {
		d, n := int(e.Dst), int(e.Count)
		f := int(offs[d])
		copy(out[d].Data[f*z:(f+n)*z], src.Data[pos*z:(pos+n)*z])
		offs[d] = int32(f + n)
		pos += n
	}
}

// Broadcast sends root's buffer to every processor and returns each
// processor's copy (the root's own buffer is returned as-is).
func (pr *Proc) Broadcast(cnt *sim.Counters, root, tag int, recs record.Slice) (record.Slice, error) {
	if pr.rank == root {
		for q := 0; q < pr.c.p; q++ {
			if q == root {
				continue
			}
			cp := record.Make(recs.Len(), recs.Size)
			cp.Copy(recs)
			if err := pr.Send(cnt, q, tag, cp); err != nil {
				return record.Slice{}, err
			}
		}
		return recs, nil
	}
	return pr.Recv(root, tag)
}

// Gather collects every processor's buffer at root; non-roots receive nil.
func (pr *Proc) Gather(cnt *sim.Counters, root, tag int, recs record.Slice) ([]record.Slice, error) {
	if err := pr.Send(cnt, root, tag, recs); err != nil {
		return nil, err
	}
	if pr.rank != root {
		return nil, nil
	}
	all := make([]record.Slice, pr.c.p)
	for q := 0; q < pr.c.p; q++ {
		r, err := pr.Recv(q, tag)
		if err != nil {
			return nil, err
		}
		all[q] = r
	}
	return all, nil
}

// AllReduceUint64 folds one uint64 per processor with op (assumed
// associative and commutative) and returns the result on every processor.
// It rides on the record fabric with 8-byte records.
func (pr *Proc) AllReduceUint64(cnt *sim.Counters, tag int, x uint64, op func(a, b uint64) uint64) (uint64, error) {
	buf := record.Make(1, record.MinSize)
	buf.SetKey(0, x)
	all, err := pr.Gather(cnt, 0, tag, buf)
	if err != nil {
		return 0, err
	}
	var result record.Slice
	if pr.rank == 0 {
		acc := all[0].Key(0)
		for q := 1; q < pr.c.p; q++ {
			acc = op(acc, all[q].Key(0))
		}
		res := record.Make(1, record.MinSize)
		res.SetKey(0, acc)
		result, err = pr.Broadcast(cnt, 0, tag+1, res)
	} else {
		result, err = pr.Broadcast(cnt, 0, tag+1, record.Slice{})
	}
	if err != nil {
		return 0, err
	}
	return result.Key(0), nil
}

// Run executes fn as rank 0..p−1 on p goroutine processors and waits for
// all of them. The first failure (error or panic) aborts the cluster,
// unblocking peers; Run returns that first failure.
func Run(p int, fn func(*Proc) error) error {
	return RunCtx(context.Background(), p, fn)
}

// RunCtx is Run under a context, on the default zero-copy fabric.
func RunCtx(ctx context.Context, p int, fn func(*Proc) error) error {
	return RunCtxFabric(ctx, p, ZeroCopy, fn)
}

// RunCtxFabric is Run under a context with an explicit fabric mode: when
// ctx is cancelled the whole fabric is aborted — every processor blocked in
// a send, receive, collective or barrier unblocks with ErrAborted — and the
// call returns an error wrapping ctx's cause (so errors.Is(err,
// context.Canceled) and DeadlineExceeded work) once every processor
// goroutine has unwound. No goroutine outlives the call.
func RunCtxFabric(ctx context.Context, p int, fabric Fabric, fn func(*Proc) error) error {
	c := NewFabric(p, fabric)
	errs := make([]error, p)
	var wg sync.WaitGroup
	// The watcher turns a context cancellation into a fabric abort; done is
	// closed after all ranks unwind so the watcher never outlives RunCtx.
	done := make(chan struct{})
	if ctx.Done() != nil {
		var watch sync.WaitGroup
		watch.Add(1)
		go func() {
			defer watch.Done()
			select {
			case <-ctx.Done():
				c.abort(ctx.Err())
			case <-done:
			}
		}()
		defer watch.Wait()
		defer close(done)
	}
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("cluster: rank %d panicked: %v", rank, r)
					c.abort(errs[rank])
				}
			}()
			if err := fn(&Proc{rank: rank, c: c}); err != nil {
				errs[rank] = err
				c.abort(err)
			}
		}(rank)
	}
	wg.Wait()
	// Prefer a non-abort error (the root cause) over cascaded aborts.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		// Reached only when EVERY failing rank reported a cascaded abort —
		// a genuine root-cause error would have been returned by the loop
		// above. The abort's recorded cause can then only be one supplied
		// from outside the ranks: the watcher's ctx.Err(). Attribute the
		// failure to it so callers see context.Canceled/DeadlineExceeded.
		c.barrierMu.Lock()
		cause := c.abortCause
		c.barrierMu.Unlock()
		if cause != nil && !errors.Is(cause, ErrAborted) {
			return fmt.Errorf("%w: %w", ErrAborted, cause)
		}
	}
	return first
}
