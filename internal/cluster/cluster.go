// Package cluster simulates the distributed-memory message-passing cluster
// the paper runs on: P processors executing the same program (SPMD, as with
// MPI), exchanging record buffers through tagged point-to-point messages and
// a few collectives.
//
// Each processor is a goroutine; within a processor, the pipeline stages of
// the out-of-core algorithms are further goroutines that may communicate
// concurrently, so receives are matched MPI-style by (source, tag) rather
// than by arrival order. Tags therefore encode (pass, stage, round), which
// both demultiplexes concurrent streams and asserts the obliviousness of
// the communication pattern: a tag mismatch means the pattern diverged from
// the plan and is reported as corruption rather than mis-delivered.
//
// All traffic is counted into caller-supplied sim.Counters: messages between
// distinct processors charge network bytes, self-destined messages charge
// only local bytes (the paper's communicate stage likewise excludes the
// message a processor sends itself from network traffic).
package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"colsort/internal/record"
	"colsort/internal/sim"
)

// ErrAborted is returned by communication operations after the cluster has
// been shut down by another processor's failure.
var ErrAborted = errors.New("cluster: aborted by peer failure")

// message is one in-flight buffer.
type message struct {
	tag  int
	recs record.Slice
}

// mailbox queues messages from one source processor to one destination,
// matched by tag. A condition variable rather than a channel because
// receivers select by tag, not by arrival order. The pending map is
// created on first use: a cluster has P² mailboxes and sparse patterns
// (bitonic exchanges, targeted subblock sends) leave many untouched.
type mailbox struct {
	mu      sync.Mutex
	cond    sync.Cond
	pending map[int][]record.Slice // tag → FIFO queue
	closed  bool
}

func (mb *mailbox) put(tag int, recs record.Slice) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrAborted
	}
	if mb.pending == nil {
		mb.pending = make(map[int][]record.Slice)
	}
	mb.pending[tag] = append(mb.pending[tag], recs)
	mb.cond.Broadcast()
	return nil
}

func (mb *mailbox) get(tag int) (record.Slice, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if q := mb.pending[tag]; len(q) > 0 {
			recs := q[0]
			if len(q) == 1 {
				delete(mb.pending, tag)
			} else {
				mb.pending[tag] = q[1:]
			}
			return recs, nil
		}
		if mb.closed {
			return record.Slice{}, ErrAborted
		}
		mb.cond.Wait()
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Cluster is the shared communication fabric of P processors.
type Cluster struct {
	p     int
	boxes []mailbox // P² mailboxes, box(dst, src) = boxes[dst·P+src]

	barrierMu  sync.Mutex
	barrierCnt int
	barrierGen int
	barrierCv  *sync.Cond

	abortOnce  sync.Once
	aborted    bool
	abortCause error // first cause passed to abort; read after Run's wait
}

// New builds a cluster fabric for p processors. The whole fabric is two
// allocations — a run constructs one per sort, so setup must not scale
// with P² allocator calls.
func New(p int) *Cluster {
	if p < 1 {
		panic(fmt.Sprintf("cluster: need at least one processor, got %d", p))
	}
	c := &Cluster{p: p, boxes: make([]mailbox, p*p)}
	for i := range c.boxes {
		mb := &c.boxes[i]
		mb.cond.L = &mb.mu
	}
	c.barrierCv = sync.NewCond(&c.barrierMu)
	return c
}

// box returns the mailbox holding messages from src destined to dst.
func (c *Cluster) box(dst, src int) *mailbox { return &c.boxes[dst*c.p+src] }

// P returns the number of processors.
func (c *Cluster) P() int { return c.p }

// abort shuts down all mailboxes and releases barrier waiters, so that
// every blocked processor unblocks with ErrAborted. The first cause is
// retained so Run can report the root of an externally triggered abort
// (context cancellation) rather than the generic ErrAborted.
func (c *Cluster) abort(cause error) {
	c.abortOnce.Do(func() {
		c.barrierMu.Lock()
		c.aborted = true
		c.abortCause = cause
		c.barrierCv.Broadcast()
		c.barrierMu.Unlock()
		for i := range c.boxes {
			c.boxes[i].close()
		}
	})
}

// Proc is one processor's handle onto the cluster.
type Proc struct {
	rank int
	c    *Cluster
}

// Rank returns this processor's id in [0, P).
func (pr *Proc) Rank() int { return pr.rank }

// NProcs returns the cluster size P.
func (pr *Proc) NProcs() int { return pr.c.p }

// Send delivers recs to processor dst under the given tag, transferring
// buffer ownership to the receiver. Network traffic is charged to cnt
// unless dst is the sender itself, which costs only a local handoff.
func (pr *Proc) Send(cnt *sim.Counters, dst, tag int, recs record.Slice) error {
	if dst < 0 || dst >= pr.c.p {
		return fmt.Errorf("cluster: send to rank %d of %d", dst, pr.c.p)
	}
	if cnt != nil {
		if dst == pr.rank {
			cnt.LocalBytes += int64(len(recs.Data))
			cnt.LocalMsgs++
		} else {
			cnt.NetBytes += int64(len(recs.Data))
			cnt.NetMsgs++
		}
	}
	return pr.c.box(dst, pr.rank).put(tag, recs)
}

// Recv blocks until a message from src with the given tag arrives and
// returns its buffer. Messages from one source under one tag arrive in
// send order.
func (pr *Proc) Recv(src, tag int) (record.Slice, error) {
	if src < 0 || src >= pr.c.p {
		return record.Slice{}, fmt.Errorf("cluster: recv from rank %d of %d", src, pr.c.p)
	}
	return pr.c.box(pr.rank, src).get(tag)
}

// Barrier blocks until all P processors have entered it. The out-of-core
// algorithms use it only between passes, never inside the pipelines.
func (pr *Proc) Barrier() error {
	c := pr.c
	c.barrierMu.Lock()
	defer c.barrierMu.Unlock()
	if c.aborted {
		return ErrAborted
	}
	gen := c.barrierGen
	c.barrierCnt++
	if c.barrierCnt == c.p {
		c.barrierCnt = 0
		c.barrierGen++
		c.barrierCv.Broadcast()
		return nil
	}
	for c.barrierGen == gen && !c.aborted {
		c.barrierCv.Wait()
	}
	if c.aborted {
		return ErrAborted
	}
	return nil
}

// AllToAll performs the personalized all-to-all exchange at the heart of
// the communicate stages: out[q] is sent to processor q, and the returned
// slice holds in[q] received from every q (including this processor's own
// contribution, which never touches the network). All processors must call
// it with the same tag. The returned header array comes from the shared
// header free list; callers done with it may record.PutHeaders it.
func (pr *Proc) AllToAll(cnt *sim.Counters, tag int, out []record.Slice) ([]record.Slice, error) {
	if len(out) != pr.c.p {
		return nil, fmt.Errorf("cluster: all-to-all with %d buffers on %d processors", len(out), pr.c.p)
	}
	for q := 0; q < pr.c.p; q++ {
		if err := pr.Send(cnt, q, tag, out[q]); err != nil {
			return nil, err
		}
	}
	in := record.GetHeaders(pr.c.p)
	for q := 0; q < pr.c.p; q++ {
		recs, err := pr.Recv(q, tag)
		if err != nil {
			return nil, err
		}
		in[q] = recs
	}
	return in, nil
}

// Broadcast sends root's buffer to every processor and returns each
// processor's copy (the root's own buffer is returned as-is).
func (pr *Proc) Broadcast(cnt *sim.Counters, root, tag int, recs record.Slice) (record.Slice, error) {
	if pr.rank == root {
		for q := 0; q < pr.c.p; q++ {
			if q == root {
				continue
			}
			cp := record.Make(recs.Len(), recs.Size)
			cp.Copy(recs)
			if err := pr.Send(cnt, q, tag, cp); err != nil {
				return record.Slice{}, err
			}
		}
		return recs, nil
	}
	return pr.Recv(root, tag)
}

// Gather collects every processor's buffer at root; non-roots receive nil.
func (pr *Proc) Gather(cnt *sim.Counters, root, tag int, recs record.Slice) ([]record.Slice, error) {
	if err := pr.Send(cnt, root, tag, recs); err != nil {
		return nil, err
	}
	if pr.rank != root {
		return nil, nil
	}
	all := make([]record.Slice, pr.c.p)
	for q := 0; q < pr.c.p; q++ {
		r, err := pr.Recv(q, tag)
		if err != nil {
			return nil, err
		}
		all[q] = r
	}
	return all, nil
}

// AllReduceUint64 folds one uint64 per processor with op (assumed
// associative and commutative) and returns the result on every processor.
// It rides on the record fabric with 8-byte records.
func (pr *Proc) AllReduceUint64(cnt *sim.Counters, tag int, x uint64, op func(a, b uint64) uint64) (uint64, error) {
	buf := record.Make(1, record.MinSize)
	buf.SetKey(0, x)
	all, err := pr.Gather(cnt, 0, tag, buf)
	if err != nil {
		return 0, err
	}
	var result record.Slice
	if pr.rank == 0 {
		acc := all[0].Key(0)
		for q := 1; q < pr.c.p; q++ {
			acc = op(acc, all[q].Key(0))
		}
		res := record.Make(1, record.MinSize)
		res.SetKey(0, acc)
		result, err = pr.Broadcast(cnt, 0, tag+1, res)
	} else {
		result, err = pr.Broadcast(cnt, 0, tag+1, record.Slice{})
	}
	if err != nil {
		return 0, err
	}
	return result.Key(0), nil
}

// Run executes fn as rank 0..p−1 on p goroutine processors and waits for
// all of them. The first failure (error or panic) aborts the cluster,
// unblocking peers; Run returns that first failure.
func Run(p int, fn func(*Proc) error) error {
	return RunCtx(context.Background(), p, fn)
}

// RunCtx is Run under a context: when ctx is cancelled the whole fabric is
// aborted — every processor blocked in a send, receive, collective or
// barrier unblocks with ErrAborted — and RunCtx returns an error wrapping
// ctx's cause (so errors.Is(err, context.Canceled) and DeadlineExceeded
// work) once every processor goroutine has unwound. No goroutine outlives
// the call.
func RunCtx(ctx context.Context, p int, fn func(*Proc) error) error {
	c := New(p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	// The watcher turns a context cancellation into a fabric abort; done is
	// closed after all ranks unwind so the watcher never outlives RunCtx.
	done := make(chan struct{})
	if ctx.Done() != nil {
		var watch sync.WaitGroup
		watch.Add(1)
		go func() {
			defer watch.Done()
			select {
			case <-ctx.Done():
				c.abort(ctx.Err())
			case <-done:
			}
		}()
		defer watch.Wait()
		defer close(done)
	}
	for rank := 0; rank < p; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[rank] = fmt.Errorf("cluster: rank %d panicked: %v", rank, r)
					c.abort(errs[rank])
				}
			}()
			if err := fn(&Proc{rank: rank, c: c}); err != nil {
				errs[rank] = err
				c.abort(err)
			}
		}(rank)
	}
	wg.Wait()
	// Prefer a non-abort error (the root cause) over cascaded aborts.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, ErrAborted) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		// Reached only when EVERY failing rank reported a cascaded abort —
		// a genuine root-cause error would have been returned by the loop
		// above. The abort's recorded cause can then only be one supplied
		// from outside the ranks: the watcher's ctx.Err(). Attribute the
		// failure to it so callers see context.Canceled/DeadlineExceeded.
		c.barrierMu.Lock()
		cause := c.abortCause
		c.barrierMu.Unlock()
		if cause != nil && !errors.Is(cause, ErrAborted) {
			return fmt.Errorf("%w: %w", ErrAborted, cause)
		}
	}
	return first
}
