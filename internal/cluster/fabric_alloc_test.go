package cluster

import (
	"sync"
	"testing"

	"colsort/internal/record"
)

// TestAllToAllPlanZeroAllocSteadyState pins the ownership-transfer
// contract's performance half: once the pools, header free lists and the
// exchange board are warm, a full planned all-to-all round on the
// zero-copy fabric — pack, exchange, adopt, recycle — performs no
// allocator work at all on any processor.
func TestAllToAllPlanZeroAllocSteadyState(t *testing.T) {
	const P, r, z = 4, 256, 32
	c := New(P)
	pools := record.NewPools(P)

	// A plan with single-record extents (the worst packing granularity).
	plan := SendPlan{Counts: make([]int32, P)}
	for i := 0; i < r; i++ {
		d := int32(i % P)
		plan.Counts[d]++
		plan.Exts = append(plan.Exts, Extent{Dst: d, Count: 1})
	}

	start := make([]chan int, P)
	for p := range start {
		start[p] = make(chan int)
	}
	done := make(chan error, P)
	var wg sync.WaitGroup
	for p := 0; p < P; p++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			pr := &Proc{rank: rank, c: c}
			src := pools[rank].Get(r, z)
			for tag := range start[rank] {
				in, err := pr.AllToAllPlan(nil, tag, src, &plan, pools[rank])
				if err == nil {
					for _, m := range in {
						pools[rank].Put(m)
					}
					record.PutHeaders(in)
				}
				done <- err
			}
		}(p)
	}

	tag := 0
	round := func() {
		for p := 0; p < P; p++ {
			start[p] <- tag
		}
		for p := 0; p < P; p++ {
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		}
		tag++
	}
	round()
	round() // warm pools, headers and the exchange free list
	allocs := testing.AllocsPerRun(20, round)
	if allocs > 0 {
		t.Errorf("%v allocs per warm planned all-to-all round, want 0", allocs)
	}
	for p := range start {
		close(start[p])
	}
	wg.Wait()
}

// TestFabricAliasing verifies the transport semantics behind the two
// fabrics: zero-copy hands the receiver the sender's very buffer, copying
// hands it different backing memory with identical contents.
func TestFabricAliasing(t *testing.T) {
	for _, fabric := range []Fabric{ZeroCopy, Copying} {
		t.Run(fabric.String(), func(t *testing.T) {
			sent := make(chan *byte, 1)
			err := RunCtxFabric(t.Context(), 2, fabric, func(pr *Proc) error {
				if pr.Rank() == 0 {
					buf := record.Make(4, 16)
					buf.SetKey(0, 7)
					sent <- &buf.Data[0]
					return pr.Send(nil, 1, 9, buf)
				}
				msg, err := pr.Recv(0, 9)
				if err != nil {
					return err
				}
				if msg.Key(0) != 7 {
					t.Errorf("%v fabric: received key %d, want 7", fabric, msg.Key(0))
				}
				aliased := &msg.Data[0] == <-sent
				if fabric == ZeroCopy && !aliased {
					t.Errorf("zero-copy fabric copied the payload")
				}
				if fabric == Copying && aliased {
					t.Errorf("copying fabric aliased the sender's buffer")
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
