package cluster

import (
	"errors"
	"fmt"
	"testing"

	"colsort/internal/record"
	"colsort/internal/sim"
)

func TestGroupValidation(t *testing.T) {
	err := Run(4, func(pr *Proc) error {
		if _, err := NewGroup(pr, []int{0, 1, 9}); err == nil {
			return errors.New("out-of-range member accepted")
		}
		if _, err := NewGroup(pr, []int{0, 0, 1, 2, 3}); err == nil {
			return errors.New("duplicate member accepted")
		}
		peer := (pr.Rank() + 1) % 4
		if _, err := NewGroup(pr, []int{peer}); err == nil {
			return errors.New("group without the caller accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContiguousGroupExchange(t *testing.T) {
	// Two groups of 2 on a 4-processor cluster, doing independent
	// all-to-alls with the same tag: the groups must not cross-talk.
	err := Run(4, func(pr *Proc) error {
		var cnt sim.Counters
		base := (pr.Rank() / 2) * 2
		g, err := ContiguousGroup(pr, base, 2)
		if err != nil {
			return err
		}
		if g.NProcs() != 2 {
			return fmt.Errorf("group size %d", g.NProcs())
		}
		if g.Global(g.Rank()) != pr.Rank() {
			return errors.New("rank translation broken")
		}
		out := make([]record.Slice, 2)
		for d := range out {
			out[d] = record.Make(1, 8)
			out[d].SetKey(0, uint64(100*base+10*g.Rank()+d))
		}
		in, err := g.AllToAll(&cnt, 7, out)
		if err != nil {
			return err
		}
		for s := range in {
			want := uint64(100*base + 10*s + g.Rank())
			if in[s].Key(0) != want {
				return fmt.Errorf("rank %d got %d from %d, want %d (cross-group leak?)",
					pr.Rank(), in[s].Key(0), s, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonContiguousGroup(t *testing.T) {
	// A group of the even ranks exchanging while odd ranks idle.
	err := Run(4, func(pr *Proc) error {
		if pr.Rank()%2 == 1 {
			return nil
		}
		var cnt sim.Counters
		g, err := NewGroup(pr, []int{0, 2})
		if err != nil {
			return err
		}
		m := record.Make(1, 8)
		m.SetKey(0, uint64(pr.Rank()))
		if err := g.Send(&cnt, 1-g.Rank(), 3, m); err != nil {
			return err
		}
		got, err := g.Recv(1-g.Rank(), 3)
		if err != nil {
			return err
		}
		if got.Key(0) != uint64(2-pr.Rank()) {
			return fmt.Errorf("got %d", got.Key(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupCollectives(t *testing.T) {
	err := Run(4, func(pr *Proc) error {
		var cnt sim.Counters
		g, err := ContiguousGroup(pr, 0, 4)
		if err != nil {
			return err
		}
		var payload record.Slice
		if g.Rank() == 1 {
			payload = record.Make(1, 8)
			payload.SetKey(0, 55)
		}
		got, err := g.Broadcast(&cnt, 1, 20, payload)
		if err != nil {
			return err
		}
		if got.Key(0) != 55 {
			return fmt.Errorf("broadcast got %d", got.Key(0))
		}
		mine := record.Make(1, 8)
		mine.SetKey(0, uint64(g.Rank()))
		all, err := g.Gather(&cnt, 2, 21, mine)
		if err != nil {
			return err
		}
		if g.Rank() == 2 {
			for s := range all {
				if all[s].Key(0) != uint64(s) {
					return fmt.Errorf("gather slot %d = %d", s, all[s].Key(0))
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupRangeChecks(t *testing.T) {
	err := Run(2, func(pr *Proc) error {
		var cnt sim.Counters
		g, err := ContiguousGroup(pr, 0, 2)
		if err != nil {
			return err
		}
		if err := g.Send(&cnt, 5, 0, record.Slice{}); err == nil {
			return errors.New("send to group rank 5 accepted")
		}
		if _, err := g.Recv(-1, 0); err == nil {
			return errors.New("recv from group rank -1 accepted")
		}
		if _, err := g.AllToAll(&cnt, 0, make([]record.Slice, 3)); err == nil {
			return errors.New("wrong all-to-all width accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
