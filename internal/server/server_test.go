package server

// Loopback end-to-end tests of the wire front-end: every test boots a real
// HTTP server (httptest) over a real Engine and talks to it with a real
// client, so the streaming, disconnect and drain behavior under test is the
// net/http behavior production sees — not a ResponseRecorder approximation.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"colsort"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// Small enough to keep the suite fast, small enough that 3× the columnsort
// bound (the hierarchical path) is still only a few MiB over the wire.
const testZ = 32

func testBase(scratch string) colsort.Config {
	return colsort.Config{Procs: 2, MemPerProc: 256, RecordSize: testZ, Async: true, Dir: scratch}
}

type testEnv struct {
	srv     *Server
	ts      *httptest.Server
	eng     *colsort.Engine
	scratch string
}

// newEnv boots an engine and a loopback HTTP server over it, tearing both
// down (listener first, then a full drain) when the test finishes.
func newEnv(t *testing.T, ecfg colsort.EngineConfig, scfg Config) *testEnv {
	t.Helper()
	eng, err := colsort.NewEngine(ecfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close() // waits for in-flight handlers, closes idle client conns
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(dctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return &testEnv{srv: srv, ts: ts, eng: eng, scratch: ecfg.Dir}
}

// makeInput builds n seeded records of testZ bytes.
func makeInput(n int64, seed uint64) []byte {
	raw := record.Make(int(n), testZ)
	record.Fill(raw, record.Uniform{Seed: seed}, 0)
	return raw.Data
}

// refSort sorts input on a private local Sorter — the reference the wire
// path must match byte for byte.
func refSort(t *testing.T, dir string, input []byte, opts ...colsort.Option) []byte {
	t.Helper()
	cfg := testBase(filepath.Join(dir, "ref-scratch"))
	s, err := colsort.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	res, err := s.Sort(context.Background(),
		colsort.FromReader(bytes.NewReader(input), int64(len(input)/testZ)),
		colsort.ToWriter(&out), opts...)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
	return out.Bytes()
}

// getJob fetches one job's state over the wire.
func getJob(t *testing.T, env *testEnv, id string) jobInfo {
	t.Helper()
	resp, err := env.ts.Client().Get(env.ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%s: status %d", id, resp.StatusCode)
	}
	var info jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitJobState polls until the job reaches the wanted state (failing fast
// if it lands on a different terminal state).
func waitJobState(t *testing.T, env *testEnv, id, want string) jobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		info := getJob(t, env, id)
		if info.State == want {
			return info
		}
		if info.State == jobDone || info.State == jobFailed {
			t.Fatalf("job %s reached %q (error %q), want %q", id, info.State, info.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q, want %q", id, info.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamSortRoundTrip is the tentpole acceptance test: POST /v1/sort
// streams the body through the engine and back, byte-identical to a local
// reference sort — below the bound (single columnsort) and 3× above it
// (the hierarchical spill-and-merge path), ascending and descending.
func TestStreamSortRoundTrip(t *testing.T) {
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	env := newEnv(t, colsort.EngineConfig{Config: testBase(scratch)}, Config{})
	bound := env.eng.MaxRecords(colsort.Threaded)

	descKey := colsort.KeySpec{Offset: 8, Width: 8, Order: colsort.Descending}
	cases := []struct {
		name  string
		n     int64
		query string
		opts  []colsort.Option
		hier  bool
	}{
		{"below-bound asc", 1000, "", nil, false},
		{"below-bound desc", 1000, "?key-offset=8&key-width=8&order=desc", []colsort.Option{colsort.WithKeySpec(descKey)}, false},
		{"above-bound asc", 3 * bound, "", nil, true},
		{"above-bound desc", 3 * bound, "?key-offset=8&key-width=8&order=desc", []colsort.Option{colsort.WithKeySpec(descKey)}, true},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			input := makeInput(tc.n, uint64(200+i))
			want := refSort(t, filepath.Join(dir, fmt.Sprintf("ref%d", i)), input, tc.opts...)

			resp, err := env.ts.Client().Post(env.ts.URL+"/v1/sort"+tc.query,
				"application/octet-stream", bytes.NewReader(input))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if got := resp.ContentLength; got != tc.n*testZ {
				t.Errorf("Content-Length %d, want %d", got, tc.n*testZ)
			}
			jobID := resp.Header.Get("X-Colsort-Job")
			if jobID == "" {
				t.Error("no X-Colsort-Job header")
			}
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("wire output differs from local reference (%d vs %d bytes)", len(got), len(want))
			}

			// The registry's view: done, with a result summary whose shape
			// matches the path taken.
			info := getJob(t, env, jobID)
			if info.State != jobDone || !info.Streaming || info.Result == nil {
				t.Fatalf("job after success: %+v", info)
			}
			if info.Result.Records != tc.n {
				t.Errorf("summary records %d, want %d", info.Result.Records, tc.n)
			}
			if hier := info.Result.Merge != nil; hier != tc.hier {
				t.Errorf("hierarchical=%v, want %v (merge stats %+v)", hier, tc.hier, info.Result.Merge)
			}
		})
	}
}

// TestStreamSortRejections covers the strict request validation of the
// streaming endpoint: every bad request is refused with 400 and a JSON
// error before a single record enters the engine.
func TestStreamSortRejections(t *testing.T) {
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(t.TempDir(), "scratch"))}, Config{})

	post := func(query string, body io.Reader) *http.Response {
		t.Helper()
		resp, err := env.ts.Client().Post(env.ts.URL+"/v1/sort"+query, "application/octet-stream", body)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name    string
		query   string
		body    io.Reader
		wantMsg string
	}{
		{"length not a record multiple", "", bytes.NewReader(make([]byte, testZ+1)), "not a positive multiple"},
		{"empty body", "", bytes.NewReader(nil), "not a positive multiple"},
		{"records disagrees with length", "?records=3", bytes.NewReader(make([]byte, testZ)), "disagrees with Content-Length"},
		{"records not positive", "?records=0", bytes.NewReader(make([]byte, testZ)), "not a positive integer"},
		{"unknown option", "?colour=red", bytes.NewReader(make([]byte, testZ)), "unknown option"},
		{"conflicting options", "?alg=hybrid&group=2&max-memory-mib=1", bytes.NewReader(make([]byte, testZ)), "conflicts with alg=hybrid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(tc.query, tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e apiError
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(e.Error, tc.wantMsg) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantMsg)
			}
		})
	}

	// A chunked upload (unknown length) must name the ?records= escape hatch.
	pr, pw := io.Pipe()
	pw.Close() //nolint:errcheck // empty chunked body
	resp := post("", pr)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("chunked without records: status %d, want 400", resp.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "records=N") {
		t.Errorf("chunked error %q does not point at ?records=N", e.Error)
	}
}

// TestClientDisconnectCancelsSort is the leak acceptance test: a client
// that aborts its upload mid-stream must cancel the job promptly, and the
// server must release everything — goroutines AND the scratch files the
// hierarchical path had already spilled. CheckLeaks is registered before
// the engine exists, so the post-drain world must look exactly like the
// pre-test world.
func TestClientDisconnectCancelsSort(t *testing.T) {
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	testutil.CheckLeaks(t, scratch)
	env := newEnv(t, colsort.EngineConfig{Config: testBase(scratch)}, Config{})
	bound := env.eng.MaxRecords(colsort.Threaded)

	cases := []struct {
		name string
		n    int64
		// A below-bound sort ingests its whole input before the first
		// progress event, so a half-parked upload never leaves "queued";
		// the hierarchical path has finished (and spilled) batch 1 by the
		// half-way mark, so there we insist on observing "running".
		waitState string
	}{
		{"below-bound", 1000, jobQueued},
		// 3× the bound with ~half uploaded: batch 1 has been sorted and
		// spilled to scratch when the client vanishes.
		{"above-bound", 3 * bound, jobRunning},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			input := makeInput(tc.n, uint64(300+i))
			half := (tc.n / 2) * testZ

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			pr, pw := io.Pipe()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				env.ts.URL+fmt.Sprintf("/v1/sort?records=%d", tc.n), pr)
			if err != nil {
				t.Fatal(err)
			}

			errCh := make(chan error, 1)
			go func() {
				resp, err := env.ts.Client().Do(req)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()              //nolint:errcheck
					err = fmt.Errorf("request unexpectedly succeeded with status %d", resp.StatusCode)
				}
				errCh <- err
			}()
			if _, err := pw.Write(input[:half]); err != nil {
				t.Fatal(err)
			}

			// Wait until the job is as far along as a parked upload lets it
			// get, so the abort lands mid-sort, not pre-registration.
			var id string
			deadline := time.Now().Add(30 * time.Second)
			for id == "" {
				for _, info := range env.srv.jobs.list() {
					if info.Streaming && (info.State == tc.waitState || info.State == jobRunning) {
						id = info.ID
					}
				}
				if time.Now().After(deadline) {
					t.Fatalf("job never reached %q", tc.waitState)
				}
				time.Sleep(2 * time.Millisecond)
			}

			cancel()   // abort the HTTP request mid-stream
			pw.Close() //nolint:errcheck // unblock any writer-side copy

			select {
			case err := <-errCh:
				if err == nil || !strings.Contains(err.Error(), "context canceled") {
					t.Fatalf("client error %v, want context canceled", err)
				}
			case <-time.After(30 * time.Second):
				t.Fatal("aborted request did not return within the deadline")
			}
			entry := env.srv.jobs.get(id)
			select {
			case <-entry.done:
			case <-time.After(30 * time.Second):
				t.Fatal("job did not reach a terminal state after the disconnect")
			}
			if info, _ := entry.snapshot(); info.State != jobFailed {
				t.Fatalf("job state %q after disconnect, want failed", info.State)
			}
		})
	}
	// The deferred drain + CheckLeaks now assert no goroutine and no
	// scratch file survived either abort.
}

// TestStreamSortBusy pins the saturation contract: with -jobs 1 and one
// upload parked mid-stream, the next submission is refused with 429 and a
// Retry-After header, and the parked job still completes correctly.
func TestStreamSortBusy(t *testing.T) {
	dir := t.TempDir()
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch"))}, Config{MaxJobs: 1})

	const n = int64(1000)
	input := makeInput(n, 42)
	want := refSort(t, dir, input)

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, env.ts.URL+fmt.Sprintf("/v1/sort?records=%d", n), pr)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := env.ts.Client().Do(req)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			resCh <- result{nil, fmt.Errorf("status %d", resp.StatusCode)}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resCh <- result{body, err}
	}()

	// Park the upload mid-stream: the slot is held once the handler passed
	// validation, which we observe through the semaphore itself.
	if _, err := pw.Write(input[:n/2*testZ]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(env.srv.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first upload never took the jobs slot")
		}
		time.Sleep(2 * time.Millisecond)
	}

	resp, err := env.ts.Client().Post(env.ts.URL+"/v1/sort", "application/octet-stream",
		bytes.NewReader(makeInput(10, 7)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submission: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	// Release the parked upload and verify it was unharmed by the refusal.
	if _, err := pw.Write(input[n/2*testZ:]); err != nil {
		t.Fatal(err)
	}
	pw.Close() //nolint:errcheck
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !bytes.Equal(res.body, want) {
		t.Fatal("parked upload's output differs from the reference")
	}
}

// TestFileJobLifecycle walks the asynchronous job API end to end: submit a
// server-side file sort, watch it through the states, and verify the output
// file matches the local reference; then the rejection surface.
func TestFileJobLifecycle(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		t.Fatal(err)
	}
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch"))},
		Config{DataDir: data})
	bound := env.eng.MaxRecords(colsort.Threaded)

	n := 3 * bound // hierarchical, so progress has both sort and merge phases
	input := makeInput(n, 77)
	if err := os.WriteFile(filepath.Join(data, "in.dat"), input, 0o644); err != nil {
		t.Fatal(err)
	}
	descKey := colsort.KeySpec{Offset: 8, Width: 8, Order: colsort.Descending}
	want := refSort(t, dir, input, colsort.WithKeySpec(descKey))

	submit := func(body string) *http.Response {
		t.Helper()
		resp, err := env.ts.Client().Post(env.ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := submit(`{"input":"in.dat","output":"out.dat","options":{"key-offset":"8","key-width":"8","order":"desc"}}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var info jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.ID == "" || info.Input != "in.dat" || info.Output != "out.dat" {
		t.Fatalf("submitted job: %+v", info)
	}

	final := waitJobState(t, env, info.ID, jobDone)
	if final.Result == nil || final.Result.Records != n || final.Result.Merge == nil {
		t.Fatalf("final result summary: %+v", final.Result)
	}
	got, err := os.ReadFile(filepath.Join(data, "out.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("file job output differs from local reference")
	}

	// The listing includes the job.
	listResp, err := env.ts.Client().Get(env.ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list []jobInfo
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, li := range list {
		found = found || li.ID == info.ID
	}
	if !found {
		t.Errorf("GET /v1/jobs does not list %s", info.ID)
	}

	// Rejection surface: traversal, absolute paths, missing inputs, bad
	// options, unknown ids.
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"traversal", `{"input":"../in.dat","output":"out.dat"}`, http.StatusBadRequest},
		{"absolute", `{"input":"/etc/passwd","output":"out.dat"}`, http.StatusBadRequest},
		{"missing input", `{"input":"nope.dat","output":"out.dat"}`, http.StatusBadRequest},
		{"empty output", `{"input":"in.dat","output":""}`, http.StatusBadRequest},
		{"bad option", `{"input":"in.dat","output":"o.dat","options":{"alg":"quicksort"}}`, http.StatusBadRequest},
		{"unknown field", `{"input":"in.dat","output":"o.dat","priority":9}`, http.StatusBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp := submit(tc.body)
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d", resp.StatusCode, tc.want)
			}
		})
	}
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/progress"} {
		resp, err := env.ts.Client().Get(env.ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestFileJobsDisabled: without -data the endpoint refuses outright — the
// streaming endpoint is the only surface that exists by default.
func TestFileJobsDisabled(t *testing.T) {
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(t.TempDir(), "scratch"))}, Config{})
	resp, err := env.ts.Client().Post(env.ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"input":"a","output":"b"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status %d, want 403", resp.StatusCode)
	}
}

// TestCancelWhileQueued exercises DELETE against a job the engine has NOT
// admitted yet: a parked streaming upload holds the engine's whole memory
// budget, a file job queues behind it, and cancelling the queued job must
// fail it promptly — without disturbing the job holding the lease.
func TestCancelWhileQueued(t *testing.T) {
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	testutil.CheckLeaks(t, scratch)
	data := filepath.Join(dir, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		t.Fatal(err)
	}

	base := testBase(scratch)
	probe, err := colsort.New(base)
	if err != nil {
		t.Fatal(err)
	}
	bound := probe.MaxRecords(colsort.Threaded)
	// Budget = exactly one hierarchical lease: the second job must queue.
	env := newEnv(t, colsort.EngineConfig{Config: base, TotalMemory: bound * testZ},
		Config{DataDir: data})

	n := 3 * bound
	input := makeInput(n, 11)
	want := refSort(t, dir, input)
	if err := os.WriteFile(filepath.Join(data, "queued-in.dat"), makeInput(1000, 12), 0o644); err != nil {
		t.Fatal(err)
	}

	// Job 1: a streaming upload parked halfway — admitted (it holds the
	// lease and has spilled batch 1) but unable to finish until we let it.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, env.ts.URL+fmt.Sprintf("/v1/sort?records=%d", n), pr)
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		body []byte
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := env.ts.Client().Do(req)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		resCh <- result{body, err}
	}()
	if _, err := pw.Write(input[:(n/2)*testZ]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		running := false
		for _, info := range env.srv.jobs.list() {
			running = running || (info.Streaming && info.State == jobRunning)
		}
		if running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("parked upload never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Job 2 queues behind the exhausted budget...
	resp, err := env.ts.Client().Post(env.ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"input":"queued-in.dat","output":"queued-out.dat"}`))
	if err != nil {
		t.Fatal(err)
	}
	var queued jobInfo
	err = json.NewDecoder(resp.Body).Decode(&queued)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		t.Fatal(err)
	}
	if info := getJob(t, env, queued.ID); info.State != jobQueued {
		t.Fatalf("second job state %q, want queued (budget should be exhausted)", info.State)
	}

	// ...and DELETE fails it promptly, straight out of the queue.
	delReq, err := http.NewRequest(http.MethodDelete, env.ts.URL+"/v1/jobs/"+queued.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := env.ts.Client().Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close() //nolint:errcheck
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", delResp.StatusCode)
	}
	final := waitJobState(t, env, queued.ID, jobFailed)
	if !strings.Contains(final.Error, "context canceled") {
		t.Errorf("cancelled-while-queued error %q, want a context cancellation", final.Error)
	}
	if _, err := os.Stat(filepath.Join(data, "queued-out.dat")); !os.IsNotExist(err) {
		t.Errorf("cancelled job left an output file behind (stat err %v)", err)
	}

	// The lease holder was untouched: release it and verify its output.
	if _, err := pw.Write(input[(n/2)*testZ:]); err != nil {
		t.Fatal(err)
	}
	pw.Close() //nolint:errcheck
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !bytes.Equal(res.body, want) {
		t.Fatal("lease-holding upload's output differs from the reference")
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	event string
	data  string
}

// readSSE consumes an SSE stream until the "done" event (or EOF).
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	// SSE is line-oriented: "event: X", "data: Y", blank line dispatches.
	br := newLineReader(r)
	for {
		line, err := br.line()
		if err != nil {
			return events
		}
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				events = append(events, cur)
				if cur.event == "done" {
					return events
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, ":"): // comment / keepalive
		default:
			t.Errorf("unexpected SSE line %q", line)
		}
	}
}

// lineReader wraps bufio so a final chunk delivered together with EOF
// (common on a closing SSE stream) still yields its complete lines.
type lineReader struct{ br *bufio.Reader }

func newLineReader(r io.Reader) *lineReader { return &lineReader{br: bufio.NewReader(r)} }

func (l *lineReader) line() (string, error) {
	s, err := l.br.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(s, "\r\n"), nil
}

// TestJobProgressSSE subscribes to a hierarchical job's progress push and
// expects sort-phase events, merge-phase events, and the terminal "done"
// event carrying the result summary; a late subscriber to the same
// finished job gets "done" immediately. The job is a streaming upload
// parked on a pipe so the subscription deterministically lands mid-sort —
// the push coalesces to the LATEST event, so a subscriber that arrives
// after completion would only ever see the final one.
func TestJobProgressSSE(t *testing.T) {
	dir := t.TempDir()
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch"))}, Config{})
	bound := env.eng.MaxRecords(colsort.Threaded)
	n := 3 * bound
	input := makeInput(n, 5)

	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, env.ts.URL+fmt.Sprintf("/v1/sort?records=%d", n), pr)
	if err != nil {
		t.Fatal(err)
	}
	upErr := make(chan error, 1)
	go func() {
		resp, err := env.ts.Client().Do(req)
		if err != nil {
			upErr <- err
			return
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		upErr <- err
	}()

	// Park the upload half way: batch 1 is sorted and spilled, so the
	// latest coalesced event is a sort-phase one, and the merge cannot
	// start until we release the rest.
	if _, err := pw.Write(input[:(n/2)*testZ]); err != nil {
		t.Fatal(err)
	}
	var info jobInfo
	deadline := time.Now().Add(30 * time.Second)
	for info.ID == "" {
		for _, li := range env.srv.jobs.list() {
			if li.Streaming && li.State == jobRunning {
				info = li
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("parked upload never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sub, err := env.ts.Client().Get(env.ts.URL + "/v1/jobs/" + info.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Body.Close()
	if ct := sub.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	// Release the rest of the input and read the push to completion.
	if _, err := pw.Write(input[(n/2)*testZ:]); err != nil {
		t.Fatal(err)
	}
	pw.Close() //nolint:errcheck
	events := readSSE(t, sub.Body)
	if err := <-upErr; err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("SSE stream ended without a done event (%d events)", len(events))
	}
	phases := map[string]int{}
	for _, ev := range events[:len(events)-1] {
		if ev.event != "progress" {
			t.Fatalf("unexpected event %q before done", ev.event)
		}
		var pe progressEvent
		if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
			t.Fatalf("progress data %q: %v", ev.data, err)
		}
		if pe.Percent < 0 || pe.Percent > 100 {
			t.Errorf("percent %v out of range in %q", pe.Percent, ev.data)
		}
		phases[pe.Phase]++
	}
	if phases["sort"] == 0 || phases["merge"] == 0 {
		t.Errorf("hierarchical job pushed phases %v, want both sort and merge", phases)
	}
	var done jobInfo
	if err := json.Unmarshal([]byte(events[len(events)-1].data), &done); err != nil {
		t.Fatal(err)
	}
	if done.State != jobDone || done.Result == nil || done.Result.Records != n {
		t.Fatalf("done event payload: %+v", done)
	}

	// Late subscriber: the job is finished; done arrives immediately.
	late, err := env.ts.Client().Get(env.ts.URL + "/v1/jobs/" + info.ID + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Body.Close()
	lateEvents := readSSE(t, late.Body)
	if len(lateEvents) == 0 || lateEvents[len(lateEvents)-1].event != "done" {
		t.Fatalf("late subscriber got %d events, want a terminal done", len(lateEvents))
	}
}

// TestDrain pins the shutdown semantics: BeginDrain flips /healthz to 503
// and refuses new work on both sort endpoints while /metrics stays up (so
// the last scrape still lands), and Drain completes, closing the engine.
func TestDrain(t *testing.T) {
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(t.TempDir(), "scratch"))}, Config{})

	hz, err := env.ts.Client().Get(env.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close() //nolint:errcheck
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", hz.StatusCode)
	}

	env.srv.BeginDrain()
	for _, tc := range []struct {
		method, path string
		body         io.Reader
		want         int
	}{
		{http.MethodGet, "/healthz", nil, http.StatusServiceUnavailable},
		{http.MethodPost, "/v1/sort", bytes.NewReader(make([]byte, testZ)), http.StatusServiceUnavailable},
		{http.MethodPost, "/v1/jobs", strings.NewReader(`{"input":"a","output":"b"}`), http.StatusServiceUnavailable},
		{http.MethodGet, "/metrics", nil, http.StatusOK},
	} {
		req, err := http.NewRequest(tc.method, env.ts.URL+tc.path, tc.body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := env.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s while draining: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
		if tc.path == "/metrics" && !strings.Contains(string(body), "colsort_server_draining 1") {
			t.Error("metrics while draining do not report colsort_server_draining 1")
		}
	}

	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := env.srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Engine closed: a sort through it fails with ErrEngineClosed.
	_, err = env.eng.Sort(context.Background(),
		colsort.FromReader(bytes.NewReader(make([]byte, testZ)), 1),
		colsort.ToWriter(io.Discard))
	if err == nil {
		t.Fatal("engine accepted a sort after Drain")
	}
}
