package server

// Tests of the server's durable-job layer (DESIGN.md §13): the jobs WAL's
// replay and compaction, boot-time re-adoption of interrupted file jobs —
// both a queued job restarted from scratch and a mid-merge job resumed from
// its checkpoint manifest — the orphan scratch sweep, and the wire mapping
// of the deadline option. A "crash" here is durable state written by one
// engine/server and recovered by a fresh one over the same directories; the
// process-level SIGKILL version of the same contract lives in
// scripts/crash_resume_e2e.sh.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"colsort"
)

func TestJobsWALReplayAndCompaction(t *testing.T) {
	data := t.TempDir()
	wal, err := openJobsWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	recs := []walRecord{
		{ID: "j000001", State: jobQueued, Input: "a.dat", Output: "a.out", Options: map[string]string{"order": "desc"}},
		{ID: "j000001", State: jobRunning},
		{ID: "j000002", State: jobQueued, Input: "b.dat", Output: "b.out"},
		{ID: "j000001", State: jobDone},
		{ID: "j000003", State: jobQueued, Input: "c.dat", Output: "c.out"},
		{ID: "j000003", State: jobRunning},
		{ID: "j000003", State: jobFailed, Error: "boom"},
	}
	for _, r := range recs {
		if err := wal.append(r); err != nil {
			t.Fatal(err)
		}
	}
	wal.close()
	path := filepath.Join(data, serverStateDir, jobsWALName)

	// A torn final line — the crash hit mid-append — must be ignored.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"id":"j000004","state":"que`)
	f.Close()

	got, err := replayJobsWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("replay returned %d jobs, want 3: %+v", len(got), got)
	}
	// First-seen order, last state, queued record's restart parameters kept.
	if got[0].ID != "j000001" || got[0].State != jobDone || got[0].Input != "a.dat" || got[0].Options["order"] != "desc" {
		t.Errorf("job 1 folded wrong: %+v", got[0])
	}
	if got[1].ID != "j000002" || got[1].State != jobQueued {
		t.Errorf("job 2 folded wrong: %+v", got[1])
	}
	if got[2].ID != "j000003" || got[2].State != jobFailed || got[2].Error != "boom" {
		t.Errorf("job 3 folded wrong: %+v", got[2])
	}

	// Compaction keeps exactly the pending set.
	if err := compactJobsWAL(data, []walRecord{got[1]}); err != nil {
		t.Fatal(err)
	}
	after, err := replayJobsWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0].ID != "j000002" || after[0].Input != "b.dat" {
		t.Fatalf("compacted WAL replays %+v, want only j000002", after)
	}

	if n := jobIDNum("j000042"); n != 42 {
		t.Errorf("jobIDNum(j000042) = %d", n)
	}
	if n := jobIDNum("weird"); n != 0 {
		t.Errorf("jobIDNum(weird) = %d, want 0", n)
	}
}

// scrapeMetric fetches /metrics and returns the named sample's value line.
func scrapeMetric(t *testing.T, env *testEnv, name string) string {
	t.Helper()
	resp, err := env.ts.Client().Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return line
		}
	}
	t.Fatalf("metric %s absent from /metrics", name)
	return ""
}

// TestBootReadoptsQueuedJob writes the durable state a crash leaves behind a
// job that never started — a WAL queued record and the input file — and
// boots a server over it: the job must run to completion under its ORIGINAL
// id, the output must match a reference sort with the persisted options, and
// fresh submissions must mint ids beyond the re-adopted one.
func TestBootReadoptsQueuedJob(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	if err := os.MkdirAll(data, 0o755); err != nil {
		t.Fatal(err)
	}
	input := makeInput(4096, 77)
	if err := os.WriteFile(filepath.Join(data, "in.dat"), input, 0o644); err != nil {
		t.Fatal(err)
	}
	wal, err := openJobsWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.append(walRecord{ID: "j000007", State: jobQueued,
		Input: "in.dat", Output: "out.dat", Options: map[string]string{"order": "desc"}}); err != nil {
		t.Fatal(err)
	}
	wal.close()

	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch"))},
		Config{DataDir: data})
	final := waitJobState(t, env, "j000007", jobDone)
	if final.Input != "in.dat" || final.Output != "out.dat" {
		t.Errorf("re-adopted job lost its paths: %+v", final)
	}
	want := refSort(t, dir, input, colsort.WithKeySpec(colsort.KeySpec{Order: colsort.Descending}))
	got, err := os.ReadFile(filepath.Join(data, "out.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("re-adopted job's output differs from the reference (persisted options not honored?)")
	}
	if line := scrapeMetric(t, env, "colsort_server_jobs_readopted_total"); line != "colsort_server_jobs_readopted_total 1" {
		t.Errorf("readopted metric: %q", line)
	}

	// The id sequence was seeded past the WAL's ids.
	body, _ := json.Marshal(jobRequest{Input: "in.dat", Output: "out2.dat"})
	resp, err := env.ts.Client().Post(env.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info jobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if jobIDNum(info.ID) <= 7 {
		t.Errorf("fresh submission minted %s, colliding with the re-adopted id space", info.ID)
	}
	waitJobState(t, env, info.ID, jobDone)
}

// TestBootResumesMidMergeJob is the strongest recovery claim over the wire:
// a checkpointed hierarchical job cancelled mid-merge (durable manifest, all
// runs spilled) is re-adopted at boot via Engine.Resume — finishing with the
// engine reporting adopted runs and the output byte-identical to the
// uninterrupted reference.
func TestBootResumesMidMergeJob(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	const id = "j000003"
	ckpt := filepath.Join(data, serverStateDir, "ckpt", id)
	if err := os.MkdirAll(data, 0o755); err != nil {
		t.Fatal(err)
	}

	// Interrupt a checkpointed sort mid-merge on a throwaway engine with the
	// SAME shape the server will boot with (Resume requires it).
	eng1, err := colsort.NewEngine(colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch1"))})
	if err != nil {
		t.Fatal(err)
	}
	bound := eng1.MaxRecords(colsort.Threaded)
	n := 4 * bound
	input := makeInput(n, 99)
	if err := os.WriteFile(filepath.Join(data, "in.dat"), input, 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	_, err = eng1.Sort(ctx, colsort.FromFile(filepath.Join(data, "in.dat")), colsort.Discard(),
		colsort.WithMergeFanIn(2), colsort.WithCheckpoint(ckpt),
		colsort.WithProgress(func(ev colsort.Progress) {
			if ev.Pass == 0 && ev.MergedRecords > 0 {
				once.Do(cancel)
			}
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted sort: err = %v, want context.Canceled", err)
	}
	eng1.Close()
	if _, err := os.Stat(filepath.Join(ckpt, "manifest.wal")); err != nil {
		t.Fatalf("no manifest survived the interruption: %v", err)
	}

	wal, err := openJobsWAL(data)
	if err != nil {
		t.Fatal(err)
	}
	wal.append(walRecord{ID: id, State: jobQueued, Input: "in.dat", Output: "out.dat",
		Options: map[string]string{"merge-fanin": "2"}})
	wal.append(walRecord{ID: id, State: jobRunning})
	wal.close()

	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch2"))},
		Config{DataDir: data})
	waitJobState(t, env, id, jobDone)

	want := refSort(t, dir, input)
	got, err := os.ReadFile(filepath.Join(data, "out.dat"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("resumed job's output differs from the uninterrupted reference")
	}
	st := env.eng.Stats()
	if st.JobsResumed != 1 || st.RunsResumed == 0 {
		t.Errorf("engine stats JobsResumed=%d RunsResumed=%d after a mid-merge re-adoption", st.JobsResumed, st.RunsResumed)
	}
	if line := scrapeMetric(t, env, "colsort_engine_runs_resumed_total"); line == "colsort_engine_runs_resumed_total 0" {
		t.Errorf("runs-resumed metric stayed zero: %q", line)
	}
	// Success retires the checkpoint directory.
	if _, err := os.Stat(filepath.Join(ckpt, "manifest.wal")); !os.IsNotExist(err) {
		t.Errorf("manifest survived the completed resume (stat err %v)", err)
	}
}

// TestBootSweepsOrphanScratch drops dead-process scratch into the engine's
// scratch directory and boots a server over it: the job-namespaced files
// must be gone, anything else untouched, and the sweep counted on /metrics.
func TestBootSweepsOrphanScratch(t *testing.T) {
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"job00001-disk000-g00001.dat", "job00042-store.dat"} {
		if err := os.WriteFile(filepath.Join(scratch, name), []byte("stale"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(scratch, "unrelated.txt"), []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	env := newEnv(t, colsort.EngineConfig{Config: testBase(scratch)}, Config{})
	for _, name := range []string{"job00001-disk000-g00001.dat", "job00042-store.dat"} {
		if _, err := os.Stat(filepath.Join(scratch, name)); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived the boot sweep (stat err %v)", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(scratch, "unrelated.txt")); err != nil {
		t.Errorf("sweep removed a non-job file: %v", err)
	}
	if line := scrapeMetric(t, env, "colsort_orphan_scratch_cleaned_total"); line != "colsort_orphan_scratch_cleaned_total 2" {
		t.Errorf("orphan sweep metric: %q", line)
	}
}

// TestDeadlineParam covers the wire mapping of WithDeadline: strict
// validation of deadline-ms, and a streaming sort whose 1 ms deadline must
// fail cleanly before any output byte leaves.
func TestDeadlineParam(t *testing.T) {
	for _, bad := range []string{"0", "-5", "soon"} {
		if _, err := parseSortOptions(url.Values{"deadline-ms": {bad}}); err == nil {
			t.Errorf("deadline-ms=%q accepted", bad)
		}
	}
	if opts, err := parseSortOptions(url.Values{"deadline-ms": {"30000"}}); err != nil || len(opts) != 1 {
		t.Errorf("deadline-ms=30000: opts=%d err=%v", len(opts), err)
	}

	dir := t.TempDir()
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(dir, "scratch"))}, Config{})
	input := makeInput(1<<15, 5)
	resp, err := env.ts.Client().Post(env.ts.URL+"/v1/sort?deadline-ms=1",
		"application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("a 1 ms deadline sorted %d records successfully?", 1<<15)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "deadline") {
		t.Errorf("error body does not name the deadline: %s", body)
	}
	// The engine survives the deadline to serve the next request.
	resp2, err := env.ts.Client().Post(env.ts.URL+"/v1/sort",
		"application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("sort after a deadline failure: status %d", resp2.StatusCode)
	}
	got, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := refSort(t, dir, input); !bytes.Equal(got, want) {
		t.Error("sort after a deadline failure is not byte-identical to the reference")
	}
}
