package server

// Option mapping: the wire representation of a Sort call's functional
// options. Query parameters of POST /v1/sort (and, identically, the
// "options" object of a POST /v1/jobs submission) map one-to-one onto the
// colsort.With* constructors. The mapping is STRICT: unknown keys,
// repeated keys, malformed values and conflicting combinations are
// rejected with an error naming the offender — a typo must never silently
// select a default. DESIGN.md §11 holds the full table.

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"

	"colsort"
)

// sortParams is the closed set of wire option keys.
var sortParams = map[string]struct{}{
	"alg":               {},
	"group":             {},
	"deadline-ms":       {},
	"key-offset":        {},
	"key-width":         {},
	"order":             {},
	"padding":           {},
	"max-memory-mib":    {},
	"merge-fanin":       {},
	"run-formation":     {},
	"fabric":            {},
	"async":             {},
	"nowait":            {},
	"retries":           {},
	"retry-base-us":     {},
	"redo-budget":       {},
	"scrub":             {},
	"chaos":             {},
	"chaos-seed":        {},
	"chaos-p-transient": {},
	"chaos-p-bitflip":   {},
	"chaos-p-torn":      {},
}

// knownParamList renders the closed key set for error messages, sorted so
// the message is deterministic.
func knownParamList() string {
	keys := make([]string, 0, len(sortParams))
	for k := range sortParams {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// wireAlgorithms maps wire algorithm names onto the library's. The
// baseline I/O programs are deliberately absent: they produce unsorted
// output by design and have no business behind a sorting endpoint.
var wireAlgorithms = map[string]colsort.Algorithm{
	"threaded":       colsort.Threaded,
	"threaded-4pass": colsort.Threaded4,
	"subblock":       colsort.Subblock,
	"m-columnsort":   colsort.MColumn,
	"combined":       colsort.Combined,
	"hybrid":         colsort.Hybrid,
}

// parseSortOptions validates the wire options strictly and compiles them
// into colsort functional options. extra names caller-handled keys (e.g.
// "records" on the streaming endpoint) that are legal but contribute no
// option.
func parseSortOptions(q url.Values, extra ...string) ([]colsort.Option, error) {
	callerKeys := make(map[string]bool, len(extra))
	for _, k := range extra {
		callerKeys[k] = true
	}
	get := make(map[string]string, len(q))
	for k, vs := range q {
		if callerKeys[k] {
			continue
		}
		if _, ok := sortParams[k]; !ok {
			return nil, fmt.Errorf("unknown option %q (known: %s)", k, knownParamList())
		}
		if len(vs) != 1 {
			return nil, fmt.Errorf("option %q given %d times; each option may appear once", k, len(vs))
		}
		if vs[0] == "" {
			return nil, fmt.Errorf("option %q has an empty value", k)
		}
		get[k] = vs[0]
	}

	has := func(k string) bool { _, ok := get[k]; return ok }
	intOf := func(k string) (int64, error) {
		v, err := strconv.ParseInt(get[k], 10, 64)
		if err != nil {
			return 0, fmt.Errorf("option %q: %q is not an integer", k, get[k])
		}
		return v, nil
	}
	boolOf := func(k string) (bool, error) {
		v, err := strconv.ParseBool(get[k])
		if err != nil {
			return false, fmt.Errorf("option %q: %q is not a boolean", k, get[k])
		}
		return v, nil
	}
	floatOf := func(k string) (float64, error) {
		v, err := strconv.ParseFloat(get[k], 64)
		if err != nil {
			return 0, fmt.Errorf("option %q: %q is not a number", k, get[k])
		}
		return v, nil
	}

	var opts []colsort.Option

	// Algorithm selection. hybrid requires a group size; a group size
	// requires hybrid.
	alg, haveAlg := colsort.Threaded, false
	if has("alg") {
		a, ok := wireAlgorithms[get["alg"]]
		if !ok {
			names := make([]string, 0, len(wireAlgorithms))
			for n := range wireAlgorithms {
				names = append(names, n)
			}
			sort.Strings(names)
			return nil, fmt.Errorf("option %q: unknown algorithm %q (known: %s)", "alg", get["alg"], strings.Join(names, ", "))
		}
		alg, haveAlg = a, true
	}
	switch {
	case alg == colsort.Hybrid && !has("group"):
		return nil, fmt.Errorf("alg=hybrid requires a group size: pass group=G (2 ≤ G ≤ P/2)")
	case alg != colsort.Hybrid && has("group"):
		return nil, fmt.Errorf("option %q only applies to alg=hybrid", "group")
	case alg == colsort.Hybrid:
		g, err := intOf("group")
		if err != nil {
			return nil, err
		}
		opts = append(opts, colsort.WithHybridGroup(int(g)))
	case haveAlg:
		opts = append(opts, colsort.WithAlgorithm(alg))
	}

	// Key schema.
	var ks colsort.KeySpec
	haveKS := false
	if has("key-offset") {
		v, err := intOf("key-offset")
		if err != nil {
			return nil, err
		}
		if v < 0 {
			return nil, fmt.Errorf("option %q: must be ≥ 0", "key-offset")
		}
		ks.Offset, haveKS = int(v), true
	}
	if has("key-width") {
		v, err := intOf("key-width")
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("option %q: must be ≥ 1", "key-width")
		}
		ks.Width, haveKS = int(v), true
	}
	if has("order") {
		switch get["order"] {
		case "asc":
		case "desc":
			ks.Order = colsort.Descending
		default:
			return nil, fmt.Errorf("option %q: want \"asc\" or \"desc\", got %q", "order", get["order"])
		}
		haveKS = true
	}
	if haveKS {
		opts = append(opts, colsort.WithKeySpec(ks))
	}

	// Padding policy and the hierarchical knobs it conflicts with.
	if has("padding") {
		switch get["padding"] {
		case "auto":
			opts = append(opts, colsort.WithPadding(colsort.PadAuto))
		case "never":
			opts = append(opts, colsort.WithPadding(colsort.PadNever))
		default:
			return nil, fmt.Errorf("option %q: want \"auto\" or \"never\", got %q", "padding", get["padding"])
		}
	}
	if has("max-memory-mib") {
		if alg == colsort.Hybrid {
			return nil, fmt.Errorf("max-memory-mib conflicts with alg=hybrid: the hierarchical path supports only non-hybrid algorithms")
		}
		if get["padding"] == "never" {
			return nil, fmt.Errorf("max-memory-mib conflicts with padding=never: the hierarchical path requires automatic padding")
		}
		v, err := intOf("max-memory-mib")
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("option %q: must be ≥ 1", "max-memory-mib")
		}
		opts = append(opts, colsort.WithMaxMemory(v<<20))
	}
	if has("merge-fanin") {
		v, err := intOf("merge-fanin")
		if err != nil {
			return nil, err
		}
		if v < 2 {
			return nil, fmt.Errorf("option %q: must be ≥ 2", "merge-fanin")
		}
		opts = append(opts, colsort.WithMergeFanIn(int(v)))
	}
	if has("run-formation") {
		f, ok := colsort.RunFormationByName(get["run-formation"])
		if !ok {
			return nil, fmt.Errorf("option %q: want \"replacement-select\" or \"fixed-batch\", got %q", "run-formation", get["run-formation"])
		}
		opts = append(opts, colsort.WithRunFormation(f))
	}

	// Machine overrides (tri-state: absent inherits the engine's Config).
	if has("fabric") {
		switch get["fabric"] {
		case "zero-copy":
			opts = append(opts, colsort.WithFabric(colsort.FabricZeroCopy))
		case "copying":
			opts = append(opts, colsort.WithFabric(colsort.FabricCopying))
		default:
			return nil, fmt.Errorf("option %q: want \"zero-copy\" or \"copying\", got %q", "fabric", get["fabric"])
		}
	}
	if has("async") {
		v, err := boolOf("async")
		if err != nil {
			return nil, err
		}
		opts = append(opts, colsort.WithAsync(v))
	}
	if has("nowait") {
		v, err := boolOf("nowait")
		if err != nil {
			return nil, err
		}
		if v {
			opts = append(opts, colsort.WithNoWait())
		}
	}
	if has("deadline-ms") {
		v, err := intOf("deadline-ms")
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("option %q: must be ≥ 1", "deadline-ms")
		}
		opts = append(opts, colsort.WithDeadline(time.Duration(v)*time.Millisecond))
	}

	// Retry policy: any retry key present builds one WithRetry.
	if has("retries") || has("retry-base-us") || has("redo-budget") || has("scrub") {
		var p colsort.RetryPolicy
		if has("retries") {
			v, err := intOf("retries")
			if err != nil {
				return nil, err
			}
			if v < 1 {
				return nil, fmt.Errorf("option %q: must be ≥ 1 (1 disables retries)", "retries")
			}
			p.MaxAttempts = int(v)
		}
		if has("retry-base-us") {
			v, err := intOf("retry-base-us")
			if err != nil {
				return nil, err
			}
			if v < 1 {
				return nil, fmt.Errorf("option %q: must be ≥ 1", "retry-base-us")
			}
			p.BaseDelay = time.Duration(v) * time.Microsecond
		}
		if has("redo-budget") {
			v, err := intOf("redo-budget")
			if err != nil {
				return nil, err
			}
			p.RedoBudget = int(v) // negative disables batch redo, by contract
		}
		if has("scrub") {
			v, err := boolOf("scrub")
			if err != nil {
				return nil, err
			}
			p.Scrub = v
		}
		opts = append(opts, colsort.WithRetry(p))
	}

	// Chaos (tri-state): chaos=off disables engine-configured chaos for
	// this job; any chaos-* parameter enables job-scoped injection.
	haveChaosParam := has("chaos-seed") || has("chaos-p-transient") || has("chaos-p-bitflip") || has("chaos-p-torn")
	if has("chaos") {
		if get["chaos"] != "off" {
			return nil, fmt.Errorf("option %q: the only value is \"off\" (chaos-seed/chaos-p-* enable injection)", "chaos")
		}
		if haveChaosParam {
			return nil, fmt.Errorf("chaos=off conflicts with the chaos-* parameters")
		}
		opts = append(opts, colsort.WithChaos(nil))
	} else if haveChaosParam {
		cc := &colsort.ChaosConfig{Seed: 1}
		if has("chaos-seed") {
			v, err := intOf("chaos-seed")
			if err != nil {
				return nil, err
			}
			cc.Seed = uint64(v)
		}
		for k, dst := range map[string]*float64{
			"chaos-p-transient": &cc.PTransient,
			"chaos-p-bitflip":   &cc.PBitFlip,
			"chaos-p-torn":      &cc.PTorn,
		} {
			if !has(k) {
				continue
			}
			v, err := floatOf(k)
			if err != nil {
				return nil, err
			}
			if v < 0 || v > 1 {
				return nil, fmt.Errorf("option %q: probability must be in [0, 1]", k)
			}
			*dst = v
		}
		opts = append(opts, colsort.WithChaos(cc))
	}

	return opts, nil
}

// valuesFromMap adapts a job submission's options object to the query
// parameter mapping, so both entry points share one validator.
func valuesFromMap(m map[string]string) url.Values {
	q := make(url.Values, len(m))
	for k, v := range m {
		q.Set(k, v)
	}
	return q
}
