// Package server is the wire front-end of the colsort Engine: sort-as-a-
// service over HTTP. It turns the v1 Source/Sink boundary into the network
// boundary the API was designed for — a request body is a Source, a
// response body is a Sink — so an upload streams straight through
// source.FromReader into Engine.Sort and the sorted result streams back
// without the server ever buffering the full input or output.
//
// Surface (DESIGN.md §11 holds the wire contract):
//
//	POST   /v1/sort               streaming sort: body in, sorted body out
//	POST   /v1/jobs               async sort of server-side files
//	GET    /v1/jobs               list jobs
//	GET    /v1/jobs/{id}          job state + result summary
//	GET    /v1/jobs/{id}/progress SSE progress push (batch/pass/merge percent)
//	DELETE /v1/jobs/{id}          cancel (the job's ctx; queued or running)
//	GET    /metrics               Prometheus text format
//	GET    /healthz               200 ok; 503 while draining
//
// Sort options arrive as query parameters (or the job submission's
// "options" object) under a strict validator; see options.go.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"colsort"
)

// Config tunes the server around its engine.
type Config struct {
	// MaxJobs bounds the wire jobs in flight at once (streaming and file
	// jobs together). Submissions beyond the bound are refused with HTTP
	// 429 and a Retry-After header — the wire rendering of ErrBusy. 0
	// means unbounded: jobs then queue inside the engine's FIFO admission.
	MaxJobs int
	// DataDir is the root directory of server-side file jobs
	// (POST /v1/jobs): input and output paths are resolved under it and
	// may not escape it. Empty disables the file-job endpoint entirely —
	// the streaming endpoint never touches the server's filesystem.
	DataDir string
	// RetainJobs bounds the finished jobs kept for GET /v1/jobs/{id}
	// after completion (default 256). Live jobs are never evicted.
	RetainJobs int
	// WriteTimeout bounds each WRITE on streaming responses — sorted output
	// chunks and SSE events. The deadline is re-armed before every write,
	// so arbitrarily long transfers survive while a stalled client is cut
	// loose (an absolute http.Server.WriteTimeout would kill any sort
	// slower than the timeout). 0 disables the per-write deadline.
	WriteTimeout time.Duration
}

// Server serves one Engine over HTTP. Create with New, mount Handler, and
// call Drain on shutdown.
type Server struct {
	eng      *colsort.Engine
	cfg      Config
	recSize  int
	met      *metrics
	jobs     *jobRegistry
	mux      *http.ServeMux
	draining atomic.Bool
	slots    chan struct{} // MaxJobs semaphore; nil when unbounded

	// Durable-job state (see wal.go): the jobs WAL, and the boot-time
	// recovery counters /metrics exposes.
	wal            *jobWAL
	resumedJobs    atomic.Int64 // file jobs re-adopted from the WAL at startup
	orphansCleaned atomic.Int64 // orphan job-scoped scratch files removed at startup
}

// New builds a Server over an engine the caller owns (Drain closes it),
// recovering durable job state first: the engine's scratch directory is
// swept of orphaned job files, and — when DataDir is set — the jobs WAL is
// replayed, interrupted file jobs are re-adopted (resumed from their
// checkpoint manifests where those survived), and the WAL is compacted. A
// recovery error means the durable state could not be read or rewritten;
// the engine itself is untouched by it.
func New(eng *colsort.Engine, cfg Config) (*Server, error) {
	s := &Server{
		eng:     eng,
		cfg:     cfg,
		recSize: eng.Config().RecordSize,
		met:     newMetrics(),
		jobs:    newJobRegistry(cfg.RetainJobs),
		mux:     http.NewServeMux(),
	}
	if cfg.MaxJobs > 0 {
		s.slots = make(chan struct{}, cfg.MaxJobs)
	}
	handle := func(method, pattern string, h http.HandlerFunc) {
		s.mux.HandleFunc(method+" "+pattern, s.met.instrument(method+" "+pattern, h))
	}
	handle("POST", "/v1/sort", s.handleSortStream)
	handle("POST", "/v1/jobs", s.handleJobSubmit)
	handle("GET", "/v1/jobs", s.handleJobList)
	handle("GET", "/v1/jobs/{id}", s.handleJobGet)
	handle("GET", "/v1/jobs/{id}/progress", s.handleJobProgress)
	handle("DELETE", "/v1/jobs/{id}", s.handleJobDelete)
	handle("GET", "/metrics", s.handleMetrics)
	handle("GET", "/healthz", s.handleHealthz)
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain stops admitting new jobs: /healthz flips to 503 (so load
// balancers stop routing), and new submissions on both sort endpoints are
// refused with 503. In-flight jobs keep running.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain performs the drain-aware shutdown: stop admitting, wait for the
// background file jobs to finish (cancelling any still running when ctx
// expires), then Close the engine — which itself blocks until its active
// jobs unwind. Streaming requests are owned by their HTTP handlers; the
// caller drains those with http.Server.Shutdown before calling Drain.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() { s.jobs.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		s.jobs.cancelAll()
		<-done
	}
	err := s.eng.Close()
	s.wal.close()
	return err
}

// acquireSlot takes one MaxJobs slot without blocking; ok=false means the
// server is saturated and the request must be refused with 429.
func (s *Server) acquireSlot() (release func(), ok bool) {
	if s.slots == nil {
		return func() {}, true
	}
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	default:
		return nil, false
	}
}

// apiError is the JSON error envelope of every non-2xx response.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, apiError{Error: fmt.Sprintf(format, args...)})
}

// writeBusy renders engine/server saturation: 429 with a Retry-After hint.
func writeBusy(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, format, args...)
}

// streamSink adapts the http.ResponseWriter into the Sort call's Sink
// writer: headers (including the exact Content-Length — the output of an
// n-record sort is exactly n·z bytes) go out with the first sorted chunk,
// and every chunk is flushed so the client streams instead of waiting for
// the handler to return.
type streamSink struct {
	w       http.ResponseWriter
	rc      *http.ResponseController
	total   int64
	jobID   string
	timeout time.Duration // per-write deadline; re-armed before every chunk
	started bool
	written int64
}

func (sw *streamSink) Write(p []byte) (int, error) {
	if sw.timeout > 0 {
		// Re-arm rather than set once: a long sort must survive, a stalled
		// client must not hold the handler hostage.
		sw.rc.SetWriteDeadline(time.Now().Add(sw.timeout)) //nolint:errcheck // unsupported writer: no deadline
	}
	if !sw.started {
		h := sw.w.Header()
		h.Set("Content-Type", "application/octet-stream")
		h.Set("Content-Length", strconv.FormatInt(sw.total, 10))
		h.Set("X-Colsort-Job", sw.jobID)
		sw.w.WriteHeader(http.StatusOK)
		sw.started = true
	}
	n, err := sw.w.Write(p)
	sw.written += int64(n)
	if err == nil {
		err = sw.rc.Flush()
	}
	return n, err
}

// handleSortStream is the tentpole endpoint: POST /v1/sort streams the
// request body through FromReader into Engine.Sort and the sorted records
// back through the response body — no full-input buffering anywhere in
// the HTTP layer. The record count comes from Content-Length (or the
// records query parameter for chunked uploads). Client disconnect cancels
// the request context, which is the job's context: the engine unwinds its
// processors, async disk workers and scratch files.
func (s *Server) handleSortStream(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	z := int64(s.recSize)
	n := int64(-1)
	if v := r.URL.Query().Get("records"); v != "" {
		parsed, err := strconv.ParseInt(v, 10, 64)
		if err != nil || parsed < 1 {
			writeError(w, http.StatusBadRequest, "records=%q is not a positive integer", v)
			return
		}
		n = parsed
		if r.ContentLength >= 0 && r.ContentLength != n*z {
			writeError(w, http.StatusBadRequest,
				"records=%d disagrees with Content-Length %d (want %d×%d = %d bytes)",
				n, r.ContentLength, n, z, n*z)
			return
		}
	} else {
		switch {
		case r.ContentLength < 0:
			writeError(w, http.StatusBadRequest,
				"chunked upload without a record count: pass ?records=N (records are %d bytes each)", z)
			return
		case r.ContentLength == 0 || r.ContentLength%z != 0:
			writeError(w, http.StatusBadRequest,
				"Content-Length %d is not a positive multiple of the record size %d", r.ContentLength, z)
			return
		}
		n = r.ContentLength / z
	}
	opts, err := parseSortOptions(r.URL.Query(), "records")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	release, ok := s.acquireSlot()
	if !ok {
		writeBusy(w, "server at its -jobs bound (%d wire jobs in flight); retry later", s.cfg.MaxJobs)
		return
	}
	defer release()

	// The request context IS the job context: client disconnect (or an
	// http.Server.Shutdown deadline) cancels the sort.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	entry := s.jobs.add(jobInfo{Streaming: true}, cancel)
	opts = append(opts, colsort.WithProgress(entry.onProgress))

	sink := &streamSink{w: w, rc: http.NewResponseController(w), total: n * z,
		jobID: entry.info.ID, timeout: s.cfg.WriteTimeout}
	res, err := s.eng.Sort(ctx, colsort.FromReader(r.Body, n), colsort.ToWriter(sink), opts...)
	if err != nil {
		entry.finish(nil, err)
		if sink.started {
			// Sorted bytes already left: the status line is spent. Abort
			// the connection so the client sees a truncated body (the
			// advertised Content-Length makes the truncation detectable)
			// rather than a plausible-looking short output. The Sink
			// contract says exactly this: on error, discard.
			panic(http.ErrAbortHandler)
		}
		switch {
		case errors.Is(err, colsort.ErrBusy):
			writeBusy(w, "%v", err)
		case errors.Is(err, colsort.ErrEngineClosed):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		case ctx.Err() != nil:
			// Client gone (or shutdown): nobody is reading the response.
			panic(http.ErrAbortHandler)
		default:
			// The engine refused or failed the job before emitting a byte:
			// short input, bad key spec, unplannable shape... The error
			// text names the cause either way.
			writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	sum := res.Summary()
	res.Close()
	entry.finish(&sum, nil)
	if sink.written != sink.total {
		// Cannot happen while the library honors its Sink contract; guard
		// so a future regression truncates loudly instead of silently.
		panic(http.ErrAbortHandler)
	}
}

// jobRequest is the POST /v1/jobs submission body.
type jobRequest struct {
	// Input and Output are paths relative to the server's -data directory.
	Input  string `json:"input"`
	Output string `json:"output"`
	// Options uses the same keys and values as the /v1/sort query
	// parameters (see DESIGN.md §11's table).
	Options map[string]string `json:"options,omitempty"`
}

// resolveDataPath resolves a submitted path under the data directory,
// refusing absolute paths and any traversal out of it.
func (s *Server) resolveDataPath(p string) (string, error) {
	if p == "" {
		return "", fmt.Errorf("empty path")
	}
	if filepath.IsAbs(p) || !filepath.IsLocal(p) {
		return "", fmt.Errorf("path %q must be relative and stay inside the server's data directory", p)
	}
	return filepath.Join(s.cfg.DataDir, p), nil
}

// handleJobSubmit accepts an asynchronous sort of server-side files: the
// job runs in the background under its own context; the response is 202
// with the job's id. Progress, state, result summary and cancellation are
// all served off the registry entry.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.cfg.DataDir == "" {
		writeError(w, http.StatusForbidden, "server-side file jobs are disabled (start the server with -data)")
		return
	}
	var req jobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad job request: %v", err)
		return
	}
	in, err := s.resolveDataPath(req.Input)
	if err != nil {
		writeError(w, http.StatusBadRequest, "input: %v", err)
		return
	}
	out, err := s.resolveDataPath(req.Output)
	if err != nil {
		writeError(w, http.StatusBadRequest, "output: %v", err)
		return
	}
	if _, err := os.Stat(in); err != nil {
		writeError(w, http.StatusBadRequest, "input: %v", err)
		return
	}
	opts, err := parseSortOptions(valuesFromMap(req.Options))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	release, ok := s.acquireSlot()
	if !ok {
		writeBusy(w, "server at its -jobs bound (%d wire jobs in flight); retry later", s.cfg.MaxJobs)
		return
	}

	ctx, cancel := context.WithCancel(context.Background())
	entry := s.jobs.add(jobInfo{Input: req.Input, Output: req.Output}, cancel)
	// Durability point: the submission is recorded — with everything needed
	// to restart it — before the job runs. A crash from here on re-adopts
	// the job at the next boot.
	s.wal.append(walRecord{ID: entry.info.ID, State: jobQueued, //nolint:errcheck // degrade, don't refuse
		Input: req.Input, Output: req.Output, Options: req.Options})
	s.launchFileJob(ctx, cancel, entry, in, out, opts, release, false)
	info, _ := entry.snapshot()
	writeJSON(w, http.StatusAccepted, info)
}

// launchFileJob runs one file job in the background: fresh submissions sort
// under a per-job checkpoint; re-adopted jobs with a surviving manifest go
// through Engine.Resume instead, adopting the durable runs the dead process
// verified. State transitions are written through the jobs WAL — except
// when a drain cancels the job, which deliberately leaves the WAL at
// "running" so the next boot picks the job back up from its checkpoint.
func (s *Server) launchFileJob(ctx context.Context, cancel context.CancelFunc, entry *jobEntry, in, out string, opts []colsort.Option, release func(), resume bool) {
	id := entry.info.ID
	ckpt := s.ckptDir(id)
	opts = append(opts, colsort.WithProgress(entry.onProgress))
	if s.cfg.DataDir != "" {
		opts = append(opts, colsort.WithCheckpoint(ckpt))
	}
	s.jobs.wg.Add(1)
	go func() {
		defer s.jobs.wg.Done()
		defer release()
		defer cancel()
		s.wal.append(walRecord{ID: id, State: jobRunning}) //nolint:errcheck // degrade, don't refuse
		var res *colsort.Result
		var err error
		if resume {
			res, err = s.eng.Resume(ctx, ckpt, colsort.FromFile(in), colsort.ToFile(out), opts...)
		} else {
			res, err = s.eng.Sort(ctx, colsort.FromFile(in), colsort.ToFile(out), opts...)
		}
		if err != nil {
			// A failed sort must not leave a plausible-looking output
			// file behind (the Sink contract: on error, discard).
			os.Remove(out) //nolint:errcheck // best effort; may not exist
			entry.finish(nil, err)
			if errors.Is(err, context.Canceled) && s.draining.Load() {
				// Shutdown interrupted the job, not the job itself: keep the
				// WAL at "running" and the checkpoint on disk, so the next
				// boot resumes instead of rerunning.
				return
			}
			s.wal.append(walRecord{ID: id, State: jobFailed, Error: err.Error()}) //nolint:errcheck // degrade
			os.RemoveAll(ckpt)                                                   //nolint:errcheck // the failure is durable; the checkpoint is garbage
			return
		}
		sum := res.Summary()
		res.Close()
		entry.finish(&sum, nil)
		s.wal.append(walRecord{ID: id, State: jobDone}) //nolint:errcheck // degrade, don't refuse
	}()
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.list())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	entry := s.jobs.get(r.PathValue("id"))
	if entry == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	info, _ := entry.snapshot()
	writeJSON(w, http.StatusOK, info)
}

// handleJobDelete cancels the job's context — running or still queued for
// engine admission (the cancel-while-queued path) — and reports the state
// it observed. Cancelling a finished job is a harmless no-op.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	entry := s.jobs.get(r.PathValue("id"))
	if entry == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	entry.cancel()
	info, _ := entry.snapshot()
	writeJSON(w, http.StatusOK, info)
}

// sseHeartbeat keeps idle SSE connections alive through proxies.
const sseHeartbeat = 15 * time.Second

// handleJobProgress pushes the job's progress as Server-Sent Events:
// "progress" events carry the latest coalesced progressEvent (batch, pass
// and merge percent), and one final "done" event carries the terminal
// jobInfo (result summary or error). Slow consumers coalesce — the server
// never buffers more than the latest event per subscriber.
func (s *Server) handleJobProgress(w http.ResponseWriter, r *http.Request) {
	entry := s.jobs.get(r.PathValue("id"))
	if entry == nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)

	send := func(event string, v any) error {
		data, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if s.cfg.WriteTimeout > 0 {
			// Per-write deadline, re-armed per event: an SSE stream lives as
			// long as the job, but a stalled subscriber must not pin the
			// handler (and its registry wakeups) forever.
			rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck // unsupported writer: no deadline
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return err
		}
		return rc.Flush()
	}

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	var lastSent int64 = -1
	for {
		wake := entry.wait()
		info, seq := entry.snapshot()
		if seq != lastSent && info.Progress != nil {
			if err := send("progress", info.Progress); err != nil {
				return
			}
			lastSent = seq
		}
		if info.State == jobDone || info.State == jobFailed {
			send("done", info) //nolint:errcheck // terminal either way
			return
		}
		select {
		case <-wake:
		case <-heartbeat.C:
			if s.cfg.WriteTimeout > 0 {
				rc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout)) //nolint:errcheck // unsupported writer: no deadline
			}
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	writeMetrics(w, s.eng.Stats(), s.draining.Load(), s.met, s.resumedJobs.Load(), s.orphansCleaned.Load())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}
