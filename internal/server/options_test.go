package server

// Tests of the strict wire→option mapping: every accepted combination
// compiles, every malformed or conflicting one is refused with an error
// naming the offending key — a typo must never silently select a default.

import (
	"net/url"
	"strings"
	"testing"
)

func TestParseSortOptionsAccepts(t *testing.T) {
	cases := []struct {
		name  string
		query string
	}{
		{"empty", ""},
		{"algorithm", "alg=subblock"},
		{"hybrid with group", "alg=hybrid&group=2"},
		{"full key spec", "key-offset=16&key-width=8&order=desc"},
		{"order only", "order=asc"},
		{"padding", "padding=never"},
		{"hierarchical knobs", "max-memory-mib=64&merge-fanin=8"},
		{"run formation select", "run-formation=replacement-select"},
		{"run formation fixed", "run-formation=fixed-batch"},
		{"machine overrides", "fabric=zero-copy&async=true&nowait=true"},
		{"retry policy", "retries=4&retry-base-us=50&redo-budget=2&scrub=true"},
		{"redo disabled", "redo-budget=-1"},
		{"chaos off", "chaos=off"},
		{"chaos on", "chaos-seed=7&chaos-p-transient=0.01&chaos-p-bitflip=0.001&chaos-p-torn=0"},
		{"caller-handled extra", "records=100"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := parseSortOptions(q, "records"); err != nil {
				t.Errorf("%q rejected: %v", tc.query, err)
			}
		})
	}
}

func TestParseSortOptionsRejects(t *testing.T) {
	cases := []struct {
		name    string
		query   string
		wantMsg string
	}{
		{"unknown key", "allg=threaded", `unknown option "allg"`},
		{"baseline algorithms are not wired", "alg=baseline-io", "unknown algorithm"},
		{"empty value", "order=", "empty value"},
		{"bad order", "order=sideways", `want "asc" or "desc"`},
		{"bad padding", "padding=sometimes", `want "auto" or "never"`},
		{"bad fabric", "fabric=carrier-pigeon", `want "zero-copy" or "copying"`},
		{"bad bool", "async=maybe", "not a boolean"},
		{"bad int", "key-offset=three", "not an integer"},
		{"negative key offset", "key-offset=-1", "must be ≥ 0"},
		{"zero key width", "key-width=0", "must be ≥ 1"},
		{"hybrid without group", "alg=hybrid", "requires a group size"},
		{"group without hybrid", "group=2", `only applies to alg=hybrid`},
		{"group with non-hybrid", "alg=threaded&group=2", `only applies to alg=hybrid`},
		{"max-memory with hybrid", "alg=hybrid&group=2&max-memory-mib=64", "conflicts with alg=hybrid"},
		{"max-memory with padding=never", "padding=never&max-memory-mib=64", "conflicts with padding=never"},
		{"zero max-memory", "max-memory-mib=0", "must be ≥ 1"},
		{"fan-in of one", "merge-fanin=1", "must be ≥ 2"},
		{"bad run formation", "run-formation=heapsort", `want "replacement-select" or "fixed-batch"`},
		{"zero retries", "retries=0", "must be ≥ 1"},
		{"chaos not off", "chaos=on", `the only value is "off"`},
		{"chaos off with params", "chaos=off&chaos-seed=1", "conflicts with the chaos-"},
		{"probability above one", "chaos-p-bitflip=1.5", "probability must be in [0, 1]"},
		{"probability not a number", "chaos-p-torn=often", "not a number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			_, err = parseSortOptions(q)
			if err == nil {
				t.Fatalf("%q accepted, want an error mentioning %q", tc.query, tc.wantMsg)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Errorf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}

	// A repeated key is ambiguous, never last-wins.
	if _, err := parseSortOptions(url.Values{"alg": {"threaded", "subblock"}}); err == nil ||
		!strings.Contains(err.Error(), "each option may appear once") {
		t.Errorf("repeated key: got %v", err)
	}
}

func TestValuesFromMapSharesValidator(t *testing.T) {
	// The job API's options object runs through the same validator.
	if _, err := parseSortOptions(valuesFromMap(map[string]string{"order": "desc", "key-width": "8"})); err != nil {
		t.Errorf("valid map rejected: %v", err)
	}
	_, err := parseSortOptions(valuesFromMap(map[string]string{"colour": "red"}))
	if err == nil || !strings.Contains(err.Error(), `unknown option "colour"`) {
		t.Errorf("unknown map key: got %v", err)
	}
}
