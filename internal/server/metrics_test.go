package server

// TestMetricsPrometheusFormat validates the whole /metrics exposition —
// after real traffic — against the Prometheus text format (version 0.0.4)
// grammar: every non-comment line must be a well-formed sample, every
// sample's family must be TYPEd (and HELPed) before its first sample, and
// the catalogue DESIGN.md §11 documents must actually be present.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"colsort"
)

var (
	helpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$`)
	typeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|summary|histogram|untyped)$`)
	// metric_name{label="value",...} value — label values in the catalogue
	// contain no quotes or backslashes, so the simple quoted form suffices.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)
)

func TestMetricsPrometheusFormat(t *testing.T) {
	env := newEnv(t, colsort.EngineConfig{Config: testBase(filepath.Join(t.TempDir(), "scratch"))}, Config{})

	// Generate traffic first so the per-endpoint series exist: one
	// successful sort and one rejected request.
	input := makeInput(500, 3)
	resp, err := env.ts.Client().Post(env.ts.URL+"/v1/sort", "application/octet-stream", bytes.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traffic sort: status %d", resp.StatusCode)
	}
	bad, err := env.ts.Client().Post(env.ts.URL+"/v1/sort?colour=red", "application/octet-stream",
		bytes.NewReader(make([]byte, testZ)))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close() //nolint:errcheck

	scrape, err := env.ts.Client().Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer scrape.Body.Close()
	if ct := scrape.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type %q, want the version 0.0.4 text format", ct)
	}
	body, err := io.ReadAll(scrape.Body)
	if err != nil {
		t.Fatal(err)
	}

	typed := map[string]string{} // family -> counter/gauge/summary
	helped := map[string]bool{}
	samples := map[string]bool{} // full sample line prefix (name + labels)
	for i, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		where := fmt.Sprintf("line %d: %q", i+1, line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := helpRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("%s: malformed HELP", where)
			}
			helped[m[1]] = true
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("%s: malformed TYPE", where)
			}
			if _, dup := typed[m[1]]; dup {
				t.Errorf("%s: duplicate TYPE for %s", where, m[1])
			}
			typed[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("%s: comment that is neither HELP nor TYPE", where)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("%s: not a well-formed sample", where)
			}
			family := m[1]
			// Summaries sample through their _sum/_count series.
			if base, ok := strings.CutSuffix(family, "_sum"); ok && typed[base] == "summary" {
				family = base
			} else if base, ok := strings.CutSuffix(family, "_count"); ok && typed[base] == "summary" {
				family = base
			}
			if typed[family] == "" {
				t.Errorf("%s: sample of %s precedes its TYPE", where, family)
			}
			if !helped[family] {
				t.Errorf("%s: sample of %s has no HELP", where, family)
			}
			if ty := typed[family]; ty == "counter" && strings.HasPrefix(m[4], "-") {
				t.Errorf("%s: negative counter", where)
			}
			samples[m[1]+m[2]] = true
		}
	}

	// The documented catalogue must be present in full.
	for _, name := range []string{
		"colsort_engine_active_jobs",
		"colsort_engine_queued_jobs",
		"colsort_engine_completed_jobs_total",
		"colsort_engine_failed_jobs_total",
		"colsort_engine_leased_bytes",
		"colsort_engine_peak_leased_bytes",
		"colsort_engine_total_memory_bytes",
		"colsort_engine_pool_free_buffers",
		"colsort_engine_pool_free_bytes",
		"colsort_sim_disk_read_bytes_total",
		"colsort_sim_disk_write_bytes_total",
		"colsort_sim_net_bytes_total",
		"colsort_sim_compare_units_total",
		"colsort_sim_moved_bytes_total",
		"colsort_faults_disk_retries_total",
		"colsort_faults_corrupt_chunks_total",
		"colsort_faults_batch_redos_total",
		"colsort_server_draining",
	} {
		if !samples[name] {
			t.Errorf("catalogue metric %s missing from the exposition", name)
		}
	}
	// Per-endpoint accounting saw both the 200 and the 400.
	for _, want := range []string{
		`colsort_http_requests_total{route="POST /v1/sort",code="200"}`,
		`colsort_http_requests_total{route="POST /v1/sort",code="400"}`,
		`colsort_http_request_duration_seconds_sum{route="POST /v1/sort"}`,
		`colsort_http_request_duration_seconds_count{route="POST /v1/sort"}`,
	} {
		if !samples[want] {
			t.Errorf("expected series %s missing (have %d series)", want, len(samples))
		}
	}
	// The completed sort is visible in the engine gauges.
	if !strings.Contains(string(body), "colsort_engine_completed_jobs_total 1") {
		t.Error("completed_jobs_total does not reflect the sorted job")
	}
}
