package server

// Server-side job durability. File jobs (POST /v1/jobs) write their state
// transitions through a JSON-lines WAL at DataDir/.colsort/jobs.wal —
// queued (with the submitted paths and wire options), running, done/failed
// — each line fsync'd before the transition is acted on. On startup the
// server replays the WAL: jobs that were queued or running when the
// process died are RE-ADOPTED — restarted under their original ids, via
// Engine.Resume when the job's checkpoint manifest survived (so completed
// run formation and merge work is not redone) and a fresh checkpointed
// Sort otherwise — and the WAL is compacted down to the re-adopted
// entries. Terminal entries are dropped: the registry's retained tail is
// an in-memory convenience, not durable state.
//
// Streaming jobs (POST /v1/sort) are deliberately absent: their output is
// the response body of a connection that died with the process — there is
// nothing to resume for a client that is gone.
//
// Startup also sweeps the engine's scratch directory for orphaned
// job-scoped files (the jobNNNNN- namespace pdm.JobScratchPrefix assigns):
// a SIGKILL leaves the dead process's spill and store files behind, and no
// future job will ever reference them. The sweep runs before any job is
// admitted, so every job-prefixed file it sees is garbage by construction.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// serverStateDir is the DataDir subdirectory holding the server's durable
// state: the jobs WAL and the per-job checkpoint directories.
const serverStateDir = ".colsort"

// jobsWALName is the job-state WAL's file name inside serverStateDir.
const jobsWALName = "jobs.wal"

// walRecord is one jobs.wal line: a state transition of one file job. The
// queued record carries everything needed to restart the job; later
// records for the same id carry only the transition.
type walRecord struct {
	ID      string            `json:"id"`
	State   string            `json:"state"`
	Input   string            `json:"input,omitempty"`
	Output  string            `json:"output,omitempty"`
	Options map[string]string `json:"options,omitempty"`
	Error   string            `json:"error,omitempty"`
}

// jobWAL is the append side of jobs.wal. A nil *jobWAL is a valid no-op
// (the server runs without -data, or WAL setup failed and was reported).
type jobWAL struct {
	mu sync.Mutex
	f  *os.File
}

// openJobsWAL opens (creating parents as needed) the WAL for appending.
func openJobsWAL(dataDir string) (*jobWAL, error) {
	dir := filepath.Join(dataDir, serverStateDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobs wal: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, jobsWALName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs wal: %w", err)
	}
	return &jobWAL{f: f}, nil
}

// append writes one record as a JSON line and fsyncs it.
func (w *jobWAL) append(rec walRecord) error {
	if w == nil {
		return nil
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(data); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *jobWAL) close() {
	if w == nil {
		return
	}
	w.f.Close() //nolint:errcheck // read side replays from disk, not this handle
}

// replayJobsWAL folds the WAL into the last observed state of every job,
// in first-seen order. A torn final line (the crash hit mid-append) is
// ignored; the transition it recorded never took effect.
func replayJobsWAL(path string) ([]walRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	byID := make(map[string]*walRecord)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 8<<20)
	var lines []string
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i, line := range lines {
		var rec walRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			if i == len(lines)-1 {
				break // torn tail
			}
			return nil, fmt.Errorf("jobs wal line %d: %w", i+1, err)
		}
		prev, ok := byID[rec.ID]
		if !ok {
			r := rec
			byID[rec.ID] = &r
			order = append(order, rec.ID)
			continue
		}
		// Later transitions update state but keep the queued record's
		// restart parameters.
		prev.State = rec.State
		if rec.Error != "" {
			prev.Error = rec.Error
		}
	}
	out := make([]walRecord, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out, nil
}

// compactJobsWAL atomically rewrites the WAL to hold only keep's records.
func compactJobsWAL(dataDir string, keep []walRecord) error {
	dir := filepath.Join(dataDir, serverStateDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, jobsWALName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	for _, rec := range keep {
		data, err := json.Marshal(rec)
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(append(data, '\n')); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, jobsWALName))
}

// jobIDNum extracts the numeric part of a j%06d job id; 0 if malformed.
func jobIDNum(id string) int64 {
	if !strings.HasPrefix(id, "j") {
		return 0
	}
	n, err := strconv.ParseInt(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// ckptDir returns the checkpoint directory of one file job.
func (s *Server) ckptDir(id string) string {
	return filepath.Join(s.cfg.DataDir, serverStateDir, "ckpt", id)
}

// orphanScratchPat matches the per-job scratch namespace prefix
// (pdm.JobScratchPrefix's job%05d- rendering) at the start of a file name.
var orphanScratchPat = regexp.MustCompile(`^job\d+-`)

// sweepOrphanScratch removes job-namespaced files from the engine's scratch
// directory. It must run before any job is admitted: at that point every
// job-prefixed file belongs to a dead process.
func sweepOrphanScratch(scratchDir string) int {
	if scratchDir == "" {
		return 0
	}
	ents, err := os.ReadDir(scratchDir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, de := range ents {
		if de.IsDir() || !orphanScratchPat.MatchString(de.Name()) {
			continue
		}
		if os.Remove(filepath.Join(scratchDir, de.Name())) == nil {
			removed++
		}
	}
	return removed
}

// recover replays the jobs WAL, sweeps orphan scratch, and re-adopts every
// job the crash interrupted. Called from New before the server accepts
// requests; errors are reported to the caller (the server still serves —
// durability degrades, availability does not).
func (s *Server) recover() error {
	cleaned := sweepOrphanScratch(s.eng.Config().Dir)
	s.orphansCleaned.Add(int64(cleaned))
	if s.cfg.DataDir == "" {
		return nil
	}
	records, err := replayJobsWAL(filepath.Join(s.cfg.DataDir, serverStateDir, jobsWALName))
	if err != nil {
		return err
	}
	var pending []walRecord
	var maxSeq int64
	for _, rec := range records {
		if n := jobIDNum(rec.ID); n > maxSeq {
			maxSeq = n
		}
		if rec.State == jobQueued || rec.State == jobRunning {
			pending = append(pending, rec)
		}
	}
	s.jobs.seedSeq(maxSeq)
	if err := compactJobsWAL(s.cfg.DataDir, pending); err != nil {
		return err
	}
	wal, err := openJobsWAL(s.cfg.DataDir)
	if err != nil {
		return err
	}
	s.wal = wal

	for _, rec := range pending {
		if err := s.readoptJob(rec); err != nil {
			// The job cannot be restarted (bad persisted options, input
			// gone): record the failure durably so it is not retried on the
			// next boot, and surface it through the registry.
			entry := s.jobs.addWithID(rec.ID, jobInfo{Input: rec.Input, Output: rec.Output}, func() {})
			entry.finish(nil, err)
			s.wal.append(walRecord{ID: rec.ID, State: jobFailed, Error: err.Error()}) //nolint:errcheck // best effort
		}
	}
	return nil
}

// readoptJob restarts one interrupted file job under its original id: via
// Engine.Resume when its checkpoint manifest survived, a fresh checkpointed
// Sort otherwise.
func (s *Server) readoptJob(rec walRecord) error {
	in, err := s.resolveDataPath(rec.Input)
	if err != nil {
		return fmt.Errorf("readopt %s: input: %w", rec.ID, err)
	}
	out, err := s.resolveDataPath(rec.Output)
	if err != nil {
		return fmt.Errorf("readopt %s: output: %w", rec.ID, err)
	}
	if _, err := os.Stat(in); err != nil {
		return fmt.Errorf("readopt %s: input: %w", rec.ID, err)
	}
	opts, err := parseSortOptions(valuesFromMap(rec.Options))
	if err != nil {
		return fmt.Errorf("readopt %s: %w", rec.ID, err)
	}
	ckpt := s.ckptDir(rec.ID)
	resume := false
	if _, err := os.Stat(filepath.Join(ckpt, "manifest.wal")); err == nil {
		resume = true
	}
	ctx, cancel := context.WithCancel(context.Background())
	entry := s.jobs.addWithID(rec.ID, jobInfo{Input: rec.Input, Output: rec.Output}, cancel)
	s.resumedJobs.Add(1)
	s.launchFileJob(ctx, cancel, entry, in, out, opts, func() {}, resume)
	return nil
}
