package server

// The observability surface: a hand-rolled Prometheus text-format
// (version 0.0.4) encoder over the engine's Stats snapshot plus the
// server's own per-endpoint request/latency accounting. No client library
// — the exposition format is a few lines of printf, and keeping the
// encoder in-tree means the metric name catalogue (DESIGN.md §11) is the
// single source of truth. TestMetricsPrometheusFormat validates every
// emitted line against the format's grammar.

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"colsort"
)

// metrics accumulates per-endpoint request counts (by status code) and
// latency sums. Endpoints are keyed by their route pattern — bounded
// cardinality by construction (no raw URLs).
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests map[int]int64 // by HTTP status code
	durSum   float64       // seconds
	durCount int64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metrics) observe(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep := m.endpoints[route]
	if ep == nil {
		ep = &endpointMetrics{requests: make(map[int]int64)}
		m.endpoints[route] = ep
	}
	ep.requests[code]++
	ep.durSum += d.Seconds()
	ep.durCount++
}

// statusRecorder captures the status code a handler writes while keeping
// the Flusher path alive for the streaming and SSE endpoints.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(p)
}

// Flush forwards to the wrapped writer so http.ResponseController (used by
// the streaming sink and the SSE push) finds a Flusher through the wrap.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request/latency accounting under the
// given route label.
func (m *metrics) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		// Observed from a deferred frame so that an aborted handler
		// (http.ErrAbortHandler on client disconnect mid-stream) still
		// counts; the panic keeps unwinding past it.
		defer func() {
			code := rec.code
			if code == 0 {
				code = http.StatusOK
			}
			m.observe(route, code, time.Since(start))
		}()
		h(rec, r)
	}
}

// writeMetrics renders the whole surface: engine gauges, cumulative sim
// and fault counters, the server's drain state and durability counters, and
// per-endpoint HTTP accounting. Metric names are the catalogue DESIGN.md
// §11 documents. readopted and orphansCleaned are the boot-recovery
// counters: WAL jobs restarted at startup and orphan job-scoped scratch
// files swept.
func writeMetrics(w io.Writer, st colsort.EngineStats, draining bool, m *metrics, readopted, orphansCleaned int64) {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, formatValue(v))
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, formatValue(v))
	}

	gauge("colsort_engine_active_jobs", "Jobs currently running on the engine.", float64(st.ActiveJobs))
	gauge("colsort_engine_queued_jobs", "Jobs waiting for admission against the memory budget.", float64(st.QueuedJobs))
	counter("colsort_engine_completed_jobs_total", "Jobs finished successfully over the engine's lifetime.", float64(st.CompletedJobs))
	counter("colsort_engine_failed_jobs_total", "Jobs finished with an error (cancellations included).", float64(st.FailedJobs))
	gauge("colsort_engine_leased_bytes", "Memory currently leased to admitted jobs.", float64(st.LeasedBytes))
	gauge("colsort_engine_peak_leased_bytes", "Lifetime high-water mark of leased memory.", float64(st.PeakLeasedBytes))
	gauge("colsort_engine_total_memory_bytes", "Engine-wide admission budget (0 = unlimited).", float64(st.TotalMemory))
	gauge("colsort_engine_pool_free_buffers", "Idle buffers held by the warm per-processor pools.", float64(st.PoolFreeBuffers))
	gauge("colsort_engine_pool_free_bytes", "Capacity of the idle pool buffers.", float64(st.PoolFreeBytes))

	c := st.Counters
	for _, mc := range []struct {
		name, help string
		v          int64
	}{
		{"colsort_sim_disk_read_bytes_total", "Bytes read from the simulated disks by completed jobs.", c.DiskReadBytes},
		{"colsort_sim_disk_write_bytes_total", "Bytes written to the simulated disks by completed jobs.", c.DiskWriteBytes},
		{"colsort_sim_disk_read_ops_total", "Contiguous disk segments read (approximately seeks).", c.DiskReadOps},
		{"colsort_sim_disk_write_ops_total", "Contiguous disk segments written (approximately seeks).", c.DiskWriteOps},
		{"colsort_sim_net_bytes_total", "Bytes sent across the simulated interconnect.", c.NetBytes},
		{"colsort_sim_net_msgs_total", "Messages sent across the simulated interconnect.", c.NetMsgs},
		{"colsort_sim_local_bytes_total", "Bytes of self-destined (local) messages.", c.LocalBytes},
		{"colsort_sim_local_msgs_total", "Self-destined (local) messages.", c.LocalMsgs},
		{"colsort_sim_compare_units_total", "Approximate comparison work of completed jobs.", c.CompareUnits},
		{"colsort_sim_moved_bytes_total", "Record bytes copied by sorts, permutes and message packing.", c.MovedBytes},
		{"colsort_sim_rounds_total", "Pipeline rounds participated in by completed jobs.", c.Rounds},
	} {
		counter(mc.name, mc.help, float64(mc.v))
	}

	for _, mc := range []struct {
		name, help string
		v          int64
	}{
		{"colsort_merge_runs_formed_total", "Sorted runs spilled by hierarchical jobs (both formation modes).", st.RunsFormed},
		{"colsort_merge_down_runs_formed_total", "Descending runs formed by replacement selection.", st.DownRunsFormed},
		{"colsort_merge_run_records_total", "Records that streamed through hierarchical run formation.", st.RunRecordsFormed},
		{"colsort_merge_levels_total", "Merge-tree levels executed by hierarchical jobs.", st.MergeLevelsRun},
	} {
		counter(mc.name, mc.help, float64(mc.v))
	}

	// Durability: checkpoint/resume work saved and recovered (DESIGN.md §13).
	counter("colsort_engine_jobs_resumed_total", "Jobs that adopted durable runs from a checkpoint manifest instead of re-sorting them.", float64(st.JobsResumed))
	counter("colsort_engine_runs_resumed_total", "Durable spilled runs adopted by resumed jobs without re-sorting.", float64(st.RunsResumed))
	counter("colsort_server_jobs_readopted_total", "Interrupted file jobs re-adopted from the jobs WAL at startup.", float64(readopted))
	counter("colsort_orphan_scratch_cleaned_total", "Orphaned job-scoped scratch files removed by the startup sweep.", float64(orphansCleaned))

	f := st.Faults
	for _, mc := range []struct {
		name, help string
		v          int64
	}{
		{"colsort_faults_disk_retries_total", "Transient disk faults healed by retry.", f.DiskRetries},
		{"colsort_faults_disk_give_ups_total", "Transient faults that exhausted the retry budget.", f.DiskGiveUps},
		{"colsort_faults_corrupt_chunks_total", "Spill-run chunks that failed CRC32C verification.", f.CorruptChunks},
		{"colsort_faults_chunk_rereads_total", "Corrupt chunks healed by an invalidate-and-reread.", f.ChunkRereads},
		{"colsort_faults_batch_redos_total", "Run-formation batches re-sorted and re-spilled.", f.BatchRedos},
	} {
		counter(mc.name, mc.help, float64(mc.v))
	}

	gauge("colsort_server_draining", "1 while the server is draining (no new jobs admitted).", b(draining))

	// Per-endpoint HTTP accounting, rendered in sorted label order so the
	// exposition is deterministic.
	m.mu.Lock()
	defer m.mu.Unlock()
	routes := make([]string, 0, len(m.endpoints))
	for r := range m.endpoints {
		routes = append(routes, r)
	}
	sort.Strings(routes)

	fmt.Fprintf(w, "# HELP colsort_http_requests_total Requests served, by route pattern and status code.\n# TYPE colsort_http_requests_total counter\n")
	for _, r := range routes {
		ep := m.endpoints[r]
		codes := make([]int, 0, len(ep.requests))
		for code := range ep.requests {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "colsort_http_requests_total{route=%q,code=\"%d\"} %d\n", r, code, ep.requests[code])
		}
	}
	fmt.Fprintf(w, "# HELP colsort_http_request_duration_seconds Request latency, by route pattern.\n# TYPE colsort_http_request_duration_seconds summary\n")
	for _, r := range routes {
		ep := m.endpoints[r]
		fmt.Fprintf(w, "colsort_http_request_duration_seconds_sum{route=%q} %s\n", r, formatValue(ep.durSum))
		fmt.Fprintf(w, "colsort_http_request_duration_seconds_count{route=%q} %d\n", r, ep.durCount)
	}
}

// formatValue renders a sample value the way Prometheus expects: integral
// values without an exponent, fractional ones in shortest round-trip form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
