package server

// The job registry: every wire job — a streaming POST /v1/sort as well as
// an asynchronous POST /v1/jobs submission — gets an entry with a
// queued→running→done/failed state machine, a cancel hook (DELETE, or the
// client disconnecting on the streaming endpoint), the latest coalesced
// progress event, and a broadcast channel the SSE push waits on. Progress
// callbacks arrive on the sort's internal goroutines and must be fast and
// non-blocking, so an update only swaps the latest event under a mutex and
// closes the notify channel; SSE subscribers coalesce at their own pace.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"colsort"
)

// Job states of the wire API.
const (
	jobQueued  = "queued"  // submitted; not yet observed running (engine admission may be holding it)
	jobRunning = "running" // first progress event seen: the engine granted the lease
	jobDone    = "done"
	jobFailed  = "failed" // error or cancellation
)

// progressEvent is the SSE payload: the raw engine Progress plus the
// phase and an in-phase completion percentage computed server-side, so a
// dashboard needs no knowledge of pass/round arithmetic.
type progressEvent struct {
	Phase    string           `json:"phase"` // "sort" (run formation / engine passes) or "merge"
	Percent  float64          `json:"percent"`
	Progress colsort.Progress `json:"progress"`
}

// eventOf computes the phase and percent of one engine Progress event.
func eventOf(p colsort.Progress) progressEvent {
	if p.FormedRecords > 0 {
		// Replacement-selection run formation: the sort phase of a
		// hierarchical job, reported as records absorbed into runs.
		return progressEvent{
			Phase:    "sort",
			Percent:  math.Round(10000*float64(p.FormedRecords)/float64(p.TotalRecords)) / 100,
			Progress: p,
		}
	}
	if p.TotalRecords > 0 {
		return progressEvent{
			Phase:    "merge",
			Percent:  math.Round(10000*float64(p.MergedRecords)/float64(p.TotalRecords)) / 100,
			Progress: p,
		}
	}
	var frac float64
	if p.Passes > 0 && p.Pass > 0 {
		pass := float64(p.Pass - 1)
		if p.Rounds > 0 {
			pass += float64(p.Round) / float64(p.Rounds)
		}
		frac = pass / float64(p.Passes)
	}
	if p.Batches > 0 {
		frac = (float64(p.Batch-1) + frac) / float64(p.Batches)
	}
	return progressEvent{Phase: "sort", Percent: math.Round(10000*frac) / 100, Progress: p}
}

// jobInfo is the JSON representation of one job, returned by the job API
// and embedded in the SSE "done" event.
type jobInfo struct {
	ID        string                 `json:"id"`
	State     string                 `json:"state"`
	Streaming bool                   `json:"streaming,omitempty"` // a POST /v1/sort job (output went to the response body)
	Input     string                 `json:"input,omitempty"`     // server-side input path (file jobs)
	Output    string                 `json:"output,omitempty"`    // server-side output path (file jobs)
	Submitted time.Time              `json:"submitted"`
	Finished  *time.Time             `json:"finished,omitempty"`
	Error     string                 `json:"error,omitempty"`
	Progress  *progressEvent         `json:"progress,omitempty"` // latest observed
	Result    *colsort.ResultSummary `json:"result,omitempty"`   // populated on done
}

// jobEntry is the registry's record of one job.
type jobEntry struct {
	mu     sync.Mutex
	info   jobInfo
	seq    int64         // bumped on every update; SSE dedupes on it
	notify chan struct{} // closed and replaced on every update (broadcast)
	done   chan struct{} // closed once on reaching a terminal state
	cancel context.CancelFunc
}

// snapshot returns a consistent copy of the entry's info and sequence.
func (e *jobEntry) snapshot() (jobInfo, int64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.info, e.seq
}

// wait returns the channel the next update will close.
func (e *jobEntry) wait() <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.notify
}

// broadcast wakes all waiters. Caller holds e.mu.
func (e *jobEntry) broadcast() {
	e.seq++
	close(e.notify)
	e.notify = make(chan struct{})
}

// onProgress is the WithProgress hook: coalesce the latest event, flip
// queued→running (the engine emits the first event only after admission),
// and wake the SSE subscribers. It runs on the sort's goroutines and holds
// the lock only for the swap.
func (e *jobEntry) onProgress(p colsort.Progress) {
	ev := eventOf(p)
	e.mu.Lock()
	if e.info.State == jobQueued {
		e.info.State = jobRunning
	}
	e.info.Progress = &ev
	e.broadcast()
	e.mu.Unlock()
}

// finish moves the entry to its terminal state.
func (e *jobEntry) finish(sum *colsort.ResultSummary, err error) {
	now := time.Now()
	e.mu.Lock()
	if err != nil {
		e.info.State = jobFailed
		e.info.Error = err.Error()
	} else {
		e.info.State = jobDone
		e.info.Result = sum
	}
	e.info.Finished = &now
	e.broadcast()
	close(e.done)
	e.mu.Unlock()
}

// jobRegistry holds every live job and a bounded tail of finished ones.
type jobRegistry struct {
	mu     sync.Mutex
	seq    int64
	jobs   map[string]*jobEntry
	order  []string // insertion order, for deterministic listing and eviction
	retain int      // finished jobs kept for GET after the fact

	// wg counts the background goroutines of file jobs; Drain waits on it.
	wg sync.WaitGroup
}

func newJobRegistry(retain int) *jobRegistry {
	if retain <= 0 {
		retain = 256
	}
	return &jobRegistry{jobs: make(map[string]*jobEntry), retain: retain}
}

// add mints a new entry in state queued.
func (r *jobRegistry) add(info jobInfo, cancel context.CancelFunc) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return r.addLocked(fmt.Sprintf("j%06d", r.seq), info, cancel)
}

// addWithID registers an entry under a caller-chosen id — boot re-adoption
// restarting a WAL-recorded job under its original identity. The registry's
// sequence must already be seeded past the id (seedSeq), so fresh
// submissions never collide with re-adopted jobs.
func (r *jobRegistry) addWithID(id string, info jobInfo, cancel context.CancelFunc) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addLocked(id, info, cancel)
}

// addLocked registers an entry in state queued. Caller holds r.mu.
func (r *jobRegistry) addLocked(id string, info jobInfo, cancel context.CancelFunc) *jobEntry {
	info.ID = id
	info.State = jobQueued
	info.Submitted = time.Now()
	e := &jobEntry{
		info:   info,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
		cancel: cancel,
	}
	r.jobs[info.ID] = e
	r.order = append(r.order, info.ID)
	r.evictLocked()
	return e
}

// seedSeq advances the id sequence to at least n, so ids minted after a
// restart never collide with ids persisted in the jobs WAL.
func (r *jobRegistry) seedSeq(n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.seq {
		r.seq = n
	}
}

// evictLocked drops the oldest FINISHED jobs beyond the retain bound, so a
// long-lived server's registry stays bounded while live jobs are never
// evicted. Caller holds r.mu.
func (r *jobRegistry) evictLocked() {
	finished := 0
	for _, id := range r.order {
		if e := r.jobs[id]; e != nil {
			if st, _ := e.snapshot(); st.State == jobDone || st.State == jobFailed {
				finished++
			}
		}
	}
	if finished <= r.retain {
		return
	}
	keep := r.order[:0]
	for _, id := range r.order {
		e := r.jobs[id]
		if e == nil {
			continue
		}
		st, _ := e.snapshot()
		if finished > r.retain && (st.State == jobDone || st.State == jobFailed) {
			delete(r.jobs, id)
			finished--
			continue
		}
		keep = append(keep, id)
	}
	r.order = keep
}

// get looks a job up by id.
func (r *jobRegistry) get(id string) *jobEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// list snapshots every registered job, oldest first.
func (r *jobRegistry) list() []jobInfo {
	r.mu.Lock()
	ids := append([]string(nil), r.order...)
	entries := make([]*jobEntry, 0, len(ids))
	for _, id := range ids {
		if e := r.jobs[id]; e != nil {
			entries = append(entries, e)
		}
	}
	r.mu.Unlock()
	out := make([]jobInfo, 0, len(entries))
	for _, e := range entries {
		info, _ := e.snapshot()
		out = append(out, info)
	}
	return out
}

// cancelAll cancels every job still holding a context — the drain
// deadline's last resort.
func (r *jobRegistry) cancelAll() {
	r.mu.Lock()
	entries := make([]*jobEntry, 0, len(r.jobs))
	for _, e := range r.jobs {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	for _, e := range entries {
		e.cancel()
	}
}
