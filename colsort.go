// Package colsort is an out-of-core, distributed-memory sorting library
// reproducing "Relaxing the Problem-Size Bound for Out-of-Core Columnsort"
// (Chaudhry, Hamon, Cormen; Dartmouth TR2003-445 / SPAA 2003).
//
// It sorts N fixed-size records arranged as an r×s matrix striped over the
// disks of a simulated P-processor cluster, using Leighton's columnsort and
// the paper's two problem-size-bound relaxations:
//
//   - Threaded columnsort (3 passes): N ≤ (M/P)^{3/2}/√2 — restriction (1)
//   - Subblock columnsort (4 passes): N ≤ (M/P)^{5/3}/4^{2/3} — restriction (2)
//   - M-columnsort (3 passes): N ≤ M^{3/2}/√2 — restriction (3)
//   - Combined (4 passes, the paper's future work): N ≤ M^{5/3}/4^{2/3}
//
// A minimal use looks like:
//
//	cfg := colsort.Config{Procs: 4, Disks: 8, MemPerProc: 1 << 16, RecordSize: 64}
//	sorter, err := colsort.New(cfg)
//	...
//	res, err := sorter.Sort(ctx, colsort.FromFile("in.dat"), colsort.ToFile("out.dat"),
//	        colsort.WithAlgorithm(colsort.Subblock))
//	...
//	res.Close()
//
// Sort is the single entry point of the v1 API: a context-aware streaming
// call from a Source (generator, file, byte buffer, io.Reader, existing
// store) to a Sink (file, io.Writer, discard), with functional options for
// the algorithm, hybrid group size, padding policy, progress reporting and
// a pluggable key schema (KeySpec). The v0 SortGenerated / SortStore /
// SortFile family, deprecated since the v1 surface landed, has been
// removed; see the README's migration table.
//
// To serve many sorts from one process, construct an Engine (NewEngine): a
// long-lived service owning the machine, the warm buffer pools and the
// scratch directory, admitting concurrent Sort jobs against a TotalMemory
// budget. A Sorter is a thin facade over a private engine — same machine
// lifecycle, same results — kept so single-job callers need not name the
// engine at all.
//
// The cluster (goroutine processors, message passing), the parallel disk
// model (memory- or file-backed disks with exact operation accounting) and
// the calibrated Beowulf-2003 cost model are all part of the library; see
// DESIGN.md for the architecture and EXPERIMENTS.md for the reproduced
// evaluation.
package colsort

import (
	"context"
	"errors"
	"fmt"

	"colsort/internal/bounds"
	"colsort/internal/core"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/verify"
)

// Algorithm selects the out-of-core sorting program.
type Algorithm = core.Algorithm

// ErrTooLarge marks planning failures where N exceeds the algorithm's
// problem-size restriction — the condition under which Sort (with PadAuto
// and a non-hybrid algorithm) takes the hierarchical runs-plus-merge path
// instead. Detect with errors.Is.
var ErrTooLarge = core.ErrTooLarge

// ErrHeightRestriction marks plan failures caused specifically by a
// columnsort height restriction (r ≥ 2s² and its relaxed/in-core
// variants) — the geometric condition the source paper relaxes. Where
// growing N cannot help it rides along with ErrTooLarge. Detect with
// errors.Is.
var ErrHeightRestriction = core.ErrHeightRestriction

// ErrSinkRequired marks an above-bound Sort called without a Sink: the
// hierarchical runs-plus-merge path streams its output and cannot sort in
// place. It rides along with ErrTooLarge (the condition that forced the
// hierarchical path). Detect with errors.Is.
var ErrSinkRequired = errors.New("colsort: a non-nil Sink is required")

// ErrMemoryTooSmall marks a WithMaxMemory cap under which no single run is
// plannable, so the hierarchical path cannot form runs at all. Detect with
// errors.Is.
var ErrMemoryTooSmall = errors.New("colsort: the WithMaxMemory cap is too small")

// ErrNoSpace marks a spill write that failed because the underlying device
// is full (ENOSPC/EDQUOT). It is classified permanent in the fault
// taxonomy: the job fails fast without burning retry or batch-redo budget,
// since a full disk never heals by retrying the same write. Detect with
// errors.Is.
var ErrNoSpace = pdm.ErrNoSpace

// PaddingError reports that no power-of-two padded record count makes n
// sortable with the requested algorithm. It records the range the planner
// searched; Unwrap yields the planner's final verdict (which wraps
// ErrTooLarge when growing further cannot help), so errors.Is/As both work.
type PaddingError struct {
	Alg     Algorithm
	Records int64 // the requested record count
	First   int64 // the smallest padded count tried (n rounded up to a power of two)
	Last    int64 // the largest padded count tried before giving up
	Err     error // the planner's final verdict
}

func (e *PaddingError) Error() string {
	return fmt.Sprintf("colsort: no power-of-two padding of %d records is sortable with %v (tried N = %d up to %d): %v",
		e.Records, e.Alg, e.First, e.Last, e.Err)
}

func (e *PaddingError) Unwrap() error { return e.Err }

// The available algorithms. See the package comment for their bounds.
const (
	Threaded4   = core.Threaded4
	Threaded    = core.Threaded
	Subblock    = core.Subblock
	MColumn     = core.MColumn
	Combined    = core.Combined
	BaselineIO3 = core.BaselineIO3
	BaselineIO4 = core.BaselineIO4
	// Hybrid is group columnsort with 2 ≤ g ≤ P/2 (Section-6 future
	// work); use PlanHybrid or WithHybridGroup, which take g.
	Hybrid = core.Hybrid
)

// Config describes the simulated cluster and the memory budget. It is
// construction-time only: a Config is consumed by New / NewEngine to build
// the machine, and nothing mutates it afterwards. Per-job knobs have
// functional-option counterparts (WithAsync, WithDiskModel, WithChaos,
// WithFabric, WithRetry); when a job passes one, the option overrides the
// corresponding Config field for that job alone — the engine's Config and
// every other job are untouched. Knobs with no option (Procs, Disks,
// MemPerProc, RecordSize, Dir, StripeBytes) define the machine itself and
// can only be chosen at construction.
type Config struct {
	// Procs is P, the number of processors (a power of 2).
	Procs int
	// Disks is D ≥ Procs with Procs | Disks; processor p owns disks
	// {p, p+P, ...}. Zero means D = P.
	Disks int
	// MemPerProc is the per-processor column buffer in records — the
	// paper's buffer-size knob. Threaded and subblock columnsort use
	// column height r = MemPerProc; M-columnsort uses r = MemPerProc·P.
	MemPerProc int
	// RecordSize in bytes (≥ 8, multiple of 8; the paper uses 64–128).
	RecordSize int
	// Dir, when non-empty, backs the simulated disks with files under
	// this directory (genuinely out-of-core); otherwise disks live in
	// memory.
	Dir string
	// StripeBytes is the striping unit across a processor's disks
	// (default 64 KiB).
	StripeBytes int
	// Async enables the asynchronous disk layer: the passes' known future
	// access sequence drives read-ahead, and writes retire in the
	// background with errors surfaced at each pass's flush and at Close.
	// Operation counts are identical to a synchronous run. Overridable
	// per job with WithAsync.
	Async bool
	// ReadAhead and WriteBehind bound the per-disk async queues (staged
	// prefetch extents / buffered writes); 0 selects the defaults.
	ReadAhead   int
	WriteBehind int
	// DiskSeekMicros and DiskMBps, when positive, impose a per-operation
	// service time on every disk (seek per discontiguous access plus
	// bytes/bandwidth), modeling physical disks on hardware whose page
	// cache would otherwise hide I/O cost. The delay sits below the async
	// layer, so prefetch and write-behind genuinely overlap it.
	// Overridable per job with WithDiskModel.
	DiskSeekMicros int
	DiskMBps       int
	// Chaos, when non-nil, injects seeded storage faults under every disk
	// (below the retry layer): transient read/write errors, silent
	// bit-flip and torn-write corruption, and scripted permanent spill
	// disk death. It exists to exercise the fault-tolerance layers —
	// production configurations leave it nil. Overridable per job with
	// WithChaos. See DESIGN.md §9.
	Chaos *ChaosConfig
}

// ChaosConfig configures the seeded storage-fault injection harness; see
// Config.Chaos. The same Seed over the same workload reproduces the same
// fault pattern (the chaos soak prints the seed of a failing run so it can
// be replayed via COLSORT_CHAOS_SEED).
type ChaosConfig struct {
	// Seed drives every probabilistic draw.
	Seed uint64
	// PTransient is the per-operation probability of a transient fault on
	// reads and writes — healed by the retry policy (see WithRetry).
	PTransient float64
	// PBitFlip is the per-read probability of silently flipping one bit
	// of the returned data; only integrity checks can notice.
	PBitFlip float64
	// PTorn is the per-write probability of a silent torn write: only a
	// prefix of the buffer persists and no error is reported.
	PTorn float64
	// Scripted faults, keyed by 1-based spill-disk ordinal (0 disables):
	// TornSpillWrite tears that spill disk's first write (caught by the
	// post-spill scrub, driving a batch redo); FlipSpillRead flips one bit
	// of that spill disk's first read (caught by the merge's CRC check and
	// healed by a reread); DeadSpillDisk permanently fails that spill disk
	// once DeadSpillAfter bytes have been written to it (driving a batch
	// redo onto a fresh disk).
	TornSpillWrite int
	FlipSpillRead  int
	DeadSpillDisk  int
	DeadSpillAfter int64
}

// Sorter is a configured out-of-core sorting engine for one caller: a thin
// facade over a private Engine with no admission budget, kept so code that
// sorts one input at a time need not manage an engine. All methods
// delegate; Engine exposes the underlying service for callers that grow
// into concurrent jobs.
type Sorter struct {
	e *Engine
}

// New validates the configuration and builds a Sorter (a facade over a
// private, unbudgeted Engine).
func New(cfg Config) (*Sorter, error) {
	e, err := NewEngine(EngineConfig{Config: cfg})
	if err != nil {
		return nil, err
	}
	return &Sorter{e: e}, nil
}

// Engine returns the Sorter's underlying engine, for callers that want the
// service interface (concurrent jobs, admission control, Stats) without
// reconstructing the machine.
func (s *Sorter) Engine() *Engine { return s.e }

// Sort submits one job to the Sorter's private engine; see Engine.Sort for
// the full contract. Unlike the pre-engine Sorter, concurrent Sort calls
// on one Sorter are safe: each is an isolated job sharing only the warm
// buffer pools.
func (s *Sorter) Sort(ctx context.Context, src Source, dst Sink, opts ...Option) (*Result, error) {
	return s.e.Sort(ctx, src, dst, opts...)
}

// Plan validates that the algorithm can sort n records under the
// configuration and returns the resulting execution plan (matrix shape,
// layout, pass structure). The error explains any violated restriction.
func (e *Engine) Plan(alg Algorithm, n int64) (core.Plan, error) {
	return core.NewPlan(alg, n, e.cfg.Procs, e.cfg.Disks, e.cfg.MemPerProc, e.cfg.RecordSize)
}

// Plan delegates to Engine.Plan.
func (s *Sorter) Plan(alg Algorithm, n int64) (core.Plan, error) { return s.e.Plan(alg, n) }

// PlanHybrid validates hybrid group columnsort with group size g: column
// height r = g·MemPerProc, interpolating between Threaded (g = 1) and
// MColumn (g = P).
func (e *Engine) PlanHybrid(g int, n int64) (core.Plan, error) {
	return core.NewHybridPlan(n, e.cfg.Procs, e.cfg.Disks, e.cfg.MemPerProc, e.cfg.RecordSize, g)
}

// PlanHybrid delegates to Engine.PlanHybrid.
func (s *Sorter) PlanHybrid(g int, n int64) (core.Plan, error) { return s.e.PlanHybrid(g, n) }

// PlanHierarchical delegates to Engine.PlanHierarchical.
func (s *Sorter) PlanHierarchical(alg Algorithm, n int64, maxMemory int64) (core.Plan, int, error) {
	return s.e.PlanHierarchical(alg, n, maxMemory)
}

// MaxRecords returns the largest power-of-two record count the algorithm
// can sort under this configuration (the practical counterpart of the
// paper's real-valued bounds; see the bounds package for those).
func (e *Engine) MaxRecords(alg Algorithm) int64 {
	var best int64
	for n := int64(e.cfg.MemPerProc); n > 0 && n <= int64(1)<<52; n *= 2 {
		if _, err := e.Plan(alg, n); err == nil && n > best {
			best = n
		}
	}
	return best
}

// MaxRecords delegates to Engine.MaxRecords.
func (s *Sorter) MaxRecords(alg Algorithm) int64 { return s.e.MaxRecords(alg) }

// Result is a completed sort: the sorted output store plus exact operation
// counts and the means to verify and cost it.
type Result struct {
	*core.Result
	want record.Checksum
	// realN is the number of caller records when the sort was padded to a
	// power of two; 0 means unpadded.
	realN int64
	// codec is the compiled KeySpec of the run: Result.Output holds records
	// in its normalized key space, and every egress path decodes through
	// it. The zero codec is the identity (native key layout).
	codec record.KeyCodec
	// JobID is the engine job number of this sort — the id that names its
	// scratch-file namespace (pdm.JobScratchPrefix) and attributes it in
	// engine stats. Ids are unique per engine, assigned in admission order.
	JobID int64
	// Faults reports what the fault-tolerance layers absorbed or detected
	// during this sort: all zero on a healthy run. Any non-zero field means
	// the storage stack misbehaved and the sort recovered (the output is
	// verified either way); DiskGiveUps > 0 means some transient faults
	// exhausted the retry budget (the sort failed unless a batch redo
	// covered them). Under an engine the counters are job-scoped: faults of
	// concurrent jobs never bleed into each other's reports.
	Faults FaultStats
	// Merge, non-nil after a hierarchical (above-bound) sort, reports the
	// run-formation and merge statistics. Hierarchical results have a nil
	// Output — the sorted records were streamed to the Sink, verified on
	// the way — and their Plan describes ONE run of Merge.RunRecords
	// records, not the whole input. PassCounters (and therefore Estimate /
	// EstimateBeowulf) sum the engine passes of all run-formation batches
	// only: the merge's own spill and sink traffic lives outside the cost
	// model and is reported here in BytesRead/BytesWritten.
	Merge *MergeStats
}

// FaultStats reports the fault-tolerance activity of one sort; see
// Result.Faults and DESIGN.md §9 for the failure model. The JSON tags are
// the wire representation of the colsort-server's job summaries;
// TestWireEncodingGolden pins them.
type FaultStats struct {
	DiskRetries   int64 `json:"disk_retries"`   // transient disk faults healed by retry
	DiskGiveUps   int64 `json:"disk_give_ups"`  // transient faults that exhausted the retry budget
	CorruptChunks int64 `json:"corrupt_chunks"` // spill-run chunks that failed CRC32C verification
	ChunkRereads  int64 `json:"chunk_rereads"`  // corrupt chunks healed by an invalidate-and-reread
	BatchRedos    int64 `json:"batch_redos"`    // run-formation batches re-sorted and re-spilled
}

// Any reports whether any fault-tolerance machinery fired.
func (f FaultStats) Any() bool {
	return f != FaultStats{}
}

// TotalCounters sums all passes and processors, folding the sort's
// fault-tolerance activity (Result.Faults) into the counters' fault fields —
// the engine's per-pass counters cannot carry those, because retries and
// redos happen outside any single processor's accounting.
func (r *Result) TotalCounters() sim.Counters {
	c := r.Result.TotalCounters()
	c.DiskRetries += r.Faults.DiskRetries
	c.DiskGiveUps += r.Faults.DiskGiveUps
	c.CorruptChunks += r.Faults.CorruptChunks
	c.ChunkRereads += r.Faults.ChunkRereads
	c.BatchRedos += r.Faults.BatchRedos
	return c
}

// MergeStats describes the hierarchical execution of an above-bound sort:
// how the input was cut into engine-sized runs and how the runs were merged
// back into one stream. The JSON tags are the wire representation of the
// colsort-server's job summaries; TestWireEncodingGolden pins them.
type MergeStats struct {
	Runs       int   `json:"runs"`        // sorted runs formed
	Levels     int   `json:"levels"`      // merge-tree levels, including the final merge into the Sink
	FanIn      int   `json:"fan_in"`      // maximum runs merged at once
	RunRecords int64 `json:"run_records"` // records one run's memory budget holds (the single-run plan's N); fixed-batch runs are exactly this long, replacement selection averages ~2× it

	BytesRead    int64 `json:"bytes_read"`    // bytes read back from spilled runs by the merges
	BytesWritten int64 `json:"bytes_written"` // bytes written to run spills (formation and intermediate levels) plus streamed to the Sink

	// Formation names the run-formation mode that produced the runs
	// ("replacement-select" or "fixed-batch").
	Formation string `json:"formation,omitempty"`
	// DownRuns counts runs formed (and spilled) in descending order —
	// replacement selection's "down" runs; always 0 under fixed batches.
	DownRuns int `json:"down_runs,omitempty"`
	// MinRunRecords/MaxRunRecords bound the formed run lengths, making the
	// data-dependence of replacement selection observable.
	MinRunRecords int64 `json:"min_run_records,omitempty"`
	MaxRunRecords int64 `json:"max_run_records,omitempty"`
	// ResumedRuns counts verified runs adopted from a persisted manifest by
	// Engine.Resume instead of being re-sorted; always 0 on an
	// uninterrupted sort. A merge-phase resume has ResumedRuns == Runs:
	// zero batches were re-sorted.
	ResumedRuns int `json:"resumed_runs,omitempty"`
}

// ResultSummary is the JSON-ready digest of a completed sort — the wire
// representation the colsort-server returns from its job API. It carries
// everything a remote caller can use (counts, plan, merge shape, faults,
// exact operation counters) and nothing process-local (no store, no codec).
// TestWireEncodingGolden pins the encoding.
type ResultSummary struct {
	// JobID is the engine job number of the sort (Result.JobID).
	JobID int64 `json:"job_id"`
	// Records is the number of caller records sorted (padding excluded).
	Records int64 `json:"records"`
	// Plan is the human-readable execution plan. For hierarchical sorts it
	// describes ONE run-formation batch; see Merge for the overall shape.
	Plan string `json:"plan"`
	// Merge is non-nil after a hierarchical (above-bound) sort.
	Merge *MergeStats `json:"merge,omitempty"`
	// Faults reports the fault-tolerance activity of the sort.
	Faults FaultStats `json:"faults"`
	// Counters sums all passes and processors, fault fields folded in
	// (Result.TotalCounters).
	Counters sim.Counters `json:"counters"`
}

// Summary digests the Result into its wire representation; see
// ResultSummary.
func (r *Result) Summary() ResultSummary {
	s := ResultSummary{
		JobID:   r.JobID,
		Records: r.RealRecords(),
		Faults:  r.Faults,
	}
	if r.Result != nil {
		s.Plan = r.Plan.String()
		s.Counters = r.TotalCounters()
	}
	if r.Merge != nil {
		m := *r.Merge
		s.Merge = &m
	}
	return s
}

// Verify checks that the output is globally sorted (in the PDM column-major
// order of footnote 6) and that the record multiset was preserved. For
// padded sorts it verifies the real prefix and that only pads follow.
func (r *Result) Verify() error {
	if r.Output == nil {
		// Hierarchical sorts verify in-stream: each run passes the engine's
		// output verification before it may feed the merge, the merge
		// checks the emitted order record by record, and the emitted
		// multiset is compared against the ingest checksum at end of
		// stream. A Result exists only when all of those passed.
		return nil
	}
	if r.realN > 0 && r.realN < r.Plan.N {
		return verify.OutputPrefix(r.Output, r.realN, r.want)
	}
	return verify.Output(r.Output, r.want)
}

// RealRecords returns the number of caller records in the output (excluding
// padding): the sorted data is the first RealRecords records in column-major
// order.
func (r *Result) RealRecords() int64 {
	if r.realN > 0 {
		return r.realN
	}
	return r.Plan.N
}

// EstimateBeowulf prices the run on the paper's testbed via the calibrated
// cost model.
func (r *Result) EstimateBeowulf() sim.RunEstimate {
	return r.Estimate(sim.Beowulf2003())
}

// Close releases the output store (a no-op for hierarchical results, whose
// output lives in the caller's Sink).
func (r *Result) Close() error {
	if r.Output == nil {
		return nil
	}
	return r.Output.Close()
}

// PlanPadded reports the plan a PadAuto Sort of n records would execute:
// n itself when directly plannable, otherwise the smallest covering power
// of two the planner accepts — the probe `colsort -plan` uses to predict a
// run without executing it. Above-bound counts fail with ErrTooLarge (the
// condition under which Sort switches to the hierarchical path; see
// PlanHierarchical for that plan).
func (e *Engine) PlanPadded(alg Algorithm, n int64) (core.Plan, error) {
	return e.planPadded(alg, n)
}

// PlanPadded delegates to Engine.PlanPadded.
func (s *Sorter) PlanPadded(alg Algorithm, n int64) (core.Plan, error) {
	return s.e.PlanPadded(alg, n)
}

// planPadded finds the plan a padded sort of n records would execute: the
// smallest covering power of two the planner accepts. The covering power
// may still violate a divisibility condition (or be smaller than one
// column); growing continues until the planner accepts, or the
// problem-size restriction says growing cannot help.
func (e *Engine) planPadded(alg Algorithm, n int64) (core.Plan, error) {
	if n < 1 {
		return core.Plan{}, fmt.Errorf("colsort: cannot sort %d records", n)
	}
	if alg == Hybrid {
		// Plan(Hybrid) can never succeed (it needs a group size), so the
		// doubling search below would fail with a misleading error.
		return core.Plan{}, fmt.Errorf("colsort: hybrid group columnsort is not supported for padded or file sorts; use WithHybridGroup with a power-of-two record count")
	}
	n2 := int64(1)
	for n2 < n {
		n2 *= 2
	}
	var lastErr error
	last := n2
	for try := n2; try > 0 && try <= 1<<52; try *= 2 {
		pl, err := e.Plan(alg, try)
		if err == nil {
			return pl, nil
		}
		lastErr = err
		last = try
		if errors.Is(err, core.ErrTooLarge) {
			break
		}
	}
	return core.Plan{}, &PaddingError{Alg: alg, Records: n, First: n2, Last: last, Err: lastErr}
}

// InputStore allocates an input store shaped for the algorithm and n, to be
// filled by the caller (e.g. via its Fill method).
func (e *Engine) InputStore(alg Algorithm, n int64) (*pdm.Store, error) {
	pl, err := e.Plan(alg, n)
	if err != nil {
		return nil, err
	}
	return e.m.NewStore(pl.R, pl.S, pl.Z, pl.Layout)
}

// InputStore delegates to Engine.InputStore.
func (s *Sorter) InputStore(alg Algorithm, n int64) (*pdm.Store, error) {
	return s.e.InputStore(alg, n)
}

// Bound returns the paper's real-valued problem-size bound, in records, for
// the algorithm under this configuration, treating MemPerProc as M/P.
func (e *Engine) Bound(alg Algorithm) (float64, error) {
	m := int64(e.cfg.MemPerProc) * int64(e.cfg.Procs)
	p := int64(e.cfg.Procs)
	switch alg {
	case Threaded, Threaded4:
		return bounds.MaxN(bounds.Threaded, m, p), nil
	case Subblock:
		return bounds.MaxN(bounds.Subblock, m, p), nil
	case MColumn:
		return bounds.MaxN(bounds.MColumnsort, m, p), nil
	case Combined:
		return bounds.MaxN(bounds.Combined, m, p), nil
	}
	return 0, fmt.Errorf("colsort: no problem-size bound for %v", alg)
}

// Bound delegates to Engine.Bound.
func (s *Sorter) Bound(alg Algorithm) (float64, error) { return s.e.Bound(alg) }
