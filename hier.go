package colsort

// Hierarchical execution: the layer that takes Sort past any single
// columnsort run's problem-size bound. When n exceeds what one run can hold
// (the algorithm's restriction, or a WithMaxMemory cap), the source is
// split into B maximal-size batches; each batch is sorted by the existing
// engine on ONE persistent cluster fabric (warm buffer pools and pipeline
// scratch across batches), verified, and spilled as a sorted run; and the
// runs are combined by a loser-tree k-way merge with prefetch on the run
// reads and write-behind on the merged output, streaming straight into the
// Sink — no extra materialization pass. See DESIGN.md §7 for the contracts.

import (
	"errors"
	"fmt"
	"math/bits"
	"os"

	"context"

	"colsort/internal/core"
	"colsort/internal/merge"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/runform"
	"colsort/internal/sim"
	"colsort/internal/verify"
)

// defaultMergeFanIn is the runs-per-merge bound when WithMergeFanIn is not
// given: wide enough that inputs dozens of times the bound merge in one
// level, narrow enough that the read streams' prefetch buffers stay small.
const defaultMergeFanIn = 16

// defaultRedoBudget is how many batch redos a hierarchical sort may spend
// when RetryPolicy does not set one: enough to survive a failed spill disk
// plus one unlucky verification, small enough that a systematically failing
// storage stack still fails the sort promptly.
const defaultRedoBudget = 2

// wantHierarchical decides whether this Sort must take the hierarchical
// (runs + merge) path: the record count exceeds the algorithm's single-run
// problem-size bound, or a WithMaxMemory cap forces smaller runs. Hybrid
// group runs and PadNever sorts keep their strict single-run contracts.
func (e *Engine) wantHierarchical(o sortOptions, pl core.Plan, plErr error) (bool, error) {
	eligible := o.group == 0 && o.padding == PadAuto
	if plErr == nil {
		if o.maxMemory > 0 && pl.N*int64(pl.Z) > o.maxMemory {
			if !eligible {
				return false, fmt.Errorf("colsort: WithMaxMemory(%d) needs the hierarchical path, which supports only PadAuto and non-hybrid algorithms", o.maxMemory)
			}
			return true, nil
		}
		return false, nil
	}
	return eligible && errors.Is(plErr, core.ErrTooLarge), nil
}

// planRun finds the run plan of a hierarchical sort — the batch sizing
// rule: the largest power-of-two record count the algorithm can sort in ONE
// run under the configuration and the WithMaxMemory cap. The last, partial
// batch is padded up to this same shape (with maximal records, trimmed at
// spill time), so every batch reuses one plan and one fabric.
func (e *Engine) planRun(o sortOptions) (core.Plan, error) {
	z := int64(e.cfg.RecordSize)
	var best core.Plan
	var smallest int64 // smallest plannable run, for the error message
	found := false
	for try := int64(1); try > 0 && try <= 1<<52; try *= 2 {
		pl, err := e.Plan(o.alg, try)
		if err != nil {
			continue
		}
		if smallest == 0 {
			smallest = try
		}
		if o.maxMemory > 0 && try*z > o.maxMemory {
			continue // plannable but over the cap: only the error message cares
		}
		best, found = pl, true
	}
	if !found {
		if o.maxMemory > 0 && smallest > 0 {
			return core.Plan{}, fmt.Errorf("%w: WithMaxMemory(%d) admits no single %v run (the smallest plannable run is %d records × %d B = %d bytes); raise the cap or shrink MemPerProc",
				ErrMemoryTooSmall, o.maxMemory, o.alg, smallest, e.cfg.RecordSize, smallest*z)
		}
		return core.Plan{}, fmt.Errorf("colsort: no single-run plan exists for %v under this configuration", o.alg)
	}
	return best, nil
}

// mergeChunkRecs sizes the per-run read chunk and the emit chunk of the
// merges: half a column buffer by default, shrunk so that fanIn read
// streams plus the emit queue stay within a WithMaxMemory cap, clamped so
// chunks stay large enough to amortize per-chunk costs yet bounded in
// memory.
func (e *Engine) mergeChunkRecs(o sortOptions, fanIn int) int {
	c := e.cfg.MemPerProc / 2
	if o.maxMemory > 0 {
		if byBudget := int(o.maxMemory / int64((fanIn+4)*e.cfg.RecordSize)); byBudget < c {
			c = byBudget
		}
	}
	if c < 64 {
		c = 64
	}
	if c > 1<<16 {
		c = 1 << 16
	}
	return c
}

// PlanHierarchical reports how an above-bound Sort would execute n records
// hierarchically: the single-run plan chosen by the batch sizing rule (the
// largest plannable run, optionally capped at maxMemory bytes of records;
// 0 means no cap) and the number of run-formation batches. It lets callers
// and `colsort -plan` price an above-bound sort without running it.
//
// batches is exact for WithRunFormation(FixedBatch). Under the default
// replacement selection, run count is data-dependent — typically about
// half of batches on random input, as low as 1 on nearly-sorted input —
// and batches is its worst-case BOUND (render it as "≤ batches", the way
// `colsort -plan` does), reached only when every arrival breaks the
// current run.
func (e *Engine) PlanHierarchical(alg Algorithm, n int64, maxMemory int64) (runPlan core.Plan, batches int, err error) {
	if n < 1 {
		return core.Plan{}, 0, fmt.Errorf("colsort: cannot sort %d records", n)
	}
	if maxMemory < 0 {
		return core.Plan{}, 0, fmt.Errorf("colsort: negative run-size cap %d", maxMemory)
	}
	runPlan, err = e.planRun(sortOptions{alg: alg, maxMemory: maxMemory})
	if err != nil {
		return core.Plan{}, 0, err
	}
	return runPlan, int((n + runPlan.N - 1) / runPlan.N), nil
}

// sortHierarchical executes the runs-plus-merge plan for n records arriving
// on rd, on the job's machine. The caller has already compiled the codec,
// validated the options, checked dst is non-nil, and chosen runPl; rd is
// closed by Sort's defer.
//
// rs, when non-nil, is a crash-resume: the live runs a previous process
// spilled and verified (reopened from the checkpoint manifest) are adopted
// instead of re-formed. With rs.ingestDone the formation phase is skipped
// entirely — zero records are re-sorted — and the merge restarts from the
// durable run set; otherwise (fixed-batch formation) the source records the
// durable runs cover are skipped (their multiset verified against the
// manifest) and only the unfinished batches are formed. rd may be nil only
// when rs.ingestDone.
func (j *job) sortHierarchical(ctx context.Context, rd RecordReader, dst Sink, o sortOptions, codec record.KeyCodec, n int64, runPl core.Plan, rs *resumeState) (*Result, error) {
	fanIn := o.fanIn
	if fanIn == 0 {
		fanIn = defaultMergeFanIn
	}
	chunk := j.e.mergeChunkRecs(o, fanIn)
	nBatches := int((n + runPl.N - 1) / runPl.N)
	stats := &MergeStats{FanIn: fanIn, RunRecords: runPl.N, Formation: o.formation.String()}

	// Durability: open (or, on resume, reopen for appending) the manifest
	// WAL. Every ckpt call below is a nil-safe no-op for ordinary jobs.
	if o.checkpoint != "" {
		firstID := 0
		if rs != nil {
			firstID = rs.maxID
		}
		ckpt, err := openManifestLog(o.checkpoint, firstID)
		if err != nil {
			return nil, err
		}
		j.ckpt = ckpt
		defer func() { j.ckpt.close() }() // failure path: keep state, release the handle
		if rs == nil {
			if err := ckpt.logBegin(o, j.e.cfg.RecordSize, n, runPl.N, fanIn); err != nil {
				return nil, err
			}
		}
	}

	// Recovery policy: how many whole batches may be re-sorted and
	// re-spilled, and whether every spilled run gets a post-spill CRC
	// readback. The scrub is always on under chaos injection (the only way
	// a torn spill write is caught while its batch can still be redone) and
	// opt-in otherwise — on healthy storage it costs one extra sequential
	// read of every spilled byte to detect nothing.
	redoBudget := defaultRedoBudget
	scrub := j.m.Chaos != nil
	if o.retry != nil {
		if o.retry.RedoBudget != 0 {
			redoBudget = o.retry.RedoBudget
		}
		if redoBudget < 0 {
			redoBudget = 0
		}
		scrub = scrub || o.retry.Scrub
	}

	spillSeq := 0
	newSpill := func() (pdm.Disk, error) {
		d, err := j.m.NewSpillDisk(spillSeq)
		spillSeq++
		return d, err
	}

	live := make([]*merge.Run, 0, nBatches)
	var ids []int // manifest ids parallel to live; populated only under checkpointing
	defer func() {
		for _, r := range live {
			if r != nil {
				r.Close()
			}
		}
	}()

	var want record.Checksum
	var passCnts [][]sim.Counters
	resumed := false
	if rs != nil {
		live = append(live, rs.live...)
		ids = append(ids, rs.ids...)
		rs.live = nil // this job owns them now
		want = rs.want
		stats.ResumedRuns = len(live)
		resumed = rs.ingestDone
	}
	switch {
	case rs != nil && rs.ingestDone:
		// Merge-phase resume: every run is durable and verified; nothing is
		// ingested or sorted in this process.
	case o.formation == FixedBatch:
		// Fixed-batch run formation: ingest one maximal batch at a time
		// (the tail of the last batch padded with maximal records), sort it
		// on the persistent fabric, verify it, and spill its real prefix —
		// still in the codec's normalized key space, so the merge compares
		// at native speed — as one sorted run.
		br, err := core.NewBatchRunner(ctx, runPl, j.m)
		if err != nil {
			return nil, err
		}
		defer br.Close()
		remaining := n
		startBatch := 0
		if rs != nil {
			// Formation-phase resume: the durable runs cover the source's
			// first rs.consumed records. Skip them — verifying their multiset
			// against the manifest's checksum, so a changed source cannot
			// silently merge against the old runs — and form only the
			// batches the crash interrupted.
			if err := skipConsumed(ctx, rd, codec, j.e.cfg.RecordSize, rs.consumed, rs.want); err != nil {
				return nil, err
			}
			remaining -= rs.consumed
			startBatch = len(live)
		}
		for b := startBatch; b < nBatches; b++ {
			real := remaining
			if real > runPl.N {
				real = runPl.N
			}
			remaining -= real
			input, err := runPl.NewStore(j.m)
			if err != nil {
				return nil, err
			}
			cs, err := fillStore(ctx, input, rd, codec, real)
			if err != nil {
				input.Close()
				return nil, err
			}
			want.Merge(cs)
			var hooks core.Hooks
			if o.progress != nil {
				batch, total, fn := b+1, nBatches, o.progress
				hooks.Progress = func(ev Progress) {
					ev.Batch, ev.Batches = batch, total
					fn(ev)
				}
			}
			run, err := j.formRun(ctx, br, input, hooks, real, cs, newSpill, chunk,
				scrub, redoBudget, &passCnts, b+1, nBatches)
			input.Close()
			if err != nil {
				return nil, err
			}
			stats.BytesWritten += run.Bytes() // run-formation spill
			if stats.MinRunRecords == 0 || real < stats.MinRunRecords {
				stats.MinRunRecords = real
			}
			if real > stats.MaxRunRecords {
				stats.MaxRunRecords = real
			}
			live = append(live, run)
			// Durability point: the run's bytes reach stable storage before
			// the manifest entry that claims them does.
			if j.ckpt != nil {
				if err := pdm.SyncDisk(run.Disk); err != nil {
					return nil, err
				}
				id, err := j.ckpt.logRun(run, n-remaining, want)
				if err != nil {
					return nil, err
				}
				ids = append(ids, id)
			}
		}
		br.Close() // run formation done: release the fabric before merging
	default:
		// Replacement selection: the heap owns the run boundaries and the
		// engine's fabric never runs — order comes from the heap, and
		// verification from the merge's in-stream order check plus the
		// final multiset comparison against the ingest checksum.
		//
		// A formation-phase resume cannot reach here: replacement-selection
		// runs do not cover a contiguous source prefix (the heap's contents
		// at the crash are unrecoverable), so Resume restarts RS formation
		// from scratch and arrives with rs == nil.
		if rs != nil {
			return nil, fmt.Errorf("colsort: internal: formation-phase resume under replacement selection")
		}
		if err := j.formRunsReplacement(ctx, rd, o, codec, n, runPl, &live, &ids,
			newSpill, chunk, scrub, redoBudget, stats, &want); err != nil {
			return nil, err
		}
	}
	if !resumed {
		// Durability point: formation is complete and every run durable;
		// after this entry a resume never re-sorts a single record.
		if err := j.ckpt.logIngestDone(want); err != nil {
			return nil, err
		}
	}
	stats.Runs = len(live)
	formSpill := stats.BytesWritten // formation-phase bytes, before any merge traffic
	runs := live
	live = nil // mergePhase owns the run set (and its close-on-error) now
	return j.mergePhase(ctx, runs, ids, dst, o, codec, n, runPl, stats, want, passCnts, formSpill, nBatches, chunk, fanIn, resumed)
}

// mergePhase reduces the run set level by level and streams the final merge
// into the sink, verifying order in-stream and the multiset at end of
// stream. Under checkpointing each intermediate merge output becomes
// durable (fsync + "merged" WAL entry) before its consumed inputs are
// removed, so a crash at any point leaves a run set that re-merges to
// byte-identical output; on success the checkpoint state is retired.
// ids maps live runs to their manifest ids (parallel slice; nil when not
// checkpointing). resumed marks a merge-phase resume, whose formation work
// happened in a previous process.
func (j *job) mergePhase(ctx context.Context, live []*merge.Run, ids []int, dst Sink, o sortOptions, codec record.KeyCodec, n int64, runPl core.Plan, stats *MergeStats, want record.Checksum, passCnts [][]sim.Counters, formSpill int64, nBatches, chunk, fanIn int, resumed bool) (*Result, error) {
	defer func() {
		for _, r := range live {
			if r != nil {
				r.Close()
			}
		}
	}()
	spillSeq := len(live)
	newSpill := func() (pdm.Disk, error) {
		d, err := j.m.NewSpillDisk(spillSeq)
		spillSeq++
		return d, err
	}

	// Merge progress is cumulative across EVERY level, against the total
	// record count all merges together will emit — and clamped monotonic in
	// the emitter: with variable-length runs (and pass-through leftovers)
	// a per-level percent could otherwise regress between levels.
	opt := merge.Options{ChunkRecs: chunk, Faults: &j.faults}
	var mergedBase int64
	if o.progress != nil {
		var mergeTotal int64
		sizes := make([]int64, len(live))
		for i, r := range live {
			sizes[i] = r.Records
		}
		for len(sizes) > fanIn {
			var next []int64
			for lo := 0; lo < len(sizes); lo += fanIn {
				hi := lo + fanIn
				if hi > len(sizes) {
					hi = len(sizes)
				}
				if hi == lo+1 {
					next = append(next, sizes[lo])
					continue
				}
				var sum int64
				for _, v := range sizes[lo:hi] {
					sum += v
				}
				mergeTotal += sum
				next = append(next, sum)
			}
			sizes = next
		}
		mergeTotal += n // the final merge emits every record
		batches, fn := nBatches, o.progress
		if o.formation != FixedBatch {
			batches = len(live)
		}
		var lastEmitted int64
		opt.Progress = func(merged int64) {
			cum := mergedBase + merged
			if cum < lastEmitted {
				cum = lastEmitted
			}
			if cum > mergeTotal {
				cum = mergeTotal
			}
			lastEmitted = cum
			fn(Progress{Batches: batches, MergedRecords: cum, TotalRecords: mergeTotal})
		}
	}

	// Merge tree: reduce the run set level by level until one merge fans
	// into the sink. The merges verify every CRC frame they load, healing
	// transient read corruption with a reread and counting both into the
	// job's fault stats.
	for len(live) > fanIn {
		stats.Levels++
		next := make([]*merge.Run, 0, (len(live)+fanIn-1)/fanIn)
		var nextIDs []int
		for lo := 0; lo < len(live); lo += fanIn {
			hi := lo + fanIn
			if hi > len(live) {
				hi = len(live)
			}
			if hi == lo+1 { // a lone leftover run passes through unrewritten
				next = append(next, live[lo])
				live[lo] = nil
				if j.ckpt != nil {
					nextIDs = append(nextIDs, ids[lo])
				}
				continue
			}
			d, err := newSpill()
			if err != nil {
				live = append(next, live[lo:]...)
				return nil, err
			}
			out, st, err := merge.MergeToRun(ctx, live[lo:hi], d, opt)
			if err != nil {
				d.Close()
				live = append(next, live[lo:]...)
				return nil, err
			}
			stats.BytesRead += st.BytesRead
			stats.BytesWritten += st.BytesWritten
			mergedBase += out.Records
			var outID int
			if j.ckpt != nil {
				// Durability points, in order: the merged output reaches
				// stable storage; the WAL records it (with the input ids it
				// consumed); only then are the consumed input files removed.
				// A crash between any two steps leaves either the inputs
				// live (the merge is redone) or the output live with orphan
				// inputs (swept at resume) — never a gap in the data.
				if err := pdm.SyncDisk(out.Disk); err != nil {
					out.Close()
					live = append(next, live[lo:]...)
					return nil, err
				}
				if outID, err = j.ckpt.logMerged(out, ids[lo:hi]); err != nil {
					out.Close()
					live = append(next, live[lo:]...)
					return nil, err
				}
			}
			for i := lo; i < hi; i++ {
				j.closeConsumedRun(live[i])
				live[i] = nil
			}
			next = append(next, out)
			if j.ckpt != nil {
				nextIDs = append(nextIDs, outID)
			}
		}
		live = next
		ids = nextIDs
	}

	// Final merge: stream straight into the sink, decoding each chunk on
	// the write-behind worker so the sink's I/O and the codec's work
	// overlap the compare/copy loop and the runs' prefetch. The emitted
	// order is checked record by record and the emitted multiset compared
	// to the ingest checksum at end of stream — streaming verification, at
	// the cost that a late failure means the sink has already received
	// bytes that must be discarded (Sort reports the error either way).
	stats.Levels++
	w, err := dst.Open(j.e.cfg.RecordSize)
	if err != nil {
		return nil, err
	}
	got, st, err := merge.Merge(ctx, live, func(c record.Slice) error {
		codec.Decode(c)
		return w.Write(c)
	}, opt)
	stats.BytesRead += st.BytesRead
	stats.BytesWritten += st.BytesWritten
	if err != nil {
		w.Close()
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if !got.Equal(want) {
		return nil, fmt.Errorf("colsort: streaming verification failed: the merged output's multiset (%d records) differs from the input's (%d); discard the sink's contents", got.Count, want.Count)
	}
	if j.ckpt != nil {
		// The sink holds the verified output: record completion and retire
		// the checkpoint state (manifest and remaining run files).
		for i, r := range live {
			if r != nil {
				r.Close()
				live[i] = nil
			}
		}
		j.ckpt.complete()
		j.ckpt = nil
	}
	if resumed {
		// Only the merge ran in this process; account it as one synthetic
		// pass so engine-wide counters reflect work actually performed here.
		passCnts = [][]sim.Counters{
			{{
				CompareUnits:   (mergedBase + n) * int64(bits.Len64(uint64(fanIn))),
				DiskReadBytes:  stats.BytesRead,
				DiskReadOps:    int64(stats.Runs),
				DiskWriteBytes: stats.BytesWritten,
				DiskWriteOps:   int64(stats.Levels),
				MovedBytes:     (mergedBase + n) * int64(runPl.Z),
			}},
		}
	} else if o.formation != FixedBatch {
		// The engine fabric never ran under replacement selection, so its
		// real work — the selection heap and the merge tree — is accounted
		// as two synthetic passes. Engine.Stats' cumulative counters (and
		// the server's /metrics derived from them) stay meaningful under
		// the default formation mode.
		z := int64(runPl.Z)
		mergeRecs := mergedBase + n // every record each merge level emitted
		passCnts = [][]sim.Counters{
			{{
				CompareUnits:   n * int64(bits.Len64(uint64(runPl.N))),
				DiskWriteBytes: formSpill,
				DiskWriteOps:   int64(stats.Runs),
				MovedBytes:     2 * n * z, // arena fill + run emit
			}},
			{{
				CompareUnits:   mergeRecs * int64(bits.Len64(uint64(fanIn))),
				DiskReadBytes:  stats.BytesRead,
				DiskReadOps:    int64(stats.Runs),
				DiskWriteBytes: stats.BytesWritten - formSpill,
				DiskWriteOps:   int64(stats.Levels),
				MovedBytes:     mergeRecs * z,
			}},
		}
	}
	return &Result{
		Result: &core.Result{Plan: runPl, PassCounters: passCnts},
		want:   want,
		realN:  n,
		codec:  codec,
		Merge:  stats,
	}, nil
}

// formRun turns one ingested batch into a verified, CRC-framed spilled run,
// redoing the WHOLE batch — re-sort on the persistent fabric, re-verify,
// re-spill onto a fresh spill disk — when the run cannot be trusted: the
// sorted store fails verification (e.g. a bit flip on an input-store read),
// the spill disk fails permanently mid-write, or the post-spill scrub finds
// persistent corruption (a torn write). Each redo consumes one unit of
// redoBudget; batch-level redo is what makes those failures survivable at
// all, because the source stream that fed the batch is long gone — only the
// batch's input store (preserved by br.Run across attempts) still holds the
// records.
//
// An error from br.Run itself is terminal, not redone: a failed engine
// batch poisons the fabric, and every later Run would return the fabric's
// error anyway. Counters of every attempt accumulate into passCnts — redone
// work is still work performed.
func (j *job) formRun(ctx context.Context, br *core.BatchRunner, input *pdm.Store, hooks core.Hooks, real int64, cs record.Checksum, newSpill func() (pdm.Disk, error), chunk int, scrub bool, redoBudget int, passCnts *[][]sim.Counters, batch, batches int) (*merge.Run, error) {
	for attempt := 0; ; attempt++ {
		res, err := br.Run(input, hooks)
		if err != nil {
			return nil, err
		}
		if *passCnts == nil {
			*passCnts = res.PassCounters
		} else {
			for k := range *passCnts {
				for p := range (*passCnts)[k] {
					(*passCnts)[k][p].Add(res.PassCounters[k][p])
				}
			}
		}
		run, ferr := func() (*merge.Run, error) {
			// Verify BEFORE trusting the run to the merge: a failed batch
			// must never contribute a plausible-looking run.
			if err := verifyRunStore(res.Output, real, cs); err != nil {
				return nil, fmt.Errorf("run %d of %d failed verification: %w", batch, batches, err)
			}
			r, err := spillRun(ctx, res.Output, real, newSpill, chunk)
			if err != nil {
				return nil, fmt.Errorf("run %d of %d: %w", batch, batches, err)
			}
			if scrub {
				// Read the spilled bytes back against their CRC frames NOW,
				// while the batch can still be redone — at merge time the
				// input is gone and persistent spill corruption is fatal.
				if err := r.Scrub(ctx, &j.faults); err != nil {
					r.Close()
					return nil, fmt.Errorf("run %d of %d: %w", batch, batches, err)
				}
			}
			return r, nil
		}()
		res.Output.Close()
		if ferr == nil {
			return run, nil
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("colsort: %w", ferr)
		}
		if errors.Is(ferr, pdm.ErrNoSpace) {
			// A full filesystem cannot be redone onto: every retry re-spills
			// into the same exhausted space. Fail fast without burning the
			// redo budget so the job's error names the real cause.
			return nil, fmt.Errorf("colsort: %w", ferr)
		}
		if attempt >= redoBudget {
			if redoBudget > 0 {
				return nil, fmt.Errorf("colsort: redo budget (%d) exhausted: %w", redoBudget, ferr)
			}
			return nil, fmt.Errorf("colsort: %w", ferr)
		}
		j.faults.BatchRedos.Add(1)
	}
}

// formRunsReplacement forms and spills maximal variable-length runs by
// heap-based replacement selection, consuming the source stream directly:
// records are encoded into normalized key space as they arrive, the
// former's heap (runPl.N records — the same budget one fixed batch would
// hold, honest against the job's admission lease) emits each run in its
// chosen direction, and each run streams through the CRC-framing writer
// onto a fresh spill disk, descending runs marked for the reversed merge
// reader. The engine's batch fabric is never involved: order comes from
// the heap, and end-to-end verification from the merge's in-stream order
// check plus the final multiset comparison against the ingest checksum.
//
// Recovery differs from fixed batches by necessity. A fixed batch redoes
// itself from its preserved input store; here the source stream that fed a
// run is consumed as the run forms. So when the scrub is armed and the
// redo budget is positive, each run's emitted chunks are RETAINED in
// pooled memory until its spill has been verified — a permanent spill
// failure or a scrub-detected corruption re-spills the retained copy onto
// a fresh disk (counted in BatchRedos, like a batch redo). Retention is
// bounded at 2× the heap (the expected run length on random input): a run
// reaching the bound is cut there, so redo memory stays within one extra
// run-store's worth — the same peak the fixed-batch path reaches with its
// input and output stores — at the cost of splitting longer-than-expected
// runs while scrubbing.
func (j *job) formRunsReplacement(ctx context.Context, rd RecordReader, o sortOptions, codec record.KeyCodec, n int64, runPl core.Plan, live *[]*merge.Run, ids *[]int, newSpill func() (pdm.Disk, error), chunk int, scrub bool, redoBudget int, stats *MergeStats, want *record.Checksum) error {
	z := j.e.cfg.RecordSize
	var pool *record.Pool
	if len(j.m.Pools) > 0 {
		pool = j.m.Pools[0]
	}
	var idx int64
	read := func(rec []byte) (bool, error) {
		if idx >= n {
			return false, nil
		}
		if idx%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		if err := rd.ReadRecord(rec); err != nil {
			return false, fmt.Errorf("colsort: reading record %d: %w", idx, err)
		}
		codec.EncodeRecord(rec)
		want.Add(rec)
		idx++
		return true, nil
	}
	f := runform.New(int(runPl.N), z, pool, read)
	defer f.Close()
	buf := pool.Get(chunk, z)
	defer pool.Put(buf)

	retain := scrub && redoBudget > 0
	var formed int64
	for runIdx := 1; ; runIdx++ {
		desc, ok, err := f.NextRun()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		// Progress is emitted per drained chunk, not per completed run: a
		// run's length is data-dependent and unbounded (a sorted stream is
		// ONE run), so waiting for a run boundary could leave a streaming
		// caller without any progress signal for the whole sort.
		onChunk := func(got int) {
			formed += int64(got)
			if o.progress != nil {
				o.progress(Progress{Batch: runIdx, FormedRecords: formed, TotalRecords: n})
			}
		}
		run, recs, err := j.spillFormedRun(ctx, f, desc, buf, newSpill, chunk,
			scrub, retain, 2*runPl.N, redoBudget, pool, runIdx, onChunk)
		if err != nil {
			return err
		}
		*live = append(*live, run)
		// Durability point: the run (already scrubbed when armed) is fsync'd
		// before the manifest claims it. RS runs record no consumed-prefix
		// position — a formation-phase crash restarts formation (DESIGN.md
		// §13); a merge-phase crash resumes from these runs with no re-sort.
		if j.ckpt != nil {
			if err := pdm.SyncDisk(run.Disk); err != nil {
				return err
			}
			id, err := j.ckpt.logRun(run, 0, record.Checksum{})
			if err != nil {
				return err
			}
			*ids = append(*ids, id)
		}
		stats.BytesWritten += run.Bytes()
		if desc {
			stats.DownRuns++
		}
		if stats.MinRunRecords == 0 || recs < stats.MinRunRecords {
			stats.MinRunRecords = recs
		}
		if recs > stats.MaxRunRecords {
			stats.MaxRunRecords = recs
		}
	}
}

// spillFormedRun drains the former's current run onto a fresh spill disk.
// With retention armed, every emitted chunk is also copied into pooled
// memory until the run is verified: a permanent spill-write failure mid-run
// stops writing but KEEPS DRAINING the former (the retained copy is then
// the only copy of those records), after which the whole run is re-spilled
// onto fresh disks under the redo budget; a scrub failure re-spills the
// same way. Without retention, any permanent spill or scrub failure is
// terminal — exactly the fixed-batch contract with a zero redo budget.
func (j *job) spillFormedRun(ctx context.Context, f *runform.Former, desc bool, buf record.Slice, newSpill func() (pdm.Disk, error), chunk int, scrub, retain bool, retainCap int64, redoBudget int, pool *record.Pool, runIdx int, onChunk func(got int)) (*merge.Run, int64, error) {
	var retained []record.Slice
	defer func() {
		for _, c := range retained {
			pool.Put(c)
		}
	}()

	d, err := newSpill()
	if err != nil {
		return nil, 0, err
	}
	w := merge.NewWriter(d, buf.Size, chunk)
	var recs int64
	var spillErr error
	for {
		got, err := f.Fill(buf)
		if err != nil {
			d.Close()
			return nil, 0, err
		}
		if got == 0 {
			break
		}
		c := buf.Sub(0, got)
		recs += int64(got)
		onChunk(got)
		if retain {
			cp := pool.Get(got, buf.Size)
			copy(cp.Data, c.Data)
			retained = append(retained, cp)
		}
		if spillErr == nil {
			if err := w.Append(c); err != nil {
				if !retain {
					d.Close()
					return nil, 0, fmt.Errorf("colsort: run %d: %w", runIdx, err)
				}
				spillErr = err
			}
		}
		if retain && recs >= retainCap {
			f.BreakRun() // bound redo memory; the rest becomes the next run
		}
	}

	var run *merge.Run
	if spillErr != nil {
		d.Close() // the half-written first attempt
	} else if run, err = w.Finish(); err != nil {
		d.Close()
		if !retain {
			return nil, 0, fmt.Errorf("colsort: run %d: %w", runIdx, err)
		}
		run, spillErr = nil, err
	} else {
		run.Descending = desc
		if scrub {
			// Read the spilled bytes back against their CRC frames NOW,
			// while the retained copy can still redo the run — at merge
			// time persistent spill corruption is fatal.
			if err := run.Scrub(ctx, &j.faults); err != nil {
				run.Close()
				if !retain {
					return nil, 0, fmt.Errorf("colsort: run %d: %w", runIdx, err)
				}
				run, spillErr = nil, err
			}
		}
	}
	for attempt := 1; spillErr != nil; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, 0, fmt.Errorf("colsort: run %d: %w", runIdx, spillErr)
		}
		if errors.Is(spillErr, pdm.ErrNoSpace) {
			// Out of space is not redoable: a fresh spill disk lives on the
			// same full filesystem. Surface it without spending the budget.
			return nil, 0, fmt.Errorf("colsort: run %d: %w", runIdx, spillErr)
		}
		if attempt > redoBudget {
			return nil, 0, fmt.Errorf("colsort: redo budget (%d) exhausted: run %d: %w", redoBudget, runIdx, spillErr)
		}
		j.faults.BatchRedos.Add(1)
		run, spillErr = respillRetained(ctx, retained, buf.Size, desc, newSpill, chunk, scrub, &j.faults)
	}
	return run, recs, nil
}

// respillRetained writes a formed run's retained chunks onto a fresh spill
// disk and re-verifies it — the replacement-selection analogue of the
// fixed-batch redo (which re-sorts from the preserved input store).
func respillRetained(ctx context.Context, retained []record.Slice, z int, desc bool, newSpill func() (pdm.Disk, error), chunk int, scrub bool, faults *pdm.FaultStats) (*merge.Run, error) {
	d, err := newSpill()
	if err != nil {
		return nil, err
	}
	w := merge.NewWriter(d, z, chunk)
	for _, c := range retained {
		if err := w.Append(c); err != nil {
			d.Close()
			return nil, err
		}
	}
	run, err := w.Finish()
	if err != nil {
		d.Close()
		return nil, err
	}
	run.Descending = desc
	if scrub {
		if err := run.Scrub(ctx, faults); err != nil {
			run.Close()
			return nil, err
		}
	}
	return run, nil
}

// closeConsumedRun closes a merge input run and, under checkpointing (whose
// spill files survive Close), removes its durable file — legal only after
// the WAL entry of the merge that consumed it is durable.
func (j *job) closeConsumedRun(r *merge.Run) {
	var path string
	if j.ckpt != nil {
		path = pdm.DiskPath(r.Disk)
	}
	r.Close()
	if path != "" {
		_ = os.Remove(path)
	}
}

// skipConsumed advances rd past the source records a resumed job's durable
// runs already cover, verifying their multiset against the checksum the
// manifest recorded — a resume must refuse a source that differs from the
// one the crashed job ingested, or the merged output would silently mix two
// inputs.
func skipConsumed(ctx context.Context, rd RecordReader, codec record.KeyCodec, z int, consumed int64, want record.Checksum) error {
	var cs record.Checksum
	rec := make([]byte, z)
	for i := int64(0); i < consumed; i++ {
		if i%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if err := rd.ReadRecord(rec); err != nil {
			return fmt.Errorf("colsort: resume: re-reading consumed record %d of %d: %w", i, consumed, err)
		}
		codec.EncodeRecord(rec)
		cs.Add(rec)
	}
	if !cs.Equal(want) {
		return fmt.Errorf("colsort: resume: the source's first %d records do not match the multiset the manifest recorded; resuming requires the original input", consumed)
	}
	return nil
}

// verifyRunStore applies the engine's output verification to one run store
// (prefix form when the batch was padded).
func verifyRunStore(st *pdm.Store, real int64, cs record.Checksum) error {
	if real < int64(st.R)*int64(st.S) {
		return verify.OutputPrefix(st, real, cs)
	}
	return verify.Output(st, cs)
}

// spillRun streams the sorted store's real prefix onto a fresh spill disk
// as one run, prefetching each segment one step ahead (scanRealPrefix)
// while the writer's chunks retire through any write-behind layer.
func spillRun(ctx context.Context, st *pdm.Store, real int64, newSpill func() (pdm.Disk, error), chunk int) (*merge.Run, error) {
	d, err := newSpill()
	if err != nil {
		return nil, err
	}
	w := merge.NewWriter(d, st.RecSize, chunk)
	if err := scanRealPrefix(ctx, st, real, w.Append); err != nil {
		d.Close()
		return nil, err
	}
	run, err := w.Finish()
	if err != nil {
		d.Close()
		return nil, err
	}
	return run, nil
}
