#!/bin/sh
# bench.sh — run the key benchmarks with -benchmem and write a JSON
# trajectory file (ns/op, MB/s, B/op, allocs/op plus any custom metrics per
# benchmark) so successive PRs have a perf baseline to compare against.
#
# Usage:
#   scripts/bench.sh [OUTFILE]      # default OUTFILE: next free BENCH_n.json
#   BENCHTIME=10x scripts/bench.sh  # override -benchtime (default 3x)
#   BENCH='^BenchmarkLocalSort$' scripts/bench.sh   # override the selector
#   COLSORT_BENCH_PROFILE=1 scripts/bench.sh        # also write pprof files
#
# With COLSORT_BENCH_PROFILE=1 the run additionally writes CPU and memory
# profiles next to OUTFILE (OUTFILE minus .json, plus .cpu.prof/.mem.prof),
# so a perf PR can attach flame-graph evidence for the numbers it claims:
#   go tool pprof -http=: BENCH_4.cpu.prof
#
# Portability: plain POSIX sh and BSD-compatible awk, so it runs unchanged
# on macOS CI (bash 3.2 / BSD userland) — no pipefail, no bash arrays, and
# no pipeline around `go test` (whose exit status must gate the script).
#
# The JSON shape is:
#   {"go": "...", "benchtime": "...", "benchmarks": [
#     {"name": "...", "iters": N, "ns_per_op": ..., "mb_per_s": ...,
#      "b_per_op": ..., "allocs_per_op": ..., "extra": {"est-s": ...}}]}
set -eu
cd "$(dirname "$0")/.."

if [ "$#" -ge 1 ]; then
	OUT=$1
else
	i=0
	while [ -e "BENCH_$i.json" ]; do
		i=$((i + 1))
	done
	OUT="BENCH_$i.json"
fi
BENCHTIME="${BENCHTIME:-3x}"
BENCH="${BENCH:-^(BenchmarkLocalSort|BenchmarkMergeRuns|BenchmarkE6InCore|BenchmarkFigure2|BenchmarkFigure2File|BenchmarkMergeSortFile|BenchmarkRunFormation|BenchmarkConcurrentJobs)$}"

RAW=$(mktemp "${TMPDIR:-/tmp}/bench.XXXXXX")
trap 'rm -f "$RAW"' EXIT INT TERM

# Profile passthrough: pprof files land next to the JSON so flame graphs and
# the numbers they explain travel together.
PROFILE_FLAGS=""
if [ "${COLSORT_BENCH_PROFILE:-0}" = "1" ]; then
	base=${OUT%.json}
	PROFILE_FLAGS="-cpuprofile $base.cpu.prof -memprofile $base.mem.prof"
	echo "profiling to $base.cpu.prof / $base.mem.prof" >&2
fi

# shellcheck disable=SC2086 # PROFILE_FLAGS intentionally word-splits
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count 1 $PROFILE_FLAGS . >"$RAW"
cat "$RAW" >&2

awk -v goversion="$(go env GOVERSION)" -v benchtime="$BENCHTIME" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; iters = $2
    std["ns/op"] = ""; std["MB/s"] = ""; std["B/op"] = ""; std["allocs/op"] = ""
    extra = ""
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $i; unit = $(i + 1)
        if (unit in std) std[unit] = val
        else extra = extra (extra == "" ? "" : ", ") "\"" unit "\": " val
    }
    line = "    {\"name\": \"" name "\", \"iters\": " iters
    if (std["ns/op"] != "")     line = line ", \"ns_per_op\": " std["ns/op"]
    if (std["MB/s"] != "")      line = line ", \"mb_per_s\": " std["MB/s"]
    if (std["B/op"] != "")      line = line ", \"b_per_op\": " std["B/op"]
    if (std["allocs/op"] != "") line = line ", \"allocs_per_op\": " std["allocs/op"]
    if (extra != "")            line = line ", \"extra\": {" extra "}"
    line = line "}"
    bench[n++] = line
}
END {
    printf "{\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [\n", goversion, benchtime
    for (i = 0; i < n; i++) printf "%s%s\n", bench[i], (i < n - 1 ? "," : "")
    print "  ]\n}"
}' "$RAW" >"$OUT"

echo "wrote $OUT" >&2
