#!/usr/bin/env bash
# apidiff.sh — gate exported-API removals on the allowlist.
#
# Regenerates the API golden from the working tree, then compares it with
# the golden committed at BASE (default HEAD~1). Any symbol present at
# BASE but missing now must match a prefix line of api/removed.txt, or
# the script fails. Additions are reported but never fail: the gate
# protects consumers from silent breakage, not from growth.
#
# Usage: scripts/apidiff.sh [BASE]
set -euo pipefail
cd "$(dirname "$0")/.."

base="${1:-HEAD~1}"
golden="api/colsort_api.txt"
allow="api/removed.txt"

# The working-tree golden must be current before comparing.
COLSORT_UPDATE_API=1 go test -run TestAPISurfaceGolden . >/dev/null

if ! old="$(git show "$base:$golden" 2>/dev/null)"; then
    echo "apidiff: no $golden at $base — first commit with an API golden, nothing to compare"
    exit 0
fi

removed="$(comm -23 <(printf '%s\n' "$old" | sort) <(sort "$golden"))"
added="$(comm -13 <(printf '%s\n' "$old" | sort) <(sort "$golden"))"

if [ -n "$added" ]; then
    echo "apidiff: added since $base:"
    printf '  + %s\n' "$added" | sed 's/\n/\n  + /'
fi

status=0
if [ -n "$removed" ]; then
    while IFS= read -r line; do
        [ -z "$line" ] && continue
        allowed=no
        while IFS= read -r prefix; do
            case "$prefix" in ''|'#'*) continue ;; esac
            case "$line" in "$prefix"*) allowed=yes; break ;; esac
        done < "$allow"
        if [ "$allowed" = yes ]; then
            echo "apidiff: removed (allowlisted): $line"
        else
            echo "apidiff: REMOVED WITHOUT ALLOWLIST ENTRY: $line" >&2
            status=1
        fi
    done <<< "$removed"
fi

if [ "$status" -ne 0 ]; then
    echo "apidiff: the v1 API surface is final — add deliberate removals to $allow" >&2
fi
exit "$status"
