#!/bin/sh
# bench_regress.sh — statistical old-vs-new benchmark gate.
#
# Checks the BASE ref out into a temporary git worktree, runs the benchmark
# selector there and on the current tree with -count repetitions, and feeds
# both logs to benchstat. The gate FAILS on any statistically significant
# time regression: a sec/op delta worse than THRESHOLD_PCT with
# p ≤ PVALUE. This replaces gating on allocs/op alone — ns/op is noisy per
# single run, but benchstat's significance test across counted repetitions
# is exactly the instrument for "did this PR slow the hot path down".
#
# Usage: scripts/bench_regress.sh [BASE_REF]
#   BASE_REF        defaults to $BASE_REF or origin/main
#   THRESHOLD_PCT   significant regressions smaller than this pass (def 10)
#   PVALUE          significance level (default 0.05)
#   COUNT           benchmark repetitions per side (default 6)
#   BENCHTIME, BENCH  as in bench.sh (default 3x, the smoke selector)
#
# Artifacts: bench-old.txt, bench-new.txt, bench-stat.txt in the repo root.
set -eu
cd "$(dirname "$0")/.."

BASE="${1:-${BASE_REF:-origin/main}}"
THRESHOLD_PCT="${THRESHOLD_PCT:-10}"
PVALUE="${PVALUE:-0.05}"
COUNT="${COUNT:-6}"
BENCHTIME="${BENCHTIME:-3x}"
BENCH="${BENCH:-^(BenchmarkLocalSort|BenchmarkMergeRuns|BenchmarkFigure2)$}"

WT=$(mktemp -d "${TMPDIR:-/tmp}/bench-base.XXXXXX")
cleanup() {
	git worktree remove --force "$WT" 2>/dev/null || true
	rm -rf "$WT"
}
trap cleanup EXIT INT TERM
git worktree add --force --detach "$WT" "$BASE" >&2

echo "bench_regress: old = $BASE, new = working tree" >&2
(cd "$WT" && go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" .) >bench-old.txt
go test -run '^$' -bench "$BENCH" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . >bench-new.txt

# No pipeline around benchstat: the gate must fail CLOSED when benchstat
# itself fails (module proxy down, bad toolchain), not let tee's status
# mask it. BENCHSTAT_VERSION lets CI pin an exact pseudo-version.
BENCHSTAT="golang.org/x/perf/cmd/benchstat@${BENCHSTAT_VERSION:-latest}"
go run "$BENCHSTAT" bench-old.txt bench-new.txt >bench-stat.txt
cat bench-stat.txt

# Gate on the sec/op table only: a line whose "vs base" column shows a
# positive (slower) delta with p at or below PVALUE and a magnitude past
# THRESHOLD_PCT fails. benchstat prints "~" for insignificant deltas, so
# noise never trips the gate; B/op and allocs/op tables are informational.
# Seeing NO sec/op table at all also fails — an empty or reformatted
# benchstat output must never pass as "no regression".
awk -v threshold="$THRESHOLD_PCT" -v pmax="$PVALUE" '
/│/ {
	insec = ($0 ~ /sec\/op/)
	if (insec) sawsec = 1
	next
}
insec && !/geomean/ && match($0, /\+[0-9.]+% \(p=[0-9.]+/) {
	s = substr($0, RSTART, RLENGTH)
	pct = s; sub(/^\+/, "", pct); sub(/%.*/, "", pct)
	p = s; sub(/.*p=/, "", p)
	if (pct + 0 >= threshold && p + 0 <= pmax) {
		printf "REGRESSION (sec/op): %s\n", $0
		fail = 1
	}
}
END {
	if (!sawsec) {
		print "bench_regress: no sec/op table in benchstat output — refusing to pass"
		exit 1
	}
	if (fail) {
		print "bench_regress: statistically significant time regression"
		exit 1
	}
	print "bench_regress: no significant sec/op regression"
}' bench-stat.txt >&2
