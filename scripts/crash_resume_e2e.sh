#!/usr/bin/env bash
# Crash/resume end-to-end (DESIGN.md §13): SIGKILL colsort-server in the
# middle of a checkpointed hierarchical file job — once mid-merge, once
# mid-run-formation — restart it over the same -data and scratch
# directories, and require the re-adopted job to finish under its original
# id with output byte-identical to an uninterrupted reference sort.
#
# The metrics surface proves HOW it finished:
#   - merge-phase kill:   colsort_engine_runs_resumed_total equals
#     colsort_merge_runs_formed_total — every run was adopted from the
#     manifest, zero batches re-sorted;
#   - formation kill:     0 < runs_resumed < runs_formed — the durable
#     prefix was adopted, only the remaining batches were formed;
#   - both:               colsort_server_jobs_readopted_total 1, and the
#     orphan scratch sweep counter is exposed.
#
#   CRASH_E2E_RECORDS  records in the input (default 500000 = 32 MiB at z=64)
#   CRASH_E2E_PORT     listen port (default 18081)
set -eu

DIR="${1:-/tmp/crash-resume-e2e}"
RECORDS="${CRASH_E2E_RECORDS:-500000}"
PORT="${CRASH_E2E_PORT:-18081}"
URL="http://localhost:$PORT"
SERVER_PID=""

fail() {
  echo "CRASH RESUME E2E FAILED ($1)" >&2
  [ -f "$DIR/server.log" ] && tail -20 "$DIR/server.log" >&2
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "$URL/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server never became healthy on $URL"
}

# The disk model (-disk-mbps) throttles spill and merge I/O so both phases
# last seconds, giving the kill a wide deterministic window.
start_server() {
  "$DIR/colsort-server" -listen ":$PORT" -p 4 -mem 16384 -z 64 \
    -dir "$DIR/scratch" -async -data "$DIR/data" -disk-mbps 24 \
    >>"$DIR/server.log" 2>&1 &
  SERVER_PID=$!
  wait_healthy
}

sigkill_server() {
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
}

# submit OUTPUT FORMATION -> job id. max-memory-mib=4 forces the 32 MiB
# input through the hierarchical path as ~8 bounded runs + k-way merge
# (4 MiB = 65536 records is the smallest plannable run at this shape).
submit() {
  curl -sf -X POST "$URL/v1/jobs" -H 'Content-Type: application/json' \
    -d "{\"input\":\"input.dat\",\"output\":\"$1\",\"options\":{\"max-memory-mib\":\"4\",\"run-formation\":\"$2\"}}" \
    | sed -n 's/.*"id": "\([^"]*\)".*/\1/p'
}

# wait_job ID GREP-PATTERN DESCRIPTION: poll the job API until the body
# matches (or the job fails, or 30s pass).
wait_job() {
  for _ in $(seq 1 600); do
    body=$(curl -sf "$URL/v1/jobs/$1" || true)
    if echo "$body" | grep -q "$2"; then
      return 0
    fi
    if echo "$body" | grep -q '"state": "failed"'; then
      fail "job $1 failed while waiting for $3: $(echo "$body" | grep error || true)"
    fi
    sleep 0.05
  done
  fail "job $1 never reached $3"
}

# wait_manifest ID GREP-PATTERN COUNT DESCRIPTION: poll the job's manifest
# WAL until at least COUNT lines match — the durable truth of how far the
# sort got, independent of the progress API's coalescing.
wait_manifest() {
  manifest="$DIR/data/.colsort/ckpt/$1/manifest.wal"
  for _ in $(seq 1 600); do
    found=$(grep -c "$2" "$manifest" 2>/dev/null || true)
    if [ "${found:-0}" -ge "$3" ]; then
      return 0
    fi
    sleep 0.05
  done
  fail "job $1's manifest never showed $4"
}

# metric NAME FILE -> value (fails if the metric is absent).
metric() {
  v=$(awk -v n="$1" '$1 == n {print $2}' "$2")
  [ -n "$v" ] || fail "metric $1 missing from $2"
  echo "$v"
}

rm -rf "$DIR"
mkdir -p "$DIR/data"
go build -o "$DIR/colsort-bin" ./cmd/colsort
go build -o "$DIR/colsort-server" ./cmd/colsort-server
dd if=/dev/urandom of="$DIR/data/input.dat" bs=64 count="$RECORDS" status=none

# Uninterrupted reference: the library guarantees the hierarchical output
# byte-identical to the single-run sort, so one unthrottled local sort is
# the oracle for both crash scenarios.
"$DIR/colsort-bin" -alg threaded -in "$DIR/data/input.dat" -out "$DIR/ref.dat" \
  -p 4 -mem 16384 -z 64 -dir "$DIR/scratch" -async \
  || fail "local reference sort"

# ---- Scenario 1: SIGKILL mid-merge (replacement-selection formation) ----
start_server
id1=$(submit out-merge.dat replacement-select)
[ -n "$id1" ] || fail "scenario 1: job submission returned no id"
# ingest_done in the manifest marks formation durably complete: from here
# until the job finishes, the process is mid-merge.
wait_manifest "$id1" '"type":"ingest_done"' 1 "the merge phase (ingest_done)"
sigkill_server
[ -f "$DIR/data/.colsort/ckpt/$id1/manifest.wal" ] \
  || fail "scenario 1: no manifest survived the kill"

start_server
wait_job "$id1" '"state": "done"' "completion after the mid-merge restart"
cmp "$DIR/data/out-merge.dat" "$DIR/ref.dat" \
  || fail "scenario 1: resumed output differs from the reference"
curl -sf "$URL/metrics" >"$DIR/metrics1.txt" || fail "scenario 1: metrics scrape"
grep -q '^colsort_server_jobs_readopted_total 1$' "$DIR/metrics1.txt" \
  || fail "scenario 1: job was not re-adopted from the WAL"
resumed=$(metric colsort_engine_runs_resumed_total "$DIR/metrics1.txt")
formed=$(metric colsort_merge_runs_formed_total "$DIR/metrics1.txt")
[ "$resumed" -ge 2 ] || fail "scenario 1: only $resumed runs resumed"
[ "$resumed" -eq "$formed" ] \
  || fail "scenario 1: $formed total runs but only $resumed adopted — batches were re-sorted after a merge-phase crash"
metric colsort_orphan_scratch_cleaned_total "$DIR/metrics1.txt" >/dev/null
echo "scenario 1 (mid-merge kill): resumed $resumed/$formed runs, zero re-sorts, output byte-identical"

# ---- Scenario 2: SIGKILL mid-formation (fixed-batch) ----
id2=$(submit out-form.dat fixed-batch)
[ -n "$id2" ] || fail "scenario 2: job submission returned no id"
# Two verified runs in the manifest = mid-formation with a durable prefix.
wait_manifest "$id2" '"type":"run"' 2 "two durable runs"
sigkill_server

start_server
wait_job "$id2" '"state": "done"' "completion after the mid-formation restart"
cmp "$DIR/data/out-form.dat" "$DIR/ref.dat" \
  || fail "scenario 2: resumed output differs from the reference"
curl -sf "$URL/metrics" >"$DIR/metrics2.txt" || fail "scenario 2: metrics scrape"
grep -q '^colsort_server_jobs_readopted_total 1$' "$DIR/metrics2.txt" \
  || fail "scenario 2: job was not re-adopted from the WAL"
resumed=$(metric colsort_engine_runs_resumed_total "$DIR/metrics2.txt")
formed=$(metric colsort_merge_runs_formed_total "$DIR/metrics2.txt")
[ "$resumed" -ge 1 ] || fail "scenario 2: no runs adopted from the formation-phase manifest"
[ "$resumed" -lt "$formed" ] \
  || fail "scenario 2: $resumed adopted of $formed — the interrupted formation formed nothing new?"
echo "scenario 2 (mid-formation kill): adopted $resumed of $formed runs, output byte-identical"

# A SIGTERM drain of the final server must still exit clean.
kill -TERM "$SERVER_PID"
drain_ok=0
if wait "$SERVER_PID"; then drain_ok=1; fi
SERVER_PID=""
[ "$drain_ok" -eq 1 ] || fail "final SIGTERM drain exited nonzero"

echo "crash resume e2e passed ($RECORDS records; mid-merge and mid-formation kills both resumed byte-identical)"
