#!/bin/sh
# bench_gate.sh — CI bench-regression gate.
#
# Re-runs the smoke benchmark suite with -benchmem (via bench.sh, at the
# baseline's benchtime so allocs/op amortize warm-up identically), then
# compares allocs/op per benchmark against the committed baseline JSON.
# Any benchmark regressing by more than THRESHOLD_PCT fails the gate.
# allocs/op is the gated metric because it is deterministic on CI runners,
# unlike ns/op; the fresh JSON is kept for artifact upload either way.
#
# Usage: scripts/bench_gate.sh [BASELINE] [FRESH_OUT]
#   BASELINE       defaults to the highest-numbered committed BENCH_n.json,
#                  so each PR is gated against its true predecessor rather
#                  than a fixed historical snapshot
#   FRESH_OUT      defaults to bench_fresh.json
#   THRESHOLD_PCT  env override, defaults to 25
set -eu
cd "$(dirname "$0")/.."

# latest_baseline prints the BENCH_n.json with the largest n (numeric, so
# BENCH_10 sorts after BENCH_9).
latest_baseline() {
	ls BENCH_*.json 2>/dev/null |
		sed -n 's/^BENCH_\([0-9][0-9]*\)\.json$/\1 BENCH_\1.json/p' |
		sort -n | tail -n 1 | cut -d' ' -f2
}

BASELINE="${1:-$(latest_baseline)}"
FRESH="${2:-bench_fresh.json}"
THRESHOLD_PCT="${THRESHOLD_PCT:-25}"

if [ -z "$BASELINE" ] || [ ! -f "$BASELINE" ]; then
	echo "bench_gate: baseline ${BASELINE:-BENCH_n.json} not found" >&2
	exit 2
fi
echo "bench_gate: gating against $BASELINE" >&2

# Match the baseline's benchtime and restrict to the benchmarks it records
# (new benchmarks have no baseline to regress against).
BASE_BT=$(sed -n 's/.*"benchtime": "\([^"]*\)".*/\1/p' "$BASELINE" | head -n 1)
BENCHTIME="${BENCHTIME:-${BASE_BT:-3x}}"
BENCH="${BENCH:-^(BenchmarkLocalSort|BenchmarkMergeRuns|BenchmarkE6InCore|BenchmarkFigure2|BenchmarkMergeSortFile|BenchmarkRunFormation|BenchmarkConcurrentJobs)$}"
export BENCHTIME BENCH

scripts/bench.sh "$FRESH"

awk -v threshold="$THRESHOLD_PCT" '
/"name":/ {
    name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
    if ($0 !~ /"allocs_per_op":/) next
    a = $0; sub(/.*"allocs_per_op": /, "", a); sub(/[,}].*/, "", a)
    if (FILENAME == ARGV[1]) base[name] = a + 0
    else { fresh[name] = a + 0; order[n++] = name }
}
END {
    fail = 0
    for (i = 0; i < n; i++) {
        nm = order[i]
        if (!(nm in base)) { printf "skip %s: no baseline\n", nm; continue }
        b = base[nm]; f = fresh[nm]
        # +2 absolute slack so near-zero baselines cannot flake the gate.
        limit = b * (1 + threshold / 100) + 2
        if (f > limit) {
            printf "REGRESSION %-55s allocs/op %8d -> %8d (limit %d, +%d%%)\n", nm, b, f, limit, threshold
            fail = 1
        } else {
            printf "ok         %-55s allocs/op %8d -> %8d (limit %d)\n", nm, b, f, limit
        }
    }
    if (n == 0) { print "bench_gate: fresh run produced no benchmarks"; fail = 1 }
    exit fail
}' "$BASELINE" "$FRESH"

echo "bench_gate: no allocs/op regression beyond ${THRESHOLD_PCT}% vs $BASELINE" >&2
