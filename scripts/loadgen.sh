#!/usr/bin/env bash
# Concurrent-upload load generator for colsort-server: N parallel curl
# streams against POST /v1/sort. Every response must be either a complete
# 200 (sorted body, exactly the input's size) or a 429 carrying a
# Retry-After header — the wire rendering of ErrBusy when the server's
# -jobs bound is saturated. Any other status, or a 429 without Retry-After,
# fails the run.
#
#   LOADGEN_URL         server base URL        (default http://localhost:8080)
#   LOADGEN_CLIENTS     parallel uploads       (default 8)
#   LOADGEN_RECORDS     records per upload     (default 131072 = 8 MiB at z=64)
#   LOADGEN_RECORD_SIZE bytes per record       (default 64; must match -z)
#   LOADGEN_EXPECT_BUSY when 1, require at least one 429 — use against a
#                       server whose -jobs bound is below LOADGEN_CLIENTS
set -eu

URL="${LOADGEN_URL:-http://localhost:8080}"
CLIENTS="${LOADGEN_CLIENTS:-8}"
RECORDS="${LOADGEN_RECORDS:-131072}"
Z="${LOADGEN_RECORD_SIZE:-64}"
EXPECT_BUSY="${LOADGEN_EXPECT_BUSY:-0}"

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() {
  echo "LOADGEN FAILED ($1)" >&2
  exit 1
}

dd if=/dev/urandom of="$DIR/input.dat" bs="$Z" count="$RECORDS" status=none
SIZE=$((RECORDS * Z))

for i in $(seq 1 "$CLIENTS"); do
  curl -sS -o "$DIR/out.$i" -D "$DIR/hdr.$i" -w '%{http_code}' \
    -H 'Content-Type: application/octet-stream' \
    --data-binary @"$DIR/input.dat" "$URL/v1/sort" >"$DIR/code.$i" &
done
wait

ok=0 busy=0
for i in $(seq 1 "$CLIENTS"); do
  code=$(cat "$DIR/code.$i")
  case "$code" in
  200)
    got=$(wc -c <"$DIR/out.$i")
    [ "$got" -eq "$SIZE" ] || fail "client $i: 200 with $got bytes, want $SIZE"
    ok=$((ok + 1))
    ;;
  429)
    grep -qi '^retry-after:' "$DIR/hdr.$i" || fail "client $i: 429 without Retry-After"
    busy=$((busy + 1))
    ;;
  *)
    fail "client $i: unexpected status $code: $(cat "$DIR/out.$i")"
    ;;
  esac
done

# All sorted outputs of the same input must be identical bytes.
first=""
for i in $(seq 1 "$CLIENTS"); do
  [ "$(cat "$DIR/code.$i")" = "200" ] || continue
  if [ -z "$first" ]; then
    first="$i"
  else
    cmp -s "$DIR/out.$first" "$DIR/out.$i" || fail "clients $first and $i sorted the same input differently"
  fi
done

[ "$ok" -ge 1 ] || fail "no upload succeeded ($busy busy)"
if [ "$EXPECT_BUSY" = "1" ] && [ "$busy" -eq 0 ]; then
  fail "expected saturation but every upload got through (raise LOADGEN_CLIENTS or lower the server's -jobs)"
fi
echo "loadgen passed: $ok sorted, $busy refused with 429/Retry-After ($CLIENTS clients × $RECORDS records)"
