#!/usr/bin/env bash
# Nightly chaos soak (DESIGN.md §9): a 64 MiB file-backed hierarchical sort
# under seeded storage-fault injection — probabilistic transient faults, a
# torn first spill write, a bit-flipped spill read, and a spill disk that
# dies permanently mid-write — must finish and produce output byte-identical
# to the fault-free run. The binary is built with -race so the retry layer,
# the async disk workers and the chaos injector race-soak each other.
#
# The seed is taken from COLSORT_CHAOS_SEED when set (replay mode),
# otherwise derived from the date so every night exercises a new fault
# pattern; it is printed on failure for replay.
set -eu

SEED="${COLSORT_CHAOS_SEED:-$(date +%Y%m%d)}"
DIR="${1:-/tmp/chaos-soak}"
RECORDS="${CHAOS_SOAK_RECORDS:-1000000}" # 64 MiB of 64-byte records

fail() {
  echo "CHAOS SOAK FAILED ($1)" >&2
  echo "replay with: COLSORT_CHAOS_SEED=$SEED scripts/chaos_soak.sh" >&2
  exit 1
}

rm -rf "$DIR"
mkdir -p "$DIR"
go build -race -o "$DIR/colsort-bin" ./cmd/colsort
dd if=/dev/urandom of="$DIR/input.dat" bs=64 count="$RECORDS" status=none

# Fault-free reference: the same hierarchical shape (8 MiB runs + k-way
# merge) with no injection.
"$DIR/colsort-bin" -alg threaded -in "$DIR/input.dat" -out "$DIR/ref.dat" \
  -p 4 -mem 16384 -z 64 -dir "$DIR/scratch" -async -max-memory-mib 8 \
  || fail "fault-free reference run"

# Chaos run. Spill ordinals: batch 1 spills to ordinal 1 (torn first write
# → scrub fails → redo onto 2, whose first merge read is bit-flipped and
# healed by a CRC reread); batch 2 spills to ordinal 3 (dies after 4 MiB →
# redo onto 4); transient faults land everywhere and are retried.
"$DIR/colsort-bin" -alg threaded -in "$DIR/input.dat" -out "$DIR/out.dat" \
  -p 4 -mem 16384 -z 64 -dir "$DIR/scratch" -async -max-memory-mib 8 \
  -chaos-seed "$SEED" -chaos-p-transient 0.002 \
  -chaos-torn-spill 1 -chaos-flip-spill 2 \
  -chaos-dead-spill 3 -chaos-dead-after-kib 4096 \
  || fail "chaos run (seed $SEED)"

cmp "$DIR/out.dat" "$DIR/ref.dat" || fail "output differs from fault-free run (seed $SEED)"

# Scratch hygiene: every spill and store backing — including the torn and
# dead disks' — must have been removed.
stray=$(find "$DIR/scratch" -type f 2>/dev/null | wc -l)
[ "$stray" -eq 0 ] || fail "$stray scratch files leaked (seed $SEED)"

echo "chaos soak passed (seed $SEED, $RECORDS records)"
