#!/usr/bin/env bash
# Loopback end-to-end test of sort-over-the-wire (DESIGN.md §11): boot
# colsort-server, stream a 64 MiB file through POST /v1/sort with curl, and
# require the response byte-identical to the local CLI sorting the same
# input with the same engine shape — ascending and descending. Then scrape
# /metrics, drain the server with SIGTERM, and run the load generator
# against a -jobs 1 instance to prove saturation surfaces as 429/Retry-After.
#
#   WIRE_E2E_RECORDS  records in the input (default 1000000 = 64 MiB at z=64)
#   WIRE_E2E_PORT     listen port (default 18080)
set -eu

DIR="${1:-/tmp/wire-e2e}"
RECORDS="${WIRE_E2E_RECORDS:-1000000}"
PORT="${WIRE_E2E_PORT:-18080}"
URL="http://localhost:$PORT"
SERVER_PID=""

fail() {
  echo "WIRE E2E FAILED ($1)" >&2
  [ -f "$DIR/server.log" ] && tail -20 "$DIR/server.log" >&2
  exit 1
}

cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "$URL/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  fail "server never became healthy on $URL"
}

rm -rf "$DIR"
mkdir -p "$DIR"
go build -o "$DIR/colsort-bin" ./cmd/colsort
go build -o "$DIR/colsort-server" ./cmd/colsort-server
dd if=/dev/urandom of="$DIR/input.dat" bs=64 count="$RECORDS" status=none

# Local references: the same engine shape (4 procs × 16384 records × 64 B =
# 4 MiB of column buffers, so 64 MiB is a 16× out-of-core hierarchical
# sort), ascending and descending on bytes [0,8).
"$DIR/colsort-bin" -alg threaded -in "$DIR/input.dat" -out "$DIR/ref-asc.dat" \
  -p 4 -mem 16384 -z 64 -dir "$DIR/scratch" -async \
  || fail "local ascending reference"
"$DIR/colsort-bin" -alg threaded -in "$DIR/input.dat" -out "$DIR/ref-desc.dat" \
  -p 4 -mem 16384 -z 64 -dir "$DIR/scratch" -async -key-offset 0 -key-width 8 -desc \
  || fail "local descending reference"

"$DIR/colsort-server" -listen ":$PORT" -p 4 -mem 16384 -z 64 \
  -dir "$DIR/server-scratch" -async -jobs 4 >"$DIR/server.log" 2>&1 &
SERVER_PID=$!
wait_healthy

curl -sSf -o "$DIR/wire-asc.dat" -H 'Content-Type: application/octet-stream' \
  --data-binary @"$DIR/input.dat" "$URL/v1/sort" \
  || fail "wire ascending sort"
cmp "$DIR/wire-asc.dat" "$DIR/ref-asc.dat" || fail "wire ascending output differs from local sort"

curl -sSf -o "$DIR/wire-desc.dat" -H 'Content-Type: application/octet-stream' \
  --data-binary @"$DIR/input.dat" \
  "$URL/v1/sort?key-offset=0&key-width=8&order=desc" \
  || fail "wire descending sort"
cmp "$DIR/wire-desc.dat" "$DIR/ref-desc.dat" || fail "wire descending output differs from local sort"

# The metrics surface reflects the two completed jobs.
curl -sf "$URL/metrics" >"$DIR/metrics.txt" || fail "metrics scrape"
grep -q '^colsort_engine_completed_jobs_total 2$' "$DIR/metrics.txt" \
  || fail "metrics do not count the 2 completed jobs: $(grep completed_jobs "$DIR/metrics.txt" || true)"
grep -q 'colsort_http_requests_total{route="POST /v1/sort",code="200"} 2' "$DIR/metrics.txt" \
  || fail "per-endpoint request accounting missing"

# Drain-aware shutdown: SIGTERM must exit 0 after a clean drain.
kill -TERM "$SERVER_PID"
drain_ok=0
if wait "$SERVER_PID"; then drain_ok=1; fi
SERVER_PID=""
[ "$drain_ok" -eq 1 ] || fail "SIGTERM drain exited nonzero"
grep -q "drained" "$DIR/server.log" || fail "server log has no drain line"

# Saturation: a -jobs 1 instance under 6 parallel 8 MiB uploads must refuse
# the overflow with 429/Retry-After while still sorting at least one.
"$DIR/colsort-server" -listen ":$PORT" -p 4 -mem 16384 -z 64 \
  -dir "$DIR/server-scratch" -async -jobs 1 >>"$DIR/server.log" 2>&1 &
SERVER_PID=$!
wait_healthy
LOADGEN_URL="$URL" LOADGEN_CLIENTS=6 LOADGEN_EXPECT_BUSY=1 \
  bash scripts/loadgen.sh || fail "load generator"
kill -TERM "$SERVER_PID" && wait "$SERVER_PID" || fail "second drain"
SERVER_PID=""

echo "wire e2e passed ($RECORDS records over the wire, asc+desc byte-identical, drain clean)"
