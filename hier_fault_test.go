package colsort

// Fault-tolerance tests of the storage stack (DESIGN.md §9): transient
// faults healed by retry, CRC-framed spill runs, batch-level recovery, and
// the seeded chaos harness driving them.
//
// The acceptance bar (ISSUE 6): a file-backed sort ≥3× the single-run bound
// completes byte-identical to a fault-free run under seeded chaos combining
// transient faults, at least one corrupted spill chunk, and one permanently
// failed spill disk — with the retry/redo activity visible in the counters.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"colsort/internal/merge"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// chaosSorter builds a file-backed async sorter with the given chaos config
// under dir/scratch.
func chaosSorter(t *testing.T, dir string, z int, chaos *ChaosConfig) *Sorter {
	t.Helper()
	s, err := New(Config{Procs: 4, MemPerProc: 256, RecordSize: z,
		Dir: filepath.Join(dir, "scratch"), Async: true, Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestChaosAcceptance is the headline run: a file-backed input >3× the
// single-run bound sorted under seeded chaos that injects probabilistic
// transient faults, tears the first spill disk's first write (persistent
// corruption, caught by the post-spill scrub), flips a bit on a later spill
// disk's first read (transient corruption, healed by a CRC reread at merge
// time), and permanently kills one spill disk mid-write. The output must be
// byte-identical to the fault-free reference and every recovery mechanism
// must have visibly fired.
func TestChaosAcceptance(t *testing.T) {
	const p, mem, z = 4, 256, 32
	probe, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := probe.MaxRecords(Threaded)
	n := int(3*bound) + 123
	raw := genRaw(n, z, record.Uniform{Seed: 77})

	dir := t.TempDir()
	testutil.CheckLeaks(t, filepath.Join(dir, "scratch"))
	in := filepath.Join(dir, "in.dat")
	out := filepath.Join(dir, "out.dat")
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Spill ordinals under 4 formation batches: batch 1 spills to ordinal 1
	// (torn → scrub fails → redo onto 2), batch 2 to 3 (dies mid-write →
	// redo onto 4, whose first merge read is bit-flipped), batches 3-4 to
	// 5-6.
	s := chaosSorter(t, dir, z, &ChaosConfig{
		Seed:           uint64(1),
		PTransient:     0.01,
		TornSpillWrite: 1,
		DeadSpillDisk:  3,
		DeadSpillAfter: 16 << 10,
		FlipSpillRead:  4,
	})
	res, err := s.Sort(context.Background(), FromFile(in), ToFile(out),
		WithAlgorithm(Threaded))
	if err != nil {
		t.Fatalf("sort under chaos: %v", err)
	}
	defer res.Close()

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refSortBytes(t, raw, z, KeySpec{})) {
		t.Error("chaos output is not byte-identical to the fault-free reference")
	}

	f := res.Faults
	if !f.Any() {
		t.Fatal("no fault activity recorded under chaos")
	}
	if f.DiskRetries == 0 {
		t.Error("no transient faults retried at p=0.01")
	}
	if f.DiskGiveUps != 0 {
		t.Errorf("%d transient faults exhausted the retry budget", f.DiskGiveUps)
	}
	if f.CorruptChunks < 2 {
		t.Errorf("CorruptChunks = %d, want ≥ 2 (torn write + flipped read)", f.CorruptChunks)
	}
	if f.ChunkRereads == 0 {
		t.Error("the flipped spill read was not healed by a reread")
	}
	if f.BatchRedos < 2 {
		t.Errorf("BatchRedos = %d, want ≥ 2 (torn spill + dead spill disk)", f.BatchRedos)
	}

	// The fault activity folds into the counters report.
	tot := res.TotalCounters()
	if tot.DiskRetries != f.DiskRetries || tot.BatchRedos != f.BatchRedos ||
		tot.CorruptChunks != f.CorruptChunks || tot.ChunkRereads != f.ChunkRereads {
		t.Errorf("TotalCounters fault fields %+v do not match Result.Faults %+v", tot, f)
	}
}

// TestChaosTransientsHealMidMerge runs probabilistic transient faults only
// — across run formation AND the merge's spill reads — and requires a
// clean, byte-identical finish with retries recorded and nothing leaked.
func TestChaosTransientsHealMidMerge(t *testing.T) {
	const z = 32
	dir := t.TempDir()
	testutil.CheckLeaks(t, filepath.Join(dir, "scratch"))
	s := chaosSorter(t, dir, z, &ChaosConfig{Seed: 2, PTransient: 0.01})
	bound := s.MaxRecords(Threaded)
	n := int(3 * bound)
	raw := genRaw(n, z, record.Zipf{Seed: 13})
	var out bytes.Buffer
	res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
		WithAlgorithm(Threaded))
	if err != nil {
		t.Fatalf("sort under transient chaos: %v", err)
	}
	defer res.Close()
	if res.Faults.DiskRetries == 0 {
		t.Error("no retries recorded under p=0.01 transient faults")
	}
	if res.Faults.DiskGiveUps != 0 {
		t.Errorf("%d gave-ups", res.Faults.DiskGiveUps)
	}
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, z, KeySpec{})) {
		t.Error("output differs from the fault-free reference")
	}
}

// TestChaosBatchRedoAfterDeadSpillDisk kills the first spill disk almost
// immediately: the batch must be re-spilled onto a fresh disk and the sort
// must complete correctly, reporting the redo.
func TestChaosBatchRedoAfterDeadSpillDisk(t *testing.T) {
	testutil.CheckGoroutines(t)
	const z = 16
	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: z,
		Chaos: &ChaosConfig{Seed: 3, DeadSpillDisk: 1, DeadSpillAfter: 1 << 10}})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := int(2 * bound)
	raw := genRaw(n, z, record.Uniform{Seed: 17})
	var out bytes.Buffer
	res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
		WithAlgorithm(Threaded))
	if err != nil {
		t.Fatalf("sort across a dead spill disk: %v", err)
	}
	defer res.Close()
	if res.Faults.BatchRedos == 0 {
		t.Error("no batch redo recorded after the spill disk died")
	}
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, z, KeySpec{})) {
		t.Error("output differs from the fault-free reference")
	}
}

// TestChaosCorruptionNeverSilent disables batch redo and tears a spill
// write: the sort MUST fail with the CRC sentinel — persistent corruption
// must never flow into a plausible-looking output.
func TestChaosCorruptionNeverSilent(t *testing.T) {
	testutil.CheckGoroutines(t)
	const z = 16
	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: z,
		Chaos: &ChaosConfig{Seed: 4, TornSpillWrite: 1}})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := int(2 * bound)
	res, err := s.Sort(context.Background(),
		Generate(record.Uniform{Seed: 19}, int64(n)), Discard(),
		WithAlgorithm(Threaded),
		WithRetry(RetryPolicy{RedoBudget: -1}))
	if err == nil {
		res.Close()
		t.Fatal("torn spill write with redo disabled produced a 'successful' sort")
	}
	if !errors.Is(err, merge.ErrCorrupt) {
		t.Fatalf("err = %v, want errors.Is(err, merge.ErrCorrupt)", err)
	}
}

// TestRetryGiveUpCarriesContext drowns every disk operation in transient
// faults with a single-attempt policy: the failure must surface promptly
// and carry the exact operation/disk/extent context plus the underlying
// sentinel.
func TestRetryGiveUpCarriesContext(t *testing.T) {
	testutil.CheckGoroutines(t)
	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: 16,
		Chaos: &ChaosConfig{Seed: 5, PTransient: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sort(context.Background(),
		Generate(record.Uniform{Seed: 23}, 1024), nil,
		WithRetry(RetryPolicy{MaxAttempts: 1, RedoBudget: -1}))
	if err == nil {
		res.Close()
		t.Fatal("sort succeeded with every disk operation failing")
	}
	if !errors.Is(err, pdm.ErrInjected) {
		t.Errorf("err = %v, want the injected-fault sentinel preserved", err)
	}
	var oe *pdm.OpError
	if !errors.As(err, &oe) {
		t.Errorf("err = %v, want OpError operation/disk/extent context", err)
	}
}
