package colsort

import (
	"time"

	"colsort/internal/core"
	"colsort/internal/record"
)

// KeySpec describes where the sort key lives inside a record and in which
// direction to sort it: Width bytes at byte Offset, compared big-endian
// (equivalently: lexicographically by bytes), Ascending or Descending. The
// zero value is the library's native key — 8 bytes at offset 0, ascending —
// so existing callers need not name one. Any offset/width that fits in the
// record is legal, including widths over 8 bytes; records tied on the field
// are ordered deterministically by their remaining bytes.
//
// A KeySpec is compiled (record.KeySpec.Compile) into an allocation-free
// byte permutation applied on ingest and inverted on egress, so the sorting
// kernels run at native-key speed whatever the schema.
type KeySpec = record.KeySpec

// Order is the direction of a KeySpec.
type Order = record.Order

// Key field sort directions.
const (
	Ascending  = record.Ascending
	Descending = record.Descending
)

// Progress reports pass/round completion of a running sort; see
// WithProgress. Round == 0 marks a pass starting, Round == Rounds the pass
// complete.
type Progress = core.Progress

// PaddingPolicy says what Sort does when the record count is not directly
// plannable (the algorithms sort power-of-two record counts subject to
// divisibility conditions).
type PaddingPolicy int

const (
	// PadAuto (the default) accepts any record count n ≥ 1: when n is not
	// directly plannable the input is padded with maximal records up to the
	// smallest power of two the planner accepts, and only the n real
	// records are verified, reported and emitted. The relative overhead is
	// below 2× and shrinks to the next-power-of-two gap.
	PadAuto PaddingPolicy = iota
	// PadNever requires n to satisfy the algorithm's restrictions exactly,
	// failing with the planner's explanation otherwise.
	PadNever
)

// Fabric selects how the simulated cluster moves message payloads between
// its goroutine processors; see WithFabric.
type Fabric int

const (
	// FabricZeroCopy (the default) transfers buffer ownership: a sent
	// buffer is adopted by the receiver outright and recycled into its
	// pool, so the communicate stages move pointers, not bytes.
	FabricZeroCopy Fabric = iota
	// FabricCopying deep-copies every message payload through a fabric
	// pool at send time — the memcpy an MPI transport performs — for
	// simulations that should charge wall-clock for the copy. Outputs and
	// sim counters are identical to FabricZeroCopy.
	FabricCopying
)

// RetryPolicy tunes the storage fault-tolerance layers of one Sort call;
// see WithRetry. The zero value of each field selects its default.
type RetryPolicy struct {
	// MaxAttempts is the number of times each disk operation is issued
	// before a transient fault is given up on (default 4). 1 disables
	// retries: the first failure escapes immediately.
	MaxAttempts int
	// BaseDelay is the backoff before the first re-issue (default 200µs);
	// it doubles per attempt up to MaxDelay (default 10ms), with ±50%
	// jitter. Cancelling the sort's context interrupts any backoff sleep.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// RedoBudget is how many times a hierarchical run-formation batch may
	// be re-sorted and re-spilled onto a fresh disk after its spilled run
	// fails verification or its spill disk fails permanently (default 2).
	// Negative disables batch redo entirely.
	RedoBudget int
	// Scrub forces the post-spill CRC readback of every run even when no
	// chaos injection is configured (under chaos it is always on). It
	// catches persistent write-path corruption — a torn write, bit rot —
	// while the batch that produced the run can still be redone, at the
	// cost of one extra sequential read of every spilled byte.
	Scrub bool
}

// sortOptions collects the functional options of one Sort call. The
// machine-override fields (async, delay, chaos) are tri-state: a set flag
// records that the option was passed at all, so a job can explicitly turn
// a Config-enabled feature OFF, not just on.
type sortOptions struct {
	alg       Algorithm
	group     int // hybrid group size; 0 selects the non-hybrid alg
	keySpec   KeySpec
	padding   PaddingPolicy
	progress  func(Progress)
	maxMemory int64        // bytes one run may hold; 0 = only the algorithm's bound
	fanIn     int          // merge fan-in; 0 = defaultMergeFanIn
	formation RunFormation // hierarchical run formation; zero value ReplacementSelect
	fabric    Fabric
	retry     *RetryPolicy
	noWait    bool          // fail with ErrBusy instead of queueing for admission
	checkpoint string        // manifest directory of a durable job; "" = no checkpointing
	deadline   time.Duration // per-job wall-clock budget; 0 = none

	asyncSet  bool
	async     bool
	delaySet  bool
	delaySeek time.Duration
	delayMBps int
	chaosSet  bool
	chaos     *ChaosConfig
}

// Option customizes one Sort call; see the With* constructors.
//
// Precedence rule: Config fields describe the engine at construction time;
// an Option that names the same knob (WithAsync over Config.Async,
// WithDiskModel over DiskSeekMicros/DiskMBps, WithChaos over Config.Chaos,
// WithRetry over the default retry policy) overrides the Config for THAT
// JOB ONLY — the engine's configuration and every concurrent job keep the
// Config's behavior. Options never mutate the engine.
type Option func(*sortOptions)

// WithAlgorithm selects the out-of-core sorting program (default Threaded).
// The last algorithm-selecting option wins: it clears any hybrid group a
// preceding WithHybridGroup set.
func WithAlgorithm(alg Algorithm) Option {
	return func(o *sortOptions) { o.alg, o.group = alg, 0 }
}

// WithHybridGroup selects hybrid group columnsort with group size g
// (2 ≤ g ≤ P/2), the Section-6 interpolation between Threaded (g = 1) and
// MColumn (g = P). Hybrid runs require a directly plannable power-of-two
// record count (padding is not supported for it).
func WithHybridGroup(g int) Option {
	return func(o *sortOptions) { o.alg, o.group = Hybrid, g }
}

// WithKeySpec sorts on a caller-defined key field instead of the native
// 8-bytes-at-offset-0 key, so real record formats (log entries, trace
// headers) sort on their own fields without reformatting.
func WithKeySpec(ks KeySpec) Option {
	return func(o *sortOptions) { o.keySpec = ks }
}

// WithPadding sets the padding policy (default PadAuto).
func WithPadding(p PaddingPolicy) Option {
	return func(o *sortOptions) { o.padding = p }
}

// WithMaxMemory caps, in bytes, the records one columnsort run may hold.
// A sort whose input exceeds the cap — or the selected algorithm's own
// problem-size bound — transparently takes the hierarchical path: the
// input is split into maximal bounded runs, each sorted by the engine on
// one persistent cluster fabric, and the sorted runs are streamed through
// a loser-tree k-way merge into the Sink (see WithMergeFanIn). 0 (the
// default) leaves only the algorithm's bound in force. The hierarchical
// path requires PadAuto, a non-hybrid algorithm, and a non-nil Sink.
func WithMaxMemory(bytes int64) Option {
	return func(o *sortOptions) { o.maxMemory = bytes }
}

// WithMergeFanIn sets the maximum number of sorted runs the hierarchical
// merge combines at once (default 16, minimum 2). When run formation
// produces more runs than the fan-in, intermediate merge levels reduce the
// set until one final merge streams into the Sink. Larger fan-ins mean
// fewer passes over the spilled data but more read streams (and prefetch
// buffers) competing at once.
func WithMergeFanIn(k int) Option {
	return func(o *sortOptions) { o.fanIn = k }
}

// RunFormation selects how the hierarchical path cuts the input stream
// into sorted runs before the k-way merge.
type RunFormation int

const (
	// ReplacementSelect (the default) forms maximal variable-length runs by
	// heap-based replacement selection: runs average ~2× the memory cap on
	// random input and collapse to a single run on sorted or nearly-sorted
	// input (ascending or descending — "down" runs are spilled descending
	// and merged through a reversed reader). Run count becomes
	// data-dependent; the fixed-batch arithmetic is its worst-case bound.
	ReplacementSelect RunFormation = iota
	// FixedBatch spills one run per memory-cap-sized batch, each sorted by
	// a full engine execution — the PR 4 behaviour, kept as the exactly
	// predictable equivalence baseline.
	FixedBatch
)

// String returns the CLI/wire name of the formation mode.
func (f RunFormation) String() string {
	if f == FixedBatch {
		return "fixed-batch"
	}
	return "replacement-select"
}

// RunFormationByName parses the CLI/wire name of a formation mode.
func RunFormationByName(name string) (RunFormation, bool) {
	switch name {
	case "replacement-select", "replacement-selection", "rs":
		return ReplacementSelect, true
	case "fixed-batch", "fixed":
		return FixedBatch, true
	}
	return 0, false
}

// WithRunFormation selects the hierarchical run-formation strategy
// (default ReplacementSelect). It has no effect on sorts that fit a single
// run. See RunFormation for the trade-off.
func WithRunFormation(f RunFormation) Option {
	return func(o *sortOptions) { o.formation = f }
}

// WithFabric selects the cluster interconnect mode for this sort (default
// FabricZeroCopy). FabricCopying is the MPI-fidelity simulation: every
// message payload is physically copied at send time, as it would be on a
// real distributed-memory machine, at identical operation counts and
// byte-identical output — useful when the simulated wall clock should
// include the transport's memory traffic.
func WithFabric(f Fabric) Option {
	return func(o *sortOptions) { o.fabric = f }
}

// WithRetry overrides the sort's storage fault-tolerance policy. Every
// Sort already runs with the default policy — transient disk faults are
// retried under bounded exponential backoff with jitter, every escaping
// disk error carries operation/disk/offset context, spilled runs are
// CRC32C-framed, and a hierarchical batch whose run fails verification is
// re-sorted and re-spilled within the redo budget — so WithRetry exists to
// tune the budgets (or, with MaxAttempts 1 and a negative RedoBudget, to
// fail fast). Retries and redos are visible in Result.Faults and the
// fault-tolerance fields of Result.TotalCounters.
func WithRetry(p RetryPolicy) Option {
	return func(o *sortOptions) { o.retry = &p }
}

// WithNoWait makes the Sort fail fast with ErrBusy when the engine cannot
// admit the job immediately (its memory budget is exhausted or earlier
// jobs are queued), instead of queueing FIFO for a lease. The default is
// to wait; cancelling the job's context abandons the wait either way.
func WithNoWait() Option {
	return func(o *sortOptions) { o.noWait = true }
}

// WithAsync enables (or, with false, disables) the asynchronous disk layer
// for this job, overriding Config.Async. Enabling on a sync-configured
// engine uses the engine's ReadAhead/WriteBehind queue bounds. Operation
// counts are identical either way.
func WithAsync(on bool) Option {
	return func(o *sortOptions) { o.asyncSet, o.async = true, on }
}

// WithDiskModel imposes a per-operation disk service time on this job's
// disks (seek per discontiguous access plus bytes/bandwidth), overriding
// Config.DiskSeekMicros/DiskMBps. A zero seek AND zero mbps removes any
// engine-configured delay model for this job.
func WithDiskModel(seek time.Duration, mbps int) Option {
	return func(o *sortOptions) { o.delaySet, o.delaySeek, o.delayMBps = true, seek, mbps }
}

// WithChaos injects seeded storage faults under this job's disks,
// overriding Config.Chaos for this job only — concurrent jobs on the same
// engine stay healthy. A nil c disables chaos for this job on a
// chaos-configured engine. See Config.Chaos and DESIGN.md §9.
func WithChaos(c *ChaosConfig) Option {
	return func(o *sortOptions) { o.chaosSet, o.chaos = true, c }
}

// WithCheckpoint makes a hierarchical sort crash-safe: every verified
// spilled run is recorded — path, record count, direction, CRC32C sidecar —
// in a fsync'd JSON-lines manifest under dir, the run files themselves are
// kept in dir (instead of the engine's scratch directory) and survive the
// process, and after a crash Engine.Resume(ctx, dir, ...) continues the
// sort from the manifest without re-sorting any verified run. The directory
// belongs to ONE job: it is created if missing, must not be shared between
// concurrent jobs, and is removed when the sort completes. Sorts that fit a
// single run ignore the option (there is nothing spilled to checkpoint).
// See DESIGN.md §13 for the durability contract.
func WithCheckpoint(dir string) Option {
	return func(o *sortOptions) { o.checkpoint = dir }
}

// WithDeadline bounds the job's wall-clock time, measured from the Sort
// call (admission queueing included). A job past its deadline is torn down
// exactly like a cancelled one — goroutines unwind, write-behind drains,
// scratch is removed — and Sort returns an error satisfying
// errors.Is(err, context.DeadlineExceeded). 0 (the default) imposes none;
// an earlier deadline on the caller's context still applies either way.
func WithDeadline(d time.Duration) Option {
	return func(o *sortOptions) { o.deadline = d }
}

// WithProgress registers a callback receiving pass/round completion events
// from rank 0 of the simulated cluster. The callback runs on the sort's
// internal goroutines — sequentially, never concurrently — and must be fast
// and non-blocking; a callback that cancels the sort's context is the
// supported way to abort from inside a progress handler.
func WithProgress(fn func(Progress)) Option {
	return func(o *sortOptions) { o.progress = fn }
}
