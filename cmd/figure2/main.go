// Command figure2 regenerates Figure 2 of the paper and its companion
// analyses (experiments E1, E7, E8, E10): execution seconds per
// GiB/processor for threaded, subblock and M-columnsort at buffer sizes
// 2^24 and 2^25 bytes, over 4–32 GiB of 64-byte records, plus the 3- and
// 4-pass baseline I/O floors.
//
// The numbers come from the validated operation-count predictor evaluated
// at paper scale under the Beowulf-2003 cost model (see internal/figure2).
package main

import (
	"flag"
	"fmt"
	"os"

	"colsort/internal/core"
	"colsort/internal/figure2"
	"colsort/internal/sim"
)

func main() {
	sweep := flag.Bool("sweep-buffer", false, "sweep buffer sizes 2^20..2^26 at fixed volume (E7)")
	elig := flag.Bool("eligibility", false, "print the eligibility matrix only (E8)")
	passes := flag.Bool("passes", false, "compare 3-pass and 4-pass threaded columnsort (E10)")
	flag.Parse()
	cm := sim.Beowulf2003()

	switch {
	case *sweep:
		sweepBuffers(cm)
	case *elig:
		eligibility()
	case *passes:
		passAblation(cm)
	default:
		renderFigure(cm)
	}
}

func renderFigure(cm sim.CostModel) {
	pts := figure2.Grid()
	for i := range pts {
		if pts[i].Eligible {
			if err := figure2.Evaluate(&pts[i], cm); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
	fmt.Println("Figure 2 — execution times for the three versions of columnsort")
	fmt.Println("plus baseline I/O times for three and four passes (simulated Beowulf).")
	fmt.Println()
	fmt.Print(figure2.Render(pts))
	fmt.Println("\n— means the configuration violates the algorithm's problem-size")
	fmt.Println("restriction (run with -eligibility for reasons).")
}

func eligibility() {
	fmt.Println("Eligibility matrix (experiment E8):")
	for _, pt := range figure2.Grid() {
		status := "OK"
		if !pt.Eligible {
			status = "INELIGIBLE: " + pt.Reason
		}
		fmt.Printf("  %-34s %3d GiB  %s\n", pt.Label(), pt.TotalBytes/figure2.GiB, status)
	}
}

func sweepBuffers(cm sim.CostModel) {
	fmt.Println("Buffer-size sweep (experiment E7): M-columnsort, 8 GiB total, 64-byte records")
	fmt.Printf("%12s %14s\n", "buffer", "secs/(GiB/proc)")
	for lg := 20; lg <= 26; lg++ {
		pt := figure2.MakePoint(core.MColumn, 1<<lg, 8*figure2.GiB, 64)
		if !pt.Eligible {
			fmt.Printf("%12s %14s  (%s)\n", fmt.Sprintf("2^%d", lg), "—", pt.Reason)
			continue
		}
		if err := figure2.Evaluate(&pt, cm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%12s %14.1f\n", fmt.Sprintf("2^%d", lg), pt.SecsPerGBProc)
	}
	fmt.Println("\nLarger buffers are faster (fewer pipeline rounds and seeks), as in")
	fmt.Println("Section 5; beyond physical memory the real system would page.")
}

func passAblation(cm sim.CostModel) {
	fmt.Println("Pass-count ablation (experiment E10): 4 GiB, buffer 2^24, 64-byte records")
	for _, alg := range []core.Algorithm{core.Threaded, core.Threaded4, core.BaselineIO3, core.BaselineIO4} {
		pt := figure2.MakePoint(alg, 1<<24, 4*figure2.GiB, 64)
		if !pt.Eligible {
			fmt.Printf("  %-18v ineligible: %s\n", alg, pt.Reason)
			continue
		}
		if err := figure2.Evaluate(&pt, cm); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %-18v %d passes  %7.1f secs/(GiB/proc)\n", alg, alg.Passes(), pt.SecsPerGBProc)
	}
	fmt.Println("\nThe [CC02] 3-pass restructuring buys back one full pass of I/O,")
	fmt.Println("the improvement the paper uses as its baseline.")
}
