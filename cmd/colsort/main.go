// Command colsort runs one out-of-core sort end to end on the simulated
// cluster: plan, generate, sort, verify, and report operation counts plus
// the Beowulf-2003 time estimate.
//
// Examples:
//
//	colsort -alg subblock -n 1048576 -p 8 -mem 16384
//	colsort -alg m-columnsort -n 262144 -p 4 -mem 2048 -gen zipf -dir /tmp/colsort
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"colsort"
	"colsort/internal/record"
)

func main() {
	algName := flag.String("alg", "threaded", "algorithm: threaded, threaded-4pass, subblock, m-columnsort, combined, hybrid, baseline-io-3pass, baseline-io-4pass")
	n := flag.Int64("n", 1<<20, "records to sort (power of 2)")
	p := flag.Int("p", 4, "processors (power of 2)")
	d := flag.Int("d", 0, "disks (default P)")
	mem := flag.Int("mem", 1<<14, "records of column buffer per processor")
	z := flag.Int("z", 64, "record size in bytes")
	group := flag.Int("g", 2, "group size for -alg hybrid (2 ≤ g ≤ P/2)")
	gen := flag.String("gen", "uniform", "input distribution: "+strings.Join(record.Names(), ", "))
	seed := flag.Uint64("seed", 1, "generator seed")
	dir := flag.String("dir", "", "back disks with files under this directory (default: in memory)")
	planOnly := flag.Bool("plan", false, "print the plan and exit")
	flag.Parse()

	alg, ok := algByName(*algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	g, ok := record.ByName(*gen, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown generator %q (have: %s)\n", *gen, strings.Join(record.Names(), ", "))
		os.Exit(2)
	}

	sorter, err := colsort.New(colsort.Config{
		Procs: *p, Disks: *d, MemPerProc: *mem, RecordSize: *z, Dir: *dir,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	plan := func() (interface{ String() string }, error) {
		if alg == colsort.Hybrid {
			return sorter.PlanHybrid(*group, *n)
		}
		return sorter.Plan(alg, *n)
	}
	pl, err := plan()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("plan:", pl)
	if *planOnly {
		return
	}

	start := time.Now()
	var res *colsort.Result
	if alg == colsort.Hybrid {
		res, err = sorter.SortGeneratedHybrid(*group, *n, g)
	} else {
		res, err = sorter.SortGenerated(alg, *n, g)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer res.Close()
	wall := time.Since(start)

	isBaseline := alg == colsort.BaselineIO3 || alg == colsort.BaselineIO4
	if !isBaseline {
		if err := res.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFICATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("verified: output sorted in PDM order, multiset preserved")
	}

	tot := res.TotalCounters()
	fmt.Printf("wall clock: %v (simulated cluster in one process)\n", wall.Round(time.Millisecond))
	fmt.Printf("disk:  %d MiB read, %d MiB written, %d segments\n",
		tot.DiskReadBytes>>20, tot.DiskWriteBytes>>20, tot.DiskReadOps+tot.DiskWriteOps)
	fmt.Printf("net:   %d MiB in %d messages (+%d self-messages)\n",
		tot.NetBytes>>20, tot.NetMsgs, tot.LocalMsgs)
	fmt.Printf("cpu:   %d M compare-units, %d MiB moved\n",
		tot.CompareUnits>>20, tot.MovedBytes>>20)

	est := res.EstimateBeowulf()
	fmt.Println("estimated on the paper's Beowulf testbed:")
	for k, e := range est.Passes {
		fmt.Printf("  pass %d: %v\n", k+1, e)
	}
	fmt.Printf("  total: %.1fs\n", est.Total)
}

func algByName(name string) (colsort.Algorithm, bool) {
	for _, a := range []colsort.Algorithm{
		colsort.Threaded, colsort.Threaded4, colsort.Subblock, colsort.MColumn,
		colsort.Combined, colsort.Hybrid, colsort.BaselineIO3, colsort.BaselineIO4,
	} {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}
