// Command colsort runs out-of-core sorts end to end on the simulated
// cluster: plan, ingest (a generated workload or a real file), sort,
// verify, and report operation counts plus the Beowulf-2003 time estimate.
// It is a thin shell over the v1 library call
// Engine.Sort(ctx, src, dst, opts...).
//
// Examples:
//
//	colsort -alg subblock -n 1048576 -p 8 -mem 16384
//	colsort -alg m-columnsort -n 262144 -p 4 -mem 2048 -gen zipf -dir /tmp/colsort
//
// With -in/-out it sorts a real on-disk file of z-byte records into a
// sorted output file (any record count; the run is padded internally):
//
//	colsort -alg threaded -in input.dat -out sorted.dat -p 4 -mem 4096 \
//	        -dir /tmp/colsort -async
//
// -key-offset/-key-width/-desc sort on a caller-defined key field instead
// of the first 8 bytes (weblog timestamps, seismic amplitudes). -progress
// prints pass/round completion as the sort runs. Ctrl-C cancels the run,
// tearing down all processors and scratch files before exiting.
//
// -async enables the prefetch/write-behind disk layer (-readahead and
// -writebehind size its per-disk queues); -disk-seek-us/-disk-mbps impose a
// physical-disk service-time model so the overlap is visible on
// page-cached hardware.
//
// Inputs beyond the selected algorithm's problem-size bound — or beyond a
// -max-memory-mib cap — sort hierarchically: bounded runs, each a full
// columnsort, streamed through a loser-tree k-way merge (-merge-fanin) into
// the output file.
//
// Every sort retries transient disk faults under bounded backoff and
// CRC32C-frames its spilled runs; -retries, -retry-base-us, -redo-budget and
// -scrub tune the policy (see DESIGN.md §9). The -chaos-* flags inject
// seeded storage faults — transient errors, bit flips, torn writes, a dying
// spill disk — to exercise those layers; a chaos run prints its seed, and
// COLSORT_CHAOS_SEED (or -chaos-seed) replays it.
//
// -checkpoint DIR persists a run manifest while a hierarchical sort spills
// its runs; after a crash or Ctrl-C, the same command with -resume picks
// the sort back up from that manifest, adopting the durable runs instead of
// re-sorting them (see DESIGN.md §13). -deadline bounds the whole sort's
// wall clock, failing it cleanly when exceeded.
//
// -jobs N serves N concurrent sorts from ONE shared engine (warm buffer
// pools, shared scratch, per-job fault isolation); -total-memory-mib caps
// the engine's aggregate record-buffer budget, queueing jobs that do not
// fit until earlier ones finish:
//
//	colsort -jobs 4 -total-memory-mib 64 -n 1048576 -p 4 -mem 4096 \
//	        -dir /tmp/colsort -async
//
// Generated inputs get per-job seeds (-seed, -seed+1, …); with -in, every
// job sorts the same input and job J writes <out>.jobJ.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"time"

	"colsort"
	"colsort/internal/record"
)

func main() {
	algName := flag.String("alg", "threaded", "algorithm: threaded, threaded-4pass, subblock, m-columnsort, combined, hybrid, baseline-io-3pass, baseline-io-4pass")
	n := flag.Int64("n", 1<<20, "records to sort (any count ≥ 1: non-plannable counts pad, above-bound counts sort hierarchically); ignored with -in")
	p := flag.Int("p", 4, "processors (power of 2)")
	d := flag.Int("d", 0, "disks (default P)")
	mem := flag.Int("mem", 1<<14, "records of column buffer per processor")
	z := flag.Int("z", 64, "record size in bytes")
	group := flag.Int("g", 2, "group size for -alg hybrid (2 ≤ g ≤ P/2)")
	gen := flag.String("gen", "uniform", "input distribution: "+strings.Join(record.Names(), ", "))
	seed := flag.Uint64("seed", 1, "generator seed")
	dir := flag.String("dir", "", "back disks with files under this directory (default: in memory)")
	async := flag.Bool("async", false, "asynchronous disk layer: prefetch read-ahead + write-behind")
	readahead := flag.Int("readahead", 0, "async: max prefetched extents per disk (0: default)")
	writebehind := flag.Int("writebehind", 0, "async: max buffered writes per disk (0: default)")
	diskSeekUS := flag.Int("disk-seek-us", 0, "model: microseconds per discontiguous disk access (0: off)")
	diskMBps := flag.Int("disk-mbps", 0, "model: sustained disk bandwidth in MiB/s (0: off)")
	inPath := flag.String("in", "", "sort the records of this file (any count ≥ 1) instead of generating input")
	outPath := flag.String("out", "", "write the sorted records to this file (requires -in)")
	maxMemMiB := flag.Int64("max-memory-mib", 0, "cap one columnsort run at this many MiB of records; inputs above the cap (or the algorithm's bound) sort as runs + k-way merge (0: bound only)")
	mergeFanIn := flag.Int("merge-fanin", 0, "maximum runs merged at once on the hierarchical path (0: default 16)")
	runFormation := flag.String("run-formation", "replacement-select", "hierarchical run formation: replacement-select (heap-formed maximal up/down runs) or fixed-batch (engine-sorted batches of exactly the run-plan size)")
	retries := flag.Int("retries", 0, "fault tolerance: attempts per disk operation before a transient fault escapes (0: default 4; 1 disables retries)")
	retryBaseUS := flag.Int("retry-base-us", 0, "fault tolerance: first backoff delay in microseconds, doubling per attempt (0: default 200)")
	redoBudget := flag.Int("redo-budget", 0, "fault tolerance: hierarchical batches that may be re-sorted and re-spilled (0: default 2; negative disables)")
	scrub := flag.Bool("scrub", false, "fault tolerance: CRC-read every spilled run back after writing it (always on under -chaos-*)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "chaos: fault-injection seed (0: $COLSORT_CHAOS_SEED, else 1)")
	chaosPTransient := flag.Float64("chaos-p-transient", 0, "chaos: per-operation probability of a transient disk fault")
	chaosPBitFlip := flag.Float64("chaos-p-bitflip", 0, "chaos: per-read probability of silently flipping one bit")
	chaosPTorn := flag.Float64("chaos-p-torn", 0, "chaos: per-write probability of a silent torn write")
	chaosTornSpill := flag.Int("chaos-torn-spill", 0, "chaos: tear the first write of the Nth spill disk (0: off)")
	chaosFlipSpill := flag.Int("chaos-flip-spill", 0, "chaos: flip one bit of the first read of the Nth spill disk (0: off)")
	chaosDeadSpill := flag.Int("chaos-dead-spill", 0, "chaos: permanently fail the Nth spill disk after -chaos-dead-after-kib (0: off)")
	chaosDeadAfterKiB := flag.Int64("chaos-dead-after-kib", 0, "chaos: write traffic in KiB the -chaos-dead-spill disk survives")
	keyOffset := flag.Int("key-offset", 0, "byte offset of the sort key field within each record")
	keyWidth := flag.Int("key-width", 0, "byte width of the sort key field (0: 8)")
	desc := flag.Bool("desc", false, "sort the key field in descending order")
	progress := flag.Bool("progress", false, "print pass/round completion as the sort runs")
	planOnly := flag.Bool("plan", false, "print the plan and exit")
	checkpoint := flag.String("checkpoint", "", "hierarchical sorts: persist a run manifest under this directory so a crashed or cancelled sort can be picked back up with -resume")
	resume := flag.Bool("resume", false, "resume the checkpointed sort whose manifest -checkpoint holds, adopting its durable runs instead of re-sorting (requires -checkpoint, -in and -out)")
	deadline := flag.Duration("deadline", 0, "fail the sort if it has not completed within this duration (0: none)")
	jobs := flag.Int("jobs", 1, "serve this many concurrent sorts from one shared engine (generated inputs get per-job seeds; with -in, job J writes <out>.jobJ)")
	totalMemMiB := flag.Int64("total-memory-mib", 0, "engine-wide record-buffer budget in MiB; jobs over the remaining budget queue until earlier jobs finish (0: unlimited)")
	flag.Parse()

	alg, ok := algByName(*algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if (*inPath == "") != (*outPath == "") {
		fmt.Fprintln(os.Stderr, "-in and -out must be used together")
		os.Exit(2)
	}
	g, ok := record.ByName(*gen, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown generator %q (have: %s)\n", *gen, strings.Join(record.Names(), ", "))
		os.Exit(2)
	}
	formation, ok := colsort.RunFormationByName(*runFormation)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown -run-formation %q (have: replacement-select, fixed-batch)\n", *runFormation)
		os.Exit(2)
	}

	cfg := colsort.Config{
		Procs: *p, Disks: *d, MemPerProc: *mem, RecordSize: *z, Dir: *dir,
		Async: *async, ReadAhead: *readahead, WriteBehind: *writebehind,
		DiskSeekMicros: *diskSeekUS, DiskMBps: *diskMBps,
	}
	if *chaosPTransient > 0 || *chaosPBitFlip > 0 || *chaosPTorn > 0 ||
		*chaosTornSpill > 0 || *chaosFlipSpill > 0 || *chaosDeadSpill > 0 {
		seed := *chaosSeed
		if seed == 0 {
			if env := os.Getenv("COLSORT_CHAOS_SEED"); env != "" {
				s, err := strconv.ParseUint(env, 10, 64)
				if err != nil {
					fmt.Fprintf(os.Stderr, "bad COLSORT_CHAOS_SEED %q: %v\n", env, err)
					os.Exit(2)
				}
				seed = s
			} else {
				seed = 1
			}
		}
		cfg.Chaos = &colsort.ChaosConfig{
			Seed:           seed,
			PTransient:     *chaosPTransient,
			PBitFlip:       *chaosPBitFlip,
			PTorn:          *chaosPTorn,
			TornSpillWrite: *chaosTornSpill,
			FlipSpillRead:  *chaosFlipSpill,
			DeadSpillDisk:  *chaosDeadSpill,
			DeadSpillAfter: *chaosDeadAfterKiB << 10,
		}
		// Always print the seed: a failing chaos run must be replayable.
		fmt.Fprintf(os.Stderr, "chaos: fault injection enabled, seed %d\n", seed)
	}
	if *jobs < 1 {
		fmt.Fprintln(os.Stderr, "-jobs must be at least 1")
		os.Exit(2)
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "-resume needs the manifest directory: pass -checkpoint DIR")
		os.Exit(2)
	}
	if *resume && (*inPath == "" || *outPath == "") {
		fmt.Fprintln(os.Stderr, "-resume requires -in and -out (the original input, and a file to stream the output into)")
		os.Exit(2)
	}
	if *checkpoint != "" && *jobs > 1 {
		fmt.Fprintln(os.Stderr, "-checkpoint holds one job's manifest; it cannot be shared across -jobs")
		os.Exit(2)
	}
	engine, err := colsort.NewEngine(colsort.EngineConfig{
		Config:      cfg,
		TotalMemory: *totalMemMiB << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer engine.Close()

	// Ctrl-C cancels the context; the library tears down the cluster, the
	// async disk workers and the scratch files before Sort returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []colsort.Option{colsort.WithAlgorithm(alg)}
	if alg == colsort.Hybrid {
		opts = []colsort.Option{colsort.WithHybridGroup(*group)}
	}
	if *maxMemMiB > 0 {
		opts = append(opts, colsort.WithMaxMemory(*maxMemMiB<<20))
	}
	if *mergeFanIn > 0 {
		opts = append(opts, colsort.WithMergeFanIn(*mergeFanIn))
	}
	opts = append(opts, colsort.WithRunFormation(formation))
	if *checkpoint != "" {
		opts = append(opts, colsort.WithCheckpoint(*checkpoint))
	}
	if *deadline > 0 {
		opts = append(opts, colsort.WithDeadline(*deadline))
	}
	if *retries != 0 || *retryBaseUS != 0 || *redoBudget != 0 || *scrub {
		opts = append(opts, colsort.WithRetry(colsort.RetryPolicy{
			MaxAttempts: *retries,
			BaseDelay:   time.Duration(*retryBaseUS) * time.Microsecond,
			RedoBudget:  *redoBudget,
			Scrub:       *scrub,
		}))
	}
	if *keyOffset != 0 || *keyWidth != 0 || *desc {
		ks := colsort.KeySpec{Offset: *keyOffset, Width: *keyWidth}
		if *desc {
			ks.Order = colsort.Descending
		}
		opts = append(opts, colsort.WithKeySpec(ks))
	}
	if *progress {
		lastPct := -10 // one decade below 0 so the first merge event prints
		opts = append(opts, colsort.WithProgress(func(ev colsort.Progress) {
			if ev.Pass == 0 && ev.FormedRecords > 0 { // replacement-selection run formation
				if ev.TotalRecords > 0 {
					fmt.Fprintf(os.Stderr, "formed run %d: %d/%d records (%d%%)\n",
						ev.Batch, ev.FormedRecords, ev.TotalRecords, 100*ev.FormedRecords/ev.TotalRecords)
				}
				return
			}
			if ev.Pass == 0 { // hierarchical merge events: report every 10%
				pct := int(100 * ev.MergedRecords / ev.TotalRecords)
				if pct/10 > lastPct/10 || ev.MergedRecords == ev.TotalRecords {
					lastPct = pct
					fmt.Fprintf(os.Stderr, "merge: %d/%d records (%d%%)\n", ev.MergedRecords, ev.TotalRecords, pct)
				}
				return
			}
			if ev.Round == 0 || ev.Round == ev.Rounds {
				if ev.Batches > 0 {
					fmt.Fprintf(os.Stderr, "run %d/%d pass %d/%d: %d/%d rounds\n",
						ev.Batch, ev.Batches, ev.Pass, ev.Passes, ev.Round, ev.Rounds)
					return
				}
				fmt.Fprintf(os.Stderr, "pass %d/%d: %d/%d rounds\n", ev.Pass, ev.Passes, ev.Round, ev.Rounds)
			}
		}))
	}

	if *planOnly {
		plan, err := planFor(engine, alg, *group, *inPath, *n, *z, *maxMemMiB<<20, formation)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("plan:", plan)
		return
	}

	// padNever: exactly plannable (or hybrid, which plans its own shape) —
	// keep the strict no-padding contract of the legacy CLI. Otherwise
	// Sort decides under PadAuto — possibly hierarchically, whose merged
	// output only exists as a stream, so generated input (no -out) sinks
	// to Discard.
	padNever := false
	if *inPath == "" {
		_, perr := engine.Plan(alg, *n)
		padNever = *maxMemMiB == 0 && (alg == colsort.Hybrid || perr == nil)
		if padNever {
			opts = append(opts, colsort.WithPadding(colsort.PadNever))
		}
	}
	srcFor := func(j int) colsort.Source {
		if *inPath != "" {
			return colsort.FromFile(*inPath)
		}
		if j == 0 {
			return colsort.Generate(g, *n)
		}
		gj, _ := record.ByName(*gen, *seed+uint64(j))
		return colsort.Generate(gj, *n)
	}
	dstFor := func(j int) colsort.Sink {
		switch {
		case *inPath == "" && padNever:
			return nil
		case *inPath == "":
			return colsort.Discard()
		case *jobs > 1:
			return colsort.ToFile(fmt.Sprintf("%s.job%d", *outPath, j))
		default:
			return colsort.ToFile(*outPath)
		}
	}
	isBaseline := alg == colsort.BaselineIO3 || alg == colsort.BaselineIO4

	if *jobs > 1 {
		serveJobs(ctx, engine, *jobs, srcFor, dstFor, opts, isBaseline, *inPath != "")
		return
	}

	start := time.Now()
	var res *colsort.Result
	if *resume {
		res, err = engine.Resume(ctx, *checkpoint, srcFor(0), dstFor(0), opts...)
	} else {
		res, err = engine.Sort(ctx, srcFor(0), dstFor(0), opts...)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted: sort cancelled, scratch cleaned up")
			os.Exit(130)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "deadline exceeded: the sort did not complete within -deadline %v\n", *deadline)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer res.Close()
	wall := time.Since(start)
	switch {
	case *inPath != "":
		fmt.Printf("sorted %d records of %s into %s (plan: %s)\n", res.RealRecords(), *inPath, *outPath, res.Plan.String())
		if res.Merge != nil {
			fmt.Println("verified in-stream: every run verified, merge order checked, multiset preserved")
		} else {
			// Single-run file sorts verify BEFORE -out is written.
			fmt.Println("verified: output sorted, multiset preserved")
		}
	case !isBaseline:
		if err := res.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFICATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("plan:", res.Plan.String())
		if res.Merge != nil {
			fmt.Println("verified in-stream: every run verified, merge order checked, multiset preserved")
		} else {
			fmt.Println("verified: output sorted in PDM order, multiset preserved")
		}
	default:
		fmt.Println("plan:", res.Plan.String())
	}
	report(res, wall)
}

// serveJobs runs n concurrent sorts on the shared engine and prints one
// summary line per job plus the engine's aggregate stats. Exits nonzero if
// any job failed or failed verification.
func serveJobs(ctx context.Context, engine *colsort.Engine, n int,
	srcFor func(int) colsort.Source, dstFor func(int) colsort.Sink,
	opts []colsort.Option, isBaseline, fileBacked bool) {
	type outcome struct {
		res  *colsort.Result
		wall time.Duration
		err  error
	}
	results := make([]outcome, n)
	start := time.Now()
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			js := time.Now()
			res, err := engine.Sort(ctx, srcFor(j), dstFor(j), opts...)
			results[j] = outcome{res: res, wall: time.Since(js), err: err}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	failed := false
	for j, r := range results {
		if r.err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "job %d: %v\n", j, r.err)
			continue
		}
		status := "verified"
		switch {
		case isBaseline:
			status = "done (baseline, unsorted by design)"
		case r.res.Merge != nil || fileBacked:
			status = "verified in-stream"
		default:
			if err := r.res.Verify(); err != nil {
				failed = true
				status = "VERIFICATION FAILED: " + err.Error()
			}
		}
		line := fmt.Sprintf("job %d: %s in %v (plan: %s)", j, status, r.wall.Round(time.Millisecond), r.res.Plan.String())
		if f := r.res.Faults; f.Any() {
			line += fmt.Sprintf("; faults: %d retried, %d corrupt chunks, %d redos", f.DiskRetries, f.CorruptChunks, f.BatchRedos)
		}
		fmt.Println(line)
		r.res.Close()
	}
	st := engine.Stats()
	budget := "unlimited"
	if st.TotalMemory > 0 {
		budget = fmt.Sprintf("%d MiB", st.TotalMemory>>20)
	}
	// One line of Engine.Stats parity with colsort-server's /metrics: the
	// admission picture (who ran, who queued, how much of the budget the
	// peak lease took — the numbers that explain an admission stall) plus
	// the cumulative sim/fault counters of the completed jobs.
	line := fmt.Sprintf("engine: %d completed, %d failed, %d queued at exit in %v; peak lease %d MiB of %s; pool holds %d buffers (%d MiB); disk %d MiB read / %d MiB written, net %d MiB, %d MiB moved",
		st.CompletedJobs, st.FailedJobs, st.QueuedJobs, wall.Round(time.Millisecond),
		st.PeakLeasedBytes>>20, budget, st.PoolFreeBuffers, st.PoolFreeBytes>>20,
		st.Counters.DiskReadBytes>>20, st.Counters.DiskWriteBytes>>20,
		st.Counters.NetBytes>>20, st.Counters.MovedBytes>>20)
	if f := st.Faults; f.Any() {
		line += fmt.Sprintf("; faults: %d retried (%d gave up), %d corrupt chunks (%d rereads), %d redos",
			f.DiskRetries, f.DiskGiveUps, f.CorruptChunks, f.ChunkRereads, f.BatchRedos)
	}
	fmt.Println(line)
	if failed {
		os.Exit(1)
	}
}

// planFor reports the plan the equivalent Sort call would execute,
// including the hierarchical runs-plus-merge plan for inputs beyond the
// single-run bound or a -max-memory-mib cap.
func planFor(engine *colsort.Engine, alg colsort.Algorithm, group int, inPath string, n int64, z int, maxMem int64, formation colsort.RunFormation) (interface{ String() string }, error) {
	if alg == colsort.Hybrid {
		if inPath != "" {
			return engine.PlanFile(alg, inPath) // rejects hybrid file sorts, as the run would
		}
		pl, err := engine.PlanHybrid(group, n)
		if err == nil && maxMem > 0 && pl.N*int64(z) > maxMem {
			// Match the run's rejection: hybrid cannot take the
			// hierarchical path a run-size cap requires.
			return nil, fmt.Errorf("-max-memory-mib needs the hierarchical path, which supports only non-hybrid algorithms")
		}
		return pl, err
	}
	var single interface{ String() string }
	var err error
	if inPath != "" {
		info, serr := os.Stat(inPath)
		if serr != nil {
			return nil, serr
		}
		n = info.Size() / int64(z)
		single, err = engine.PlanFile(alg, inPath)
	} else {
		// PlanPadded mirrors the PadAuto decision the run makes, so -plan
		// agrees with the run for non-power-of-two counts too.
		single, err = engine.PlanPadded(alg, n)
	}
	overCap := err == nil && maxMem > 0 // a cap forces runs even when one run would fit
	if err == nil && !overCap {
		return single, nil
	}
	if err != nil && !errors.Is(err, colsort.ErrTooLarge) {
		return nil, err
	}
	runPl, batches, herr := engine.PlanHierarchical(alg, n, maxMem)
	if herr != nil {
		return nil, herr
	}
	if overCap && int64(batches) == 1 {
		return single, nil // the cap admits the whole input in one run
	}
	return hierPlan{runPl: runPl, batches: batches, formation: formation}, nil
}

// hierPlan pretty-prints a hierarchical execution plan. Under replacement
// selection the batch count is a worst-case bound (maximal runs are at
// least as long as fixed batches), so it renders as "≤ N runs"; fixed
// batching executes exactly N.
type hierPlan struct {
	runPl     interface{ String() string }
	batches   int
	formation colsort.RunFormation
}

func (h hierPlan) String() string {
	if h.formation == colsort.FixedBatch {
		return fmt.Sprintf("hierarchical: %d fixed-batch runs + k-way merge, each run [%s]", h.batches, h.runPl)
	}
	return fmt.Sprintf("hierarchical: ≤%d replacement-selection runs + k-way merge, each formed over [%s]", h.batches, h.runPl)
}

func report(res *colsort.Result, wall time.Duration) {
	tot := res.TotalCounters()
	fmt.Printf("wall clock: %v (simulated cluster in one process)\n", wall.Round(time.Millisecond))
	if m := res.Merge; m != nil {
		runs := fmt.Sprintf("%d runs × ≤%d records", m.Runs, m.RunRecords)
		if m.Formation != "fixed-batch" && m.MaxRunRecords > 0 {
			runs = fmt.Sprintf("%d %s runs of %d–%d records (%d descending)",
				m.Runs, m.Formation, m.MinRunRecords, m.MaxRunRecords, m.DownRuns)
		}
		fmt.Printf("hierarchical: %s, %d merge level(s) at fan-in %d; merge moved %d MiB of run reads, %d MiB of spill+sink writes\n",
			runs, m.Levels, m.FanIn, m.BytesRead>>20, m.BytesWritten>>20)
	}
	fmt.Printf("disk:  %d MiB read, %d MiB written, %d segments\n",
		tot.DiskReadBytes>>20, tot.DiskWriteBytes>>20, tot.DiskReadOps+tot.DiskWriteOps)
	fmt.Printf("net:   %d MiB in %d messages (+%d self-messages)\n",
		tot.NetBytes>>20, tot.NetMsgs, tot.LocalMsgs)
	fmt.Printf("cpu:   %d M compare-units, %d MiB moved\n",
		tot.CompareUnits>>20, tot.MovedBytes>>20)
	if f := res.Faults; f.Any() {
		fmt.Printf("faults: %d transient retried (%d gave up), %d corrupt chunks (%d healed by reread), %d batch redos\n",
			f.DiskRetries, f.DiskGiveUps, f.CorruptChunks, f.ChunkRereads, f.BatchRedos)
	}

	est := res.EstimateBeowulf()
	fmt.Println("estimated on the paper's Beowulf testbed:")
	for k, e := range est.Passes {
		fmt.Printf("  pass %d: %v\n", k+1, e)
	}
	fmt.Printf("  total: %.1fs\n", est.Total)
}

func algByName(name string) (colsort.Algorithm, bool) {
	for _, a := range []colsort.Algorithm{
		colsort.Threaded, colsort.Threaded4, colsort.Subblock, colsort.MColumn,
		colsort.Combined, colsort.Hybrid, colsort.BaselineIO3, colsort.BaselineIO4,
	} {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}
