// Command colsort runs one out-of-core sort end to end on the simulated
// cluster: plan, ingest (a generated workload or a real file), sort,
// verify, and report operation counts plus the Beowulf-2003 time estimate.
// It is a thin shell over the v1 library call
// Sorter.Sort(ctx, src, dst, opts...).
//
// Examples:
//
//	colsort -alg subblock -n 1048576 -p 8 -mem 16384
//	colsort -alg m-columnsort -n 262144 -p 4 -mem 2048 -gen zipf -dir /tmp/colsort
//
// With -in/-out it sorts a real on-disk file of z-byte records into a
// sorted output file (any record count; the run is padded internally):
//
//	colsort -alg threaded -in input.dat -out sorted.dat -p 4 -mem 4096 \
//	        -dir /tmp/colsort -async
//
// -key-offset/-key-width/-desc sort on a caller-defined key field instead
// of the first 8 bytes (weblog timestamps, seismic amplitudes). -progress
// prints pass/round completion as the sort runs. Ctrl-C cancels the run,
// tearing down all processors and scratch files before exiting.
//
// -async enables the prefetch/write-behind disk layer (-readahead and
// -writebehind size its per-disk queues); -disk-seek-us/-disk-mbps impose a
// physical-disk service-time model so the overlap is visible on
// page-cached hardware.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"colsort"
	"colsort/internal/record"
)

func main() {
	algName := flag.String("alg", "threaded", "algorithm: threaded, threaded-4pass, subblock, m-columnsort, combined, hybrid, baseline-io-3pass, baseline-io-4pass")
	n := flag.Int64("n", 1<<20, "records to sort (power of 2); ignored with -in")
	p := flag.Int("p", 4, "processors (power of 2)")
	d := flag.Int("d", 0, "disks (default P)")
	mem := flag.Int("mem", 1<<14, "records of column buffer per processor")
	z := flag.Int("z", 64, "record size in bytes")
	group := flag.Int("g", 2, "group size for -alg hybrid (2 ≤ g ≤ P/2)")
	gen := flag.String("gen", "uniform", "input distribution: "+strings.Join(record.Names(), ", "))
	seed := flag.Uint64("seed", 1, "generator seed")
	dir := flag.String("dir", "", "back disks with files under this directory (default: in memory)")
	async := flag.Bool("async", false, "asynchronous disk layer: prefetch read-ahead + write-behind")
	readahead := flag.Int("readahead", 0, "async: max prefetched extents per disk (0: default)")
	writebehind := flag.Int("writebehind", 0, "async: max buffered writes per disk (0: default)")
	diskSeekUS := flag.Int("disk-seek-us", 0, "model: microseconds per discontiguous disk access (0: off)")
	diskMBps := flag.Int("disk-mbps", 0, "model: sustained disk bandwidth in MiB/s (0: off)")
	inPath := flag.String("in", "", "sort the records of this file (any count ≥ 1) instead of generating input")
	outPath := flag.String("out", "", "write the sorted records to this file (requires -in)")
	keyOffset := flag.Int("key-offset", 0, "byte offset of the sort key field within each record")
	keyWidth := flag.Int("key-width", 0, "byte width of the sort key field (0: 8)")
	desc := flag.Bool("desc", false, "sort the key field in descending order")
	progress := flag.Bool("progress", false, "print pass/round completion as the sort runs")
	planOnly := flag.Bool("plan", false, "print the plan and exit")
	flag.Parse()

	alg, ok := algByName(*algName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algName)
		os.Exit(2)
	}
	if (*inPath == "") != (*outPath == "") {
		fmt.Fprintln(os.Stderr, "-in and -out must be used together")
		os.Exit(2)
	}
	g, ok := record.ByName(*gen, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown generator %q (have: %s)\n", *gen, strings.Join(record.Names(), ", "))
		os.Exit(2)
	}

	sorter, err := colsort.New(colsort.Config{
		Procs: *p, Disks: *d, MemPerProc: *mem, RecordSize: *z, Dir: *dir,
		Async: *async, ReadAhead: *readahead, WriteBehind: *writebehind,
		DiskSeekMicros: *diskSeekUS, DiskMBps: *diskMBps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Ctrl-C cancels the context; the library tears down the cluster, the
	// async disk workers and the scratch files before Sort returns.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opts := []colsort.Option{colsort.WithAlgorithm(alg)}
	if alg == colsort.Hybrid {
		opts = []colsort.Option{colsort.WithHybridGroup(*group)}
	}
	if *keyOffset != 0 || *keyWidth != 0 || *desc {
		ks := colsort.KeySpec{Offset: *keyOffset, Width: *keyWidth}
		if *desc {
			ks.Order = colsort.Descending
		}
		opts = append(opts, colsort.WithKeySpec(ks))
	}
	if *progress {
		opts = append(opts, colsort.WithProgress(func(ev colsort.Progress) {
			if ev.Round == 0 || ev.Round == ev.Rounds {
				fmt.Fprintf(os.Stderr, "pass %d/%d: %d/%d rounds\n", ev.Pass, ev.Passes, ev.Round, ev.Rounds)
			}
		}))
	}

	if *planOnly {
		pl, err := planFor(sorter, alg, *group, *inPath, *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println("plan:", pl)
		return
	}

	var src colsort.Source
	var dst colsort.Sink
	if *inPath != "" {
		src, dst = colsort.FromFile(*inPath), colsort.ToFile(*outPath)
	} else {
		src = colsort.Generate(g, *n)
		opts = append(opts, colsort.WithPadding(colsort.PadNever))
	}

	start := time.Now()
	res, err := sorter.Sort(ctx, src, dst, opts...)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted: sort cancelled, scratch cleaned up")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer res.Close()
	wall := time.Since(start)

	isBaseline := alg == colsort.BaselineIO3 || alg == colsort.BaselineIO4
	switch {
	case *inPath != "":
		// Sort verified before writing -out.
		fmt.Printf("sorted %d records of %s into %s (plan: %s)\n", res.RealRecords(), *inPath, *outPath, res.Plan.String())
		fmt.Println("verified: output sorted, multiset preserved")
	case !isBaseline:
		if err := res.Verify(); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFICATION FAILED:", err)
			os.Exit(1)
		}
		fmt.Println("plan:", res.Plan.String())
		fmt.Println("verified: output sorted in PDM order, multiset preserved")
	default:
		fmt.Println("plan:", res.Plan.String())
	}
	report(res, wall)
}

// planFor prints the plan the equivalent Sort call would execute.
func planFor(sorter *colsort.Sorter, alg colsort.Algorithm, group int, inPath string, n int64) (interface{ String() string }, error) {
	if inPath != "" {
		return sorter.PlanFile(alg, inPath)
	}
	if alg == colsort.Hybrid {
		return sorter.PlanHybrid(group, n)
	}
	return sorter.Plan(alg, n)
}

func report(res *colsort.Result, wall time.Duration) {
	tot := res.TotalCounters()
	fmt.Printf("wall clock: %v (simulated cluster in one process)\n", wall.Round(time.Millisecond))
	fmt.Printf("disk:  %d MiB read, %d MiB written, %d segments\n",
		tot.DiskReadBytes>>20, tot.DiskWriteBytes>>20, tot.DiskReadOps+tot.DiskWriteOps)
	fmt.Printf("net:   %d MiB in %d messages (+%d self-messages)\n",
		tot.NetBytes>>20, tot.NetMsgs, tot.LocalMsgs)
	fmt.Printf("cpu:   %d M compare-units, %d MiB moved\n",
		tot.CompareUnits>>20, tot.MovedBytes>>20)

	est := res.EstimateBeowulf()
	fmt.Println("estimated on the paper's Beowulf testbed:")
	for k, e := range est.Passes {
		fmt.Printf("  pass %d: %v\n", k+1, e)
	}
	fmt.Printf("  total: %.1fs\n", est.Total)
}

func algByName(name string) (colsort.Algorithm, bool) {
	for _, a := range []colsort.Algorithm{
		colsort.Threaded, colsort.Threaded4, colsort.Subblock, colsort.MColumn,
		colsort.Combined, colsort.Hybrid, colsort.BaselineIO3, colsort.BaselineIO4,
	} {
		if a.String() == name {
			return a, true
		}
	}
	return 0, false
}
