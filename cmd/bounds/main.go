// Command bounds prints the paper's problem-size restrictions and the
// analytic claims built on them (experiments E3, E4, E9, E11):
// restrictions (1)–(3), the Section-6 combined bound, the subblock
// doubling claim, the one-terabyte claim, and the M-columnsort-vs-subblock
// crossover M < 32·P^10.
package main

import (
	"flag"
	"fmt"
	"os"

	"colsort/internal/bounds"
	"colsort/internal/hybrid"
	"colsort/internal/sim"
)

func main() {
	terabyte := flag.Bool("terabyte", false, "reproduce the 1 TB claim of Section 1 (E4)")
	crossover := flag.Bool("crossover", false, "crossover table M < 32·P^10 (E9)")
	combined := flag.Bool("combined", false, "Section-6 combined-algorithm bounds (E11)")
	hybridF := flag.Bool("hybrid", false, "Section-6 hybrid group-size trade-off (E11)")
	z := flag.Int("z", 64, "record size in bytes for byte-denominated rows")
	flag.Parse()

	switch {
	case *terabyte:
		printTerabyte(*z)
	case *crossover:
		printCrossover()
	case *combined:
		printCombined(*z)
	case *hybridF:
		printHybrid(*z)
	default:
		printTable(*z)
	}
}

func printTable(z int) {
	fmt.Println("Problem-size bounds in records (restrictions (1), (2), (3)) and bytes")
	fmt.Printf("%-10s %4s %14s %14s %14s %16s\n", "M/P", "P", "threaded(1)", "subblock(2)", "m-colsort(3)", "subblock gain")
	for _, rows := range [][]bounds.Row{bounds.Table(
		[]int64{1 << 12, 1 << 16, 1 << 19, 1 << 22},
		[]int64{4, 8, 16})} {
		for _, r := range rows {
			fmt.Printf("2^%-8d %4d %14s %14s %14s %15.2fx\n",
				log2(r.MOverP), r.P,
				bounds.HumanBytes(r.Bound1*float64(z)),
				bounds.HumanBytes(r.Bound2*float64(z)),
				bounds.HumanBytes(r.Bound3*float64(z)),
				bounds.SubblockGain(r.MOverP))
		}
	}
	fmt.Println("\nSection 1: for M/P ≥ 2^12 the subblock gain exceeds 2 —")
	fmt.Printf("at M/P = 2^12 it is %.2fx (\"more than double the largest problem size\").\n",
		bounds.SubblockGain(1<<12))
}

func printTerabyte(z int) {
	var p int64 = 16
	var mp int64 = 1 << 19
	m := mp * p
	b := bounds.MaxBytes(bounds.MColumnsort, m, p, z)
	fmt.Printf("Section 1 claim: P=%d processors, M/P=2^19 records, %d-byte records\n", p, z)
	fmt.Printf("M-columnsort bound: N ≤ M^{3/2}/√2 = %.0f records = %s\n",
		bounds.MaxN(bounds.MColumnsort, m, p), bounds.HumanBytes(b))
	fmt.Printf("in-core side condition M/P ≥ 2P²: %v\n", bounds.InCoreOK(mp, p))
	fmt.Printf("threaded bound on the same machine: %s — a %.0fx gap\n",
		bounds.HumanBytes(bounds.MaxBytes(bounds.Threaded, m, p, z)),
		bounds.MaxN(bounds.MColumnsort, m, p)/bounds.MaxN(bounds.Threaded, m, p))
}

func printCrossover() {
	fmt.Println("Section 5: M-columnsort sorts more records than subblock iff M < 32·P^10")
	fmt.Printf("%4s %22s %28s\n", "P", "threshold M (records)", "example at M = 2^23 (8 GiB·64B)")
	for _, p := range []int64{2, 4, 8, 16, 32, 64} {
		thresholdLg := 5 + 10*log2(p)
		winner := "m-columnsort"
		if !bounds.CrossoverFormula(1<<23, p) {
			winner = "subblock"
		}
		fmt.Printf("%4d %19s2^%-3d %28s\n", p, "", thresholdLg, winner)
	}
	fmt.Println("\nFormula cross-check against the raw bounds:")
	for _, p := range []int64{8} {
		for _, m := range []int64{1 << 34, 1<<35 - 1, 1 << 35, 1 << 36} {
			f := bounds.CrossoverFormula(m, p)
			d := bounds.CrossoverDirect(m, p)
			fmt.Printf("  P=%d M=2^%.1f: formula=%v direct=%v\n",
				p, lg(m), f, d)
		}
	}
}

func printCombined(z int) {
	fmt.Println("Section 6 future work: combined subblock + M-columnsort, N ≤ M^{5/3}/4^{2/3}")
	fmt.Printf("%-10s %4s %16s %16s %10s\n", "M/P", "P", "m-colsort(3)", "combined", "gain")
	for _, mp := range []int64{1 << 16, 1 << 19, 1 << 22} {
		for _, p := range []int64{8, 16} {
			m := mp * p
			b3 := bounds.MaxN(bounds.MColumnsort, m, p)
			bc := bounds.MaxN(bounds.Combined, m, p)
			fmt.Printf("2^%-8d %4d %16s %16s %9.2fx\n",
				log2(mp), p,
				bounds.HumanBytes(b3*float64(z)), bounds.HumanBytes(bc*float64(z)), bc/b3)
		}
	}
	fmt.Println("\nThe combined algorithm (implemented in this repository as")
	fmt.Println("colsort.Combined) trades one extra pass for the larger bound.")
}

func printHybrid(z int) {
	fmt.Println("Section 6 future work: hybrid group columnsort, r = g·(M/P)")
	fmt.Println("(g = 1 is threaded columnsort, g = P is M-columnsort)")
	c := hybrid.Config{P: 16, Mem: 1 << 19, Z: z}
	pts, err := c.Sweep()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cm := sim.Beowulf2003()
	fmt.Printf("%4s %16s %18s %20s %14s\n", "g", "bound N", "sort net B/proc", "scatter net B/proc", "est comm s")
	for _, pt := range pts {
		fmt.Printf("%4d %16s %18d %20d %14.2f\n", pt.G,
			bounds.HumanBytes(pt.MaxN*float64(z)),
			pt.SortNetBytesPerPass, pt.ScatterNetBytesPerPass,
			pt.EstimateSortSeconds(cm))
	}
	for _, n := range []int64{1 << 28, 1 << 31, 1 << 33} {
		g, err := c.ChooseGroup(n)
		if err != nil {
			fmt.Printf("N = %s: %v\n", bounds.HumanBytes(float64(n)*float64(z)), err)
			continue
		}
		fmt.Printf("N = %s → smallest eligible group size g = %d\n",
			bounds.HumanBytes(float64(n)*float64(z)), g)
	}
	fmt.Println("\nThe bound grows as g^{3/2} while sort-stage communication grows")
	fmt.Println("toward g = P — choose the smallest g that fits the problem.")
}

func log2(x int64) int64 {
	var n int64
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}

func lg(x int64) float64 {
	n := 0.0
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
