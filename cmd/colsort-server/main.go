// Command colsort-server serves the colsort Engine over HTTP: sort over
// the wire. An upload to POST /v1/sort streams through the engine and the
// sorted records stream back in the same request — the v1 Source/Sink
// boundary applied to the network (request body = Source, response body =
// Sink), with no full-input buffering in the HTTP layer.
//
//	colsort-server -listen :8080 -p 4 -mem 16384 -z 64 -dir /tmp/colsort \
//	        -async -jobs 4 -total-memory-mib 256
//
//	# stream-sort a file over the wire (asc on bytes [16,24), descending)
//	curl --data-binary @input.dat -o sorted.dat \
//	  'http://localhost:8080/v1/sort?key-offset=16&key-width=8&order=desc'
//
// With -data DIR, POST /v1/jobs submits asynchronous sorts of files under
// DIR; GET /v1/jobs/{id} reports state and the result summary,
// GET /v1/jobs/{id}/progress pushes batch/pass/merge progress as
// Server-Sent Events, and DELETE /v1/jobs/{id} cancels. GET /metrics
// exposes the engine's stats and the fault/sim counters in Prometheus text
// format; GET /healthz is the load-balancer check.
//
// -jobs bounds the wire jobs in flight (excess submissions get HTTP 429
// with Retry-After); -total-memory-mib is the engine's admission budget —
// jobs admitted by the server but over the remaining budget queue FIFO
// inside the engine, exactly as library callers do.
//
// SIGTERM/SIGINT drain: /healthz flips to 503, new submissions are
// refused, in-flight sorts finish (bounded by -drain-timeout, then
// cancelled), the engine closes, and the listener shuts down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"colsort"
	"colsort/internal/server"
)

func main() {
	listen := flag.String("listen", ":8080", "address to serve HTTP on")
	p := flag.Int("p", 4, "processors (power of 2)")
	d := flag.Int("d", 0, "disks (default P)")
	mem := flag.Int("mem", 1<<14, "records of column buffer per processor")
	z := flag.Int("z", 64, "record size in bytes")
	dir := flag.String("dir", "", "back disks with files under this directory (default: in memory)")
	async := flag.Bool("async", false, "asynchronous disk layer: prefetch read-ahead + write-behind")
	readahead := flag.Int("readahead", 0, "async: max prefetched extents per disk (0: default)")
	writebehind := flag.Int("writebehind", 0, "async: max buffered writes per disk (0: default)")
	diskSeekUS := flag.Int("disk-seek-us", 0, "model: microseconds per discontiguous disk access (0: off)")
	diskMBps := flag.Int("disk-mbps", 0, "model: sustained disk bandwidth in MiB/s (0: off)")
	jobs := flag.Int("jobs", 4, "wire jobs in flight at once; excess submissions get HTTP 429 (0: unbounded)")
	totalMemMiB := flag.Int64("total-memory-mib", 0, "engine-wide record-buffer budget in MiB; admitted jobs over the remaining budget queue FIFO (0: unlimited)")
	dataDir := flag.String("data", "", "root directory for server-side file jobs via POST /v1/jobs (empty: endpoint disabled)")
	retainJobs := flag.Int("retain-jobs", 0, "finished jobs kept for GET /v1/jobs/{id} (0: default 256)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a shutdown waits for in-flight jobs before cancelling them")
	writeTimeout := flag.Duration("write-timeout", time.Minute, "per-write deadline on streaming responses and SSE pushes (0: none)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "keep-alive idle connection timeout (0: none)")
	flag.Parse()

	eng, err := colsort.NewEngine(colsort.EngineConfig{
		Config: colsort.Config{
			Procs: *p, Disks: *d, MemPerProc: *mem, RecordSize: *z, Dir: *dir,
			Async: *async, ReadAhead: *readahead, WriteBehind: *writebehind,
			DiskSeekMicros: *diskSeekUS, DiskMBps: *diskMBps,
		},
		TotalMemory: *totalMemMiB << 20,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv, err := server.New(eng, server.Config{
		MaxJobs:      *jobs,
		DataDir:      *dataDir,
		RetainJobs:   *retainJobs,
		WriteTimeout: *writeTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		eng.Close()
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "colsort-server: serving on %s (p=%d mem=%d z=%d, %d wire jobs)\n",
			*listen, *p, *mem, *z, *jobs)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// The listener failed outright (bad address, port in use).
		fmt.Fprintln(os.Stderr, err)
		eng.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain: stop admitting first (healthz 503 pulls us out of rotation),
	// then let the in-flight streaming handlers finish under the deadline,
	// then the background file jobs and the engine itself.
	fmt.Fprintln(os.Stderr, "colsort-server: draining...")
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "colsort-server: shutdown:", err)
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "colsort-server: drain:", err)
	}
	st := eng.Stats()
	fmt.Fprintf(os.Stderr, "colsort-server: drained; served %d jobs (%d failed), peak lease %d MiB\n",
		st.CompletedJobs, st.FailedJobs, st.PeakLeasedBytes>>20)
}
