// Command subcomm demonstrates Section 3's communication properties of the
// subblock pass (experiments E2 and E5): each processor sends ⌈P/√s⌉
// messages per round, none of which cross the network when √s ≥ P, and the
// Figure-1 bit permutation equals the arithmetic subblock permutation.
//
// The "measured" column comes from actually running subblock columnsort on
// the simulated cluster and counting messages.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"colsort/internal/bitperm"
	"colsort/internal/core"
	"colsort/internal/pdm"
	"colsort/internal/record"
)

func main() {
	showBits := flag.Bool("show-bits", false, "print the Figure-1 bit permutation for one shape")
	r := flag.Int("r", 256, "records per column for -show-bits")
	s := flag.Int("s", 16, "columns for -show-bits (power of 4)")
	flag.Parse()

	if *showBits {
		printBitForm(*r, *s)
		return
	}
	printCommTable()
}

func printCommTable() {
	fmt.Println("Subblock-pass communication (Section 3, properties 1-2)")
	fmt.Printf("%4s %6s %6s | %18s %18s %12s\n", "P", "s", "√s", "msgs/round (pred)", "msgs/round (meas)", "net bytes")
	for _, s := range []int{16, 64, 256} {
		r := 4 * s * sqrt(s) // minimum legal height, kept small
		if r < 2*s*s {
			// Also need enough height for the surrounding threaded passes'
			// height restriction? No — only the subblock restriction
			// applies; but s | r must hold.
			r = lcmPow2(r, s)
		}
		for p := 2; p <= 16 && p <= s; p *= 2 {
			pred := bitperm.MessagesPerRound(p, s)
			meas, netBytes, err := measure(p, r, s)
			if err != nil {
				fmt.Fprintf(os.Stderr, "P=%d s=%d: %v\n", p, s, err)
				continue
			}
			noNet := ""
			if bitperm.NoNetworkComm(p, s) {
				noNet = "  (√s ≥ P: no network traffic)"
			}
			fmt.Printf("%4d %6d %6d | %18d %18d %12d%s\n",
				p, s, sqrt(s), pred, meas, netBytes, noNet)
		}
	}
	fmt.Println("\nProperty 3 (optimality): any permutation with the subblock property")
	fmt.Println("must send at least ⌈P/√s⌉ messages per round; the measured counts")
	fmt.Println("match the lower bound exactly.")
}

// measure runs subblock columnsort and returns the measured messages per
// processor per round of the subblock pass, plus its total network bytes.
func measure(p, r, s int) (int, int64, error) {
	n := int64(r) * int64(s)
	pl, err := core.NewPlan(core.Subblock, n, p, p, r, 16)
	if err != nil {
		return 0, 0, err
	}
	m := pdm.Machine{P: p, D: p}
	input, err := pl.NewInput(m, record.Uniform{Seed: 1})
	if err != nil {
		return 0, 0, err
	}
	defer input.Close()
	res, err := core.Run(context.Background(), pl, m, input, core.Hooks{})
	if err != nil {
		return 0, 0, err
	}
	defer res.Output.Close()
	var msgs, netBytes int64
	for _, c := range res.PassCounters[1] { // pass 2 is the subblock pass
		msgs += c.NetMsgs + c.LocalMsgs
		netBytes += c.NetBytes
	}
	rounds := int64(s / p)
	return int(msgs / (rounds * int64(p))), netBytes, nil
}

func printBitForm(r, s int) {
	sb, err := bitperm.NewSubblock(r, s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bp := sb.BitForm()
	lgR := bitperm.Log2(r)
	fmt.Printf("Subblock permutation for r=%d, s=%d (√s=%d) as a bit permutation\n", r, s, sb.SqrtS())
	fmt.Println("combined address a = j·r + i; target bit ← source bit:")
	for t := 0; t < bp.Bits(); t++ {
		src := -1
		for b := 0; b < bp.Bits(); b++ {
			if bp.Apply(1<<b) == 1<<t {
				src = b
				break
			}
		}
		field := func(b int) string {
			lgQ := bitperm.Log2(sb.SqrtS())
			switch {
			case b < lgQ:
				return "x (row-in-subblock)"
			case b < lgR:
				return "w (subblock row)"
			case b < lgR+lgQ:
				return "z (col-in-subblock)"
			default:
				return "y (subblock col)"
			}
		}
		fmt.Printf("  a'[%2d] ← a[%2d]   %s\n", t, src, field(src))
	}
	fmt.Println("\nThe target column bits (x, z) come entirely from the bits that locate")
	fmt.Println("an element WITHIN its √s×√s subblock, which is what guarantees the")
	fmt.Println("subblock property (all s entries of a subblock reach all s columns).")
}

func sqrt(s int) int { return bitperm.Sqrt(s) }

func lcmPow2(a, b int) int {
	for a%b != 0 {
		a *= 2
	}
	return a
}
