// Command incore compares the three distributed in-core sorts of Section 4
// (experiment E6): in-core columnsort, bitonic sort, and radix sort, at
// sort-stage-representative sizes. It reports wall-clock time on the
// goroutine cluster and the per-processor network traffic, whose ordering
// is the paper's reason for choosing in-core columnsort.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"colsort/internal/cluster"
	"colsort/internal/incore"
	"colsort/internal/record"
	"colsort/internal/sim"
)

func main() {
	p := flag.Int("p", 8, "processors (power of 2)")
	n := flag.Int("n", 1<<16, "records per processor")
	z := flag.Int("z", 64, "record size in bytes")
	reps := flag.Int("reps", 3, "repetitions (best time reported)")
	flag.Parse()

	fmt.Printf("Distributed in-core sorts: P=%d, n=%d records/processor, %d-byte records\n", *p, *n, *z)
	fmt.Printf("%-20s %12s %16s %14s\n", "algorithm", "best time", "net bytes/proc", "msgs/proc")

	sorters := []incore.Sorter{incore.Columnsort{}, incore.Radix{}, incore.Bitonic{}}
	for _, s := range sorters {
		best := time.Duration(1<<62 - 1)
		var netBytes, msgs int64
		for rep := 0; rep < *reps; rep++ {
			cnts := make([]sim.Counters, *p)
			start := time.Now()
			err := cluster.Run(*p, func(pr *cluster.Proc) error {
				local := record.Make(*n, *z)
				record.Fill(local, record.Uniform{Seed: uint64(rep)}, int64(pr.Rank())*int64(*n))
				out, err := s.Sort(pr, &cnts[pr.Rank()], 0, local)
				if err != nil {
					return err
				}
				if !out.IsSorted() {
					return fmt.Errorf("rank %d block unsorted", pr.Rank())
				}
				return nil
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", s.Name(), err)
				os.Exit(1)
			}
			if el := time.Since(start); el < best {
				best = el
			}
			netBytes, msgs = 0, 0
			for _, c := range cnts {
				if c.NetBytes > netBytes {
					netBytes = c.NetBytes
				}
				if c.NetMsgs > msgs {
					msgs = c.NetMsgs
				}
			}
		}
		fmt.Printf("%-20s %12v %16d %14d\n", s.Name(), best.Round(time.Millisecond), netBytes, msgs)
	}
	fmt.Println("\nSection 4: in-core columnsort moves the least data (chosen for the")
	fmt.Println("sort stage of M-columnsort); radix is competitive but key-format-")
	fmt.Println("dependent; bitonic's lg²P exchanges make it consistently slowest.")
}
