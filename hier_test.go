package colsort

// Tests of the hierarchical (above-bound) Sort path: run formation on a
// persistent fabric, spilled sorted runs, and the streaming k-way merge.
//
// The acceptance bar (ISSUE 4): a file-backed input at least 3× larger than
// the largest single-run bound sorts via Sorter.Sort with output
// byte-identical to a reference sort, under ascending AND descending
// KeySpecs, and a mid-merge cancel unwinds leak-free.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"colsort/internal/record"
	"colsort/internal/testutil"
)

// refSortBytes returns the byte-identical expected output of sorting raw
// under ks: the engine's total order is plain bytes.Compare over
// codec-normalized records (field order first, deterministic tie-break on
// the remaining bytes), decoded back to the caller's layout.
func refSortBytes(t testing.TB, raw []byte, z int, ks KeySpec) []byte {
	t.Helper()
	codec, err := ks.Compile(z)
	if err != nil {
		t.Fatal(err)
	}
	enc := record.NewSlice(append([]byte(nil), raw...), z)
	codec.Encode(enc)
	n := enc.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return bytes.Compare(enc.Record(idx[a]), enc.Record(idx[b])) < 0
	})
	out := record.Make(n, z)
	for i, j := range idx {
		out.CopyRecord(i, enc, j)
	}
	codec.Decode(out)
	return out.Data
}

// genRaw builds n records of z bytes from the given generator.
func genRaw(n, z int, g record.Generator) []byte {
	raw := make([]byte, n*z)
	for i := 0; i < n; i++ {
		g.Gen(raw[i*z:(i+1)*z], int64(i))
	}
	return raw
}

// TestHierarchicalFileBacked3x is the acceptance test: a file-backed input
// more than 3× the largest single-run bound, sorted through FromFile/ToFile
// under ascending and descending KeySpecs, byte-identical to the reference.
func TestHierarchicalFileBacked3x(t *testing.T) {
	const p, mem, z = 4, 256, 32
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := int(3*bound) + 123 // >3× the bound, non-power-of-two tail
	raw := genRaw(n, z, record.Uniform{Seed: 21})

	for _, order := range []Order{Ascending, Descending} {
		for _, form := range []RunFormation{FixedBatch, ReplacementSelect} {
			order, form := order, form
			t.Run(fmt.Sprintf("%v/%v", order, form), func(t *testing.T) {
				dir := t.TempDir()
				testutil.CheckLeaks(t, filepath.Join(dir, "scratch"))
				in := filepath.Join(dir, "in.dat")
				out := filepath.Join(dir, "out.dat")
				if err := os.WriteFile(in, raw, 0o644); err != nil {
					t.Fatal(err)
				}
				fs, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z,
					Dir: filepath.Join(dir, "scratch"), Async: true})
				if err != nil {
					t.Fatal(err)
				}
				ks := KeySpec{Offset: 8, Width: 8, Order: order}
				res, err := fs.Sort(context.Background(), FromFile(in), ToFile(out),
					WithAlgorithm(Threaded), WithKeySpec(ks), WithRunFormation(form))
				if err != nil {
					t.Fatal(err)
				}
				defer res.Close()
				if res.Merge == nil {
					t.Fatal("above-bound sort did not take the hierarchical path")
				}
				if res.Merge.Formation != form.String() {
					t.Errorf("Merge.Formation = %q, want %q", res.Merge.Formation, form)
				}
				// Fixed batches split at exactly RunRecords; replacement
				// selection forms maximal runs, so the batch arithmetic is only
				// an upper bound for it.
				wantRuns := (int64(n) + res.Merge.RunRecords - 1) / res.Merge.RunRecords
				if form == FixedBatch && int64(res.Merge.Runs) != wantRuns {
					t.Errorf("formed %d runs, want %d (run size %d)", res.Merge.Runs, wantRuns, res.Merge.RunRecords)
				}
				if form == ReplacementSelect && int64(res.Merge.Runs) > wantRuns {
					t.Errorf("replacement selection formed %d runs, more than the fixed-batch bound %d", res.Merge.Runs, wantRuns)
				}
				if res.RealRecords() != int64(n) {
					t.Errorf("RealRecords = %d, want %d", res.RealRecords(), n)
				}
				got, err := os.ReadFile(out)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, refSortBytes(t, raw, z, ks)) {
					t.Error("hierarchical output is not byte-identical to the reference sort")
				}
			})
		}
	}
}

// TestHierarchicalCancelMidMerge cancels during the k-way merge phase (a
// merge progress event proves the merge is live): the sort must unwind with
// context.Canceled, no goroutine leaks, and no scratch or spill files.
func TestHierarchicalCancelMidMerge(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, dir)
	const p, mem, z = 4, 256, 32
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z, Dir: dir, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := 4 * bound
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	sawMerge := false
	res, err := s.Sort(ctx, Generate(record.Uniform{Seed: 5}, n), Discard(),
		WithAlgorithm(Threaded),
		WithProgress(func(ev Progress) {
			if ev.Pass == 0 && ev.MergedRecords > 0 { // the k-way merge is running
				sawMerge = true
				once.Do(cancel)
			}
		}))
	if err == nil {
		res.Close()
		t.Fatal("cancelled hierarchical sort returned no error")
	}
	if !sawMerge {
		t.Fatal("no merge progress event observed before the failure")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}

	// The sorter remains usable after the cancelled hierarchical run.
	var out bytes.Buffer
	ok, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 6}, 2*bound), ToWriter(&out))
	if err != nil {
		t.Fatalf("Sort after cancel: %v", err)
	}
	ok.Close()
}

// TestHierarchicalFanInLevels forces a multi-level merge tree (fan-in 2
// over 6+ runs) and checks the output still matches the reference exactly.
func TestHierarchicalFanInLevels(t *testing.T) {
	testutil.CheckGoroutines(t)
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := int(6 * bound)
	raw := genRaw(n, z, record.Zipf{Seed: 8})
	var out bytes.Buffer
	res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
		WithAlgorithm(Threaded), WithMergeFanIn(2), WithRunFormation(FixedBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Merge.Runs != 6 {
		t.Errorf("formed %d runs, want 6", res.Merge.Runs)
	}
	if res.Merge.Levels < 3 {
		t.Errorf("merge tree has %d levels, want ≥ 3 with fan-in 2 over 6 runs", res.Merge.Levels)
	}
	if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, z, KeySpec{})) {
		t.Error("multi-level merge output differs from the reference sort")
	}
}

// TestWithMaxMemoryForcesRuns caps the run size below an otherwise
// plannable n: the sort must take the hierarchical path and still produce
// the reference output.
func TestWithMaxMemoryForcesRuns(t *testing.T) {
	testutil.CheckGoroutines(t)
	const p, mem, z = 2, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2048 // within the threaded bound for this config
	if _, err := s.Plan(Threaded, n); err != nil {
		t.Fatalf("n=%d should be single-run plannable: %v", n, err)
	}
	raw := genRaw(n, z, record.Dup{Seed: 4})
	want := refSortBytes(t, raw, z, KeySpec{})
	for _, form := range []RunFormation{FixedBatch, ReplacementSelect} {
		var out bytes.Buffer
		res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
			WithAlgorithm(Threaded), WithMaxMemory(int64(n/4)*z), WithRunFormation(form))
		if err != nil {
			t.Fatal(err)
		}
		if res.Merge == nil {
			t.Fatalf("%v: WithMaxMemory did not force run formation", form)
		}
		if form == FixedBatch && res.Merge.Runs != 4 {
			t.Fatalf("%v: formed %d runs, want 4: %+v", form, res.Merge.Runs, res.Merge)
		}
		if form == ReplacementSelect && (res.Merge.Runs < 1 || res.Merge.Runs > 4) {
			t.Fatalf("%v: formed %d runs, want 1..4: %+v", form, res.Merge.Runs, res.Merge)
		}
		if !bytes.Equal(out.Bytes(), want) {
			t.Errorf("%v: memory-capped output differs from the reference sort", form)
		}
		res.Close()
	}
}

// TestHierarchicalRequiresSink pins the contract that an above-bound sort
// cannot run with a nil Sink — the merged output exists only as a stream.
func TestHierarchicalRequiresSink(t *testing.T) {
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	n := 3 * s.MaxRecords(Threaded)
	_, err = s.Sort(context.Background(), Generate(record.Uniform{Seed: 1}, n), nil)
	if err == nil {
		t.Fatal("above-bound sort with nil Sink succeeded")
	}
	if !errors.Is(err, ErrSinkRequired) {
		t.Errorf("err = %v, want errors.Is(err, ErrSinkRequired)", err)
	}
	// Legacy callers branch on the sentinel: the nil-Sink failure is still
	// fundamentally "n exceeds the bound" and must keep matching it.
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want errors.Is(err, ErrTooLarge)", err)
	}
}

// TestHierarchicalProgress pins the new progress families: engine events
// tagged with Batch/Batches in order, then merge events with monotone
// MergedRecords ending at n.
func TestHierarchicalProgress(t *testing.T) {
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := 3 * bound
	var batchSeen []int
	var merged []int64
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 2}, n), Discard(),
		WithRunFormation(FixedBatch),
		WithProgress(func(ev Progress) {
			if ev.Pass > 0 {
				if ev.Batches != 3 {
					t.Errorf("engine event with Batches = %d, want 3", ev.Batches)
				}
				if len(batchSeen) == 0 || batchSeen[len(batchSeen)-1] != ev.Batch {
					batchSeen = append(batchSeen, ev.Batch)
				}
			} else {
				if ev.TotalRecords != n {
					t.Errorf("merge event TotalRecords = %d, want %d", ev.TotalRecords, n)
				}
				merged = append(merged, ev.MergedRecords)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if want := []int{1, 2, 3}; len(batchSeen) != 3 || batchSeen[0] != 1 || batchSeen[2] != 3 {
		t.Errorf("batch sequence %v, want %v", batchSeen, want)
	}
	if len(merged) == 0 || merged[len(merged)-1] != n {
		t.Errorf("merge progress %v does not end at %d", merged, n)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i] < merged[i-1] {
			t.Errorf("merge progress not monotone: %v", merged)
		}
	}
}

// TestPlanHierarchical pins the planning API against what Sort actually
// executes: same run plan, same batch count.
func TestPlanHierarchical(t *testing.T) {
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := 3*bound + 7
	runPl, batches, err := s.PlanHierarchical(Threaded, n, 0)
	if err != nil {
		t.Fatal(err)
	}
	if runPl.N != bound {
		t.Errorf("planned run of %d records, want the bound %d", runPl.N, bound)
	}
	if batches != 4 {
		t.Errorf("planned %d batches, want 4", batches)
	}
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 3}, n), Discard(),
		WithRunFormation(FixedBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if int64(res.Merge.Runs) != int64(batches) || res.Merge.RunRecords != runPl.N {
		t.Errorf("Sort executed %d runs × %d, PlanHierarchical said %d × %d",
			res.Merge.Runs, res.Merge.RunRecords, batches, runPl.N)
	}
	// Under the default replacement selection the planned batch count is a
	// worst-case bound, not an exact prediction.
	rs, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 3}, n), Discard())
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if int64(rs.Merge.Runs) > int64(batches) {
		t.Errorf("replacement selection formed %d runs, above the planned bound %d", rs.Merge.Runs, batches)
	}
	// The capped form must agree with WithMaxMemory's batch sizing.
	if _, capped, err := s.PlanHierarchical(Threaded, 2048, 1024*z); err != nil || capped != 2 {
		t.Errorf("capped plan = %d batches (%v), want 2", capped, err)
	}
	if _, _, err := s.PlanHierarchical(Threaded, n, 1); err == nil {
		t.Error("a 1-byte run cap planned successfully")
	}
}

// TestHierarchicalOptionValidation covers the new options' error paths.
func TestHierarchicalOptionValidation(t *testing.T) {
	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	src := Generate(record.Uniform{Seed: 1}, 1024)
	if _, err := s.Sort(context.Background(), src, nil, WithMergeFanIn(1)); err == nil {
		t.Error("WithMergeFanIn(1) accepted")
	}
	if _, err := s.Sort(context.Background(), src, nil, WithMaxMemory(-5)); err == nil {
		t.Error("WithMaxMemory(-5) accepted")
	}
	// A cap too small for even one column must fail with the sentinel.
	if _, err := s.Sort(context.Background(), src, Discard(), WithMaxMemory(16)); !errors.Is(err, ErrMemoryTooSmall) {
		t.Errorf("tiny cap error = %v, want errors.Is(err, ErrMemoryTooSmall)", err)
	}
}

// TestReplacementSelectFewerRuns is the run-length acceptance test: on
// uniform random input well above the bound, replacement selection must form
// at most 0.6× the runs of fixed batching (theory says ~0.5×), with output
// byte-identical between the two modes.
func TestReplacementSelectFewerRuns(t *testing.T) {
	testutil.CheckGoroutines(t)
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := int(16*bound) + 123
	raw := genRaw(n, z, record.Uniform{Seed: 17})
	run := func(form RunFormation) (*MergeStats, []byte) {
		var out bytes.Buffer
		res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
			WithAlgorithm(Threaded), WithRunFormation(form))
		if err != nil {
			t.Fatalf("%v: %v", form, err)
		}
		defer res.Close()
		return res.Merge, out.Bytes()
	}
	fb, fbOut := run(FixedBatch)
	rs, rsOut := run(ReplacementSelect)
	if !bytes.Equal(fbOut, rsOut) {
		t.Error("the two formation modes produced different output bytes")
	}
	if rs.Runs*10 > fb.Runs*6 {
		t.Errorf("replacement selection formed %d runs vs %d fixed batches; want ≤ 0.6×", rs.Runs, fb.Runs)
	}
	if rs.MaxRunRecords <= rs.RunRecords {
		t.Errorf("longest run is %d records, no longer than the %d-record working set", rs.MaxRunRecords, rs.RunRecords)
	}
	if rs.MinRunRecords < 1 || rs.MinRunRecords > rs.MaxRunRecords {
		t.Errorf("run-length stats inconsistent: min %d, max %d", rs.MinRunRecords, rs.MaxRunRecords)
	}
}

// TestReplacementSelectNearlySorted pins the production win: inputs that are
// already nearly sorted — ascending or descending — collapse to at most two
// runs regardless of how far above the bound they are.
func TestReplacementSelectNearlySorted(t *testing.T) {
	testutil.CheckGoroutines(t)
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := int(6 * bound)
	cases := []struct {
		name string
		gen  record.Generator
		down bool
	}{
		{"nearly-sorted-asc", record.NearlySorted{Seed: 9, Window: 64}, false},
		{"nearly-sorted-desc", record.NearlyReverse{Seed: 9, Window: 64}, true},
		{"k-disordered", record.Disordered{Seed: 9, K: 32}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := genRaw(n, z, tc.gen)
			var out bytes.Buffer
			res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
				WithAlgorithm(Threaded))
			if err != nil {
				t.Fatal(err)
			}
			defer res.Close()
			if res.Merge.Runs > 2 {
				t.Errorf("%s input formed %d runs, want ≤ 2", tc.name, res.Merge.Runs)
			}
			if tc.down && res.Merge.DownRuns < 1 {
				t.Errorf("descending input formed no descending runs: %+v", res.Merge)
			}
			if !bytes.Equal(out.Bytes(), refSortBytes(t, raw, z, KeySpec{})) {
				t.Error("output differs from the reference sort")
			}
		})
	}
}

// TestReplacementSelectProgress pins the formation-phase progress family:
// events tagged with Batch (the run index) and FormedRecords climbing to n,
// followed by merge events with monotone MergedRecords.
func TestReplacementSelectProgress(t *testing.T) {
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := 3 * bound
	var formed []int64
	var runIdx []int
	var merged []int64
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 2}, n), Discard(),
		WithProgress(func(ev Progress) {
			switch {
			case ev.FormedRecords > 0:
				if ev.TotalRecords != n {
					t.Errorf("formation event TotalRecords = %d, want %d", ev.TotalRecords, n)
				}
				formed = append(formed, ev.FormedRecords)
				if len(runIdx) == 0 || runIdx[len(runIdx)-1] != ev.Batch {
					runIdx = append(runIdx, ev.Batch)
				}
			case ev.MergedRecords > 0:
				merged = append(merged, ev.MergedRecords)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if len(formed) == 0 || formed[len(formed)-1] != n {
		t.Errorf("formation progress %v does not end at %d", formed, n)
	}
	for i := 1; i < len(formed); i++ {
		if formed[i] <= formed[i-1] {
			t.Errorf("formation progress not strictly increasing: %v", formed)
		}
	}
	for i, r := range runIdx {
		if r != i+1 {
			t.Errorf("run indices %v are not 1..%d", runIdx, len(runIdx))
			break
		}
	}
	if len(runIdx) != res.Merge.Runs {
		t.Errorf("saw %d distinct run indices, Merge.Runs = %d", len(runIdx), res.Merge.Runs)
	}
	if len(merged) == 0 || merged[len(merged)-1] != n {
		t.Errorf("merge progress %v does not end at %d", merged, n)
	}
}

// TestMergeProgressMonotoneMultiLevel pins the cumulative merge progress
// across a multi-level tree: one nondecreasing MergedRecords sequence with a
// constant TotalRecords covering every intermediate merge plus the final one.
func TestMergeProgressMonotoneMultiLevel(t *testing.T) {
	testutil.CheckGoroutines(t)
	const p, mem, z = 4, 256, 16
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	bound := s.MaxRecords(Threaded)
	n := 8 * bound
	var merged []int64
	var total int64
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 11}, n), Discard(),
		WithAlgorithm(Threaded), WithMergeFanIn(2), WithRunFormation(FixedBatch),
		WithProgress(func(ev Progress) {
			if ev.Pass == 0 && ev.MergedRecords > 0 {
				if total == 0 {
					total = ev.TotalRecords
				} else if ev.TotalRecords != total {
					t.Errorf("merge TotalRecords changed mid-stream: %d then %d", total, ev.TotalRecords)
				}
				merged = append(merged, ev.MergedRecords)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Merge.Levels < 2 {
		t.Fatalf("merge tree has %d levels, want ≥ 2 (the test needs intermediate merges)", res.Merge.Levels)
	}
	// The cumulative total covers intermediate merge output plus the final
	// merge's n records — strictly more than n with ≥ 2 levels.
	if total <= n {
		t.Errorf("cumulative merge total = %d, want > %d with intermediate levels", total, n)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i] < merged[i-1] {
			t.Fatalf("merge progress not monotone at %d: %d then %d", i, merged[i-1], merged[i])
		}
	}
	if len(merged) == 0 || merged[len(merged)-1] != total {
		t.Errorf("merge progress ends at %d, want the advertised total %d", merged[len(merged)-1], total)
	}
}
