package colsort

// Tests of the engine: concurrent jobs sharing one machine, admission
// control against TotalMemory, per-job fault/scratch isolation, and the
// Config-vs-Option precedence rule.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// TestConcurrentEngineStress is the tentpole acceptance test: N concurrent
// file-backed sorts, each 3× the single-run bound (so every job takes the
// hierarchical path and spills runs into the SHARED scratch directory),
// each with a distinct KeySpec, each byte-identical to its solo reference,
// with per-job scratch asserted clean the moment each job finishes and the
// engine's peak lease bounded by TotalMemory.
func TestConcurrentEngineStress(t *testing.T) {
	const jobs, p, mem, z = 4, 2, 256, 32
	dir := t.TempDir()
	scratch := filepath.Join(dir, "scratch")
	testutil.CheckLeaks(t, scratch)

	base := Config{Procs: p, MemPerProc: mem, RecordSize: z, Async: true}
	probe, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	bound := probe.MaxRecords(Threaded)
	n := 3 * bound
	ask := bound * z // the default hierarchical ask: one run's record bytes

	cfg := base
	cfg.Dir = scratch
	e, err := NewEngine(EngineConfig{Config: cfg, TotalMemory: 2 * ask})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	keys := []KeySpec{
		{},
		{Offset: 8, Width: 8, Order: Descending},
		{Offset: 16, Width: 4},
		{Offset: 4, Width: 12},
	}

	// One input file and one solo-reference output per job, produced on a
	// private single-job engine with its own scratch.
	inputs := make([]string, jobs)
	refs := make([][]byte, jobs)
	for i := 0; i < jobs; i++ {
		raw := record.Make(int(n), z)
		record.Fill(raw, record.Uniform{Seed: uint64(100 + i)}, 0)
		inputs[i] = filepath.Join(dir, fmt.Sprintf("in%d.dat", i))
		if err := os.WriteFile(inputs[i], raw.Data, 0o644); err != nil {
			t.Fatal(err)
		}
		soloCfg := base
		soloCfg.Dir = filepath.Join(dir, fmt.Sprintf("solo%d", i))
		solo, err := New(soloCfg)
		if err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(dir, fmt.Sprintf("ref%d.dat", i))
		res, err := solo.Sort(context.Background(), FromFile(inputs[i]), ToFile(out),
			WithKeySpec(keys[i]))
		if err != nil {
			t.Fatalf("solo %d: %v", i, err)
		}
		res.Close()
		if refs[i], err = os.ReadFile(out); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	outs := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		i := i
		outs[i] = filepath.Join(dir, fmt.Sprintf("out%d.dat", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := e.Sort(context.Background(), FromFile(inputs[i]), ToFile(outs[i]),
				WithKeySpec(keys[i]))
			if err != nil {
				t.Errorf("job %d: %v", i, err)
				return
			}
			if res.Merge == nil {
				t.Errorf("job %d did not take the hierarchical path", i)
			}
			if res.Faults.Any() {
				t.Errorf("job %d reports faults on healthy storage: %+v", i, res.Faults)
			}
			res.Close()
			// Cross-job leftover check at the sharpest moment: this job just
			// finished, the others may still be spilling into the same dir.
			testutil.CheckNoStray(t, scratch, pdm.JobScratchPrefix(res.JobID))
		}()
	}
	wg.Wait()

	for i := 0; i < jobs; i++ {
		got, err := os.ReadFile(outs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, refs[i]) {
			t.Errorf("job %d output differs from its solo reference", i)
		}
	}

	st := e.Stats()
	if st.CompletedJobs != jobs {
		t.Errorf("CompletedJobs = %d, want %d", st.CompletedJobs, jobs)
	}
	if st.FailedJobs != 0 {
		t.Errorf("FailedJobs = %d, want 0", st.FailedJobs)
	}
	if st.ActiveJobs != 0 || st.QueuedJobs != 0 || st.LeasedBytes != 0 {
		t.Errorf("engine not drained: %+v", st)
	}
	if st.PeakLeasedBytes > st.TotalMemory {
		t.Errorf("peak lease %d exceeds TotalMemory %d", st.PeakLeasedBytes, st.TotalMemory)
	}
	if st.PeakLeasedBytes < ask {
		t.Errorf("peak lease %d below a single ask %d", st.PeakLeasedBytes, ask)
	}
	if st.Counters.CompareUnits == 0 || st.Counters.DiskReadBytes == 0 {
		t.Error("cumulative counters are empty after 4 jobs")
	}
}

// gateSource is a Source whose reader blocks on a gate channel before
// producing each record — it lets a test hold a job mid-ingest (lease
// held, budget occupied) and release it on demand.
type gateSource struct {
	n       int64
	started chan struct{} // closed on the first ReadRecord
	gate    chan struct{} // close to let records flow
}

func newGateSource(n int64) *gateSource {
	return &gateSource{n: n, started: make(chan struct{}), gate: make(chan struct{})}
}

func (g *gateSource) Open(recSize int) (int64, RecordReader, error) {
	return g.n, &gateReader{src: g}, nil
}

type gateReader struct {
	src  *gateSource
	once sync.Once
	idx  int64
	gen  record.Uniform
}

func (r *gateReader) ReadRecord(rec []byte) error {
	r.once.Do(func() { close(r.src.started) })
	<-r.src.gate
	r.gen.Gen(rec, r.idx)
	r.idx++
	return nil
}

func (r *gateReader) Close() error { return nil }

// admissionEngine builds a memory-backed engine whose TotalMemory admits
// exactly one default-ask job of n records.
func admissionEngine(t *testing.T, n int64) (*Engine, int64) {
	t.Helper()
	const p, mem, z = 2, 256, 16
	ask := n * z
	e, err := NewEngine(EngineConfig{
		Config:      Config{Procs: p, MemPerProc: mem, RecordSize: z},
		TotalMemory: ask,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, ask
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineAdmissionQueuesThenRuns pins the FIFO admission contract: a
// job over the remaining budget queues while the budget is held and runs
// to completion once it frees.
func TestEngineAdmissionQueuesThenRuns(t *testing.T) {
	testutil.CheckGoroutines(t)
	const n = 1024
	e, _ := admissionEngine(t, n)
	defer e.Close()

	holder := newGateSource(n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := e.Sort(context.Background(), holder, nil, WithPadding(PadNever))
		if err != nil {
			t.Errorf("holder job: %v", err)
			return
		}
		res.Close()
	}()
	<-holder.started // the holder is admitted and mid-ingest: budget fully leased

	var queuedRes *Result
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, err := e.Sort(context.Background(),
			Generate(record.Uniform{Seed: 2}, n), nil, WithPadding(PadNever))
		if err != nil {
			t.Errorf("queued job: %v", err)
			return
		}
		queuedRes = res
	}()
	waitFor(t, "the second job to queue", func() bool { return e.Stats().QueuedJobs == 1 })

	close(holder.gate) // release: the holder finishes, the queued job runs
	wg.Wait()
	if queuedRes == nil {
		t.Fatal("queued job produced no result")
	}
	defer queuedRes.Close()
	if err := queuedRes.Verify(); err != nil {
		t.Errorf("queued job's output failed verification: %v", err)
	}
	if st := e.Stats(); st.CompletedJobs != 2 || st.QueuedJobs != 0 || st.LeasedBytes != 0 {
		t.Errorf("post-drain stats: %+v", st)
	}
}

// TestEngineNoWait pins the fail-fast path: ErrBusy, immediately, with the
// budget held — and no side effects on the queue.
func TestEngineNoWait(t *testing.T) {
	const n = 1024
	e, _ := admissionEngine(t, n)
	defer e.Close()

	holder := newGateSource(n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if res, err := e.Sort(context.Background(), holder, nil, WithPadding(PadNever)); err == nil {
			res.Close()
		}
	}()
	<-holder.started

	_, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 3}, n), nil,
		WithPadding(PadNever), WithNoWait())
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("WithNoWait under full budget returned %v, want ErrBusy", err)
	}
	if st := e.Stats(); st.QueuedJobs != 0 {
		t.Fatalf("ErrBusy left %d jobs queued", st.QueuedJobs)
	}
	close(holder.gate)
	<-done
}

// TestEngineCancelWhileQueued pins prompt cancellation of a queued job:
// the Sort returns ctx.Err() without waiting for the budget, and the
// waiter is removed from the queue.
func TestEngineCancelWhileQueued(t *testing.T) {
	const n = 1024
	e, _ := admissionEngine(t, n)
	defer e.Close()

	holder := newGateSource(n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if res, err := e.Sort(context.Background(), holder, nil, WithPadding(PadNever)); err == nil {
			res.Close()
		}
	}()
	<-holder.started

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := e.Sort(ctx, Generate(record.Uniform{Seed: 4}, n), nil, WithPadding(PadNever))
		errc <- err
	}()
	waitFor(t, "the job to queue", func() bool { return e.Stats().QueuedJobs == 1 })
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled queued Sort returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled queued Sort did not return promptly")
	}
	if st := e.Stats(); st.QueuedJobs != 0 {
		t.Fatalf("cancelled waiter still queued: %+v", st)
	}
	close(holder.gate)
	<-done
}

// TestEngineRejectsImpossibleAsk: an ask above TotalMemory can never be
// admitted and must fail with a descriptive permanent error, not ErrBusy.
func TestEngineRejectsImpossibleAsk(t *testing.T) {
	const n = 1024
	e, ask := admissionEngine(t, n)
	defer e.Close()
	_, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 5}, n), Discard(),
		WithMaxMemory(ask+1))
	if err == nil {
		t.Fatal("over-total ask admitted")
	}
	if errors.Is(err, ErrBusy) {
		t.Fatalf("over-total ask returned ErrBusy (a retryable condition): %v", err)
	}
}

// TestEngineClose pins the shutdown contract: queued jobs fail with
// ErrEngineClosed, Close waits for active jobs, and a closed engine
// rejects new jobs.
func TestEngineClose(t *testing.T) {
	const n = 1024
	e, _ := admissionEngine(t, n)

	holder := newGateSource(n)
	holderDone := make(chan error, 1)
	go func() {
		res, err := e.Sort(context.Background(), holder, nil, WithPadding(PadNever))
		if err == nil {
			res.Close()
		}
		holderDone <- err
	}()
	<-holder.started

	queuedErr := make(chan error, 1)
	go func() {
		_, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 6}, n), nil,
			WithPadding(PadNever))
		queuedErr <- err
	}()
	waitFor(t, "the job to queue", func() bool { return e.Stats().QueuedJobs == 1 })

	closed := make(chan struct{})
	go func() {
		e.Close()
		close(closed)
	}()
	if err := <-queuedErr; !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("queued job under Close returned %v, want ErrEngineClosed", err)
	}
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still active")
	case <-time.After(50 * time.Millisecond):
	}
	close(holder.gate)
	if err := <-holderDone; err != nil {
		t.Fatalf("active job failed across Close: %v", err)
	}
	<-closed
	if _, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 7}, n), nil); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Sort on closed engine returned %v, want ErrEngineClosed", err)
	}
}

// hierOpts forces a small hierarchical sort: a run cap that splits n into
// several spilled runs, so the spill/merge fault machinery engages.
func hierOpts(cap int64) []Option {
	return []Option{WithMaxMemory(cap)}
}

// TestConfigOptionPrecedence pins the precedence rule in both directions:
// a per-job WithChaos injects faults on a chaos-free engine (option
// overrides Config ON), and WithChaos(nil) silences a chaos-configured
// engine for that job (option overrides Config OFF) while a plain job on
// the same engine still sees the Config's chaos.
func TestConfigOptionPrecedence(t *testing.T) {
	const p, mem, z, n = 2, 256, 16, 4096
	cap := int64(512 * z) // run cap: forces the hierarchical path with several runs
	// FlipSpillRead=1 corrupts the first read of the first spill disk; the
	// CRC layer detects it and heals with a reread, so the sort succeeds
	// and the job's fault counters record the event.
	chaos := &ChaosConfig{Seed: 11, FlipSpillRead: 1}

	t.Run("option-enables-chaos", func(t *testing.T) {
		e, err := NewEngine(EngineConfig{Config: Config{Procs: p, MemPerProc: mem, RecordSize: z}})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		var cleanFaults FaultStats
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // a concurrent clean job: per-job isolation of the counters
			defer wg.Done()
			res, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 21}, n),
				Discard(), hierOpts(cap)...)
			if err != nil {
				t.Errorf("clean job: %v", err)
				return
			}
			cleanFaults = res.Faults
			res.Close()
		}()
		res, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 20}, n),
			Discard(), append(hierOpts(cap), WithChaos(chaos))...)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		if res.Faults.CorruptChunks == 0 {
			t.Errorf("WithChaos on a clean engine produced no corrupt chunks: %+v", res.Faults)
		}
		wg.Wait()
		if cleanFaults.Any() {
			t.Errorf("concurrent clean job absorbed the chaotic job's faults: %+v", cleanFaults)
		}
	})

	t.Run("option-disables-chaos", func(t *testing.T) {
		cfg := Config{Procs: p, MemPerProc: mem, RecordSize: z, Chaos: chaos}
		e, err := NewEngine(EngineConfig{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		// A plain job inherits the Config's chaos (the rule's default arm).
		res, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: 22}, n),
			Discard(), hierOpts(cap)...)
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults.CorruptChunks == 0 {
			t.Errorf("Config.Chaos did not reach a plain job: %+v", res.Faults)
		}
		res.Close()
		// WithChaos(nil) overrides it off for this job only.
		res, err = e.Sort(context.Background(), Generate(record.Uniform{Seed: 23}, n),
			Discard(), append(hierOpts(cap), WithChaos(nil))...)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		if res.Faults.Any() {
			t.Errorf("WithChaos(nil) job still saw faults: %+v", res.Faults)
		}
	})
}

// TestEngineStatsAccumulate pins the counter-attribution contract: the
// engine's cumulative counters are the sum over completed jobs, and the
// warm pool arena reports occupancy after jobs return their buffers.
func TestEngineStatsAccumulate(t *testing.T) {
	e, err := NewEngine(EngineConfig{Config: Config{Procs: 2, MemPerProc: 256, RecordSize: 16}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var want int64
	for i := 0; i < 3; i++ {
		res, err := e.Sort(context.Background(), Generate(record.Uniform{Seed: uint64(i)}, 1024),
			nil, WithPadding(PadNever))
		if err != nil {
			t.Fatal(err)
		}
		want += res.Result.TotalCounters().CompareUnits
		res.Close()
	}
	st := e.Stats()
	if st.CompletedJobs != 3 {
		t.Fatalf("CompletedJobs = %d, want 3", st.CompletedJobs)
	}
	if got := st.Counters.CompareUnits; got != want {
		t.Errorf("cumulative CompareUnits = %d, want the sum over jobs %d", got, want)
	}
	if st.PoolFreeBuffers == 0 || st.PoolFreeBytes == 0 {
		t.Errorf("pool occupancy empty after 3 jobs: %+v buffers, %d bytes",
			st.PoolFreeBuffers, st.PoolFreeBytes)
	}
}
