package colsort

// Crash recovery: Engine.Resume picks a checkpointed hierarchical sort back
// up from its persisted run manifest (see manifest.go and DESIGN.md §13).
// The durable spilled runs are reopened and verified structurally — record
// counts, CRC sidecars, frame geometry all come from the manifest — and the
// sort continues from the last durability point instead of starting over:
// a crash during the merge phase re-merges without re-sorting a single
// batch; a crash during fixed-batch formation redoes only the batches the
// crash interrupted; a crash during replacement-selection formation
// restarts formation (the selection heap's contents died with the process —
// its runs do not cover a contiguous source prefix, so there is no point to
// skip to).

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"colsort/internal/merge"
	"colsort/internal/pdm"
	"colsort/internal/record"
)

// resumeState is what a manifest replay hands sortHierarchical: the reopened
// live runs, their manifest ids, and where formation stood at the crash.
type resumeState struct {
	live       []*merge.Run
	ids        []int           // manifest ids parallel to live
	want       record.Checksum // finalWant when ingestDone, else the cumulative fixed-batch checksum
	consumed   int64           // fixed-batch: source records the durable runs cover
	ingestDone bool
	maxID      int // highest manifest id issued; seeds the resumed WAL's sequence
}

// Resume continues a checkpointed sort from the manifest at manifestDir —
// the directory a crashed (or cancelled) WithCheckpoint job left behind.
// The durable runs recorded there are adopted without re-sorting; the output
// streamed into dst is byte-identical to what the uninterrupted sort would
// have produced.
//
// src must be the SAME input the original job was reading. It may be nil
// only when the crash hit the merge phase (the manifest records ingest as
// complete): then no source record is read at all. For a crash during
// fixed-batch formation, Resume re-reads the consumed prefix to position the
// stream — verifying its multiset against the manifest, so a changed source
// is refused rather than silently merged against stale runs. A crash during
// replacement-selection formation restarts formation from the beginning
// (still under the same checkpoint, so the restarted job is itself
// resumable).
//
// The job's parameters — algorithm, key spec, formation, fan-in, memory cap
// — come from the manifest, not from opts: they are part of the durable
// state, and changing them mid-job cannot produce the original job's output.
// Options that do not shape the data (WithProgress, WithRetry, WithDeadline,
// WithNoWait, machine overrides) apply normally. The engine must be
// configured with the same record size the manifest records.
//
// Resume is itself a job: it is admitted against the engine's budget, runs
// under ctx (and any WithDeadline), and reports through Result exactly as
// Sort does, with Result.Merge.ResumedRuns counting the adopted runs. A
// manifest whose job already completed is refused.
func (e *Engine) Resume(ctx context.Context, manifestDir string, src Source, dst Sink, opts ...Option) (*Result, error) {
	o := sortOptions{alg: Threaded, padding: PadAuto}
	for _, opt := range opts {
		opt(&o)
	}
	if dst == nil {
		return nil, fmt.Errorf("%w: a resumed hierarchical sort streams its output", ErrSinkRequired)
	}
	st, err := readManifest(manifestDir)
	if err != nil {
		return nil, err
	}
	if st.done {
		return nil, fmt.Errorf("colsort: the job at %s already completed; nothing to resume", manifestDir)
	}

	// The manifest's begin entry is authoritative for everything that shapes
	// the data. Caller options for those knobs are overridden, not rejected:
	// front ends (the server's boot re-adoption) pass their defaults.
	o.checkpoint = manifestDir
	o.alg = Algorithm(st.begin.Alg)
	o.group = 0
	o.padding = PadAuto
	o.fanIn = st.begin.FanIn
	o.maxMemory = st.begin.MaxMemory
	if st.begin.KeySpec != nil {
		o.keySpec = *st.begin.KeySpec
	} else {
		o.keySpec = KeySpec{}
	}
	form, ok := RunFormationByName(st.begin.Formation)
	if !ok {
		return nil, fmt.Errorf("colsort: manifest at %s records unknown formation %q", manifestDir, st.begin.Formation)
	}
	o.formation = form
	if st.begin.RecordSize != e.cfg.RecordSize {
		return nil, fmt.Errorf("colsort: manifest at %s was written for %d-byte records but the engine is configured for %d-byte records", manifestDir, st.begin.RecordSize, e.cfg.RecordSize)
	}
	codec, err := o.keySpec.Compile(e.cfg.RecordSize)
	if err != nil {
		return nil, fmt.Errorf("colsort: %w", err)
	}
	runPl, err := e.planRun(o)
	if err != nil {
		return nil, err
	}
	if runPl.N != st.begin.RunRecords {
		return nil, fmt.Errorf("colsort: manifest at %s was written with %d-record runs but this engine plans %d-record runs; resume on an identically configured engine", manifestDir, st.begin.RunRecords, runPl.N)
	}
	n := st.begin.N
	if n < 1 {
		return nil, fmt.Errorf("colsort: manifest at %s records no input size", manifestDir)
	}

	if o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}

	// A crash during replacement-selection formation is not skippable (see
	// the Resume doc comment): discard the partial state and restart
	// formation from record zero, still checkpointed.
	rsRestart := !st.ingestDone && o.formation != FixedBatch
	if rsRestart {
		st.live = nil
	}

	// Sweep the orphans first: the half-written spill the crash interrupted,
	// and consumed merge inputs whose removal did not complete.
	swept := sweepOrphanRuns(manifestDir, st.live)
	if rsRestart {
		_ = os.Remove(filepath.Join(manifestDir, manifestName))
	}

	// The source is required whenever formation work remains.
	var rd RecordReader
	if src != nil {
		srcN, r, err := src.Open(e.cfg.RecordSize)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		if srcN != n {
			return nil, fmt.Errorf("colsort: the source holds %d records but the manifest at %s recorded %d; resuming requires the original input", srcN, manifestDir, n)
		}
		rd = r
	} else if !st.ingestDone {
		return nil, fmt.Errorf("colsort: the manifest at %s has unfinished run formation; Resume needs the original Source to form the remaining runs", manifestDir)
	}

	ask := runPl.N * int64(runPl.Z)
	if o.maxMemory > 0 {
		ask = o.maxMemory
	}
	l, err := e.admit(ctx, ask, o.noWait)
	if err != nil {
		return nil, err
	}
	defer l.release()

	j := e.newJob(ctx, o)
	var rs *resumeState
	if !rsRestart {
		rs = &resumeState{
			consumed:   st.consumed,
			ingestDone: st.ingestDone,
			maxID:      st.maxID,
		}
		if st.ingestDone {
			rs.want = st.finalWant
		} else {
			rs.want = st.cumWant
		}
		if rs.live, rs.ids, err = reopenRuns(j.m, st.live, e.cfg.RecordSize); err != nil {
			return nil, err
		}
	}
	_ = swept // counted by callers that surface it (the server's metrics)

	res, err := j.sortHierarchical(ctx, rd, dst, o, codec, n, runPl, rs)
	faults := j.faultStats()
	if res != nil {
		res.Faults = faults
		res.JobID = j.id
	}
	e.finishJob(res, faults, err)
	return res, err
}

// Resume delegates to Engine.Resume.
func (s *Sorter) Resume(ctx context.Context, manifestDir string, src Source, dst Sink, opts ...Option) (*Result, error) {
	return s.e.Resume(ctx, manifestDir, src, dst, opts...)
}

// reopenRuns reopens the manifest's live runs as merge inputs: each durable
// spill file, wrapped with the machine's fault and async layers exactly as a
// freshly spilled run would be, carrying the record count, direction, frame
// geometry and CRC sidecar the manifest recorded. On any failure the runs
// already opened are closed (keep-on-close: their files stay).
func reopenRuns(m pdm.Machine, live []*manifestRun, recSize int) (runs []*merge.Run, ids []int, err error) {
	defer func() {
		if err != nil {
			for _, r := range runs {
				r.Close()
			}
		}
	}()
	for idx, mr := range live {
		fi, statErr := os.Stat(mr.Path)
		if statErr != nil {
			return runs, ids, fmt.Errorf("colsort: resume: durable run %d is missing: %w", mr.ID, statErr)
		}
		if want := runBytes(mr, recSize); fi.Size() < want {
			return runs, ids, fmt.Errorf("colsort: resume: durable run %d holds %d bytes but the manifest recorded at least %d; the checkpoint directory is damaged", mr.ID, fi.Size(), want)
		}
		d, openErr := pdm.OpenFileDisk(mr.Path)
		if openErr != nil {
			return runs, ids, fmt.Errorf("colsort: resume: reopening run %d: %w", mr.ID, openErr)
		}
		runs = append(runs, merge.Reopen(m.WrapSpillDisk(d, idx), recSize, mr.Records, mr.Descending, mr.FrameBytes, mr.CRCs))
		ids = append(ids, mr.ID)
	}
	return runs, ids, nil
}

// runBytes computes a durable run's on-disk payload size. The CRC sidecar
// travels in the manifest, not the file: the spill holds records only.
func runBytes(mr *manifestRun, recSize int) int64 {
	return mr.Records * int64(recSize)
}
