package colsort

import (
	"context"
	"errors"
	"testing"

	"colsort/internal/record"
)

func newTestSorter(t *testing.T, procs, mem int) *Sorter {
	t.Helper()
	s, err := New(Config{Procs: procs, MemPerProc: mem, RecordSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSortGeneratedAllAlgorithms(t *testing.T) {
	cases := []struct {
		alg Algorithm
		n   int64
		p   int
		mem int
	}{
		{Threaded, 512 * 8, 4, 512},
		{Threaded4, 512 * 8, 4, 512},
		{Subblock, 256 * 16, 4, 256},
		{MColumn, 256 * 8, 4, 64},
		{Combined, 256 * 16, 4, 64},
	}
	for _, c := range cases {
		s := newTestSorter(t, c.p, c.mem)
		res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 1}, c.n), nil,
			WithAlgorithm(c.alg), WithPadding(PadNever))
		if err != nil {
			t.Fatalf("%v: %v", c.alg, err)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("%v: %v", c.alg, err)
		}
		est := res.EstimateBeowulf()
		if est.Total <= 0 {
			t.Fatalf("%v: nonpositive estimate", c.alg)
		}
		if err := res.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSortStoreRoundTrip(t *testing.T) {
	s := newTestSorter(t, 2, 512)
	input, err := s.InputStore(Threaded, 512*4)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	if err := input.Fill(record.Zipf{Seed: 4}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Sort(context.Background(), FromStore(input), nil,
		WithAlgorithm(Threaded), WithPadding(PadNever))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 2, MemPerProc: 64, RecordSize: 10}); err == nil {
		t.Fatal("bad record size accepted")
	}
	if _, err := New(Config{Procs: 3, Disks: 4, MemPerProc: 64, RecordSize: 16}); err == nil {
		t.Fatal("P∤D accepted")
	}
	// Disks defaults to Procs.
	s, err := New(Config{Procs: 2, MemPerProc: 64, RecordSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	if s.e.cfg.Disks != 2 {
		t.Fatalf("Disks defaulted to %d", s.e.cfg.Disks)
	}
}

func TestPlanErrorsExplainRestrictions(t *testing.T) {
	s := newTestSorter(t, 2, 512)
	_, err := s.Plan(Threaded, 512*64) // s=64: 2s² = 8192 > 512
	if !errors.Is(err, ErrHeightRestriction) {
		t.Fatalf("err = %v, want errors.Is(err, ErrHeightRestriction)", err)
	}
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want errors.Is(err, ErrTooLarge) to keep matching", err)
	}
}

func TestMaxRecords(t *testing.T) {
	// Large enough memory that the subblock gain survives the power-of-4
	// quantization of s (the real-valued gain is (M/P)^{1/6}·2^{-5/6}).
	s := newTestSorter(t, 4, 1<<15)
	maxTh := s.MaxRecords(Threaded)
	maxSb := s.MaxRecords(Subblock)
	maxMc := s.MaxRecords(MColumn)
	if maxTh <= 0 || maxSb <= 0 || maxMc <= 0 {
		t.Fatalf("nonpositive max records: %d %d %d", maxTh, maxSb, maxMc)
	}
	// The paper's orderings: subblock and M-columnsort both exceed
	// threaded; the threaded max is actually plannable, and doubling it
	// is not.
	if maxSb <= maxTh {
		t.Fatalf("subblock max %d not above threaded %d", maxSb, maxTh)
	}
	if maxMc <= maxTh {
		t.Fatalf("m-columnsort max %d not above threaded %d", maxMc, maxTh)
	}
	if _, err := s.Plan(Threaded, maxTh); err != nil {
		t.Fatalf("threaded max %d not plannable: %v", maxTh, err)
	}
	if _, err := s.Plan(Threaded, 2*maxTh); err == nil {
		t.Fatalf("threaded accepted 2×max = %d", 2*maxTh)
	}
}

func TestBound(t *testing.T) {
	s := newTestSorter(t, 4, 512)
	b1, err := s.Bound(Threaded)
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := s.Bound(Subblock)
	b3, _ := s.Bound(MColumn)
	b4, _ := s.Bound(Combined)
	if !(b1 < b2 && b2 < b4 && b1 < b3) {
		t.Fatalf("bound ordering wrong: %g %g %g %g", b1, b2, b3, b4)
	}
	if _, err := s.Bound(BaselineIO3); err == nil {
		t.Fatal("baseline should have no bound")
	}
	// MaxRecords must respect the real-valued bound (the integer maximum
	// can sit exactly on it, so allow float rounding).
	if got := float64(s.MaxRecords(Threaded)); got > b1*(1+1e-9) {
		t.Fatalf("max records %g exceeds bound %g", got, b1)
	}
}

func TestFileBackedSorter(t *testing.T) {
	s, err := New(Config{Procs: 2, MemPerProc: 256, RecordSize: 64, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 9}, 256*4), nil,
		WithAlgorithm(Threaded), WithPadding(PadNever))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineThroughFacade(t *testing.T) {
	s := newTestSorter(t, 2, 512)
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 2}, 512*4), nil,
		WithAlgorithm(BaselineIO3), WithPadding(PadNever))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	// Baseline output is not sorted; Verify must fail on ordering but the
	// multiset must hold, so check the counters instead.
	tot := res.TotalCounters()
	if tot.CompareUnits != 0 {
		t.Fatal("baseline did comparison work")
	}
}
