package colsort

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// A Source supplies the records a Sort consumes. Implementations adapt
// generators (Generate), real files (FromFile), byte buffers (FromBytes),
// arbitrary streams (FromReader) and existing simulated-disk stores
// (FromStore); third parties can implement their own.
type Source interface {
	// Open prepares the source for a sorter whose records are recSize
	// bytes, returning the exact number of records and a reader positioned
	// at record 0. Sort consumes each record exactly once, in index order,
	// and closes the reader when ingest completes.
	Open(recSize int) (n int64, r RecordReader, err error)
}

// RecordReader streams a Source's records in index order.
type RecordReader interface {
	// ReadRecord fills rec (one record) with the next record's bytes.
	ReadRecord(rec []byte) error
	// Close releases the reader's resources.
	Close() error
}

// Generate adapts a deterministic record generator as a Source of n
// records — the simulation-workload input of the original API.
func Generate(g record.Generator, n int64) Source {
	return &generatorSource{g: g, n: n}
}

type generatorSource struct {
	g record.Generator
	n int64
}

func (s *generatorSource) Open(recSize int) (int64, RecordReader, error) {
	if s.g == nil {
		return 0, nil, fmt.Errorf("colsort: nil generator")
	}
	return s.n, &generatorReader{g: s.g}, nil
}

type generatorReader struct {
	g   record.Generator
	idx int64
}

func (r *generatorReader) ReadRecord(rec []byte) error {
	r.g.Gen(rec, r.idx)
	r.idx++
	return nil
}

func (r *generatorReader) Close() error { return nil }

// FromFile reads records from the file at path; the file size must be a
// positive multiple of the sorter's record size. Reads are chunked (one
// pread per megabyte, not per record).
func FromFile(path string) Source {
	return &fileSource{path: path}
}

type fileSource struct{ path string }

func (s *fileSource) Open(recSize int) (int64, RecordReader, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return 0, nil, fmt.Errorf("colsort: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return 0, nil, fmt.Errorf("colsort: %w", err)
	}
	if info.Size() == 0 || info.Size()%int64(recSize) != 0 {
		f.Close()
		return 0, nil, fmt.Errorf("colsort: input %s is %d bytes, not a positive multiple of the record size %d",
			s.path, info.Size(), recSize)
	}
	return info.Size() / int64(recSize), newChunkedReader(f, f.Close), nil
}

// readChunkBytes is the ingest read-chunk size of stream sources.
const readChunkBytes = 1 << 20

// chunkedReader turns an io.Reader into a RecordReader through a buffered
// reader, so file and stream ingest costs one read syscall per chunk and
// zero allocations per record. io.ReadFull supplies the io.Reader-contract
// care (transient (0, nil) returns, short reads across chunk boundaries).
type chunkedReader struct {
	br    *bufio.Reader
	close func() error
}

func newChunkedReader(r io.Reader, close func() error) *chunkedReader {
	return &chunkedReader{br: bufio.NewReaderSize(r, readChunkBytes), close: close}
}

func (c *chunkedReader) ReadRecord(rec []byte) error {
	if _, err := io.ReadFull(c.br, rec); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("colsort: read input: %w", err)
	}
	return nil
}

func (c *chunkedReader) Close() error {
	if c.close != nil {
		return c.close()
	}
	return nil
}

// FromReader reads n records from r. Use it to sort data arriving over a
// pipe, a network connection, or any other stream; the stream must deliver
// at least n·recordSize bytes.
func FromReader(r io.Reader, n int64) Source {
	return &readerSource{r: r, n: n}
}

type readerSource struct {
	r io.Reader
	n int64
}

func (s *readerSource) Open(recSize int) (int64, RecordReader, error) {
	if s.r == nil {
		return 0, nil, fmt.Errorf("colsort: nil reader")
	}
	return s.n, newChunkedReader(s.r, nil), nil
}

// FromBytes sorts the records held in b, whose length must be a positive
// multiple of the sorter's record size. b is not modified.
func FromBytes(b []byte) Source {
	return &bytesSource{b: b}
}

type bytesSource struct{ b []byte }

func (s *bytesSource) Open(recSize int) (int64, RecordReader, error) {
	if len(s.b) == 0 || len(s.b)%recSize != 0 {
		return 0, nil, fmt.Errorf("colsort: input of %d bytes is not a positive multiple of the record size %d",
			len(s.b), recSize)
	}
	return int64(len(s.b) / recSize), &bytesReader{b: s.b}, nil
}

type bytesReader struct {
	b   []byte
	pos int
}

func (r *bytesReader) ReadRecord(rec []byte) error {
	if r.pos+len(rec) > len(r.b) {
		return io.ErrUnexpectedEOF
	}
	copy(rec, r.b[r.pos:])
	r.pos += len(rec)
	return nil
}

func (r *bytesReader) Close() error { return nil }

// FromStore sorts the records of an existing simulated-disk store (for
// example one built with Sorter.InputStore and filled by the caller). The
// store is preserved — the caller keeps ownership and must Close it.
//
// When the store's shape already matches the plan and the sort uses the
// native key, the engine consumes it in place with no ingest copy;
// otherwise its records are streamed into a fresh input store of the
// planned shape.
func FromStore(st *pdm.Store) Source {
	return &storeSource{st: st}
}

type storeSource struct{ st *pdm.Store }

func (s *storeSource) Open(recSize int) (int64, RecordReader, error) {
	if s.st == nil {
		return 0, nil, fmt.Errorf("colsort: nil store")
	}
	if s.st.RecSize != recSize {
		return 0, nil, fmt.Errorf("colsort: store record size %d != sorter record size %d", s.st.RecSize, recSize)
	}
	return int64(s.st.R) * int64(s.st.S), &storeReader{
		st:  s.st,
		cur: record.Slice{Size: s.st.RecSize}, // empty: first read loads a segment
	}, nil
}

// storeReader streams a store's records in global column-major index order
// by walking its owned segments — the same order ScanSegments visits.
type storeReader struct {
	st  *pdm.Store
	cnt sim.Counters
	buf record.Slice
	j   int // next column to load
	p   int // next processor within column j
	cur record.Slice
	pos int
}

func (r *storeReader) ReadRecord(rec []byte) error {
	for r.pos >= r.cur.Len() {
		if err := r.nextSegment(); err != nil {
			return err
		}
	}
	copy(rec, r.cur.Record(r.pos))
	r.pos++
	return nil
}

func (r *storeReader) nextSegment() error {
	st := r.st
	for ; r.j < st.S; r.j++ {
		for ; r.p < st.P; r.p++ {
			lo, hi := st.OwnedRows(r.p, r.j)
			if lo == hi {
				continue
			}
			if r.buf.Size == 0 || r.buf.Len() < hi-lo {
				r.buf = record.Make(hi-lo, st.RecSize)
			}
			r.cur = r.buf.Sub(0, hi-lo)
			if err := st.ReadRows(&r.cnt, r.p, r.j, lo, r.cur); err != nil {
				return err
			}
			r.pos = 0
			r.p++
			return nil
		}
		r.p = 0
	}
	return io.ErrUnexpectedEOF
}

func (r *storeReader) Close() error { return nil } // the caller owns the store
